//===- bench/BenchReport.h - JSON emission for bench harnesses --*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lets every bench harness publish its headline numbers as JSON without
/// touching its console output. When the IPCP_BENCH_JSON_DIR environment
/// variable is set, benchReport("table2", Doc) writes Doc (wrapped in an
/// "ipcp-bench-report-v1" envelope) to $IPCP_BENCH_JSON_DIR/BENCH_table2.json;
/// when it is unset, the call is a no-op. This is how BENCH_*.json
/// trajectories are produced mechanically — see docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_BENCH_BENCHREPORT_H
#define IPCP_BENCH_BENCHREPORT_H

#include "support/FileIO.h"
#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace ipcp {

/// Writes BENCH_<name>.json into $IPCP_BENCH_JSON_DIR, if set. Returns
/// false (after printing to stderr) only when the write itself failed.
inline bool benchReport(const std::string &Name, JsonValue Body) {
  const char *Dir = std::getenv("IPCP_BENCH_JSON_DIR");
  if (!Dir || !*Dir)
    return true;
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", "ipcp-bench-report-v1");
  Doc.set("bench", Name);
  Doc.set("data", std::move(Body));
  std::string Path = std::string(Dir) + "/BENCH_" + Name + ".json";
  std::string Error;
  if (!writeJsonFile(Path, Doc, &Error)) {
    std::fprintf(stderr, "benchReport: %s\n", Error.c_str());
    return false;
  }
  std::fprintf(stderr, "bench report written to %s\n", Path.c_str());
  return true;
}

/// Loads the committed pre-optimization baseline for one harness from
/// bench/baselines/BENCH_<name>.json (compiled-in source path, override
/// with IPCP_BENCH_BASELINE_DIR) and returns its "data" object, so
/// harnesses can print measured-vs-baseline deltas. Nullopt when the
/// baseline file is absent or malformed — deltas are then skipped.
inline std::optional<JsonValue> benchBaseline(const std::string &Name) {
  const char *Dir = std::getenv("IPCP_BENCH_BASELINE_DIR");
#ifdef IPCP_BENCH_BASELINE_SRCDIR
  if (!Dir || !*Dir)
    Dir = IPCP_BENCH_BASELINE_SRCDIR;
#endif
  if (!Dir || !*Dir)
    return std::nullopt;
  std::string Text;
  if (!readFileToString(std::string(Dir) + "/BENCH_" + Name + ".json", Text))
    return std::nullopt;
  std::optional<JsonValue> Doc = JsonValue::parse(Text);
  if (!Doc || !Doc->isObject())
    return std::nullopt;
  const JsonValue *Data = Doc->find("data");
  if (!Data || !Data->isObject())
    return std::nullopt;
  return *Data;
}

/// Prints one "<label>: baseline B -> now N (Rx)" delta line, where R is
/// the improvement ratio for lower-is-better quantities.
inline void printBaselineDelta(const char *Label, double Baseline,
                               double Now, const char *Unit,
                               bool LowerIsBetter = true) {
  double Ratio = LowerIsBetter ? (Now > 0 ? Baseline / Now : 0.0)
                               : (Baseline > 0 ? Now / Baseline : 0.0);
  std::printf("  %-24s baseline %10.3f %s -> now %10.3f %s  (%.2fx)\n",
              Label, Baseline, Unit, Now, Unit, Ratio);
}

} // namespace ipcp

#endif // IPCP_BENCH_BENCHREPORT_H
