//===- bench/BenchReport.h - JSON emission for bench harnesses --*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lets every bench harness publish its headline numbers as JSON without
/// touching its console output. When the IPCP_BENCH_JSON_DIR environment
/// variable is set, benchReport("table2", Doc) writes Doc (wrapped in an
/// "ipcp-bench-report-v1" envelope) to $IPCP_BENCH_JSON_DIR/BENCH_table2.json;
/// when it is unset, the call is a no-op. This is how BENCH_*.json
/// trajectories are produced mechanically — see docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_BENCH_BENCHREPORT_H
#define IPCP_BENCH_BENCHREPORT_H

#include "support/Json.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

namespace ipcp {

/// Writes BENCH_<name>.json into $IPCP_BENCH_JSON_DIR, if set. Returns
/// false (after printing to stderr) only when the write itself failed.
inline bool benchReport(const std::string &Name, JsonValue Body) {
  const char *Dir = std::getenv("IPCP_BENCH_JSON_DIR");
  if (!Dir || !*Dir)
    return true;
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", "ipcp-bench-report-v1");
  Doc.set("bench", Name);
  Doc.set("data", std::move(Body));
  std::string Path = std::string(Dir) + "/BENCH_" + Name + ".json";
  std::string Error;
  if (!writeJsonFile(Path, Doc, &Error)) {
    std::fprintf(stderr, "benchReport: %s\n", Error.c_str());
    return false;
  }
  std::fprintf(stderr, "bench report written to %s\n", Path.c_str());
  return true;
}

} // namespace ipcp

#endif // IPCP_BENCH_BENCHREPORT_H
