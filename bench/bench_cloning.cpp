//===- bench/bench_cloning.cpp - cloning application ----------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The paper's Section 5 reports (via Metzger & Stroud [13]) that
// goal-directed procedure cloning based on interprocedural constants
// "can substantially increase the number of interprocedural constants
// available". This binary runs the cloning transformation over the
// benchmark suite and over synthetic divergent-call-site programs, and
// reports constants before/after along with the code-growth cost.
//
//===----------------------------------------------------------------------===//

#include "core/Cloning.h"
#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "workload/Programs.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ipcp;

namespace {

std::string divergentProgram(unsigned Kernels, unsigned SitesPerKernel) {
  std::string Src;
  for (unsigned K = 0; K != Kernels; ++K) {
    Src += "proc kern" + std::to_string(K) + "(n, w) {\n"
           "  var i;\n"
           "  do i = 1, n { print i * w; }\n"
           "}\n";
  }
  Src += "proc main() {\n";
  for (unsigned K = 0; K != Kernels; ++K)
    for (unsigned S = 0; S != SitesPerKernel; ++S)
      Src += "  call kern" + std::to_string(K) + "(" +
             std::to_string(4 + 4 * S) + ", 3);\n";
  Src += "}\n";
  return Src;
}

std::unique_ptr<Module> compile(const std::string &Source) {
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Source, Diags);
  return lowerProgram(*Ast);
}

void printCloningTable() {
  std::printf("Cloning application (paper Section 5 / refs [6, 13]):\n");
  std::printf("program      clones  refs-before  refs-after  insts-before  "
              "insts-after\n");
  auto Report = [](const std::string &Name, const CloningResult &R) {
    std::printf("%-12s %6u  %11u  %10u  %12u  %11u\n", Name.c_str(),
                R.ClonesCreated, R.RefsBefore, R.RefsAfter,
                R.InstructionsBefore, R.InstructionsAfter);
  };
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    auto M = loadSuiteModule(Prog);
    Report(Prog.Name, cloneForConstants(*M));
  }
  for (unsigned Sites : {2u, 3u}) {
    auto M = compile(divergentProgram(3, Sites));
    Report("divergent-" + std::to_string(Sites), cloneForConstants(*M));
  }
  std::printf("\n");
}

void BM_CloneForConstants(benchmark::State &State) {
  std::string Source = divergentProgram(State.range(0), 3);
  for (auto _ : State) {
    State.PauseTiming();
    auto M = compile(Source); // cloning mutates: fresh module per run
    State.ResumeTiming();
    CloningResult R = cloneForConstants(*M);
    benchmark::DoNotOptimize(R.RefsAfter);
  }
}
BENCHMARK(BM_CloneForConstants)->Arg(2)->Arg(4)->Arg(8)->ArgName("kernels");

} // namespace

int main(int argc, char **argv) {
  printCloningTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
