//===- bench/bench_contexts.cpp - engine precision/cost study -------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The published study behind docs/CONTEXTS.md: the value-contexts engine
// (--engine=contexts) against the 1986 caller-merge framework, measured
// three ways —
//
//  - precision and cost over the paper's twelve suite programs, per
//    forward jump function class (constants found, constant refs,
//    contexts tabulated, evaluations, peak entry-vector bytes);
//  - the same over seeded generated programs, whose denser call graphs
//    exercise memoization and budget behavior;
//  - a synthetic correlated-formals family (swap fans of growing width)
//    where the precision gap is structural: every fan width gives the
//    contexts engine a win the merged engine cannot see.
//
// Timed sections compare wall-clock per solve. The headline numbers are
// published as BENCH_contexts.json (see BenchReport.h) and the contexts
// engine must never find fewer entry constants — constants_delta is
// asserted non-negative at emission time. refs_delta is reported but
// not bounded: extra constants can kill a branch and un-count the refs
// inside it (docs/CONTEXTS.md).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "core/Pipeline.h"
#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "workload/Generator.h"
#include "workload/Programs.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

using namespace ipcp;

namespace {

std::unique_ptr<Module> compile(const std::string &Source) {
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Source, Diags);
  return lowerProgram(*Ast);
}

/// A swap fan of the given width: every blend_i receives the same value
/// pair in swapped orders, so the sum it forwards is invariant — but
/// only visible per context.
std::string swapFanProgram(unsigned Width) {
  std::string Src = "proc scale(s) { print s; }\n";
  for (unsigned I = 0; I != Width; ++I)
    Src += "proc blend" + std::to_string(I) +
           "(x, y) { call scale(x + y); }\n";
  Src += "proc main() {\n";
  for (unsigned I = 0; I != Width; ++I) {
    std::string N = std::to_string(I);
    Src += "  call blend" + N + "(" + std::to_string(I + 1) + ", " +
           std::to_string(Width - I) + ");\n";
    Src += "  call blend" + N + "(" + std::to_string(Width - I) + ", " +
           std::to_string(I + 1) + ");\n";
  }
  Src += "}\n";
  return Src;
}

struct CellResult {
  unsigned Constants = 0;
  unsigned Refs = 0;
  uint64_t Evaluations = 0;
  uint64_t Contexts = 0;
  uint64_t EntryBytes = 0;
  bool BudgetTripped = false;
};

CellResult runEngine(const Module &M, JumpFunctionKind Kind,
                     PropagationEngine Engine) {
  IPCPOptions Opts;
  Opts.ForwardKind = Kind;
  Opts.Engine = Engine;
  IPCPResult R = runIPCP(M, Opts);
  CellResult Out;
  Out.Constants = R.TotalEntryConstants;
  Out.Refs = R.TotalConstantRefs;
  Out.Evaluations = R.Stats.get("prop_evaluations");
  if (R.ContextStudy.Enabled) {
    Out.Contexts = R.ContextStudy.Contexts;
    Out.EntryBytes = R.ContextStudy.EntryBytes;
    Out.BudgetTripped = R.ContextStudy.BudgetTripped;
  }
  return Out;
}

/// One program × one JF class under both engines, printed and returned
/// as a study row. Exits nonzero if the contexts engine found fewer
/// entry constants — the acceptance bound the study publishes. Refs
/// carry no such bound: extra constants can prove a branch dead and
/// stop its refs from counting (docs/CONTEXTS.md "What about refs?"),
/// so refs_delta may legitimately be negative when constants_delta is
/// positive.
JsonValue studyRow(const std::string &Name, const Module &M,
                   JumpFunctionKind Kind) {
  CellResult Jump = runEngine(M, Kind, PropagationEngine::Jump);
  CellResult Ctx = runEngine(M, Kind, PropagationEngine::Contexts);
  if (Ctx.Constants < Jump.Constants ||
      (Ctx.Constants == Jump.Constants && Ctx.Refs != Jump.Refs)) {
    std::fprintf(stderr,
                 "FAIL: contexts engine lost precision on %s (jf=%s): "
                 "constants %u vs %u, refs %u vs %u\n",
                 Name.c_str(), jumpFunctionKindName(Kind), Ctx.Constants,
                 Jump.Constants, Ctx.Refs, Jump.Refs);
    std::exit(1);
  }
  std::printf("  %-16s %-10s  %5u -> %5u  %5u -> %5u  %7llu  %8llu  %6llu%s\n",
              Name.c_str(), jumpFunctionKindName(Kind), Jump.Constants,
              Ctx.Constants, Jump.Refs, Ctx.Refs,
              (unsigned long long)Ctx.Contexts,
              (unsigned long long)Ctx.Evaluations,
              (unsigned long long)Ctx.EntryBytes,
              Ctx.BudgetTripped ? "  (budget tripped)" : "");
  JsonValue Row = JsonValue::object();
  Row.set("program", Name);
  Row.set("forward_jf", jumpFunctionKindName(Kind));
  Row.set("jump_constants", Jump.Constants);
  Row.set("contexts_constants", Ctx.Constants);
  Row.set("constants_delta", int64_t(Ctx.Constants) - int64_t(Jump.Constants));
  Row.set("jump_refs", Jump.Refs);
  Row.set("contexts_refs", Ctx.Refs);
  Row.set("refs_delta", int64_t(Ctx.Refs) - int64_t(Jump.Refs));
  Row.set("jump_evaluations", Jump.Evaluations);
  Row.set("contexts_evaluations", Ctx.Evaluations);
  Row.set("contexts_tabulated", Ctx.Contexts);
  Row.set("entry_bytes", Ctx.EntryBytes);
  Row.set("budget_tripped", Ctx.BudgetTripped);
  return Row;
}

JsonValue suiteStudy() {
  std::printf("Engine study over the paper suite (constants and refs as "
              "jump -> contexts):\n");
  std::printf("  program          jf          constants       refs        "
              "  contexts    evals   bytes\n");
  JsonValue Rows = JsonValue::array();
  const JumpFunctionKind Kinds[] = {
      JumpFunctionKind::Literal, JumpFunctionKind::IntraproceduralConstant,
      JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial};
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    std::unique_ptr<Module> M = loadSuiteModule(Prog);
    for (JumpFunctionKind Kind : Kinds)
      Rows.push(studyRow(Prog.Name, *M, Kind));
  }
  std::printf("\n");
  return Rows;
}

JsonValue generatedStudy() {
  std::printf("Engine study over generated programs (polynomial JFs):\n");
  std::printf("  program          jf          constants       refs        "
              "  contexts    evals   bytes\n");
  JsonValue Rows = JsonValue::array();
  for (uint64_t Seed : {101u, 202u, 303u, 404u}) {
    GeneratorConfig Config;
    Config.Seed = Seed;
    Config.NumProcs = 12;
    Config.NumGlobals = 4;
    Config.StmtsPerProc = 10;
    std::unique_ptr<Module> M = compile(generateProgram(Config));
    Rows.push(studyRow("gen" + std::to_string(Seed), *M,
                       JumpFunctionKind::Polynomial));
  }
  std::printf("\n");
  return Rows;
}

JsonValue swapFanStudy() {
  std::printf("Correlated-formals family (structural precision gap):\n");
  std::printf("  program          jf          constants       refs        "
              "  contexts    evals   bytes\n");
  JsonValue Rows = JsonValue::array();
  // Width 1 would be degenerate — (1,1) swapped is itself — so the
  // family starts where the correlation is real.
  for (unsigned Width : {2u, 4u, 16u, 64u}) {
    std::unique_ptr<Module> M = compile(swapFanProgram(Width));
    JsonValue Row = studyRow("swapfan" + std::to_string(Width), *M,
                             JumpFunctionKind::Polynomial);
    if (Row.find("constants_delta")->asInt() <= 0) {
      std::fprintf(stderr,
                   "FAIL: swap fan width %u shows no contexts win\n", Width);
      std::exit(1);
    }
    Rows.push(std::move(Row));
  }
  std::printf("\n");
  return Rows;
}

void BM_EngineOnSuite(benchmark::State &State) {
  const SuiteProgram &Prog = benchmarkSuite()[size_t(State.range(0))];
  std::unique_ptr<Module> M = loadSuiteModule(Prog);
  bool Contexts = State.range(1);
  IPCPOptions Opts;
  if (Contexts)
    Opts.Engine = PropagationEngine::Contexts;
  State.SetLabel(Prog.Name + (Contexts ? "/contexts" : "/jump"));
  for (auto _ : State) {
    IPCPResult R = runIPCP(*M, Opts);
    benchmark::DoNotOptimize(R.TotalConstantRefs);
  }
}
BENCHMARK(BM_EngineOnSuite)
    ->ArgsProduct({{0, 3, 6, 11}, {0, 1}})
    ->ArgNames({"program", "contexts"});

void BM_EngineOnSwapFan(benchmark::State &State) {
  std::unique_ptr<Module> M = compile(swapFanProgram(State.range(0)));
  bool Contexts = State.range(1);
  IPCPOptions Opts;
  if (Contexts)
    Opts.Engine = PropagationEngine::Contexts;
  for (auto _ : State) {
    IPCPResult R = runIPCP(*M, Opts);
    benchmark::DoNotOptimize(R.TotalConstantRefs);
  }
}
BENCHMARK(BM_EngineOnSwapFan)
    ->ArgsProduct({{4, 16, 64}, {0, 1}})
    ->ArgNames({"width", "contexts"});

} // namespace

int main(int argc, char **argv) {
  JsonValue Doc = JsonValue::object();
  Doc.set("suite", suiteStudy());
  Doc.set("generated", generatedStudy());
  Doc.set("swap_fans", swapFanStudy());
  benchReport("contexts", std::move(Doc));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
