//===- bench/bench_costs.cpp - Section 3.1.5 cost model -------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Substantiates the cost discussion of Section 3.1.5 on generated
// programs of increasing size:
//
//  - the literal jump function needs only "a textual scan of the call
//    sites"; the other three require O(N) intraprocedural analysis
//    (SSA + value numbering), so their construction cost is similar and
//    dominates;
//  - "In our implementation, the cost of intraprocedural analysis
//    dominates the cost of the interprocedural phase";
//  - polynomial construction approaches pass-through cost because the
//    complex polynomials are rare and |support| approaches 1.
//
// The phase-time statistics printed at the end come from the pipeline's
// own counters and break one analysis into its four stages.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "core/Pipeline.h"
#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "workload/Generator.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ipcp;

namespace {

std::unique_ptr<Module> makeProgram(unsigned Procs, uint64_t Seed) {
  GeneratorConfig Config;
  Config.Seed = Seed;
  Config.NumProcs = Procs;
  Config.NumGlobals = 6;
  Config.StmtsPerProc = 14;
  std::string Source = generateProgram(Config);
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Source, Diags);
  return lowerProgram(*Ast);
}

/// Full analysis cost by forward jump function class, over program size.
void BM_AnalysisByClassAndSize(benchmark::State &State) {
  unsigned Procs = State.range(0);
  auto Kind = static_cast<JumpFunctionKind>(State.range(1));
  auto M = makeProgram(Procs, /*Seed=*/Procs * 7 + 1);
  IPCPOptions Opts;
  Opts.ForwardKind = Kind;
  State.SetLabel(std::string(jumpFunctionKindName(Kind)) + "/" +
                 std::to_string(M->instructionCount()) + "insts");
  for (auto _ : State) {
    IPCPResult R = runIPCP(*M, Opts);
    benchmark::DoNotOptimize(R.TotalConstantRefs);
  }
  State.SetItemsProcessed(State.iterations() * M->instructionCount());
}

} // namespace

BENCHMARK(BM_AnalysisByClassAndSize)
    ->ArgsProduct({{8, 16, 32, 64},
                   {0 /*literal*/, 1 /*intra*/, 2 /*pass*/, 3 /*poly*/}})
    ->ArgNames({"procs", "class"});

namespace {

/// Phase breakdown of one polynomial analysis on a larger program.
void printPhaseBreakdown() {
  auto M = makeProgram(/*Procs=*/48, /*Seed=*/99);
  IPCPResult R = runIPCP(*M);
  std::printf("Section 3.1.5 phase breakdown (%u instructions, "
              "polynomial + return JFs + MOD):\n",
              M->instructionCount());
  for (const char *Key :
       {"time_intraprocedural_us", "time_return_jf_us", "time_forward_jf_us",
        "time_propagation_us", "time_record_us", "time_total_us"})
    std::printf("  %-26s %8llu us\n", Key,
                static_cast<unsigned long long>(R.Stats.get(Key)));
  std::printf("  (paper: \"the cost of intraprocedural analysis dominates "
              "the cost of the interprocedural phase\")\n");
  std::printf("  jump functions built: constant=%llu passthrough=%llu "
              "polynomial=%llu bottom=%llu\n\n",
              static_cast<unsigned long long>(R.Stats.get("jf_constant")),
              static_cast<unsigned long long>(R.Stats.get("jf_passthrough")),
              static_cast<unsigned long long>(R.Stats.get("jf_polynomial")),
              static_cast<unsigned long long>(R.Stats.get("jf_bottom")));

  JsonValue Doc = JsonValue::object();
  Doc.set("instructions", M->instructionCount());
  Doc.set("counters", R.Stats.toJson());
  benchReport("costs", std::move(Doc));
}

} // namespace

int main(int argc, char **argv) {
  printPhaseBreakdown();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
