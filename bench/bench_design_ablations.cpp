//===- bench/bench_design_ablations.cpp - implementation knobs ------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Ablations over the implementation choices DESIGN.md documents:
//
//  - the polynomial expression-tree size cap (paper Section 3.1.5 notes
//    polynomial data structures are "significantly greater" in
//    complexity; the paper also observes real polynomials stay tiny, so
//    the cap should cost nothing — verified here);
//  - gated-single-assignment phi resolution on/off (Section 4.2), and
//    its relationship to complete propagation;
//  - hash-consing pressure: how many unique expressions the value
//    numbering creates per program (two structurally equal jump
//    functions share one node — the "context-independent
//    representation" of Section 4.1).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "workload/Generator.h"
#include "workload/Study.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ipcp;

namespace {

void printExpressionCapAblation() {
  std::printf("Expression-cap ablation (substituted constants over the "
              "suite):\n  cap:");
  for (unsigned Cap : {2u, 4u, 8u, 64u, 256u})
    std::printf("  %4u", Cap);
  std::printf("\n  refs:");
  for (unsigned Cap : {2u, 4u, 8u, 64u, 256u}) {
    unsigned Total = 0;
    for (const SuiteProgram &Prog : benchmarkSuite()) {
      IPCPOptions Opts;
      Opts.MaxExprNodes = Cap;
      Total += runCell(Prog, Opts);
    }
    std::printf("  %4u", Total);
  }
  std::printf("\n  (the paper: real polynomial jump functions are small; "
              "past a handful of nodes\n   the cap stops mattering)\n\n");
}

void printGatedSSAAblation() {
  std::printf("Gated-SSA ablation (suite totals):\n");
  unsigned Plain = 0, Gated = 0, Complete = 0;
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    auto M = loadSuiteModule(Prog);
    Plain += runIPCP(*M).TotalConstantRefs;
    IPCPOptions G;
    G.UseGatedSSA = true;
    Gated += runIPCP(*M, G).TotalConstantRefs;
    Complete += runCompletePropagation(*M).TotalConstantRefs;
  }
  std::printf("  plain single pass:       %u\n", Plain);
  std::printf("  gated single pass:       %u\n", Gated);
  std::printf("  complete propagation:    %u\n", Complete);
  std::printf("  (Section 4.2: gated == complete, with no DCE rounds)\n\n");
}

void printHashConsingPressure() {
  std::printf("Hash-consing pressure (unique expressions per program):\n");
  std::printf("  program      instructions  unique-exprs\n");
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    auto M = loadSuiteModule(Prog);
    IPCPResult R = runIPCP(*M);
    std::printf("  %-12s %12u  %12llu\n", Prog.Name.c_str(),
                M->instructionCount(),
                static_cast<unsigned long long>(R.Stats.get("unique_exprs")));
  }
  std::printf("\n");
}

void BM_ExpressionCap(benchmark::State &State) {
  GeneratorConfig Config;
  Config.Seed = 31;
  Config.NumProcs = 24;
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(generateProgram(Config), Diags);
  auto M = lowerProgram(*Ast);
  IPCPOptions Opts;
  Opts.MaxExprNodes = State.range(0);
  for (auto _ : State) {
    IPCPResult R = runIPCP(*M, Opts);
    benchmark::DoNotOptimize(R.TotalConstantRefs);
  }
}

void BM_GatedSSA(benchmark::State &State) {
  auto M = loadSuiteModule(*findSuiteProgram("ocean"));
  IPCPOptions Opts;
  Opts.UseGatedSSA = State.range(0);
  State.SetLabel(State.range(0) ? "gated" : "plain");
  for (auto _ : State) {
    IPCPResult R = runIPCP(*M, Opts);
    benchmark::DoNotOptimize(R.TotalConstantRefs);
  }
}

} // namespace

BENCHMARK(BM_ExpressionCap)->Arg(4)->Arg(64)->Arg(256)->ArgName("cap");
BENCHMARK(BM_GatedSSA)->Arg(0)->Arg(1)->ArgName("gated");

int main(int argc, char **argv) {
  printExpressionCapAblation();
  printGatedSSAAblation();
  printHashConsingPressure();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
