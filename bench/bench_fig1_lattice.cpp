//===- bench/bench_fig1_lattice.cpp - Figure 1 reproduction ---------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Figure 1 of the paper defines the constant propagation lattice and its
// meet operation. This binary (a) prints the meet rule table so it can be
// compared against the figure directly, and (b) measures the cost of the
// meet and of jump-function evaluation — the innermost operations of the
// propagation phase whose complexity Section 3.1.5 analyzes.
//
//===----------------------------------------------------------------------===//

#include "core/JumpFunction.h"
#include "core/Lattice.h"
#include "ir/Module.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace ipcp;

static void printMeetTable() {
  const LatticeValue Samples[] = {
      LatticeValue::top(), LatticeValue::constant(7),
      LatticeValue::constant(9), LatticeValue::bottom()};
  std::printf("Figure 1: the constant propagation lattice meet\n");
  std::printf("%8s", "/\\");
  for (LatticeValue B : Samples)
    std::printf("%8s", B.str().c_str());
  std::printf("\n");
  for (LatticeValue A : Samples) {
    std::printf("%8s", A.str().c_str());
    for (LatticeValue B : Samples)
      std::printf("%8s", meet(A, B).str().c_str());
    std::printf("\n");
  }
  std::printf("\n");
}

static void BM_MeetOperation(benchmark::State &State) {
  std::vector<LatticeValue> Values;
  for (int I = 0; I != 64; ++I)
    Values.push_back(I % 3 == 0   ? LatticeValue::top()
                     : I % 3 == 1 ? LatticeValue::constant(I)
                                  : LatticeValue::bottom());
  size_t I = 0;
  for (auto _ : State) {
    LatticeValue Result =
        meet(Values[I % Values.size()], Values[(I + 7) % Values.size()]);
    benchmark::DoNotOptimize(Result);
    ++I;
  }
}
BENCHMARK(BM_MeetOperation);

/// Evaluation cost by jump function shape: constant vs pass-through vs
/// polynomial (the cost(J) factor in the propagation bound).
static void BM_JumpFunctionEvaluate(benchmark::State &State) {
  Module M;
  Procedure *P = M.createProcedure("p");
  Variable *A = P->addFormal("a");
  Variable *B = P->addFormal("b");
  SymExprContext Ctx;

  int Shape = State.range(0);
  JumpFunction JF;
  switch (Shape) {
  case 0:
    JF = JumpFunction::constant(Ctx, 42);
    break;
  case 1:
    JF = JumpFunction(Ctx.getFormal(A));
    break;
  default: {
    // ((a * 2 + b) * 3 + a): a small polynomial, like those the paper
    // observed in practice.
    const SymExpr *E = Ctx.getBinary(
        BinaryOp::Add,
        Ctx.getBinary(
            BinaryOp::Mul,
            Ctx.getBinary(BinaryOp::Add,
                          Ctx.getBinary(BinaryOp::Mul, Ctx.getFormal(A),
                                        Ctx.getConst(2)),
                          Ctx.getFormal(B)),
            Ctx.getConst(3)),
        Ctx.getFormal(A));
    JF = JumpFunction(E);
    break;
  }
  }

  LatticeEnv Env;
  Env[A] = LatticeValue::constant(5);
  Env[B] = LatticeValue::constant(6);
  for (auto _ : State) {
    LatticeValue Result = JF.evaluate(Env);
    benchmark::DoNotOptimize(Result);
  }
}
BENCHMARK(BM_JumpFunctionEvaluate)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->ArgName("shape(0=const,1=passthru,2=poly)");

int main(int argc, char **argv) {
  printMeetTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
