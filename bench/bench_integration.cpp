//===- bench/bench_integration.cpp - the Wegman-Zadeck comparison ---------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Paper Section 5: "Wegman and Zadeck propose combining procedure
// integration with intraprocedural constant propagation to detect
// interprocedural constants. Because procedure integration makes paths
// through the program's call graph explicit, the interprocedural
// information computed along a particular path may be improved. ...
// Data is not yet available to indicate whether or not the proposed
// algorithm would perform efficiently in practice."
//
// This binary supplies that data for our suite: for each program it
// compares the jump-function framework (constants found, analysis cost)
// against procedure integration followed by purely intraprocedural
// propagation (constants found, code growth). The expected picture:
// integration matches or beats the framework's precision on small
// programs — paths are explicit — but pays multiplicative code growth,
// cannot integrate recursion, and its costs scale with the integrated
// (not the original) program.
//
//===----------------------------------------------------------------------===//

#include "core/Inlining.h"
#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "workload/Programs.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ipcp;

namespace {

void printComparisonTable() {
  std::printf("Jump-function framework vs procedure integration "
              "(Wegman-Zadeck style):\n");
  std::printf("program      framework-refs  integrated-refs  insts-before  "
              "insts-after  growth\n");
  unsigned FrameworkTotal = 0, IntegratedTotal = 0;
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    auto M = loadSuiteModule(Prog);
    IPCPResult Framework = runIPCP(*M);
    IntegrationResult Integrated = runIntegrationBasedIPCP(*M);
    FrameworkTotal += Framework.TotalConstantRefs;
    IntegratedTotal += Integrated.ConstantRefs;
    double Growth =
        Integrated.Inlining.InstructionsBefore
            ? double(Integrated.Inlining.InstructionsAfter) /
                  Integrated.Inlining.InstructionsBefore
            : 1.0;
    std::printf("%-12s %14u  %15u  %12u  %11u  %5.2fx\n", Prog.Name.c_str(),
                Framework.TotalConstantRefs, Integrated.ConstantRefs,
                Integrated.Inlining.InstructionsBefore,
                Integrated.Inlining.InstructionsAfter, Growth);
  }
  std::printf("totals: framework=%u integrated=%u\n", FrameworkTotal,
              IntegratedTotal);
  std::printf("(Integrated counts are references in the *grown* program; "
              "recursion stops integration\n while the framework handles it "
              "— see tests/InliningTests.cpp and EXPERIMENTS.md.)\n\n");
}

void BM_FrameworkAnalysis(benchmark::State &State) {
  auto M = loadSuiteModule(benchmarkSuite()[State.range(0)]);
  State.SetLabel(benchmarkSuite()[State.range(0)].Name + "/framework");
  for (auto _ : State) {
    IPCPResult R = runIPCP(*M);
    benchmark::DoNotOptimize(R.TotalConstantRefs);
  }
}
BENCHMARK(BM_FrameworkAnalysis)->DenseRange(0, 11)->ArgName("program");

void BM_IntegrationAnalysis(benchmark::State &State) {
  auto M = loadSuiteModule(benchmarkSuite()[State.range(0)]);
  State.SetLabel(benchmarkSuite()[State.range(0)].Name + "/integration");
  for (auto _ : State) {
    IntegrationResult R = runIntegrationBasedIPCP(*M);
    benchmark::DoNotOptimize(R.ConstantRefs);
  }
}
BENCHMARK(BM_IntegrationAnalysis)->DenseRange(0, 11)->ArgName("program");

} // namespace

int main(int argc, char **argv) {
  printComparisonTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
