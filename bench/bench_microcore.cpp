//===- bench/bench_microcore.cpp - Data-oriented core micro paths ---------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Microbenchmarks for the three core paths the data-oriented rewrite
// (docs/PERFORMANCE.md) targets, isolated from the full pipeline:
//
//  1. SymExpr construction and hash-consing — a fresh-context build of a
//     deterministic expression population over the suite's real formals
//     (every intern is a miss) and an all-hit rebuild in a populated
//     context (every intern probes the flat hash-cons table and returns
//     the existing node).
//
//  2. VAL-vector meet sweep — the propagator's inner update, a meet into
//     a flat per-procedure lattice vector, swept over a deterministic
//     slot/value pattern.
//
//  3. Instruction-stream traversal — a linear walk of the contiguous
//     Procedure::instStream() array versus the nested block-list walk it
//     replaced, over every procedure of the twelve suite modules.
//
// The headline numbers land in BENCH_microcore.json (when
// IPCP_BENCH_JSON_DIR is set, see docs/OBSERVABILITY.md). The traversal
// and hash-consing sections carry deterministic counters (instruction
// count, unique-node count) so CI can pin them; wall-clock figures are
// informational. Exit is nonzero if the two traversals disagree or an
// all-hit rebuild allocates new nodes — both would be correctness bugs
// in the flat layouts, not perf regressions.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "core/JumpFunction.h"
#include "core/Lattice.h"
#include "ir/BasicBlock.h"
#include "ir/Instructions.h"
#include "ir/Module.h"
#include "ir/Procedure.h"
#include "support/Statistics.h"
#include "workload/Programs.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <vector>

using namespace ipcp;

namespace {

/// The twelve suite modules, loaded once and shared by every section.
const std::vector<std::unique_ptr<Module>> &suiteModules() {
  static std::vector<std::unique_ptr<Module>> Mods = [] {
    std::vector<std::unique_ptr<Module>> Out;
    for (const SuiteProgram &Prog : benchmarkSuite())
      Out.push_back(loadSuiteModule(Prog));
    return Out;
  }();
  return Mods;
}

/// Every formal of every suite procedure, in module/procedure order —
/// the variable population real jump-function construction runs over.
const std::vector<Variable *> &suiteFormals() {
  static std::vector<Variable *> Formals = [] {
    std::vector<Variable *> Out;
    for (const auto &M : suiteModules())
      for (const auto &P : M->procedures())
        for (Variable *F : P->formals())
          Out.push_back(F);
    return Out;
  }();
  return Formals;
}

/// Builds a deterministic polynomial-shaped expression population over
/// \p Formals in \p Ctx: for each adjacent formal pair (a, b) the trees
/// a, b, a*k, a*k+b, (a*k+b)-a, and -(a+b) for k in 2..5. Mirrors the
/// shapes the polynomial jump-function builder interns. Returns the
/// number of root constructions attempted (not unique nodes).
size_t buildExprPopulation(SymExprContext &Ctx,
                           const std::vector<Variable *> &Formals) {
  size_t Roots = 0;
  for (size_t I = 0; I + 1 < Formals.size(); ++I) {
    const SymExpr *A = Ctx.getFormal(Formals[I]);
    const SymExpr *B = Ctx.getFormal(Formals[I + 1]);
    for (ConstantValue K = 2; K <= 5; ++K) {
      const SymExpr *Scaled = Ctx.getBinary(BinaryOp::Mul, A, Ctx.getConst(K));
      const SymExpr *Affine = Ctx.getBinary(BinaryOp::Add, Scaled, B);
      const SymExpr *Diff = Ctx.getBinary(BinaryOp::Sub, Affine, A);
      const SymExpr *Neg =
          Ctx.getUnary(UnaryOp::Neg, Ctx.getBinary(BinaryOp::Add, A, B));
      benchmark::DoNotOptimize(Diff);
      benchmark::DoNotOptimize(Neg);
      Roots += 4;
    }
  }
  return Roots;
}

/// One meet sweep over \p VAL with a deterministic slot/value pattern;
/// returns the number of lowerings (changed slots). The pattern lowers
/// each slot at most twice (top -> constant -> bottom for every third
/// slot), like the propagator's two-drop lattice discipline.
size_t meetSweep(std::vector<LatticeValue> &VAL) {
  size_t Lowerings = 0;
  for (size_t I = 0, N = VAL.size(); I != N; ++I) {
    LatticeValue Incoming = LatticeValue::constant(ConstantValue(I % 7));
    LatticeValue Met = meet(VAL[I], Incoming);
    if (!(Met == VAL[I])) {
      VAL[I] = Met;
      ++Lowerings;
    }
  }
  for (size_t I = 0, N = VAL.size(); I < N; I += 3) {
    LatticeValue Met = meet(VAL[I], LatticeValue::constant(ConstantValue(1)));
    if (!(Met == VAL[I])) {
      VAL[I] = Met;
      ++Lowerings;
    }
  }
  return Lowerings;
}

/// Linear walk of the flat instruction stream: one contiguous array per
/// procedure, no per-block indirection.
size_t walkLinear() {
  size_t Count = 0;
  for (const auto &M : suiteModules())
    for (const auto &P : M->procedures()) {
      const Procedure::InstStream &S = P->instStream();
      for (Instruction *I : S.Insts) {
        benchmark::DoNotOptimize(I);
        ++Count;
      }
    }
  return Count;
}

/// The nested walk the stream replaced: block list, then each block's
/// instruction vector of unique_ptrs.
size_t walkNested() {
  size_t Count = 0;
  for (const auto &M : suiteModules())
    for (const auto &P : M->procedures())
      for (const auto &B : P->blocks())
        for (const auto &I : B->instructions()) {
          benchmark::DoNotOptimize(I.get());
          ++Count;
        }
  return Count;
}

// Google-benchmark coverage of the same paths for `--benchmark_*` runs;
// the headline section in main() is what CI and BENCH_microcore.json
// consume.

void BM_SymExprFreshBuild(benchmark::State &State) {
  for (auto _ : State) {
    SymExprContext Ctx;
    benchmark::DoNotOptimize(buildExprPopulation(Ctx, suiteFormals()));
  }
}
BENCHMARK(BM_SymExprFreshBuild);

void BM_SymExprAllHit(benchmark::State &State) {
  SymExprContext Ctx;
  buildExprPopulation(Ctx, suiteFormals());
  for (auto _ : State)
    benchmark::DoNotOptimize(buildExprPopulation(Ctx, suiteFormals()));
}
BENCHMARK(BM_SymExprAllHit);

void BM_ValMeetSweep(benchmark::State &State) {
  for (auto _ : State) {
    std::vector<LatticeValue> VAL(4096, LatticeValue::top());
    benchmark::DoNotOptimize(meetSweep(VAL));
  }
}
BENCHMARK(BM_ValMeetSweep);

void BM_InstStreamLinear(benchmark::State &State) {
  walkLinear(); // materialize the cached streams outside the loop
  for (auto _ : State)
    benchmark::DoNotOptimize(walkLinear());
}
BENCHMARK(BM_InstStreamLinear);

void BM_InstStreamNested(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(walkNested());
}
BENCHMARK(BM_InstStreamNested);

/// Times \p Reps calls of \p Fn and returns microseconds per call.
template <typename FnT> double usPerCall(unsigned Reps, FnT Fn) {
  Timer T;
  for (unsigned I = 0; I != Reps; ++I)
    Fn();
  return T.seconds() * 1e6 / Reps;
}

} // namespace

int main(int argc, char **argv) {
  const unsigned Reps = 200;

  // Hash-consing: fresh-context (all-miss) population build, then the
  // all-hit rebuild. The rebuild must not grow the context.
  SymExprContext HitCtx;
  size_t Roots = buildExprPopulation(HitCtx, suiteFormals());
  size_t UniqueExprs = HitCtx.uniqueExprCount();
  double FreshUs = usPerCall(Reps, [] {
    SymExprContext Ctx;
    buildExprPopulation(Ctx, suiteFormals());
  });
  double HitUs =
      usPerCall(Reps, [&] { buildExprPopulation(HitCtx, suiteFormals()); });
  bool HitStable = HitCtx.uniqueExprCount() == UniqueExprs;

  // VAL meet sweep over a propagator-sized flat row.
  const size_t ValSlots = 4096;
  std::vector<LatticeValue> Probe(ValSlots, LatticeValue::top());
  size_t Lowerings = meetSweep(Probe);
  double MeetUs = usPerCall(Reps, [&] {
    std::vector<LatticeValue> VAL(ValSlots, LatticeValue::top());
    meetSweep(VAL);
  });

  // Instruction-stream traversal, linear vs nested.
  size_t LinearCount = walkLinear();
  size_t NestedCount = walkNested();
  double LinearUs = usPerCall(Reps, [] { walkLinear(); });
  double NestedUs = usPerCall(Reps, [] { walkNested(); });

  std::printf("microcore paths over the %zu-program suite "
              "(%u reps each):\n",
              benchmarkSuite().size(), Reps);
  std::printf("  symexpr fresh build    %8.2f us/build  "
              "(%zu roots -> %zu unique nodes)\n",
              FreshUs, Roots, UniqueExprs);
  std::printf("  symexpr all-hit build  %8.2f us/build  "
              "(context stable: %s)\n",
              HitUs, HitStable ? "yes" : "NO");
  std::printf("  VAL meet sweep         %8.2f us/sweep  "
              "(%zu slots, %zu lowerings)\n",
              MeetUs, ValSlots, Lowerings);
  std::printf("  inst stream linear     %8.2f us/walk   "
              "(%zu instructions)\n",
              LinearUs, LinearCount);
  std::printf("  inst stream nested     %8.2f us/walk   "
              "(%zu instructions)\n",
              NestedUs, NestedCount);
  bool CountsAgree = LinearCount == NestedCount;
  std::printf("  traversals agree: %s\n\n", CountsAgree ? "yes" : "NO");

  JsonValue Doc = JsonValue::object();
  JsonValue Sym = JsonValue::object();
  Sym.set("roots", Roots);
  Sym.set("unique_exprs", UniqueExprs);
  Sym.set("fresh_us", FreshUs);
  Sym.set("all_hit_us", HitUs);
  Sym.set("all_hit_stable", HitStable);
  Doc.set("symexpr", std::move(Sym));
  JsonValue Meet = JsonValue::object();
  Meet.set("slots", ValSlots);
  Meet.set("lowerings", Lowerings);
  Meet.set("sweep_us", MeetUs);
  Doc.set("val_meet", std::move(Meet));
  JsonValue Stream = JsonValue::object();
  Stream.set("instructions", LinearCount);
  Stream.set("linear_us", LinearUs);
  Stream.set("nested_us", NestedUs);
  Doc.set("inst_stream", std::move(Stream));
  Doc.set("ok", HitStable && CountsAgree);
  benchReport("microcore", std::move(Doc));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return (HitStable && CountsAgree) ? 0 : 1;
}
