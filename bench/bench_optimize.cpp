//===- bench/bench_optimize.cpp - transform pipeline effectiveness --------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Measures what the paper's Table 2/3 experiments imagine but never
// run: the transformed program. For each suite program the harness
// optimizes the module (constant substitution + folding, then copy
// propagation; docs/TRANSFORMS.md), interprets the original and the
// optimized module, and reports the interpreted-execution speedup in
// steps alongside the rewrite totals. BENCH_optimize.json carries the
// per-program rows and the suite totals.
//
// The harness FAILS (exit 1) if the pipeline stops doing real work on
// the suite — fewer than 10 substitutions or no resolved branch in
// total — so an effectiveness regression cannot slip through a green
// bench run. The same floor is enforced by the fast tests
// (tests/TransformTests.cpp).
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "interp/Interpreter.h"
#include "transform/Transform.h"
#include "workload/Programs.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ipcp;

namespace {

/// Wall-clock cost of the full pipeline per suite program.
void BM_OptimizeSuiteProgram(benchmark::State &State) {
  const SuiteProgram &Prog = benchmarkSuite()[State.range(0)];
  State.SetLabel(Prog.Name.c_str());
  for (auto _ : State) {
    State.PauseTiming();
    std::unique_ptr<Module> M = loadSuiteModule(Prog);
    State.ResumeTiming();
    OptimizationResult R = optimizeModule(*M);
    benchmark::DoNotOptimize(R.InstsRemoved);
  }
}

/// The headline table: rewrite totals and interpreted-step speedup per
/// suite program, emitted to stdout and BENCH_optimize.json.
int printEffectivenessTable() {
  ExecutionOptions Exec;
  Exec.MaxSteps = 50'000'000;
  Exec.RecordEntrySnapshots = false;

  std::printf("Transform pipeline effectiveness (docs/TRANSFORMS.md):\n");
  std::printf("  %-10s %6s %6s %6s %6s %6s | %9s %9s %8s\n", "program",
              "subst", "folds", "brs", "copies", "insts-", "steps", "steps'",
              "speedup");

  JsonValue Rows = JsonValue::array();
  unsigned Substitutions = 0, Folds = 0, Branches = 0, Copies = 0,
           InstsRemoved = 0;
  uint64_t StepsBefore = 0, StepsAfter = 0;
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    std::unique_ptr<Module> M = loadSuiteModule(Prog);
    ExecutionResult Before = interpret(*M, Exec);
    OptimizationResult R = optimizeModule(*M);
    ExecutionResult After = interpret(*M, Exec);
    if (!Before.ok() || !After.ok() || Before.Output != After.Output) {
      std::fprintf(stderr, "FATAL: %s changed behavior under --optimize\n",
                   Prog.Name.c_str());
      return 1;
    }

    double Speedup = After.Steps ? double(Before.Steps) / double(After.Steps)
                                 : 1.0;
    std::printf("  %-10s %6u %6u %6u %6u %6u | %9llu %9llu %7.2fx\n",
                Prog.Name.c_str(), R.Substitutions, R.Folds,
                R.BranchesResolved,
                R.CopiesPropagated, R.InstsRemoved,
                static_cast<unsigned long long>(Before.Steps),
                static_cast<unsigned long long>(After.Steps), Speedup);

    JsonValue Row = JsonValue::object();
    Row.set("program", Prog.Name.c_str());
    Row.set("substitutions", R.Substitutions);
    Row.set("folds", R.Folds);
    Row.set("branches_resolved", R.BranchesResolved);
    Row.set("copies_propagated", R.CopiesPropagated);
    Row.set("insts_removed", R.InstsRemoved);
    Row.set("instructions_before", R.InstructionsBefore);
    Row.set("instructions_after", R.InstructionsAfter);
    Row.set("steps_before", Before.Steps);
    Row.set("steps_after", After.Steps);
    Row.set("speedup", Speedup);
    Rows.push(std::move(Row));

    Substitutions += R.Substitutions;
    Folds += R.Folds;
    Branches += R.BranchesResolved;
    Copies += R.CopiesPropagated;
    InstsRemoved += R.InstsRemoved;
    StepsBefore += Before.Steps;
    StepsAfter += After.Steps;
  }

  double SuiteSpeedup =
      StepsAfter ? double(StepsBefore) / double(StepsAfter) : 1.0;
  std::printf("  suite totals: %u substitutions, %u folds, %u branches "
              "resolved, %u copies propagated, %u instructions removed\n",
              Substitutions, Folds, Branches, Copies, InstsRemoved);
  std::printf("  interpreted-execution speedup: %llu -> %llu steps "
              "(%.3fx)\n\n",
              static_cast<unsigned long long>(StepsBefore),
              static_cast<unsigned long long>(StepsAfter), SuiteSpeedup);

  JsonValue Totals = JsonValue::object();
  Totals.set("substitutions", Substitutions);
  Totals.set("folds", Folds);
  Totals.set("branches_resolved", Branches);
  Totals.set("copies_propagated", Copies);
  Totals.set("insts_removed", InstsRemoved);
  Totals.set("steps_before", StepsBefore);
  Totals.set("steps_after", StepsAfter);
  Totals.set("speedup", SuiteSpeedup);

  JsonValue Doc = JsonValue::object();
  Doc.set("rows", std::move(Rows));
  Doc.set("totals", std::move(Totals));
  benchReport("optimize", std::move(Doc));

  if (auto Baseline = benchBaseline("optimize"))
    if (const JsonValue *Base = Baseline->find("totals"))
      if (const JsonValue *BaseSpeedup = Base->find("speedup"))
        if (BaseSpeedup->isNumber())
          printBaselineDelta("suite speedup", BaseSpeedup->asDouble(),
                             SuiteSpeedup, "x", /*LowerIsBetter=*/false);

  // Acceptance floor: the pipeline must keep substituting and resolving
  // on the paper's suite.
  if (Substitutions < 10 || Branches < 1) {
    std::fprintf(stderr,
                 "FATAL: effectiveness floor missed (%u substitutions, %u "
                 "branches resolved; need >=10 and >=1)\n",
                 Substitutions, Branches);
    return 1;
  }
  if (StepsAfter > StepsBefore) {
    std::fprintf(stderr, "FATAL: optimized suite executes MORE steps\n");
    return 1;
  }
  return 0;
}

} // namespace

BENCHMARK(BM_OptimizeSuiteProgram)
    ->DenseRange(0, 11)
    ->ArgName("program")
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  if (int RC = printEffectivenessTable())
    return RC;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
