//===- bench/bench_propagation.cpp - propagation complexity ---------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Measures the interprocedural propagation phase against the paper's
// complexity claims (Section 3.1.5 / the 1986 bounds):
//
//  - the lattice is shallow, so each VAL entry lowers at most twice and
//    work is O(sum of cost(J) * |support(J)|) — the lowering counters
//    printed below grow linearly in the number of parameters even on
//    pathological call-graph shapes;
//  - pass-through chains of any depth converge in time linear in the
//    chain length;
//  - parallel (diamond) call sites with agreeing constants cost the same
//    as one site; disagreeing sites lower twice and stop.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "core/BindingGraph.h"
#include "core/Pipeline.h"
#include "core/ValueNumbering.h"
#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "workload/Generator.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

using namespace ipcp;

namespace {

/// A pass-through chain of the given depth: main -> p0 -> ... -> pN-1.
std::string chainProgram(unsigned Depth) {
  std::string Src;
  for (unsigned I = 0; I != Depth; ++I) {
    Src += "proc p" + std::to_string(I) + "(a, b) {\n";
    if (I + 1 != Depth)
      Src += "  call p" + std::to_string(I + 1) + "(a, b);\n";
    Src += "  print a + b;\n}\n";
  }
  Src += "proc main() { call p0(7, 9); }\n";
  return Src;
}

/// A fan: main calls every leaf directly (wide, shallow).
std::string fanProgram(unsigned Width, bool Agree) {
  std::string Src;
  for (unsigned I = 0; I != Width; ++I)
    Src += "proc leaf" + std::to_string(I) + "(x) { print x; }\n";
  Src += "proc shared(y) { print y; }\n";
  Src += "proc main() {\n";
  for (unsigned I = 0; I != Width; ++I) {
    Src += "  call leaf" + std::to_string(I) + "(5);\n";
    Src += "  call shared(" + std::to_string(Agree ? 5 : I) + ");\n";
  }
  Src += "}\n";
  return Src;
}

std::unique_ptr<Module> compile(const std::string &Source) {
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Source, Diags);
  return lowerProgram(*Ast);
}

void BM_ChainDepth(benchmark::State &State) {
  auto M = compile(chainProgram(State.range(0)));
  for (auto _ : State) {
    IPCPResult R = runIPCP(*M);
    benchmark::DoNotOptimize(R.TotalConstantRefs);
  }
  State.SetItemsProcessed(State.iterations() * State.range(0));
}
BENCHMARK(BM_ChainDepth)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->ArgName("depth");

void BM_FanWidth(benchmark::State &State) {
  auto M = compile(fanProgram(State.range(0), State.range(1)));
  State.SetLabel(State.range(1) ? "agreeing" : "disagreeing");
  for (auto _ : State) {
    IPCPResult R = runIPCP(*M);
    benchmark::DoNotOptimize(R.TotalConstantRefs);
  }
}
BENCHMARK(BM_FanWidth)
    ->ArgsProduct({{8, 32, 128}, {0, 1}})
    ->ArgNames({"width", "agree"});

/// Compares the two solver formulations (call-graph worklist vs the
/// binding multigraph of [7]) on the same prebuilt jump functions.
void BM_SolverFormulation(benchmark::State &State) {
  GeneratorConfig Config;
  Config.Seed = 17;
  Config.NumProcs = State.range(0);
  Config.NumGlobals = 8;
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(generateProgram(Config), Diags);
  auto M = lowerProgram(*Ast);

  CallGraph CG(*M);
  ModRefInfo MRI = ModRefInfo::compute(*M, CG);
  SSAMap SSA;
  for (const std::unique_ptr<Procedure> &P : M->procedures())
    SSA.emplace(P.get(), constructSSA(*P, MRI));
  SymExprContext Ctx;
  ReturnJumpFunctions RJFs = ReturnJumpFunctions::build(CG, MRI, SSA, Ctx);
  ForwardJumpFunctions FJFs = ForwardJumpFunctions::build(
      CG, MRI, SSA, &RJFs, Ctx, JumpFunctionKind::Polynomial);
  IPCPOptions Opts;

  bool Binding = State.range(1);
  State.SetLabel(Binding ? "binding-graph" : "call-graph");
  for (auto _ : State) {
    ConstantsMap CM =
        Binding ? propagateConstantsBindingGraph(CG, MRI, FJFs, Opts)
                : propagateConstants(CG, MRI, FJFs, Opts);
    benchmark::DoNotOptimize(CM.totalConstants());
  }
}
BENCHMARK(BM_SolverFormulation)
    ->ArgsProduct({{16, 48}, {0, 1}})
    ->ArgNames({"procs", "binding"});

JsonValue printSolverComparison() {
  std::printf("Solver formulations on one 48-procedure generated program "
              "(identical fixpoints):\n");
  GeneratorConfig Config;
  Config.Seed = 17;
  Config.NumProcs = 48;
  Config.NumGlobals = 8;
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(generateProgram(Config), Diags);
  auto M = lowerProgram(*Ast);
  CallGraph CG(*M);
  ModRefInfo MRI = ModRefInfo::compute(*M, CG);
  SSAMap SSA;
  for (const std::unique_ptr<Procedure> &P : M->procedures())
    SSA.emplace(P.get(), constructSSA(*P, MRI));
  SymExprContext Ctx;
  ReturnJumpFunctions RJFs = ReturnJumpFunctions::build(CG, MRI, SSA, Ctx);
  ForwardJumpFunctions FJFs = ForwardJumpFunctions::build(
      CG, MRI, SSA, &RJFs, Ctx, JumpFunctionKind::Polynomial);
  IPCPOptions Opts;
  PropagatorStats CGStats, BGStats;
  ConstantsMap A = propagateConstants(CG, MRI, FJFs, Opts, &CGStats);
  ConstantsMap B =
      propagateConstantsBindingGraph(CG, MRI, FJFs, Opts, &BGStats);
  std::printf("  call-graph worklist:      %6llu JF evaluations, %4llu "
              "lowerings\n",
              (unsigned long long)CGStats.JumpFunctionEvaluations,
              (unsigned long long)CGStats.Lowerings);
  std::printf("  binding multigraph [7]:   %6llu JF evaluations, %4llu "
              "lowerings\n",
              (unsigned long long)BGStats.JumpFunctionEvaluations,
              (unsigned long long)BGStats.Lowerings);
  std::printf("  fixpoints agree: %s; constants: %u\n",
              A.equals(B) ? "yes" : "NO", A.totalConstants());
  std::printf("  (lowering counts may differ: a cell can step T->_|_ "
              "directly in one order\n   and T->c->_|_ in the other; "
              "which formulation evaluates less depends on\n   call-graph "
              "density — sparse support favors the binding graph.)\n\n");

  auto StatsJson = [](const PropagatorStats &S) {
    JsonValue Obj = JsonValue::object();
    Obj.set("visits", S.ProcVisits);
    Obj.set("evaluations", S.JumpFunctionEvaluations);
    Obj.set("lowerings", S.Lowerings);
    return Obj;
  };
  JsonValue Out = JsonValue::object();
  Out.set("call_graph_worklist", StatsJson(CGStats));
  Out.set("binding_multigraph", StatsJson(BGStats));
  Out.set("fixpoints_agree", A.equals(B));
  Out.set("constants", A.totalConstants());
  return Out;
}

JsonValue printLoweringLinearity() {
  std::printf("Lowerings vs chain depth (each VAL entry lowers at most "
              "twice; Figure-1 depth bound):\n");
  std::printf("  depth  parameters  lowerings  evaluations  visits\n");
  JsonValue Out = JsonValue::array();
  for (unsigned Depth : {4u, 16u, 64u, 256u}) {
    auto M = compile(chainProgram(Depth));
    IPCPResult R = runIPCP(*M);
    std::printf("  %5u  %10u  %9llu  %11llu  %6llu\n", Depth, 2 * Depth,
                static_cast<unsigned long long>(R.Stats.get("prop_lowerings")),
                static_cast<unsigned long long>(
                    R.Stats.get("prop_evaluations")),
                static_cast<unsigned long long>(R.Stats.get("prop_visits")));
    JsonValue Row = JsonValue::object();
    Row.set("depth", Depth);
    Row.set("parameters", 2 * Depth);
    Row.set("lowerings", R.Stats.get("prop_lowerings"));
    Row.set("evaluations", R.Stats.get("prop_evaluations"));
    Row.set("visits", R.Stats.get("prop_visits"));
    Out.push(std::move(Row));
  }
  std::printf("\n");
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  JsonValue Doc = JsonValue::object();
  Doc.set("lowering_linearity", printLoweringLinearity());
  Doc.set("solver_comparison", printSolverComparison());
  benchReport("propagation", std::move(Doc));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
