//===- bench/bench_scaling.cpp - Parallel suite + SCC scheduling ----------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The two performance claims of the parallel-analysis work:
//
//  1. Suite throughput scales with worker threads: one full analysis of
//     the twelve-program suite is timed through SuiteRunner at 1/2/4/8
//     jobs (programs are independent, so the ideal is linear until the
//     core count runs out).
//
//  2. SCC condensation scheduling does strictly less work than the naive
//     FIFO worklist: per-program propagator counters (prop_visits,
//     prop_evaluations, prop_revisits) are summed over the suite for
//     both schedules.
//
//  3. Incremental re-analysis through the summary cache beats a cold
//     run after a single-procedure edit: each program is analyzed once
//     to populate an in-memory cache, one leaf procedure is edited, and
//     the warm rerun must perform strictly fewer jump-function
//     evaluations (prop_evaluations) than an identical cold run — while
//     producing a byte-identical normalized report. An *unedited* warm
//     rerun must perform none at all.
//
// The headline numbers land in BENCH_scaling.json and
// BENCH_incremental.json (when IPCP_BENCH_JSON_DIR is set) so
// trajectories can compare them mechanically; the google-benchmark
// timings cover the same suite pass per thread count plus the
// warm-vs-cold suite pass.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "analysis/CallGraph.h"
#include "core/Report.h"
#include "core/SuiteRunner.h"
#include "core/SummaryCache.h"
#include "ir/Instructions.h"
#include "support/Statistics.h"
#include "workload/Study.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ipcp;

namespace {

/// Modules parsed once; analysis runs re-use them read-only.
std::vector<std::unique_ptr<Module>> &suiteModules() {
  static std::vector<std::unique_ptr<Module>> Modules = [] {
    std::vector<std::unique_ptr<Module>> Out;
    for (const SuiteProgram &Prog : benchmarkSuite())
      Out.push_back(loadSuiteModule(Prog));
    return Out;
  }();
  return Modules;
}

/// One full suite analysis across \p Jobs workers; returns the summed
/// constant-reference count (also serving as a determinism check).
unsigned analyzeSuite(unsigned Jobs) {
  const std::vector<std::unique_ptr<Module>> &Modules = suiteModules();
  std::vector<unsigned> Refs(Modules.size(), 0);
  SuiteRunner Runner(Jobs);
  Runner.run(Modules.size(), [&](size_t I) {
    Refs[I] = runIPCP(*Modules[I]).TotalConstantRefs;
  });
  unsigned Total = 0;
  for (unsigned R : Refs)
    Total += R;
  return Total;
}

/// Propagator work counters over the whole suite for one schedule.
StatisticSet scheduleCounters(PropagationSchedule Schedule) {
  StatisticSet Sum;
  IPCPOptions Opts;
  Opts.Schedule = Schedule;
  for (const std::unique_ptr<Module> &M : suiteModules())
    Sum.merge(runIPCP(*M, Opts).Stats);
  return Sum;
}

void BM_AnalyzeSuiteJobs(benchmark::State &State) {
  unsigned Jobs = unsigned(State.range(0));
  State.SetLabel("jobs=" + std::to_string(Jobs));
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeSuite(Jobs));
}
BENCHMARK(BM_AnalyzeSuiteJobs)->RangeMultiplier(2)->Range(1, 8)->ArgName("jobs");

/// The leaf procedure (no call sites of its own, at least one caller) a
/// single-procedure edit targets, or "" when the program has none.
std::string editableLeaf(Module &M) {
  CallGraph CG(M);
  for (Procedure *P : CG.procedures())
    if (CG.callSitesIn(P).empty() && !CG.callers(P).empty())
      return P->getName();
  return std::string();
}

/// Clones \p M and prepends `print 7` to procedure \p Leaf. The body
/// hash changes but the summary content (MOD, jump functions) does not,
/// so the edit models the smallest interesting incremental change: the
/// leaf's SCC must re-analyze while every caller cuts off early.
std::unique_ptr<Module> withEditedLeaf(const Module &M,
                                       const std::string &Leaf) {
  std::unique_ptr<Module> Edited = M.clone();
  Procedure *P = Edited->findProcedure(Leaf);
  P->getEntryBlock()->insertAtTop(std::make_unique<PrintInst>(
      Edited->nextInstId(), SourceLoc(), Edited->getConstant(7)));
  return Edited;
}

void BM_SuiteCached(benchmark::State &State) {
  bool Warm = State.range(0) != 0;
  State.SetLabel(Warm ? "warm" : "cold");
  // The warm variant analyzes through per-program caches populated once
  // outside the timed loop; every iteration after that is a full warm
  // rerun (all summaries adopted, no propagation work).
  std::vector<SummaryCache> Caches(suiteModules().size());
  if (Warm)
    for (size_t I = 0; I != suiteModules().size(); ++I) {
      IPCPOptions Opts;
      Opts.Cache = &Caches[I];
      runIPCP(*suiteModules()[I], Opts);
    }
  for (auto _ : State) {
    unsigned Total = 0;
    for (size_t I = 0; I != suiteModules().size(); ++I) {
      IPCPOptions Opts;
      if (Warm)
        Opts.Cache = &Caches[I];
      Total += runIPCP(*suiteModules()[I], Opts).TotalConstantRefs;
    }
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_SuiteCached)->DenseRange(0, 1)->ArgName("warm");

void BM_PropagateSchedule(benchmark::State &State) {
  IPCPOptions Opts;
  Opts.Schedule = State.range(0) == 0 ? PropagationSchedule::SCC
                                      : PropagationSchedule::FIFO;
  State.SetLabel(State.range(0) == 0 ? "scc" : "fifo");
  for (auto _ : State) {
    unsigned Total = 0;
    for (const std::unique_ptr<Module> &M : suiteModules())
      Total += runIPCP(*M, Opts).TotalConstantRefs;
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_PropagateSchedule)->DenseRange(0, 1)->ArgName("schedule");

} // namespace

int main(int argc, char **argv) {
  // Thread-scaling sweep. On a single hardware thread the times stay
  // flat — the interesting check there is that the answers are identical
  // at every job count.
  unsigned Baseline = analyzeSuite(1);
  JsonValue Threads = JsonValue::array();
  double SequentialMs = 0;
  std::printf("suite analysis wall time by worker count:\n");
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    Timer T;
    unsigned Refs = analyzeSuite(Jobs);
    double Ms = T.seconds() * 1e3;
    if (Jobs == 1)
      SequentialMs = Ms;
    std::printf("  jobs=%u  %8.2f ms  speedup %.2fx  refs=%u%s\n", Jobs, Ms,
                Ms > 0 ? SequentialMs / Ms : 0.0, Refs,
                Refs == Baseline ? "" : "  MISMATCH");
    JsonValue Entry = JsonValue::object();
    Entry.set("jobs", Jobs);
    Entry.set("suite_ms", Ms);
    Entry.set("constant_refs", Refs);
    Entry.set("matches_sequential", Refs == Baseline);
    Threads.push(std::move(Entry));
  }

  // Scheduling work counters: the SCC condensation must strictly beat
  // the FIFO baseline on both visits and evaluations.
  StatisticSet SCC = scheduleCounters(PropagationSchedule::SCC);
  StatisticSet FIFO = scheduleCounters(PropagationSchedule::FIFO);
  auto CountersJson = [](const StatisticSet &S) {
    JsonValue Obj = JsonValue::object();
    Obj.set("prop_visits", S.get("prop_visits"));
    Obj.set("prop_evaluations", S.get("prop_evaluations"));
    Obj.set("prop_lowerings", S.get("prop_lowerings"));
    Obj.set("prop_revisits", S.get("prop_revisits"));
    return Obj;
  };
  bool StrictlyFewer = SCC.get("prop_visits") < FIFO.get("prop_visits") &&
                       SCC.get("prop_evaluations") <
                           FIFO.get("prop_evaluations");
  std::printf("\npropagator work over the suite (scc vs fifo):\n"
              "  visits:      %llu vs %llu\n"
              "  evaluations: %llu vs %llu\n"
              "  revisits:    %llu vs %llu\n"
              "  scc strictly fewer: %s\n\n",
              (unsigned long long)SCC.get("prop_visits"),
              (unsigned long long)FIFO.get("prop_visits"),
              (unsigned long long)SCC.get("prop_evaluations"),
              (unsigned long long)FIFO.get("prop_evaluations"),
              (unsigned long long)SCC.get("prop_revisits"),
              (unsigned long long)FIFO.get("prop_revisits"),
              StrictlyFewer ? "yes" : "NO");

  JsonValue Schedules = JsonValue::object();
  Schedules.set("scc", CountersJson(SCC));
  Schedules.set("fifo", CountersJson(FIFO));
  JsonValue Doc = JsonValue::object();
  Doc.set("threads", std::move(Threads));
  Doc.set("schedules", std::move(Schedules));
  Doc.set("scc_strictly_fewer", StrictlyFewer);
  benchReport("scaling", std::move(Doc));

  // Delta against the committed pre-rewrite baseline. Timings should
  // improve; the deterministic work counters must not move at all (the
  // data-oriented rewrite changes layout, not the algorithm).
  if (std::optional<JsonValue> Base = benchBaseline("scaling")) {
    const JsonValue *BaseThreads = Base->find("threads");
    if (BaseThreads && BaseThreads->isArray() && BaseThreads->size() > 0) {
      std::printf("vs committed baseline (bench/baselines):\n");
      const JsonValue *BaseMs = BaseThreads->at(0).find("suite_ms");
      if (BaseMs)
        printBaselineDelta("suite jobs=1", BaseMs->asDouble(), SequentialMs,
                           "ms");
    }
    bool CountersStable = true;
    if (const JsonValue *BaseSched = Base->find("schedules"))
      for (const char *Sched : {"scc", "fifo"})
        if (const JsonValue *BS = BaseSched->find(Sched)) {
          const StatisticSet &Now =
              std::string(Sched) == "scc" ? SCC : FIFO;
          for (const char *Key :
               {"prop_visits", "prop_evaluations", "prop_revisits"})
            if (const JsonValue *BV = BS->find(Key))
              if (uint64_t(BV->asInt()) != Now.get(Key)) {
                std::printf("  COUNTER DRIFT %s/%s: baseline %lld now "
                            "%llu\n",
                            Sched, Key, (long long)BV->asInt(),
                            (unsigned long long)Now.get(Key));
                CountersStable = false;
              }
        }
    std::printf("  deterministic counters vs baseline: %s\n\n",
                CountersStable ? "unchanged" : "CHANGED");
  }

  // Incremental re-analysis: populate a per-program summary cache from a
  // pristine run, edit one leaf procedure, and compare the warm rerun
  // against an identical cold run. Three claims, each per program:
  //   - an unedited warm rerun evaluates no jump functions at all;
  //   - the warm edited rerun evaluates strictly fewer than cold;
  //   - the normalized warm and cold reports are byte-identical.
  const std::vector<SuiteProgram> &Suite = benchmarkSuite();
  JsonValue Programs = JsonValue::array();
  uint64_t ColdEvals = 0, WarmEvals = 0, RerunEvals = 0;
  unsigned Edited = 0;
  bool AllMatch = true;
  std::printf("incremental rerun after one leaf edit (warm vs cold "
              "prop_evaluations):\n");
  for (size_t I = 0; I != suiteModules().size(); ++I) {
    Module &M = *suiteModules()[I];
    JsonValue Entry = JsonValue::object();
    Entry.set("program", Suite[I].Name);
    std::string Leaf = editableLeaf(M);
    if (Leaf.empty()) {
      Entry.set("skipped", true);
      std::printf("  %-12s (no leaf procedure with callers; skipped)\n",
                  Suite[I].Name.c_str());
      Programs.push(std::move(Entry));
      continue;
    }
    ++Edited;
    SummaryCache Cache;
    IPCPOptions Warm;
    Warm.Cache = &Cache;
    runIPCP(M, Warm); // populate
    uint64_t Rerun = runIPCP(M, Warm).Stats.get("prop_evaluations");
    std::unique_ptr<Module> EditedM = withEditedLeaf(M, Leaf);
    IPCPResult WarmRes = runIPCP(*EditedM, Warm);
    IPCPResult ColdRes = runIPCP(*EditedM);
    uint64_t WE = WarmRes.Stats.get("prop_evaluations");
    uint64_t CE = ColdRes.Stats.get("prop_evaluations");
    JsonValue WarmDoc = resultToJson(WarmRes);
    JsonValue ColdDoc = resultToJson(ColdRes);
    normalizeReportForDiff(WarmDoc);
    normalizeReportForDiff(ColdDoc);
    bool Match = WarmDoc.dump() == ColdDoc.dump();
    RerunEvals += Rerun;
    WarmEvals += WE;
    ColdEvals += CE;
    AllMatch = AllMatch && Match;
    std::printf("  %-12s edit %-10s warm %4llu vs cold %4llu  rerun %llu"
                "%s\n",
                Suite[I].Name.c_str(), Leaf.c_str(),
                (unsigned long long)WE, (unsigned long long)CE,
                (unsigned long long)Rerun, Match ? "" : "  REPORT MISMATCH");
    Entry.set("edited_procedure", Leaf);
    Entry.set("warm_evaluations", WE);
    Entry.set("cold_evaluations", CE);
    Entry.set("warm_rerun_evaluations", Rerun);
    Entry.set("reports_match", Match);
    Programs.push(std::move(Entry));
  }
  bool IncrementalOk = Edited > 0 && WarmEvals < ColdEvals &&
                       RerunEvals == 0 && AllMatch;
  std::printf("  total: warm %llu vs cold %llu, unedited reruns %llu, "
              "reports %s -> %s\n\n",
              (unsigned long long)WarmEvals, (unsigned long long)ColdEvals,
              (unsigned long long)RerunEvals,
              AllMatch ? "match" : "MISMATCH", IncrementalOk ? "ok" : "FAIL");

  JsonValue IncDoc = JsonValue::object();
  IncDoc.set("programs", std::move(Programs));
  IncDoc.set("edited_programs", Edited);
  IncDoc.set("warm_evaluations", WarmEvals);
  IncDoc.set("cold_evaluations", ColdEvals);
  IncDoc.set("warm_rerun_evaluations", RerunEvals);
  IncDoc.set("reports_match", AllMatch);
  IncDoc.set("warm_strictly_fewer", WarmEvals < ColdEvals);
  IncDoc.set("ok", IncrementalOk);
  benchReport("incremental", std::move(IncDoc));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return (StrictlyFewer && IncrementalOk) ? 0 : 1;
}
