//===- bench/bench_scaling.cpp - Parallel suite + SCC scheduling ----------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The two performance claims of the parallel-analysis work:
//
//  1. Suite throughput scales with worker threads: one full analysis of
//     the twelve-program suite is timed through SuiteRunner at 1/2/4/8
//     jobs (programs are independent, so the ideal is linear until the
//     core count runs out).
//
//  2. SCC condensation scheduling does strictly less work than the naive
//     FIFO worklist: per-program propagator counters (prop_visits,
//     prop_evaluations, prop_revisits) are summed over the suite for
//     both schedules.
//
// The headline numbers land in BENCH_scaling.json (when
// IPCP_BENCH_JSON_DIR is set) so trajectories can compare them
// mechanically; the google-benchmark timings cover the same suite pass
// per thread count.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "core/SuiteRunner.h"
#include "support/Statistics.h"
#include "workload/Study.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ipcp;

namespace {

/// Modules parsed once; analysis runs re-use them read-only.
std::vector<std::unique_ptr<Module>> &suiteModules() {
  static std::vector<std::unique_ptr<Module>> Modules = [] {
    std::vector<std::unique_ptr<Module>> Out;
    for (const SuiteProgram &Prog : benchmarkSuite())
      Out.push_back(loadSuiteModule(Prog));
    return Out;
  }();
  return Modules;
}

/// One full suite analysis across \p Jobs workers; returns the summed
/// constant-reference count (also serving as a determinism check).
unsigned analyzeSuite(unsigned Jobs) {
  const std::vector<std::unique_ptr<Module>> &Modules = suiteModules();
  std::vector<unsigned> Refs(Modules.size(), 0);
  SuiteRunner Runner(Jobs);
  Runner.run(Modules.size(), [&](size_t I) {
    Refs[I] = runIPCP(*Modules[I]).TotalConstantRefs;
  });
  unsigned Total = 0;
  for (unsigned R : Refs)
    Total += R;
  return Total;
}

/// Propagator work counters over the whole suite for one schedule.
StatisticSet scheduleCounters(PropagationSchedule Schedule) {
  StatisticSet Sum;
  IPCPOptions Opts;
  Opts.Schedule = Schedule;
  for (const std::unique_ptr<Module> &M : suiteModules())
    Sum.merge(runIPCP(*M, Opts).Stats);
  return Sum;
}

void BM_AnalyzeSuiteJobs(benchmark::State &State) {
  unsigned Jobs = unsigned(State.range(0));
  State.SetLabel("jobs=" + std::to_string(Jobs));
  for (auto _ : State)
    benchmark::DoNotOptimize(analyzeSuite(Jobs));
}
BENCHMARK(BM_AnalyzeSuiteJobs)->RangeMultiplier(2)->Range(1, 8)->ArgName("jobs");

void BM_PropagateSchedule(benchmark::State &State) {
  IPCPOptions Opts;
  Opts.Schedule = State.range(0) == 0 ? PropagationSchedule::SCC
                                      : PropagationSchedule::FIFO;
  State.SetLabel(State.range(0) == 0 ? "scc" : "fifo");
  for (auto _ : State) {
    unsigned Total = 0;
    for (const std::unique_ptr<Module> &M : suiteModules())
      Total += runIPCP(*M, Opts).TotalConstantRefs;
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_PropagateSchedule)->DenseRange(0, 1)->ArgName("schedule");

} // namespace

int main(int argc, char **argv) {
  // Thread-scaling sweep. On a single hardware thread the times stay
  // flat — the interesting check there is that the answers are identical
  // at every job count.
  unsigned Baseline = analyzeSuite(1);
  JsonValue Threads = JsonValue::array();
  double SequentialMs = 0;
  std::printf("suite analysis wall time by worker count:\n");
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    Timer T;
    unsigned Refs = analyzeSuite(Jobs);
    double Ms = T.seconds() * 1e3;
    if (Jobs == 1)
      SequentialMs = Ms;
    std::printf("  jobs=%u  %8.2f ms  speedup %.2fx  refs=%u%s\n", Jobs, Ms,
                Ms > 0 ? SequentialMs / Ms : 0.0, Refs,
                Refs == Baseline ? "" : "  MISMATCH");
    JsonValue Entry = JsonValue::object();
    Entry.set("jobs", Jobs);
    Entry.set("suite_ms", Ms);
    Entry.set("constant_refs", Refs);
    Entry.set("matches_sequential", Refs == Baseline);
    Threads.push(std::move(Entry));
  }

  // Scheduling work counters: the SCC condensation must strictly beat
  // the FIFO baseline on both visits and evaluations.
  StatisticSet SCC = scheduleCounters(PropagationSchedule::SCC);
  StatisticSet FIFO = scheduleCounters(PropagationSchedule::FIFO);
  auto CountersJson = [](const StatisticSet &S) {
    JsonValue Obj = JsonValue::object();
    Obj.set("prop_visits", S.get("prop_visits"));
    Obj.set("prop_evaluations", S.get("prop_evaluations"));
    Obj.set("prop_lowerings", S.get("prop_lowerings"));
    Obj.set("prop_revisits", S.get("prop_revisits"));
    return Obj;
  };
  bool StrictlyFewer = SCC.get("prop_visits") < FIFO.get("prop_visits") &&
                       SCC.get("prop_evaluations") <
                           FIFO.get("prop_evaluations");
  std::printf("\npropagator work over the suite (scc vs fifo):\n"
              "  visits:      %llu vs %llu\n"
              "  evaluations: %llu vs %llu\n"
              "  revisits:    %llu vs %llu\n"
              "  scc strictly fewer: %s\n\n",
              (unsigned long long)SCC.get("prop_visits"),
              (unsigned long long)FIFO.get("prop_visits"),
              (unsigned long long)SCC.get("prop_evaluations"),
              (unsigned long long)FIFO.get("prop_evaluations"),
              (unsigned long long)SCC.get("prop_revisits"),
              (unsigned long long)FIFO.get("prop_revisits"),
              StrictlyFewer ? "yes" : "NO");

  JsonValue Schedules = JsonValue::object();
  Schedules.set("scc", CountersJson(SCC));
  Schedules.set("fifo", CountersJson(FIFO));
  JsonValue Doc = JsonValue::object();
  Doc.set("threads", std::move(Threads));
  Doc.set("schedules", std::move(Schedules));
  Doc.set("scc_strictly_fewer", StrictlyFewer);
  benchReport("scaling", std::move(Doc));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return StrictlyFewer ? 0 : 1;
}
