//===- bench/bench_service.cpp - Analysis-as-a-service throughput ---------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The performance claims of the ipcp_serverd work (docs/SERVICE.md):
//
//  1. A resident service beats one-shot driver invocations on repeat
//     requests: once a session's summary cache is populated, a warm
//     `analyze` performs ZERO jump-function evaluations for an unedited
//     program — the response is assembled entirely from adopted
//     summaries. This harness asserts that (exit 1 if any warm request
//     evaluates anything).
//
//  2. Batching amortizes per-request overhead: one `analyze-batch`
//     carrying the whole suite is compared against the same programs as
//     individual requests.
//
// The headline numbers — cold / warm / batched throughput in requests
// per second plus p50/p99/p999 per-request latency — land in
// BENCH_service.json
// (when IPCP_BENCH_JSON_DIR is set, see docs/OBSERVABILITY.md) so
// trajectories can compare them mechanically. Requests go through the
// real wire codec (ServiceEngine::parseRequestLine), not hand-built
// structs, so the measured path is the daemon's path minus the socket.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "core/ServiceEngine.h"
#include "support/Statistics.h"
#include "workload/Programs.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace ipcp;

namespace {

ServiceEngine::Config benchConfig() {
  ServiceEngine::Config Conf;
  Conf.ScrubTimings = true;
  Conf.SuiteResolver = [](const std::string &Name, std::string &Out) {
    const SuiteProgram *Prog = findSuiteProgram(Name);
    if (!Prog)
      return false;
    Out = Prog->Source;
    return true;
  };
  return Conf;
}

/// An `analyze` request line for one suite program; \p Session == ""
/// means no resident cache (every request is a cold run).
std::string analyzeLine(const std::string &Suite, const std::string &Session) {
  std::string Line = "{\"op\":\"analyze\",\"suite\":\"" + Suite + "\"";
  if (!Session.empty())
    Line += ",\"session\":\"" + Session + "\"";
  return Line + "}";
}

/// One `analyze-batch` line carrying every suite program.
std::string batchLine(const std::string &Session) {
  std::string Line = "{\"op\":\"analyze-batch\",\"requests\":[";
  bool First = true;
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    if (!First)
      Line += ",";
    First = false;
    Line += analyzeLine(Prog.Name, Session);
  }
  return Line + "]}";
}

/// Parses \p Line through the wire codec and dispatches it, returning
/// the response body. Aborts loudly on anything but status "ok" — the
/// suite programs all analyze cleanly, so an error here is a bench bug.
JsonValue dispatch(ServiceEngine &Engine, const std::string &Line) {
  ServiceRequest Req;
  std::string Code, Error;
  if (!Engine.parseRequestLine(Line, Req, &Code, &Error)) {
    std::fprintf(stderr, "bench_service: bad request line (%s): %s\n",
                 Code.c_str(), Error.c_str());
    std::exit(1);
  }
  JsonValue Body = Req.Op == ServiceRequest::Kind::AnalyzeBatch
                       ? Engine.analyzeBatch(Req)
                       : Engine.analyze(Req);
  const JsonValue *Status = Body.find("status");
  if (!Status || !Status->isString() || Status->asString() != "ok") {
    std::fprintf(stderr, "bench_service: request failed: %s\n",
                 Body.dump().c_str());
    std::exit(1);
  }
  return Body;
}

/// prop_evaluations out of one analyze response body.
uint64_t evalsOf(const JsonValue &Body) {
  const JsonValue *Report = Body.find("report");
  const JsonValue *Result = Report ? Report->find("result") : nullptr;
  const JsonValue *Counters = Result ? Result->find("counters") : nullptr;
  const JsonValue *Evals =
      Counters ? Counters->find("prop_evaluations") : nullptr;
  return Evals ? uint64_t(Evals->asInt()) : 0;
}

/// Sum of prop_evaluations over a batch response's items.
uint64_t batchEvals(const JsonValue &Body) {
  uint64_t Sum = 0;
  if (const JsonValue *Items = Body.find("responses"))
    for (size_t I = 0; I != Items->size(); ++I)
      Sum += evalsOf(Items->at(I));
  return Sum;
}

struct ModeResult {
  uint64_t Requests = 0;
  uint64_t Programs = 0;
  uint64_t Evaluations = 0;
  double TotalMs = 0;
  double P50Ms = 0;
  double P99Ms = 0;
  double P999Ms = 0;
};

/// \p Q in (0, 1]; \p Sorted ascending. Ceil-index convention, so p99 of
/// 100 samples is the 99th.
double percentile(const std::vector<double> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t Idx = size_t(Q * double(Sorted.size()) + 0.999999);
  return Sorted[std::min(Idx, Sorted.size()) - 1];
}

/// Runs \p Rounds passes over the request \p Lines, timing each request.
ModeResult runMode(ServiceEngine &Engine, const std::vector<std::string> &Lines,
                   unsigned Rounds, unsigned ProgramsPerRequest) {
  ModeResult R;
  std::vector<double> Latencies;
  Latencies.reserve(size_t(Rounds) * Lines.size());
  for (unsigned Round = 0; Round != Rounds; ++Round)
    for (const std::string &Line : Lines) {
      Timer T;
      JsonValue Body = dispatch(Engine, Line);
      double Ms = T.seconds() * 1e3;
      Latencies.push_back(Ms);
      R.TotalMs += Ms;
      R.Evaluations += ProgramsPerRequest > 1 ? batchEvals(Body) : evalsOf(Body);
      ++R.Requests;
      R.Programs += ProgramsPerRequest;
    }
  std::sort(Latencies.begin(), Latencies.end());
  R.P50Ms = percentile(Latencies, 0.50);
  R.P99Ms = percentile(Latencies, 0.99);
  R.P999Ms = percentile(Latencies, 0.999);
  return R;
}

JsonValue modeJson(const ModeResult &R) {
  JsonValue Obj = JsonValue::object();
  Obj.set("requests", R.Requests);
  Obj.set("programs", R.Programs);
  Obj.set("prop_evaluations", R.Evaluations);
  Obj.set("total_ms", R.TotalMs);
  Obj.set("requests_per_sec", R.TotalMs > 0 ? R.Requests / (R.TotalMs / 1e3)
                                            : 0.0);
  Obj.set("programs_per_sec", R.TotalMs > 0 ? R.Programs / (R.TotalMs / 1e3)
                                            : 0.0);
  Obj.set("p50_ms", R.P50Ms);
  Obj.set("p99_ms", R.P99Ms);
  Obj.set("p999_ms", R.P999Ms);
  return Obj;
}

// Google-benchmark coverage of the same three paths, for `--benchmark_*`
// style runs; the headline section below is what CI and BENCH_service.json
// consume.

void BM_ServiceAnalyze(benchmark::State &State) {
  bool Warm = State.range(0) != 0;
  State.SetLabel(Warm ? "warm" : "cold");
  ServiceEngine Engine(benchConfig());
  std::vector<std::string> Lines;
  for (const SuiteProgram &Prog : benchmarkSuite())
    Lines.push_back(analyzeLine(Prog.Name, Warm ? "bm" : ""));
  if (Warm)
    for (const std::string &Line : Lines)
      dispatch(Engine, Line); // populate the session caches
  for (auto _ : State)
    for (const std::string &Line : Lines)
      benchmark::DoNotOptimize(dispatch(Engine, Line));
}
BENCHMARK(BM_ServiceAnalyze)->DenseRange(0, 1)->ArgName("warm");

void BM_ServiceBatch(benchmark::State &State) {
  ServiceEngine Engine(benchConfig());
  std::string Line = batchLine("bm");
  dispatch(Engine, Line); // populate
  for (auto _ : State)
    benchmark::DoNotOptimize(dispatch(Engine, Line));
}
BENCHMARK(BM_ServiceBatch);

} // namespace

int main(int argc, char **argv) {
  const unsigned Rounds = 25;
  std::vector<std::string> ColdLines, WarmLines;
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    ColdLines.push_back(analyzeLine(Prog.Name, ""));
    WarmLines.push_back(analyzeLine(Prog.Name, "bench"));
  }

  // Cold: no session, so every request re-analyzes from scratch.
  ServiceEngine ColdEngine(benchConfig());
  ModeResult Cold = runMode(ColdEngine, ColdLines, Rounds, 1);

  // Warm: resident session caches, populated by one untimed pass.
  ServiceEngine WarmEngine(benchConfig());
  for (const std::string &Line : WarmLines)
    dispatch(WarmEngine, Line);
  ModeResult Warmed = runMode(WarmEngine, WarmLines, Rounds, 1);

  // Batched warm: one request carries the whole suite.
  ServiceEngine BatchEngine(benchConfig());
  std::string Batch = batchLine("bench");
  dispatch(BatchEngine, Batch);
  ModeResult Batched =
      runMode(BatchEngine, {Batch}, Rounds,
              unsigned(benchmarkSuite().size()));

  std::printf("service throughput over the %zu-program suite "
              "(%u rounds each):\n",
              benchmarkSuite().size(), Rounds);
  auto Print = [](const char *Name, const ModeResult &R) {
    std::printf("  %-8s %6llu req  %8.1f req/s  %8.1f prog/s  "
                "p99 %7.3f ms  evals %llu\n",
                Name, (unsigned long long)R.Requests,
                R.TotalMs > 0 ? R.Requests / (R.TotalMs / 1e3) : 0.0,
                R.TotalMs > 0 ? R.Programs / (R.TotalMs / 1e3) : 0.0, R.P99Ms,
                (unsigned long long)R.Evaluations);
  };
  Print("cold", Cold);
  Print("warm", Warmed);
  Print("batched", Batched);

  // The headline claim: warm requests — batched or not — for unedited
  // programs perform no jump-function evaluations at all.
  bool WarmFree = Warmed.Evaluations == 0 && Batched.Evaluations == 0;
  bool ColdWorked = Cold.Evaluations > 0;
  std::printf("  warm requests evaluate nothing: %s\n\n",
              WarmFree ? "yes" : "NO");

  JsonValue Doc = JsonValue::object();
  Doc.set("cold", modeJson(Cold));
  Doc.set("warm", modeJson(Warmed));
  Doc.set("batched", modeJson(Batched));
  Doc.set("warm_evaluations_zero", WarmFree);
  Doc.set("ok", WarmFree && ColdWorked);
  benchReport("service", std::move(Doc));

  // Delta against the committed pre-rewrite baseline (throughput is
  // higher-is-better, latency lower-is-better).
  if (std::optional<JsonValue> Base = benchBaseline("service")) {
    std::printf("vs committed baseline (bench/baselines):\n");
    auto Delta = [&](const char *Mode, const ModeResult &Now) {
      const JsonValue *BM = Base->find(Mode);
      if (!BM)
        return;
      double NowRps = Now.TotalMs > 0 ? Now.Requests / (Now.TotalMs / 1e3)
                                      : 0.0;
      if (const JsonValue *V = BM->find("requests_per_sec"))
        printBaselineDelta((std::string(Mode) + " req/s").c_str(),
                           V->asDouble(), NowRps, "",
                           /*LowerIsBetter=*/false);
      if (const JsonValue *V = BM->find("p99_ms"))
        printBaselineDelta((std::string(Mode) + " p99").c_str(),
                           V->asDouble(), Now.P99Ms, "ms");
    };
    Delta("cold", Cold);
    Delta("warm", Warmed);
    Delta("batched", Batched);
    std::printf("\n");
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return (WarmFree && ColdWorked) ? 0 : 1;
}
