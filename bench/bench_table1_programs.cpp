//===- bench/bench_table1_programs.cpp - Table 1 reproduction -------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 1, "Characteristics of program test suite": line
// counts (excluding comments and blanks, the paper's convention),
// procedure counts, and mean/median lines per procedure, for the twelve
// synthetic stand-ins. Also times the frontend (parse + check + lower)
// per program, since every analysis configuration pays it.
//
//===----------------------------------------------------------------------===//

#include "core/SuiteRunner.h"
#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "workload/Study.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ipcp;

static void BM_FrontendPerProgram(benchmark::State &State) {
  const SuiteProgram &Prog = benchmarkSuite()[State.range(0)];
  State.SetLabel(Prog.Name);
  for (auto _ : State) {
    DiagnosticsEngine Diags;
    std::optional<Program> Ast = parseAndCheck(Prog.Source, Diags);
    auto M = lowerProgram(*Ast);
    benchmark::DoNotOptimize(M->instructionCount());
  }
}
BENCHMARK(BM_FrontendPerProgram)->DenseRange(0, 11)->ArgName("program");

int main(int argc, char **argv) {
  SuiteRunner Runner;
  std::printf("%s\n",
              formatTable1(computeTable1(benchmarkSuite(), &Runner)).c_str());
  std::printf("(Stand-ins for the paper's SPEC'89/PERFECT members; see "
              "DESIGN.md for the substitution rationale.)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
