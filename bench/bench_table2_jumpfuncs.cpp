//===- bench/bench_table2_jumpfuncs.cpp - Table 2 reproduction ------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 2, "Constants found through use of jump functions":
// the substituted-constant counts for the four forward jump function
// classes (with return jump functions) and for polynomial/pass-through
// without return jump functions, over the twelve-program suite.
//
// Expected shape (paper Section 4.2): polynomial == pass-through >=
// intraprocedural >= literal in every row; return jump functions matter
// in a few programs and dominate ocean.
//
// The timing benchmarks measure one full analysis per configuration over
// the whole suite — the compile-time side of the paper's cost/precision
// tradeoff.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "core/SuiteRunner.h"
#include "workload/Study.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ipcp;

namespace {

/// Modules parsed once; analysis benchmarks re-run on them.
std::vector<std::unique_ptr<Module>> &suiteModules() {
  static std::vector<std::unique_ptr<Module>> Modules = [] {
    std::vector<std::unique_ptr<Module>> Out;
    for (const SuiteProgram &Prog : benchmarkSuite())
      Out.push_back(loadSuiteModule(Prog));
    return Out;
  }();
  return Modules;
}

void runSuite(benchmark::State &State, IPCPOptions Opts) {
  for (auto _ : State) {
    unsigned Total = 0;
    for (const std::unique_ptr<Module> &M : suiteModules())
      Total += runIPCP(*M, Opts).TotalConstantRefs;
    benchmark::DoNotOptimize(Total);
  }
}

void BM_AnalyzeSuite(benchmark::State &State) {
  IPCPOptions Opts;
  switch (State.range(0)) {
  case 0:
    Opts.ForwardKind = JumpFunctionKind::Literal;
    State.SetLabel("literal");
    break;
  case 1:
    Opts.ForwardKind = JumpFunctionKind::IntraproceduralConstant;
    State.SetLabel("intra");
    break;
  case 2:
    Opts.ForwardKind = JumpFunctionKind::PassThrough;
    State.SetLabel("pass-through");
    break;
  default:
    Opts.ForwardKind = JumpFunctionKind::Polynomial;
    State.SetLabel("polynomial");
    break;
  }
  runSuite(State, Opts);
}
BENCHMARK(BM_AnalyzeSuite)->DenseRange(0, 3)->ArgName("class");

void BM_AnalyzeSuiteNoReturnJFs(benchmark::State &State) {
  IPCPOptions Opts;
  Opts.UseReturnJumpFunctions = false;
  State.SetLabel("polynomial/no-ret");
  runSuite(State, Opts);
}
BENCHMARK(BM_AnalyzeSuiteNoReturnJFs);

} // namespace

int main(int argc, char **argv) {
  SuiteRunner Runner;
  std::vector<Table2Row> Rows = computeTable2(benchmarkSuite(), &Runner);
  std::printf("%s\n", formatTable2(Rows).c_str());

  unsigned Poly = 0, Pass = 0, Intra = 0, Literal = 0, PolyNoRet = 0;
  for (const Table2Row &Row : Rows) {
    Poly += Row.Polynomial;
    Pass += Row.PassThrough;
    Intra += Row.Intraprocedural;
    Literal += Row.Literal;
    PolyNoRet += Row.PolynomialNoRet;
  }
  std::printf("totals: polynomial=%u pass-through=%u intra=%u literal=%u "
              "polynomial-without-return-JFs=%u\n",
              Poly, Pass, Intra, Literal, PolyNoRet);
  std::printf("paper-shape checks: poly==pass-through: %s; "
              "pass>=intra>=literal: %s\n\n",
              Poly == Pass ? "yes" : "NO",
              (Pass >= Intra && Intra >= Literal) ? "yes" : "NO");

  JsonValue Totals = JsonValue::object();
  Totals.set("polynomial", Poly);
  Totals.set("pass_through", Pass);
  Totals.set("intraprocedural", Intra);
  Totals.set("literal", Literal);
  Totals.set("polynomial_no_return_jf", PolyNoRet);
  JsonValue Doc = JsonValue::object();
  Doc.set("table2", table2ToJson(Rows));
  Doc.set("totals", std::move(Totals));
  benchReport("table2", std::move(Doc));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
