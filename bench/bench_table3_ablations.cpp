//===- bench/bench_table3_ablations.cpp - Table 3 reproduction ------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Reproduces Table 3, "Comparison of most precise jump function with
// other propagation techniques": polynomial jump functions without MOD
// information, with MOD information, complete propagation (iterated with
// dead code elimination), and purely intraprocedural propagation.
//
// Expected shape (paper Section 4.2): MOD information exposes many
// additional constants ("particularly striking" in the global-heavy
// programs); complete propagation adds few (ocean and spec77 only);
// interprocedural beats intraprocedural everywhere.
//
//===----------------------------------------------------------------------===//

#include "BenchReport.h"
#include "core/SuiteRunner.h"
#include "workload/Study.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ipcp;

namespace {

std::vector<std::unique_ptr<Module>> &suiteModules() {
  static std::vector<std::unique_ptr<Module>> Modules = [] {
    std::vector<std::unique_ptr<Module>> Out;
    for (const SuiteProgram &Prog : benchmarkSuite())
      Out.push_back(loadSuiteModule(Prog));
    return Out;
  }();
  return Modules;
}

void BM_SuiteWithConfig(benchmark::State &State) {
  IPCPOptions Opts;
  bool Complete = false;
  switch (State.range(0)) {
  case 0:
    Opts.UseModInformation = false;
    State.SetLabel("polynomial-without-MOD");
    break;
  case 1:
    State.SetLabel("polynomial-with-MOD");
    break;
  case 2:
    Complete = true;
    State.SetLabel("complete-propagation");
    break;
  default:
    Opts.IntraproceduralOnly = true;
    State.SetLabel("intraprocedural-only");
    break;
  }
  for (auto _ : State) {
    unsigned Total = 0;
    for (const std::unique_ptr<Module> &M : suiteModules())
      Total += Complete ? runCompletePropagation(*M, Opts).TotalConstantRefs
                        : runIPCP(*M, Opts).TotalConstantRefs;
    benchmark::DoNotOptimize(Total);
  }
}
BENCHMARK(BM_SuiteWithConfig)->DenseRange(0, 3)->ArgName("config");

} // namespace

int main(int argc, char **argv) {
  SuiteRunner Runner;
  std::vector<Table3Row> Rows = computeTable3(benchmarkSuite(), &Runner);
  std::printf("%s\n", formatTable3(Rows).c_str());

  unsigned NoMod = 0, WithMod = 0, Complete = 0, Intra = 0;
  unsigned ModHurts = 0, CompleteHelps = 0;
  for (const Table3Row &Row : Rows) {
    NoMod += Row.PolynomialWithoutMod;
    WithMod += Row.PolynomialWithMod;
    Complete += Row.CompletePropagation;
    Intra += Row.IntraproceduralOnly;
    if (Row.PolynomialWithoutMod < Row.PolynomialWithMod)
      ++ModHurts;
    if (Row.CompletePropagation > Row.PolynomialWithMod)
      ++CompleteHelps;
  }
  std::printf("totals: without-MOD=%u with-MOD=%u complete=%u "
              "intraprocedural=%u\n",
              NoMod, WithMod, Complete, Intra);
  std::printf("programs hurt by losing MOD: %u/12; programs helped by "
              "complete propagation: %u/12 (paper: ocean and spec77)\n\n",
              ModHurts, CompleteHelps);

  JsonValue Totals = JsonValue::object();
  Totals.set("polynomial_without_mod", NoMod);
  Totals.set("polynomial_with_mod", WithMod);
  Totals.set("complete_propagation", Complete);
  Totals.set("intraprocedural_only", Intra);
  Totals.set("programs_hurt_by_losing_mod", ModHurts);
  Totals.set("programs_helped_by_complete", CompleteHelps);
  JsonValue Doc = JsonValue::object();
  Doc.set("table3", table3ToJson(Rows));
  Doc.set("totals", std::move(Totals));
  benchReport("table3", std::move(Doc));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
