file(REMOVE_RECURSE
  "CMakeFiles/bench_costs.dir/bench_costs.cpp.o"
  "CMakeFiles/bench_costs.dir/bench_costs.cpp.o.d"
  "bench_costs"
  "bench_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
