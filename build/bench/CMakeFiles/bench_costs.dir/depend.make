# Empty dependencies file for bench_costs.
# This may be replaced when dependencies are built.
