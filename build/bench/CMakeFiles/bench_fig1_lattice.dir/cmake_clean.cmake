file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_lattice.dir/bench_fig1_lattice.cpp.o"
  "CMakeFiles/bench_fig1_lattice.dir/bench_fig1_lattice.cpp.o.d"
  "bench_fig1_lattice"
  "bench_fig1_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
