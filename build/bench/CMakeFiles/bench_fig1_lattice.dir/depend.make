# Empty dependencies file for bench_fig1_lattice.
# This may be replaced when dependencies are built.
