file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_jumpfuncs.dir/bench_table2_jumpfuncs.cpp.o"
  "CMakeFiles/bench_table2_jumpfuncs.dir/bench_table2_jumpfuncs.cpp.o.d"
  "bench_table2_jumpfuncs"
  "bench_table2_jumpfuncs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_jumpfuncs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
