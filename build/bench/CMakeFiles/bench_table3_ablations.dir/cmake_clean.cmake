file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_ablations.dir/bench_table3_ablations.cpp.o"
  "CMakeFiles/bench_table3_ablations.dir/bench_table3_ablations.cpp.o.d"
  "bench_table3_ablations"
  "bench_table3_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
