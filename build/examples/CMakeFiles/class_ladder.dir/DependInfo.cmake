
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/class_ladder.cpp" "examples/CMakeFiles/class_ladder.dir/class_ladder.cpp.o" "gcc" "examples/CMakeFiles/class_ladder.dir/class_ladder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/ipcp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ipcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ipcp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ipcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ipcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ipcp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
