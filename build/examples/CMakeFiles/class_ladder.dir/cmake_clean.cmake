file(REMOVE_RECURSE
  "CMakeFiles/class_ladder.dir/class_ladder.cpp.o"
  "CMakeFiles/class_ladder.dir/class_ladder.cpp.o.d"
  "class_ladder"
  "class_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
