# Empty dependencies file for class_ladder.
# This may be replaced when dependencies are built.
