file(REMOVE_RECURSE
  "CMakeFiles/cloning_demo.dir/cloning_demo.cpp.o"
  "CMakeFiles/cloning_demo.dir/cloning_demo.cpp.o.d"
  "cloning_demo"
  "cloning_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloning_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
