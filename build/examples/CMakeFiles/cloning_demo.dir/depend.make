# Empty dependencies file for cloning_demo.
# This may be replaced when dependencies are built.
