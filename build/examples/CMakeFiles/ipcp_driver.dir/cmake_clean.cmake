file(REMOVE_RECURSE
  "CMakeFiles/ipcp_driver.dir/ipcp_driver.cpp.o"
  "CMakeFiles/ipcp_driver.dir/ipcp_driver.cpp.o.d"
  "ipcp_driver"
  "ipcp_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
