# Empty compiler generated dependencies file for ipcp_driver.
# This may be replaced when dependencies are built.
