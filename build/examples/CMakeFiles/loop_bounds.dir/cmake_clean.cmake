file(REMOVE_RECURSE
  "CMakeFiles/loop_bounds.dir/loop_bounds.cpp.o"
  "CMakeFiles/loop_bounds.dir/loop_bounds.cpp.o.d"
  "loop_bounds"
  "loop_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
