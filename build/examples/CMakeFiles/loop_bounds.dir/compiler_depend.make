# Empty compiler generated dependencies file for loop_bounds.
# This may be replaced when dependencies are built.
