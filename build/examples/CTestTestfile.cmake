# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_loop_bounds "/root/repo/build/examples/loop_bounds")
set_tests_properties(example_loop_bounds PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cloning_demo "/root/repo/build/examples/cloning_demo")
set_tests_properties(example_cloning_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_class_ladder "/root/repo/build/examples/class_ladder")
set_tests_properties(example_class_ladder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_driver_demo "/root/repo/build/examples/ipcp_driver" "--check-alias" "--dump-jf" "--run")
set_tests_properties(example_driver_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_driver_suite "/root/repo/build/examples/ipcp_driver" "--suite=ocean" "--complete")
set_tests_properties(example_driver_suite PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_driver_file "/root/repo/build/examples/ipcp_driver" "/root/repo/examples/programs/heat.mf" "--run")
set_tests_properties(example_driver_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_driver_integrate "/root/repo/build/examples/ipcp_driver" "/root/repo/examples/programs/divergent.mf" "--integrate" "--gated-ssa")
set_tests_properties(example_driver_integrate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
