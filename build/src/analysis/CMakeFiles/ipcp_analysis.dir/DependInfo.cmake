
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AliasCheck.cpp" "src/analysis/CMakeFiles/ipcp_analysis.dir/AliasCheck.cpp.o" "gcc" "src/analysis/CMakeFiles/ipcp_analysis.dir/AliasCheck.cpp.o.d"
  "/root/repo/src/analysis/CallGraph.cpp" "src/analysis/CMakeFiles/ipcp_analysis.dir/CallGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/ipcp_analysis.dir/CallGraph.cpp.o.d"
  "/root/repo/src/analysis/DeadCode.cpp" "src/analysis/CMakeFiles/ipcp_analysis.dir/DeadCode.cpp.o" "gcc" "src/analysis/CMakeFiles/ipcp_analysis.dir/DeadCode.cpp.o.d"
  "/root/repo/src/analysis/ModRef.cpp" "src/analysis/CMakeFiles/ipcp_analysis.dir/ModRef.cpp.o" "gcc" "src/analysis/CMakeFiles/ipcp_analysis.dir/ModRef.cpp.o.d"
  "/root/repo/src/analysis/SCCP.cpp" "src/analysis/CMakeFiles/ipcp_analysis.dir/SCCP.cpp.o" "gcc" "src/analysis/CMakeFiles/ipcp_analysis.dir/SCCP.cpp.o.d"
  "/root/repo/src/analysis/SSAConstruction.cpp" "src/analysis/CMakeFiles/ipcp_analysis.dir/SSAConstruction.cpp.o" "gcc" "src/analysis/CMakeFiles/ipcp_analysis.dir/SSAConstruction.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/ipcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ipcp_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
