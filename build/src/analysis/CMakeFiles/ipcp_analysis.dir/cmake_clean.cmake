file(REMOVE_RECURSE
  "CMakeFiles/ipcp_analysis.dir/AliasCheck.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/AliasCheck.cpp.o.d"
  "CMakeFiles/ipcp_analysis.dir/CallGraph.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/CallGraph.cpp.o.d"
  "CMakeFiles/ipcp_analysis.dir/DeadCode.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/DeadCode.cpp.o.d"
  "CMakeFiles/ipcp_analysis.dir/ModRef.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/ModRef.cpp.o.d"
  "CMakeFiles/ipcp_analysis.dir/SCCP.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/SCCP.cpp.o.d"
  "CMakeFiles/ipcp_analysis.dir/SSAConstruction.cpp.o"
  "CMakeFiles/ipcp_analysis.dir/SSAConstruction.cpp.o.d"
  "libipcp_analysis.a"
  "libipcp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
