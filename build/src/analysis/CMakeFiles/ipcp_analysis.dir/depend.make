# Empty dependencies file for ipcp_analysis.
# This may be replaced when dependencies are built.
