
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/BindingGraph.cpp" "src/core/CMakeFiles/ipcp_core.dir/BindingGraph.cpp.o" "gcc" "src/core/CMakeFiles/ipcp_core.dir/BindingGraph.cpp.o.d"
  "/root/repo/src/core/Cloning.cpp" "src/core/CMakeFiles/ipcp_core.dir/Cloning.cpp.o" "gcc" "src/core/CMakeFiles/ipcp_core.dir/Cloning.cpp.o.d"
  "/root/repo/src/core/ForwardJumpFunctions.cpp" "src/core/CMakeFiles/ipcp_core.dir/ForwardJumpFunctions.cpp.o" "gcc" "src/core/CMakeFiles/ipcp_core.dir/ForwardJumpFunctions.cpp.o.d"
  "/root/repo/src/core/Inlining.cpp" "src/core/CMakeFiles/ipcp_core.dir/Inlining.cpp.o" "gcc" "src/core/CMakeFiles/ipcp_core.dir/Inlining.cpp.o.d"
  "/root/repo/src/core/JumpFunction.cpp" "src/core/CMakeFiles/ipcp_core.dir/JumpFunction.cpp.o" "gcc" "src/core/CMakeFiles/ipcp_core.dir/JumpFunction.cpp.o.d"
  "/root/repo/src/core/Pipeline.cpp" "src/core/CMakeFiles/ipcp_core.dir/Pipeline.cpp.o" "gcc" "src/core/CMakeFiles/ipcp_core.dir/Pipeline.cpp.o.d"
  "/root/repo/src/core/Propagator.cpp" "src/core/CMakeFiles/ipcp_core.dir/Propagator.cpp.o" "gcc" "src/core/CMakeFiles/ipcp_core.dir/Propagator.cpp.o.d"
  "/root/repo/src/core/ReturnJumpFunctions.cpp" "src/core/CMakeFiles/ipcp_core.dir/ReturnJumpFunctions.cpp.o" "gcc" "src/core/CMakeFiles/ipcp_core.dir/ReturnJumpFunctions.cpp.o.d"
  "/root/repo/src/core/ValueNumbering.cpp" "src/core/CMakeFiles/ipcp_core.dir/ValueNumbering.cpp.o" "gcc" "src/core/CMakeFiles/ipcp_core.dir/ValueNumbering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ipcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ipcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ipcp_frontend.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
