file(REMOVE_RECURSE
  "CMakeFiles/ipcp_core.dir/BindingGraph.cpp.o"
  "CMakeFiles/ipcp_core.dir/BindingGraph.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/Cloning.cpp.o"
  "CMakeFiles/ipcp_core.dir/Cloning.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/ForwardJumpFunctions.cpp.o"
  "CMakeFiles/ipcp_core.dir/ForwardJumpFunctions.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/Inlining.cpp.o"
  "CMakeFiles/ipcp_core.dir/Inlining.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/JumpFunction.cpp.o"
  "CMakeFiles/ipcp_core.dir/JumpFunction.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/Pipeline.cpp.o"
  "CMakeFiles/ipcp_core.dir/Pipeline.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/Propagator.cpp.o"
  "CMakeFiles/ipcp_core.dir/Propagator.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/ReturnJumpFunctions.cpp.o"
  "CMakeFiles/ipcp_core.dir/ReturnJumpFunctions.cpp.o.d"
  "CMakeFiles/ipcp_core.dir/ValueNumbering.cpp.o"
  "CMakeFiles/ipcp_core.dir/ValueNumbering.cpp.o.d"
  "libipcp_core.a"
  "libipcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
