file(REMOVE_RECURSE
  "CMakeFiles/ipcp_frontend.dir/Ast.cpp.o"
  "CMakeFiles/ipcp_frontend.dir/Ast.cpp.o.d"
  "CMakeFiles/ipcp_frontend.dir/AstPrinter.cpp.o"
  "CMakeFiles/ipcp_frontend.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/ipcp_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/ipcp_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/ipcp_frontend.dir/Parser.cpp.o"
  "CMakeFiles/ipcp_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/ipcp_frontend.dir/Sema.cpp.o"
  "CMakeFiles/ipcp_frontend.dir/Sema.cpp.o.d"
  "libipcp_frontend.a"
  "libipcp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
