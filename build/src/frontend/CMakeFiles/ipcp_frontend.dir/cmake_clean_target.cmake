file(REMOVE_RECURSE
  "libipcp_frontend.a"
)
