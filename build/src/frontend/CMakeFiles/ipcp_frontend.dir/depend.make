# Empty dependencies file for ipcp_frontend.
# This may be replaced when dependencies are built.
