file(REMOVE_RECURSE
  "CMakeFiles/ipcp_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/ipcp_interp.dir/Interpreter.cpp.o.d"
  "libipcp_interp.a"
  "libipcp_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
