file(REMOVE_RECURSE
  "libipcp_interp.a"
)
