# Empty compiler generated dependencies file for ipcp_interp.
# This may be replaced when dependencies are built.
