
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/AstLower.cpp" "src/ir/CMakeFiles/ipcp_ir.dir/AstLower.cpp.o" "gcc" "src/ir/CMakeFiles/ipcp_ir.dir/AstLower.cpp.o.d"
  "/root/repo/src/ir/BasicBlock.cpp" "src/ir/CMakeFiles/ipcp_ir.dir/BasicBlock.cpp.o" "gcc" "src/ir/CMakeFiles/ipcp_ir.dir/BasicBlock.cpp.o.d"
  "/root/repo/src/ir/CloneUtil.cpp" "src/ir/CMakeFiles/ipcp_ir.dir/CloneUtil.cpp.o" "gcc" "src/ir/CMakeFiles/ipcp_ir.dir/CloneUtil.cpp.o.d"
  "/root/repo/src/ir/Dominators.cpp" "src/ir/CMakeFiles/ipcp_ir.dir/Dominators.cpp.o" "gcc" "src/ir/CMakeFiles/ipcp_ir.dir/Dominators.cpp.o.d"
  "/root/repo/src/ir/IRPrinter.cpp" "src/ir/CMakeFiles/ipcp_ir.dir/IRPrinter.cpp.o" "gcc" "src/ir/CMakeFiles/ipcp_ir.dir/IRPrinter.cpp.o.d"
  "/root/repo/src/ir/Instructions.cpp" "src/ir/CMakeFiles/ipcp_ir.dir/Instructions.cpp.o" "gcc" "src/ir/CMakeFiles/ipcp_ir.dir/Instructions.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/ir/CMakeFiles/ipcp_ir.dir/Module.cpp.o" "gcc" "src/ir/CMakeFiles/ipcp_ir.dir/Module.cpp.o.d"
  "/root/repo/src/ir/Procedure.cpp" "src/ir/CMakeFiles/ipcp_ir.dir/Procedure.cpp.o" "gcc" "src/ir/CMakeFiles/ipcp_ir.dir/Procedure.cpp.o.d"
  "/root/repo/src/ir/Traversal.cpp" "src/ir/CMakeFiles/ipcp_ir.dir/Traversal.cpp.o" "gcc" "src/ir/CMakeFiles/ipcp_ir.dir/Traversal.cpp.o.d"
  "/root/repo/src/ir/Verifier.cpp" "src/ir/CMakeFiles/ipcp_ir.dir/Verifier.cpp.o" "gcc" "src/ir/CMakeFiles/ipcp_ir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/ipcp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
