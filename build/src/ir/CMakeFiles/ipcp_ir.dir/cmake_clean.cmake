file(REMOVE_RECURSE
  "CMakeFiles/ipcp_ir.dir/AstLower.cpp.o"
  "CMakeFiles/ipcp_ir.dir/AstLower.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/BasicBlock.cpp.o"
  "CMakeFiles/ipcp_ir.dir/BasicBlock.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/CloneUtil.cpp.o"
  "CMakeFiles/ipcp_ir.dir/CloneUtil.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/Dominators.cpp.o"
  "CMakeFiles/ipcp_ir.dir/Dominators.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/ipcp_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/Instructions.cpp.o"
  "CMakeFiles/ipcp_ir.dir/Instructions.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/Module.cpp.o"
  "CMakeFiles/ipcp_ir.dir/Module.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/Procedure.cpp.o"
  "CMakeFiles/ipcp_ir.dir/Procedure.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/Traversal.cpp.o"
  "CMakeFiles/ipcp_ir.dir/Traversal.cpp.o.d"
  "CMakeFiles/ipcp_ir.dir/Verifier.cpp.o"
  "CMakeFiles/ipcp_ir.dir/Verifier.cpp.o.d"
  "libipcp_ir.a"
  "libipcp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
