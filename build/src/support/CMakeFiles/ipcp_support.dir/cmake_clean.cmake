file(REMOVE_RECURSE
  "CMakeFiles/ipcp_support.dir/ConstantMath.cpp.o"
  "CMakeFiles/ipcp_support.dir/ConstantMath.cpp.o.d"
  "CMakeFiles/ipcp_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/ipcp_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/ipcp_support.dir/Statistics.cpp.o"
  "CMakeFiles/ipcp_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/ipcp_support.dir/StringInterner.cpp.o"
  "CMakeFiles/ipcp_support.dir/StringInterner.cpp.o.d"
  "libipcp_support.a"
  "libipcp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
