# Empty compiler generated dependencies file for ipcp_support.
# This may be replaced when dependencies are built.
