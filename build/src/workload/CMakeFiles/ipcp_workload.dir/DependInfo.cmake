
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/Generator.cpp" "src/workload/CMakeFiles/ipcp_workload.dir/Generator.cpp.o" "gcc" "src/workload/CMakeFiles/ipcp_workload.dir/Generator.cpp.o.d"
  "/root/repo/src/workload/Oracle.cpp" "src/workload/CMakeFiles/ipcp_workload.dir/Oracle.cpp.o" "gcc" "src/workload/CMakeFiles/ipcp_workload.dir/Oracle.cpp.o.d"
  "/root/repo/src/workload/Programs.cpp" "src/workload/CMakeFiles/ipcp_workload.dir/Programs.cpp.o" "gcc" "src/workload/CMakeFiles/ipcp_workload.dir/Programs.cpp.o.d"
  "/root/repo/src/workload/ProgramsAtoM.cpp" "src/workload/CMakeFiles/ipcp_workload.dir/ProgramsAtoM.cpp.o" "gcc" "src/workload/CMakeFiles/ipcp_workload.dir/ProgramsAtoM.cpp.o.d"
  "/root/repo/src/workload/ProgramsNtoZ.cpp" "src/workload/CMakeFiles/ipcp_workload.dir/ProgramsNtoZ.cpp.o" "gcc" "src/workload/CMakeFiles/ipcp_workload.dir/ProgramsNtoZ.cpp.o.d"
  "/root/repo/src/workload/Study.cpp" "src/workload/CMakeFiles/ipcp_workload.dir/Study.cpp.o" "gcc" "src/workload/CMakeFiles/ipcp_workload.dir/Study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ipcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ipcp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ipcp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ipcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ipcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
