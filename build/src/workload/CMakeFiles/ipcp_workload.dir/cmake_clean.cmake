file(REMOVE_RECURSE
  "CMakeFiles/ipcp_workload.dir/Generator.cpp.o"
  "CMakeFiles/ipcp_workload.dir/Generator.cpp.o.d"
  "CMakeFiles/ipcp_workload.dir/Oracle.cpp.o"
  "CMakeFiles/ipcp_workload.dir/Oracle.cpp.o.d"
  "CMakeFiles/ipcp_workload.dir/Programs.cpp.o"
  "CMakeFiles/ipcp_workload.dir/Programs.cpp.o.d"
  "CMakeFiles/ipcp_workload.dir/ProgramsAtoM.cpp.o"
  "CMakeFiles/ipcp_workload.dir/ProgramsAtoM.cpp.o.d"
  "CMakeFiles/ipcp_workload.dir/ProgramsNtoZ.cpp.o"
  "CMakeFiles/ipcp_workload.dir/ProgramsNtoZ.cpp.o.d"
  "CMakeFiles/ipcp_workload.dir/Study.cpp.o"
  "CMakeFiles/ipcp_workload.dir/Study.cpp.o.d"
  "libipcp_workload.a"
  "libipcp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipcp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
