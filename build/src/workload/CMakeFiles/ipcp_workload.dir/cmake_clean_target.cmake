file(REMOVE_RECURSE
  "libipcp_workload.a"
)
