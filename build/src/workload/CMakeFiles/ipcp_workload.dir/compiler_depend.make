# Empty compiler generated dependencies file for ipcp_workload.
# This may be replaced when dependencies are built.
