
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AliasCheckTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/AliasCheckTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/AliasCheckTests.cpp.o.d"
  "/root/repo/tests/BindingGraphTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/BindingGraphTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/BindingGraphTests.cpp.o.d"
  "/root/repo/tests/CallGraphTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/CallGraphTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/CallGraphTests.cpp.o.d"
  "/root/repo/tests/CloningTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/CloningTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/CloningTests.cpp.o.d"
  "/root/repo/tests/DominatorTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/DominatorTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/DominatorTests.cpp.o.d"
  "/root/repo/tests/EdgeCaseTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/EdgeCaseTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/EdgeCaseTests.cpp.o.d"
  "/root/repo/tests/ForwardJumpFunctionTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/ForwardJumpFunctionTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/ForwardJumpFunctionTests.cpp.o.d"
  "/root/repo/tests/GatedSSATests.cpp" "tests/CMakeFiles/ipcp_tests.dir/GatedSSATests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/GatedSSATests.cpp.o.d"
  "/root/repo/tests/GeneratorTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/GeneratorTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/GeneratorTests.cpp.o.d"
  "/root/repo/tests/IRTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/IRTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/IRTests.cpp.o.d"
  "/root/repo/tests/InliningTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/InliningTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/InliningTests.cpp.o.d"
  "/root/repo/tests/InterpreterTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/InterpreterTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/InterpreterTests.cpp.o.d"
  "/root/repo/tests/JumpFunctionTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/JumpFunctionTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/JumpFunctionTests.cpp.o.d"
  "/root/repo/tests/LatticeTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/LatticeTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/LatticeTests.cpp.o.d"
  "/root/repo/tests/LexerTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/LexerTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/LexerTests.cpp.o.d"
  "/root/repo/tests/LoweringTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/LoweringTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/LoweringTests.cpp.o.d"
  "/root/repo/tests/ModRefTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/ModRefTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/ModRefTests.cpp.o.d"
  "/root/repo/tests/ParserTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/ParserTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/ParserTests.cpp.o.d"
  "/root/repo/tests/PipelineTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/PipelineTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/PipelineTests.cpp.o.d"
  "/root/repo/tests/PropagatorTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/PropagatorTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/PropagatorTests.cpp.o.d"
  "/root/repo/tests/PropertyTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/PropertyTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/PropertyTests.cpp.o.d"
  "/root/repo/tests/ReturnJumpFunctionTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/ReturnJumpFunctionTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/ReturnJumpFunctionTests.cpp.o.d"
  "/root/repo/tests/RoundTripTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/RoundTripTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/RoundTripTests.cpp.o.d"
  "/root/repo/tests/SCCPTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SCCPTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SCCPTests.cpp.o.d"
  "/root/repo/tests/SSATests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SSATests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SSATests.cpp.o.d"
  "/root/repo/tests/SemaTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SemaTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SemaTests.cpp.o.d"
  "/root/repo/tests/SuiteTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SuiteTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SuiteTests.cpp.o.d"
  "/root/repo/tests/SupportTests.cpp" "tests/CMakeFiles/ipcp_tests.dir/SupportTests.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/SupportTests.cpp.o.d"
  "/root/repo/tests/TestUtil.cpp" "tests/CMakeFiles/ipcp_tests.dir/TestUtil.cpp.o" "gcc" "tests/CMakeFiles/ipcp_tests.dir/TestUtil.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/ipcp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ipcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/ipcp_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ipcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ipcp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/ipcp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ipcp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
