# Empty compiler generated dependencies file for ipcp_tests.
# This may be replaced when dependencies are built.
