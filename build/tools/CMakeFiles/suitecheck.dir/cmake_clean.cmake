file(REMOVE_RECURSE
  "CMakeFiles/suitecheck.dir/suitecheck.cpp.o"
  "CMakeFiles/suitecheck.dir/suitecheck.cpp.o.d"
  "suitecheck"
  "suitecheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suitecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
