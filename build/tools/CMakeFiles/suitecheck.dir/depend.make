# Empty dependencies file for suitecheck.
# This may be replaced when dependencies are built.
