# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_suitecheck "/root/repo/build/tools/suitecheck")
set_tests_properties(tool_suitecheck PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
