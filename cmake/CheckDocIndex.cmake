# Documentation-coherence lint (the docs-side complement of
# CheckFlagDocs.cmake). Three drift modes, each fatal:
#
#   1. An unindexed page: every docs/*.md must be listed in README.md's
#      documentation index table.
#   2. A dangling intra-repo link: every relative markdown link in
#      README.md, DESIGN.md, and docs/*.md must resolve to a file that
#      exists.
#   3. A phantom counter: every backticked token in the docs that looks
#      like a registered counter (the Counters.def family prefixes) must
#      actually be registered in src/support/Counters.def.
#
# Run by ctest (check_doc_index in tools/CMakeLists.txt) and by the CI
# docs-lint job:
#
#   cmake -DSRCDIR=<repo root> -P CheckDocIndex.cmake

cmake_minimum_required(VERSION 3.16)

if(NOT DEFINED SRCDIR)
  message(FATAL_ERROR "CheckDocIndex.cmake needs -DSRCDIR=<repo root>")
endif()

set(Problems "")

# --- 1. Every docs page is indexed in README.md ------------------------

file(READ ${SRCDIR}/README.md Readme)
file(GLOB DocPages RELATIVE ${SRCDIR} ${SRCDIR}/docs/*.md)
list(LENGTH DocPages NumPages)
if(NumPages EQUAL 0)
  message(FATAL_ERROR "no docs/*.md pages found under ${SRCDIR}")
endif()
foreach(Page ${DocPages})
  string(FIND "${Readme}" "${Page}" Found)
  if(Found EQUAL -1)
    list(APPEND Problems
         "unindexed page: ${Page} is not listed in README.md's index")
  endif()
endforeach()

# --- 2. No dangling intra-repo markdown links --------------------------

file(GLOB LintFiles RELATIVE ${SRCDIR}
     ${SRCDIR}/README.md ${SRCDIR}/DESIGN.md ${SRCDIR}/docs/*.md)
foreach(File ${LintFiles})
  file(READ ${SRCDIR}/${File} Text)
  get_filename_component(Dir ${SRCDIR}/${File} DIRECTORY)
  string(REGEX MATCHALL "\\]\\(([^()]+)\\)" Links "${Text}")
  # Strip the ]( … ) delimiters across the whole match list first —
  # elements starting with "]" defeat CMake's own list splitting.
  string(REPLACE "](" "" Links "${Links}")
  string(REPLACE ")" "" Links "${Links}")
  foreach(Target IN LISTS Links)
    # Strip an anchor suffix; skip pure anchors and external URLs.
    string(REGEX REPLACE "#.*$" "" Target "${Target}")
    if(Target STREQUAL "" OR Target MATCHES "^[a-z][a-z0-9+.-]*:")
      continue()
    endif()
    if(IS_ABSOLUTE "${Target}")
      list(APPEND Problems
           "absolute link in ${File}: (${Target}) — use a relative path")
    elseif(NOT EXISTS ${Dir}/${Target})
      list(APPEND Problems
           "dangling link in ${File}: (${Target}) resolves to nothing")
    endif()
  endforeach()
endforeach()

# --- 3. Backticked counter tokens all exist in Counters.def ------------

file(STRINGS ${SRCDIR}/src/support/Counters.def CounterLines
     REGEX "IPCP_COUNTER\\(")
set(Counters "")
foreach(Line ${CounterLines})
  string(REGEX REPLACE ".*IPCP_COUNTER\\(([a-z0-9_]+).*" "\\1" Name
         "${Line}")
  list(APPEND Counters ${Name})
endforeach()
list(LENGTH Counters NumCounters)
if(NumCounters LESS 10)
  message(FATAL_ERROR
          "only ${NumCounters} counters parsed from Counters.def — "
          "the registry regex is broken")
endif()

# Tokens that share a counter-family prefix but are deliberately not
# counters (wire-protocol keys documented in docs/SERVICE.md).
set(NotCounters prop_evals)

foreach(File ${LintFiles})
  file(READ ${SRCDIR}/${File} Text)
  string(REGEX MATCHALL
         "`(time|cg|rjf|jf|prop|ctx|sccp|cp|opt|guard|cache)_[a-z0-9_]+`"
         Tokens "${Text}")
  list(REMOVE_DUPLICATES Tokens)
  foreach(Token ${Tokens})
    string(REGEX REPLACE "`" "" Name "${Token}")
    if(NOT Name IN_LIST Counters AND NOT Name IN_LIST NotCounters)
      list(APPEND Problems
           "phantom counter in ${File}: \`${Name}\` is not registered "
           "in src/support/Counters.def")
    endif()
  endforeach()
endforeach()

if(Problems)
  list(JOIN Problems "\n  " Pretty)
  message(FATAL_ERROR "documentation lint failed:\n  ${Pretty}")
endif()
message(STATUS
        "${NumPages} docs pages indexed, links resolve, counter tokens "
        "match Counters.def (${NumCounters} registered)")
