# Runs a command and fails unless its exit code matches expectations.
# ctest treats any nonzero exit as failure, so tests that must assert a
# *specific* nonzero code (the driver's documented 2/3/4/5 degradation
# and error codes) run through this script instead:
#
#   cmake -DEXPECTED_CODE=5 "-DCMD=<exe>;<arg>;..." -P CheckExitCode.cmake
#
# An optional -DEXPECT_STDERR=<substring> additionally requires the
# substring to appear on stderr, pinning *why* the command exited.

if(NOT DEFINED CMD OR NOT DEFINED EXPECTED_CODE)
  message(FATAL_ERROR
          "CheckExitCode.cmake needs -DCMD=<;-list> and -DEXPECTED_CODE=<n>")
endif()

execute_process(COMMAND ${CMD}
                RESULT_VARIABLE ActualCode
                OUTPUT_VARIABLE Stdout
                ERROR_VARIABLE Stderr)

if(NOT ActualCode EQUAL EXPECTED_CODE)
  message(FATAL_ERROR
          "expected exit code ${EXPECTED_CODE}, got '${ActualCode}'\n"
          "command: ${CMD}\nstdout:\n${Stdout}\nstderr:\n${Stderr}")
endif()

if(DEFINED EXPECT_STDERR)
  string(FIND "${Stderr}" "${EXPECT_STDERR}" Found)
  if(Found EQUAL -1)
    message(FATAL_ERROR
            "stderr does not contain '${EXPECT_STDERR}'\n"
            "command: ${CMD}\nstderr:\n${Stderr}")
  endif()
endif()
