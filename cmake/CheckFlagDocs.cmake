# Flag-documentation lint (the docs-side half of keeping --help honest):
# every flag a tool admits to in its --help output must appear somewhere
# in the documentation corpus (README.md, DESIGN.md, docs/*.md). Run per
# tool by ctest (check_flag_docs_* in tools/CMakeLists.txt) and by the
# docs-lint CI job:
#
#   cmake -DTOOL=<exe> -DSRCDIR=<repo root> -P CheckFlagDocs.cmake
#
# The reverse direction (documented-but-removed flags) is caught the
# same way: a doc mentioning a dead flag survives only until someone
# greps for it, and the golden --help transcripts pin the usage text
# itself. This lint exists for the common drift: a new flag lands in a
# tool and its documentation does not.

if(NOT DEFINED TOOL OR NOT DEFINED SRCDIR)
  message(FATAL_ERROR
          "CheckFlagDocs.cmake needs -DTOOL=<exe> and -DSRCDIR=<repo root>")
endif()

execute_process(COMMAND ${TOOL} --help
                RESULT_VARIABLE RC
                OUTPUT_VARIABLE Help
                ERROR_VARIABLE HelpErr)
if(NOT RC EQUAL 0)
  message(FATAL_ERROR "${TOOL} --help exited ${RC}:\n${HelpErr}")
endif()
string(APPEND Help "${HelpErr}")

string(REGEX MATCHALL "--[a-z][a-z0-9-]*" Flags "${Help}")
list(REMOVE_DUPLICATES Flags)
list(LENGTH Flags NumFlags)
if(NumFlags EQUAL 0)
  message(FATAL_ERROR "no flags found in ${TOOL} --help output:\n${Help}")
endif()

# The documentation corpus. Globbing at lint time means a new docs page
# counts without touching this script.
file(GLOB DocFiles ${SRCDIR}/README.md ${SRCDIR}/DESIGN.md
     ${SRCDIR}/docs/*.md)
set(Corpus "")
foreach(Doc ${DocFiles})
  file(READ ${Doc} Text)
  string(APPEND Corpus "${Text}")
endforeach()

set(Missing "")
foreach(Flag ${Flags})
  string(FIND "${Corpus}" "${Flag}" Found)
  if(Found EQUAL -1)
    list(APPEND Missing ${Flag})
  endif()
endforeach()

if(Missing)
  message(FATAL_ERROR
          "flags in `${TOOL} --help` but in no documentation page "
          "(README.md, DESIGN.md, docs/*.md): ${Missing}")
endif()
message(STATUS "${NumFlags} flags from ${TOOL} --help all documented")
