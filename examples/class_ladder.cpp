//===- examples/class_ladder.cpp - the 1986 paper's demonstration ---------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// "Callahan et al. showed a single simple example to demonstrate that
// different jump function techniques produced different results." This
// example reconstructs that demonstration: one program with four
// constants, each discoverable by exactly one more jump function class
// than the previous —
//
//   p1's formal: a literal actual               -> every class
//   p2's formal: an intraprocedurally computed
//                constant actual                 -> intra and above
//   p3's formal: a formal passed through
//                unchanged                       -> pass-through and above
//   p4's formal: a polynomial of a formal        -> polynomial only
//
// (On the realistic benchmark suite the polynomial class never finds
// more than pass-through — the 1993 study's headline — but the capability
// difference is real, and this is the program shape that shows it.)
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"
#include "frontend/Parser.h"
#include "ir/AstLower.h"

#include <cstdio>

using namespace ipcp;

static const char *Source = R"(
proc p1(a) { print a; }
proc p2(b) { print b; }
proc p3(c) { print c; }
proc p4(d) { print d; }

proc fwd(x) {
  call p3(x);          // pass-through: x flows on unchanged
  call p4(x * 2 + 1);  // polynomial: 2x + 1 of the incoming formal
}

proc main() {
  var k;
  call p1(1);          // literal constant at the call site
  k = 2;
  call p2(k);          // constant, but only gcp can see it
  call fwd(3);
}
)";

int main() {
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Source, Diags);
  if (!Ast) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  std::unique_ptr<Module> M = lowerProgram(*Ast);

  std::printf("CONSTANTS found per forward jump function class "
              "(paper Section 3.1):\n\n");
  std::printf("%-14s", "class");
  for (const char *Proc : {"p1.a", "p2.b", "p3.c", "p4.d"})
    std::printf("%8s", Proc);
  std::printf("\n");

  for (JumpFunctionKind Kind :
       {JumpFunctionKind::Literal, JumpFunctionKind::IntraproceduralConstant,
        JumpFunctionKind::PassThrough, JumpFunctionKind::Polynomial}) {
    IPCPOptions Opts;
    Opts.ForwardKind = Kind;
    IPCPResult R = runIPCP(*M, Opts);
    std::printf("%-14s", jumpFunctionKindName(Kind));
    for (const char *Proc : {"p1", "p2", "p3", "p4"}) {
      const ProcedureResult *PR = R.findProc(Proc);
      if (PR && !PR->EntryConstants.empty())
        std::printf("%8lld",
                    static_cast<long long>(PR->EntryConstants[0].second));
      else
        std::printf("%8s", "-");
    }
    std::printf("\n");
  }

  std::printf("\nEach class keeps everything the weaker classes found and "
              "adds one more\ncolumn — the containment the paper states "
              "and the test suite enforces.\n");
  return 0;
}
