//===- examples/cloning_demo.cpp - specialization via cloning -------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the procedure-cloning application (paper Section 5,
// Cooper/Hall/Kennedy and Metzger/Stroud): a generic kernel is called
// with two different constant configurations; the meet destroys both, so
// plain interprocedural constant propagation learns nothing. Cloning
// splits the call sites by constant signature, after which each copy is
// fully specialized — and the guarded debug path in one copy becomes
// provably dead.
//
//===----------------------------------------------------------------------===//

#include "core/Cloning.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/AstLower.h"

#include <cstdio>

using namespace ipcp;

static const char *Source = R"(
global trace;

proc stencil(n, radius, verbose) {
  var i, acc;
  if (verbose == 1) { print n; print radius; }
  do i = radius, n - radius - 1 {
    acc = acc + i * radius;
  }
  print acc;
}

proc main() {
  trace = 0;
  // Production configuration: large grid, quiet.
  call stencil(100, 2, 0);
  call stencil(100, 2, 0);
  // Debug configuration: tiny grid, chatty.
  call stencil(8, 1, 1);
}
)";

static void report(const char *Title, const IPCPResult &R) {
  std::printf("%s\n", Title);
  for (const ProcedureResult &PR : R.Procs) {
    std::printf("  %-20s refs=%2u  constants:", PR.Name.c_str(),
                PR.ConstantRefs);
    if (PR.EntryConstants.empty())
      std::printf(" (none)");
    for (const auto &[Name, Value] : PR.EntryConstants)
      std::printf(" %s=%lld", Name.c_str(), static_cast<long long>(Value));
    std::printf("\n");
  }
  std::printf("\n");
}

int main() {
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Source, Diags);
  if (!Ast) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  std::unique_ptr<Module> M = lowerProgram(*Ast);

  ExecutionResult Before = interpret(*M);

  report("== before cloning (call sites disagree; the meet loses all "
         "three parameters) ==",
         runIPCP(*M));

  CloningResult CR = cloneForConstants(*M);
  std::printf("cloning created %u copies in %u round(s); instructions %u "
              "-> %u\n\n",
              CR.ClonesCreated, CR.RoundsRun, CR.InstructionsBefore,
              CR.InstructionsAfter);

  report("== after cloning (each copy fully specialized) ==", runIPCP(*M));

  // The transformation preserves behavior.
  ExecutionResult After = interpret(*M);
  bool Same = Before.Output == After.Output;
  std::printf("observable output unchanged: %s\n", Same ? "yes" : "NO");
  return Same ? 0 : 1;
}
