//===- examples/ipcp_driver.cpp - command-line analyzer -------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// A command-line front end for the library, the shape of the analyzer
// described in the paper's Section 4.1 (generation of return jump
// functions, generation of forward jump functions, interprocedural
// propagation, recording the results):
//
//   ipcp_driver FILE.mf [options]
//     --jf=literal|intra|passthrough|polynomial   forward jump functions
//     --no-return-jf                              disable return JFs
//     --no-mod                                    worst-case MOD info
//     --intra-only                                intraprocedural baseline
//     --complete                                  iterate with DCE
//     --clone                                     procedure cloning first
//     --dump-ir                                   print the IR
//     --run                                       execute and show output
//     --stats                                     counter summary table
//     --trace[=FILE]                              per-pass span trace
//     --report-json=FILE                          full JSON report
//     --limit-parse-depth=N  --limit-tokens=N  --limit-ast-nodes=N
//     --limit-ir-insts=N     --limit-prop-evals=N --deadline-ms=N
//                                                 resource budgets
//
// With no FILE, analyzes a built-in demo program.
//
// Exit codes (documented in docs/ROBUSTNESS.md and README.md):
//   0  success
//   1  usage error (unknown flag, malformed value)
//   2  input file cannot be opened or read
//   3  source program has errors
//   4  an output file (report, trace) could not be written
//   5  a resource budget tripped; the run degraded gracefully
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasCheck.h"
#include "core/BindingGraph.h"
#include "core/Cloning.h"
#include "core/Inlining.h"
#include "core/Pipeline.h"
#include "core/Report.h"
#include "core/SummaryCache.h"
#include "core/ValueNumbering.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "ir/AstLower.h"
#include "ir/IRPrinter.h"
#include "support/FileIO.h"
#include "support/Trace.h"
#include "transform/Transform.h"
#include "workload/Programs.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

using namespace ipcp;

namespace {

const char *DemoSource = R"(
global scale;
proc helper(x, y) {
  print x * scale + y;
}
proc main() {
  scale = 10;
  call helper(4, 2);
  call helper(4, 3);
}
)";

void printUsage() {
  std::printf(
      "usage: ipcp_driver [FILE.mf | --suite=NAME] [options]\n"
      "  --jf=literal|intra|passthrough|polynomial  (default polynomial)\n"
      "  --no-return-jf   --no-mod   --intra-only   --complete   --clone\n"
      "  --binding-graph  --gated-ssa  --check-alias  --integrate\n"
      "  --dump-ir        --dump-jf   --run      --help\n"
      "  --engine=jump|contexts  propagation engine (default jump): the\n"
      "                   1986 caller-merge framework, or the value-contexts\n"
      "                   tabulation (docs/CONTEXTS.md) that never finds\n"
      "                   fewer constants and reports a context_study block\n"
      "  --max-contexts=N contexts-engine tabulation budget (default 4096);\n"
      "                   past it, new entry vectors merge into summary\n"
      "                   contexts (graceful degradation toward jump)\n"
      "  --optimize[=PASSES]  rewrite the program: substitute proven\n"
      "                   constants, fold expressions and branches, then\n"
      "                   forward copies (docs/TRANSFORMS.md). PASSES is a\n"
      "                   comma list of constants, copyprop (default both).\n"
      "                   With --dump-ir, prints before/after IR.\n"
      "  --stats          print the counter summary table\n"
      "  --trace[=FILE]   record per-pass spans (text; stderr or FILE)\n"
      "  --report-json=FILE  write the full analysis report as JSON\n"
      "  --cache-dir=DIR  persistent summary cache for incremental reruns\n"
      "                   (single-run analyses only; see docs/INCREMENTAL.md)\n"
      "  --no-cache       ignore --cache-dir (one-off cold run)\n"
      "  --scrub-timings  zero wall-clock fields in the JSON report so\n"
      "                   identical runs produce identical bytes\n"
      "resource budgets (0 = unlimited; a trip degrades the run, exit 5):\n"
      "  --limit-parse-depth=N  parser recursion depth (default 512)\n"
      "  --limit-tokens=N       tokens per source buffer\n"
      "  --limit-ast-nodes=N    AST nodes the parser may allocate\n"
      "  --limit-ir-insts=N     IR instructions entering (or grown by)\n"
      "                         the analysis\n"
      "  --limit-prop-evals=N   jump-function evaluations per solve\n"
      "  --deadline-ms=N        wall-clock deadline for the whole run\n"
      "exit codes: 0 ok, 1 usage, 2 input unreadable, 3 source errors,\n"
      "            4 output write failed, 5 degraded (budget tripped)\n"
      "suite names: adm doduc fpppp linpackd matrix300 mdg ocean qcd\n"
      "             simple snasa7 spec77 trfd\n");
}

/// Parses the numeric value of --NAME=N budget flags. Exits with a usage
/// error (code 1) on a malformed or out-of-range value.
uint64_t parseLimitValue(const std::string &Arg, size_t PrefixLen) {
  std::string Text = Arg.substr(PrefixLen);
  if (Text.empty() || Text.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr, "error: malformed value in '%s' (expect a "
                         "non-negative integer)\n",
                 Arg.c_str());
    std::exit(1);
  }
  errno = 0;
  unsigned long long Value = std::strtoull(Text.c_str(), nullptr, 10);
  if (errno == ERANGE) {
    std::fprintf(stderr, "error: value out of range in '%s'\n", Arg.c_str());
    std::exit(1);
  }
  return Value;
}

} // namespace

int main(int argc, char **argv) {
  std::string Source = DemoSource;
  std::string SourceName = "<demo>";
  IPCPOptions Opts;
  bool Complete = false, Clone = false, DumpIR = false, Run = false;
  bool CheckAlias = false, DumpJF = false, Integrate = false;
  bool ShowStats = false, TraceOn = false;
  bool NoCache = false, ScrubTimings = false;
  bool Optimize = false;
  TransformPassConfig PassCfg;
  std::string TraceFile, ReportFile, CacheDir;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help") {
      printUsage();
      return 0;
    }
    if (Arg.rfind("--jf=", 0) == 0) {
      std::string Kind = Arg.substr(5);
      if (Kind == "literal")
        Opts.ForwardKind = JumpFunctionKind::Literal;
      else if (Kind == "intra")
        Opts.ForwardKind = JumpFunctionKind::IntraproceduralConstant;
      else if (Kind == "passthrough")
        Opts.ForwardKind = JumpFunctionKind::PassThrough;
      else if (Kind == "polynomial")
        Opts.ForwardKind = JumpFunctionKind::Polynomial;
      else {
        std::fprintf(stderr, "error: unknown jump function class '%s'\n",
                     Kind.c_str());
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--engine=", 0) == 0) {
      std::string Engine = Arg.substr(9);
      if (Engine == "jump")
        Opts.Engine = PropagationEngine::Jump;
      else if (Engine == "contexts")
        Opts.Engine = PropagationEngine::Contexts;
      else {
        std::fprintf(stderr, "error: unknown propagation engine '%s'\n",
                     Engine.c_str());
        return 1;
      }
      continue;
    }
    if (Arg.rfind("--max-contexts=", 0) == 0) {
      uint64_t V = parseLimitValue(Arg, 15);
      if (V == 0 || V > 1u << 20) {
        std::fprintf(stderr, "error: --max-contexts must be in [1, 1048576]\n");
        return 1;
      }
      Opts.MaxContexts = unsigned(V);
      continue;
    }
    if (Arg.rfind("--suite=", 0) == 0) {
      const SuiteProgram *Prog = findSuiteProgram(Arg.substr(8));
      if (!Prog) {
        std::fprintf(stderr, "error: no suite program named '%s'\n",
                     Arg.substr(8).c_str());
        return 1;
      }
      Source = Prog->Source;
      SourceName = Prog->Name;
      continue;
    }
    if (Arg == "--report-json=") {
      std::fprintf(stderr, "error: --report-json needs a file name\n");
      return 1;
    }
    if (Arg.rfind("--report-json=", 0) == 0) {
      ReportFile = Arg.substr(14);
      continue;
    }
    if (Arg == "--trace") {
      TraceOn = true;
      continue;
    }
    if (Arg.rfind("--trace=", 0) == 0) {
      TraceOn = true;
      TraceFile = Arg.substr(8);
      continue;
    }
    if (Arg == "--stats") {
      ShowStats = true;
      continue;
    }
    if (Arg == "--cache-dir=") {
      std::fprintf(stderr, "error: --cache-dir needs a directory name\n");
      return 1;
    }
    if (Arg.rfind("--cache-dir=", 0) == 0) {
      CacheDir = Arg.substr(12);
      continue;
    }
    if (Arg == "--no-cache") {
      NoCache = true;
      continue;
    }
    if (Arg == "--scrub-timings") {
      ScrubTimings = true;
      continue;
    }
    if (Arg == "--optimize") {
      Optimize = true;
      continue;
    }
    if (Arg.rfind("--optimize=", 0) == 0) {
      std::string Error;
      if (!parsePassSpec(Arg.substr(11), PassCfg, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      Optimize = true;
      continue;
    }
    if (Arg.rfind("--limit-parse-depth=", 0) == 0) {
      uint64_t V = parseLimitValue(Arg, 20);
      if (V == 0 || V > 1u << 20) {
        std::fprintf(stderr,
                     "error: --limit-parse-depth must be in [1, 1048576]\n");
        return 1;
      }
      Opts.Limits.MaxParseDepth = unsigned(V);
      continue;
    }
    if (Arg.rfind("--limit-tokens=", 0) == 0) {
      Opts.Limits.MaxTokens = parseLimitValue(Arg, 15);
      continue;
    }
    if (Arg.rfind("--limit-ast-nodes=", 0) == 0) {
      Opts.Limits.MaxAstNodes = parseLimitValue(Arg, 18);
      continue;
    }
    if (Arg.rfind("--limit-ir-insts=", 0) == 0) {
      Opts.Limits.MaxIRInstructions = parseLimitValue(Arg, 17);
      continue;
    }
    if (Arg.rfind("--limit-prop-evals=", 0) == 0) {
      Opts.Limits.MaxPropagationEvals = parseLimitValue(Arg, 19);
      continue;
    }
    if (Arg.rfind("--deadline-ms=", 0) == 0) {
      Opts.Limits.DeadlineMs = parseLimitValue(Arg, 14);
      continue;
    }
    if (Arg == "--no-return-jf") {
      Opts.UseReturnJumpFunctions = false;
    } else if (Arg == "--gated-ssa") {
      Opts.UseGatedSSA = true;
    } else if (Arg == "--binding-graph") {
      Opts.UseBindingGraphPropagator = true;
    } else if (Arg == "--check-alias") {
      CheckAlias = true;
    } else if (Arg == "--no-mod") {
      Opts.UseModInformation = false;
    } else if (Arg == "--intra-only") {
      Opts.IntraproceduralOnly = true;
    } else if (Arg == "--complete") {
      Complete = true;
    } else if (Arg == "--clone") {
      Clone = true;
    } else if (Arg == "--integrate") {
      Integrate = true;
    } else if (Arg == "--dump-ir") {
      DumpIR = true;
    } else if (Arg == "--dump-jf") {
      DumpJF = true;
    } else if (Arg == "--run") {
      Run = true;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 1;
    } else {
      // Exit 2 distinguishes unreadable input from a source program with
      // errors (exit 3): an empty file is a valid (empty) program, a
      // missing or unreadable one is not.
      std::string Error;
      if (!readFileToString(Arg, Source, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 2;
      }
      SourceName = Arg;
    }
  }

  DiagnosticsEngine Diags;
  ResourceGuard Guard(Opts.Limits);
  std::optional<Program> Ast = parseAndCheck(Source, Diags, true, &Guard);
  if (!Ast) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    if (!Guard.tripped())
      return 3;
    // A frontend budget trip is degradation, not a source error: emit a
    // schema-valid (result-free) degraded report when one was asked for,
    // and exit 5 so callers can tell the two apart.
    PipelineStatus Status = Guard.status();
    std::fprintf(stderr, "warning: %s\n", Status.Message.c_str());
    if (!ReportFile.empty()) {
      AnalysisReport Report;
      Report.SourceName = SourceName;
      Report.Opts = &Opts;
      Report.Status = &Status;
      std::string Error;
      if (!writeJsonFile(ReportFile, buildAnalysisReport(Report), &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 4;
      }
      if (ReportFile != "-")
        std::printf("report written to %s\n", ReportFile.c_str());
    }
    return 5;
  }
  for (const Diagnostic &D : Diags.diagnostics())
    std::fprintf(stderr, "%s\n", D.str().c_str()); // surface warnings

  std::unique_ptr<Module> M = lowerProgram(*Ast);
  Guard.checkIRInstructions(M->instructionCount(), "lowering");
  Guard.checkDeadline("lowering");
  std::printf("analyzing %s: %zu procedure(s), %u instruction(s)\n",
              SourceName.c_str(), M->procedures().size(),
              M->instructionCount());

  Trace TraceData;
  if (TraceOn)
    Trace::setActive(&TraceData);

  if (CheckAlias) {
    std::vector<Diagnostic> Hazards = checkAliasHazards(*M);
    if (Hazards.empty())
      std::printf("alias check: clean (Fortran no-alias rule satisfied)\n");
    for (const Diagnostic &D : Hazards)
      std::printf("alias check: %s\n", D.str().c_str());
  }

  std::optional<CloningResult> CloneResult;
  if (Clone) {
    CloneResult = cloneForConstants(*M, {Opts}, &Guard);
    std::printf("cloning: %u copies created, %u -> %u instructions\n",
                CloneResult->ClonesCreated, CloneResult->InstructionsBefore,
                CloneResult->InstructionsAfter);
  }

  if (Integrate) {
    InlineOptions IOpts;
    IOpts.EntryProcedure = Opts.EntryProcedure;
    InlineResult IR = inlineCalls(*M, IOpts);
    std::printf("integration: %u call(s) inlined in %u round(s), %u dead "
                "procedure(s) removed, %u -> %u instructions\n",
                IR.CallsInlined, IR.RoundsRun, IR.ProceduresRemoved,
                IR.InstructionsBefore, IR.InstructionsAfter);
  }

  // The transform pipeline rewrites the module in place; everything
  // after this point — the reported analysis, --dump-ir, --run — sees
  // the optimized program. Before-IR is captured first so --dump-ir can
  // show the rewrite as a diffable before/after pair.
  std::optional<OptimizationResult> OptResult;
  std::string BeforeIR;
  if (Optimize) {
    if (DumpIR)
      BeforeIR = printModule(*M);
    OptResult = optimizeModule(*M, Opts, PassCfg, &Guard);
    std::printf("optimization: %u substitution(s), %u fold(s), %u branch(es) "
                "resolved, %u block(s) removed, %u instruction(s) removed, "
                "%u cop%s propagated in %u round(s)\n",
                OptResult->Substitutions, OptResult->Folds,
                OptResult->BranchesResolved, OptResult->BlocksRemoved,
                OptResult->InstsRemoved, OptResult->CopiesPropagated,
                OptResult->CopiesPropagated == 1 ? "y" : "ies",
                OptResult->Rounds);
    if (ShowStats)
      std::printf("optimization statistics:\n%s",
                  formatStatsTable(OptResult->Stats).c_str());
  }

  // Summary cache: single-run analyses of the unmodified module only
  // (complete propagation, cloning, integration, and optimization all
  // mutate or re-analyze the module; see docs/INCREMENTAL.md). A load
  // failure is not an error — the run proceeds cold and reports
  // cache_load_failures.
  std::optional<SummaryCache> Cache;
  if (!CacheDir.empty() && !NoCache && !Complete && !Clone && !Integrate &&
      !Optimize) {
    Cache.emplace(CacheDir);
    Cache->load(SourceName, Opts, &Guard);
    Opts.Cache = &*Cache;
  }

  std::optional<CompletePropagationResult> CompleteResult;
  std::optional<IPCPResult> SingleResult;
  if (Complete) {
    CompleteResult = runCompletePropagation(*M, Opts, 8, &Guard);
    const CompletePropagationResult &CR = *CompleteResult;
    std::printf("complete propagation: %u round(s), %u dead blocks "
                "removed\n",
                CR.Rounds, CR.BlocksRemoved);
    std::printf("constant references: %u\n", CR.TotalConstantRefs);
    for (const ProcedureResult &PR : CR.FinalRound.Procs) {
      std::printf("  CONSTANTS(%s) = {", PR.Name.c_str());
      for (size_t I = 0; I != PR.EntryConstants.size(); ++I)
        std::printf("%s%s=%lld", I ? ", " : "",
                    PR.EntryConstants[I].first.c_str(),
                    static_cast<long long>(PR.EntryConstants[I].second));
      std::printf("}\n");
    }
    if (ShowStats)
      std::printf("statistics (all rounds):\n%s",
                  formatStatsTable(CR.Stats).c_str());
  } else {
    SingleResult = runIPCP(*M, Opts, &Guard);
    const IPCPResult &R = *SingleResult;
    std::printf("configuration: %s jump functions, return JFs %s, MOD %s%s\n",
                jumpFunctionKindName(Opts.ForwardKind),
                Opts.UseReturnJumpFunctions ? "on" : "off",
                Opts.UseModInformation ? "on" : "off",
                Opts.IntraproceduralOnly ? ", intraprocedural only" : "");
    std::printf("entry constants: %u, constant references: %u\n",
                R.TotalEntryConstants, R.TotalConstantRefs);
    for (const ProcedureResult &PR : R.Procs) {
      std::printf("  CONSTANTS(%s) = {", PR.Name.c_str());
      for (size_t I = 0; I != PR.EntryConstants.size(); ++I)
        std::printf("%s%s=%lld", I ? ", " : "",
                    PR.EntryConstants[I].first.c_str(),
                    static_cast<long long>(PR.EntryConstants[I].second));
      std::printf("}  [%u refs]\n", PR.ConstantRefs);
    }
    if (ShowStats)
      std::printf("statistics:\n%s", formatStatsTable(R.Stats).c_str());
    if (R.UsedCache)
      std::printf("cache: %llu hit(s), %llu miss(es), %llu replayed\n",
                  static_cast<unsigned long long>(R.Stats.get("cache_hits")),
                  static_cast<unsigned long long>(R.Stats.get("cache_misses")),
                  static_cast<unsigned long long>(
                      R.Stats.get("cache_record_reused")));
  }

  if (Cache) {
    std::string Error;
    if (!Cache->save(SourceName, Opts, &Error))
      std::fprintf(stderr, "warning: cache not saved: %s\n", Error.c_str());
  }

  // Stop recording before the ancillary dumps so the trace covers
  // exactly the analysis (and any cloning/integration before it).
  if (TraceOn)
    Trace::setActive(nullptr);

  if (DumpJF) {
    // Rebuild the jump functions on a scratch clone and print them — the
    // analyzer's own view of each call site (paper Sections 3.1/3.2).
    std::unique_ptr<Module> Scratch = M->clone();
    CallGraph CG(*Scratch);
    ModRefInfo MRI = Opts.UseModInformation
                         ? ModRefInfo::compute(*Scratch, CG)
                         : ModRefInfo::worstCase(*Scratch);
    SSAMap SSA;
    for (const std::unique_ptr<Procedure> &P : Scratch->procedures())
      SSA.emplace(P.get(), constructSSA(*P, MRI));
    SymExprContext Ctx(Opts.MaxExprNodes);
    std::unique_ptr<ReturnJumpFunctions> RJFs;
    if (Opts.UseReturnJumpFunctions)
      RJFs = std::make_unique<ReturnJumpFunctions>(ReturnJumpFunctions::build(
          CG, MRI, SSA, Ctx, Opts.UseGatedSSA));
    ForwardJumpFunctions FJFs =
        ForwardJumpFunctions::build(CG, MRI, SSA, RJFs.get(), Ctx,
                                    Opts.ForwardKind, Opts.UseGatedSSA);

    std::printf("\njump functions (%s class):\n",
                jumpFunctionKindName(Opts.ForwardKind));
    for (Procedure *P : CG.procedures()) {
      for (CallInst *Site : CG.callSitesIn(P)) {
        const CallSiteJumpFunctions &JFs = FJFs.at(Site);
        std::printf("  %s:%s -> %s\n", P->getName().c_str(),
                    Site->getLoc().str().c_str(),
                    Site->getCallee()->getName().c_str());
        for (unsigned I = 0; I != JFs.Formals.size(); ++I)
          std::printf("    J(%s) = %s\n",
                      Site->getCallee()->formals()[I]->getName().c_str(),
                      JFs.Formals[I].str().c_str());
        for (const auto &[G, JF] : JFs.Globals)
          std::printf("    J(global %s) = %s\n", G->getName().c_str(),
                      JF.str().c_str());
      }
    }
    if (RJFs) {
      std::printf("\nreturn jump functions:\n");
      for (Procedure *P : CG.procedures()) {
        for (unsigned I = 0; I != P->getNumFormals(); ++I)
          if (const JumpFunction *JF = RJFs->find(P, P->formals()[I]))
            std::printf("  R(%s.%s) = %s\n", P->getName().c_str(),
                        P->formals()[I]->getName().c_str(),
                        JF->str().c_str());
        for (Variable *G : MRI.modifiedGlobals(P))
          if (const JumpFunction *JF = RJFs->find(P, G))
            std::printf("  R(%s.global %s) = %s\n", P->getName().c_str(),
                        G->getName().c_str(), JF->str().c_str());
      }
    }
  }

  if (DumpIR) {
    if (Optimize)
      std::printf("\n; === IR before optimization ===\n%s"
                  "\n; === IR after optimization ===\n%s",
                  BeforeIR.c_str(), printModule(*M).c_str());
    else
      std::printf("\n%s", printModule(*M).c_str());
  }

  if (TraceOn) {
    std::string Text = TraceData.str();
    if (TraceFile.empty()) {
      std::fprintf(stderr, "%s", Text.c_str());
    } else {
      std::string Error;
      if (!writeStringToFile(TraceFile, Text, &Error)) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 4;
      }
    }
  }

  PipelineStatus FinalStatus = Guard.status();
  if (!ReportFile.empty()) {
    AnalysisReport Report;
    Report.SourceName = SourceName;
    Report.M = M.get();
    Report.Opts = &Opts;
    Report.Single = SingleResult ? &*SingleResult : nullptr;
    Report.Complete = CompleteResult ? &*CompleteResult : nullptr;
    Report.Cloning = CloneResult ? &*CloneResult : nullptr;
    Report.Optimization = OptResult ? &*OptResult : nullptr;
    Report.TraceData = TraceOn ? &TraceData : nullptr;
    Report.Status = &FinalStatus;
    JsonValue Doc = buildAnalysisReport(Report);
    if (ScrubTimings)
      scrubReportTimings(Doc);
    std::string Error;
    if (!writeJsonFile(ReportFile, Doc, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 4;
    }
    if (ReportFile != "-")
      std::printf("report written to %s\n", ReportFile.c_str());
  }

  if (Run) {
    ExecutionResult Exec = interpret(*M);
    std::printf("\nexecution: %s, %llu steps\n",
                Exec.ok() ? "ok" : Exec.TrapMessage.c_str(),
                static_cast<unsigned long long>(Exec.Steps));
    for (ConstantValue V : Exec.Output)
      std::printf("output: %lld\n", static_cast<long long>(V));
  }
  if (FinalStatus.Degraded) {
    std::fprintf(stderr, "warning: %s\n", FinalStatus.Message.c_str());
    return 5;
  }
  return 0;
}
