//===- examples/loop_bounds.cpp - the parallelization motivation ----------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// The paper's introduction motivates interprocedural constants with
// automatic parallelization: "interprocedural constants are often used
// as loop bounds. ... knowing their values allows the compiler to make
// informed decisions about the profitability of parallel execution"
// (citing Eigenmann & Blume).
//
// This example plays a parallelizing compiler: it finds every DO loop
// whose trip count becomes a compile-time constant once interprocedural
// constants are known, and compares against a purely intraprocedural
// analysis — the loops it reports are exactly the ones the paper says
// intraprocedural propagation loses.
//
//===----------------------------------------------------------------------===//

#include "analysis/DeadCode.h"
#include "core/Pipeline.h"
#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "support/Casting.h"

#include <cstdio>

using namespace ipcp;

// A scaled-down BLAS-like library: the driver owns the problem sizes and
// every kernel receives its loop bounds through parameters or globals.
static const char *Source = R"(
global nvec, blocksize;
global data[512], accum[512];

proc axpy(n, a) {
  var i;
  do i = 0, n - 1 {
    accum[i] = accum[i] + a * data[i];
  }
}

proc sweep(n, bs) {
  var b, nb;
  nb = n / bs;
  do b = 0, nb - 1 {
    call axpy(bs, 3);
  }
}

proc reduce(n) {
  var i, s;
  s = 0;
  do i = 0, n - 1 {
    s = s + accum[i];
  }
  print s;
}

proc main() {
  var i;
  nvec = 256;
  blocksize = 32;
  do i = 0, nvec - 1 {
    data[i] = i % 17;
  }
  call sweep(nvec, blocksize);
  call reduce(nvec);
}
)";

namespace {

/// Counts loop headers whose bound is a literal constant. Applied to a
/// module transformed with one analysis' facts (substitution + folding),
/// this is "loops whose trip count the parallelizer can see" under that
/// analysis. In this front end's lowering, a conditional branch in a
/// block with two or more predecessors is a loop header.
unsigned knownBoundLoops(const Module &M) {
  unsigned Known = 0;
  for (const std::unique_ptr<Procedure> &P : M.procedures()) {
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks()) {
      const auto *CBr = dyn_cast_or_null<CondBranchInst>(BB->getTerminator());
      if (!CBr || BB->predecessors().size() < 2)
        continue;
      const auto *Cmp = dyn_cast<BinaryInst>(CBr->getCond());
      if (!Cmp || !isComparisonOp(Cmp->getOp()))
        continue;
      if (isa<ConstantInt>(Cmp->getLHS()) || isa<ConstantInt>(Cmp->getRHS()))
        ++Known;
    }
  }
  return Known;
}

/// Applies \p R's facts to a scratch copy and counts known-bound loops.
unsigned knownBoundLoopsUnder(const Module &M, const IPCPResult &R) {
  std::unique_ptr<Module> Transformed = M.clone();
  applyFacts(*Transformed, R.Facts);
  return knownBoundLoops(*Transformed);
}

unsigned totalLoops(const Module &M) {
  unsigned Loops = 0;
  for (const std::unique_ptr<Procedure> &P : M.procedures())
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks())
      if (isa_and_nonnull<CondBranchInst>(BB->getTerminator()) &&
          BB->predecessors().size() >= 2)
        ++Loops;
  return Loops;
}

} // namespace

int main() {
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Source, Diags);
  if (!Ast) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  std::unique_ptr<Module> M = lowerProgram(*Ast);

  unsigned Loops = totalLoops(*M);

  IPCPOptions Intra;
  Intra.IntraproceduralOnly = true;
  IPCPResult IntraResult = runIPCP(*M, Intra);
  IPCPResult InterResult = runIPCP(*M);

  std::printf("loops in program:                        %u\n", Loops);
  std::printf("bounds known intraprocedurally:          %u\n",
              knownBoundLoopsUnder(*M, IntraResult));
  std::printf("bounds known with interprocedural CP:    %u\n",
              knownBoundLoopsUnder(*M, InterResult));
  std::printf("\nWith interprocedural constants the \"parallelizer\" can "
              "size every kernel loop\n(axpy: 32 iterations, sweep: 8 "
              "blocks, reduce: 256 elements) and decide\nprofitability "
              "statically — the Eigenmann & Blume scenario from the "
              "paper's intro.\n");
  return 0;
}
