//===- examples/quickstart.cpp - five-minute tour of the library ----------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: compile a MiniFort program, run jump-function
// interprocedural constant propagation, inspect CONSTANTS(p) for each
// procedure, and apply the discovered constants back to the program.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "analysis/DeadCode.h"
#include "core/Pipeline.h"
#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "ir/IRPrinter.h"

#include <cstdio>

using namespace ipcp;

// A tiny program with one interprocedural constant story: `width` flows
// from main through `render` into `clamp`, picking up arithmetic along
// the way.
static const char *Source = R"(
global gamma;

proc clamp(v, hi) {
  if (v > hi) { v = hi; }
  print v;
}

proc render(width, brightness) {
  var pixels;
  pixels = width * width;
  call clamp(pixels, 10000);
  print brightness * gamma;
}

proc main() {
  gamma = 2;
  call render(64, 9);
}
)";

int main() {
  // 1. Frontend: parse + semantic checks.
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Source, Diags);
  if (!Ast) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // 2. Lower to the IR the analyses run on.
  std::unique_ptr<Module> M = lowerProgram(*Ast);

  // 3. One call runs the whole framework: MOD/REF analysis, SSA, return
  //    and forward jump functions, and the call-graph propagation.
  IPCPOptions Opts; // defaults: polynomial jump functions + return JFs + MOD
  IPCPResult Result = runIPCP(*M, Opts);

  std::printf("== CONSTANTS(p): values that always hold on entry ==\n");
  for (const ProcedureResult &PR : Result.Procs) {
    std::printf("  %s:", PR.Name.c_str());
    if (PR.EntryConstants.empty())
      std::printf(" (none)");
    for (const auto &[Name, Value] : PR.EntryConstants)
      std::printf(" %s=%lld", Name.c_str(), static_cast<long long>(Value));
    std::printf("   [%u constant refs]\n", PR.ConstantRefs);
  }
  std::printf("total: %u entry constants, %u references proven constant\n\n",
              Result.TotalEntryConstants, Result.TotalConstantRefs);

  // 4. Substitute the constants into the program (the paper's
  //    "transformed version of the original source").
  TransformStats Stats = applyFacts(*M, Result.Facts);
  std::printf("== after substitution ==\n");
  std::printf("loads replaced: %u, branches folded: %u, dead blocks "
              "removed: %u\n\n",
              Stats.LoadsReplaced, Stats.BranchesFolded, Stats.BlocksRemoved);

  std::printf("%s", printModule(*M).c_str());
  return 0;
}
