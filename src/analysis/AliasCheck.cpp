//===- analysis/AliasCheck.cpp --------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasCheck.h"

using namespace ipcp;

std::vector<Diagnostic> ipcp::checkAliasHazards(const Module &M,
                                                const CallGraph &CG,
                                                const ModRefInfo &MRI) {
  std::vector<Diagnostic> Warnings;
  auto Warn = [&](SourceLoc Loc, std::string Message) {
    Warnings.push_back({DiagKind::Warning, Loc, std::move(Message)});
  };

  for (const std::unique_ptr<Procedure> &Proc : M.procedures()) {
    Procedure *P = Proc.get();
    for (const CallInst *Call : CG.callSitesIn(P)) {
      const Procedure *Callee = Call->getCallee();

      // Hazard 1: one variable bound to two formals, either modifiable.
      for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
        Variable *LocI = Call->getActual(I).ByRefLoc;
        if (!LocI)
          continue;
        for (unsigned J = I + 1; J != E; ++J) {
          if (Call->getActual(J).ByRefLoc != LocI)
            continue;
          if (MRI.formalMayBeModified(Callee, I) ||
              MRI.formalMayBeModified(Callee, J))
            Warn(Call->getLoc(),
                 "variable '" + LocI->getName() +
                     "' is passed twice to '" + Callee->getName() +
                     "' and a bound parameter may be modified; the "
                     "analysis assumes Fortran's no-alias rule");
        }
      }

      // Hazard 2: a global bound to a formal while the callee also
      // touches the global directly (transitively).
      for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
        Variable *Loc = Call->getActual(I).ByRefLoc;
        if (!Loc || !Loc->isGlobal())
          continue;
        bool FormalMod = MRI.formalMayBeModified(Callee, I);
        bool GlobalTouched = MRI.extendedGlobals(Callee).count(Loc) != 0;
        bool GlobalMod = MRI.modifiedGlobals(Callee).count(Loc) != 0;
        if ((FormalMod && GlobalTouched) || GlobalMod)
          Warn(Call->getLoc(),
               "global '" + Loc->getName() + "' is passed by reference "
               "to '" + Callee->getName() +
                   "' which also accesses it directly; the analysis "
                   "assumes Fortran's no-alias rule");
      }
    }
  }
  return Warnings;
}

std::vector<Diagnostic> ipcp::checkAliasHazards(const Module &M) {
  CallGraph CG(M);
  ModRefInfo MRI = ModRefInfo::compute(M, CG);
  return checkAliasHazards(M, CG, MRI);
}
