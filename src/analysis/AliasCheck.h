//===- analysis/AliasCheck.h - Fortran no-alias rule checker ----*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framework (like Fortran compilers, and like the paper's analyzer)
/// assumes the standard Fortran rule that a procedure never modifies a
/// location reachable under two names: a dummy argument aliased with
/// another dummy argument or with a COMMON variable must not be
/// assigned. MiniFort programs can violate this (the interpreter
/// implements real aliasing), in which case the analysis' view of the
/// callee's body can disagree with execution.
///
/// This pass flags the two hazardous call shapes, using MOD/REF
/// summaries to stay precise:
///
///  - the same scalar passed as two by-reference actuals where at least
///    one of the bound formals may be modified;
///  - a global passed as a by-reference actual where the bound formal
///    may be modified and the callee may also touch the global directly,
///    or the callee may modify the global while the formal is used.
///
/// Programs with no diagnostics satisfy the assumption; DESIGN.md
/// documents that the benchmark suite and the generator are clean by
/// construction (enforced in the test suite).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_ALIASCHECK_H
#define IPCP_ANALYSIS_ALIASCHECK_H

#include "analysis/ModRef.h"
#include "support/Diagnostics.h"

#include <vector>

namespace ipcp {

/// Scans every call site; returns one warning per hazard found.
std::vector<Diagnostic> checkAliasHazards(const Module &M,
                                          const CallGraph &CG,
                                          const ModRefInfo &MRI);

/// Convenience: builds the call graph and MOD/REF info internally.
std::vector<Diagnostic> checkAliasHazards(const Module &M);

} // namespace ipcp

#endif // IPCP_ANALYSIS_ALIASCHECK_H
