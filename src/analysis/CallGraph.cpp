//===- analysis/CallGraph.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace ipcp;

CallGraph::CallGraph(const Module &M) {
  ScopedTraceSpan BuildSpan("callgraph");
  size_t NumProcs = M.procedures().size();
  Order.reserve(NumProcs);
  Sites.resize(NumProcs);
  Callees.resize(NumProcs);
  Callers.resize(NumProcs);
  Recursive.assign(NumProcs, 0);
  for (const std::unique_ptr<Procedure> &P : M.procedures()) {
    assert(P->getModuleIndex() == Order.size() &&
           "module procedure indices out of sync");
    Order.push_back(P.get());
    std::vector<CallInst *> Calls = P->callSites();
    std::vector<Procedure *> &CalleeList = Callees[P->getModuleIndex()];
    for (CallInst *Call : Calls) {
      Procedure *Q = Call->getCallee();
      if (std::find(CalleeList.begin(), CalleeList.end(), Q) ==
          CalleeList.end())
        CalleeList.push_back(Q);
      std::vector<Procedure *> &CallerList = Callers[Q->getModuleIndex()];
      if (std::find(CallerList.begin(), CallerList.end(), P.get()) ==
          CallerList.end())
        CallerList.push_back(P.get());
      if (Q == P.get())
        Recursive[P->getModuleIndex()] = 1;
    }
    Sites[P->getModuleIndex()] = std::move(Calls);
  }
  computeSCCs();
}

const std::vector<CallInst *> &CallGraph::callSitesIn(Procedure *P) const {
  return Sites[procIndex(P)];
}

const std::vector<Procedure *> &CallGraph::callees(Procedure *P) const {
  return Callees[procIndex(P)];
}

const std::vector<Procedure *> &CallGraph::callers(Procedure *P) const {
  return Callers[procIndex(P)];
}

void CallGraph::computeSCCs() {
  // Iterative Tarjan. Emission order (components finish callee-first) is
  // exactly the bottom-up order the return-jump-function pass needs.
  struct NodeState {
    unsigned Index = 0;
    unsigned LowLink = 0;
    bool OnStack = false;
    bool Visited = false;
  };
  std::vector<NodeState> State(Order.size());
  std::vector<Procedure *> Stack;
  unsigned NextIndex = 0;
  SCCIndex.assign(Order.size(), 0);
  auto StateOf = [&](Procedure *P) -> NodeState & {
    return State[P->getModuleIndex()];
  };

  struct Frame {
    Procedure *P;
    size_t NextCallee;
  };

  for (Procedure *Root : Order) {
    if (StateOf(Root).Visited)
      continue;
    std::vector<Frame> Frames{{Root, 0}};
    StateOf(Root).Visited = true;
    StateOf(Root).Index = StateOf(Root).LowLink = NextIndex++;
    StateOf(Root).OnStack = true;
    Stack.push_back(Root);

    while (!Frames.empty()) {
      Frame &F = Frames.back();
      const std::vector<Procedure *> &Succ = callees(F.P);
      if (F.NextCallee < Succ.size()) {
        Procedure *Q = Succ[F.NextCallee++];
        NodeState &QS = StateOf(Q);
        if (!QS.Visited) {
          QS.Visited = true;
          QS.Index = QS.LowLink = NextIndex++;
          QS.OnStack = true;
          Stack.push_back(Q);
          Frames.push_back({Q, 0});
        } else if (QS.OnStack) {
          StateOf(F.P).LowLink = std::min(StateOf(F.P).LowLink, QS.Index);
        }
        continue;
      }

      // Finished with F.P: close its SCC if it is a root.
      NodeState &PS = StateOf(F.P);
      if (PS.LowLink == PS.Index) {
        std::vector<Procedure *> Component;
        while (true) {
          Procedure *Q = Stack.back();
          Stack.pop_back();
          StateOf(Q).OnStack = false;
          Component.push_back(Q);
          if (Q == F.P)
            break;
        }
        if (Component.size() > 1)
          for (Procedure *Q : Component)
            Recursive[Q->getModuleIndex()] = 1;
        for (Procedure *Q : Component)
          SCCIndex[Q->getModuleIndex()] = unsigned(SCCs.size());
        SCCs.push_back(std::move(Component));
      }
      Procedure *Done = F.P;
      Frames.pop_back();
      if (!Frames.empty()) {
        NodeState &ParentState = StateOf(Frames.back().P);
        ParentState.LowLink =
            std::min(ParentState.LowLink, StateOf(Done).LowLink);
      }
    }
  }
}

std::unordered_set<Procedure *>
CallGraph::reachableFrom(Procedure *Entry) const {
  std::unordered_set<Procedure *> Reachable;
  if (!Entry)
    return Reachable;
  std::deque<Procedure *> Queue{Entry};
  Reachable.insert(Entry);
  while (!Queue.empty()) {
    Procedure *P = Queue.front();
    Queue.pop_front();
    for (Procedure *Q : callees(P))
      if (Reachable.insert(Q).second)
        Queue.push_back(Q);
  }
  return Reachable;
}
