//===- analysis/CallGraph.h - Program call graph ----------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The call graph G the paper propagates over: one node per procedure, one
/// edge per call site (parallel edges preserved — each call site carries
/// its own jump functions). Also computes Tarjan SCCs and a bottom-up SCC
/// order, which the return-jump-function builder walks, and reachability
/// from the entry procedure.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_CALLGRAPH_H
#define IPCP_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"

#include <cassert>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ipcp {

/// Call graph over one module.
class CallGraph {
public:
  explicit CallGraph(const Module &M);

  /// Every call site in \p P, in block order.
  const std::vector<CallInst *> &callSitesIn(Procedure *P) const;

  /// Distinct procedures called from \p P.
  const std::vector<Procedure *> &callees(Procedure *P) const;

  /// Distinct procedures calling \p P.
  const std::vector<Procedure *> &callers(Procedure *P) const;

  /// Strongly connected components in bottom-up (callee-first) order;
  /// each component lists its member procedures.
  const std::vector<std::vector<Procedure *>> &sccsBottomUp() const {
    return SCCs;
  }

  /// True when \p P participates in recursion (its SCC has >1 member or a
  /// direct self-call).
  bool isRecursive(Procedure *P) const {
    return Recursive[procIndex(P)] != 0;
  }

  /// Dense module-order index of \p P in [0, procedures().size()). The
  /// SCC-scheduled propagator uses it to key per-procedure vectors.
  unsigned procIndex(Procedure *P) const {
    assert(P->getModuleIndex() < Order.size() &&
           Order[P->getModuleIndex()] == P &&
           "procedure not in call graph");
    return P->getModuleIndex();
  }

  /// Index of \p P's component within sccsBottomUp(). Cross-component
  /// edges always point from a larger to a smaller index (callees finish
  /// first under Tarjan), which is what makes one top-down sweep over the
  /// condensation converge.
  unsigned sccIndex(Procedure *P) const { return SCCIndex[procIndex(P)]; }

  /// Procedures reachable from \p Entry (inclusive); empty when Entry is
  /// null.
  std::unordered_set<Procedure *> reachableFrom(Procedure *Entry) const;

  const std::vector<Procedure *> &procedures() const { return Order; }

private:
  void computeSCCs();

  // Side tables are flat vectors over procIndex (== module order).
  std::vector<Procedure *> Order; // module order
  std::vector<unsigned> SCCIndex;
  std::vector<std::vector<CallInst *>> Sites;
  std::vector<std::vector<Procedure *>> Callees;
  std::vector<std::vector<Procedure *>> Callers;
  std::vector<std::vector<Procedure *>> SCCs;
  std::vector<char> Recursive;
};

} // namespace ipcp

#endif // IPCP_ANALYSIS_CALLGRAPH_H
