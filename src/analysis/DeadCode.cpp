//===- analysis/DeadCode.cpp ----------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "analysis/DeadCode.h"

#include "support/Casting.h"
#include "support/Trace.h"

#include <deque>
#include <unordered_map>
#include <vector>

using namespace ipcp;

/// True for value-producing instructions that may be deleted when unused.
/// Read is excluded: removing one would shift the external input stream.
static bool isPureValue(const Instruction *Inst) {
  switch (Inst->getKind()) {
  case ValueKind::Binary:
  case ValueKind::Unary:
  case ValueKind::Load:
  case ValueKind::ArrayLoad:
  case ValueKind::Phi:
  case ValueKind::CallOut:
    return true;
  default:
    return false;
  }
}

unsigned ipcp::removeTriviallyDeadInstructions(Procedure &P) {
  std::unordered_map<const Value *, unsigned> UseCount;
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      for (const Value *Op : Inst->operands())
        if (Op && Op->isInstruction())
          ++UseCount[Op];

  std::deque<Instruction *> Dead;
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (isPureValue(Inst.get()) && UseCount[Inst.get()] == 0)
        Dead.push_back(Inst.get());

  unsigned Removed = 0;
  while (!Dead.empty()) {
    Instruction *Inst = Dead.front();
    Dead.pop_front();
    for (Value *Op : Inst->operands()) {
      auto *OpInst = dyn_cast_or_null<Instruction>(Op);
      if (!OpInst)
        continue;
      if (--UseCount[OpInst] == 0 && isPureValue(OpInst))
        Dead.push_back(OpInst);
    }
    Inst->getParent()->erase(Inst);
    ++Removed;
  }
  return Removed;
}

unsigned ipcp::foldConstantExpressions(Procedure &P) {
  Module &M = *P.getModule();
  unsigned Folded = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Collect fold results first, then rewrite uses in one sweep.
    std::unordered_map<const Value *, ConstantInt *> Subst;
    std::vector<Instruction *> ToErase;
    for (const std::unique_ptr<BasicBlock> &BB : P.blocks()) {
      for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
        std::optional<ConstantValue> Result;
        if (auto *Bin = dyn_cast<BinaryInst>(Inst.get())) {
          auto *L = dyn_cast<ConstantInt>(Bin->getLHS());
          auto *R = dyn_cast<ConstantInt>(Bin->getRHS());
          if (L && R)
            Result = foldBinary(Bin->getOp(), L->getValue(), R->getValue());
        } else if (auto *Un = dyn_cast<UnaryInst>(Inst.get())) {
          if (auto *V = dyn_cast<ConstantInt>(Un->getValueOperand()))
            Result = foldUnary(Un->getOp(), V->getValue());
        }
        if (!Result)
          continue;
        Subst[Inst.get()] = M.getConstant(*Result);
        ToErase.push_back(Inst.get());
      }
    }
    if (Subst.empty())
      break;
    for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
      for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
        for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I) {
          auto It = Subst.find(Inst->getOperand(I));
          if (It != Subst.end())
            Inst->setOperand(I, It->second);
        }
    for (Instruction *Inst : ToErase) {
      Inst->getParent()->erase(Inst);
      ++Folded;
    }
    Changed = true;
  }
  return Folded;
}

/// Rewrites a constant-condition CondBranch into an unconditional branch.
static void foldBranch(Procedure &P, CondBranchInst *CBr, bool TakeTrue) {
  BasicBlock *BB = CBr->getParent();
  BasicBlock *Taken = TakeTrue ? CBr->getTrueTarget() : CBr->getFalseTarget();
  BasicBlock *Untaken =
      TakeTrue ? CBr->getFalseTarget() : CBr->getTrueTarget();

  if (Untaken != Taken) {
    Untaken->removePredecessor(BB);
    // Pre-SSA modules carry no phis; keep them consistent anyway in case
    // facts are ever applied to SSA-form IR.
    for (const std::unique_ptr<Instruction> &Inst : Untaken->instructions()) {
      auto *Phi = dyn_cast<PhiInst>(Inst.get());
      if (!Phi)
        break;
      for (unsigned I = 0; I < Phi->getNumIncoming();) {
        if (Phi->getIncomingBlock(I) == BB)
          Phi->removeIncoming(I);
        else
          ++I;
      }
    }
  }

  uint64_t Id = P.getModule()->nextInstId();
  SourceLoc Loc = CBr->getLoc();
  BB->erase(CBr);
  BB->append(std::make_unique<BranchInst>(Id, Loc, Taken));
}

TransformStats ipcp::applyFacts(Module &M, const TransformFacts &Facts) {
  ScopedTraceSpan ApplySpan("apply-facts");
  TransformStats Stats;

  for (const std::unique_ptr<Procedure> &P : M.procedures()) {
    // Pass 1: substitute constant loads into their users in one sweep
    // (constants cannot cascade into new loads, so one pass suffices).
    std::vector<LoadInst *> ReplacedLoads;
    std::unordered_map<const Value *, ConstantInt *> LoadSubst;
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks())
      for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
        if (auto *Load = dyn_cast<LoadInst>(Inst.get())) {
          auto It = Facts.ConstantLoads.find(Load->getId());
          if (It == Facts.ConstantLoads.end())
            continue;
          LoadSubst[Load] = M.getConstant(It->second);
          ReplacedLoads.push_back(Load);
        }

    if (!LoadSubst.empty()) {
      for (const std::unique_ptr<BasicBlock> &BB : P->blocks())
        for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
          for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I) {
            auto It = LoadSubst.find(Inst->getOperand(I));
            if (It != LoadSubst.end())
              Inst->setOperand(I, It->second);
          }
      for (LoadInst *Load : ReplacedLoads) {
        Load->getParent()->erase(Load);
        ++Stats.LoadsReplaced;
      }
    }

    // Pass 2: fold branches with constant conditions.
    std::vector<std::pair<CondBranchInst *, bool>> ToFold;
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks())
      if (auto *CBr =
              dyn_cast_or_null<CondBranchInst>(BB->getTerminator())) {
        auto It = Facts.FoldedBranches.find(CBr->getId());
        if (It != Facts.FoldedBranches.end())
          ToFold.push_back({CBr, It->second});
      }
    for (auto &[CBr, TakeTrue] : ToFold) {
      foldBranch(*P, CBr, TakeTrue);
      ++Stats.BranchesFolded;
    }

    // Pass 3: cleanup — fold expressions the substitutions made
    // constant, drop unreachable blocks, then delete dead chains.
    unsigned Folded = foldConstantExpressions(*P);
    Stats.ExprsFolded += Folded;
    Stats.InstsRemoved += Folded;
    Stats.BlocksRemoved += P->removeUnreachableBlocks();
    Stats.InstsRemoved += removeTriviallyDeadInstructions(*P);
  }

  return Stats;
}
