//===- analysis/DeadCode.h - Fact application and DCE -----------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Applies analysis facts back to the canonical pre-SSA module and cleans
/// up the fallout. This implements the transformation half of the paper's
/// experiments:
///
///  - constant substitution: scalar loads proven constant are replaced by
///    the constant (the paper's "transformed version of the original
///    source in which the interprocedural constants are textually
///    substituted into the code");
///  - branch folding: conditional branches whose condition is proven
///    constant become unconditional;
///  - unreachable code elimination + removal of trivially dead pure
///    instructions — the "dead code elimination" of the complete
///    propagation experiment (Table 3).
///
/// Facts are keyed by clone-stable instruction IDs, so they can be
/// computed on an SSA-form scratch clone and applied to the original.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_DEADCODE_H
#define IPCP_ANALYSIS_DEADCODE_H

#include "ir/Module.h"
#include "support/ConstantMath.h"

#include <unordered_map>

namespace ipcp {

/// Facts to apply, keyed by instruction ID.
struct TransformFacts {
  /// LoadInst ID -> the constant value the load always produces.
  std::unordered_map<uint64_t, ConstantValue> ConstantLoads;
  /// CondBranchInst ID -> whether the true edge is always taken.
  std::unordered_map<uint64_t, bool> FoldedBranches;
};

/// What applyFacts changed.
struct TransformStats {
  unsigned LoadsReplaced = 0;
  unsigned BranchesFolded = 0;
  unsigned BlocksRemoved = 0;
  unsigned InstsRemoved = 0;

  /// Binary/Unary instructions folded to literals by the cleanup pass.
  /// Also counted in InstsRemoved (a fold deletes the instruction);
  /// reported separately so the optimization report can distinguish
  /// folds from plain dead-chain removal.
  unsigned ExprsFolded = 0;

  /// True when the transformation found dead code — the condition the
  /// paper uses to re-run complete propagation from scratch.
  bool foundDeadCode() const { return BlocksRemoved != 0; }

  bool changedAnything() const {
    return LoadsReplaced || BranchesFolded || BlocksRemoved || InstsRemoved;
  }
};

/// Applies \p Facts to \p M (pre-SSA form) and cleans up.
TransformStats applyFacts(Module &M, const TransformFacts &Facts);

/// Deletes pure value-producing instructions with no uses, iteratively.
/// Returns the number of instructions removed.
unsigned removeTriviallyDeadInstructions(Procedure &P);

/// Folds Binary/Unary instructions whose operands are all constants into
/// uniqued ConstantInts, to fixpoint (folds that would trap are left
/// alone). Returns the number of instructions folded. Runs inside
/// applyFacts after load substitution so e.g. a loop bound `n - 1`
/// becomes a literal once `n` is substituted.
unsigned foldConstantExpressions(Procedure &P);

} // namespace ipcp

#endif // IPCP_ANALYSIS_DEADCODE_H
