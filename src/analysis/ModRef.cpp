//===- analysis/ModRef.cpp ------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "analysis/ModRef.h"

#include "support/Casting.h"
#include "support/Trace.h"
#include "support/Worklist.h"

using namespace ipcp;

bool ModRefInfo::formalMayBeModified(const Procedure *P,
                                     unsigned Index) const {
  if (WorstCase)
    return true;
  uint32_t PI = P->getModuleIndex();
  if (PI >= FormalMod.size())
    return false;
  return Index < FormalMod[PI].size() && FormalMod[PI][Index];
}

const VariableSet &ModRefInfo::modifiedGlobals(const Procedure *P) const {
  if (WorstCase)
    return AllScalarGlobals;
  uint32_t PI = P->getModuleIndex();
  return PI >= GlobalMod.size() ? EmptySet : GlobalMod[PI];
}

const VariableSet &ModRefInfo::extendedGlobals(const Procedure *P) const {
  if (WorstCase)
    return AllScalarGlobals;
  uint32_t PI = P->getModuleIndex();
  return PI >= ExtGlobals.size() ? EmptySet : ExtGlobals[PI];
}

std::vector<Variable *> ModRefInfo::callKills(const CallInst *Call) const {
  VariableSet Kills;
  const Procedure *Callee = Call->getCallee();
  for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
    Variable *Loc = Call->getActual(I).ByRefLoc;
    if (Loc && formalMayBeModified(Callee, I))
      Kills.insert(Loc);
  }
  for (Variable *G : modifiedGlobals(Callee))
    Kills.insert(G);
  return {Kills.begin(), Kills.end()};
}

ModRefInfo ModRefInfo::worstCase(const Module &M) {
  ModRefInfo Info;
  Info.WorstCase = true;
  for (Variable *G : M.globals())
    if (G->isScalar())
      Info.AllScalarGlobals.insert(G);
  return Info;
}

ModRefInfo ModRefInfo::compute(const Module &M, const CallGraph &CG) {
  ModRefInfo Info;
  ScopedTraceSpan ComputeSpan("modref");

  // Direct (local) effects first.
  size_t NumProcs = M.procedures().size();
  Info.FormalMod.resize(NumProcs);
  Info.GlobalMod.resize(NumProcs);
  Info.ExtGlobals.resize(NumProcs);
  for (const std::unique_ptr<Procedure> &P : M.procedures()) {
    std::vector<bool> &Mods = Info.FormalMod[P->getModuleIndex()];
    Mods.assign(P->getNumFormals(), false);
    VariableSet &GMod = Info.GlobalMod[P->getModuleIndex()];
    VariableSet &Ext = Info.ExtGlobals[P->getModuleIndex()];
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks()) {
      for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
        if (const auto *Store = dyn_cast<StoreInst>(Inst.get())) {
          Variable *Var = Store->getVariable();
          if (Var->isFormal())
            Mods[Var->getFormalIndex()] = true;
          else if (Var->isGlobal()) {
            GMod.insert(Var);
            Ext.insert(Var);
          }
        } else if (const auto *Load = dyn_cast<LoadInst>(Inst.get())) {
          if (Load->getVariable()->isGlobal())
            Ext.insert(Load->getVariable());
        }
      }
    }
  }

  // Propagate effects from callees to callers to fixpoint.
  Worklist<Procedure *> Work;
  for (const std::unique_ptr<Procedure> &P : M.procedures())
    Work.insert(P.get());

  while (!Work.empty()) {
    Procedure *P = Work.pop();
    bool Changed = false;
    std::vector<bool> &Mods = Info.FormalMod[P->getModuleIndex()];
    VariableSet &GMod = Info.GlobalMod[P->getModuleIndex()];
    VariableSet &Ext = Info.ExtGlobals[P->getModuleIndex()];

    for (const CallInst *Call : CG.callSitesIn(P)) {
      const Procedure *Q = Call->getCallee();
      // Bind callee formal side effects to caller locations.
      const std::vector<bool> &CalleeMods =
          Info.FormalMod[Q->getModuleIndex()];
      for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
        if (I >= CalleeMods.size() || !CalleeMods[I])
          continue;
        Variable *Loc = Call->getActual(I).ByRefLoc;
        if (!Loc)
          continue;
        if (Loc->isFormal() && !Mods[Loc->getFormalIndex()]) {
          Mods[Loc->getFormalIndex()] = true;
          Changed = true;
        } else if (Loc->isGlobal() && GMod.insert(Loc).second) {
          Ext.insert(Loc);
          Changed = true;
        }
      }
      // Globals are shared: callee effects apply directly.
      for (Variable *G : Info.GlobalMod[Q->getModuleIndex()])
        if (GMod.insert(G).second) {
          Ext.insert(G);
          Changed = true;
        }
      for (Variable *G : Info.ExtGlobals[Q->getModuleIndex()])
        if (Ext.insert(G).second)
          Changed = true;
    }

    if (Changed)
      for (Procedure *Caller : CG.callers(P))
        Work.insert(Caller);
  }

  return Info;
}
