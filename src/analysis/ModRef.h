//===- analysis/ModRef.h - Interprocedural side effects ---------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow-insensitive interprocedural MOD/REF summary analysis in the style
/// of Cooper & Kennedy: for each procedure, which formals may be modified
/// through any call chain, and which globals may be modified/referenced.
/// By-reference bindings at call sites translate callee formal
/// side-effects into caller variables; the summaries reach a fixpoint over
/// the call graph (recursion handled naturally by the worklist).
///
/// The paper's Table 3 shows that this information is the single most
/// valuable ingredient of interprocedural constant propagation; the
/// worstCase() factory models its absence (every call may modify every
/// by-reference actual and every global), reproducing the ablation.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_MODREF_H
#define IPCP_ANALYSIS_MODREF_H

#include "analysis/CallGraph.h"
#include "ir/Module.h"

#include <set>
#include <unordered_map>
#include <vector>

namespace ipcp {

/// Side-effect summaries for every procedure in a module.
/// (VariableSet / VariableIdLess live in ir/Variable.h.)
class ModRefInfo {
public:
  /// Runs the analysis to fixpoint.
  static ModRefInfo compute(const Module &M, const CallGraph &CG);

  /// The no-information ablation: every call clobbers everything.
  static ModRefInfo worstCase(const Module &M);

  bool isWorstCase() const { return WorstCase; }

  /// May formal \p Index of \p P be modified by executing \p P?
  bool formalMayBeModified(const Procedure *P, unsigned Index) const;

  /// Scalar globals possibly modified by executing \p P (transitive).
  const VariableSet &modifiedGlobals(const Procedure *P) const;

  /// Scalar globals possibly referenced or modified by executing \p P
  /// (transitive) — the globals that become "extended formal parameters"
  /// of \p P for the interprocedural propagation (paper footnote 1).
  const VariableSet &extendedGlobals(const Procedure *P) const;

  /// Caller locations a call may modify: by-reference actuals bound to
  /// modifiable formals plus the callee's modified globals. Deduplicated,
  /// ID-ordered, scalars only.
  std::vector<Variable *> callKills(const CallInst *Call) const;

private:
  ModRefInfo() = default;

  bool WorstCase = false;
  VariableSet AllScalarGlobals;
  // Summaries are flat vectors over Procedure::getModuleIndex().
  std::vector<std::vector<bool>> FormalMod;
  std::vector<VariableSet> GlobalMod;
  std::vector<VariableSet> ExtGlobals;
  VariableSet EmptySet;
};

} // namespace ipcp

#endif // IPCP_ANALYSIS_MODREF_H
