//===- analysis/SCCP.cpp --------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SCCP.h"

#include "support/Casting.h"
#include "support/Trace.h"

#include <cassert>

using namespace ipcp;

LatticeValue SCCPResult::valueOf(const Value *V) const {
  if (const auto *Inst = dyn_cast<Instruction>(V)) {
    assert(Inst->getLocalIdx() < InstValues.size() &&
           "instruction outside the analyzed procedure");
    return InstValues[Inst->getLocalIdx()];
  }
  if (const auto *C = dyn_cast<ConstantInt>(V))
    return LatticeValue::constant(C->getValue());
  if (const auto *Entry = dyn_cast<EntryValue>(V)) {
    auto It = EntrySeeds.find(Entry->getVariable());
    return It == EntrySeeds.end() ? LatticeValue::bottom() : It->second;
  }
  assert(isa<UndefValue>(V) && "unexpected value kind");
  return LatticeValue::bottom(); // defensive: undef is never constant
}

unsigned SCCPResult::constantValueCount() const {
  unsigned Count = 0;
  for (LatticeValue LV : InstValues)
    if (LV.isConstant())
      ++Count;
  return Count;
}

namespace {

/// One SCCP fixpoint computation, writing straight into the result's
/// dense tables. Def-use chains are a CSR adjacency over local
/// instruction indices; worklists are plain index vectors (duplicates
/// allowed, exactly like the previous deque formulation — each pop
/// re-checks executability and monotonicity).
class SCCPSolverImpl {
public:
  SCCPSolverImpl(const Procedure &P, const SCCPOptions &Options,
                 const SCCPResult &R, std::vector<LatticeValue> &InstValues,
                 std::vector<char> &ExecBlocks,
                 std::vector<std::array<char, 2>> &ExecEdges)
      : P(P), Stream(P.instStream()), Options(Options), R(R),
        InstValues(InstValues), ExecBlocks(ExecBlocks), ExecEdges(ExecEdges) {
  }

  void solve();

private:
  void buildUses();
  void markBlockExecutable(const BasicBlock *BB);
  void markEdgeExecutable(const BasicBlock *From, unsigned Slot);
  void setValue(const Instruction *Inst, LatticeValue NewVal);
  LatticeValue evaluate(const Instruction *Inst);

  const Procedure &P;
  const Procedure::InstStream &Stream;
  const SCCPOptions &Options;
  const SCCPResult &R;
  std::vector<LatticeValue> &InstValues;
  std::vector<char> &ExecBlocks;
  std::vector<std::array<char, 2>> &ExecEdges;

  /// CSR def-use chains: users of instruction i live in
  /// UseList[UseOffsets[i] .. UseOffsets[i+1]).
  std::vector<uint32_t> UseOffsets;
  std::vector<uint32_t> UseList;

  std::vector<uint32_t> InstWork; ///< local instruction indices (LIFO)
  std::vector<uint32_t> EdgeWork; ///< (block pos << 1) | successor slot
};

} // namespace

void SCCPSolverImpl::buildUses() {
  size_t N = Stream.size();
  UseOffsets.assign(N + 1, 0);

  // Pass 1: count uses per definition; pass 2: fill the CSR list. A
  // CallOut's value is a function of the call's actual values (the return
  // jump function is evaluated over them), so it registers as a user of
  // each instruction-valued actual.
  auto ForEachDep = [&](const Instruction *Inst, auto Fn) {
    for (const Value *Op : Inst->operands())
      if (Op && Op->isInstruction())
        Fn(static_cast<const Instruction *>(Op));
    if (const auto *Out = dyn_cast<CallOutInst>(Inst))
      for (const Value *Op : Out->getCall()->operands())
        if (Op && Op->isInstruction())
          Fn(static_cast<const Instruction *>(Op));
  };

  for (const Instruction *Inst : Stream.Insts)
    ForEachDep(Inst, [&](const Instruction *Def) {
      ++UseOffsets[Def->getLocalIdx() + 1];
    });
  for (size_t I = 0; I != N; ++I)
    UseOffsets[I + 1] += UseOffsets[I];

  UseList.resize(UseOffsets[N]);
  std::vector<uint32_t> Cursor(UseOffsets.begin(), UseOffsets.end() - 1);
  for (const Instruction *Inst : Stream.Insts)
    ForEachDep(Inst, [&](const Instruction *Def) {
      UseList[Cursor[Def->getLocalIdx()]++] = Inst->getLocalIdx();
    });
}

void SCCPSolverImpl::markBlockExecutable(const BasicBlock *BB) {
  if (ExecBlocks[BB->getDensePos()])
    return;
  ExecBlocks[BB->getDensePos()] = 1;
  const Procedure::InstStream::Span &Span = Stream.Spans[BB->getDensePos()];
  for (uint32_t I = Span.Begin; I != Span.End; ++I)
    InstWork.push_back(I);
}

void SCCPSolverImpl::markEdgeExecutable(const BasicBlock *From,
                                        unsigned Slot) {
  if (ExecEdges[From->getDensePos()][Slot])
    return;
  ExecEdges[From->getDensePos()][Slot] = 1;
  const BasicBlock *To = From->getSuccessor(Slot);
  if (ExecBlocks[To->getDensePos()]) {
    // Only the phis can change when an additional edge becomes live.
    const Procedure::InstStream::Span &Span = Stream.Spans[To->getDensePos()];
    for (uint32_t I = Span.Begin; I != Span.End; ++I) {
      if (!isa<PhiInst>(Stream.Insts[I]))
        break;
      InstWork.push_back(I);
    }
    return;
  }
  markBlockExecutable(To);
}

void SCCPSolverImpl::setValue(const Instruction *Inst, LatticeValue NewVal) {
  LatticeValue &Cell = InstValues[Inst->getLocalIdx()];
  // Monotonicity: only ever lower.
  LatticeValue Lowered = meet(Cell, NewVal);
  if (Lowered == Cell)
    return;
  Cell = Lowered;
  uint32_t Idx = Inst->getLocalIdx();
  for (uint32_t U = UseOffsets[Idx], E = UseOffsets[Idx + 1]; U != E; ++U)
    InstWork.push_back(UseList[U]);
}

LatticeValue SCCPSolverImpl::evaluate(const Instruction *Inst) {
  auto Get = [&](const Value *V) { return R.valueOf(V); };

  switch (Inst->getKind()) {
  case ValueKind::Binary: {
    const auto *Bin = cast<BinaryInst>(Inst);
    LatticeValue L = Get(Bin->getLHS());
    LatticeValue Rv = Get(Bin->getRHS());
    if (L.isBottom() || Rv.isBottom())
      return LatticeValue::bottom();
    if (L.isTop() || Rv.isTop())
      return LatticeValue::top();
    if (auto Folded =
            foldBinary(Bin->getOp(), L.getConstant(), Rv.getConstant()))
      return LatticeValue::constant(*Folded);
    return LatticeValue::bottom(); // overflow / divide by zero
  }
  case ValueKind::Unary: {
    const auto *Un = cast<UnaryInst>(Inst);
    LatticeValue V = Get(Un->getValueOperand());
    if (V.isBottom())
      return LatticeValue::bottom();
    if (V.isTop())
      return LatticeValue::top();
    if (auto Folded = foldUnary(Un->getOp(), V.getConstant()))
      return LatticeValue::constant(*Folded);
    return LatticeValue::bottom();
  }
  case ValueKind::Phi: {
    const auto *Phi = cast<PhiInst>(Inst);
    LatticeValue Merged = LatticeValue::top();
    for (unsigned I = 0, E = Phi->getNumIncoming(); I != E; ++I) {
      const BasicBlock *Pred = Phi->getIncomingBlock(I);
      if (!R.isExecutableEdge(Pred, Inst->getParent()))
        continue;
      Merged = meet(Merged, Get(Phi->getIncomingValue(I)));
      if (Merged.isBottom())
        break;
    }
    return Merged;
  }
  case ValueKind::ArrayLoad:
  case ValueKind::Read:
    return LatticeValue::bottom();
  case ValueKind::CallOut: {
    const auto *Out = cast<CallOutInst>(Inst);
    if (!Options.CallOutEval)
      return LatticeValue::bottom();
    std::function<LatticeValue(const Value *)> Getter = Get;
    return Options.CallOutEval(Out, Getter);
  }
  case ValueKind::Load:
    // A load survives SSA only for non-promoted scalars; treat as opaque.
    return LatticeValue::bottom();
  default:
    assert(!Inst->producesValue() && "unhandled value-producing inst");
    return LatticeValue::bottom();
  }
}

void SCCPSolverImpl::solve() {
  buildUses();
  markBlockExecutable(P.getEntryBlock());

  auto PushEdge = [&](const BasicBlock *From, const BasicBlock *To) {
    unsigned Slot = From->getSuccessor(0) == To ? 0 : 1;
    EdgeWork.push_back((From->getDensePos() << 1) | Slot);
  };

  while (!InstWork.empty() || !EdgeWork.empty()) {
    while (!EdgeWork.empty()) {
      uint32_t Enc = EdgeWork.back();
      EdgeWork.pop_back();
      markEdgeExecutable(P.blocks()[Enc >> 1].get(), Enc & 1);
    }
    if (InstWork.empty())
      break;
    const Instruction *Inst = Stream.Insts[InstWork.back()];
    InstWork.pop_back();
    if (!R.isExecutable(Inst->getParent()))
      continue;

    if (Inst->producesValue()) {
      setValue(Inst, evaluate(Inst));
      continue;
    }

    if (const auto *Br = dyn_cast<BranchInst>(Inst)) {
      PushEdge(Inst->getParent(), Br->getTarget());
      continue;
    }
    if (const auto *CBr = dyn_cast<CondBranchInst>(Inst)) {
      LatticeValue Cond = R.valueOf(CBr->getCond());
      if (Cond.isTop())
        continue; // not enough evidence yet
      if (Cond.isConstant()) {
        const BasicBlock *Taken = Cond.getConstant() != 0
                                      ? CBr->getTrueTarget()
                                      : CBr->getFalseTarget();
        PushEdge(Inst->getParent(), Taken);
      } else {
        PushEdge(Inst->getParent(), CBr->getTrueTarget());
        PushEdge(Inst->getParent(), CBr->getFalseTarget());
      }
      continue;
    }
    // Stores (non-promoted), prints, calls, rets: no lattice effect.
  }
}

SCCPResult ipcp::runSCCP(const Procedure &P, const SCCPOptions &Options) {
  ScopedTraceSpan SolveSpan("sccp", P.getName());
  SCCPResult Result;
  Result.EntrySeeds = Options.EntrySeeds;
  const Procedure::InstStream &Stream = P.instStream();
  Result.InstValues.assign(Stream.size(), LatticeValue::top());
  Result.ExecBlocks.assign(Stream.numBlocks(), 0);
  Result.ExecEdges.assign(Stream.numBlocks(), {0, 0});
  SCCPSolverImpl Solver(P, Options, Result, Result.InstValues,
                        Result.ExecBlocks, Result.ExecEdges);
  Solver.solve();
  return Result;
}
