//===- analysis/SCCP.cpp --------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SCCP.h"

#include "support/Casting.h"
#include "support/Trace.h"

#include <cassert>
#include <deque>

using namespace ipcp;

LatticeValue SCCPResult::valueOf(const Value *V) const {
  if (const auto *C = dyn_cast<ConstantInt>(V))
    return LatticeValue::constant(C->getValue());
  if (const auto *Entry = dyn_cast<EntryValue>(V)) {
    auto It = EntrySeeds.find(Entry->getVariable());
    return It == EntrySeeds.end() ? LatticeValue::bottom() : It->second;
  }
  if (isa<UndefValue>(V))
    return LatticeValue::bottom(); // defensive: undef is never constant
  auto It = Values.find(V);
  return It == Values.end() ? LatticeValue::top() : It->second;
}

unsigned SCCPResult::constantValueCount() const {
  unsigned Count = 0;
  for (const auto &[V, LV] : Values)
    if (LV.isConstant())
      ++Count;
  return Count;
}

namespace {

/// One SCCP fixpoint computation. The friend function runSCCP hands the
/// result's internal containers to this solver.
class SCCPSolverImpl {
public:
  SCCPSolverImpl(const Procedure &P, const SCCPOptions &Options,
                 const SCCPResult &R,
                 std::unordered_map<const Value *, LatticeValue> &Values,
                 std::unordered_set<const BasicBlock *> &ExecBlocks,
                 SCCPResult::EdgeSet &ExecEdges)
      : P(P), Options(Options), R(R), Values(Values), ExecBlocks(ExecBlocks),
        ExecEdges(ExecEdges) {}

  void solve();

private:
  void buildUses();
  void markBlockExecutable(const BasicBlock *BB);
  void markEdgeExecutable(const BasicBlock *From, const BasicBlock *To);
  void setValue(const Instruction *Inst, LatticeValue NewVal);
  LatticeValue evaluate(const Instruction *Inst);

  const Procedure &P;
  const SCCPOptions &Options;
  const SCCPResult &R;
  std::unordered_map<const Value *, LatticeValue> &Values;
  std::unordered_set<const BasicBlock *> &ExecBlocks;
  SCCPResult::EdgeSet &ExecEdges;

  /// def -> instructions whose lattice value depends on it (operand users
  /// plus the CallOuts of a call whose actuals it feeds).
  std::unordered_map<const Value *, std::vector<const Instruction *>> Uses;

  std::deque<const Instruction *> InstWork;
  std::deque<std::pair<const BasicBlock *, const BasicBlock *>> EdgeWork;
};

} // namespace

void SCCPSolverImpl::buildUses() {
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks()) {
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
      for (const Value *Op : Inst->operands())
        if (Op && Op->isInstruction())
          Uses[Op].push_back(Inst.get());
      // A CallOut's value is a function of the call's actual values (the
      // return jump function is evaluated over them), so register it as a
      // user of each instruction-valued actual.
      if (const auto *Out = dyn_cast<CallOutInst>(Inst.get())) {
        const CallInst *Call = Out->getCall();
        for (const Value *Op : Call->operands())
          if (Op && Op->isInstruction())
            Uses[Op].push_back(Out);
      }
    }
  }
}

void SCCPSolverImpl::markBlockExecutable(const BasicBlock *BB) {
  if (!ExecBlocks.insert(BB).second)
    return;
  for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
    InstWork.push_back(Inst.get());
}

void SCCPSolverImpl::markEdgeExecutable(const BasicBlock *From,
                                        const BasicBlock *To) {
  if (!ExecEdges.insert({From, To}).second)
    return;
  if (ExecBlocks.count(To)) {
    // Only the phis can change when an additional edge becomes live.
    for (const std::unique_ptr<Instruction> &Inst : To->instructions()) {
      if (!isa<PhiInst>(Inst.get()))
        break;
      InstWork.push_back(Inst.get());
    }
    return;
  }
  markBlockExecutable(To);
}

void SCCPSolverImpl::setValue(const Instruction *Inst, LatticeValue NewVal) {
  LatticeValue Old = R.valueOf(Inst);
  // Monotonicity: only ever lower.
  LatticeValue Lowered = meet(Old, NewVal);
  if (Lowered == Old)
    return;
  Values[Inst] = Lowered;
  auto It = Uses.find(Inst);
  if (It != Uses.end())
    for (const Instruction *User : It->second)
      InstWork.push_back(User);
}

LatticeValue SCCPSolverImpl::evaluate(const Instruction *Inst) {
  auto Get = [&](const Value *V) { return R.valueOf(V); };

  switch (Inst->getKind()) {
  case ValueKind::Binary: {
    const auto *Bin = cast<BinaryInst>(Inst);
    LatticeValue L = Get(Bin->getLHS());
    LatticeValue Rv = Get(Bin->getRHS());
    if (L.isBottom() || Rv.isBottom())
      return LatticeValue::bottom();
    if (L.isTop() || Rv.isTop())
      return LatticeValue::top();
    if (auto Folded =
            foldBinary(Bin->getOp(), L.getConstant(), Rv.getConstant()))
      return LatticeValue::constant(*Folded);
    return LatticeValue::bottom(); // overflow / divide by zero
  }
  case ValueKind::Unary: {
    const auto *Un = cast<UnaryInst>(Inst);
    LatticeValue V = Get(Un->getValueOperand());
    if (V.isBottom())
      return LatticeValue::bottom();
    if (V.isTop())
      return LatticeValue::top();
    if (auto Folded = foldUnary(Un->getOp(), V.getConstant()))
      return LatticeValue::constant(*Folded);
    return LatticeValue::bottom();
  }
  case ValueKind::Phi: {
    const auto *Phi = cast<PhiInst>(Inst);
    LatticeValue Merged = LatticeValue::top();
    for (unsigned I = 0, E = Phi->getNumIncoming(); I != E; ++I) {
      const BasicBlock *Pred = Phi->getIncomingBlock(I);
      if (!R.isExecutableEdge(Pred, Inst->getParent()))
        continue;
      Merged = meet(Merged, Get(Phi->getIncomingValue(I)));
      if (Merged.isBottom())
        break;
    }
    return Merged;
  }
  case ValueKind::ArrayLoad:
  case ValueKind::Read:
    return LatticeValue::bottom();
  case ValueKind::CallOut: {
    const auto *Out = cast<CallOutInst>(Inst);
    if (!Options.CallOutEval)
      return LatticeValue::bottom();
    std::function<LatticeValue(const Value *)> Getter = Get;
    return Options.CallOutEval(Out, Getter);
  }
  case ValueKind::Load:
    // A load survives SSA only for non-promoted scalars; treat as opaque.
    return LatticeValue::bottom();
  default:
    assert(!Inst->producesValue() && "unhandled value-producing inst");
    return LatticeValue::bottom();
  }
}

void SCCPSolverImpl::solve() {
  buildUses();
  markBlockExecutable(P.getEntryBlock());

  while (!InstWork.empty() || !EdgeWork.empty()) {
    while (!EdgeWork.empty()) {
      auto [From, To] = EdgeWork.front();
      EdgeWork.pop_front();
      markEdgeExecutable(From, To);
    }
    if (InstWork.empty())
      break;
    const Instruction *Inst = InstWork.front();
    InstWork.pop_front();
    if (!R.isExecutable(Inst->getParent()))
      continue;

    if (Inst->producesValue()) {
      setValue(Inst, evaluate(Inst));
      continue;
    }

    if (const auto *Br = dyn_cast<BranchInst>(Inst)) {
      EdgeWork.push_back({Inst->getParent(), Br->getTarget()});
      continue;
    }
    if (const auto *CBr = dyn_cast<CondBranchInst>(Inst)) {
      LatticeValue Cond = R.valueOf(CBr->getCond());
      if (Cond.isTop())
        continue; // not enough evidence yet
      if (Cond.isConstant()) {
        const BasicBlock *Taken = Cond.getConstant() != 0
                                      ? CBr->getTrueTarget()
                                      : CBr->getFalseTarget();
        EdgeWork.push_back({Inst->getParent(), Taken});
      } else {
        EdgeWork.push_back({Inst->getParent(), CBr->getTrueTarget()});
        EdgeWork.push_back({Inst->getParent(), CBr->getFalseTarget()});
      }
      continue;
    }
    // Stores (non-promoted), prints, calls, rets: no lattice effect.
  }
}

SCCPResult ipcp::runSCCP(const Procedure &P, const SCCPOptions &Options) {
  ScopedTraceSpan SolveSpan("sccp", P.getName());
  SCCPResult Result;
  Result.EntrySeeds = Options.EntrySeeds;
  SCCPSolverImpl Solver(P, Options, Result, Result.Values, Result.ExecBlocks,
                        Result.ExecEdges);
  Solver.solve();
  return Result;
}
