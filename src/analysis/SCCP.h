//===- analysis/SCCP.h - Sparse conditional constant prop -------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wegman–Zadeck sparse conditional constant propagation over one
/// procedure in SSA form. This is the `gcp(y, s)` machinery of the paper:
/// intraprocedural constant propagation coupled with interprocedural MOD
/// information (already folded into the SSA form as CallOut definitions).
///
/// Two hooks make it serve every configuration of the study:
///  - \c EntrySeeds injects interprocedural constants for formals and
///    globals (the CONSTANTS(p) sets); a missing seed means bottom, and
///    an empty map yields the plain intraprocedural baseline of Table 3;
///  - \c CallOutEval resolves the value of a location after a call,
///    implemented by the core library through return jump functions; the
///    default declines (bottom), modeling the no-return-jump-function
///    configurations.
///
/// Branch conditions with constant values keep the untaken edge
/// non-executable, which is also how dead code is detected for the
/// "complete propagation" experiment.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_SCCP_H
#define IPCP_ANALYSIS_SCCP_H

#include "core/Lattice.h"
#include "ir/Module.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace ipcp {

/// Configuration for one SCCP run.
struct SCCPOptions {
  /// Lattice values of EntryValues; variables not present are bottom.
  std::unordered_map<Variable *, LatticeValue> EntrySeeds;

  /// Evaluates a CallOut given a getter for current lattice values of the
  /// underlying call's actuals. Null means every CallOut is bottom.
  std::function<LatticeValue(
      const CallOutInst *,
      const std::function<LatticeValue(const Value *)> &)>
      CallOutEval;
};

/// Fixpoint result of one SCCP run.
class SCCPResult {
public:
  /// Lattice value of \p V at fixpoint. Values in never-executed blocks
  /// report top.
  LatticeValue valueOf(const Value *V) const;

  /// Whether any path from the entry can reach \p BB.
  bool isExecutable(const BasicBlock *BB) const {
    return ExecBlocks.count(BB) != 0;
  }

  /// Whether the CFG edge \p From -> \p To can ever be taken.
  bool isExecutableEdge(const BasicBlock *From, const BasicBlock *To) const {
    return ExecEdges.count({From, To}) != 0;
  }

  /// Number of lattice cells that ended as constants (for statistics).
  unsigned constantValueCount() const;

  /// Hash for CFG edges (exposed for the solver implementation).
  struct EdgeHash {
    size_t operator()(
        const std::pair<const BasicBlock *, const BasicBlock *> &E) const {
      return std::hash<const void *>()(E.first) * 31 ^
             std::hash<const void *>()(E.second);
    }
  };

  using EdgeSet =
      std::unordered_set<std::pair<const BasicBlock *, const BasicBlock *>,
                         EdgeHash>;

private:
  friend SCCPResult runSCCP(const Procedure &P, const SCCPOptions &Options);

  std::unordered_map<const Value *, LatticeValue> Values;
  std::unordered_map<Variable *, LatticeValue> EntrySeeds;
  std::unordered_set<const BasicBlock *> ExecBlocks;
  EdgeSet ExecEdges;
};

/// Runs SCCP on \p P (must be in SSA form).
SCCPResult runSCCP(const Procedure &P, const SCCPOptions &Options = {});

} // namespace ipcp

#endif // IPCP_ANALYSIS_SCCP_H
