//===- analysis/SCCP.h - Sparse conditional constant prop -------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wegman–Zadeck sparse conditional constant propagation over one
/// procedure in SSA form. This is the `gcp(y, s)` machinery of the paper:
/// intraprocedural constant propagation coupled with interprocedural MOD
/// information (already folded into the SSA form as CallOut definitions).
///
/// Two hooks make it serve every configuration of the study:
///  - \c EntrySeeds injects interprocedural constants for formals and
///    globals (the CONSTANTS(p) sets); a missing seed means bottom, and
///    an empty map yields the plain intraprocedural baseline of Table 3;
///  - \c CallOutEval resolves the value of a location after a call,
///    implemented by the core library through return jump functions; the
///    default declines (bottom), modeling the no-return-jump-function
///    configurations.
///
/// Branch conditions with constant values keep the untaken edge
/// non-executable, which is also how dead code is detected for the
/// "complete propagation" experiment.
///
/// The solver is data-oriented: lattice cells live in one flat vector
/// indexed by the procedure's flat instruction stream
/// (Instruction::getLocalIdx()), executable-block and executable-edge
/// flags are bitmaps over dense block positions, and def-use chains are a
/// CSR adjacency built in two passes. The result stays valid as long as
/// the procedure's stream does (no instruction/block mutation).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_SCCP_H
#define IPCP_ANALYSIS_SCCP_H

#include "core/Lattice.h"
#include "ir/Module.h"

#include <array>
#include <functional>
#include <unordered_map>
#include <vector>

namespace ipcp {

/// Configuration for one SCCP run.
struct SCCPOptions {
  /// Lattice values of EntryValues; variables not present are bottom.
  std::unordered_map<Variable *, LatticeValue> EntrySeeds;

  /// Evaluates a CallOut given a getter for current lattice values of the
  /// underlying call's actuals. Null means every CallOut is bottom.
  std::function<LatticeValue(
      const CallOutInst *,
      const std::function<LatticeValue(const Value *)> &)>
      CallOutEval;
};

/// Fixpoint result of one SCCP run.
class SCCPResult {
public:
  /// Lattice value of \p V at fixpoint. Values in never-executed blocks
  /// report top. Instructions must belong to the analyzed procedure.
  LatticeValue valueOf(const Value *V) const;

  /// Whether any path from the entry can reach \p BB.
  bool isExecutable(const BasicBlock *BB) const {
    return ExecBlocks[BB->getDensePos()] != 0;
  }

  /// Whether the CFG edge \p From -> \p To can ever be taken.
  bool isExecutableEdge(const BasicBlock *From, const BasicBlock *To) const {
    const std::array<char, 2> &Slots = ExecEdges[From->getDensePos()];
    for (unsigned I = 0, E = From->getNumSuccessors(); I != E; ++I)
      if (Slots[I] && From->getSuccessor(I) == To)
        return true;
    return false;
  }

  /// Number of lattice cells that ended as constants (for statistics).
  unsigned constantValueCount() const;

private:
  friend SCCPResult runSCCP(const Procedure &P, const SCCPOptions &Options);

  std::vector<LatticeValue> InstValues;    ///< by Instruction::getLocalIdx()
  std::vector<char> ExecBlocks;            ///< by dense block pos
  std::vector<std::array<char, 2>> ExecEdges; ///< by (block pos, succ slot)
  std::unordered_map<Variable *, LatticeValue> EntrySeeds;
};

/// Runs SCCP on \p P (must be in SSA form).
SCCPResult runSCCP(const Procedure &P, const SCCPOptions &Options = {});

} // namespace ipcp

#endif // IPCP_ANALYSIS_SCCP_H
