//===- analysis/SSAConstruction.cpp ---------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SSAConstruction.h"

#include "ir/Dominators.h"
#include "support/Casting.h"

#include <algorithm>
#include <cassert>

using namespace ipcp;

namespace {

/// One SSA construction run. Promoted variables get dense indices
/// (position in SSAResult::PromotedVars), definition stacks live in a
/// flat vector-of-vectors over those indices, and load replacements are a
/// flat table over the procedure's instruction stream — the pointer-keyed
/// hash maps this replaces were a top-3 entry in the pipeline profile.
class SSABuilder {
public:
  SSABuilder(Procedure &P, const ModRefInfo &MRI) : P(P), MRI(MRI) {}

  SSAResult run();

private:
  void collectPromotedVars();
  void insertPhis(const DominanceFrontier &DF);
  void rename(const DominatorTree &DT);
  void renameBlock(BasicBlock *BB,
                   std::vector<std::pair<uint32_t, Value *>> &Popped);

  /// Dense index of a promoted variable, or -1 when not promoted.
  int32_t indexOf(const Variable *Var) const {
    auto It = VarIdx.find(Var);
    return It == VarIdx.end() ? -1 : int32_t(It->second);
  }

  Value *currentDef(uint32_t Idx) {
    assert(!Defs[Idx].empty() &&
           "promoted variable without a reaching definition");
    return Defs[Idx].back();
  }

  void pushDef(uint32_t Idx, Value *V,
               std::vector<std::pair<uint32_t, Value *>> &Popped) {
    Defs[Idx].push_back(V);
    Popped.push_back({Idx, V});
  }

  /// The SSA value replacing an erased load operand, if any.
  Value *replacementFor(Value *V) const {
    auto *Inst = dyn_cast_or_null<Instruction>(V);
    if (!Inst || Inst->getLocalIdx() >= Replacements.size())
      return nullptr; // includes call-outs inserted during renaming
    return Replacements[Inst->getLocalIdx()];
  }

  Procedure &P;
  const ModRefInfo &MRI;
  SSAResult Result;
  std::unordered_map<const Variable *, uint32_t> VarIdx;
  std::vector<std::vector<Value *>> Defs;  ///< by promoted-var index
  std::vector<Value *> Replacements;       ///< by pre-rename local index
  std::vector<Instruction *> ToErase;
};

} // namespace

void SSABuilder::collectPromotedVars() {
  auto Add = [&](Variable *Var) {
    if (Var->isScalar() &&
        VarIdx.emplace(Var, uint32_t(Result.PromotedVars.size())).second)
      Result.PromotedVars.push_back(Var);
  };
  for (Variable *F : P.formals())
    Add(F);
  for (Variable *L : P.locals())
    Add(L);
  for (Variable *G : MRI.extendedGlobals(&P))
    Add(G);
}

void SSABuilder::insertPhis(const DominanceFrontier &DF) {
  size_t NumVars = Result.PromotedVars.size();
  size_t NumBlocks = P.blocks().size();

  // Definition sites per variable: entry (implicit), stores, and killing
  // calls — gathered in a single walk (the previous per-variable scan
  // re-derived every call's kill set once per promoted variable).
  std::vector<std::vector<BasicBlock *>> DefBlocks(NumVars);
  for (uint32_t I = 0; I != NumVars; ++I)
    DefBlocks[I].push_back(P.getEntryBlock());
  auto NoteDef = [&](const Variable *Var, BasicBlock *BB) {
    int32_t Idx = indexOf(Var);
    if (Idx >= 0 && DefBlocks[Idx].back() != BB)
      DefBlocks[Idx].push_back(BB);
  };
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks()) {
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
      if (const auto *Store = dyn_cast<StoreInst>(Inst.get()))
        NoteDef(Store->getVariable(), BB.get());
      else if (const auto *Call = dyn_cast<CallInst>(Inst.get()))
        for (Variable *Killed : MRI.callKills(Call))
          NoteDef(Killed, BB.get());
    }
  }

  // Iterated dominance frontier per variable. The HasPhi / queued marks
  // are generation-stamped by variable index so the flat tables are
  // allocated once.
  std::vector<uint32_t> HasPhi(NumBlocks, ~0u);
  std::vector<uint32_t> Queued(NumBlocks, ~0u);
  std::vector<BasicBlock *> Work;
  for (uint32_t VI = 0; VI != NumVars; ++VI) {
    Variable *Var = Result.PromotedVars[VI];
    Work.assign(DefBlocks[VI].begin(), DefBlocks[VI].end());
    for (BasicBlock *BB : Work)
      Queued[BB->getDensePos()] = VI;
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      for (BasicBlock *Frontier : DF.frontier(BB)) {
        if (HasPhi[Frontier->getDensePos()] == VI)
          continue;
        HasPhi[Frontier->getDensePos()] = VI;
        auto Phi = std::make_unique<PhiInst>(P.getModule()->nextInstId(),
                                             SourceLoc(), Var);
        Frontier->insertAtTop(std::move(Phi), /*AfterPhis=*/false);
        if (Queued[Frontier->getDensePos()] != VI) {
          Queued[Frontier->getDensePos()] = VI;
          Work.push_back(Frontier);
        }
      }
    }
  }
}

void SSABuilder::renameBlock(
    BasicBlock *BB, std::vector<std::pair<uint32_t, Value *>> &Popped) {
  // Snapshot: CallOut insertion appends to the live list.
  std::vector<Instruction *> Insts;
  Insts.reserve(BB->instructions().size());
  for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
    Insts.push_back(Inst.get());

  for (Instruction *Inst : Insts) {
    // Rewrite operands that name replaced loads. Dominator-tree pre-order
    // guarantees the replacement is already known.
    if (!isa<PhiInst>(Inst))
      for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I)
        if (Value *New = replacementFor(Inst->getOperand(I)))
          Inst->setOperand(I, New);

    if (auto *Phi = dyn_cast<PhiInst>(Inst)) {
      int32_t Idx = indexOf(Phi->getVariable());
      if (Idx >= 0)
        pushDef(Idx, Phi, Popped);
      continue;
    }
    if (auto *Load = dyn_cast<LoadInst>(Inst)) {
      int32_t Idx = indexOf(Load->getVariable());
      if (Idx < 0)
        continue;
      Value *Def = currentDef(Idx);
      Replacements[Load->getLocalIdx()] = Def;
      Result.Loads.push_back(
          {Load->getId(), BB, Def, Load->getLoc(), Load->getVariable()});
      ToErase.push_back(Load);
      continue;
    }
    if (auto *Store = dyn_cast<StoreInst>(Inst)) {
      int32_t Idx = indexOf(Store->getVariable());
      if (Idx < 0)
        continue;
      pushDef(Idx, Store->getValueOperand(), Popped);
      ToErase.push_back(Store);
      continue;
    }
    if (auto *Call = dyn_cast<CallInst>(Inst)) {
      // Snapshot the reaching definitions at the call, before its own
      // effects (CallOuts) are pushed.
      std::unordered_map<Variable *, Value *> &AtCall =
          Result.CallInValues[Call];
      for (uint32_t VI = 0, E = Result.PromotedVars.size(); VI != E; ++VI)
        AtCall[Result.PromotedVars[VI]] = currentDef(VI);

      Instruction *InsertPoint = Call;
      for (Variable *Killed : MRI.callKills(Call)) {
        int32_t Idx = indexOf(Killed);
        if (Idx < 0)
          continue;
        auto Out = std::make_unique<CallOutInst>(
            P.getModule()->nextInstId(), Call->getLoc(), Call, Killed);
        CallOutInst *Raw = cast<CallOutInst>(
            BB->insertAfter(InsertPoint, std::move(Out)));
        InsertPoint = Raw;
        pushDef(Idx, Raw, Popped);
      }
      continue;
    }
  }

  // Feed phi operands of successors.
  for (unsigned SI = 0, SE = BB->getNumSuccessors(); SI != SE; ++SI) {
    BasicBlock *Succ = BB->getSuccessor(SI);
    for (const std::unique_ptr<Instruction> &Inst : Succ->instructions()) {
      auto *Phi = dyn_cast<PhiInst>(Inst.get());
      if (!Phi)
        break;
      Phi->addIncoming(currentDef(indexOf(Phi->getVariable())), BB);
    }
  }

  if (BB == P.getExitBlock())
    for (uint32_t VI = 0, E = Result.PromotedVars.size(); VI != E; ++VI)
      Result.ExitValues[Result.PromotedVars[VI]] = currentDef(VI);
}

void SSABuilder::rename(const DominatorTree &DT) {
  // The stream now includes the freshly inserted phis; its indices key
  // the replacement table until the erased loads are dropped at the end.
  Replacements.assign(P.instStream().size(), nullptr);

  // Initialize reaching definitions at entry.
  Defs.resize(Result.PromotedVars.size());
  for (uint32_t VI = 0, E = Result.PromotedVars.size(); VI != E; ++VI) {
    Variable *Var = Result.PromotedVars[VI];
    Value *Init = Var->isLocal()
                      ? static_cast<Value *>(P.getModule()->getUndef())
                      : static_cast<Value *>(P.getEntryValue(Var));
    Defs[VI].push_back(Init);
  }

  // Iterative pre-order walk of the dominator tree with scoped def stacks.
  struct Frame {
    BasicBlock *BB;
    size_t NextChild = 0;
    std::vector<std::pair<uint32_t, Value *>> Pushed;
    bool Entered = false;
  };
  std::vector<Frame> Stack;
  Stack.push_back({P.getEntryBlock(), 0, {}, false});
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (!F.Entered) {
      F.Entered = true;
      renameBlock(F.BB, F.Pushed);
    }
    const std::vector<BasicBlock *> &Kids = DT.children(F.BB);
    if (F.NextChild < Kids.size()) {
      BasicBlock *Child = Kids[F.NextChild++];
      Stack.push_back({Child, 0, {}, false});
      continue;
    }
    // Leaving this block: pop its definitions (in reverse).
    for (auto It = F.Pushed.rbegin(); It != F.Pushed.rend(); ++It) {
      std::vector<Value *> &VarStack = Defs[It->first];
      assert(!VarStack.empty() && VarStack.back() == It->second &&
             "definition stack corrupted");
      VarStack.pop_back();
    }
    Stack.pop_back();
  }

  for (Instruction *Inst : ToErase)
    Inst->getParent()->erase(Inst);
}

SSAResult SSABuilder::run() {
  P.removeUnreachableBlocks();
  collectPromotedVars();
  auto DT = std::make_shared<DominatorTree>(P);
  DominanceFrontier DF(P, *DT);
  insertPhis(DF);
  rename(*DT);
  Result.DomTree = std::move(DT);
  return std::move(Result);
}

SSAResult ipcp::constructSSA(Procedure &P, const ModRefInfo &MRI) {
  SSABuilder Builder(P, MRI);
  return Builder.run();
}
