//===- analysis/SSAConstruction.cpp ---------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SSAConstruction.h"

#include "ir/Dominators.h"
#include "support/Casting.h"
#include "support/Worklist.h"

#include <algorithm>

#include <cassert>
#include <unordered_set>

using namespace ipcp;

namespace {

/// One SSA construction run.
class SSABuilder {
public:
  SSABuilder(Procedure &P, const ModRefInfo &MRI) : P(P), MRI(MRI) {}

  SSAResult run();

private:
  void collectPromotedVars();
  void insertPhis(const DominatorTree &DT, const DominanceFrontier &DF);
  void rename(const DominatorTree &DT);
  void renameBlock(BasicBlock *BB, const DominatorTree &DT,
                   std::vector<std::pair<Variable *, Value *>> &Popped);

  Value *currentDef(Variable *Var) {
    auto It = Defs.find(Var);
    assert(It != Defs.end() && !It->second.empty() &&
           "promoted variable without a reaching definition");
    return It->second.back();
  }

  void pushDef(Variable *Var, Value *V,
               std::vector<std::pair<Variable *, Value *>> &Popped) {
    Defs[Var].push_back(V);
    Popped.push_back({Var, V});
  }

  Procedure &P;
  const ModRefInfo &MRI;
  SSAResult Result;
  std::unordered_set<Variable *> Promoted;
  std::unordered_map<Variable *, std::vector<Value *>> Defs;
  std::unordered_map<Instruction *, Value *> Replacements;
  std::vector<Instruction *> ToErase;
};

} // namespace

void SSABuilder::collectPromotedVars() {
  auto Add = [&](Variable *Var) {
    if (Var->isScalar() && Promoted.insert(Var).second)
      Result.PromotedVars.push_back(Var);
  };
  for (Variable *F : P.formals())
    Add(F);
  for (Variable *L : P.locals())
    Add(L);
  for (Variable *G : MRI.extendedGlobals(&P))
    Add(G);
}

void SSABuilder::insertPhis(const DominatorTree &DT,
                            const DominanceFrontier &DF) {
  for (Variable *Var : Result.PromotedVars) {
    // Definition sites: entry (implicit), stores, and killing calls.
    std::vector<BasicBlock *> DefBlocks{P.getEntryBlock()};
    for (const std::unique_ptr<BasicBlock> &BB : P.blocks()) {
      for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
        if (const auto *Store = dyn_cast<StoreInst>(Inst.get())) {
          if (Store->getVariable() == Var) {
            DefBlocks.push_back(BB.get());
            break;
          }
        } else if (const auto *Call = dyn_cast<CallInst>(Inst.get())) {
          std::vector<Variable *> Kills = MRI.callKills(Call);
          if (std::find(Kills.begin(), Kills.end(), Var) != Kills.end()) {
            DefBlocks.push_back(BB.get());
            break;
          }
        }
      }
    }

    // Iterated dominance frontier.
    Worklist<BasicBlock *> Work;
    for (BasicBlock *BB : DefBlocks)
      Work.insert(BB);
    std::unordered_set<BasicBlock *> HasPhi;
    while (!Work.empty()) {
      BasicBlock *BB = Work.pop();
      for (BasicBlock *Frontier : DF.frontier(BB)) {
        if (!HasPhi.insert(Frontier).second)
          continue;
        auto Phi = std::make_unique<PhiInst>(P.getModule()->nextInstId(),
                                             SourceLoc(), Var);
        Frontier->insertAtTop(std::move(Phi), /*AfterPhis=*/false);
        Work.insert(Frontier);
      }
    }
  }
  (void)DT;
}

void SSABuilder::renameBlock(
    BasicBlock *BB, const DominatorTree &DT,
    std::vector<std::pair<Variable *, Value *>> &Popped) {
  // Snapshot: CallOut insertion appends to the live list.
  std::vector<Instruction *> Insts;
  Insts.reserve(BB->instructions().size());
  for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
    Insts.push_back(Inst.get());

  for (Instruction *Inst : Insts) {
    // Rewrite operands that name replaced loads. Dominator-tree pre-order
    // guarantees the replacement is already known.
    if (!isa<PhiInst>(Inst))
      for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I) {
        auto It = Replacements.find(
            dyn_cast_or_null<Instruction>(Inst->getOperand(I)));
        if (It != Replacements.end())
          Inst->setOperand(I, It->second);
      }

    if (auto *Phi = dyn_cast<PhiInst>(Inst)) {
      if (Promoted.count(Phi->getVariable()))
        pushDef(Phi->getVariable(), Phi, Popped);
      continue;
    }
    if (auto *Load = dyn_cast<LoadInst>(Inst)) {
      if (!Promoted.count(Load->getVariable()))
        continue;
      Value *Def = currentDef(Load->getVariable());
      Replacements[Load] = Def;
      Result.Loads.push_back(
          {Load->getId(), BB, Def, Load->getLoc(), Load->getVariable()});
      ToErase.push_back(Load);
      continue;
    }
    if (auto *Store = dyn_cast<StoreInst>(Inst)) {
      if (!Promoted.count(Store->getVariable()))
        continue;
      pushDef(Store->getVariable(), Store->getValueOperand(), Popped);
      ToErase.push_back(Store);
      continue;
    }
    if (auto *Call = dyn_cast<CallInst>(Inst)) {
      // Snapshot the reaching definitions at the call, before its own
      // effects (CallOuts) are pushed.
      std::unordered_map<Variable *, Value *> &AtCall =
          Result.CallInValues[Call];
      for (Variable *Var : Result.PromotedVars)
        AtCall[Var] = currentDef(Var);

      Instruction *InsertPoint = Call;
      for (Variable *Killed : MRI.callKills(Call)) {
        if (!Promoted.count(Killed))
          continue;
        auto Out = std::make_unique<CallOutInst>(
            P.getModule()->nextInstId(), Call->getLoc(), Call, Killed);
        CallOutInst *Raw = cast<CallOutInst>(
            BB->insertAfter(InsertPoint, std::move(Out)));
        InsertPoint = Raw;
        pushDef(Killed, Raw, Popped);
      }
      continue;
    }
  }

  // Feed phi operands of successors.
  for (BasicBlock *Succ : BB->successors()) {
    for (const std::unique_ptr<Instruction> &Inst : Succ->instructions()) {
      auto *Phi = dyn_cast<PhiInst>(Inst.get());
      if (!Phi)
        break;
      Phi->addIncoming(currentDef(Phi->getVariable()), BB);
    }
  }

  if (BB == P.getExitBlock())
    for (Variable *Var : Result.PromotedVars)
      Result.ExitValues[Var] = currentDef(Var);

  (void)DT;
}

void SSABuilder::rename(const DominatorTree &DT) {
  // Initialize reaching definitions at entry.
  std::vector<std::pair<Variable *, Value *>> EntryDefs;
  for (Variable *Var : Result.PromotedVars) {
    Value *Init = Var->isLocal()
                      ? static_cast<Value *>(P.getModule()->getUndef())
                      : static_cast<Value *>(P.getEntryValue(Var));
    Defs[Var].push_back(Init);
  }
  (void)EntryDefs;

  // Iterative pre-order walk of the dominator tree with scoped def stacks.
  struct Frame {
    BasicBlock *BB;
    size_t NextChild = 0;
    std::vector<std::pair<Variable *, Value *>> Pushed;
    bool Entered = false;
  };
  std::vector<Frame> Stack;
  Stack.push_back({P.getEntryBlock(), 0, {}, false});
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (!F.Entered) {
      F.Entered = true;
      renameBlock(F.BB, DT, F.Pushed);
    }
    const std::vector<BasicBlock *> &Kids = DT.children(F.BB);
    if (F.NextChild < Kids.size()) {
      BasicBlock *Child = Kids[F.NextChild++];
      Stack.push_back({Child, 0, {}, false});
      continue;
    }
    // Leaving this block: pop its definitions (in reverse).
    for (auto It = F.Pushed.rbegin(); It != F.Pushed.rend(); ++It) {
      std::vector<Value *> &VarStack = Defs[It->first];
      assert(!VarStack.empty() && VarStack.back() == It->second &&
             "definition stack corrupted");
      VarStack.pop_back();
    }
    Stack.pop_back();
  }

  for (Instruction *Inst : ToErase)
    Inst->getParent()->erase(Inst);
}

SSAResult SSABuilder::run() {
  P.removeUnreachableBlocks();
  collectPromotedVars();
  auto DT = std::make_shared<DominatorTree>(P);
  DominanceFrontier DF(P, *DT);
  insertPhis(*DT, DF);
  rename(*DT);
  Result.DomTree = std::move(DT);
  return std::move(Result);
}

SSAResult ipcp::constructSSA(Procedure &P, const ModRefInfo &MRI) {
  SSABuilder Builder(P, MRI);
  return Builder.run();
}
