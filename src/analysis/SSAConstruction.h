//===- analysis/SSAConstruction.h - Scalar promotion ------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts one procedure from pre-SSA form (scalar Load/Store) into SSA
/// form, following Cytron et al. [8 in the paper]: phi placement at
/// iterated dominance frontiers of definition sites, then a renaming walk
/// over the dominator tree.
///
/// Promoted variables are the procedure's formals, its scalar locals, and
/// the extended globals supplied by MOD/REF analysis. Three kinds of
/// definitions exist:
///
///  - StoreInst — ordinary assignment;
///  - procedure entry — formals and globals start at their EntryValue
///    (the unknowns jump functions range over);
///  - CallInst — a call defines every location in its kill set (the
///    MOD-bound by-reference actuals and the callee's modified globals);
///    SSA construction materializes these as CallOutInst definitions,
///    which the jump-function builders resolve through return jump
///    functions.
///
/// The result records, per deleted LoadInst ID, the SSA value that
/// replaced it (the substitution metric counts these) and, per promoted
/// variable, its SSA value at the procedure's Ret (return jump functions
/// are built from these).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_ANALYSIS_SSACONSTRUCTION_H
#define IPCP_ANALYSIS_SSACONSTRUCTION_H

#include "ir/Dominators.h"
#include "analysis/ModRef.h"
#include "ir/Module.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace ipcp {

/// Output of SSA construction for one procedure.
struct SSAResult {
  /// The variables that were promoted, in deterministic order.
  std::vector<Variable *> PromotedVars;

  /// For every deleted scalar LoadInst: its clone-stable ID, the block it
  /// lived in, and the SSA value that replaced it.
  struct ReplacedLoad {
    uint64_t LoadId;
    BasicBlock *Block;
    Value *Replacement;
    SourceLoc Loc;
    Variable *Var;
  };
  std::vector<ReplacedLoad> Loads;

  /// SSA value of each promoted variable at the Ret; empty when the
  /// procedure has no reachable exit (it can only loop forever).
  std::unordered_map<Variable *, Value *> ExitValues;

  /// The dominator tree used during construction. The CFG's block
  /// structure is final before phi insertion, so the tree remains valid
  /// for the SSA form; the gated-SSA jump function generator uses it to
  /// resolve phis whose controlling branch condition is constant.
  std::shared_ptr<const DominatorTree> DomTree;

  /// SSA value of every promoted variable immediately *before* each call
  /// (i.e. excluding the call's own effects). Forward jump functions for
  /// globals read "the value of g at call site s" from here, and return
  /// jump function substitution uses it for globals in the callee's
  /// support.
  std::unordered_map<CallInst *, std::unordered_map<Variable *, Value *>>
      CallInValues;
};

/// Promotes scalars in \p P to SSA. \p MRI supplies call kill sets and
/// the extended-global set. Mutates \p P in place (verifiable with
/// VerifyMode::SSA afterwards).
SSAResult constructSSA(Procedure &P, const ModRefInfo &MRI);

} // namespace ipcp

#endif // IPCP_ANALYSIS_SSACONSTRUCTION_H
