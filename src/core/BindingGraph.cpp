//===- core/BindingGraph.cpp ----------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/BindingGraph.h"

#include "support/Trace.h"

#include <algorithm>

using namespace ipcp;

namespace {

/// One jump-function edge bundle: evaluate JF in the caller's environment
/// and meet the result into the target slot. Stored structure-of-arrays
/// friendly: both endpoints are pre-resolved dense indices, so the solver
/// loop never touches a hash map.
struct BindingEdge {
  uint32_t CallerPI;   ///< CallGraph::procIndex of the caller
  uint32_t TargetSlot; ///< dense (callee, variable) slot
  const JumpFunction *JF;
};

/// The binding multigraph solver. Every (procedure, extended formal) pair
/// gets one dense slot: formals positionally, then the procedure's
/// extended globals in ID order, procedures laid out back-to-back in
/// procIndex order. VAL is one flat vector over those slots, the
/// dependency index is a CSR adjacency from slots to edge indices, and
/// the worklist is a FIFO over slots with a pending bitmap — the same
/// iteration order as the map-and-deque formulation this replaces, so the
/// work counters are unchanged.
class BindingGraphSolver {
public:
  BindingGraphSolver(const CallGraph &CG, const ModRefInfo &MRI,
                     const ForwardJumpFunctions &FJFs,
                     const IPCPOptions &Opts, PropagatorStats *Stats,
                     ResourceGuard *Guard)
      : CG(CG), MRI(MRI), FJFs(FJFs), Opts(Opts), Stats(Stats),
        Guard(Guard) {}

  ConstantsMap solve();

private:
  /// Slot layout of one procedure within the flat numbering.
  struct ProcSlots {
    uint32_t Base = 0; ///< first slot of this procedure
    uint32_t FormalCount = 0;
    std::vector<Variable *> Globals; ///< ID-ordered
  };

  void numberSlots();
  void buildEdges();

  /// Dense slot of (P's procIndex \p PI, \p Var), or ~0u when the
  /// variable is outside P's extended-formal numbering (its value is
  /// top everywhere, matching the old missing-map-entry semantics).
  uint32_t slotOf(uint32_t PI, const Variable *Var) const {
    const ProcSlots &S = Slots[PI];
    if (Var->isFormal()) {
      unsigned I = Var->getFormalIndex();
      return I < S.FormalCount ? S.Base + I : ~0u;
    }
    auto It = std::lower_bound(S.Globals.begin(), S.Globals.end(), Var,
                               [](const Variable *A, const Variable *B) {
                                 return A->getId() < B->getId();
                               });
    if (It == S.Globals.end() || *It != Var)
      return ~0u;
    return S.Base + S.FormalCount + uint32_t(It - S.Globals.begin());
  }

  /// Meets NewVal into a slot; enqueues it when it lowered.
  void lower(uint32_t Slot, LatticeValue NewVal);
  void evaluateEdge(const BindingEdge &Edge);

  const CallGraph &CG;
  const ModRefInfo &MRI;
  const ForwardJumpFunctions &FJFs;
  const IPCPOptions &Opts;
  PropagatorStats *Stats;
  ResourceGuard *Guard;

  std::vector<ProcSlots> Slots; ///< by procIndex
  uint32_t TotalSlots = 0;
  std::vector<LatticeValue> VAL; ///< by dense slot

  std::vector<BindingEdge> Edges;
  /// CSR dependency index: edges to re-evaluate when slot s lowers live
  /// in DepList[DepOffsets[s] .. DepOffsets[s+1]), in edge order.
  std::vector<uint32_t> DepOffsets;
  std::vector<uint32_t> DepList;

  std::vector<uint32_t> Work; ///< FIFO of slots
  size_t Head = 0;
  std::vector<char> Pending; ///< by dense slot
};

} // namespace

void BindingGraphSolver::numberSlots() {
  size_t N = CG.procedures().size();
  Slots.resize(N);
  for (Procedure *P : CG.procedures()) {
    ProcSlots &S = Slots[CG.procIndex(P)];
    S.Base = TotalSlots;
    S.FormalCount = uint32_t(P->formals().size());
    const VariableSet &Ext = MRI.extendedGlobals(P);
    S.Globals.assign(Ext.begin(), Ext.end()); // ID-ordered by VariableSet
    TotalSlots += S.FormalCount + uint32_t(S.Globals.size());
  }
  VAL.assign(TotalSlots, LatticeValue::top());
  Pending.assign(TotalSlots, 0);
}

void BindingGraphSolver::lower(uint32_t Slot, LatticeValue NewVal) {
  LatticeValue Old = VAL[Slot];
  LatticeValue Met = meet(Old, NewVal);
  if (Met == Old)
    return;
  VAL[Slot] = Met;
  if (Stats)
    ++Stats->Lowerings;
  if (!Pending[Slot]) {
    Pending[Slot] = 1;
    Work.push_back(Slot);
  }
}

void BindingGraphSolver::evaluateEdge(const BindingEdge &Edge) {
  if (Stats)
    ++Stats->JumpFunctionEvaluations;
  if (Guard)
    Guard->noteEvaluations();
  uint32_t PI = Edge.CallerPI;
  auto Lookup = [this, PI](Variable *Var) {
    uint32_t Slot = slotOf(PI, Var);
    return Slot == ~0u ? LatticeValue::top() : VAL[Slot];
  };
  lower(Edge.TargetSlot, Edge.JF->evaluateVia(Lookup));
}

void BindingGraphSolver::buildEdges() {
  // Pass 1: materialize the edges with resolved endpoints, counting each
  // support slot's out-degree; pass 2: fill the CSR list in edge order
  // (the re-evaluation order of the old per-pair vectors).
  DepOffsets.assign(TotalSlots + 1, 0);
  for (Procedure *P : CG.procedures()) {
    uint32_t PI = CG.procIndex(P);
    for (CallInst *Site : CG.callSitesIn(P)) {
      const CallSiteJumpFunctions &JFs = FJFs.at(Site);
      Procedure *Q = Site->getCallee();
      uint32_t QI = CG.procIndex(Q);
      auto AddEdge = [&](Variable *Y, const JumpFunction &JF) {
        uint32_t Target = slotOf(QI, Y);
        assert(Target != ~0u && "edge target outside callee numbering");
        Edges.push_back({PI, Target, &JF});
        for (Variable *SupportVar : JF.support()) {
          uint32_t Slot = slotOf(PI, SupportVar);
          assert(Slot != ~0u && "support var outside caller numbering");
          ++DepOffsets[Slot + 1];
        }
      };
      for (unsigned I = 0, E = unsigned(JFs.Formals.size()); I != E; ++I)
        AddEdge(Q->formals()[I], JFs.Formals[I]);
      for (const auto &[G, JF] : JFs.Globals)
        AddEdge(G, JF);
    }
  }
  for (uint32_t S = 0; S != TotalSlots; ++S)
    DepOffsets[S + 1] += DepOffsets[S];
  DepList.resize(DepOffsets[TotalSlots]);
  std::vector<uint32_t> Cursor(DepOffsets.begin(), DepOffsets.end() - 1);
  for (uint32_t E = 0, N = uint32_t(Edges.size()); E != N; ++E)
    for (Variable *SupportVar : Edges[E].JF->support())
      DepList[Cursor[slotOf(Edges[E].CallerPI, SupportVar)]++] = E;
}

ConstantsMap BindingGraphSolver::solve() {
  numberSlots();
  buildEdges();

  // Virtual entry edge: the entry procedure's globals start at zero.
  for (Procedure *P : CG.procedures())
    if (P->getName() == Opts.EntryProcedure) {
      const ProcSlots &S = Slots[CG.procIndex(P)];
      for (uint32_t I = 0, E = uint32_t(S.Globals.size()); I != E; ++I)
        lower(S.Base + S.FormalCount + I, LatticeValue::constant(0));
    }

  // Seed every edge once (this covers the support-free constant and
  // bottom jump functions; support-carrying ones evaluate to top now and
  // are revisited through the dependency index).
  for (const BindingEdge &Edge : Edges) {
    if (Guard && Guard->tripped())
      break;
    evaluateEdge(Edge);
  }

  while (Head != Work.size() && !(Guard && Guard->tripped())) {
    uint32_t Slot = Work[Head++];
    Pending[Slot] = 0;
    if (Stats)
      ++Stats->ProcVisits; // here: pair visits
    for (uint32_t D = DepOffsets[Slot], E = DepOffsets[Slot + 1]; D != E;
         ++D)
      evaluateEdge(Edges[DepList[D]]);
  }

  // A budget-interrupted iteration is above the fixpoint (too
  // optimistic); the empty map is the sound degraded answer.
  if (Guard && Guard->tripped())
    return ConstantsMap();

  // Package into a ConstantsMap: each procedure's slot range is already
  // the extended-formal row layout the map expects.
  ConstantsMap CM;
  for (Procedure *P : CG.procedures()) {
    const ProcSlots &S = Slots[CG.procIndex(P)];
    std::vector<Variable *> Vars;
    Vars.reserve(S.FormalCount + S.Globals.size());
    Vars.insert(Vars.end(), P->formals().begin(), P->formals().end());
    Vars.insert(Vars.end(), S.Globals.begin(), S.Globals.end());
    std::vector<LatticeValue> Vals(VAL.begin() + S.Base,
                                   VAL.begin() + S.Base + Vars.size());
    CM.adoptRow(P, std::move(Vars), std::move(Vals));
  }
  return CM;
}

ConstantsMap ipcp::propagateConstantsBindingGraph(
    const CallGraph &CG, const ModRefInfo &MRI,
    const ForwardJumpFunctions &FJFs, const IPCPOptions &Opts,
    PropagatorStats *Stats, ResourceGuard *Guard) {
  ScopedTraceSpan PropSpan("propagate", "binding-multigraph");
  BindingGraphSolver Solver(CG, MRI, FJFs, Opts, Stats, Guard);
  return Solver.solve();
}
