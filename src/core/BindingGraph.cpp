//===- core/BindingGraph.cpp ----------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/BindingGraph.h"

#include "support/Trace.h"

#include <deque>

using namespace ipcp;

namespace {

/// One jump-function edge bundle: evaluate JF in Caller's environment and
/// meet the result into (Callee, Var).
struct BindingEdge {
  Procedure *Caller;
  Procedure *Callee;
  Variable *Var;
  const JumpFunction *JF;
};

/// The binding multigraph solver. ConstantsMap's private VAL is reached
/// through the public env()/valueOf() queries plus a local shadow map we
/// merge at the end — avoiding a second friend declaration keeps the
/// ConstantsMap interface minimal.
class BindingGraphSolver {
public:
  BindingGraphSolver(const CallGraph &CG, const ModRefInfo &MRI,
                     const ForwardJumpFunctions &FJFs,
                     const IPCPOptions &Opts, PropagatorStats *Stats,
                     ResourceGuard *Guard)
      : CG(CG), MRI(MRI), FJFs(FJFs), Opts(Opts), Stats(Stats),
        Guard(Guard) {}

  ConstantsMap solve();

private:
  using PairKey = std::pair<const Procedure *, const Variable *>;
  struct PairHash {
    size_t operator()(const PairKey &Key) const {
      return std::hash<const void *>()(Key.first) * 31 ^
             std::hash<const void *>()(Key.second);
    }
  };

  void buildEdges();
  LatticeValue valueOf(const Procedure *P, const Variable *Var) const;
  /// Meets NewVal into (Q, Var); enqueues the pair when it lowered.
  void lower(Procedure *Q, Variable *Var, LatticeValue NewVal);
  void evaluateEdge(const BindingEdge &Edge);

  const CallGraph &CG;
  const ModRefInfo &MRI;
  const ForwardJumpFunctions &FJFs;
  const IPCPOptions &Opts;
  PropagatorStats *Stats;
  ResourceGuard *Guard;

  std::vector<BindingEdge> Edges;
  /// (caller, support var) -> indices into Edges to re-evaluate when the
  /// pair lowers.
  std::unordered_map<PairKey, std::vector<size_t>, PairHash> Dependents;
  std::unordered_map<const Procedure *, LatticeEnv> VAL;
  std::deque<PairKey> Work;
  std::unordered_map<PairKey, bool, PairHash> Pending;
};

} // namespace

LatticeValue BindingGraphSolver::valueOf(const Procedure *P,
                                         const Variable *Var) const {
  auto ProcIt = VAL.find(P);
  if (ProcIt == VAL.end())
    return LatticeValue::top();
  auto It = ProcIt->second.find(const_cast<Variable *>(Var));
  return It == ProcIt->second.end() ? LatticeValue::top() : It->second;
}

void BindingGraphSolver::lower(Procedure *Q, Variable *Var,
                               LatticeValue NewVal) {
  LatticeValue Old = valueOf(Q, Var);
  LatticeValue Met = meet(Old, NewVal);
  if (Met == Old)
    return;
  VAL[Q][Var] = Met;
  if (Stats)
    ++Stats->Lowerings;
  PairKey Key{Q, Var};
  bool &IsPending = Pending[Key];
  if (!IsPending) {
    IsPending = true;
    Work.push_back(Key);
  }
}

void BindingGraphSolver::evaluateEdge(const BindingEdge &Edge) {
  if (Stats)
    ++Stats->JumpFunctionEvaluations;
  if (Guard)
    Guard->noteEvaluations();
  auto EnvIt = VAL.find(Edge.Caller);
  static const LatticeEnv EmptyEnv;
  const LatticeEnv &Env = EnvIt == VAL.end() ? EmptyEnv : EnvIt->second;
  lower(Edge.Callee, Edge.Var, Edge.JF->evaluate(Env));
}

void BindingGraphSolver::buildEdges() {
  for (Procedure *P : CG.procedures()) {
    for (CallInst *Site : CG.callSitesIn(P)) {
      const CallSiteJumpFunctions &JFs = FJFs.at(Site);
      Procedure *Q = Site->getCallee();
      auto AddEdge = [&](Variable *Y, const JumpFunction &JF) {
        Edges.push_back({P, Q, Y, &JF});
        for (Variable *SupportVar : JF.support())
          Dependents[{P, SupportVar}].push_back(Edges.size() - 1);
      };
      for (unsigned I = 0, E = JFs.Formals.size(); I != E; ++I)
        AddEdge(Q->formals()[I], JFs.Formals[I]);
      for (const auto &[G, JF] : JFs.Globals)
        AddEdge(G, JF);
    }
  }
}

ConstantsMap BindingGraphSolver::solve() {
  buildEdges();

  // Virtual entry edge: the entry procedure's globals start at zero.
  for (Procedure *P : CG.procedures())
    if (P->getName() == Opts.EntryProcedure)
      for (Variable *G : MRI.extendedGlobals(P))
        lower(P, G, LatticeValue::constant(0));

  // Seed every edge once (this covers the support-free constant and
  // bottom jump functions; support-carrying ones evaluate to top now and
  // are revisited through the dependency index).
  for (const BindingEdge &Edge : Edges) {
    if (Guard && Guard->tripped())
      break;
    evaluateEdge(Edge);
  }

  while (!Work.empty() && !(Guard && Guard->tripped())) {
    PairKey Key = Work.front();
    Work.pop_front();
    Pending[Key] = false;
    if (Stats)
      ++Stats->ProcVisits; // here: pair visits
    auto It = Dependents.find(Key);
    if (It == Dependents.end())
      continue;
    for (size_t EdgeIndex : It->second)
      evaluateEdge(Edges[EdgeIndex]);
  }

  // A budget-interrupted iteration is above the fixpoint (too
  // optimistic); the empty map is the sound degraded answer.
  if (Guard && Guard->tripped())
    return ConstantsMap();

  // Package into a ConstantsMap via its merge interface.
  ConstantsMap CM;
  for (auto &[P, Env] : VAL)
    for (auto &[Var, LV] : Env)
      CM.setValue(P, Var, LV);
  return CM;
}

ConstantsMap ipcp::propagateConstantsBindingGraph(
    const CallGraph &CG, const ModRefInfo &MRI,
    const ForwardJumpFunctions &FJFs, const IPCPOptions &Opts,
    PropagatorStats *Stats, ResourceGuard *Guard) {
  ScopedTraceSpan PropSpan("propagate", "binding-multigraph");
  BindingGraphSolver Solver(CG, MRI, FJFs, Opts, Stats, Guard);
  return Solver.solve();
}
