//===- core/BindingGraph.h - Binding multigraph propagation -----*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The alternative propagation formulation the paper points at:
/// "Alternative formulations based on the binding multi-graph are
/// possible [7]. The method presented by Callahan et al. essentially
/// models the binding graph computation on the call graph."
///
/// Nodes of the binding multigraph are (procedure, extended formal)
/// pairs; each forward jump function J_s^y contributes one edge from
/// every element of support(J_s^y) to the callee pair (q, y). The
/// worklist then runs over *pairs*: when VAL(p, v) lowers, only the jump
/// functions whose support actually mentions v are re-evaluated —
/// realizing the O(sum of cost(J) * |support(J)|) bound of Section 3.1.5
/// directly, instead of re-scanning every call site of a procedure.
///
/// Both propagators compute the same (greatest) fixpoint; the property
/// tests check they agree exactly, and bench_propagation.cpp compares
/// their evaluation counts.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_BINDINGGRAPH_H
#define IPCP_CORE_BINDINGGRAPH_H

#include "core/Propagator.h"

namespace ipcp {

/// Runs the binding-multigraph worklist propagation to fixpoint.
/// Produces exactly the same ConstantsMap as propagateConstants, and
/// degrades the same way under a tripped ResourceGuard budget (stops
/// early and returns the empty — soundly constant-free — map).
ConstantsMap propagateConstantsBindingGraph(const CallGraph &CG,
                                            const ModRefInfo &MRI,
                                            const ForwardJumpFunctions &FJFs,
                                            const IPCPOptions &Opts,
                                            PropagatorStats *Stats = nullptr,
                                            ResourceGuard *Guard = nullptr);

} // namespace ipcp

#endif // IPCP_CORE_BINDINGGRAPH_H
