//===- core/Cloning.cpp ---------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/Cloning.h"

#include "core/ValueNumbering.h"
#include "support/Trace.h"

#include <algorithm>
#include <map>

using namespace ipcp;

namespace {

/// One cloning decision: retarget these call sites (by clone-stable call
/// instruction ID) from Procedure (by name) to a fresh copy.
struct CloneDecision {
  std::string ProcName;
  std::vector<uint64_t> SiteIds;
  std::string Signature; // for determinism / debugging
};

/// Renders the constant vector a call site would supply, or empty when
/// the site is not profitable (no constant that the merged VAL lost).
/// Top values (sites inside never-invoked procedures) are treated as
/// bottom: cloning for them wins nothing.
std::string signatureFor(const CallSiteJumpFunctions &JFs,
                         const ConstantsMap &CM, Procedure *Caller,
                         Procedure *Callee, bool &Profitable) {
  std::string Sig;
  Profitable = false;
  auto CallerLookup = [&](Variable *Var) {
    return CM.valueOf(Caller, Var);
  };
  auto Append = [&](Variable *Y, const JumpFunction &JF) {
    LatticeValue V = JF.evaluateVia(CallerLookup);
    if (!V.isConstant()) {
      Sig += "_,";
      return;
    }
    Sig += std::to_string(V.getConstant());
    Sig += ',';
    if (!CM.valueOf(Callee, Y).isConstant())
      Profitable = true;
  };
  for (unsigned I = 0, E = JFs.Formals.size(); I != E; ++I)
    Append(Callee->formals()[I], JFs.Formals[I]);
  for (const auto &[G, JF] : JFs.Globals)
    Append(G, JF);
  return Sig;
}

/// Plans one round of cloning decisions against a scratch analysis.
std::vector<CloneDecision> planRound(const Module &M,
                                     const CloningOptions &Opts) {
  std::vector<CloneDecision> Decisions;

  std::unique_ptr<Module> Scratch = M.clone();
  CallGraph CG(*Scratch);
  ModRefInfo MRI = Opts.Analysis.UseModInformation
                       ? ModRefInfo::compute(*Scratch, CG)
                       : ModRefInfo::worstCase(*Scratch);
  SSAMap SSA;
  for (const std::unique_ptr<Procedure> &P : Scratch->procedures())
    SSA.emplace(P.get(), constructSSA(*P, MRI));
  SymExprContext Ctx(Opts.Analysis.MaxExprNodes);
  std::unique_ptr<ReturnJumpFunctions> RJFs;
  if (Opts.Analysis.UseReturnJumpFunctions)
    RJFs = std::make_unique<ReturnJumpFunctions>(
        ReturnJumpFunctions::build(CG, MRI, SSA, Ctx));
  ForwardJumpFunctions FJFs = ForwardJumpFunctions::build(
      CG, MRI, SSA, RJFs.get(), Ctx, Opts.Analysis.ForwardKind);
  ConstantsMap CM = propagateConstants(CG, MRI, FJFs, Opts.Analysis);

  for (Procedure *Q : CG.procedures()) {
    if (Q->getName() == Opts.Analysis.EntryProcedure || CG.isRecursive(Q))
      continue;

    // Gather every call site targeting Q, grouped by constant signature.
    // std::map keeps group iteration deterministic.
    std::map<std::string, std::vector<uint64_t>> Groups;
    std::map<std::string, bool> GroupProfitable;
    unsigned TotalSites = 0;
    for (Procedure *Caller : CG.procedures()) {
      for (CallInst *Site : CG.callSitesIn(Caller)) {
        if (Site->getCallee() != Q)
          continue;
        ++TotalSites;
        bool Profitable = false;
        std::string Sig =
            signatureFor(FJFs.at(Site), CM, Caller, Q, Profitable);
        Groups[Sig].push_back(Site->getId());
        GroupProfitable[Sig] = GroupProfitable[Sig] || Profitable;
      }
    }
    if (Groups.size() < 2 || TotalSites < 2)
      continue;

    // Keep the original for the largest group; clone for the other
    // profitable groups, respecting the per-procedure cap.
    std::string Largest;
    size_t LargestSize = 0;
    for (const auto &[Sig, Sites] : Groups)
      if (Sites.size() > LargestSize) {
        Largest = Sig;
        LargestSize = Sites.size();
      }
    unsigned Budget = Opts.MaxClonesPerProcedure - 1;
    for (const auto &[Sig, Sites] : Groups) {
      if (Sig == Largest || !GroupProfitable[Sig] || Budget == 0)
        continue;
      Decisions.push_back({Q->getName(), Sites, Sig});
      --Budget;
    }
  }
  return Decisions;
}

} // namespace

CloningResult ipcp::cloneForConstants(Module &M, const CloningOptions &Opts,
                                      ResourceGuard *Guard) {
  ScopedTraceSpan CloneSpan("cloning");
  CloningResult Result;
  ResourceGuard LocalGuard(Opts.Analysis.Limits);
  if (!Guard)
    Guard = &LocalGuard;
  Result.InstructionsBefore = M.instructionCount();
  // The before/after measurement runs must not consult (or restock) a
  // summary cache: the module mutates between them.
  CloningOptions MeasureOpts = Opts;
  MeasureOpts.Analysis.Cache = nullptr;
  const IPCPOptions &AnalysisOpts = MeasureOpts.Analysis;
  {
    IPCPResult Before = runIPCP(M, AnalysisOpts, Guard);
    Result.RefsBefore = Before.TotalConstantRefs;
    Result.ConstantsBefore = Before.TotalEntryConstants;
  }

  // The per-procedure budget counts every copy of one original across
  // all rounds; clones of clones share the original's budget.
  auto RootOf = [](const std::string &Name) {
    size_t Pos = Name.find(".clone");
    return Pos == std::string::npos ? Name : Name.substr(0, Pos);
  };
  std::unordered_map<std::string, unsigned> CopiesPerRoot;

  unsigned CloneCounter = 0;
  for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
    ScopedTraceSpan RoundSpan("cloning-round", std::to_string(Round + 1));
    // Budget gate: the deadline and the absolute IR-size budget both end
    // the experiment between rounds, leaving the module consistent.
    if (Guard->tripped() || !Guard->checkDeadline("cloning") ||
        !Guard->checkIRInstructions(M.instructionCount(), "cloning"))
      break;
    if (M.instructionCount() >
        Result.InstructionsBefore * Opts.MaxGrowthFactor)
      break;
    std::vector<CloneDecision> Decisions = planRound(M, Opts);
    if (Decisions.empty())
      break;
    ++Result.RoundsRun;

    // Index the real module's call sites by ID once per round.
    std::unordered_map<uint64_t, CallInst *> SitesById;
    for (const std::unique_ptr<Procedure> &P : M.procedures())
      for (CallInst *Site : P->callSites())
        SitesById[Site->getId()] = Site;

    for (const CloneDecision &Decision : Decisions) {
      Procedure *Original = M.findProcedure(Decision.ProcName);
      if (!Original)
        continue; // name vanished (shouldn't happen)
      std::string Root = RootOf(Decision.ProcName);
      if (CopiesPerRoot[Root] + 2 > Opts.MaxClonesPerProcedure)
        continue; // original + copies would exceed the cap
      if (M.instructionCount() + Original->instructionCount() >
          Result.InstructionsBefore * Opts.MaxGrowthFactor)
        break;
      ++CopiesPerRoot[Root];
      Procedure *Copy = M.cloneProcedure(
          *Original,
          Original->getName() + ".clone" + std::to_string(++CloneCounter));
      ++Result.ClonesCreated;
      for (uint64_t SiteId : Decision.SiteIds) {
        auto It = SitesById.find(SiteId);
        if (It != SitesById.end())
          It->second->setCallee(Copy);
      }
    }
  }

  {
    IPCPResult After = runIPCP(M, AnalysisOpts, Guard);
    Result.RefsAfter = After.TotalConstantRefs;
    Result.ConstantsAfter = After.TotalEntryConstants;
  }
  Result.InstructionsAfter = M.instructionCount();
  Result.Status = Guard->status();
  return Result;
}
