//===- core/Cloning.h - Constant-driven procedure cloning -------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Goal-directed procedure cloning driven by interprocedural constants,
/// after Cooper, Hall & Kennedy [6] and Metzger & Stroud [13] (both cited
/// by the paper as applications of its framework): when different call
/// sites of a procedure would supply different constant vectors — whose
/// meet destroys them — replicate the procedure so each group of
/// agreeing call sites gets its own copy, then re-run the analysis.
///
/// "Their empirical results indicate that goal-directed cloning of
/// procedures based on interprocedural constants can substantially
/// increase the number of interprocedural constants available for use by
/// later analysis and optimization passes." (paper Section 5)
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_CLONING_H
#define IPCP_CORE_CLONING_H

#include "core/Pipeline.h"

namespace ipcp {

/// Knobs for the cloning transformation.
struct CloningOptions {
  /// The analysis configuration driving (and measuring) the cloning.
  IPCPOptions Analysis;

  /// Maximum number of copies (including the original) per procedure.
  unsigned MaxClonesPerProcedure = 4;

  /// Stop when the module has grown past this factor of its original
  /// instruction count.
  double MaxGrowthFactor = 3.0;

  /// Cloning rounds (each round re-analyzes; constants exposed by one
  /// round can justify clones in the next).
  unsigned MaxRounds = 3;
};

/// Outcome of the cloning experiment.
struct CloningResult {
  unsigned ClonesCreated = 0;
  unsigned RoundsRun = 0;
  /// Degradation status: set when a resource budget (deadline, IR-size
  /// growth budget) ended the experiment early. The module is always
  /// left in a consistent, verifiable state.
  PipelineStatus Status;
  /// Substituted-constant counts before and after cloning.
  unsigned RefsBefore = 0;
  unsigned RefsAfter = 0;
  /// Entry-constant counts before and after.
  unsigned ConstantsBefore = 0;
  unsigned ConstantsAfter = 0;
  /// Instruction counts before and after (growth cost).
  unsigned InstructionsBefore = 0;
  unsigned InstructionsAfter = 0;
};

/// Clones procedures inside \p M (mutating it) wherever call sites
/// disagree profitably on constants, and reports the before/after
/// effectiveness. \p M must be in pre-SSA form. \p Guard (or a local
/// guard built from Opts.Analysis.Limits) bounds the experiment: the
/// deadline and the ir-insts budget are checked between rounds, and a
/// trip stops cloning with the module intact.
CloningResult cloneForConstants(Module &M, const CloningOptions &Opts = {},
                                ResourceGuard *Guard = nullptr);

} // namespace ipcp

#endif // IPCP_CORE_CLONING_H
