//===- core/ForwardJumpFunctions.cpp --------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/ForwardJumpFunctions.h"

#include "support/Trace.h"

#include "core/ValueNumbering.h"
#include "support/Casting.h"

using namespace ipcp;

const char *ipcp::jumpFunctionKindName(JumpFunctionKind Kind) {
  switch (Kind) {
  case JumpFunctionKind::Literal:
    return "literal";
  case JumpFunctionKind::IntraproceduralConstant:
    return "intra";
  case JumpFunctionKind::PassThrough:
    return "pass-through";
  case JumpFunctionKind::Polynomial:
    return "polynomial";
  }
  return "?";
}

/// Applies the class restriction of Section 3.1 to a lifted expression.
static JumpFunction trim(JumpFunctionKind Kind, const SymExpr *E) {
  switch (Kind) {
  case JumpFunctionKind::Literal:
    // Handled separately (syntactic property, not a lift property).
    return JumpFunction::bottom();
  case JumpFunctionKind::IntraproceduralConstant:
    return (E && E->isConst()) ? JumpFunction(E) : JumpFunction::bottom();
  case JumpFunctionKind::PassThrough:
    return (E && (E->isConst() || E->isFormal())) ? JumpFunction(E)
                                                  : JumpFunction::bottom();
  case JumpFunctionKind::Polynomial:
    return JumpFunction(E);
  }
  return JumpFunction::bottom();
}

void ForwardJumpFunctions::buildProcedure(
    Procedure *P, const CallGraph &CG, const ModRefInfo &MRI,
    const SSAResult &ProcSSA, const ReturnJumpFunctions *RJFs,
    SymExprContext &Ctx, JumpFunctionKind Kind, bool UseGatedSSA) {
  traceEvent("forward-jf.proc", P->getName());

  // Section 3.2: the second evaluation of return jump functions, during
  // forward jump function generation, keeps only constant results.
  SymbolicLifter Lifter(Ctx, ProcSSA, RJFs, CallOutMode::ConstantOnly,
                        UseGatedSSA);

  for (CallInst *Site : CG.callSitesIn(P)) {
    CallSiteJumpFunctions JFs;
    JFs.Site = Site;
    JFs.Caller = P;
    Procedure *Callee = Site->getCallee();

    for (unsigned I = 0, E = Site->getNumActuals(); I != E; ++I) {
      if (Kind == JumpFunctionKind::Literal) {
        const CallActual &A = Site->getActual(I);
        if (A.WasLiteral) {
          auto *C = cast<ConstantInt>(Site->getActualValue(I));
          JFs.Formals.push_back(
              JumpFunction::constant(Ctx, C->getValue()));
        } else {
          JFs.Formals.push_back(JumpFunction::bottom());
        }
        continue;
      }
      JFs.Formals.push_back(
          trim(Kind, Lifter.lift(Site->getActualValue(I))));
    }

    // Globals are implicit parameters of the callee; the literal class
    // cannot see them at all.
    auto CallIn = ProcSSA.CallInValues.find(Site);
    for (Variable *G : MRI.extendedGlobals(Callee)) {
      if (Kind == JumpFunctionKind::Literal) {
        JFs.Globals.push_back({G, JumpFunction::bottom()});
        continue;
      }
      const SymExpr *E = nullptr;
      if (CallIn != ProcSSA.CallInValues.end()) {
        auto It = CallIn->second.find(G);
        if (It != CallIn->second.end())
          E = Lifter.lift(It->second);
      }
      JFs.Globals.push_back({G, trim(Kind, E)});
    }

    Sites.emplace(Site, std::move(JFs));
  }
}

ForwardJumpFunctions ForwardJumpFunctions::build(
    const CallGraph &CG, const ModRefInfo &MRI, const SSAMap &SSA,
    const ReturnJumpFunctions *RJFs, SymExprContext &Ctx,
    JumpFunctionKind Kind, bool UseGatedSSA) {
  ForwardJumpFunctions FJFs;
  ScopedTraceSpan BuildSpan("forward-jf");

  for (Procedure *P : CG.procedures()) {
    auto SSAIt = SSA.find(P);
    assert(SSAIt != SSA.end() && "missing SSA for procedure");
    FJFs.buildProcedure(P, CG, MRI, SSAIt->second, RJFs, Ctx, Kind,
                        UseGatedSSA);
  }

  return FJFs;
}

const CallSiteJumpFunctions &
ForwardJumpFunctions::at(const CallInst *Site) const {
  auto It = Sites.find(Site);
  assert(It != Sites.end() && "no jump functions for this call site");
  return It->second;
}

ForwardJumpFunctions::Stats ForwardJumpFunctions::stats() const {
  Stats S;
  auto Classify = [&S](const JumpFunction &JF) {
    if (JF.isBottom())
      ++S.Bottom;
    else if (JF.isConstant())
      ++S.Constant;
    else if (JF.isPassThrough())
      ++S.PassThrough;
    else
      ++S.Polynomial;
  };
  for (const auto &[Site, JFs] : Sites) {
    for (const JumpFunction &JF : JFs.Formals)
      Classify(JF);
    for (const auto &[G, JF] : JFs.Globals)
      Classify(JF);
  }
  return S;
}
