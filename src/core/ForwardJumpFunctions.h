//===- core/ForwardJumpFunctions.h - Forward jump functions -----*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the forward jump functions J_s^y for every call site s and
/// every parameter y of the callee — the callee's formals (from the
/// actuals) and the callee's extended globals (from the value of each
/// global at the call point). The four classes of Section 3.1 are
/// produced by trimming one underlying symbolic lift:
///
///  - Literal: keep only syntactic literal actuals; globals are bottom
///    ("misses any constant globals which are passed implicitly");
///  - IntraproceduralConstant: keep only expressions that folded to a
///    constant — gcp(y, s);
///  - PassThrough: additionally keep a bare entry value of a caller
///    formal/global;
///  - Polynomial: keep any expression over the caller's entry values.
///
/// Because trimming only ever replaces an expression with bottom, the
/// constants each class propagates are a subset of those of the next
/// class — the containment the paper states and our property tests check.
///
/// All jump functions are built before propagation begins and never
/// rebuilt (Section 3.1: "It is not necessary to reconstruct the jump
/// functions on each iteration over G").
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_FORWARDJUMPFUNCTIONS_H
#define IPCP_CORE_FORWARDJUMPFUNCTIONS_H

#include "core/Options.h"
#include "core/ReturnJumpFunctions.h"

namespace ipcp {

/// The jump functions attached to one call site.
struct CallSiteJumpFunctions {
  CallInst *Site = nullptr;
  Procedure *Caller = nullptr;

  /// One jump function per callee formal, positionally.
  std::vector<JumpFunction> Formals;

  /// One jump function per callee extended global, ID-ordered.
  std::vector<std::pair<Variable *, JumpFunction>> Globals;
};

/// Forward jump functions for every call site in a module.
class ForwardJumpFunctions {
public:
  /// Builds all call sites' jump functions of class \p Kind.
  /// \p RJFs may be null (configurations without return jump functions);
  /// \p UseGatedSSA selects the gated phi resolution (Options.h).
  static ForwardJumpFunctions build(const CallGraph &CG,
                                    const ModRefInfo &MRI, const SSAMap &SSA,
                                    const ReturnJumpFunctions *RJFs,
                                    SymExprContext &Ctx,
                                    JumpFunctionKind Kind,
                                    bool UseGatedSSA = false);

  /// Builds the jump functions for every call site in \p P alone — the
  /// per-procedure step the incremental pipeline runs for dirty
  /// procedures (build() is this in a loop). Callee return jump
  /// functions consulted through \p RJFs must be final.
  void buildProcedure(Procedure *P, const CallGraph &CG, const ModRefInfo &MRI,
                      const SSAResult &ProcSSA,
                      const ReturnJumpFunctions *RJFs, SymExprContext &Ctx,
                      JumpFunctionKind Kind, bool UseGatedSSA);

  /// Installs one call site's jump functions directly (cache restore
  /// path).
  void insert(CallSiteJumpFunctions JFs) {
    const CallInst *Site = JFs.Site;
    Sites.insert_or_assign(Site, std::move(JFs));
  }

  const CallSiteJumpFunctions &at(const CallInst *Site) const;

  /// Distribution counters for the study: how many jump functions ended
  /// as bottom / constant / pass-through / polynomial.
  struct Stats {
    unsigned Bottom = 0;
    unsigned Constant = 0;
    unsigned PassThrough = 0;
    unsigned Polynomial = 0;
    unsigned total() const {
      return Bottom + Constant + PassThrough + Polynomial;
    }
  };
  Stats stats() const;

private:
  std::unordered_map<const CallInst *, CallSiteJumpFunctions> Sites;
};

} // namespace ipcp

#endif // IPCP_CORE_FORWARDJUMPFUNCTIONS_H
