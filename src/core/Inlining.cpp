//===- core/Inlining.cpp --------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/Inlining.h"

#include "analysis/CallGraph.h"
#include "ir/CloneUtil.h"

#include <unordered_set>

using namespace ipcp;

namespace {
/// Monotone counter making inliner-introduced names unique module-wide.
unsigned nextInlineId() {
  static unsigned Counter = 0;
  return ++Counter;
}
} // namespace

BasicBlock *ipcp::inlineCallSite(Module &M, Procedure &Caller,
                                 CallInst *Call) {
  Procedure *Callee = Call->getCallee();
  assert(Callee != &Caller && "cannot integrate a self-call");
  BasicBlock *B = Call->getParent();
  unsigned Tag = nextInlineId();
  std::string Suffix = "." + Callee->getName() + std::to_string(Tag);

  // 1. Split B at the call: everything after it moves to a continuation.
  BasicBlock *Cont = Caller.createBlock("inl.cont" + std::to_string(Tag));
  {
    std::vector<Instruction *> After;
    bool Seen = false;
    for (const std::unique_ptr<Instruction> &Inst : B->instructions()) {
      if (Seen)
        After.push_back(Inst.get());
      if (Inst.get() == Call)
        Seen = true;
    }
    assert(Seen && "call not inside its own parent block");
    for (Instruction *Inst : After)
      Cont->append(B->detach(Inst));
  }
  // The moved terminator's successors now flow from Cont, not B.
  for (BasicBlock *Succ : Cont->successors()) {
    Succ->removePredecessor(B);
    Succ->addPredecessor(Cont);
  }

  // 2. Bind the callee's variables into the caller.
  IRCloneMaps Maps(M);
  for (Variable *G : M.globals())
    Maps.mapVar(G, G);
  for (const std::unique_ptr<Procedure> &P : M.procedures())
    Maps.Procs.emplace(P.get(), P.get());

  for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
    const CallActual &A = Call->getActual(I);
    Variable *Formal = Callee->formals()[I];
    if (A.ByRefLoc) {
      // Fortran by-reference binding: the formal *is* the actual.
      Maps.mapVar(Formal, A.ByRefLoc);
      continue;
    }
    // Expression actual: an initialized hidden temporary, updates lost.
    Variable *Temp =
        Caller.addLocal(Formal->getName() + Suffix + ".arg");
    B->append(std::make_unique<StoreInst>(M.nextInstId(), Call->getLoc(),
                                          Temp, Call->getActualValue(I)));
    Maps.mapVar(Formal, Temp);
  }
  for (const Variable *L : Callee->locals())
    Maps.mapVar(
        L, Caller.addLocal(L->getName() + Suffix, L->getArraySize()));

  // 3. Clone the body. Rets become branches to the continuation.
  for (const std::unique_ptr<BasicBlock> &BB : Callee->blocks())
    Maps.Blocks.emplace(BB.get(),
                        Caller.createBlock(BB->getName() + Suffix));

  for (const std::unique_ptr<BasicBlock> &BB : Callee->blocks()) {
    BasicBlock *NewBB = Maps.block(BB.get());
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
      if (isa<RetInst>(Inst.get())) {
        NewBB->append(std::make_unique<BranchInst>(M.nextInstId(),
                                                   Inst->getLoc(), Cont));
        Cont->addPredecessor(NewBB);
        continue;
      }
      std::unique_ptr<Instruction> NewInst =
          cloneInstructionWithMaps(Inst.get(), M, Maps);
      NewInst->setId(M.nextInstId());
      Maps.mapValue(Inst.get(), NewInst.get());
      NewBB->append(std::move(NewInst));
    }
    for (BasicBlock *Pred : BB->predecessors())
      NewBB->addPredecessor(Maps.block(Pred));
  }

  patchClonedOperands(Maps);

  // 4. Replace the call with a branch into the integrated entry.
  BasicBlock *NewEntry = Maps.block(Callee->getEntryBlock());
  B->erase(Call);
  B->append(std::make_unique<BranchInst>(M.nextInstId(), SourceLoc(),
                                         NewEntry));
  NewEntry->addPredecessor(B);

  // A callee that can only loop forever leaves Cont unreachable.
  Caller.removeUnreachableBlocks();
  return Cont;
}

InlineResult ipcp::inlineCalls(Module &M, const InlineOptions &Opts) {
  InlineResult Result;
  Result.InstructionsBefore = M.instructionCount();
  const double Budget =
      Result.InstructionsBefore * Opts.MaxGrowthFactor;

  for (unsigned Round = 0; Round < Opts.MaxRounds; ++Round) {
    CallGraph CG(M);
    bool Changed = false;
    for (const std::unique_ptr<Procedure> &P : M.procedures()) {
      // Snapshot: integration appends new (next-round) call sites.
      std::vector<CallInst *> Sites = P->callSites();
      for (CallInst *Site : Sites) {
        Procedure *Callee = Site->getCallee();
        if (Callee == P.get() || CG.isRecursive(Callee))
          continue;
        if (Callee->instructionCount() > Opts.MaxCalleeInstructions)
          continue;
        if (M.instructionCount() + Callee->instructionCount() > Budget)
          break;
        inlineCallSite(M, *P, Site);
        ++Result.CallsInlined;
        Changed = true;
      }
    }
    if (!Changed)
      break;
    ++Result.RoundsRun;
  }

  Procedure *Entry = M.findProcedure(Opts.EntryProcedure);
  if (Opts.RemoveDeadProcedures && Entry) {
    CallGraph CG(M);
    std::unordered_set<Procedure *> Live = CG.reachableFrom(Entry);
    std::vector<Procedure *> Dead;
    for (const std::unique_ptr<Procedure> &P : M.procedures())
      if (!Live.count(P.get()) && P.get() != Entry)
        Dead.push_back(P.get());
    for (Procedure *P : Dead)
      M.eraseProcedure(P);
    Result.ProceduresRemoved = Dead.size();
  }

  Result.InstructionsAfter = M.instructionCount();
  return Result;
}

IntegrationResult ipcp::runIntegrationBasedIPCP(const Module &M,
                                                const InlineOptions &Opts) {
  IntegrationResult Result;
  std::unique_ptr<Module> Working = M.clone();
  Result.Inlining = inlineCalls(*Working, Opts);

  IPCPOptions Intra;
  Intra.IntraproceduralOnly = true;
  Intra.EntryProcedure = Opts.EntryProcedure;
  IPCPResult R = runIPCP(*Working, Intra);
  Result.ConstantRefs = R.TotalConstantRefs;
  Result.EntryConstants = R.TotalEntryConstants;
  return Result;
}
