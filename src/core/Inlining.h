//===- core/Inlining.h - Procedure integration ------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Procedure integration (inlining) and the Wegman–Zadeck comparison the
/// paper's Section 5 describes: "Wegman and Zadeck propose combining
/// procedure integration with intraprocedural constant propagation to
/// detect interprocedural constants. ... Data is not yet available to
/// indicate whether or not the proposed algorithm would perform
/// efficiently in practice."
///
/// This module supplies that data for our suite: inlineCalls substitutes
/// callee bodies at call sites (Fortran by-reference binding becomes
/// direct variable renaming; expression actuals become initialized
/// temporaries), and runIntegrationBasedIPCP measures how many constant
/// references a purely intraprocedural analysis finds in the integrated
/// program, against the jump-function framework's result and the code
/// growth integration costs. Because integration makes call paths
/// explicit, it can exceed the framework's precision (the paper
/// acknowledges this) — at multiplicative code size.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_INLINING_H
#define IPCP_CORE_INLINING_H

#include "core/Pipeline.h"

namespace ipcp {

/// Knobs for the inliner.
struct InlineOptions {
  /// Only integrate callees at most this many instructions long.
  unsigned MaxCalleeInstructions = 200;

  /// Stop when the module exceeds this factor of its original size.
  double MaxGrowthFactor = 8.0;

  /// Integration rounds (each round exposes the next call depth).
  unsigned MaxRounds = 4;

  /// Drop procedures unreachable from the entry after integration (the
  /// integrated copies subsume them), so growth numbers are honest.
  bool RemoveDeadProcedures = true;

  const char *EntryProcedure = "main";
};

/// What inlineCalls did.
struct InlineResult {
  unsigned CallsInlined = 0;
  unsigned RoundsRun = 0;
  unsigned ProceduresRemoved = 0;
  unsigned InstructionsBefore = 0;
  unsigned InstructionsAfter = 0;
};

/// Integrates call sites in \p M (mutating it) bottom-up until the caps
/// bite. Recursive callees (SCC members and self-calls) are never
/// integrated. Preserves observable behavior (property-tested against
/// the interpreter).
InlineResult inlineCalls(Module &M, const InlineOptions &Opts = {});

/// Inlines exactly one call site; exposed for tests and surgical use.
/// \p Call must be a site inside \p Caller whose callee is a different,
/// non-recursive procedure. Returns the continuation block.
BasicBlock *inlineCallSite(Module &M, Procedure &Caller, CallInst *Call);

/// The Wegman–Zadeck-style pipeline measured against the framework:
/// clone \p M, integrate, then run *intraprocedural-only* constant
/// propagation over the result.
struct IntegrationResult {
  InlineResult Inlining;
  /// Constant references found in the integrated program. Note the code
  /// was duplicated, so this counts references in a larger program —
  /// exactly the trade the approach makes.
  unsigned ConstantRefs = 0;
  unsigned EntryConstants = 0;
};

IntegrationResult runIntegrationBasedIPCP(const Module &M,
                                          const InlineOptions &Opts = {});

} // namespace ipcp

#endif // IPCP_CORE_INLINING_H
