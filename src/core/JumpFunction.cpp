//===- core/JumpFunction.cpp ----------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/JumpFunction.h"

#include <algorithm>
#include <set>

using namespace ipcp;

std::string SymExpr::str() const {
  switch (TheKind) {
  case Kind::Const:
    return std::to_string(C);
  case Kind::Formal:
    return Var->getName();
  case Kind::Binary:
    return "(" + L->str() + " " + binaryOpSpelling(BinOp) + " " + R->str() +
           ")";
  case Kind::Unary:
    return "(" + std::string(unaryOpSpelling(UnOp)) + L->str() + ")";
  }
  return "?";
}

size_t SymExprContext::hashNode(const SymExpr &E) {
  auto Mix = [](size_t H, size_t V) {
    H ^= V + 0x9E3779B97F4A7C15ULL + (H << 6) + (H >> 2);
    return H;
  };
  size_t H = static_cast<size_t>(E.getKind());
  switch (E.getKind()) {
  case SymExpr::Kind::Const:
    H = Mix(H, std::hash<ConstantValue>()(E.getConst()));
    break;
  case SymExpr::Kind::Formal:
    H = Mix(H, std::hash<uint64_t>()(E.getFormal()->getId()));
    break;
  case SymExpr::Kind::Binary:
    H = Mix(H, static_cast<size_t>(E.getBinaryOp()));
    // Children are interned; their dense ids identify them structurally.
    H = Mix(H, E.getLHS()->id().rawValue());
    H = Mix(H, E.getRHS()->id().rawValue());
    break;
  case SymExpr::Kind::Unary:
    H = Mix(H, static_cast<size_t>(E.getUnaryOp()));
    H = Mix(H, E.getLHS()->id().rawValue());
    break;
  }
  return H;
}

bool SymExprContext::sameNode(const SymExpr &A, const SymExpr &B) {
  if (A.getKind() != B.getKind())
    return false;
  switch (A.getKind()) {
  case SymExpr::Kind::Const:
    return A.getConst() == B.getConst();
  case SymExpr::Kind::Formal:
    return A.getFormal() == B.getFormal();
  case SymExpr::Kind::Binary:
    // Children are interned, so pointer equality is structural equality.
    return A.getBinaryOp() == B.getBinaryOp() && A.getLHS() == B.getLHS() &&
           A.getRHS() == B.getRHS();
  case SymExpr::Kind::Unary:
    return A.getUnaryOp() == B.getUnaryOp() && A.getLHS() == B.getLHS();
  }
  return false;
}

void SymExprContext::rehash(size_t NewSlotCount) {
  assert((NewSlotCount & (NewSlotCount - 1)) == 0 && "slot count not 2^k");
  Slots.assign(NewSlotCount, ExprId::InvalidIndex);
  SlotMask = NewSlotCount - 1;
  for (const SymExpr *E : Nodes) {
    size_t Slot = hashNode(*E) & SlotMask;
    while (Slots[Slot] != ExprId::InvalidIndex)
      Slot = (Slot + 1) & SlotMask;
    Slots[Slot] = E->id().rawValue();
  }
}

const SymExpr *SymExprContext::intern(const SymExpr &Node) {
  if (Slots.empty())
    rehash(64);
  size_t Slot = hashNode(Node) & SlotMask;
  while (Slots[Slot] != ExprId::InvalidIndex) {
    const SymExpr *Candidate = Nodes.at(ExprId(Slots[Slot]));
    if (sameNode(Node, *Candidate))
      return Candidate;
    Slot = (Slot + 1) & SlotMask;
  }

  SymExpr *Stable = NodeArena.create<SymExpr>(Node);
  ExprId Id = ExprId::fromIndex(Nodes.size());
  Stable->Id = Id;
  Nodes[Id] = Stable;
  Slots[Slot] = Id.rawValue();
  // Keep the load factor under 3/4 so linear probes stay short.
  if (Nodes.size() * 4 >= Slots.size() * 3)
    rehash(Slots.size() * 2);
  return Stable;
}

const SymExpr *SymExprContext::getConst(ConstantValue V) {
  SymExpr Node;
  Node.TheKind = SymExpr::Kind::Const;
  Node.C = V;
  Node.Size = 1;
  return intern(Node);
}

const SymExpr *SymExprContext::getFormal(Variable *Var) {
  assert(Var && Var->isScalar() && "formal nodes name scalar variables");
  SymExpr Node;
  Node.TheKind = SymExpr::Kind::Formal;
  Node.Var = Var;
  Node.Size = 1;
  return intern(Node);
}

int SymExprContext::compare(const SymExpr *A, const SymExpr *B) {
  if (A == B)
    return 0;
  if (A->getKind() != B->getKind())
    return A->getKind() < B->getKind() ? -1 : 1;
  switch (A->getKind()) {
  case SymExpr::Kind::Const:
    if (A->getConst() != B->getConst())
      return A->getConst() < B->getConst() ? -1 : 1;
    return 0;
  case SymExpr::Kind::Formal:
    if (A->getFormal()->getId() != B->getFormal()->getId())
      return A->getFormal()->getId() < B->getFormal()->getId() ? -1 : 1;
    return 0;
  case SymExpr::Kind::Binary: {
    if (A->getBinaryOp() != B->getBinaryOp())
      return A->getBinaryOp() < B->getBinaryOp() ? -1 : 1;
    if (int C = compare(A->getLHS(), B->getLHS()))
      return C;
    return compare(A->getRHS(), B->getRHS());
  }
  case SymExpr::Kind::Unary:
    if (A->getUnaryOp() != B->getUnaryOp())
      return A->getUnaryOp() < B->getUnaryOp() ? -1 : 1;
    return compare(A->getLHS(), B->getLHS());
  }
  return 0;
}

const SymExpr *SymExprContext::getBinary(BinaryOp Op, const SymExpr *L,
                                         const SymExpr *R) {
  if (!L || !R)
    return nullptr;

  // Constant folding; a fold that would trap at runtime is bottom.
  if (L->isConst() && R->isConst()) {
    if (auto Folded = foldBinary(Op, L->getConst(), R->getConst()))
      return getConst(*Folded);
    return nullptr;
  }

  // Safe value-preserving identities.
  if (Op == BinaryOp::Add) {
    if (L->isConst() && L->getConst() == 0)
      return R;
    if (R->isConst() && R->getConst() == 0)
      return L;
  }
  if (Op == BinaryOp::Sub) {
    if (R->isConst() && R->getConst() == 0)
      return L;
    if (L == R)
      return getConst(0);
  }
  if (Op == BinaryOp::Mul) {
    if (L->isConst() && L->getConst() == 1)
      return R;
    if (R->isConst() && R->getConst() == 1)
      return L;
    if ((L->isConst() && L->getConst() == 0) ||
        (R->isConst() && R->getConst() == 0))
      return getConst(0);
  }
  if ((Op == BinaryOp::CmpEq || Op == BinaryOp::CmpLe ||
       Op == BinaryOp::CmpGe) &&
      L == R)
    return getConst(1);
  if ((Op == BinaryOp::CmpNe || Op == BinaryOp::CmpLt ||
       Op == BinaryOp::CmpGt) &&
      L == R)
    return getConst(0);

  // Canonical operand order for commutative operators: constants last
  // (so `a * 2` keeps its source reading), ties broken structurally.
  if (isCommutativeOp(Op)) {
    auto ConstRank = [](const SymExpr *E) { return E->isConst() ? 1 : 0; };
    if (ConstRank(L) > ConstRank(R) ||
        (ConstRank(L) == ConstRank(R) && compare(R, L) < 0))
      std::swap(L, R);
  }

  if (L->size() + R->size() + 1 > MaxNodes)
    return nullptr; // too complex: decline (bottom)

  SymExpr Node;
  Node.TheKind = SymExpr::Kind::Binary;
  Node.BinOp = Op;
  Node.L = L;
  Node.R = R;
  Node.Size = L->size() + R->size() + 1;
  return intern(Node);
}

const SymExpr *SymExprContext::getUnary(UnaryOp Op, const SymExpr *X) {
  if (!X)
    return nullptr;
  if (X->isConst()) {
    if (auto Folded = foldUnary(Op, X->getConst()))
      return getConst(*Folded);
    return nullptr;
  }
  // --x == x.
  if (Op == UnaryOp::Neg && X->getKind() == SymExpr::Kind::Unary &&
      X->getUnaryOp() == UnaryOp::Neg)
    return X->getLHS();
  if (X->size() + 1 > MaxNodes)
    return nullptr;

  SymExpr Node;
  Node.TheKind = SymExpr::Kind::Unary;
  Node.UnOp = Op;
  Node.L = X;
  Node.Size = X->size() + 1;
  return intern(Node);
}

const SymExpr *SymExprContext::substitute(
    const SymExpr *E,
    const std::function<const SymExpr *(Variable *)> &Map) {
  if (!E)
    return nullptr;
  switch (E->getKind()) {
  case SymExpr::Kind::Const:
    return E;
  case SymExpr::Kind::Formal:
    return Map(E->getFormal());
  case SymExpr::Kind::Binary: {
    const SymExpr *L = substitute(E->getLHS(), Map);
    if (!L)
      return nullptr;
    const SymExpr *R = substitute(E->getRHS(), Map);
    return getBinary(E->getBinaryOp(), L, R);
  }
  case SymExpr::Kind::Unary:
    return getUnary(E->getUnaryOp(), substitute(E->getLHS(), Map));
  }
  return nullptr;
}

JumpFunction::JumpFunction(const SymExpr *E) : Expr(E) {
  if (!Expr)
    return;
  VariableSet Vars;
  std::vector<const SymExpr *> Stack{Expr};
  while (!Stack.empty()) {
    const SymExpr *Node = Stack.back();
    Stack.pop_back();
    switch (Node->getKind()) {
    case SymExpr::Kind::Const:
      break;
    case SymExpr::Kind::Formal:
      Vars.insert(Node->getFormal());
      break;
    case SymExpr::Kind::Binary:
      Stack.push_back(Node->getLHS());
      Stack.push_back(Node->getRHS());
      break;
    case SymExpr::Kind::Unary:
      Stack.push_back(Node->getLHS());
      break;
    }
  }
  Support.assign(Vars.begin(), Vars.end());
}

LatticeValue JumpFunction::evaluate(const LatticeEnv &Env) const {
  return evaluateVia([&Env](Variable *Var) {
    auto It = Env.find(Var);
    return It == Env.end() ? LatticeValue::top() : It->second;
  });
}

std::string JumpFunction::str() const {
  return isBottom() ? "_|_" : Expr->str();
}
