//===- core/JumpFunction.h - Jump function representation -------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The context-independent representation of jump functions (paper
/// Section 4.1: "The resulting expression tree is converted into a
/// context-independent representation and stored in the list of jump
/// functions for the parameters of this call site").
///
/// A SymExpr is an immutable, hash-consed expression tree over the entry
/// values of a procedure's extended formal parameters (formals plus
/// referenced globals). The SymExprContext arena folds constants during
/// construction, canonicalizes commutative operands, applies a few safe
/// algebraic identities, and caps tree size; a null SymExpr pointer means
/// lattice bottom everywhere in the core library.
///
/// A JumpFunction wraps an expression (or bottom) together with its
/// support — "the exact set of the caller's formal parameters whose
/// values on entry are used in the computation" (paper Section 2). The
/// same representation serves all four forward jump function classes and
/// the return jump functions; the classes differ only in which expressions
/// the builders keep (see ForwardJumpFunctions.h).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_JUMPFUNCTION_H
#define IPCP_CORE_JUMPFUNCTION_H

#include "core/Lattice.h"
#include "ir/Variable.h"
#include "support/Arena.h"
#include "support/ConstantMath.h"
#include "support/Ids.h"

#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipcp {

/// One immutable node of a symbolic expression tree.
class SymExpr {
public:
  enum class Kind { Const, Formal, Binary, Unary };

  Kind getKind() const { return TheKind; }

  ConstantValue getConst() const {
    assert(TheKind == Kind::Const && "not a constant node");
    return C;
  }
  Variable *getFormal() const {
    assert(TheKind == Kind::Formal && "not a formal node");
    return Var;
  }
  BinaryOp getBinaryOp() const {
    assert(TheKind == Kind::Binary && "not a binary node");
    return BinOp;
  }
  UnaryOp getUnaryOp() const {
    assert(TheKind == Kind::Unary && "not a unary node");
    return UnOp;
  }
  const SymExpr *getLHS() const {
    assert(TheKind != Kind::Const && TheKind != Kind::Formal);
    return L;
  }
  const SymExpr *getRHS() const {
    assert(TheKind == Kind::Binary && "no RHS on non-binary node");
    return R;
  }

  /// Number of nodes in this tree (for the size cap).
  unsigned size() const { return Size; }

  /// Dense handle of this node within its owning SymExprContext; nodes
  /// are numbered in interning order, so the id doubles as a creation
  /// timestamp.
  ExprId id() const { return Id; }

  bool isConst() const { return TheKind == Kind::Const; }
  bool isFormal() const { return TheKind == Kind::Formal; }

  /// Renders e.g. "((n * 2) + 1)".
  std::string str() const;

private:
  friend class SymExprContext;
  SymExpr() = default;

  Kind TheKind = Kind::Const;
  ConstantValue C = 0;
  Variable *Var = nullptr;
  BinaryOp BinOp = BinaryOp::Add;
  UnaryOp UnOp = UnaryOp::Neg;
  const SymExpr *L = nullptr;
  const SymExpr *R = nullptr;
  unsigned Size = 1;
  ExprId Id;
};

/// Hash-consing arena for SymExprs; this is the "global value numbering"
/// identity: two structurally equal expressions are the same pointer.
///
/// Nodes are bump-allocated from an Arena (trivially destructible, so the
/// arena may drop them without running destructors) and indexed by ExprId
/// through a flat side table; the hash-cons set is an open-addressing
/// table of ExprId slots probed linearly, replacing the node-keyed
/// unordered_map that dominated jump-function construction in profiles.
class SymExprContext {
public:
  /// \p MaxNodes bounds expression size; constructions that would exceed
  /// it return null (bottom). The paper observes that polynomial jump
  /// functions stay small in practice; the cap keeps pathological
  /// compositions linear.
  explicit SymExprContext(unsigned MaxNodes = 64) : MaxNodes(MaxNodes) {}

  SymExprContext(const SymExprContext &) = delete;
  SymExprContext &operator=(const SymExprContext &) = delete;

  const SymExpr *getConst(ConstantValue V);
  const SymExpr *getFormal(Variable *Var);

  /// Folds constants, applies safe identities (x+0, x*1, x*0, x-x, ...),
  /// canonicalizes commutative operand order. Null operands or foldings
  /// that trap (overflow, division by zero) yield null.
  const SymExpr *getBinary(BinaryOp Op, const SymExpr *L, const SymExpr *R);
  const SymExpr *getUnary(UnaryOp Op, const SymExpr *X);

  /// Replaces each formal through \p Map (returning null for unmapped
  /// formals is allowed and propagates bottom). Used to compose return
  /// jump functions into caller expressions.
  const SymExpr *
  substitute(const SymExpr *E,
             const std::function<const SymExpr *(Variable *)> &Map);

  /// Structural total order (deterministic across runs).
  static int compare(const SymExpr *A, const SymExpr *B);

  unsigned maxNodes() const { return MaxNodes; }
  size_t uniqueExprCount() const { return Nodes.size(); }

  /// The node behind a handle. Valid for every id returned by this
  /// context; ids are dense, so node(ExprId::fromIndex(i)) enumerates the
  /// interned population in creation order.
  const SymExpr *node(ExprId Id) const { return Nodes.at(Id); }

private:
  const SymExpr *intern(const SymExpr &Node);
  static size_t hashNode(const SymExpr &Node);
  static bool sameNode(const SymExpr &A, const SymExpr &B);
  void rehash(size_t NewSlotCount);

  unsigned MaxNodes;
  Arena NodeArena;
  IdMap<ExprId, const SymExpr *> Nodes; ///< handle -> interned node
  /// Open-addressing hash-cons table: each slot holds an ExprId raw value
  /// or ExprId::InvalidIndex when empty; power-of-two sized.
  std::vector<uint32_t> Slots;
  size_t SlotMask = 0;
};

/// Environment assigning lattice values to a procedure's extended
/// formals; anything unmapped is treated as top (not yet lowered).
using LatticeEnv = std::unordered_map<Variable *, LatticeValue>;

/// A forward or return jump function: an expression over entry values,
/// or bottom.
class JumpFunction {
public:
  /// Bottom.
  JumpFunction() = default;

  /// Wraps \p E (null = bottom) and computes its support.
  explicit JumpFunction(const SymExpr *E);

  static JumpFunction bottom() { return JumpFunction(); }
  static JumpFunction constant(SymExprContext &Ctx, ConstantValue V) {
    return JumpFunction(Ctx.getConst(V));
  }

  bool isBottom() const { return Expr == nullptr; }
  bool isConstant() const { return Expr && Expr->isConst(); }
  bool isPassThrough() const { return Expr && Expr->isFormal(); }

  const SymExpr *expr() const { return Expr; }

  /// The support set (paper Section 2), ID-ordered.
  const std::vector<Variable *> &support() const { return Support; }

  /// Evaluates under \p Env per the paper's rules: bottom if the function
  /// is bottom or any support value is bottom; top if any support value
  /// is still top; otherwise the folded constant (folding failure is
  /// bottom).
  LatticeValue evaluate(const LatticeEnv &Env) const;

  /// Same rules as evaluate(), but support values are read through
  /// \p Lookup (Variable* -> LatticeValue). The dense-VAL propagator uses
  /// this to evaluate straight out of its per-procedure value vectors
  /// without materializing a hash-map environment per visit.
  template <typename LookupFn>
  LatticeValue evaluateVia(const LookupFn &Lookup) const {
    if (isBottom())
      return LatticeValue::bottom();
    bool AnyTop = false;
    for (Variable *Var : Support) {
      LatticeValue V = Lookup(Var);
      if (V.isBottom())
        return LatticeValue::bottom();
      if (V.isTop())
        AnyTop = true;
    }
    if (AnyTop)
      return LatticeValue::top();
    if (auto Result = evalExprVia(Expr, Lookup))
      return LatticeValue::constant(*Result);
    return LatticeValue::bottom();
  }

  /// "_|_", "42", or the expression text.
  std::string str() const;

private:
  /// Folds \p E given constant support values (Lookup must yield a
  /// constant for every formal in the tree).
  template <typename LookupFn>
  static std::optional<ConstantValue> evalExprVia(const SymExpr *E,
                                                  const LookupFn &Lookup) {
    switch (E->getKind()) {
    case SymExpr::Kind::Const:
      return E->getConst();
    case SymExpr::Kind::Formal: {
      LatticeValue V = Lookup(E->getFormal());
      assert(V.isConstant() && "evalExprVia requires constant support");
      return V.getConstant();
    }
    case SymExpr::Kind::Binary: {
      auto L = evalExprVia(E->getLHS(), Lookup);
      if (!L)
        return std::nullopt;
      auto R = evalExprVia(E->getRHS(), Lookup);
      if (!R)
        return std::nullopt;
      return foldBinary(E->getBinaryOp(), *L, *R);
    }
    case SymExpr::Kind::Unary: {
      auto V = evalExprVia(E->getLHS(), Lookup);
      if (!V)
        return std::nullopt;
      return foldUnary(E->getUnaryOp(), *V);
    }
    }
    return std::nullopt;
  }

  const SymExpr *Expr = nullptr;
  std::vector<Variable *> Support;
};

} // namespace ipcp

#endif // IPCP_CORE_JUMPFUNCTION_H
