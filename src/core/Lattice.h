//===- core/Lattice.h - The constant propagation lattice --------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-level constant-propagation lattice of Figure 1 in the paper
/// (Callahan, Cooper, Kennedy & Torczon 1986; restated in Grove & Torczon
/// 1993):
///
/// \code
///            T                T  /\ any  = any
///      ... -1 0 1 2 ...      ci /\ cj   = ci  if ci == cj
///            _|_             ci /\ cj   = _|_ if ci != cj
///                           _|_ /\ any  = _|_
/// \endcode
///
/// T (top) means "no evidence yet" — kept only by parameters of procedures
/// that are never called. A constant c means "always has value c on
/// entry". _|_ (bottom) means "not known to be constant". Although the
/// constant level is infinite, the lattice has depth two: any value can be
/// lowered at most twice, which bounds the interprocedural propagation
/// (paper Section 3.1.5).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_LATTICE_H
#define IPCP_CORE_LATTICE_H

#include "support/ConstantMath.h"

#include <cassert>
#include <string>

namespace ipcp {

/// One element of the constant propagation lattice.
class LatticeValue {
public:
  /// Constructs T, the initial optimistic approximation.
  constexpr LatticeValue() : TheKind(Kind::Top), Value(0) {}

  static constexpr LatticeValue top() { return LatticeValue(); }
  static constexpr LatticeValue bottom() {
    return LatticeValue(Kind::Bottom, 0);
  }
  static constexpr LatticeValue constant(ConstantValue V) {
    return LatticeValue(Kind::Constant, V);
  }

  constexpr bool isTop() const { return TheKind == Kind::Top; }
  constexpr bool isConstant() const { return TheKind == Kind::Constant; }
  constexpr bool isBottom() const { return TheKind == Kind::Bottom; }

  constexpr ConstantValue getConstant() const {
    assert(isConstant() && "getConstant on non-constant lattice value");
    return Value;
  }

  /// The meet operation of Figure 1.
  friend constexpr LatticeValue meet(LatticeValue A, LatticeValue B) {
    if (A.isTop())
      return B;
    if (B.isTop())
      return A;
    if (A.isBottom() || B.isBottom())
      return bottom();
    return A.Value == B.Value ? A : bottom();
  }

  friend constexpr bool operator==(LatticeValue A, LatticeValue B) {
    return A.TheKind == B.TheKind &&
           (A.TheKind != Kind::Constant || A.Value == B.Value);
  }
  friend constexpr bool operator!=(LatticeValue A, LatticeValue B) {
    return !(A == B);
  }

  /// Lattice order: true when this is strictly below \p Other
  /// (bottom < constant < top).
  constexpr bool strictlyBelow(LatticeValue Other) const {
    if (Other.isTop())
      return !isTop();
    if (Other.isConstant())
      return isBottom();
    return false;
  }

  /// Height of this element: T=2, constant=1, bottom=0. A value can be
  /// lowered at most its height many times.
  constexpr unsigned height() const {
    switch (TheKind) {
    case Kind::Top:
      return 2;
    case Kind::Constant:
      return 1;
    case Kind::Bottom:
      return 0;
    }
    return 0;
  }

  std::string str() const {
    if (isTop())
      return "T";
    if (isBottom())
      return "_|_";
    return std::to_string(Value);
  }

private:
  enum class Kind { Top, Constant, Bottom };

  constexpr LatticeValue(Kind TheKind, ConstantValue Value)
      : TheKind(TheKind), Value(Value) {}

  Kind TheKind;
  ConstantValue Value;
};

} // namespace ipcp

#endif // IPCP_CORE_LATTICE_H
