//===- core/Options.h - Analysis configuration ------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of one interprocedural constant propagation run — the
/// axes of the paper's study: which forward jump function class to build
/// (Section 3.1), whether to use return jump functions (Section 3.2),
/// whether interprocedural MOD information is available (Table 3), and the
/// purely intraprocedural baseline.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_OPTIONS_H
#define IPCP_CORE_OPTIONS_H

#include "support/ResourceGuard.h"

namespace ipcp {

class SummaryCache;

/// The four forward jump function classes, in increasing order of power.
/// Each class propagates a superset of the constants of its predecessor
/// (paper Section 3.1) — a property the test suite checks on random
/// programs.
enum class JumpFunctionKind {
  /// `c` only when the actual is a literal constant at the call site.
  /// Propagates along single call-graph edges; misses globals entirely.
  Literal,
  /// `gcp(y, s)`: intraprocedural constant propagation + value numbering
  /// + MOD information. Still single-edge, but sees constant globals.
  IntraproceduralConstant,
  /// Additionally `z` when the actual is the unmodified entry value of
  /// caller formal z — constants flow through procedure bodies, along
  /// paths of any length. The paper's recommended cost/precision point.
  PassThrough,
  /// Additionally any polynomial over the caller's entry formals (all
  /// integer operations).
  Polynomial,
};

/// Printable name ("literal", "intra", "pass-through", "polynomial").
const char *jumpFunctionKindName(JumpFunctionKind Kind);

/// Which interprocedural propagation engine solves for the VAL sets.
/// Both are sound; they trade precision against context-table cost.
enum class PropagationEngine {
  /// The paper's 1986 framework: one VAL set per procedure, every
  /// caller's bindings met into it. Fast, and the baseline every other
  /// engine is measured against.
  Jump,
  /// Value contexts (Padhye & Khedker): tabulate (procedure, entry VAL
  /// vector) pairs so each distinct calling pattern is evaluated
  /// exactly, then meet the tabulated contexts per procedure. Never
  /// reports fewer constants than the jump engine (the final result is
  /// refined against a baseline jump-engine run), and strictly more on
  /// programs where caller-merging destroys correlated formals. See
  /// docs/CONTEXTS.md.
  Contexts,
};

/// Printable name ("jump", "contexts").
const char *propagationEngineName(PropagationEngine Engine);

/// How the call-graph propagator orders its work. Both schedules reach
/// the same fixpoint (the lattice meet is order-independent); they differ
/// only in how many procedure visits it takes.
enum class PropagationSchedule {
  /// Condense the call graph into SCCs (Tarjan) and sweep the condensation
  /// in reverse post-order, iterating only within each component. Acyclic
  /// regions converge in one visit per procedure.
  SCC,
  /// The naive all-procedures FIFO worklist; kept as the measurable
  /// baseline for the scheduling benchmark.
  FIFO,
};

/// One analysis configuration.
struct IPCPOptions {
  JumpFunctionKind ForwardKind = JumpFunctionKind::Polynomial;

  /// Build and use return jump functions (paper Section 3.2).
  bool UseReturnJumpFunctions = true;

  /// Use interprocedural MOD information. When false, every call is
  /// assumed to modify every by-reference actual and every global —
  /// Table 3 column 1.
  bool UseModInformation = true;

  /// Skip interprocedural propagation entirely; only intraprocedural
  /// constants (with MOD information) are found — Table 3 column 4.
  bool IntraproceduralOnly = false;

  /// Expression-tree size cap for polynomial jump functions.
  unsigned MaxExprNodes = 64;

  /// Build jump functions over a gated-single-assignment view of each
  /// procedure (paper Section 4.2): a two-way phi whose controlling
  /// branch condition is a known constant resolves to its live side,
  /// never considering the dead assignment. The paper observes this
  /// achieves the complete-propagation results in a single pass.
  bool UseGatedSSA = false;

  /// Work order for the call-graph propagator (ignored by the binding
  /// multigraph propagator, which has its own edge-level worklist).
  PropagationSchedule Schedule = PropagationSchedule::SCC;

  /// Use the binding-multigraph worklist (the paper's cited alternative
  /// formulation [7]) instead of the per-procedure call-graph worklist.
  /// Both compute the same fixpoint; the binding graph re-evaluates only
  /// the jump functions whose support actually changed. Applies to the
  /// Jump engine only; Engine == Contexts takes precedence.
  bool UseBindingGraphPropagator = false;

  /// Which propagation engine to run (--engine=jump|contexts). The
  /// contexts engine runs cache-less (like the binding-graph propagator,
  /// the summary format does not model it) and ignores Schedule — its
  /// worklist is over contexts, not procedures.
  PropagationEngine Engine = PropagationEngine::Jump;

  /// Context-count budget for the contexts engine. Once this many
  /// contexts have been tabulated, new entry vectors are met into one
  /// mutable summary context per procedure instead of spawning fresh
  /// contexts — precision degrades gracefully toward the 1986
  /// caller-merge behavior and termination stays guaranteed even for
  /// recursion that would otherwise enumerate unbounded entry vectors
  /// (f(n) calling f(n+1)). Reported as ctx_budget_trips.
  unsigned MaxContexts = 4096;

  /// Name of the entry procedure; its globals start at their initial
  /// value (zero) on the virtual entry edge.
  const char *EntryProcedure = "main";

  /// Persistent summary store for incremental analysis (null = every run
  /// is cold). Owned by the caller; runIPCP reads entries whose keys
  /// still validate, stages fresh ones, and commits the staged set only
  /// when the run finishes un-degraded. Ignored (left untouched) by
  /// configurations the cache does not model: IntraproceduralOnly runs,
  /// the binding-graph propagator, and the FIFO schedule fall back to
  /// cold analysis. See docs/INCREMENTAL.md.
  SummaryCache *Cache = nullptr;

  /// Resource budgets for the run (all unlimited by default). When a
  /// budget trips, the pipeline degrades gracefully: it stops the
  /// offending stage, keeps whatever sound partial results exist, and
  /// tags IPCPResult::Status degraded instead of looping or crashing.
  /// Callers that span several pipeline calls under one deadline pass an
  /// external ResourceGuard instead (see runIPCP).
  ResourceLimits Limits;
};

} // namespace ipcp

#endif // IPCP_CORE_OPTIONS_H
