//===- core/Pipeline.cpp --------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "analysis/SCCP.h"
#include "core/BindingGraph.h"
#include "core/ValueNumbering.h"
#include "support/Casting.h"
#include "support/Trace.h"

#include <unordered_set>

using namespace ipcp;

namespace {

/// Builds the SCCP CallOut hook that evaluates return jump functions with
/// the current lattice values of the call's actuals and of the globals at
/// the call point — the paper's substitution-time evaluation.
std::function<LatticeValue(const CallOutInst *,
                           const std::function<LatticeValue(const Value *)> &)>
makeCallOutHook(const ReturnJumpFunctions *RJFs, const SSAResult *SSA) {
  if (!RJFs)
    return nullptr;
  return [RJFs, SSA](const CallOutInst *Out,
                     const std::function<LatticeValue(const Value *)> &Get)
             -> LatticeValue {
    const CallInst *Call = Out->getCall();
    const Procedure *Callee = Call->getCallee();
    Variable *Var = Out->getVariable();

    // Unique modification source, as in SymbolicLifter::liftCallOut.
    const JumpFunction *RJF = nullptr;
    unsigned Sources = 0;
    for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
      if (Call->getActual(I).ByRefLoc != Var)
        continue;
      if (const JumpFunction *JF =
              RJFs->find(Callee, Callee->formals()[I])) {
        RJF = JF;
        ++Sources;
      }
    }
    if (Var->isGlobal())
      if (const JumpFunction *JF = RJFs->find(Callee, Var)) {
        RJF = JF;
        ++Sources;
      }
    if (Sources != 1 || !RJF || RJF->isBottom())
      return LatticeValue::bottom();

    auto CallIn = SSA->CallInValues.find(const_cast<CallInst *>(Call));
    LatticeEnv Env;
    for (Variable *Support : RJF->support()) {
      LatticeValue V = LatticeValue::bottom();
      if (Support->isFormal() && Support->getParent() == Callee) {
        unsigned Index = Support->getFormalIndex();
        if (Index < Call->getNumActuals())
          V = Get(Call->getActualValue(Index));
      } else if (Support->isGlobal() && CallIn != SSA->CallInValues.end()) {
        auto It = CallIn->second.find(Support);
        if (It != CallIn->second.end())
          V = Get(It->second);
      }
      Env[Support] = V;
    }
    return RJF->evaluate(Env);
  };
}

} // namespace

namespace {

/// Copies the guard's latched outcome into \p Result and emits the
/// degradation counters (guard_limit_trips / guard_deadline_trips).
void recordGuardOutcome(IPCPResult &Result, const ResourceGuard &Guard) {
  Result.Status = Guard.status();
  if (Guard.tripped()) {
    Result.Stats.add("guard_limit_trips");
    if (Guard.deadlineTripped())
      Result.Stats.add("guard_deadline_trips");
  }
}

} // namespace

IPCPResult ipcp::runIPCP(const Module &M, const IPCPOptions &Opts,
                         ResourceGuard *Guard) {
  IPCPResult Result;
  Timer Total;
  ScopedTraceSpan RunSpan("ipcp");

  // A run without an external guard still budgets itself from the
  // options; a guard that already tripped (earlier stage, shared
  // deadline) short-circuits to an empty degraded result.
  ResourceGuard LocalGuard(Opts.Limits);
  if (!Guard)
    Guard = &LocalGuard;
  Guard->checkIRInstructions(M.instructionCount(), "analysis");
  Guard->checkDeadline("analysis");
  if (Guard->tripped()) {
    recordGuardOutcome(Result, *Guard);
    return Result;
  }

  // Stage 0: scratch clone + structural analyses.
  std::unique_ptr<Module> Scratch = M.clone();
  Timer CGTimer;
  CallGraph CG(*Scratch);
  Result.Stats.add("time_callgraph_us", uint64_t(CGTimer.seconds() * 1e6));
  Result.Stats.add("cg_procedures", CG.procedures().size());
  uint64_t CallSites = 0, RecursiveProcs = 0;
  for (Procedure *P : CG.procedures()) {
    CallSites += CG.callSitesIn(P).size();
    if (CG.isRecursive(P))
      ++RecursiveProcs;
  }
  Result.Stats.add("cg_call_sites", CallSites);
  Result.Stats.add("cg_sccs", CG.sccsBottomUp().size());
  Result.Stats.add("cg_recursive_procs", RecursiveProcs);

  Timer ModRefTimer;
  ModRefInfo MRI = Opts.UseModInformation ? ModRefInfo::compute(*Scratch, CG)
                                          : ModRefInfo::worstCase(*Scratch);
  Result.Stats.add("time_modref_us", uint64_t(ModRefTimer.seconds() * 1e6));

  // Intraprocedural analysis: SSA per procedure. The paper observes this
  // dominates total analysis cost; bench_costs.cpp confirms.
  Timer IntraTimer;
  SSAMap SSA;
  {
    ScopedTraceSpan SSASpan("ssa-construction");
    for (const std::unique_ptr<Procedure> &P : Scratch->procedures()) {
      traceEvent("ssa.proc", P->getName());
      SSA.emplace(P.get(), constructSSA(*P, MRI));
    }
  }
  Result.Stats.add("time_intraprocedural_us",
                   uint64_t(IntraTimer.seconds() * 1e6));

  SymExprContext Ctx(Opts.MaxExprNodes);

  // Stage 1: return jump functions (bottom-up).
  std::unique_ptr<ReturnJumpFunctions> RJFs;
  bool WantRJFs = Opts.UseReturnJumpFunctions && !Opts.IntraproceduralOnly;
  Timer RJFTimer;
  if (WantRJFs) {
    RJFs = std::make_unique<ReturnJumpFunctions>(
        ReturnJumpFunctions::build(CG, MRI, SSA, Ctx, Opts.UseGatedSSA));
    Result.Stats.add("rjf_known", RJFs->knownCount());
    Result.Stats.add("rjf_entries", RJFs->entryCount());
  }
  Result.Stats.add("time_return_jf_us", uint64_t(RJFTimer.seconds() * 1e6));

  // Stage 2 + 3: forward jump functions, then propagation.
  ConstantsMap CM;
  Guard->checkDeadline("analysis");
  if (!Opts.IntraproceduralOnly && !Guard->tripped()) {
    Timer FJFTimer;
    ForwardJumpFunctions FJFs = ForwardJumpFunctions::build(
        CG, MRI, SSA, RJFs.get(), Ctx, Opts.ForwardKind, Opts.UseGatedSSA);
    Result.Stats.add("time_forward_jf_us",
                     uint64_t(FJFTimer.seconds() * 1e6));
    ForwardJumpFunctions::Stats JS = FJFs.stats();
    Result.Stats.add("jf_bottom", JS.Bottom);
    Result.Stats.add("jf_constant", JS.Constant);
    Result.Stats.add("jf_passthrough", JS.PassThrough);
    Result.Stats.add("jf_polynomial", JS.Polynomial);

    Timer PropTimer;
    PropagatorStats PS;
    CM = Opts.UseBindingGraphPropagator
             ? propagateConstantsBindingGraph(CG, MRI, FJFs, Opts, &PS, Guard)
             : propagateConstants(CG, MRI, FJFs, Opts, &PS, Guard);
    Result.Stats.add("time_propagation_us",
                     uint64_t(PropTimer.seconds() * 1e6));
    Result.Stats.add("prop_visits", PS.ProcVisits);
    Result.Stats.add("prop_evaluations", PS.JumpFunctionEvaluations);
    Result.Stats.add("prop_lowerings", PS.Lowerings);
    Result.Stats.add("prop_revisits", PS.Revisits);
    Result.Stats.add("prop_val_entries", CM.totalEntries());
    Result.Stats.add("prop_val_constants", CM.totalConstants());
  }

  // Stage 4: record the results — seed each procedure's SCCP with its
  // CONSTANTS set, count constant variable references, and emit
  // substitution facts for the original module.
  Timer RecordTimer;
  ScopedTraceSpan RecordSpan("record-results");
  for (const std::unique_ptr<Procedure> &P : Scratch->procedures()) {
    // A deadline interrupts recording between procedures (the tail of
    // Result.Procs is simply missing); other budget trips — propagation
    // evaluations — still let recording finish, yielding sound
    // intraprocedural-quality results for every procedure.
    if (!Guard->tripped())
      Guard->checkDeadline("record");
    if (Guard->deadlineTripped())
      break;
    const SSAResult &ProcSSA = SSA.at(P.get());

    SCCPOptions SCCPOpts;
    for (const auto &[Var, Value] : CM.constantsOf(P.get()))
      SCCPOpts.EntrySeeds[Var] = LatticeValue::constant(Value);
    SCCPOpts.CallOutEval = makeCallOutHook(RJFs.get(), &ProcSSA);
    traceEvent("record.proc", P->getName());
    SCCPResult SCCP = runSCCP(*P, SCCPOpts);
    Result.Stats.add("sccp_runs");
    Result.Stats.add("sccp_constant_values", SCCP.constantValueCount());
    uint64_t ExecBlocks = 0;
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks())
      if (SCCP.isExecutable(BB.get()))
        ++ExecBlocks;
    Result.Stats.add("sccp_executable_blocks", ExecBlocks);

    ProcedureResult PR;
    PR.Name = P->getName();
    for (const auto &[Var, Value] : CM.constantsOf(P.get())) {
      PR.EntryConstants.push_back({Var->getName(), Value});
      // "Known but irrelevant": the constant variable is never
      // referenced in this procedure's body.
      bool Referenced = false;
      for (const SSAResult::ReplacedLoad &Load : ProcSSA.Loads)
        if (Load.Var == Var) {
          Referenced = true;
          break;
        }
      if (!Referenced)
        ++PR.IrrelevantConstants;
    }
    Result.TotalEntryConstants += PR.EntryConstants.size();

    for (const SSAResult::ReplacedLoad &Load : ProcSSA.Loads) {
      if (!SCCP.isExecutable(Load.Block))
        continue;
      LatticeValue LV = SCCP.valueOf(Load.Replacement);
      if (!LV.isConstant())
        continue;
      ++PR.ConstantRefs;
      Result.Facts.ConstantLoads[Load.LoadId] = LV.getConstant();
    }
    Result.TotalConstantRefs += PR.ConstantRefs;

    for (const std::unique_ptr<BasicBlock> &BB : P->blocks()) {
      if (!SCCP.isExecutable(BB.get()))
        continue;
      const auto *CBr = dyn_cast_or_null<CondBranchInst>(BB->getTerminator());
      if (!CBr)
        continue;
      LatticeValue Cond = SCCP.valueOf(CBr->getCond());
      if (Cond.isConstant())
        Result.Facts.FoldedBranches[CBr->getId()] = Cond.getConstant() != 0;
    }

    Result.Procs.push_back(std::move(PR));
  }
  Result.Stats.add("time_record_us", uint64_t(RecordTimer.seconds() * 1e6));
  Result.Stats.add("time_total_us", uint64_t(Total.seconds() * 1e6));
  Result.Stats.add("constants_found", Result.TotalEntryConstants);
  Result.Stats.add("constant_refs", Result.TotalConstantRefs);
  for (const ProcedureResult &PR : Result.Procs)
    Result.Stats.add("constants_known_irrelevant", PR.IrrelevantConstants);
  Result.Stats.add("unique_exprs", Ctx.uniqueExprCount());
  recordGuardOutcome(Result, *Guard);

  return Result;
}

CompletePropagationResult
ipcp::runCompletePropagation(const Module &M, const IPCPOptions &Opts,
                             unsigned MaxRounds, ResourceGuard *Guard) {
  CompletePropagationResult Result;
  ScopedTraceSpan CompleteSpan("complete-propagation");
  std::unique_ptr<Module> Working = M.clone();
  std::unordered_set<uint64_t> CountedLoads;

  // One guard spans every round, so a deadline bounds the whole
  // experiment rather than restarting per round.
  ResourceGuard LocalGuard(Opts.Limits);
  if (!Guard)
    Guard = &LocalGuard;

  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    ScopedTraceSpan RoundSpan("round", std::to_string(Round + 1));
    IPCPResult RoundResult = runIPCP(*Working, Opts, Guard);
    ++Result.Rounds;
    for (const auto &[LoadId, Value] : RoundResult.Facts.ConstantLoads)
      CountedLoads.insert(LoadId);
    Result.TotalConstantRefs = CountedLoads.size();

    TransformStats TS = applyFacts(*Working, RoundResult.Facts);
    Result.BlocksRemoved += TS.BlocksRemoved;
    Result.Stats.merge(RoundResult.Stats);
    Result.Stats.add("cp_loads_replaced", TS.LoadsReplaced);
    Result.Stats.add("cp_branches_folded", TS.BranchesFolded);
    Result.Stats.add("cp_blocks_removed", TS.BlocksRemoved);
    Result.Stats.add("cp_insts_removed", TS.InstsRemoved);
    Result.FinalRound = std::move(RoundResult);

    // A tripped budget ends the experiment with the rounds completed so
    // far (the facts already applied stay sound).
    if (Guard->tripped()) {
      Result.Status = Guard->status();
      break;
    }

    // Paper: "In each case, only one pass of dead code elimination was
    // needed" — we loop until quiescence anyway.
    if (!TS.foundDeadCode())
      break;
  }
  Result.Stats.add("cp_rounds", Result.Rounds);
  return Result;
}
