//===- core/Pipeline.cpp --------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/Pipeline.h"

#include "analysis/SCCP.h"
#include "core/BindingGraph.h"
#include "core/SummaryCache.h"
#include "core/ValueNumbering.h"
#include "support/Casting.h"
#include "support/StableHash.h"
#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <unordered_set>

using namespace ipcp;

namespace {

/// Builds the SCCP CallOut hook that evaluates return jump functions with
/// the current lattice values of the call's actuals and of the globals at
/// the call point — the paper's substitution-time evaluation.
std::function<LatticeValue(const CallOutInst *,
                           const std::function<LatticeValue(const Value *)> &)>
makeCallOutHook(const ReturnJumpFunctions *RJFs, const SSAResult *SSA) {
  if (!RJFs)
    return nullptr;
  return [RJFs, SSA](const CallOutInst *Out,
                     const std::function<LatticeValue(const Value *)> &Get)
             -> LatticeValue {
    const CallInst *Call = Out->getCall();
    const Procedure *Callee = Call->getCallee();
    Variable *Var = Out->getVariable();

    // Unique modification source, as in SymbolicLifter::liftCallOut.
    const JumpFunction *RJF = nullptr;
    unsigned Sources = 0;
    for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
      if (Call->getActual(I).ByRefLoc != Var)
        continue;
      if (const JumpFunction *JF =
              RJFs->find(Callee, Callee->formals()[I])) {
        RJF = JF;
        ++Sources;
      }
    }
    if (Var->isGlobal())
      if (const JumpFunction *JF = RJFs->find(Callee, Var)) {
        RJF = JF;
        ++Sources;
      }
    if (Sources != 1 || !RJF || RJF->isBottom())
      return LatticeValue::bottom();

    auto CallIn = SSA->CallInValues.find(const_cast<CallInst *>(Call));
    LatticeEnv Env;
    for (Variable *Support : RJF->support()) {
      LatticeValue V = LatticeValue::bottom();
      if (Support->isFormal() && Support->getParent() == Callee) {
        unsigned Index = Support->getFormalIndex();
        if (Index < Call->getNumActuals())
          V = Get(Call->getActualValue(Index));
      } else if (Support->isGlobal() && CallIn != SSA->CallInValues.end()) {
        auto It = CallIn->second.find(Support);
        if (It != CallIn->second.end())
          V = Get(It->second);
      }
      Env[Support] = V;
    }
    return RJF->evaluate(Env);
  };
}

} // namespace

namespace {

/// Copies the guard's latched outcome into \p Result and emits the
/// degradation counters (guard_limit_trips / guard_deadline_trips).
void recordGuardOutcome(IPCPResult &Result, const ResourceGuard &Guard) {
  Result.Status = Guard.status();
  if (Guard.tripped()) {
    Result.Stats.add("guard_limit_trips");
    if (Guard.deadlineTripped())
      Result.Stats.add("guard_deadline_trips");
  }
}

/// Drives the summary-cache variant of stages 1-4 (docs/INCREMENTAL.md).
/// Phase A replaces the cold SSA + return-JF + forward-JF stages with a
/// single bottom-up SCC sweep that either restores a component's
/// summaries from validated cache entries or rebuilds them from scratch;
/// the resulting jump-function tables are indistinguishable from a cold
/// build. buildPlan() then derives the propagation adoption closure, and
/// replay()/finish() handle the record stage and restocking the cache.
class IncrementalEngine {
public:
  IncrementalEngine(SummaryCache &Cache, const CallGraph &CG,
                    const ModRefInfo &MRI, SymExprContext &Ctx,
                    const IPCPOptions &Opts, StatisticSet &Stats,
                    ResourceGuard &Guard, SSAMap &SSA,
                    ReturnJumpFunctions *RJFs, ForwardJumpFunctions &FJFs)
      : Cache(Cache), CG(CG), MRI(MRI), Ctx(Ctx), Opts(Opts), Stats(Stats),
        Guard(Guard), SSA(SSA), RJFs(RJFs), FJFs(FJFs) {
    Cache.beginRun();
  }

  /// SSA on demand: cache hits skip SSA construction entirely, but the
  /// record stage still needs it for non-replayed procedures.
  const SSAResult &ensureSSA(Procedure *P) {
    auto It = SSA.find(P);
    if (It != SSA.end())
      return It->second;
    traceEvent("ssa.proc", P->getName());
    return SSA.emplace(P, constructSSA(*P, MRI)).first->second;
  }

  /// The bottom-up sweep. Body hashes come first (on the pristine,
  /// pre-SSA clone — constructSSA mutates bodies); then each SCC either
  /// adopts its cached summaries wholesale or rebuilds its members in the
  /// exact cold order, so dirty lifts only ever consult final callee
  /// tables.
  void phaseA() {
    Timer PhaseTimer;
    uint64_t Hits = 0, Misses = 0, Invalidations = 0;

    for (Procedure *P : CG.procedures())
      BodyHex.emplace(P, stableHashHex(hashProcedureBody(*P)));
    for (Procedure *P : CG.procedures()) {
      std::vector<std::pair<std::string, std::string>> Callers;
      for (Procedure *Q : CG.callers(P))
        Callers.push_back({Q->getName(), BodyHex.at(Q)});
      std::sort(Callers.begin(), Callers.end());
      StableHasher H;
      H.u32(uint32_t(Callers.size()));
      for (const auto &[Name, Hex] : Callers) {
        H.str(Name);
        H.str(Hex);
      }
      CallersHex.emplace(P, stableHashHex(H.result()));
    }

    const std::vector<std::vector<Procedure *>> &SCCs = CG.sccsBottomUp();
    SCCKeyHex.resize(SCCs.size());
    HitSCC.assign(SCCs.size(), 0);
    for (size_t C = 0; C != SCCs.size(); ++C) {
      if (!Guard.tripped())
        Guard.checkDeadline("analysis");
      if (Guard.tripped())
        break;
      const std::vector<Procedure *> &Members = SCCs[C];
      SCCKeyHex[C] = sccKey(Members, C);
      bool Hit = tryAdoptSummaries(Members, C);
      HitSCC[C] = Hit ? 1 : 0;
      for (Procedure *P : Members) {
        if (Hit) {
          ++Hits;
          continue;
        }
        ++Misses;
        if (Cache.find(P->getName()))
          ++Invalidations;
      }
      if (!Hit)
        buildDirty(Members);
      // Content hashes only exist for finalized components, which is all
      // later (caller) components ever look at.
      for (Procedure *P : Members)
        ContentHex.emplace(P, contentHash(P));
    }

    Stats.add("time_intraprocedural_us",
              uint64_t(PhaseTimer.seconds() * 1e6));
    Stats.add("time_return_jf_us", uint64_t(0));
    if (RJFs) {
      Stats.add("rjf_known", RJFs->knownCount());
      Stats.add("rjf_entries", RJFs->entryCount());
    }
    Stats.add("cache_hits", Hits);
    Stats.add("cache_misses", Misses);
    Stats.add("cache_invalidations", Invalidations);
    Stats.add("cache_val_adopted", uint64_t(0));
    Stats.add("cache_record_reused", uint64_t(0));
    Stats.add("cache_load_failures", uint64_t(Cache.loadFailed() ? 1 : 0));
  }

  /// The adoption closure for propagation (see Propagator.h). Walks
  /// components caller-first (descending index) so each component can
  /// require that every external caller component was itself adopted.
  const IncrementalPropagationPlan *buildPlan() {
    if (Opts.Schedule != PropagationSchedule::SCC || Guard.tripped())
      return nullptr;
    const std::vector<std::vector<Procedure *>> &SCCs = CG.sccsBottomUp();
    Plan.AdoptSCC.assign(SCCs.size(), 0);
    uint64_t Adopted = 0;
    for (size_t C = SCCs.size(); C-- != 0;) {
      if (!HitSCC[C])
        continue;
      bool Ok = true;
      std::vector<std::pair<Procedure *,
                            std::vector<std::pair<Variable *, LatticeValue>>>>
          Vals;
      for (Procedure *P : SCCs[C]) {
        const CacheEntry *E = Cache.find(P->getName());
        if (!E || !E->HasVal || E->CallersHash != CallersHex.at(P)) {
          Ok = false;
          break;
        }
        for (Procedure *Q : CG.callers(P))
          if (CG.sccIndex(Q) != C && !Plan.AdoptSCC[CG.sccIndex(Q)]) {
            Ok = false;
            break;
          }
        if (!Ok)
          break;
        std::vector<std::pair<Variable *, LatticeValue>> V;
        if (!parseVal(*E, P, V)) {
          Ok = false;
          break;
        }
        Vals.push_back({P, std::move(V)});
      }
      if (!Ok)
        continue;
      Plan.AdoptSCC[C] = 1;
      Adopted += SCCs[C].size();
      for (auto &[P, V] : Vals) {
        Plan.CachedVal.emplace(P, std::move(V));
        const CacheEntry *E = Cache.find(P->getName());
        if (E->HasRecord)
          ReplaySet.insert(P);
      }
    }
    Stats.add("cache_val_adopted", Adopted);
    return &Plan;
  }

  /// Replays the record stage for an adopted procedure from its cached
  /// counts. The entry constants are recomputed from the (identical)
  /// fixpoint; substitution facts are deliberately not replayed — see
  /// IPCPResult::UsedCache. Returns false when \p P must run the real
  /// record stage.
  bool replay(Procedure *P, const ConstantsMap &CM, IPCPResult &Result) {
    if (!ReplaySet.count(P))
      return false;
    const CacheEntry *E = Cache.find(P->getName());
    traceEvent("record.proc", P->getName());
    Result.Stats.add("sccp_runs");
    Result.Stats.add("sccp_constant_values", E->SCCPConstantValues);
    Result.Stats.add("sccp_executable_blocks", E->SCCPExecutableBlocks);
    Result.Stats.add("cache_record_reused");

    ProcedureResult PR;
    PR.Name = P->getName();
    for (const auto &[Var, Value] : CM.constantsOf(P))
      PR.EntryConstants.push_back({Var->getName(), Value});
    PR.ConstantRefs = unsigned(E->ConstantRefs);
    PR.IrrelevantConstants = unsigned(E->IrrelevantConstants);
    Result.TotalEntryConstants += PR.EntryConstants.size();
    Result.TotalConstantRefs += PR.ConstantRefs;
    noteRecord(P, E->ConstantRefs, E->IrrelevantConstants,
               E->SCCPConstantValues, E->SCCPExecutableBlocks);
    Result.Procs.push_back(std::move(PR));
    return true;
  }

  /// Remembers one procedure's record-stage counts for staging.
  void noteRecord(Procedure *P, uint64_t Refs, uint64_t Irrelevant,
                  uint64_t SCCPValues, uint64_t SCCPBlocks) {
    Records[P] = {Refs, Irrelevant, SCCPValues, SCCPBlocks};
  }

  /// Stages this run's entries and commits them iff the run finished
  /// un-degraded — a tripped budget must never poison the store.
  void finish(const ConstantsMap &CM, bool Commit) {
    if (!Commit) {
      Cache.finishRun(false);
      return;
    }
    for (Procedure *P : CG.procedures()) {
      CacheEntry E;
      E.Name = P->getName();
      E.BodyHash = BodyHex.at(P);
      E.SCCKey = SCCKeyHex[CG.sccIndex(P)];
      E.CallersHash = CallersHex.at(P);
      E.ModFormals = modFormalsOf(P);
      E.ModGlobals = globalNames(MRI.modifiedGlobals(P));
      E.ExtGlobals = globalNames(MRI.extendedGlobals(P));
      E.ReturnJFs = rjfPairsOf(P);
      for (CallInst *Site : CG.callSitesIn(P)) {
        const CallSiteJumpFunctions &JFs = FJFs.at(Site);
        CacheEntry::SiteJFs S;
        S.Callee = Site->getCallee()->getName();
        for (const JumpFunction &JF : JFs.Formals)
          S.Formals.push_back(SummaryCache::exprString(JF.expr()));
        for (const auto &[G, JF] : JFs.Globals)
          S.Globals.push_back(
              {SummaryCache::varRef(G), SummaryCache::exprString(JF.expr())});
        E.ForwardJFs.push_back(std::move(S));
      }
      E.HasVal = true;
      const ConstantsMap::Row &Row = CM.row(P);
      for (size_t I = 0, N = Row.Vars.size(); I != N; ++I) {
        LatticeValue LV = Row.Vals[I];
        if (LV.isTop())
          continue;
        E.Val.push_back({SummaryCache::varRef(Row.Vars[I]),
                         LV.isConstant()
                             ? "c:" + std::to_string(LV.getConstant())
                             : std::string("bot")});
      }
      std::sort(E.Val.begin(), E.Val.end());
      auto RC = Records.find(P);
      if (RC != Records.end()) {
        E.HasRecord = true;
        E.ConstantRefs = RC->second.Refs;
        E.IrrelevantConstants = RC->second.Irrelevant;
        E.SCCPConstantValues = RC->second.SCCPValues;
        E.SCCPExecutableBlocks = RC->second.SCCPBlocks;
      }
      Cache.stage(std::move(E));
    }
    Cache.finishRun(true);
  }

private:
  struct RecordCounts {
    uint64_t Refs = 0;
    uint64_t Irrelevant = 0;
    uint64_t SCCPValues = 0;
    uint64_t SCCPBlocks = 0;
  };

  std::vector<unsigned> modFormalsOf(Procedure *P) const {
    std::vector<unsigned> Out;
    for (unsigned I = 0, N = unsigned(P->formals().size()); I != N; ++I)
      if (MRI.formalMayBeModified(P, I))
        Out.push_back(I);
    return Out;
  }

  static std::vector<std::string> globalNames(const VariableSet &Set) {
    std::vector<std::string> Out;
    for (Variable *G : Set)
      Out.push_back(G->getName());
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  std::vector<std::pair<std::string, std::string>>
  rjfPairsOf(Procedure *P) const {
    std::vector<std::pair<std::string, std::string>> Out;
    if (!RJFs)
      return Out;
    if (const auto *Entries = RJFs->entriesOf(P))
      for (const auto &[Var, JF] : *Entries)
        Out.push_back(
            {SummaryCache::varRef(Var), SummaryCache::exprString(JF.expr())});
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  /// What callers consume of \p P: the MOD summary and the return jump
  /// functions — deliberately *not* the body hash, so an edit that leaves
  /// them unchanged stops invalidating at the direct callers (early
  /// cutoff).
  std::string contentHash(Procedure *P) const {
    StableHasher H;
    H.u8(0x4d); // 'M'
    std::vector<unsigned> Mod = modFormalsOf(P);
    H.u32(uint32_t(Mod.size()));
    for (unsigned I : Mod)
      H.u32(I);
    for (const std::vector<std::string> &Names :
         {globalNames(MRI.modifiedGlobals(P)),
          globalNames(MRI.extendedGlobals(P))}) {
      H.u32(uint32_t(Names.size()));
      for (const std::string &Name : Names)
        H.str(Name);
    }
    H.u8(0x52); // 'R'
    std::vector<std::pair<std::string, std::string>> RJF = rjfPairsOf(P);
    H.u32(uint32_t(RJF.size()));
    for (const auto &[Ref, Expr] : RJF) {
      H.str(Ref);
      H.str(Expr);
    }
    return stableHashHex(H.result());
  }

  /// SCCKey: the member bodies plus the *content* of every external
  /// direct callee (all finalized — bottom-up order).
  std::string sccKey(const std::vector<Procedure *> &Members, size_t C) {
    std::vector<std::pair<std::string, std::string>> Bodies;
    for (Procedure *P : Members)
      Bodies.push_back({P->getName(), BodyHex.at(P)});
    std::sort(Bodies.begin(), Bodies.end());
    std::vector<std::pair<std::string, std::string>> External;
    for (Procedure *P : Members)
      for (Procedure *Q : CG.callees(P))
        if (CG.sccIndex(Q) != C)
          External.push_back({Q->getName(), ContentHex.at(Q)});
    std::sort(External.begin(), External.end());
    External.erase(std::unique(External.begin(), External.end()),
                   External.end());
    StableHasher H;
    H.u8(0x53); // 'S'
    H.u32(uint32_t(Bodies.size()));
    for (const auto &[Name, Hex] : Bodies) {
      H.str(Name);
      H.str(Hex);
    }
    H.u8(0x45); // 'E'
    H.u32(uint32_t(External.size()));
    for (const auto &[Name, Hex] : External) {
      H.str(Name);
      H.str(Hex);
    }
    return stableHashHex(H.result());
  }

  /// Validates and deserializes every member's entry, committing into the
  /// live tables only when the whole component succeeds (all-or-nothing:
  /// a partially restored component could leave a lift consulting a
  /// half-built table).
  bool tryAdoptSummaries(const std::vector<Procedure *> &Members, size_t C) {
    struct Restored {
      Procedure *P = nullptr;
      std::vector<std::pair<Variable *, JumpFunction>> RJFEntries;
      std::vector<CallSiteJumpFunctions> Sites;
    };
    std::vector<Restored> Pending;
    for (Procedure *P : Members) {
      const CacheEntry *E = Cache.find(P->getName());
      if (!E || E->BodyHash != BodyHex.at(P) || E->SCCKey != SCCKeyHex[C])
        return false;
      Restored R;
      R.P = P;
      if (!deserializeEntry(*E, P, R.RJFEntries, R.Sites))
        return false;
      Pending.push_back(std::move(R));
    }
    for (Restored &R : Pending) {
      if (RJFs)
        for (auto &[Var, JF] : R.RJFEntries)
          RJFs->insert(R.P, Var, std::move(JF));
      for (CallSiteJumpFunctions &S : R.Sites)
        FJFs.insert(std::move(S));
    }
    return true;
  }

  /// Resolves one entry against the current module, also cross-checking
  /// the cached MOD summary against the fresh ModRef results (they are
  /// implied by the keys, but a corrupted store must degrade, not
  /// mislead).
  bool deserializeEntry(
      const CacheEntry &E, Procedure *P,
      std::vector<std::pair<Variable *, JumpFunction>> &RJFEntries,
      std::vector<CallSiteJumpFunctions> &Sites) const {
    if (E.ModFormals != modFormalsOf(P) ||
        E.ModGlobals != globalNames(MRI.modifiedGlobals(P)) ||
        E.ExtGlobals != globalNames(MRI.extendedGlobals(P)))
      return false;

    if (RJFs) {
      // The entry set must be exactly the modifiable set the table would
      // have been seeded with.
      std::vector<std::string> Expected;
      for (unsigned I : E.ModFormals)
        Expected.push_back("F" + std::to_string(I));
      for (const std::string &Name : E.ModGlobals)
        Expected.push_back("G:" + Name);
      std::sort(Expected.begin(), Expected.end());
      std::vector<std::string> Got;
      for (const auto &[Ref, Text] : E.ReturnJFs)
        Got.push_back(Ref);
      std::sort(Got.begin(), Got.end());
      if (Got != Expected)
        return false;
      for (const auto &[Ref, Text] : E.ReturnJFs) {
        Variable *Var = SummaryCache::resolveVarRef(Ref, P);
        if (!Var)
          return false;
        bool Ok = false;
        const SymExpr *Expr = SummaryCache::parseExpr(Text, P, Ctx, &Ok);
        if (!Ok)
          return false;
        RJFEntries.push_back({Var, JumpFunction(Expr)});
      }
    } else if (!E.ReturnJFs.empty()) {
      return false;
    }

    const std::vector<CallInst *> &SiteList = CG.callSitesIn(P);
    if (E.ForwardJFs.size() != SiteList.size())
      return false;
    for (size_t I = 0; I != SiteList.size(); ++I) {
      CallInst *Site = SiteList[I];
      const CacheEntry::SiteJFs &SE = E.ForwardJFs[I];
      Procedure *Callee = Site->getCallee();
      if (!Callee || SE.Callee != Callee->getName())
        return false;
      if (SE.Formals.size() != size_t(Site->getNumActuals()))
        return false;
      CallSiteJumpFunctions JFs;
      JFs.Site = Site;
      JFs.Caller = P;
      for (const std::string &Text : SE.Formals) {
        bool Ok = false;
        const SymExpr *Expr = SummaryCache::parseExpr(Text, P, Ctx, &Ok);
        if (!Ok)
          return false;
        JFs.Formals.push_back(JumpFunction(Expr));
      }
      const VariableSet &Ext = MRI.extendedGlobals(Callee);
      if (SE.Globals.size() != Ext.size())
        return false;
      size_t GI = 0;
      for (Variable *G : Ext) {
        const auto &[Ref, Text] = SE.Globals[GI++];
        if (SummaryCache::resolveVarRef(Ref, P) != G)
          return false;
        bool Ok = false;
        const SymExpr *Expr = SummaryCache::parseExpr(Text, P, Ctx, &Ok);
        if (!Ok)
          return false;
        JFs.Globals.push_back({G, JumpFunction(Expr)});
      }
      Sites.push_back(std::move(JFs));
    }
    return true;
  }

  /// Cold rebuild of one component, in the exact cold-path order: SSA for
  /// every member, bottoms seeded for every member (so recursive lifts
  /// see "modified, unknown"), then lifts, then forward jump functions.
  void buildDirty(const std::vector<Procedure *> &Members) {
    for (Procedure *P : Members)
      ensureSSA(P);
    if (RJFs) {
      for (Procedure *P : Members)
        RJFs->seedBottoms(P, MRI);
      for (Procedure *P : Members)
        RJFs->liftProcedure(P, SSA.at(P), Ctx, Opts.UseGatedSSA);
    }
    for (Procedure *P : Members)
      FJFs.buildProcedure(P, CG, MRI, SSA.at(P), RJFs, Ctx, Opts.ForwardKind,
                          Opts.UseGatedSSA);
  }

  /// Decodes one cached VAL set; every entry must be one of the owner's
  /// extended formals with a well-formed value.
  bool parseVal(const CacheEntry &E, Procedure *P,
                std::vector<std::pair<Variable *, LatticeValue>> &Out) const {
    const VariableSet &Ext = MRI.extendedGlobals(P);
    for (const auto &[Ref, Text] : E.Val) {
      Variable *Var = SummaryCache::resolveVarRef(Ref, P);
      if (!Var || Var->isLocal())
        return false;
      if (Var->isGlobal() && !Ext.count(Var))
        return false;
      LatticeValue LV;
      if (Text == "bot") {
        LV = LatticeValue::bottom();
      } else if (Text.size() > 2 && Text[0] == 'c' && Text[1] == ':') {
        errno = 0;
        char *End = nullptr;
        long long V = std::strtoll(Text.c_str() + 2, &End, 10);
        if (errno != 0 || !End || *End != '\0')
          return false;
        LV = LatticeValue::constant(V);
      } else {
        return false;
      }
      Out.push_back({Var, LV});
    }
    return true;
  }

  SummaryCache &Cache;
  const CallGraph &CG;
  const ModRefInfo &MRI;
  SymExprContext &Ctx;
  const IPCPOptions &Opts;
  StatisticSet &Stats;
  ResourceGuard &Guard;
  SSAMap &SSA;
  ReturnJumpFunctions *RJFs;
  ForwardJumpFunctions &FJFs;

  std::unordered_map<Procedure *, std::string> BodyHex;
  std::unordered_map<Procedure *, std::string> CallersHex;
  std::unordered_map<Procedure *, std::string> ContentHex;
  std::vector<std::string> SCCKeyHex;
  std::vector<char> HitSCC;
  IncrementalPropagationPlan Plan;
  std::unordered_set<const Procedure *> ReplaySet;
  std::unordered_map<const Procedure *, RecordCounts> Records;
};

} // namespace

IPCPResult ipcp::runIPCP(const Module &M, const IPCPOptions &Opts,
                         ResourceGuard *Guard) {
  IPCPResult Result;
  Timer Total;
  ScopedTraceSpan RunSpan("ipcp");

  // A run without an external guard still budgets itself from the
  // options; a guard that already tripped (earlier stage, shared
  // deadline) short-circuits to an empty degraded result.
  ResourceGuard LocalGuard(Opts.Limits);
  if (!Guard)
    Guard = &LocalGuard;
  Guard->checkIRInstructions(M.instructionCount(), "analysis");
  Guard->checkDeadline("analysis");
  if (Guard->tripped()) {
    recordGuardOutcome(Result, *Guard);
    return Result;
  }

  // Stage 0: scratch clone + structural analyses.
  std::unique_ptr<Module> Scratch = M.clone();
  Timer CGTimer;
  CallGraph CG(*Scratch);
  Result.Stats.add("time_callgraph_us", uint64_t(CGTimer.seconds() * 1e6));
  Result.Stats.add("cg_procedures", CG.procedures().size());
  uint64_t CallSites = 0, RecursiveProcs = 0;
  for (Procedure *P : CG.procedures()) {
    CallSites += CG.callSitesIn(P).size();
    if (CG.isRecursive(P))
      ++RecursiveProcs;
  }
  Result.Stats.add("cg_call_sites", CallSites);
  Result.Stats.add("cg_sccs", CG.sccsBottomUp().size());
  Result.Stats.add("cg_recursive_procs", RecursiveProcs);

  Timer ModRefTimer;
  ModRefInfo MRI = Opts.UseModInformation ? ModRefInfo::compute(*Scratch, CG)
                                          : ModRefInfo::worstCase(*Scratch);
  Result.Stats.add("time_modref_us", uint64_t(ModRefTimer.seconds() * 1e6));

  // The cache only models the configurations the summary format covers;
  // others silently run the ordinary cold path (see Options.h).
  SummaryCache *Cache = Opts.Cache;
  if (Cache && (Opts.IntraproceduralOnly || Opts.UseBindingGraphPropagator ||
                Opts.Engine == PropagationEngine::Contexts))
    Cache = nullptr;
  Result.UsedCache = Cache != nullptr;

  SymExprContext Ctx(Opts.MaxExprNodes);
  SSAMap SSA;
  std::unique_ptr<ReturnJumpFunctions> RJFs;
  ForwardJumpFunctions FJFs;
  bool WantRJFs = Opts.UseReturnJumpFunctions && !Opts.IntraproceduralOnly;
  std::unique_ptr<IncrementalEngine> Inc;

  if (!Cache) {
    // Intraprocedural analysis: SSA per procedure. The paper observes
    // this dominates total analysis cost; bench_costs.cpp confirms.
    Timer IntraTimer;
    {
      ScopedTraceSpan SSASpan("ssa-construction");
      for (const std::unique_ptr<Procedure> &P : Scratch->procedures()) {
        traceEvent("ssa.proc", P->getName());
        SSA.emplace(P.get(), constructSSA(*P, MRI));
      }
    }
    Result.Stats.add("time_intraprocedural_us",
                     uint64_t(IntraTimer.seconds() * 1e6));

    // Stage 1: return jump functions (bottom-up).
    Timer RJFTimer;
    if (WantRJFs) {
      RJFs = std::make_unique<ReturnJumpFunctions>(
          ReturnJumpFunctions::build(CG, MRI, SSA, Ctx, Opts.UseGatedSSA));
      Result.Stats.add("rjf_known", RJFs->knownCount());
      Result.Stats.add("rjf_entries", RJFs->entryCount());
    }
    Result.Stats.add("time_return_jf_us", uint64_t(RJFTimer.seconds() * 1e6));
  } else {
    // Incremental mode: one bottom-up sweep restores or rebuilds each
    // component's summaries (stages 1 + 2 fused per component; whole
    // phase reported as time_intraprocedural_us, with zero JF timers so
    // warm and cold runs emit identical counter key sets).
    if (WantRJFs)
      RJFs = std::make_unique<ReturnJumpFunctions>();
    Inc = std::make_unique<IncrementalEngine>(*Cache, CG, MRI, Ctx, Opts,
                                              Result.Stats, *Guard, SSA,
                                              RJFs.get(), FJFs);
    Inc->phaseA();
  }

  // Stage 2 + 3: forward jump functions, then propagation.
  ConstantsMap CM;
  Guard->checkDeadline("analysis");
  if (!Opts.IntraproceduralOnly && !Guard->tripped()) {
    if (!Inc) {
      Timer FJFTimer;
      FJFs = ForwardJumpFunctions::build(CG, MRI, SSA, RJFs.get(), Ctx,
                                         Opts.ForwardKind, Opts.UseGatedSSA);
      Result.Stats.add("time_forward_jf_us",
                       uint64_t(FJFTimer.seconds() * 1e6));
    } else {
      Result.Stats.add("time_forward_jf_us", uint64_t(0));
    }
    ForwardJumpFunctions::Stats JS = FJFs.stats();
    Result.Stats.add("jf_bottom", JS.Bottom);
    Result.Stats.add("jf_constant", JS.Constant);
    Result.Stats.add("jf_passthrough", JS.PassThrough);
    Result.Stats.add("jf_polynomial", JS.Polynomial);

    Timer PropTimer;
    PropagatorStats PS;
    const IncrementalPropagationPlan *Plan = Inc ? Inc->buildPlan() : nullptr;
    if (Opts.Engine == PropagationEngine::Contexts)
      CM = propagateConstantsContexts(CG, MRI, FJFs, Opts, &PS, Guard,
                                      &Result.ContextStudy);
    else
      CM = Opts.UseBindingGraphPropagator
               ? propagateConstantsBindingGraph(CG, MRI, FJFs, Opts, &PS,
                                                Guard)
               : propagateConstants(CG, MRI, FJFs, Opts, &PS, Guard, Plan);
    Result.Stats.add("time_propagation_us",
                     uint64_t(PropTimer.seconds() * 1e6));
    Result.Stats.add("prop_visits", PS.ProcVisits);
    Result.Stats.add("prop_evaluations", PS.JumpFunctionEvaluations);
    Result.Stats.add("prop_lowerings", PS.Lowerings);
    Result.Stats.add("prop_revisits", PS.Revisits);
    Result.Stats.add("prop_val_entries", CM.totalEntries());
    Result.Stats.add("prop_val_constants", CM.totalConstants());
    if (Result.ContextStudy.Enabled) {
      const ContextEngineStats &CS = Result.ContextStudy;
      Result.Stats.add("ctx_contexts", CS.Contexts);
      Result.Stats.add("ctx_summary_contexts", CS.SummaryContexts);
      Result.Stats.add("ctx_evaluations", CS.Evaluations);
      Result.Stats.add("ctx_reused", CS.Reused);
      Result.Stats.add("ctx_merges", CS.Merges);
      Result.Stats.add("ctx_entry_bytes", CS.EntryBytes);
      Result.Stats.add("ctx_budget_trips", uint64_t(CS.BudgetTripped ? 1 : 0));
      Result.Stats.add("ctx_baseline_val_constants", CS.BaselineValConstants);
    }
  }

  // Stage 4: record the results — seed each procedure's SCCP with its
  // CONSTANTS set, count constant variable references, and emit
  // substitution facts for the original module.
  Timer RecordTimer;
  ScopedTraceSpan RecordSpan("record-results");
  for (const std::unique_ptr<Procedure> &P : Scratch->procedures()) {
    // A deadline interrupts recording between procedures (the tail of
    // Result.Procs is simply missing); other budget trips — propagation
    // evaluations — still let recording finish, yielding sound
    // intraprocedural-quality results for every procedure.
    if (!Guard->tripped())
      Guard->checkDeadline("record");
    if (Guard->deadlineTripped())
      break;
    if (Inc && Inc->replay(P.get(), CM, Result))
      continue;
    const SSAResult &ProcSSA = Inc ? Inc->ensureSSA(P.get()) : SSA.at(P.get());

    SCCPOptions SCCPOpts;
    for (const auto &[Var, Value] : CM.constantsOf(P.get()))
      SCCPOpts.EntrySeeds[Var] = LatticeValue::constant(Value);
    SCCPOpts.CallOutEval = makeCallOutHook(RJFs.get(), &ProcSSA);
    traceEvent("record.proc", P->getName());
    SCCPResult SCCP = runSCCP(*P, SCCPOpts);
    Result.Stats.add("sccp_runs");
    Result.Stats.add("sccp_constant_values", SCCP.constantValueCount());
    uint64_t ExecBlocks = 0;
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks())
      if (SCCP.isExecutable(BB.get()))
        ++ExecBlocks;
    Result.Stats.add("sccp_executable_blocks", ExecBlocks);

    ProcedureResult PR;
    PR.Name = P->getName();
    for (const auto &[Var, Value] : CM.constantsOf(P.get())) {
      PR.EntryConstants.push_back({Var->getName(), Value});
      // "Known but irrelevant": the constant variable is never
      // referenced in this procedure's body.
      bool Referenced = false;
      for (const SSAResult::ReplacedLoad &Load : ProcSSA.Loads)
        if (Load.Var == Var) {
          Referenced = true;
          break;
        }
      if (!Referenced)
        ++PR.IrrelevantConstants;
    }
    Result.TotalEntryConstants += PR.EntryConstants.size();

    for (const SSAResult::ReplacedLoad &Load : ProcSSA.Loads) {
      if (!SCCP.isExecutable(Load.Block))
        continue;
      LatticeValue LV = SCCP.valueOf(Load.Replacement);
      if (!LV.isConstant())
        continue;
      ++PR.ConstantRefs;
      Result.Facts.ConstantLoads[Load.LoadId] = LV.getConstant();
    }
    Result.TotalConstantRefs += PR.ConstantRefs;

    for (const std::unique_ptr<BasicBlock> &BB : P->blocks()) {
      if (!SCCP.isExecutable(BB.get()))
        continue;
      const auto *CBr = dyn_cast_or_null<CondBranchInst>(BB->getTerminator());
      if (!CBr)
        continue;
      LatticeValue Cond = SCCP.valueOf(CBr->getCond());
      if (Cond.isConstant())
        Result.Facts.FoldedBranches[CBr->getId()] = Cond.getConstant() != 0;
    }

    if (Inc)
      Inc->noteRecord(P.get(), PR.ConstantRefs, PR.IrrelevantConstants,
                      SCCP.constantValueCount(), ExecBlocks);
    Result.Procs.push_back(std::move(PR));
  }
  if (Inc)
    Inc->finish(CM, !Guard->tripped());
  Result.Stats.add("time_record_us", uint64_t(RecordTimer.seconds() * 1e6));
  Result.Stats.add("time_total_us", uint64_t(Total.seconds() * 1e6));
  Result.Stats.add("constants_found", Result.TotalEntryConstants);
  Result.Stats.add("constant_refs", Result.TotalConstantRefs);
  for (const ProcedureResult &PR : Result.Procs)
    Result.Stats.add("constants_known_irrelevant", PR.IrrelevantConstants);
  Result.Stats.add("unique_exprs", Ctx.uniqueExprCount());
  recordGuardOutcome(Result, *Guard);

  return Result;
}

CompletePropagationResult
ipcp::runCompletePropagation(const Module &M, const IPCPOptions &Opts,
                             unsigned MaxRounds, ResourceGuard *Guard) {
  CompletePropagationResult Result;
  ScopedTraceSpan CompleteSpan("complete-propagation");
  std::unique_ptr<Module> Working = M.clone();
  std::unordered_set<uint64_t> CountedLoads;

  // Replayed procedures contribute no substitution facts, so the
  // analyze-substitute rounds must run cache-less (Pipeline.h).
  IPCPOptions RoundOpts = Opts;
  RoundOpts.Cache = nullptr;

  // One guard spans every round, so a deadline bounds the whole
  // experiment rather than restarting per round.
  ResourceGuard LocalGuard(Opts.Limits);
  if (!Guard)
    Guard = &LocalGuard;

  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    ScopedTraceSpan RoundSpan("round", std::to_string(Round + 1));
    IPCPResult RoundResult = runIPCP(*Working, RoundOpts, Guard);
    ++Result.Rounds;
    for (const auto &[LoadId, Value] : RoundResult.Facts.ConstantLoads)
      CountedLoads.insert(LoadId);
    Result.TotalConstantRefs = CountedLoads.size();

    TransformStats TS = applyFacts(*Working, RoundResult.Facts);
    Result.BlocksRemoved += TS.BlocksRemoved;
    Result.Stats.merge(RoundResult.Stats);
    Result.Stats.add("cp_loads_replaced", TS.LoadsReplaced);
    Result.Stats.add("cp_branches_folded", TS.BranchesFolded);
    Result.Stats.add("cp_blocks_removed", TS.BlocksRemoved);
    Result.Stats.add("cp_insts_removed", TS.InstsRemoved);
    Result.FinalRound = std::move(RoundResult);

    // A tripped budget ends the experiment with the rounds completed so
    // far (the facts already applied stay sound).
    if (Guard->tripped()) {
      Result.Status = Guard->status();
      break;
    }

    // Paper: "In each case, only one pass of dead code elimination was
    // needed" — we loop until quiescence anyway.
    if (!TS.foundDeadCode())
      break;
  }
  Result.Stats.add("cp_rounds", Result.Rounds);
  return Result;
}
