//===- core/Pipeline.h - End-to-end analysis drivers ------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry points of the library. One runIPCP call executes the
/// four stages of the paper's analyzer (Section 4.1) on a scratch clone
/// of the module:
///
///  1. generation of return jump functions (bottom-up over the call
///     graph, using SSA-based value numbering and MOD information);
///  2. generation of forward jump functions (per call site, of the
///     configured class);
///  3. interprocedural propagation of the VAL sets over the call graph;
///  4. recording the results: CONSTANTS(p) per procedure, plus the
///     substitution metric — the number of source-level variable
///     references proven constant when the interprocedural constants are
///     substituted into each procedure and local (SCCP) propagation
///     re-runs over the seeded body. This is the Metzger-Stroud
///     effectiveness measure the paper reports in Tables 2 and 3.
///
/// runCompletePropagation additionally interleaves dead code elimination
/// and re-runs the analysis from scratch until no new dead code appears
/// (Table 3, "Complete Propagation"). runIPCP with IntraproceduralOnly
/// gives the Table 3 intraprocedural baseline.
///
/// Both drivers are *total*: they honor the resource budgets in
/// IPCPOptions::Limits (or an externally supplied ResourceGuard) and,
/// when a budget trips, stop the offending stage, keep whatever sound
/// partial results exist, and report the trip in IPCPResult::Status
/// instead of looping or crashing.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_PIPELINE_H
#define IPCP_CORE_PIPELINE_H

#include "analysis/DeadCode.h"
#include "core/Options.h"
#include "core/Propagator.h"
#include "core/ValueContexts.h"
#include "support/Statistics.h"

#include <string>
#include <vector>

namespace ipcp {

/// Per-procedure analysis outcome (reported by name: the scratch clone
/// the analysis ran on is destroyed when the run finishes).
struct ProcedureResult {
  std::string Name;

  /// CONSTANTS(p): entry-constant (name, value) pairs, declaration-order
  /// stable.
  std::vector<std::pair<std::string, ConstantValue>> EntryConstants;

  /// Variable references proven constant in this procedure (the
  /// substituted-constant count).
  unsigned ConstantRefs = 0;

  /// Entry constants that are "known but irrelevant" (Metzger & Stroud,
  /// paper Section 4.1): members of CONSTANTS(p) never referenced inside
  /// p, so substituting them changes nothing. Reported separately
  /// because the substitution metric deliberately excludes them.
  unsigned IrrelevantConstants = 0;
};

/// Outcome of one analysis configuration on one program.
struct IPCPResult {
  std::vector<ProcedureResult> Procs;

  /// Sum of ConstantRefs — the number a Table 2/3 cell reports.
  unsigned TotalConstantRefs = 0;

  /// Sum of |CONSTANTS(p)|.
  unsigned TotalEntryConstants = 0;

  /// Substitution facts keyed by clone-stable instruction IDs; applicable
  /// to the original module with applyFacts.
  TransformFacts Facts;

  /// Phase timings (microseconds) and work counters.
  StatisticSet Stats;

  /// True when this run consulted a summary cache (Options::Cache was
  /// set and the configuration is cacheable). The cache_* counters in
  /// Stats and the report's "cache" object are emitted exactly when this
  /// is set. Note: replayed procedures contribute no entries to Facts —
  /// complete propagation therefore always runs cache-less.
  bool UsedCache = false;

  /// Whether the run completed or degraded under a resource budget. A
  /// degraded run's results are sound but partial: propagation trips
  /// discard interprocedural constants entirely (a cut-short iteration
  /// is too optimistic; the contexts engine instead degrades to its
  /// completed 1986 baseline), and record-stage trips leave later
  /// procedures unanalyzed.
  PipelineStatus Status;

  /// Precision/cost figures of the contexts engine (Enabled exactly when
  /// Options::Engine == Contexts ran propagation). Report.cpp emits this
  /// as the context_study block; see docs/CONTEXTS.md.
  ContextEngineStats ContextStudy;

  const ProcedureResult *findProc(const std::string &Name) const {
    for (const ProcedureResult &P : Procs)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }
};

/// Runs one full analysis of \p M under \p Opts. \p M is not modified.
/// When \p Guard is null a run-local guard is created from Opts.Limits;
/// pass an external guard to share one deadline across several pipeline
/// calls (the complete-propagation rounds do this internally).
IPCPResult runIPCP(const Module &M, const IPCPOptions &Opts = {},
                   ResourceGuard *Guard = nullptr);

/// Result of the iterated analyze-substitute-eliminate experiment.
struct CompletePropagationResult {
  /// Analysis rounds executed (1 = no dead code was ever found).
  unsigned Rounds = 0;

  /// Distinct variable references proven constant across all rounds —
  /// comparable to (and never less than) a single run's
  /// TotalConstantRefs.
  unsigned TotalConstantRefs = 0;

  /// Dead blocks removed over all rounds.
  unsigned BlocksRemoved = 0;

  /// Counters merged over every round, plus the cp_* totals (rounds,
  /// loads replaced, branches folded, blocks/instructions removed).
  StatisticSet Stats;

  /// The last round's full result.
  IPCPResult FinalRound;

  /// Degradation status across all rounds (first trip wins; mirrors the
  /// final round's Status when that round tripped).
  PipelineStatus Status;
};

/// Iterates runIPCP + applyFacts on a scratch copy of \p M until dead
/// code elimination finds nothing new (paper: one extra round sufficed).
/// All rounds share one ResourceGuard (from \p Guard or Opts.Limits), so
/// a deadline bounds the whole experiment, not each round.
CompletePropagationResult
runCompletePropagation(const Module &M, const IPCPOptions &Opts = {},
                       unsigned MaxRounds = 8, ResourceGuard *Guard = nullptr);

} // namespace ipcp

#endif // IPCP_CORE_PIPELINE_H
