//===- core/Propagator.cpp ------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/Propagator.h"

#include "support/Trace.h"
#include "support/Worklist.h"

using namespace ipcp;

LatticeValue ConstantsMap::valueOf(const Procedure *P,
                                   const Variable *Var) const {
  auto ProcIt = VAL.find(P);
  if (ProcIt == VAL.end())
    return LatticeValue::top();
  auto It = ProcIt->second.find(const_cast<Variable *>(Var));
  return It == ProcIt->second.end() ? LatticeValue::top() : It->second;
}

const LatticeEnv &ConstantsMap::env(const Procedure *P) const {
  auto It = VAL.find(P);
  return It == VAL.end() ? Empty : It->second;
}

std::vector<std::pair<Variable *, ConstantValue>>
ConstantsMap::constantsOf(const Procedure *P) const {
  std::vector<std::pair<Variable *, ConstantValue>> Out;
  auto It = VAL.find(P);
  if (It == VAL.end())
    return Out;
  for (const auto &[Var, LV] : It->second)
    if (LV.isConstant())
      Out.push_back({Var, LV.getConstant()});
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return A.first->getId() < B.first->getId();
  });
  return Out;
}

bool ConstantsMap::equals(const ConstantsMap &Other) const {
  // Compare as partial maps with top default: every non-top entry on
  // either side must match the other side's view.
  auto Covers = [](const ConstantsMap &A, const ConstantsMap &B) {
    for (const auto &[P, Env] : A.VAL)
      for (const auto &[Var, LV] : Env)
        if (B.valueOf(P, Var) != LV)
          return false;
    return true;
  };
  return Covers(*this, Other) && Covers(Other, *this);
}

unsigned ConstantsMap::totalConstants() const {
  unsigned Count = 0;
  for (const auto &[P, Env] : VAL)
    for (const auto &[Var, LV] : Env)
      if (LV.isConstant())
        ++Count;
  return Count;
}

unsigned ConstantsMap::totalEntries() const {
  unsigned Count = 0;
  for (const auto &[P, Env] : VAL)
    for (const auto &[Var, LV] : Env)
      if (!LV.isTop())
        ++Count;
  return Count;
}

namespace {

/// The worklist solver; friend of ConstantsMap.
} // namespace

namespace ipcp {
class Propagator {
public:
  Propagator(const CallGraph &CG, const ModRefInfo &MRI,
             const ForwardJumpFunctions &FJFs, const IPCPOptions &Opts,
             PropagatorStats *Stats)
      : CG(CG), MRI(MRI), FJFs(FJFs), Opts(Opts), Stats(Stats) {}

  ConstantsMap solve() {
    ConstantsMap CM;

    // Virtual entry edge: the entry procedure's globals hold their
    // initial (zero) values on program start.
    if (Procedure *Entry = findEntry())
      for (Variable *G : MRI.extendedGlobals(Entry))
        CM.VAL[Entry][G] = LatticeValue::constant(0);

    Worklist<Procedure *> Work;
    for (Procedure *P : CG.procedures())
      Work.insert(P);

    while (!Work.empty()) {
      Procedure *P = Work.pop();
      if (Stats)
        ++Stats->ProcVisits;
      const LatticeEnv &Env = CM.env(P);

      for (CallInst *Site : CG.callSitesIn(P)) {
        const CallSiteJumpFunctions &JFs = FJFs.at(Site);
        Procedure *Q = Site->getCallee();

        for (unsigned I = 0, E = JFs.Formals.size(); I != E; ++I)
          if (lower(CM, Q, Q->formals()[I], JFs.Formals[I].evaluate(Env)))
            Work.insert(Q);
        for (const auto &[G, JF] : JFs.Globals)
          if (lower(CM, Q, G, JF.evaluate(Env)))
            Work.insert(Q);
      }
    }

    return CM;
  }

private:
  Procedure *findEntry() {
    for (Procedure *P : CG.procedures())
      if (P->getName() == Opts.EntryProcedure)
        return P;
    return nullptr;
  }

  /// Meets \p NewVal into VAL(Q, Var); true when it lowered.
  bool lower(ConstantsMap &CM, Procedure *Q, Variable *Var,
             LatticeValue NewVal) {
    if (Stats)
      ++Stats->JumpFunctionEvaluations;
    LatticeValue Old = CM.valueOf(Q, Var);
    LatticeValue Met = meet(Old, NewVal);
    if (Met == Old)
      return false;
    assert(Met.strictlyBelow(Old) && "meet must move down the lattice");
    CM.VAL[Q][Var] = Met;
    if (Stats)
      ++Stats->Lowerings;
    return true;
  }

  const CallGraph &CG;
  const ModRefInfo &MRI;
  const ForwardJumpFunctions &FJFs;
  const IPCPOptions &Opts;
  PropagatorStats *Stats;
};
} // namespace ipcp

ConstantsMap ipcp::propagateConstants(const CallGraph &CG,
                                      const ModRefInfo &MRI,
                                      const ForwardJumpFunctions &FJFs,
                                      const IPCPOptions &Opts,
                                      PropagatorStats *Stats) {
  ScopedTraceSpan PropSpan("propagate", "callgraph-worklist");
  Propagator Solver(CG, MRI, FJFs, Opts, Stats);
  return Solver.solve();
}
