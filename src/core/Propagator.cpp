//===- core/Propagator.cpp ------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/Propagator.h"

#include "support/Trace.h"
#include "support/Worklist.h"

#include <algorithm>

using namespace ipcp;

LatticeValue ConstantsMap::valueOf(const Procedure *P,
                                   const Variable *Var) const {
  auto ProcIt = VAL.find(P);
  if (ProcIt == VAL.end())
    return LatticeValue::top();
  const Row &R = ProcIt->second;
  // Fast path for propagator-built rows: formals sit at their positional
  // slot. Falls back to a scan, which also serves setValue-built rows.
  if (Var->isFormal()) {
    unsigned I = Var->getFormalIndex();
    if (I < R.Vars.size() && R.Vars[I] == Var)
      return R.Vals[I];
  }
  for (size_t I = 0, E = R.Vars.size(); I != E; ++I)
    if (R.Vars[I] == Var)
      return R.Vals[I];
  return LatticeValue::top();
}

const ConstantsMap::Row &ConstantsMap::row(const Procedure *P) const {
  auto It = VAL.find(P);
  return It == VAL.end() ? EmptyRow : It->second;
}

void ConstantsMap::setValue(const Procedure *P, Variable *Var,
                            LatticeValue V) {
  if (V.isTop())
    return;
  Row &R = VAL[P];
  for (size_t I = 0, E = R.Vars.size(); I != E; ++I)
    if (R.Vars[I] == Var) {
      R.Vals[I] = V;
      return;
    }
  R.Vars.push_back(Var);
  R.Vals.push_back(V);
}

void ConstantsMap::adoptRow(const Procedure *P, std::vector<Variable *> Vars,
                            std::vector<LatticeValue> Vals) {
  assert(Vars.size() == Vals.size() && "row vectors out of sync");
  Row &R = VAL[P];
  R.Vars = std::move(Vars);
  R.Vals = std::move(Vals);
}

std::vector<std::pair<Variable *, ConstantValue>>
ConstantsMap::constantsOf(const Procedure *P) const {
  std::vector<std::pair<Variable *, ConstantValue>> Out;
  const Row &R = row(P);
  for (size_t I = 0, E = R.Vars.size(); I != E; ++I)
    if (R.Vals[I].isConstant())
      Out.push_back({R.Vars[I], R.Vals[I].getConstant()});
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return A.first->getId() < B.first->getId();
  });
  return Out;
}

bool ConstantsMap::equals(const ConstantsMap &Other) const {
  // Compare as partial maps with top default: every non-top entry on
  // either side must match the other side's view.
  auto Covers = [](const ConstantsMap &A, const ConstantsMap &B) {
    for (const auto &[P, R] : A.VAL)
      for (size_t I = 0, E = R.Vars.size(); I != E; ++I)
        if (!R.Vals[I].isTop() && B.valueOf(P, R.Vars[I]) != R.Vals[I])
          return false;
    return true;
  };
  return Covers(*this, Other) && Covers(Other, *this);
}

unsigned ConstantsMap::totalConstants() const {
  unsigned Count = 0;
  for (const auto &[P, R] : VAL)
    for (LatticeValue LV : R.Vals)
      if (LV.isConstant())
        ++Count;
  return Count;
}

unsigned ConstantsMap::totalEntries() const {
  unsigned Count = 0;
  for (const auto &[P, R] : VAL)
    for (LatticeValue LV : R.Vals)
      if (!LV.isTop())
        ++Count;
  return Count;
}

namespace ipcp {

/// The worklist solver. VAL lives in dense per-procedure vectors indexed
/// by the extended-formal numbering (formals positionally, then the
/// procedure's extended globals in ID order); the hash-map ConstantsMap
/// is only materialized once at fixpoint.
class Propagator {
public:
  Propagator(const CallGraph &CG, const ModRefInfo &MRI,
             const ForwardJumpFunctions &FJFs, const IPCPOptions &Opts,
             PropagatorStats *Stats, ResourceGuard *Guard,
             const IncrementalPropagationPlan *Plan)
      : CG(CG), MRI(MRI), FJFs(FJFs), Opts(Opts), Stats(Stats),
        Guard(Guard),
        Plan(Opts.Schedule == PropagationSchedule::SCC ? Plan : nullptr) {}

  ConstantsMap solve() {
    numberSlots();
    seedEntry();
    preloadAdopted();
    if (Opts.Schedule == PropagationSchedule::FIFO)
      solveFIFO();
    else
      solveSCC();
    // A budget-interrupted iteration is above the fixpoint, i.e. too
    // optimistic; the empty (no-constants) map is the sound fallback.
    if (Guard && Guard->tripped())
      return ConstantsMap();
    return package();
  }

private:
  /// Slot layout of one procedure's extended formals: formals sit at
  /// their positional index, then the extended globals in ID order, so a
  /// global's slot is FormalCount + its binary-search position.
  struct ProcSlots {
    unsigned FormalCount = 0;
    std::vector<Variable *> Globals; ///< ID-ordered
  };

  /// Slot of global \p G in \p S, or ~0u when outside the numbering.
  static unsigned globalSlot(const ProcSlots &S, const Variable *G) {
    auto It = std::lower_bound(S.Globals.begin(), S.Globals.end(), G,
                               [](const Variable *A, const Variable *B) {
                                 return A->getId() < B->getId();
                               });
    if (It == S.Globals.end() || *It != G)
      return ~0u;
    return S.FormalCount + unsigned(It - S.Globals.begin());
  }

  void numberSlots() {
    size_t N = CG.procedures().size();
    Slots.resize(N);
    VAL.resize(N);
    SCCOf.resize(N);
    Visited.assign(N, false);
    for (Procedure *P : CG.procedures()) {
      unsigned PI = CG.procIndex(P);
      SCCOf[PI] = CG.sccIndex(P);
      ProcSlots &S = Slots[PI];
      S.FormalCount = unsigned(P->formals().size());
      const VariableSet &Ext = MRI.extendedGlobals(P);
      S.Globals.assign(Ext.begin(), Ext.end()); // ID-ordered by VariableSet
      VAL[PI].assign(S.FormalCount + S.Globals.size(), LatticeValue::top());
    }
  }

  /// Virtual entry edge: the entry procedure's globals hold their initial
  /// (zero) values on program start.
  void seedEntry() {
    for (Procedure *P : CG.procedures())
      if (P->getName() == Opts.EntryProcedure) {
        unsigned PI = CG.procIndex(P);
        const ProcSlots &S = Slots[PI];
        for (unsigned I = 0, E = unsigned(S.Globals.size()); I != E; ++I)
          VAL[PI][S.FormalCount + I] = LatticeValue::constant(0);
        return;
      }
  }

  /// Installs the cached fixpoint VAL of every adopted procedure. Runs
  /// after seedEntry so the cached values (which already absorbed the
  /// virtual entry edge when they were computed) win.
  void preloadAdopted() {
    if (!Plan)
      return;
    for (const auto &[P, Vals] : Plan->CachedVal) {
      unsigned PI = CG.procIndex(const_cast<Procedure *>(P));
      const ProcSlots &S = Slots[PI];
      for (const auto &[Var, LV] : Vals) {
        if (Var->isFormal()) {
          VAL[PI][Var->getFormalIndex()] = LV;
          continue;
        }
        unsigned Slot = globalSlot(S, Var);
        assert(Slot != ~0u &&
               "cached VAL entry outside the extended-formal numbering");
        if (Slot != ~0u)
          VAL[PI][Slot] = LV;
      }
    }
  }

  /// VAL(P, Var) read through the dense numbering; variables outside P's
  /// extended formals are top, matching the hash-map env semantics.
  LatticeValue valueAt(unsigned PI, Variable *Var) const {
    if (Var->isFormal())
      return VAL[PI][Var->getFormalIndex()];
    unsigned Slot = globalSlot(Slots[PI], Var);
    return Slot == ~0u ? LatticeValue::top() : VAL[PI][Slot];
  }

  /// Meets \p NewVal into VAL(Q, Slot); true when it lowered.
  bool lower(unsigned QI, unsigned Slot, LatticeValue NewVal) {
    if (Stats)
      ++Stats->JumpFunctionEvaluations;
    if (Guard)
      Guard->noteEvaluations();
    LatticeValue Old = VAL[QI][Slot];
    LatticeValue Met = meet(Old, NewVal);
    if (Met == Old)
      return false;
    assert(Met.strictlyBelow(Old) && "meet must move down the lattice");
    VAL[QI][Slot] = Met;
    if (Stats)
      ++Stats->Lowerings;
    return true;
  }

  /// Evaluates every jump function out of procedure \p PI and meets the
  /// results into its callees, reporting each lowered callee index.
  template <typename OnLowered>
  void visit(unsigned PI, const OnLowered &Lowered) {
    if (Stats) {
      ++Stats->ProcVisits;
      if (Visited[PI])
        ++Stats->Revisits;
    }
    Visited[PI] = true;
    Procedure *P = CG.procedures()[PI];
    auto Lookup = [this, PI](Variable *Var) { return valueAt(PI, Var); };

    for (CallInst *Site : CG.callSitesIn(P)) {
      Procedure *Q = Site->getCallee();
      unsigned QI = CG.procIndex(Q);
      // An adopted component's VAL is its cached fixpoint, which already
      // includes this edge's contribution (the adoption closure proves
      // the caller is unchanged too) — skipping it is where warm runs
      // save their jump-function evaluations.
      if (Plan && Plan->adopted(SCCOf[QI]))
        continue;
      const CallSiteJumpFunctions &JFs = FJFs.at(Site);

      for (unsigned I = 0, E = unsigned(JFs.Formals.size()); I != E; ++I)
        if (lower(QI, I, JFs.Formals[I].evaluateVia(Lookup)))
          Lowered(QI);
      const ProcSlots &QS = Slots[QI];
      for (const auto &[G, JF] : JFs.Globals) {
        unsigned Slot = globalSlot(QS, G);
        assert(Slot != ~0u &&
               "call-site global jump function outside callee numbering");
        if (lower(QI, Slot, JF.evaluateVia(Lookup)))
          Lowered(QI);
      }
    }
  }

  /// The naive baseline: every procedure starts pending, lowering a
  /// callee re-queues it, FIFO order.
  void solveFIFO() {
    size_t N = CG.procedures().size();
    IndexWorklist Work;
    Work.reserve(N);
    for (unsigned PI = 0; PI != N; ++PI)
      Work.insert(PI);
    while (!Work.empty() && !budgetTripped())
      visit(Work.pop(), [&Work](unsigned QI) { Work.insert(QI); });
  }

  /// Reverse post-order sweep of the SCC condensation. Tarjan emits
  /// components callee-first, so iterating sccsBottomUp() backwards walks
  /// callers before callees and every cross-component edge lowers into a
  /// component the sweep has not reached yet — one sweep suffices. Only
  /// cyclic components need an inner fixpoint loop.
  void solveSCC() {
    const std::vector<std::vector<Procedure *>> &SCCs = CG.sccsBottomUp();
    IndexWorklist Inner;
    Inner.reserve(CG.procedures().size());
    for (size_t C = SCCs.size(); C-- != 0;) {
      if (budgetTripped())
        return;
      const std::vector<Procedure *> &Members = SCCs[C];
      if (Plan && Plan->adopted(C)) {
        // Preloaded cached fixpoint: already converged, so one filtered
        // visit per member pushes contributions into dirty callees;
        // intra-component edges target this adopted component and are
        // skipped inside visit().
        for (Procedure *P : Members)
          visit(CG.procIndex(P), [](unsigned) {});
        continue;
      }
      if (Members.size() == 1 && !CG.isRecursive(Members[0])) {
        // No edge can return here: a single visit converges.
        visit(CG.procIndex(Members[0]), [](unsigned) {});
        continue;
      }
      Inner.clear();
      for (Procedure *P : Members)
        Inner.insert(CG.procIndex(P));
      while (!Inner.empty() && !budgetTripped())
        visit(Inner.pop(), [this, C, &Inner](unsigned QI) {
          if (SCCOf[QI] == C)
            Inner.insert(QI);
        });
    }
  }

  bool budgetTripped() const { return Guard && Guard->tripped(); }

  /// Hands the dense fixpoint to the external ConstantsMap. Zero-copy:
  /// each procedure's value vector is moved, not rehashed; the paired
  /// variable vector is the slot numbering itself.
  ConstantsMap package() {
    ConstantsMap CM;
    for (Procedure *P : CG.procedures()) {
      unsigned PI = CG.procIndex(P);
      ProcSlots &S = Slots[PI];
      std::vector<Variable *> Vars;
      Vars.reserve(VAL[PI].size());
      Vars.insert(Vars.end(), P->formals().begin(), P->formals().end());
      Vars.insert(Vars.end(), S.Globals.begin(), S.Globals.end());
      CM.adoptRow(P, std::move(Vars), std::move(VAL[PI]));
    }
    return CM;
  }

  const CallGraph &CG;
  const ModRefInfo &MRI;
  const ForwardJumpFunctions &FJFs;
  const IPCPOptions &Opts;
  PropagatorStats *Stats;
  ResourceGuard *Guard;
  const IncrementalPropagationPlan *Plan;

  std::vector<ProcSlots> Slots;
  std::vector<std::vector<LatticeValue>> VAL;
  std::vector<size_t> SCCOf;
  std::vector<bool> Visited;
};

} // namespace ipcp

ConstantsMap ipcp::propagateConstants(const CallGraph &CG,
                                      const ModRefInfo &MRI,
                                      const ForwardJumpFunctions &FJFs,
                                      const IPCPOptions &Opts,
                                      PropagatorStats *Stats,
                                      ResourceGuard *Guard,
                                      const IncrementalPropagationPlan *Plan) {
  ScopedTraceSpan PropSpan("propagate",
                           Opts.Schedule == PropagationSchedule::FIFO
                               ? "callgraph-fifo"
                               : "callgraph-scc");
  Propagator Solver(CG, MRI, FJFs, Opts, Stats, Guard, Plan);
  return Solver.solve();
}
