//===- core/Propagator.cpp ------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/Propagator.h"

#include "support/Trace.h"
#include "support/Worklist.h"

using namespace ipcp;

LatticeValue ConstantsMap::valueOf(const Procedure *P,
                                   const Variable *Var) const {
  auto ProcIt = VAL.find(P);
  if (ProcIt == VAL.end())
    return LatticeValue::top();
  auto It = ProcIt->second.find(const_cast<Variable *>(Var));
  return It == ProcIt->second.end() ? LatticeValue::top() : It->second;
}

const LatticeEnv &ConstantsMap::env(const Procedure *P) const {
  auto It = VAL.find(P);
  return It == VAL.end() ? Empty : It->second;
}

std::vector<std::pair<Variable *, ConstantValue>>
ConstantsMap::constantsOf(const Procedure *P) const {
  std::vector<std::pair<Variable *, ConstantValue>> Out;
  auto It = VAL.find(P);
  if (It == VAL.end())
    return Out;
  for (const auto &[Var, LV] : It->second)
    if (LV.isConstant())
      Out.push_back({Var, LV.getConstant()});
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return A.first->getId() < B.first->getId();
  });
  return Out;
}

bool ConstantsMap::equals(const ConstantsMap &Other) const {
  // Compare as partial maps with top default: every non-top entry on
  // either side must match the other side's view.
  auto Covers = [](const ConstantsMap &A, const ConstantsMap &B) {
    for (const auto &[P, Env] : A.VAL)
      for (const auto &[Var, LV] : Env)
        if (B.valueOf(P, Var) != LV)
          return false;
    return true;
  };
  return Covers(*this, Other) && Covers(Other, *this);
}

unsigned ConstantsMap::totalConstants() const {
  unsigned Count = 0;
  for (const auto &[P, Env] : VAL)
    for (const auto &[Var, LV] : Env)
      if (LV.isConstant())
        ++Count;
  return Count;
}

unsigned ConstantsMap::totalEntries() const {
  unsigned Count = 0;
  for (const auto &[P, Env] : VAL)
    for (const auto &[Var, LV] : Env)
      if (!LV.isTop())
        ++Count;
  return Count;
}

namespace ipcp {

/// The worklist solver. VAL lives in dense per-procedure vectors indexed
/// by the extended-formal numbering (formals positionally, then the
/// procedure's extended globals in ID order); the hash-map ConstantsMap
/// is only materialized once at fixpoint.
class Propagator {
public:
  Propagator(const CallGraph &CG, const ModRefInfo &MRI,
             const ForwardJumpFunctions &FJFs, const IPCPOptions &Opts,
             PropagatorStats *Stats, ResourceGuard *Guard,
             const IncrementalPropagationPlan *Plan)
      : CG(CG), MRI(MRI), FJFs(FJFs), Opts(Opts), Stats(Stats),
        Guard(Guard),
        Plan(Opts.Schedule == PropagationSchedule::SCC ? Plan : nullptr) {}

  ConstantsMap solve() {
    numberSlots();
    seedEntry();
    preloadAdopted();
    if (Opts.Schedule == PropagationSchedule::FIFO)
      solveFIFO();
    else
      solveSCC();
    // A budget-interrupted iteration is above the fixpoint, i.e. too
    // optimistic; the empty (no-constants) map is the sound fallback.
    if (Guard && Guard->tripped())
      return ConstantsMap();
    return package();
  }

private:
  /// Slot layout of one procedure's extended formals.
  struct ProcSlots {
    unsigned FormalCount = 0;
    std::unordered_map<Variable *, unsigned> GlobalSlot;
  };

  void numberSlots() {
    size_t N = CG.procedures().size();
    Slots.resize(N);
    VAL.resize(N);
    SCCOf.resize(N);
    Visited.assign(N, false);
    for (Procedure *P : CG.procedures()) {
      unsigned PI = CG.procIndex(P);
      SCCOf[PI] = CG.sccIndex(P);
      ProcSlots &S = Slots[PI];
      S.FormalCount = unsigned(P->formals().size());
      unsigned Next = S.FormalCount;
      for (Variable *G : MRI.extendedGlobals(P))
        S.GlobalSlot.emplace(G, Next++);
      VAL[PI].assign(Next, LatticeValue::top());
    }
  }

  /// Virtual entry edge: the entry procedure's globals hold their initial
  /// (zero) values on program start.
  void seedEntry() {
    for (Procedure *P : CG.procedures())
      if (P->getName() == Opts.EntryProcedure) {
        unsigned PI = CG.procIndex(P);
        for (const auto &[G, Slot] : Slots[PI].GlobalSlot)
          VAL[PI][Slot] = LatticeValue::constant(0);
        return;
      }
  }

  /// Installs the cached fixpoint VAL of every adopted procedure. Runs
  /// after seedEntry so the cached values (which already absorbed the
  /// virtual entry edge when they were computed) win.
  void preloadAdopted() {
    if (!Plan)
      return;
    for (const auto &[P, Vals] : Plan->CachedVal) {
      unsigned PI = CG.procIndex(const_cast<Procedure *>(P));
      const ProcSlots &S = Slots[PI];
      for (const auto &[Var, LV] : Vals) {
        if (Var->isFormal()) {
          VAL[PI][Var->getFormalIndex()] = LV;
          continue;
        }
        auto It = S.GlobalSlot.find(Var);
        assert(It != S.GlobalSlot.end() &&
               "cached VAL entry outside the extended-formal numbering");
        if (It != S.GlobalSlot.end())
          VAL[PI][It->second] = LV;
      }
    }
  }

  /// VAL(P, Var) read through the dense numbering; variables outside P's
  /// extended formals are top, matching the hash-map env semantics.
  LatticeValue valueAt(unsigned PI, Variable *Var) const {
    if (Var->isFormal())
      return VAL[PI][Var->getFormalIndex()];
    const ProcSlots &S = Slots[PI];
    auto It = S.GlobalSlot.find(Var);
    return It == S.GlobalSlot.end() ? LatticeValue::top()
                                    : VAL[PI][It->second];
  }

  /// Meets \p NewVal into VAL(Q, Slot); true when it lowered.
  bool lower(unsigned QI, unsigned Slot, LatticeValue NewVal) {
    if (Stats)
      ++Stats->JumpFunctionEvaluations;
    if (Guard)
      Guard->noteEvaluations();
    LatticeValue Old = VAL[QI][Slot];
    LatticeValue Met = meet(Old, NewVal);
    if (Met == Old)
      return false;
    assert(Met.strictlyBelow(Old) && "meet must move down the lattice");
    VAL[QI][Slot] = Met;
    if (Stats)
      ++Stats->Lowerings;
    return true;
  }

  /// Evaluates every jump function out of procedure \p PI and meets the
  /// results into its callees, reporting each lowered callee index.
  template <typename OnLowered>
  void visit(unsigned PI, const OnLowered &Lowered) {
    if (Stats) {
      ++Stats->ProcVisits;
      if (Visited[PI])
        ++Stats->Revisits;
    }
    Visited[PI] = true;
    Procedure *P = CG.procedures()[PI];
    auto Lookup = [this, PI](Variable *Var) { return valueAt(PI, Var); };

    for (CallInst *Site : CG.callSitesIn(P)) {
      Procedure *Q = Site->getCallee();
      unsigned QI = CG.procIndex(Q);
      // An adopted component's VAL is its cached fixpoint, which already
      // includes this edge's contribution (the adoption closure proves
      // the caller is unchanged too) — skipping it is where warm runs
      // save their jump-function evaluations.
      if (Plan && Plan->adopted(SCCOf[QI]))
        continue;
      const CallSiteJumpFunctions &JFs = FJFs.at(Site);

      for (unsigned I = 0, E = unsigned(JFs.Formals.size()); I != E; ++I)
        if (lower(QI, I, JFs.Formals[I].evaluateVia(Lookup)))
          Lowered(QI);
      const ProcSlots &QS = Slots[QI];
      for (const auto &[G, JF] : JFs.Globals) {
        auto It = QS.GlobalSlot.find(G);
        assert(It != QS.GlobalSlot.end() &&
               "call-site global jump function outside callee numbering");
        if (lower(QI, It->second, JF.evaluateVia(Lookup)))
          Lowered(QI);
      }
    }
  }

  /// The naive baseline: every procedure starts pending, lowering a
  /// callee re-queues it, FIFO order.
  void solveFIFO() {
    size_t N = CG.procedures().size();
    IndexWorklist Work;
    Work.reserve(N);
    for (unsigned PI = 0; PI != N; ++PI)
      Work.insert(PI);
    while (!Work.empty() && !budgetTripped())
      visit(Work.pop(), [&Work](unsigned QI) { Work.insert(QI); });
  }

  /// Reverse post-order sweep of the SCC condensation. Tarjan emits
  /// components callee-first, so iterating sccsBottomUp() backwards walks
  /// callers before callees and every cross-component edge lowers into a
  /// component the sweep has not reached yet — one sweep suffices. Only
  /// cyclic components need an inner fixpoint loop.
  void solveSCC() {
    const std::vector<std::vector<Procedure *>> &SCCs = CG.sccsBottomUp();
    IndexWorklist Inner;
    Inner.reserve(CG.procedures().size());
    for (size_t C = SCCs.size(); C-- != 0;) {
      if (budgetTripped())
        return;
      const std::vector<Procedure *> &Members = SCCs[C];
      if (Plan && Plan->adopted(C)) {
        // Preloaded cached fixpoint: already converged, so one filtered
        // visit per member pushes contributions into dirty callees;
        // intra-component edges target this adopted component and are
        // skipped inside visit().
        for (Procedure *P : Members)
          visit(CG.procIndex(P), [](unsigned) {});
        continue;
      }
      if (Members.size() == 1 && !CG.isRecursive(Members[0])) {
        // No edge can return here: a single visit converges.
        visit(CG.procIndex(Members[0]), [](unsigned) {});
        continue;
      }
      Inner.clear();
      for (Procedure *P : Members)
        Inner.insert(CG.procIndex(P));
      while (!Inner.empty() && !budgetTripped())
        visit(Inner.pop(), [this, C, &Inner](unsigned QI) {
          if (SCCOf[QI] == C)
            Inner.insert(QI);
        });
    }
  }

  bool budgetTripped() const { return Guard && Guard->tripped(); }

  /// Converts the dense fixpoint into the external ConstantsMap (top
  /// entries stay implicit).
  ConstantsMap package() const {
    ConstantsMap CM;
    for (Procedure *P : CG.procedures()) {
      unsigned PI = CG.procIndex(P);
      const ProcSlots &S = Slots[PI];
      for (unsigned I = 0; I != S.FormalCount; ++I)
        CM.setValue(P, P->formals()[I], VAL[PI][I]);
      for (const auto &[G, Slot] : S.GlobalSlot)
        CM.setValue(P, G, VAL[PI][Slot]);
    }
    return CM;
  }

  const CallGraph &CG;
  const ModRefInfo &MRI;
  const ForwardJumpFunctions &FJFs;
  const IPCPOptions &Opts;
  PropagatorStats *Stats;
  ResourceGuard *Guard;
  const IncrementalPropagationPlan *Plan;

  std::vector<ProcSlots> Slots;
  std::vector<std::vector<LatticeValue>> VAL;
  std::vector<size_t> SCCOf;
  std::vector<bool> Visited;
};

} // namespace ipcp

ConstantsMap ipcp::propagateConstants(const CallGraph &CG,
                                      const ModRefInfo &MRI,
                                      const ForwardJumpFunctions &FJFs,
                                      const IPCPOptions &Opts,
                                      PropagatorStats *Stats,
                                      ResourceGuard *Guard,
                                      const IncrementalPropagationPlan *Plan) {
  ScopedTraceSpan PropSpan("propagate",
                           Opts.Schedule == PropagationSchedule::FIFO
                               ? "callgraph-fifo"
                               : "callgraph-scc");
  Propagator Solver(CG, MRI, FJFs, Opts, Stats, Guard, Plan);
  return Solver.solve();
}
