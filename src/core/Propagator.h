//===- core/Propagator.h - Interprocedural propagation ----------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interprocedural propagation phase (paper Section 2): iterate the
/// VAL sets over the call graph with "a simple worklist iterative
/// scheme" until no parameter changes. VAL maps each procedure's extended
/// formals (formals plus referenced globals) to lattice values,
/// initialized to top; each call edge lowers the callee's VAL entries by
/// meeting them with the edge's jump function values evaluated in the
/// caller's VAL environment.
///
/// The solver keeps VAL in dense per-procedure vectors indexed by an
/// extended-formal numbering (formals positionally, then the procedure's
/// extended globals), and by default schedules work over the SCC
/// condensation of the call graph in reverse post-order: each component
/// iterates an inner worklist to its local fixpoint before the sweep
/// moves on, so acyclic regions converge in exactly one visit per
/// procedure and only members of cyclic components ever re-enter a
/// worklist. IPCPOptions::Schedule selects the naive all-procedures FIFO
/// baseline instead; both reach the same fixpoint (bench_scaling.cpp
/// measures the visit/evaluation gap).
///
/// The meet runs over every edge of G, including edges inside procedures
/// that are themselves never invoked (their VAL stays top, so their
/// support-carrying jump functions evaluate to top and lower nothing —
/// but their constant jump functions do lower the callee, exactly the
/// conservatism the complete-propagation experiment removes with dead
/// code elimination). The entry procedure receives a virtual edge that
/// sets every global to its initial value (zero in MiniFort).
///
/// Because the lattice has depth two, each VAL entry lowers at most
/// twice, bounding total work by O(sum over jump functions of cost(J) *
/// |support(J)|) — the complexity claim of Section 3.1.5, which
/// bench/bench_propagation.cpp measures.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_PROPAGATOR_H
#define IPCP_CORE_PROPAGATOR_H

#include "core/ForwardJumpFunctions.h"
#include "core/Options.h"

#include <vector>

namespace ipcp {

/// The VAL sets at fixpoint; CONSTANTS(p) is derived from them.
///
/// Storage is structure-of-arrays: one Row of parallel Vars/Vals vectors
/// per procedure, moved straight out of the dense propagator (zero-copy —
/// the solver's slot vectors *become* the rows) instead of being rehashed
/// into per-procedure maps. Rows may contain top entries; every query
/// treats top as the implicit default, so the observable behavior matches
/// the hash-map formulation this replaces.
class ConstantsMap {
public:
  /// One procedure's VAL row. For propagator-built maps the order is the
  /// extended-formal numbering (formals positionally, then extended
  /// globals in ID order); setValue-built rows are in insertion order.
  struct Row {
    std::vector<Variable *> Vars;
    std::vector<LatticeValue> Vals;
  };

  /// VAL(p, var); top when never lowered.
  LatticeValue valueOf(const Procedure *P, const Variable *Var) const;

  /// The raw row for \p P (empty when the procedure has no entries).
  /// Report emission and the summary cache iterate this directly.
  const Row &row(const Procedure *P) const;

  /// CONSTANTS(p): the (variable, value) pairs that always hold on entry,
  /// ID-ordered.
  std::vector<std::pair<Variable *, ConstantValue>>
  constantsOf(const Procedure *P) const;

  /// Sum of |CONSTANTS(p)| over all procedures.
  unsigned totalConstants() const;

  /// Non-top VAL entries at fixpoint (the prop_val_entries counter).
  unsigned totalEntries() const;

  /// Installs one fixpoint value; used by the pairwise solvers to package
  /// their results. Top stores are dropped: top is the implicit default,
  /// and materializing it would skew totalEntries().
  void setValue(const Procedure *P, Variable *Var, LatticeValue V);

  /// Takes ownership of one procedure's slot-ordered fixpoint vectors.
  void adoptRow(const Procedure *P, std::vector<Variable *> Vars,
                std::vector<LatticeValue> Vals);

  /// Structural equality of two fixpoints (same non-top entries).
  bool equals(const ConstantsMap &Other) const;

private:
  std::unordered_map<const Procedure *, Row> VAL;
  Row EmptyRow;
};

/// Work counters substantiating the complexity discussion.
struct PropagatorStats {
  uint64_t ProcVisits = 0;
  uint64_t JumpFunctionEvaluations = 0;
  uint64_t Lowerings = 0;
  /// Visits beyond the first per procedure — zero for acyclic call graphs
  /// under the SCC schedule.
  uint64_t Revisits = 0;
};

/// What the incremental pipeline tells the propagator about cached VAL
/// sets (docs/INCREMENTAL.md). An SCC may be *adopted* only when the
/// pipeline proved its cached fixpoint still applies: every member's
/// summary hit, its callers are unchanged (callers hash), and — applied
/// transitively — every external caller SCC was itself adopted. Under
/// that closure, no jump function ever needs to be evaluated *into* an
/// adopted component: its VAL is preloaded from the cache and the solver
/// skips those edges, which is exactly where the warm-run savings in
/// prop_evaluations come from. Edges *out of* adopted components into
/// dirty ones are still evaluated (dirty procedures restart from top and
/// need every caller's contribution).
struct IncrementalPropagationPlan {
  /// Indexed by SCC index (CallGraph::sccIndex). Non-zero = adopted.
  std::vector<char> AdoptSCC;

  /// The cached fixpoint VAL for each procedure of an adopted SCC
  /// (non-top entries only; variables are the procedure's formals and
  /// extended globals).
  std::unordered_map<const Procedure *,
                     std::vector<std::pair<Variable *, LatticeValue>>>
      CachedVal;

  bool adopted(size_t SCC) const {
    return SCC < AdoptSCC.size() && AdoptSCC[SCC];
  }
};

/// Runs the worklist propagation to fixpoint. \p Guard, when non-null,
/// budgets jump-function evaluations and the wall-clock deadline: on a
/// trip the solver stops early and returns an EMPTY map (a cut-short
/// iteration leaves VAL entries too high — optimistically wrong — so the
/// only sound partial answer is "no interprocedural constants"); the
/// caller observes Guard->tripped() and reports degradation. \p Plan,
/// when non-null, preloads adopted SCCs from cached VAL sets (SCC
/// schedule only; the FIFO baseline ignores it).
ConstantsMap propagateConstants(const CallGraph &CG, const ModRefInfo &MRI,
                                const ForwardJumpFunctions &FJFs,
                                const IPCPOptions &Opts,
                                PropagatorStats *Stats = nullptr,
                                ResourceGuard *Guard = nullptr,
                                const IncrementalPropagationPlan *Plan =
                                    nullptr);

} // namespace ipcp

#endif // IPCP_CORE_PROPAGATOR_H
