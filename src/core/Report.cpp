//===- core/Report.cpp ----------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include "support/Trace.h"

#include <algorithm>

using namespace ipcp;

JsonValue ipcp::optionsToJson(const IPCPOptions &Opts) {
  JsonValue Obj = JsonValue::object();
  Obj.set("forward_jf", jumpFunctionKindName(Opts.ForwardKind));
  Obj.set("return_jf", Opts.UseReturnJumpFunctions);
  Obj.set("mod_information", Opts.UseModInformation);
  Obj.set("intraprocedural_only", Opts.IntraproceduralOnly);
  Obj.set("gated_ssa", Opts.UseGatedSSA);
  Obj.set("binding_graph", Opts.UseBindingGraphPropagator);
  Obj.set("engine", propagationEngineName(Opts.Engine));
  Obj.set("max_contexts", Opts.MaxContexts);
  Obj.set("max_expr_nodes", Opts.MaxExprNodes);
  Obj.set("entry_procedure", Opts.EntryProcedure);
  return Obj;
}

JsonValue ipcp::statusToJson(const PipelineStatus &Status) {
  JsonValue Obj = JsonValue::object();
  Obj.set("limit", Status.TrippedLimit);
  Obj.set("stage", Status.Stage);
  Obj.set("message", Status.Message);
  return Obj;
}

namespace {

/// Stamps the degraded flag (always present) and, when degraded, the
/// degradation object onto one result object.
void setDegradation(JsonValue &Obj, const PipelineStatus &Status) {
  Obj.set("degraded", Status.Degraded);
  if (Status.Degraded)
    Obj.set("degradation", statusToJson(Status));
}

/// The per-stage timings as one object, pulled from the time_*_us
/// counters so the JSON mirrors exactly what was measured.
JsonValue timingsToJson(const StatisticSet &Stats) {
  static const char *const Keys[][2] = {
      {"callgraph", "time_callgraph_us"},
      {"modref", "time_modref_us"},
      {"intraprocedural", "time_intraprocedural_us"},
      {"return_jf", "time_return_jf_us"},
      {"forward_jf", "time_forward_jf_us"},
      {"propagation", "time_propagation_us"},
      {"record", "time_record_us"},
      {"total", "time_total_us"},
  };
  JsonValue Obj = JsonValue::object();
  for (const auto &Key : Keys)
    Obj.set(Key[0], Stats.get(Key[1]));
  return Obj;
}

JsonValue histogramToJson(const StatisticSet &Stats) {
  JsonValue Obj = JsonValue::object();
  uint64_t Bottom = Stats.get("jf_bottom");
  uint64_t Constant = Stats.get("jf_constant");
  uint64_t PassThrough = Stats.get("jf_passthrough");
  uint64_t Polynomial = Stats.get("jf_polynomial");
  Obj.set("bottom", Bottom);
  Obj.set("constant", Constant);
  Obj.set("pass_through", PassThrough);
  Obj.set("polynomial", Polynomial);
  Obj.set("total", Bottom + Constant + PassThrough + Polynomial);
  return Obj;
}

JsonValue procedureToJson(const ProcedureResult &PR) {
  JsonValue Obj = JsonValue::object();
  Obj.set("name", PR.Name);
  JsonValue Constants = JsonValue::array();
  for (const auto &[Name, Value] : PR.EntryConstants) {
    JsonValue C = JsonValue::object();
    C.set("variable", Name);
    C.set("value", int64_t(Value));
    Constants.push(std::move(C));
  }
  Obj.set("constants", std::move(Constants));
  Obj.set("constant_refs", PR.ConstantRefs);
  Obj.set("irrelevant_constants", PR.IrrelevantConstants);
  return Obj;
}

} // namespace

JsonValue ipcp::resultToJson(const IPCPResult &Result) {
  JsonValue Obj = JsonValue::object();
  Obj.set("total_entry_constants", Result.TotalEntryConstants);
  Obj.set("total_constant_refs", Result.TotalConstantRefs);
  JsonValue Procs = JsonValue::array();
  for (const ProcedureResult &PR : Result.Procs)
    Procs.push(procedureToJson(PR));
  Obj.set("procedures", std::move(Procs));
  Obj.set("jump_functions", histogramToJson(Result.Stats));
  Obj.set("timings_us", timingsToJson(Result.Stats));
  Obj.set("counters", Result.Stats.toJson());
  if (Result.UsedCache) {
    JsonValue Cache = JsonValue::object();
    Cache.set("hits", Result.Stats.get("cache_hits"));
    Cache.set("misses", Result.Stats.get("cache_misses"));
    Cache.set("invalidations", Result.Stats.get("cache_invalidations"));
    Cache.set("val_adopted", Result.Stats.get("cache_val_adopted"));
    Cache.set("record_reused", Result.Stats.get("cache_record_reused"));
    Cache.set("load_failures", Result.Stats.get("cache_load_failures"));
    Obj.set("cache", std::move(Cache));
  }
  if (Result.ContextStudy.Enabled) {
    const ContextEngineStats &CS = Result.ContextStudy;
    JsonValue Study = JsonValue::object();
    Study.set("contexts", CS.Contexts);
    Study.set("summary_contexts", CS.SummaryContexts);
    Study.set("evaluations", CS.Evaluations);
    Study.set("reused", CS.Reused);
    Study.set("merges", CS.Merges);
    Study.set("entry_bytes", CS.EntryBytes);
    Study.set("budget_tripped", CS.BudgetTripped);
    Study.set("baseline_val_constants", CS.BaselineValConstants);
    Study.set("val_constants", CS.ValConstants);
    Study.set("val_constants_delta",
              int64_t(CS.ValConstants) - int64_t(CS.BaselineValConstants));
    Obj.set("context_study", std::move(Study));
  }
  setDegradation(Obj, Result.Status);
  return Obj;
}

JsonValue ipcp::completeToJson(const CompletePropagationResult &Result) {
  JsonValue Obj = JsonValue::object();
  Obj.set("rounds", Result.Rounds);
  Obj.set("total_constant_refs", Result.TotalConstantRefs);
  Obj.set("blocks_removed", Result.BlocksRemoved);
  Obj.set("counters", Result.Stats.toJson());
  Obj.set("final_round", resultToJson(Result.FinalRound));
  setDegradation(Obj, Result.Status);
  return Obj;
}

JsonValue ipcp::cloningToJson(const CloningResult &Result) {
  JsonValue Obj = JsonValue::object();
  Obj.set("clones_created", Result.ClonesCreated);
  Obj.set("rounds_run", Result.RoundsRun);
  Obj.set("refs_before", Result.RefsBefore);
  Obj.set("refs_after", Result.RefsAfter);
  Obj.set("constants_before", Result.ConstantsBefore);
  Obj.set("constants_after", Result.ConstantsAfter);
  Obj.set("instructions_before", Result.InstructionsBefore);
  Obj.set("instructions_after", Result.InstructionsAfter);
  setDegradation(Obj, Result.Status);
  return Obj;
}

JsonValue ipcp::optimizationToJson(const OptimizationResult &Result) {
  JsonValue Obj = JsonValue::object();
  JsonValue Passes = JsonValue::array();
  JsonValue Timings = JsonValue::array();
  for (const PassTiming &PT : Result.PassTimings) {
    Passes.push(PT.Pass);
    JsonValue T = JsonValue::object();
    T.set("pass", PT.Pass);
    T.set("us", PT.Us);
    Timings.push(std::move(T));
  }
  Obj.set("passes", std::move(Passes));
  Obj.set("rounds", Result.Rounds);
  Obj.set("substitutions", Result.Substitutions);
  Obj.set("folds", Result.Folds);
  Obj.set("branches_resolved", Result.BranchesResolved);
  Obj.set("blocks_removed", Result.BlocksRemoved);
  Obj.set("insts_removed", Result.InstsRemoved);
  Obj.set("copies_propagated", Result.CopiesPropagated);
  Obj.set("instructions_before", Result.InstructionsBefore);
  Obj.set("instructions_after", Result.InstructionsAfter);
  Obj.set("pass_timings_us", std::move(Timings));
  Obj.set("counters", Result.Stats.toJson());
  setDegradation(Obj, Result.Status);
  return Obj;
}

JsonValue ipcp::buildAnalysisReport(const AnalysisReport &Report) {
  JsonValue Obj = JsonValue::object();
  Obj.set("schema", "ipcp-report-v1");
  if (!Report.SourceName.empty())
    Obj.set("source", Report.SourceName);
  if (Report.M) {
    JsonValue Mod = JsonValue::object();
    Mod.set("procedures", uint64_t(Report.M->procedures().size()));
    Mod.set("instructions", Report.M->instructionCount());
    Obj.set("module", std::move(Mod));
  }
  if (Report.Opts)
    Obj.set("options", optionsToJson(*Report.Opts));
  if (Report.Single)
    Obj.set("result", resultToJson(*Report.Single));
  if (Report.Complete)
    Obj.set("complete_propagation", completeToJson(*Report.Complete));
  if (Report.Cloning)
    Obj.set("cloning", cloningToJson(*Report.Cloning));
  if (Report.Optimization)
    Obj.set("optimization", optimizationToJson(*Report.Optimization));
  if (Report.TraceData)
    Obj.set("trace", Report.TraceData->toJson());

  // Top-level degradation: explicit status wins (frontend trips produce
  // no result object to carry it); otherwise any degraded member result
  // marks the whole report degraded.
  const PipelineStatus *Status = Report.Status;
  if (!Status && Report.Single && Report.Single->Status.Degraded)
    Status = &Report.Single->Status;
  if (!Status && Report.Complete && Report.Complete->Status.Degraded)
    Status = &Report.Complete->Status;
  if (!Status && Report.Cloning && Report.Cloning->Status.Degraded)
    Status = &Report.Cloning->Status;
  if (!Status && Report.Optimization && Report.Optimization->Status.Degraded)
    Status = &Report.Optimization->Status;
  Obj.set("degraded", Status && Status->Degraded);
  if (Status && Status->Degraded)
    Obj.set("degradation", statusToJson(*Status));
  return Obj;
}

namespace {

/// Counters whose values a warm run may legitimately change.
bool isWarmVolatileCounter(const std::string &Name) {
  if (Name.rfind("time_", 0) == 0 || Name.rfind("cache_", 0) == 0)
    return true;
  return Name == "prop_visits" || Name == "prop_evaluations" ||
         Name == "prop_lowerings" || Name == "prop_revisits" ||
         Name == "unique_exprs";
}

} // namespace

void ipcp::normalizeReportForDiff(JsonValue &Report) {
  if (Report.isArray()) {
    for (size_t I = 0, N = Report.size(); I != N; ++I)
      normalizeReportForDiff(Report.at(I));
    return;
  }
  if (!Report.isObject())
    return;
  Report.remove("timings_us");
  // The optimization block's per-pass wall times vary run to run just
  // like the stage timings do.
  Report.remove("pass_timings_us");
  Report.remove("cache");
  Report.remove("trace");
  for (auto &[Key, Val] : Report.members()) {
    if (Key == "counters" && Val.isObject()) {
      auto &Counters = Val.members();
      Counters.erase(std::remove_if(Counters.begin(), Counters.end(),
                                    [](const auto &KV) {
                                      return isWarmVolatileCounter(KV.first);
                                    }),
                     Counters.end());
      continue;
    }
    normalizeReportForDiff(Val);
  }
}

JsonValue ipcp::buildServiceEnvelope(uint64_t Seq, const JsonValue *Id,
                                     JsonValue Body) {
  JsonValue Env = JsonValue::object();
  Env.set("schema", "ipcp-service-v1");
  Env.set("seq", Seq);
  if (Id)
    Env.set("id", *Id);
  for (auto &[Key, Val] : Body.members())
    Env.set(Key, std::move(Val));
  return Env;
}

JsonValue ipcp::serviceErrorObject(const std::string &Code,
                                   const std::string &Message) {
  JsonValue Err = JsonValue::object();
  Err.set("code", Code);
  Err.set("message", Message);
  // Whether the same request can be expected to succeed if resent:
  // transient conditions (overload, an internal fault) are retryable;
  // a malformed or unanalyzable request will fail the same way again.
  Err.set("retryable", Code == "busy" || Code == "internal");
  return Err;
}

void ipcp::scrubReportTimings(JsonValue &Report) {
  if (Report.isArray()) {
    for (size_t I = 0, N = Report.size(); I != N; ++I)
      scrubReportTimings(Report.at(I));
    return;
  }
  if (!Report.isObject())
    return;
  for (auto &[Key, Val] : Report.members()) {
    if (Key == "timings_us" && Val.isObject()) {
      for (auto &[Stage, T] : Val.members())
        if (T.isNumber())
          T = JsonValue(int64_t(0));
      continue;
    }
    if (Key == "pass_timings_us" && Val.isArray()) {
      for (size_t I = 0, N = Val.size(); I != N; ++I) {
        JsonValue &Entry = Val.at(I);
        if (Entry.isObject())
          if (JsonValue *Us = Entry.find("us"); Us && Us->isNumber())
            *Us = JsonValue(int64_t(0));
      }
      continue;
    }
    if (Key.rfind("time_", 0) == 0 && Val.isNumber()) {
      Val = JsonValue(int64_t(0));
      continue;
    }
    scrubReportTimings(Val);
  }
}
