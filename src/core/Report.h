//===- core/Report.h - Machine-readable analysis reports --------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes analysis outcomes to the JSON report consumed by the
/// driver's --report-json flag, the suite checker, and the bench
/// harnesses: per-stage timings, the jump-function class histogram, the
/// full CONSTANTS(p) sets, every work counter, and (optionally) the
/// hierarchical trace. The report schema ("ipcp-report-v1") is
/// documented field by field in docs/OBSERVABILITY.md; tests round-trip
/// it through the support/Json parser.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_REPORT_H
#define IPCP_CORE_REPORT_H

#include "core/Cloning.h"
#include "core/Pipeline.h"
#include "support/Json.h"
#include "transform/Transform.h"

namespace ipcp {

class Trace;

/// The analysis configuration as a JSON object.
JsonValue optionsToJson(const IPCPOptions &Opts);

/// A PipelineStatus as the report's "degradation" object: the tripped
/// limit (named after its driver flag), the stage, and the message.
JsonValue statusToJson(const PipelineStatus &Status);

/// One IPCPResult as a JSON object: totals, per-procedure CONSTANTS(p)
/// and substitution counts, the jump-function histogram, per-stage
/// timings, and the raw counters.
JsonValue resultToJson(const IPCPResult &Result);

/// A complete-propagation run: rounds, dead-code totals, aggregated
/// counters, and the final round's full result.
JsonValue completeToJson(const CompletePropagationResult &Result);

/// A cloning experiment's before/after effectiveness.
JsonValue cloningToJson(const CloningResult &Result);

/// A transform-pipeline run: the passes executed (with wall times under
/// "pass_timings_us"), the rewrite totals, and the merged counters.
JsonValue optimizationToJson(const OptimizationResult &Result);

/// Everything the driver knows about one run. Null members are omitted
/// from the report.
struct AnalysisReport {
  std::string SourceName;
  const Module *M = nullptr;
  const IPCPOptions *Opts = nullptr;
  const IPCPResult *Single = nullptr;
  const CompletePropagationResult *Complete = nullptr;
  const CloningResult *Cloning = nullptr;
  const OptimizationResult *Optimization = nullptr;
  const Trace *TraceData = nullptr;

  /// Overall run status. When null, the top-level degraded flag is
  /// derived from whichever results are present (a frontend trip that
  /// produced no result at all needs the explicit pointer).
  const PipelineStatus *Status = nullptr;
};

/// Builds the top-level "ipcp-report-v1" document.
JsonValue buildAnalysisReport(const AnalysisReport &Report);

/// Strips, in place, everything that may legitimately differ between a
/// warm (summary-cache) and a cold run of the same analysis: timings,
/// the cache object and cache_* counters, the work counters of stages a
/// warm run skips or shrinks (prop_visits, prop_evaluations,
/// prop_lowerings, prop_revisits, unique_exprs), and the trace. What
/// remains — results, CONSTANTS(p), jump-function histogram, the sccp_*
/// and prop_val_* counters — the differential test layer requires to be
/// byte-identical (docs/INCREMENTAL.md).
void normalizeReportForDiff(JsonValue &Report);

/// Zeroes, in place, every wall-clock field (the "timings_us" objects
/// and the time_* counters) so two reports of identical runs compare
/// equal; everything else — including cache statistics — is kept.
/// Driver flag --scrub-timings; the warm-determinism CI job diffs these.
void scrubReportTimings(JsonValue &Report);

/// The "ipcp-service-v1" wire envelope (docs/SERVICE.md): schema tag,
/// response sequence number, the echoed client id (when \p Id is
/// non-null), then every member of \p Body ("status", "error",
/// "report", "responses", "stats", ...) in order.
JsonValue buildServiceEnvelope(uint64_t Seq, const JsonValue *Id,
                               JsonValue Body);

/// A service response error object: {"code": Code, "message": Message,
/// "retryable": bool}. Codes are enumerated in docs/SERVICE.md
/// ("bad-json", "bad-request", "unknown-suite", "source-error", "busy",
/// "internal"); `retryable` is true for the transient codes ("busy",
/// "internal"), and busy envelopes additionally carry "retry_after_ms".
JsonValue serviceErrorObject(const std::string &Code,
                             const std::string &Message);

} // namespace ipcp

#endif // IPCP_CORE_REPORT_H
