//===- core/ReturnJumpFunctions.cpp ---------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/ReturnJumpFunctions.h"

#include "support/Trace.h"

#include "core/ValueNumbering.h"

using namespace ipcp;

const JumpFunction *ReturnJumpFunctions::find(const Procedure *P,
                                              const Variable *Var) const {
  auto ProcIt = Table.find(P);
  if (ProcIt == Table.end())
    return nullptr;
  auto VarIt = ProcIt->second.find(Var);
  return VarIt == ProcIt->second.end() ? nullptr : &VarIt->second;
}

unsigned ReturnJumpFunctions::knownCount() const {
  unsigned Count = 0;
  for (const auto &[P, Vars] : Table)
    for (const auto &[Var, JF] : Vars)
      if (!JF.isBottom())
        ++Count;
  return Count;
}

unsigned ReturnJumpFunctions::entryCount() const {
  unsigned Count = 0;
  for (const auto &[P, Vars] : Table)
    Count += Vars.size();
  return Count;
}

void ReturnJumpFunctions::seedBottoms(Procedure *P, const ModRefInfo &MRI) {
  auto &Entries = Table[P];
  for (unsigned I = 0, E = P->getNumFormals(); I != E; ++I)
    if (MRI.formalMayBeModified(P, I))
      Entries.emplace(P->formals()[I], JumpFunction::bottom());
  for (Variable *G : MRI.modifiedGlobals(P))
    Entries.emplace(G, JumpFunction::bottom());
}

void ReturnJumpFunctions::liftProcedure(Procedure *P, const SSAResult &ProcSSA,
                                        SymExprContext &Ctx,
                                        bool UseGatedSSA) {
  traceEvent("return-jf.proc", P->getName());
  auto &Entries = Table[P];
  if (Entries.empty())
    return;
  if (ProcSSA.ExitValues.empty())
    return; // never returns: bottoms stay (never consulted anyway)

  SymbolicLifter Lifter(Ctx, ProcSSA, this, CallOutMode::Symbolic,
                        UseGatedSSA);
  for (auto &[Var, JF] : Entries) {
    auto ExitIt = ProcSSA.ExitValues.find(const_cast<Variable *>(Var));
    if (ExitIt == ProcSSA.ExitValues.end())
      continue; // not promoted here (e.g. global untouched): bottom
    JF = JumpFunction(Lifter.lift(ExitIt->second));
  }
}

ReturnJumpFunctions ReturnJumpFunctions::build(const CallGraph &CG,
                                               const ModRefInfo &MRI,
                                               const SSAMap &SSA,
                                               SymExprContext &Ctx,
                                               bool UseGatedSSA) {
  ReturnJumpFunctions RJFs;
  ScopedTraceSpan BuildSpan("return-jf");

  // Pre-populate bottom entries for every modifiable variable, so that
  // recursive components see "modified, unknown" rather than "not
  // modified" for not-yet-processed members.
  for (Procedure *P : CG.procedures())
    RJFs.seedBottoms(P, MRI);

  // Bottom-up over SCCs: callees are ready before their callers, except
  // within a recursive component, where the pre-populated bottoms apply.
  for (const std::vector<Procedure *> &SCC : CG.sccsBottomUp()) {
    for (Procedure *P : SCC) {
      auto SSAIt = SSA.find(P);
      assert(SSAIt != SSA.end() && "missing SSA for procedure");
      RJFs.liftProcedure(P, SSAIt->second, Ctx, UseGatedSSA);
    }
  }

  return RJFs;
}
