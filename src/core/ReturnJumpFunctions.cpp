//===- core/ReturnJumpFunctions.cpp ---------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/ReturnJumpFunctions.h"

#include "support/Trace.h"

#include "core/ValueNumbering.h"

using namespace ipcp;

const JumpFunction *ReturnJumpFunctions::find(const Procedure *P,
                                              const Variable *Var) const {
  auto ProcIt = Table.find(P);
  if (ProcIt == Table.end())
    return nullptr;
  auto VarIt = ProcIt->second.find(Var);
  return VarIt == ProcIt->second.end() ? nullptr : &VarIt->second;
}

unsigned ReturnJumpFunctions::knownCount() const {
  unsigned Count = 0;
  for (const auto &[P, Vars] : Table)
    for (const auto &[Var, JF] : Vars)
      if (!JF.isBottom())
        ++Count;
  return Count;
}

unsigned ReturnJumpFunctions::entryCount() const {
  unsigned Count = 0;
  for (const auto &[P, Vars] : Table)
    Count += Vars.size();
  return Count;
}

ReturnJumpFunctions ReturnJumpFunctions::build(const CallGraph &CG,
                                               const ModRefInfo &MRI,
                                               const SSAMap &SSA,
                                               SymExprContext &Ctx,
                                               bool UseGatedSSA) {
  ReturnJumpFunctions RJFs;
  ScopedTraceSpan BuildSpan("return-jf");

  // Pre-populate bottom entries for every modifiable variable, so that
  // recursive components see "modified, unknown" rather than "not
  // modified" for not-yet-processed members.
  for (Procedure *P : CG.procedures()) {
    auto &Entries = RJFs.Table[P];
    for (unsigned I = 0, E = P->getNumFormals(); I != E; ++I)
      if (MRI.formalMayBeModified(P, I))
        Entries.emplace(P->formals()[I], JumpFunction::bottom());
    for (Variable *G : MRI.modifiedGlobals(P))
      Entries.emplace(G, JumpFunction::bottom());
  }

  // Bottom-up over SCCs: callees are ready before their callers, except
  // within a recursive component, where the pre-populated bottoms apply.
  for (const std::vector<Procedure *> &SCC : CG.sccsBottomUp()) {
    for (Procedure *P : SCC) {
      traceEvent("return-jf.proc", P->getName());
      auto SSAIt = SSA.find(P);
      assert(SSAIt != SSA.end() && "missing SSA for procedure");
      const SSAResult &ProcSSA = SSAIt->second;

      auto &Entries = RJFs.Table[P];
      if (Entries.empty())
        continue;
      if (ProcSSA.ExitValues.empty())
        continue; // never returns: bottoms stay (never consulted anyway)

      SymbolicLifter Lifter(Ctx, ProcSSA, &RJFs, CallOutMode::Symbolic,
                            UseGatedSSA);
      for (auto &[Var, JF] : Entries) {
        auto ExitIt = ProcSSA.ExitValues.find(const_cast<Variable *>(Var));
        if (ExitIt == ProcSSA.ExitValues.end())
          continue; // not promoted here (e.g. global untouched): bottom
        JF = JumpFunction(Lifter.lift(ExitIt->second));
      }
    }
  }

  return RJFs;
}
