//===- core/ReturnJumpFunctions.h - Return jump functions -------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Return jump functions (paper Section 3.2): for each formal parameter
/// (and, as the natural extension of the paper's footnote 1, each global)
/// that a procedure may modify, the best approximation of its value on
/// return, as a polynomial over the procedure's entry values.
///
/// They are "calculated during an initial bottom-up pass through the call
/// graph": we walk Tarjan SCCs callee-first; inside a recursive component
/// the not-yet-built members resolve to bottom, keeping the single pass
/// sound. Interprocedural MOD information determines which variables need
/// a return jump function at all, and already-built return jump functions
/// feed the value numbering of later procedures, exactly as described.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_RETURNJUMPFUNCTIONS_H
#define IPCP_CORE_RETURNJUMPFUNCTIONS_H

#include "analysis/CallGraph.h"
#include "analysis/ModRef.h"
#include "analysis/SSAConstruction.h"
#include "core/JumpFunction.h"

#include <map>
#include <unordered_map>

namespace ipcp {

/// Per-procedure SSA results, keyed by procedure.
using SSAMap = std::unordered_map<Procedure *, SSAResult>;

/// The table of return jump functions for one module.
class ReturnJumpFunctions {
public:
  /// Empty table; the incremental pipeline fills it procedure by
  /// procedure (seedBottoms/liftProcedure for dirty procedures, insert
  /// for cache-restored ones). The batch build() below remains the
  /// cold-path entry point and is implemented on top of the same steps.
  ReturnJumpFunctions() = default;

  /// Builds the table bottom-up. \p SSA must contain every procedure.
  /// \p UseGatedSSA selects the gated phi resolution (Options.h).
  static ReturnJumpFunctions build(const CallGraph &CG, const ModRefInfo &MRI,
                                   const SSAMap &SSA, SymExprContext &Ctx,
                                   bool UseGatedSSA = false);

  /// Pre-populates bottom entries for every variable \p P may modify, so
  /// recursive components see "modified, unknown" rather than "not
  /// modified" for not-yet-lifted members. Must run for every member of
  /// an SCC before liftProcedure runs for any of them.
  void seedBottoms(Procedure *P, const ModRefInfo &MRI);

  /// Lifts \p P's exit values into its (already seeded) entries. Callee
  /// entries this lift consults must be final (bottom-up SCC order).
  void liftProcedure(Procedure *P, const SSAResult &ProcSSA,
                     SymExprContext &Ctx, bool UseGatedSSA);

  /// Installs one entry directly (cache restore path).
  void insert(const Procedure *P, const Variable *Var, JumpFunction JF) {
    Table[P].insert_or_assign(Var, std::move(JF));
  }

  /// All entries of \p P in deterministic (variable-ID) order; null when
  /// \p P modifies nothing.
  const std::map<const Variable *, JumpFunction, VariableIdLess> *
  entriesOf(const Procedure *P) const {
    auto It = Table.find(P);
    return It == Table.end() ? nullptr : &It->second;
  }

  /// Three-way lookup:
  ///  - null: \p P does not modify \p Var (no return jump function needed;
  ///    the variable's value passes through the call untouched — but then
  ///    no CallOut exists and this is never asked);
  ///  - bottom JumpFunction: modified, value unknown;
  ///  - expression: the value of \p Var on return as a function of \p P's
  ///    entry values.
  const JumpFunction *find(const Procedure *P, const Variable *Var) const;

  /// Number of non-bottom return jump functions (for statistics).
  unsigned knownCount() const;

  /// Total entries (modifiable variables across all procedures).
  unsigned entryCount() const;

private:
  // Keyed by (procedure, variable) with deterministic inner ordering.
  std::unordered_map<const Procedure *,
                     std::map<const Variable *, JumpFunction, VariableIdLess>>
      Table;
};

} // namespace ipcp

#endif // IPCP_CORE_RETURNJUMPFUNCTIONS_H
