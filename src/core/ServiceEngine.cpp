//===- core/ServiceEngine.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/ServiceEngine.h"

#include "core/Pipeline.h"
#include "core/Report.h"
#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "support/ContentStore.h"
#include "support/FaultInjection.h"
#include "support/StableHash.h"

#include <algorithm>
#include <condition_variable>
#include <stdexcept>

using namespace ipcp;

//===----------------------------------------------------------------------===//
// Request codec
//===----------------------------------------------------------------------===//

namespace {

bool fail(std::string *ErrorCode, std::string *Error, const char *Code,
          std::string Message) {
  if (ErrorCode)
    *ErrorCode = Code;
  if (Error)
    *Error = std::move(Message);
  return false;
}

/// Reads an optional boolean member; type mismatch is a request error.
bool readBool(const JsonValue &Obj, const char *Key, bool &Out,
              std::string *Error) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return true;
  if (!V->isBool()) {
    *Error = std::string("'") + Key + "' must be a boolean";
    return false;
  }
  Out = V->asBool();
  return true;
}

/// Reads an optional string member.
bool readString(const JsonValue &Obj, const char *Key, std::string &Out,
                std::string *Error) {
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return true;
  if (!V->isString()) {
    *Error = std::string("'") + Key + "' must be a string";
    return false;
  }
  Out = V->asString();
  return true;
}

/// Reads an optional non-negative integer member.
bool readUint(const JsonValue &Obj, const char *Key, uint64_t &Out,
              bool &Present, std::string *Error) {
  Present = false;
  const JsonValue *V = Obj.find(Key);
  if (!V)
    return true;
  if (!V->isInt() || V->asInt() < 0) {
    *Error = std::string("'") + Key + "' must be a non-negative integer";
    return false;
  }
  Out = uint64_t(V->asInt());
  Present = true;
  return true;
}

/// Parses the "options" object (keys mirror the report's "options"
/// member; see docs/SERVICE.md). Unknown keys are rejected so a typo
/// cannot silently analyze under defaults.
bool parseOptionsObject(const JsonValue &Obj, IPCPOptions &Opts,
                        std::string *Error) {
  static const char *const Known[] = {
      "forward_jf", "return_jf",     "mod_information", "intraprocedural_only",
      "gated_ssa",  "binding_graph", "max_expr_nodes",  "engine",
      "max_contexts"};
  for (const auto &[Key, Val] : Obj.members()) {
    if (std::find_if(std::begin(Known), std::end(Known), [&](const char *K) {
          return Key == K;
        }) == std::end(Known)) {
      *Error = "unknown options key '" + Key + "'";
      return false;
    }
  }
  std::string Kind;
  if (!readString(Obj, "forward_jf", Kind, Error))
    return false;
  if (!Kind.empty()) {
    if (Kind == "literal")
      Opts.ForwardKind = JumpFunctionKind::Literal;
    else if (Kind == "intra")
      Opts.ForwardKind = JumpFunctionKind::IntraproceduralConstant;
    else if (Kind == "passthrough" || Kind == "pass-through")
      Opts.ForwardKind = JumpFunctionKind::PassThrough;
    else if (Kind == "polynomial")
      Opts.ForwardKind = JumpFunctionKind::Polynomial;
    else {
      *Error = "unknown jump function class '" + Kind + "'";
      return false;
    }
  }
  if (!readBool(Obj, "return_jf", Opts.UseReturnJumpFunctions, Error) ||
      !readBool(Obj, "mod_information", Opts.UseModInformation, Error) ||
      !readBool(Obj, "intraprocedural_only", Opts.IntraproceduralOnly,
                Error) ||
      !readBool(Obj, "gated_ssa", Opts.UseGatedSSA, Error) ||
      !readBool(Obj, "binding_graph", Opts.UseBindingGraphPropagator, Error))
    return false;
  std::string Engine;
  if (!readString(Obj, "engine", Engine, Error))
    return false;
  if (!Engine.empty()) {
    if (Engine == "jump")
      Opts.Engine = PropagationEngine::Jump;
    else if (Engine == "contexts")
      Opts.Engine = PropagationEngine::Contexts;
    else {
      *Error = "unknown propagation engine '" + Engine + "'";
      return false;
    }
  }
  uint64_t MaxExpr = 0;
  bool Present = false;
  if (!readUint(Obj, "max_expr_nodes", MaxExpr, Present, Error))
    return false;
  if (Present) {
    if (MaxExpr == 0 || MaxExpr > 1u << 20) {
      *Error = "'max_expr_nodes' must be in [1, 1048576]";
      return false;
    }
    Opts.MaxExprNodes = unsigned(MaxExpr);
  }
  uint64_t MaxCtx = 0;
  if (!readUint(Obj, "max_contexts", MaxCtx, Present, Error))
    return false;
  if (Present) {
    if (MaxCtx == 0 || MaxCtx > 1u << 20) {
      *Error = "'max_contexts' must be in [1, 1048576]";
      return false;
    }
    Opts.MaxContexts = unsigned(MaxCtx);
  }
  return true;
}

/// Effective value of one budget: the request overrides the server
/// default, but a server-configured (non-zero) budget is a ceiling the
/// request cannot raise or disable.
uint64_t mergeLimit(uint64_t Server, bool Requested, uint64_t Request) {
  if (!Requested)
    return Server;
  if (Server != 0 && (Request == 0 || Request > Server))
    return Server;
  return Request;
}

/// Parses the "limits" object against the server defaults (keys are the
/// driver's --limit-* flags with underscores; see docs/SERVICE.md).
bool parseLimitsObject(const JsonValue &Obj, const ResourceLimits &Defaults,
                       ResourceLimits &Out, std::string *Error) {
  static const char *const Known[] = {"parse_depth", "tokens",     "ast_nodes",
                                      "ir_insts",    "prop_evals", "deadline_ms"};
  for (const auto &[Key, Val] : Obj.members()) {
    if (std::find_if(std::begin(Known), std::end(Known), [&](const char *K) {
          return Key == K;
        }) == std::end(Known)) {
      *Error = "unknown limits key '" + Key + "'";
      return false;
    }
  }
  Out = Defaults;
  uint64_t V = 0;
  bool Present = false;
  if (!readUint(Obj, "parse_depth", V, Present, Error))
    return false;
  if (Present) {
    if (V == 0 || V > 1u << 20) {
      *Error = "'parse_depth' must be in [1, 1048576]";
      return false;
    }
    // Parse depth is always finite, so "stricter wins" is a plain min.
    Out.MaxParseDepth = unsigned(std::min<uint64_t>(V, Defaults.MaxParseDepth));
  }
  if (!readUint(Obj, "tokens", V, Present, Error))
    return false;
  Out.MaxTokens = mergeLimit(Defaults.MaxTokens, Present, V);
  if (!readUint(Obj, "ast_nodes", V, Present, Error))
    return false;
  Out.MaxAstNodes = mergeLimit(Defaults.MaxAstNodes, Present, V);
  if (!readUint(Obj, "ir_insts", V, Present, Error))
    return false;
  Out.MaxIRInstructions = mergeLimit(Defaults.MaxIRInstructions, Present, V);
  if (!readUint(Obj, "prop_evals", V, Present, Error))
    return false;
  Out.MaxPropagationEvals = mergeLimit(Defaults.MaxPropagationEvals, Present, V);
  if (!readUint(Obj, "deadline_ms", V, Present, Error))
    return false;
  Out.DeadlineMs = mergeLimit(Defaults.DeadlineMs, Present, V);
  return true;
}

} // namespace

ServiceEngine::ServiceEngine(Config C) : Conf(std::move(C)) {
  // A cache directory without an injected store means this engine owns a
  // private content-addressed tier; the sharded service instead passes
  // one shared store to every shard.
  if (!Conf.Store && !Conf.CacheDir.empty()) {
    ContentStore::Options StoreOpts;
    StoreOpts.Durable = Conf.DurableStore;
    Conf.Store = std::make_shared<ContentStore>(Conf.CacheDir, StoreOpts);
  }
}

ServiceEngine::~ServiceEngine() { shutdownFlush(); }

/// Parses the analyze-specific fields of \p Obj into \p Req.
static bool parseAnalyzeFields(const JsonValue &Obj,
                               const ServiceEngine::Config &Conf,
                               ServiceRequest &Req, std::string *Error) {
  if (!readString(Obj, "source", Req.Source, Error) ||
      !readString(Obj, "suite", Req.Suite, Error) ||
      !readString(Obj, "name", Req.Name, Error) ||
      !readString(Obj, "session", Req.Session, Error) ||
      !readBool(Obj, "complete", Req.Complete, Error) ||
      !readBool(Obj, "scrub_timings", Req.ScrubTimings, Error))
    return false;
  bool HasSource = Obj.find("source") != nullptr;
  bool HasSuite = Obj.find("suite") != nullptr;
  if (HasSource == HasSuite) {
    *Error = std::string(Req.Optimize ? "an optimize" : "an analyze") +
             " request needs exactly one of 'source' or 'suite'";
    return false;
  }
  if (HasSuite && Req.Suite.empty()) {
    *Error = "'suite' must name a suite program";
    return false;
  }
  if (Req.Name.empty())
    Req.Name = HasSuite ? Req.Suite : "<request>";

  Req.Opts = IPCPOptions();
  Req.Opts.Limits = Conf.DefaultLimits;
  if (const JsonValue *Options = Obj.find("options")) {
    if (!Options->isObject()) {
      *Error = "'options' must be an object";
      return false;
    }
    if (!parseOptionsObject(*Options, Req.Opts, Error))
      return false;
  }
  if (const JsonValue *Limits = Obj.find("limits")) {
    if (!Limits->isObject()) {
      *Error = "'limits' must be an object";
      return false;
    }
    if (!parseLimitsObject(*Limits, Conf.DefaultLimits, Req.Opts.Limits,
                           Error))
      return false;
  }
  if (const JsonValue *Passes = Obj.find("passes")) {
    if (!Passes->isString()) {
      *Error = "'passes' must be a string";
      return false;
    }
    if (!parsePassSpec(Passes->asString(), Req.Passes, Error))
      return false;
  }
  return true;
}

/// Request keys valid for each operation; anything else is rejected.
/// Optimize shares Kind::Analyze but has its own key set: no 'session'
/// or 'complete' (optimization mutates the module, so neither the
/// session cache nor the complete-propagation mode composes with it),
/// plus the pass selector 'passes'.
static bool checkKnownKeys(const JsonValue &Obj, const ServiceRequest &Req,
                           std::string *Error) {
  static const char *const AnalyzeKeys[] = {
      "op",      "id",       "source", "suite",         "name",
      "session", "complete", "limits", "scrub_timings", "options"};
  static const char *const OptimizeKeys[] = {
      "op",     "id",            "source",  "suite", "name",
      "limits", "scrub_timings", "options", "passes"};
  static const char *const BatchKeys[] = {"op", "id", "requests"};
  static const char *const ControlKeys[] = {"op", "id"};
  ServiceRequest::Kind Op = Req.Op;
  const char *const *Begin = ControlKeys, *const *End = std::end(ControlKeys);
  if (Op == ServiceRequest::Kind::Analyze && Req.Optimize) {
    Begin = OptimizeKeys;
    End = std::end(OptimizeKeys);
  } else if (Op == ServiceRequest::Kind::Analyze) {
    Begin = AnalyzeKeys;
    End = std::end(AnalyzeKeys);
  } else if (Op == ServiceRequest::Kind::AnalyzeBatch) {
    Begin = BatchKeys;
    End = std::end(BatchKeys);
  }
  for (const auto &[Key, Val] : Obj.members()) {
    if (std::find_if(Begin, End,
                     [&](const char *K) { return Key == K; }) == End) {
      *Error = "unknown request key '" + Key + "'";
      return false;
    }
  }
  return true;
}

bool ServiceEngine::parseRequestLine(const std::string &Line,
                                     ServiceRequest &Req,
                                     std::string *ErrorCode,
                                     std::string *Error) const {
  std::string ParseError;
  std::optional<JsonValue> Doc = JsonValue::parse(Line, &ParseError);
  if (!Doc)
    return fail(ErrorCode, Error, "bad-json", ParseError);
  if (!Doc->isObject())
    return fail(ErrorCode, Error, "bad-request", "request must be an object");

  Req = ServiceRequest();
  if (const JsonValue *Id = Doc->find("id")) {
    Req.Id = *Id;
    Req.HasId = true;
  }
  const JsonValue *Op = Doc->find("op");
  if (!Op || !Op->isString())
    return fail(ErrorCode, Error, "bad-request",
                "request needs a string 'op'");
  const std::string &Name = Op->asString();
  if (Name == "analyze")
    Req.Op = ServiceRequest::Kind::Analyze;
  else if (Name == "optimize") {
    Req.Op = ServiceRequest::Kind::Analyze;
    Req.Optimize = true;
  } else if (Name == "analyze-batch")
    Req.Op = ServiceRequest::Kind::AnalyzeBatch;
  else if (Name == "stats")
    Req.Op = ServiceRequest::Kind::Stats;
  else if (Name == "flush-cache")
    Req.Op = ServiceRequest::Kind::FlushCache;
  else if (Name == "shutdown")
    Req.Op = ServiceRequest::Kind::Shutdown;
  else
    return fail(ErrorCode, Error, "bad-request",
                "unknown op '" + Name + "'");

  std::string FieldError;
  if (!checkKnownKeys(*Doc, Req, &FieldError))
    return fail(ErrorCode, Error, "bad-request", FieldError);

  if (Req.Op == ServiceRequest::Kind::Analyze) {
    if (!parseAnalyzeFields(*Doc, Conf, Req, &FieldError))
      return fail(ErrorCode, Error, "bad-request", FieldError);
    return true;
  }
  if (Req.Op == ServiceRequest::Kind::AnalyzeBatch) {
    const JsonValue *Items = Doc->find("requests");
    if (!Items || !Items->isArray())
      return fail(ErrorCode, Error, "bad-request",
                  "'analyze-batch' needs a 'requests' array");
    if (Items->size() == 0)
      return fail(ErrorCode, Error, "bad-request",
                  "'requests' must not be empty");
    for (size_t I = 0; I != Items->size(); ++I) {
      const JsonValue &Item = Items->at(I);
      if (!Item.isObject())
        return fail(ErrorCode, Error, "bad-request",
                    "batch item " + std::to_string(I) +
                        " must be an object");
      if (const JsonValue *ItemOp = Item.find("op"))
        if (!ItemOp->isString() || ItemOp->asString() != "analyze")
          return fail(ErrorCode, Error, "bad-request",
                      "batch item " + std::to_string(I) +
                          " may only be an analyze request");
      ServiceRequest Sub;
      Sub.Op = ServiceRequest::Kind::Analyze;
      if (const JsonValue *Id = Item.find("id")) {
        Sub.Id = *Id;
        Sub.HasId = true;
      }
      if (!checkKnownKeys(Item, Sub, &FieldError) ||
          !parseAnalyzeFields(Item, Conf, Sub, &FieldError))
        return fail(ErrorCode, Error, "bad-request",
                    "batch item " + std::to_string(I) + ": " + FieldError);
      Req.Batch.push_back(std::move(Sub));
    }
    return true;
  }
  return true; // stats / flush-cache / shutdown carry no other fields
}

//===----------------------------------------------------------------------===//
// Sessions: resident caches with LRU eviction and a write-behind tier
//===----------------------------------------------------------------------===//

struct ServiceEngine::SessionState {
  // Always memory-only: the write-behind tier is the engine's
  // ContentStore, not the SummaryCache's own file path.
  SummaryCache Cache;
  std::mutex Lock; ///< serializes analyses sharing this session
  unsigned Bucket = 0; ///< fixed eviction domain, bucketFor(key)
  uint64_t LastUse = 0;
  bool Dirty = false;         ///< committed entries not yet persisted
  bool TriedDiskLoad = false; ///< write-behind tier consulted once
  std::string SourceName;
  IPCPOptions SaveOpts; ///< options of the last run, for save()
  bool HasSaveOpts = false;

  /// Ticket turnstile: turns are issued (NextTicket) in request arrival
  /// order and served (NowServing) strictly in that order, so the warm/
  /// cold sequence of a session is independent of pool scheduling.
  /// Atomics so the eviction scan can read them without taking Lock.
  std::atomic<uint64_t> NextTicket{0};
  std::atomic<uint64_t> NowServing{0};
  std::condition_variable TurnReady;
};

namespace {

/// Consumes one session turn on scope exit. Destroyed while the session
/// lock is still held (declared after the unique_lock), so the serving
/// counter advances before the lock releases.
struct TurnFinisher {
  std::shared_ptr<ServiceEngine::SessionState> S;
  ~TurnFinisher();
};

TurnFinisher::~TurnFinisher() {
  if (!S)
    return;
  S->NowServing.fetch_add(1);
  S->TurnReady.notify_all();
}

} // namespace

std::string ServiceEngine::sessionKeyFor(const ServiceRequest &Req) {
  // Distinct options must never share a cache: summaries are only valid
  // under the configuration that produced them, so the fingerprint is
  // part of the resident key (exactly as it is part of the store's
  // logical names).
  if (Req.Op != ServiceRequest::Kind::Analyze || Req.Session.empty() ||
      Req.Complete || Req.Optimize)
    return std::string();
  return Req.Session + '\x1f' + Req.Name + '\x1f' +
         SummaryCache::optionsFingerprint(Req.Opts);
}

unsigned ServiceEngine::bucketFor(const std::string &SessionKey) {
  return unsigned(stableHashBytes(SessionKey) % CacheBuckets);
}

/// The content store's logical name for a session's summaries: source
/// name + options fingerprint, with no session component — sessions
/// analyzing the same program under the same options share one entry,
/// and any shard resolves any other shard's persisted work.
static std::string storeLogicalName(const std::string &SourceName,
                                    const IPCPOptions &Opts) {
  return SourceName + '\n' + SummaryCache::optionsFingerprint(Opts);
}

ServiceEngine::SessionTurn
ServiceEngine::acquireSession(const ServiceRequest &Req) {
  std::string Key = sessionKeyFor(Req);
  SessionTurn Turn;
  bool Fresh = false;
  std::vector<std::shared_ptr<SessionState>> Evicted;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    std::shared_ptr<SessionState> &Slot = Sessions[Key];
    if (!Slot) {
      Slot = std::make_shared<SessionState>();
      Slot->Bucket = bucketFor(Key);
      Fresh = true;
    }
    Slot->LastUse = ++UseCounter;
    Turn.S = Slot;
    Turn.Ticket = Turn.S->NextTicket.fetch_add(1);
    evictOverflowSessions(Turn.S->Bucket, Evicted);
  }
  // Persist evicted sessions outside the map lock: saving can do disk
  // I/O and must wait for every turn the session has already been
  // issued. Draining (rather than skipping busy victims) keeps the
  // eviction point a function of the request stream, not of whether the
  // pool happened to finish the victim's work yet.
  for (const std::shared_ptr<SessionState> &E : Evicted) {
    std::unique_lock<std::mutex> Lock(E->Lock);
    E->TurnReady.wait(Lock, [&] {
      return E->NextTicket.load() == E->NowServing.load();
    });
    ++StatEvictions;
    persistSession(*E);
  }
  // Consult the write-behind tier here, on the ordering thread, after
  // this acquire's evictions persisted: the store is read at a stream-
  // determined point, so whether a fresh session starts warm never
  // depends on when the pool schedules its first analysis.
  if (Fresh && Conf.Store) {
    Turn.S->TriedDiskLoad = true;
    std::string Bytes;
    if (Conf.Store->get(storeLogicalName(Req.Name, Req.Opts), Bytes) &&
        Turn.S->Cache.loadFromString(Bytes, Req.Opts))
      ++StatDiskLoads;
  }
  return Turn;
}

void ServiceEngine::evictOverflowSessions(
    unsigned Bucket, std::vector<std::shared_ptr<SessionState>> &Out) {
  // Caller holds SessionsMutex. Eviction is scoped to one fixed hash
  // bucket and is strict LRU within it: LastUse orders acquires, which
  // follow the request stream, so the set of evictions after any stream
  // prefix is the same for every shard count and jobs setting. The
  // just-acquired session has the highest LastUse and is never the
  // victim while another resident shares its bucket; busy victims are
  // drained by the caller, not skipped.
  unsigned Cap = Conf.MaxSessions ? Conf.MaxSessions : 1;
  for (;;) {
    size_t Resident = 0;
    auto Victim = Sessions.end();
    for (auto It = Sessions.begin(); It != Sessions.end(); ++It) {
      if (It->second->Bucket != Bucket)
        continue;
      ++Resident;
      if (Victim == Sessions.end() ||
          It->second->LastUse < Victim->second->LastUse)
        Victim = It;
    }
    if (Resident <= Cap)
      return;
    Out.push_back(Victim->second);
    Sessions.erase(Victim);
  }
}

unsigned ServiceEngine::persistSession(SessionState &S) {
  // Caller holds S.Lock. The serialized cache goes into the content
  // store under its bytes' own key; identical caches persisted by other
  // sessions (or other shards) dedupe to one object.
  if (!Conf.Store || !S.Dirty || !S.HasSaveOpts)
    return 0;
  std::string Error;
  if (!Conf.Store
           ->putNamed(storeLogicalName(S.SourceName, S.SaveOpts),
                      S.Cache.serialize(S.SaveOpts), &Error)
           .empty())
    ++StatWriteBehindSaves;
  else
    ++StatWriteBehindFailures;
  S.Dirty = false;
  return 1;
}

size_t ServiceEngine::residentSessions() const {
  std::lock_guard<std::mutex> Lock(SessionsMutex);
  return Sessions.size();
}

//===----------------------------------------------------------------------===//
// Request execution
//===----------------------------------------------------------------------===//

JsonValue ServiceEngine::analyze(const ServiceRequest &Req) {
  return analyze(Req, reserveTurn(Req));
}

ServiceEngine::SessionTurn
ServiceEngine::reserveTurn(const ServiceRequest &Req) {
  // Session caching follows the driver's --cache-dir rule: single-run
  // analyses only (complete propagation and the transform pipeline both
  // re-analyze a mutated module).
  if (Req.Op != ServiceRequest::Kind::Analyze || Req.Session.empty() ||
      Req.Complete || Req.Optimize)
    return SessionTurn();
  return acquireSession(Req);
}

JsonValue ServiceEngine::analyze(const ServiceRequest &Req, SessionTurn Turn) {
  ++StatAnalyses;
  if (Req.Optimize)
    ++StatOptimizes;

  // Enter the session turn before doing anything observable: the warm/
  // cold order of a session is its ticket order, and even an erroring
  // request must consume its turn or the session wedges. TurnDone is
  // declared after SessionLock so it runs first on every return path,
  // advancing the turnstile while the lock is still held.
  std::shared_ptr<SessionState> Session = Turn.S;
  std::unique_lock<std::mutex> SessionLock;
  TurnFinisher TurnDone{Session};
  if (Session) {
    SessionLock = std::unique_lock<std::mutex>(Session->Lock);
    Session->TurnReady.wait(SessionLock, [&] {
      return Session->NowServing.load() == Turn.Ticket;
    });
  }

  // The failure boundary: whatever the pipeline throws becomes a
  // structured, retryable "internal" error response. Nothing below this
  // point marks the session dirty before its run committed, so an
  // aborted run is never persisted — the staged (uncommitted) entries
  // are discarded by the next run's beginRun, and the last committed
  // state remains valid. The turnstile and lock unwind normally, so the
  // session keeps serving.
  try {
    std::string Msg;
    if (faultInjector().shouldFail("service.analyze", &Msg))
      throw std::runtime_error(Msg);
    return analyzeLocked(Req, Session.get());
  } catch (const std::exception &E) {
    ++StatErrors;
    ++StatInternalErrors;
    JsonValue Body = JsonValue::object();
    Body.set("status", "error");
    Body.set("error", serviceErrorObject("internal", E.what()));
    return Body;
  } catch (...) {
    ++StatErrors;
    ++StatInternalErrors;
    JsonValue Body = JsonValue::object();
    Body.set("status", "error");
    Body.set("error", serviceErrorObject("internal", "unhandled exception"));
    return Body;
  }
}

JsonValue ServiceEngine::analyzeLocked(const ServiceRequest &Req,
                                       SessionState *Session) {
  IPCPOptions Opts = Req.Opts;
  bool Scrub = Req.ScrubTimings || Conf.ScrubTimings;
  JsonValue Body = JsonValue::object();

  std::string SourceText = Req.Source;
  if (!Req.Suite.empty() &&
      (!Conf.SuiteResolver || !Conf.SuiteResolver(Req.Suite, SourceText))) {
    ++StatErrors;
    Body.set("status", "error");
    Body.set("error", serviceErrorObject(
                          "unknown-suite",
                          "no suite program named '" + Req.Suite + "'"));
    return Body;
  }

  // From here on the request follows exactly the driver's code path
  // (examples/ipcp_driver.cpp), so the embedded report is byte-identical
  // to `ipcp_driver --report-json` for the same program and options.
  ResourceGuard Guard(Opts.Limits);
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(SourceText, Diags, true, &Guard);
  if (!Ast) {
    if (!Guard.tripped()) {
      ++StatErrors;
      Body.set("status", "error");
      Body.set("error", serviceErrorObject("source-error", Diags.str()));
      return Body;
    }
    // A frontend budget trip degrades the request (driver exit code 5):
    // the response still carries a schema-valid, result-free report.
    PipelineStatus Status = Guard.status();
    AnalysisReport Report;
    Report.SourceName = Req.Name;
    Report.Opts = &Opts;
    Report.Status = &Status;
    JsonValue Doc = buildAnalysisReport(Report);
    if (Scrub)
      scrubReportTimings(Doc);
    ++StatDegraded;
    Body.set("status", "degraded");
    Body.set("report", std::move(Doc));
    return Body;
  }

  std::unique_ptr<Module> M = lowerProgram(*Ast);
  Guard.checkIRInstructions(M->instructionCount(), "lowering");
  Guard.checkDeadline("lowering");

  // Optimize requests run the transform pipeline first, then analyze the
  // optimized module — the same order as `ipcp_driver --optimize`, so
  // the embedded report (result + optimization blocks) stays
  // byte-identical to the driver's. Session is always null here
  // (reserveTurn refuses optimize requests).
  std::optional<OptimizationResult> OptResult;
  if (Req.Optimize)
    OptResult = optimizeModule(*M, Opts, Req.Passes, &Guard);

  // The write-behind tier was already consulted in acquireSession, on
  // the ordering thread — doing it here would read the store at a
  // scheduling-dependent moment and break byte determinism.
  if (Session)
    Opts.Cache = &Session->Cache;

  std::optional<CompletePropagationResult> CompleteResult;
  std::optional<IPCPResult> SingleResult;
  if (Req.Complete)
    CompleteResult = runCompletePropagation(*M, Opts, 8, &Guard);
  else
    SingleResult = runIPCP(*M, Opts, &Guard);

  if (Session) {
    if (Session->Cache.committed()) {
      Session->Dirty = true;
      Session->SourceName = Req.Name;
      Session->SaveOpts = Opts;
      Session->SaveOpts.Cache = nullptr;
      Session->HasSaveOpts = true;
    }
    if (SingleResult && SingleResult->UsedCache) {
      StatCacheHits += SingleResult->Stats.get("cache_hits");
      StatCacheMisses += SingleResult->Stats.get("cache_misses");
      if (SingleResult->Stats.get("cache_hits") > 0)
        ++StatCacheWarmHits;
    }
  }

  PipelineStatus FinalStatus = Guard.status();
  AnalysisReport Report;
  Report.SourceName = Req.Name;
  Report.M = M.get();
  Report.Opts = &Opts;
  Report.Single = SingleResult ? &*SingleResult : nullptr;
  Report.Complete = CompleteResult ? &*CompleteResult : nullptr;
  Report.Optimization = OptResult ? &*OptResult : nullptr;
  Report.Status = &FinalStatus;
  JsonValue Doc = buildAnalysisReport(Report);
  if (Scrub)
    scrubReportTimings(Doc);

  if (FinalStatus.Degraded)
    ++StatDegraded;
  Body.set("status", FinalStatus.Degraded ? "degraded" : "ok");
  Body.set("report", std::move(Doc));
  return Body;
}

JsonValue ServiceEngine::analyzeBatchItem(const ServiceRequest &Item,
                                          size_t Index) {
  return analyzeBatchItem(Item, Index, reserveTurn(Item));
}

JsonValue ServiceEngine::analyzeBatchItem(const ServiceRequest &Item,
                                          size_t Index, SessionTurn Turn) {
  JsonValue Inner = analyze(Item, std::move(Turn));
  JsonValue Out = JsonValue::object();
  Out.set("index", uint64_t(Index));
  if (Item.HasId)
    Out.set("id", Item.Id);
  for (auto &[Key, Val] : Inner.members())
    Out.set(Key, std::move(Val));
  return Out;
}

JsonValue ServiceEngine::analyzeBatch(const ServiceRequest &Req) {
  noteBatch();
  JsonValue Responses = JsonValue::array();
  for (size_t I = 0; I != Req.Batch.size(); ++I)
    Responses.push(analyzeBatchItem(Req.Batch[I], I));
  JsonValue Body = JsonValue::object();
  Body.set("status", "ok");
  Body.set("responses", std::move(Responses));
  return Body;
}

JsonValue ServiceEngine::statsBody() {
  JsonValue Stats = JsonValue::object();
  Stats.set("analyze_requests", StatAnalyses.load());
  Stats.set("optimize_requests", StatOptimizes.load());
  Stats.set("degraded", StatDegraded.load());
  Stats.set("errors", StatErrors.load());
  Stats.set("internal_errors", StatInternalErrors.load());
  Stats.set("batches", StatBatches.load());
  Stats.set("busy_rejections", StatBusy.load());
  Stats.set("sessions_resident", uint64_t(residentSessions()));
  Stats.set("session_evictions", StatEvictions.load());
  Stats.set("warm_hits", StatCacheWarmHits.load());
  Stats.set("cache_hits", StatCacheHits.load());
  Stats.set("cache_misses", StatCacheMisses.load());
  Stats.set("write_behind_saves", StatWriteBehindSaves.load());
  Stats.set("write_behind_failures", StatWriteBehindFailures.load());
  Stats.set("disk_loads", StatDiskLoads.load());
  JsonValue Body = JsonValue::object();
  Body.set("status", "ok");
  Body.set("stats", std::move(Stats));
  return Body;
}

ServiceEngine::CountersSnapshot ServiceEngine::snapshot() const {
  CountersSnapshot S;
  S.Analyses = StatAnalyses.load();
  S.Optimizes = StatOptimizes.load();
  S.Degraded = StatDegraded.load();
  S.Errors = StatErrors.load();
  S.InternalErrors = StatInternalErrors.load();
  S.Batches = StatBatches.load();
  S.Busy = StatBusy.load();
  S.WarmHits = StatCacheWarmHits.load();
  S.CacheHits = StatCacheHits.load();
  S.CacheMisses = StatCacheMisses.load();
  S.Evictions = StatEvictions.load();
  S.WriteBehindSaves = StatWriteBehindSaves.load();
  S.WriteBehindFailures = StatWriteBehindFailures.load();
  S.DiskLoads = StatDiskLoads.load();
  S.Resident = residentSessions();
  return S;
}

JsonValue ServiceEngine::flushCacheBody() {
  std::unordered_map<std::string, std::shared_ptr<SessionState>> Dropped;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    Dropped.swap(Sessions);
  }
  unsigned Persisted = 0;
  for (const auto &[Key, S] : Dropped) {
    std::lock_guard<std::mutex> Lock(S->Lock);
    Persisted += persistSession(*S);
  }
  JsonValue Body = JsonValue::object();
  Body.set("status", "ok");
  Body.set("sessions_flushed", uint64_t(Dropped.size()));
  Body.set("persisted", uint64_t(Persisted));
  return Body;
}

unsigned ServiceEngine::shutdownFlush() {
  std::unordered_map<std::string, std::shared_ptr<SessionState>> Dropped;
  {
    std::lock_guard<std::mutex> Lock(SessionsMutex);
    Dropped.swap(Sessions);
  }
  unsigned Persisted = 0;
  for (const auto &[Key, S] : Dropped) {
    std::lock_guard<std::mutex> Lock(S->Lock);
    Persisted += persistSession(*S);
  }
  return Persisted;
}
