//===- core/ServiceEngine.h - Resident analysis service ---------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The analysis-as-a-service layer behind tools/ipcp_serverd
/// (docs/SERVICE.md). A ServiceEngine turns the one-shot pipeline into a
/// long-lived, thread-safe request handler:
///
///  * the `ipcp-service-v1` request codec — one newline-delimited JSON
///    object per request (`analyze`, `analyze-batch`, `stats`,
///    `flush-cache`, `shutdown`) parsed into a ServiceRequest, with every
///    malformed field reported as a structured error instead of a crash;
///
///  * session-scoped resident summary caches: a request naming a
///    `session` analyzes through an in-memory SummaryCache (PR-4's
///    incremental layer) that stays resident between requests, so repeat
///    and edited-program requests are warm without any file round-trip.
///    Sessions are LRU-evicted beyond Config::MaxSessions per fixed
///    hash bucket (CacheBuckets of them, shard-count-independent, so
///    eviction points are a function of the request stream alone); when
///    Config::CacheDir (or Config::Store) is set, a content-addressed
///    store (support/ContentStore) is the *write-behind* tier — sessions
///    persist on eviction, flush-cache, and shutdown, and a new session
///    first tries to resolve its logical name in the store. The logical
///    name is source name + options fingerprint, deliberately session-
///    independent, so every worker sharing one store (the sharded
///    daemon, or a restarted daemon) warm-starts from any worker's
///    persisted summaries;
///
///  * per-request ResourceGuard budgets: server-wide default limits
///    merged with per-request overrides (the stricter value wins for any
///    budget the server configures), so one pathological program
///    degrades its own request and nothing else;
///
///  * driver-parity reports: an analyze response embeds exactly the
///    `ipcp-report-v1` document `ipcp_driver --report-json` writes for
///    the same program and options — the differential tests and the CI
///    service-smoke job byte-compare the two (after timing scrub).
///
/// All entry points except the parse helpers are safe to call from
/// multiple threads; analyses of distinct sessions (and cache-less
/// analyses) run fully in parallel, while requests sharing one session
/// serialize on that session's lock *in arrival order*: the daemon
/// reserves a SessionTurn per request on its reader thread, and the
/// per-session ticket turnstile replays the serial warm/cold sequence
/// exactly no matter how the pool interleaves — which is what makes
/// concurrent responses byte-identical to a serial run.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_SERVICEENGINE_H
#define IPCP_CORE_SERVICEENGINE_H

#include "core/Options.h"
#include "core/SummaryCache.h"
#include "support/Json.h"
#include "transform/Transform.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipcp {

class ContentStore;

/// One parsed `ipcp-service-v1` request line.
struct ServiceRequest {
  enum class Kind { Analyze, AnalyzeBatch, Stats, FlushCache, Shutdown };
  Kind Op = Kind::Analyze;

  /// Client correlation id, echoed verbatim in the response envelope
  /// (any JSON value; absent when HasId is false).
  JsonValue Id;
  bool HasId = false;

  // -- analyze fields ----------------------------------------------------
  /// MiniFort source text (mutually exclusive with Suite).
  std::string Source;
  /// Name of a built-in suite program to analyze instead of Source.
  std::string Suite;
  /// Report source name (defaults to the suite name or "<request>").
  std::string Name;
  /// Resident-cache session key; empty disables the summary cache for
  /// this request.
  std::string Session;
  /// Run complete propagation (analysis interleaved with DCE) instead of
  /// a single analysis; such requests never use the cache (the driver's
  /// rule for --complete).
  bool Complete = false;
  /// The `optimize` op: run the transform pipeline on the program, then
  /// analyze the optimized module; the report gains an "optimization"
  /// block. Parsed like analyze minus 'session'/'complete' (optimization
  /// mutates the module, so such requests never use the session cache —
  /// the driver's rule for --optimize).
  bool Optimize = false;
  /// Pass selection for optimize requests (the "passes" member).
  TransformPassConfig Passes;
  /// Zero every wall-clock field in the embedded report.
  bool ScrubTimings = false;
  /// Analysis configuration ("options" object) and effective budgets
  /// ("limits" object merged with the server defaults).
  IPCPOptions Opts;

  // -- analyze-batch -----------------------------------------------------
  std::vector<ServiceRequest> Batch;
};

/// Long-lived, thread-safe analysis service over the pipeline.
class ServiceEngine {
public:
  struct Config {
    /// Root of the content-addressed write-behind tier for session
    /// caches; empty keeps sessions memory-only (unless Store is set).
    std::string CacheDir;
    /// The write-behind store itself. Left null, the engine creates a
    /// private ContentStore rooted at CacheDir; the sharded service
    /// injects one shared store into every shard instead, which is what
    /// lets any worker warm-start any session.
    std::shared_ptr<ContentStore> Store;
    /// Open the engine-created store in durable mode (fsync before
    /// rename; see support/ContentStore.h). Ignored when Store is
    /// injected — the creator of that store chooses.
    bool DurableStore = false;
    /// Resident session caches per cache bucket before LRU eviction.
    /// There are CacheBuckets fixed buckets (a pure hash of the session
    /// key), so service-wide residency is bounded by
    /// MaxSessions * CacheBuckets regardless of shard count — and the
    /// bucket, not the shard, is the eviction domain, which is what
    /// keeps eviction (and therefore every response byte) identical
    /// across shard counts.
    unsigned MaxSessions = 64;
    /// Default per-request budgets. A request's "limits" object
    /// overrides them field by field, except that a budget the server
    /// configures (non-zero) is a ceiling: the stricter value wins.
    ResourceLimits DefaultLimits;
    /// Zero wall-clock fields in every response (server-wide
    /// --scrub-timings).
    bool ScrubTimings = false;
    /// Resolves a request's "suite" name to source text (the daemon
    /// installs workload/Programs' findSuiteProgram; core itself has no
    /// workload dependency). Null rejects every suite request.
    std::function<bool(const std::string &Name, std::string &SourceOut)>
        SuiteResolver;
  };

  explicit ServiceEngine(Config C);
  ~ServiceEngine();

  ServiceEngine(const ServiceEngine &) = delete;
  ServiceEngine &operator=(const ServiceEngine &) = delete;

  struct SessionState;

  /// An ordered claim on a session's cache. Turns are issued in request
  /// arrival order (reserveTurn) and redeemed by analyze(); the session
  /// executes them strictly in issue order, so which request runs warm
  /// is a function of the request stream alone, never of thread timing.
  /// An empty turn (default-constructed, or reserved for a cache-less
  /// request) is a no-op.
  class SessionTurn {
    friend class ServiceEngine;
    std::shared_ptr<SessionState> S;
    uint64_t Ticket = 0;

  public:
    SessionTurn() = default;
    explicit operator bool() const { return S != nullptr; }
  };

  /// Issues the session turn for an analyze request. Call on the thread
  /// that orders requests (the daemon's reader), in arrival order;
  /// returns an empty turn for requests that do not use the session
  /// cache (no session, or complete propagation).
  SessionTurn reserveTurn(const ServiceRequest &Req);

  /// The resident-session key of an analyze request — session name,
  /// report name, and options fingerprint. This is also the sharded
  /// service's routing key: every request with the same key hashes to
  /// the same shard, so one shard owns each session's turnstile. Empty
  /// for requests that use no session cache.
  static std::string sessionKeyFor(const ServiceRequest &Req);

  /// Fixed number of session-cache buckets. A session key's bucket is a
  /// pure hash, independent of shard count and configuration; the
  /// sharded service maps whole buckets onto shards, and eviction runs
  /// per bucket, so which request runs warm never depends on how many
  /// shards the daemon was started with.
  static constexpr unsigned CacheBuckets = 16;
  static unsigned bucketFor(const std::string &SessionKey);

  /// Parses one request line. Returns false and fills \p Error (with
  /// \p ErrorCode one of "bad-json", "bad-request") when the line is not
  /// a well-formed request; \p Req is then unspecified.
  bool parseRequestLine(const std::string &Line, ServiceRequest &Req,
                        std::string *ErrorCode, std::string *Error) const;

  /// Executes one Analyze request (thread-safe; callable from pool
  /// workers). Returns the response body: {"status": "ok" | "degraded" |
  /// "error", "error"?: {...}, "report"?: {...ipcp-report-v1...}}.
  /// Reserves the session turn itself — the serial path.
  JsonValue analyze(const ServiceRequest &Req);

  /// Same, redeeming a turn reserved earlier with reserveTurn() — the
  /// daemon's concurrent path. Consumes the turn on every outcome
  /// (including errors), so a failed request never wedges its session.
  ///
  /// This is also the service's failure boundary: any exception thrown
  /// by the pipeline (or an injected `service.analyze` fault) is caught
  /// and converted into a structured, retryable "internal" error body —
  /// the worker thread and the session survive, and the session cache
  /// is never marked dirty by a failed run, so a poisoned run is never
  /// persisted.
  JsonValue analyze(const ServiceRequest &Req, SessionTurn Turn);

  /// Executes every item of an AnalyzeBatch request sequentially on the
  /// calling thread and returns the batch body ({"status", "responses":
  /// [...]}). The daemon instead fans items onto its pool and assembles
  /// the same body; both orders produce identical bytes.
  JsonValue analyzeBatch(const ServiceRequest &Req);

  /// One batch item's response object ({"index", "id"?, ...analyze
  /// body...}) — shared by analyzeBatch and the daemon's parallel path
  /// so the assembled bytes cannot diverge.
  JsonValue analyzeBatchItem(const ServiceRequest &Item, size_t Index);
  JsonValue analyzeBatchItem(const ServiceRequest &Item, size_t Index,
                             SessionTurn Turn);

  /// Counts one batch dispatch (the daemon's parallel path calls this
  /// once per batch; analyzeBatch does it itself).
  void noteBatch() { ++StatBatches; }

  /// The "stats" response body: request/session/cache counters.
  JsonValue statsBody();

  /// Point-in-time copy of every counter statsBody() reports, for
  /// aggregation across shards (core/ShardedService).
  struct CountersSnapshot {
    uint64_t Analyses = 0;
    uint64_t Optimizes = 0;
    uint64_t Degraded = 0;
    uint64_t Errors = 0;
    uint64_t InternalErrors = 0;
    uint64_t Batches = 0;
    uint64_t Busy = 0;
    uint64_t WarmHits = 0;
    uint64_t CacheHits = 0;
    uint64_t CacheMisses = 0;
    uint64_t Evictions = 0;
    uint64_t WriteBehindSaves = 0;
    uint64_t WriteBehindFailures = 0;
    uint64_t DiskLoads = 0;
    uint64_t Resident = 0;
  };
  CountersSnapshot snapshot() const;

  /// The "flush-cache" response body: persists every dirty session to
  /// the write-behind tier (when configured) and drops all resident
  /// sessions.
  JsonValue flushCacheBody();

  /// Counts a queue-full rejection (the daemon answers `busy`).
  void noteBusy() { ++StatBusy; }

  /// Persists dirty sessions on shutdown (write-behind final flush).
  /// Returns the number of sessions persisted.
  unsigned shutdownFlush();

  /// Number of resident session caches (tests and stats).
  size_t residentSessions() const;

  const Config &config() const { return Conf; }

private:
  JsonValue analyzeLocked(const ServiceRequest &Req, SessionState *Session);
  SessionTurn acquireSession(const ServiceRequest &Req);
  void evictOverflowSessions(unsigned Bucket,
                             std::vector<std::shared_ptr<SessionState>> &Out);
  unsigned persistSession(SessionState &S);

  Config Conf;

  mutable std::mutex SessionsMutex;
  std::unordered_map<std::string, std::shared_ptr<SessionState>> Sessions;
  uint64_t UseCounter = 0;

  std::atomic<uint64_t> StatAnalyses{0};
  std::atomic<uint64_t> StatOptimizes{0};
  std::atomic<uint64_t> StatDegraded{0};
  std::atomic<uint64_t> StatErrors{0};
  std::atomic<uint64_t> StatInternalErrors{0};
  std::atomic<uint64_t> StatBatches{0};
  std::atomic<uint64_t> StatBusy{0};
  std::atomic<uint64_t> StatCacheWarmHits{0};
  std::atomic<uint64_t> StatCacheHits{0};
  std::atomic<uint64_t> StatCacheMisses{0};
  std::atomic<uint64_t> StatEvictions{0};
  std::atomic<uint64_t> StatWriteBehindSaves{0};
  std::atomic<uint64_t> StatWriteBehindFailures{0};
  std::atomic<uint64_t> StatDiskLoads{0};
};

} // namespace ipcp

#endif // IPCP_CORE_SERVICEENGINE_H
