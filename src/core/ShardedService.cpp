//===- core/ShardedService.cpp --------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/ShardedService.h"

#include "core/Report.h"
#include "support/ContentStore.h"
#include "support/FaultInjection.h"
#include "support/StableHash.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <array>

using namespace ipcp;

//===----------------------------------------------------------------------===//
// Workers and construction
//===----------------------------------------------------------------------===//

/// One shard: an engine, its slice of the worker threads, and a depth
/// gauge for the stats op (submitted-but-unfinished tasks).
struct ShardedService::Worker {
  std::unique_ptr<ServiceEngine> Engine;
  std::unique_ptr<ThreadPool> Pool;
  std::atomic<uint64_t> Depth{0};
  std::atomic<uint64_t> Peak{0};
};

/// Shared in-flight state of one analyze-batch: items land in their
/// slots in any order (and on any shard); whoever finishes last
/// assembles the response.
struct ShardedService::BatchState {
  std::vector<JsonValue> Items;
  std::atomic<size_t> Remaining{0};
  uint64_t Seq = 0;
  JsonValue Id;
  bool HasId = false;
};

ShardedService::ShardedService(Config C)
    : Conf(std::move(C)), Gate(Conf.QueueLimit) {
  if (Conf.Shards == 0)
    Conf.Shards = 1;
  unsigned Jobs = Conf.Jobs ? Conf.Jobs : ThreadPool::defaultConcurrency();
  unsigned PerShard = std::max(1u, Jobs / Conf.Shards);
  // One content-addressed store shared by every shard — the property
  // that makes cross-shard warm starts work.
  if (!Conf.Engine.Store && !Conf.Engine.CacheDir.empty()) {
    ContentStore::Options StoreOpts;
    StoreOpts.Durable = Conf.Engine.DurableStore;
    Conf.Engine.Store =
        std::make_shared<ContentStore>(Conf.Engine.CacheDir, StoreOpts);
  }
  Store = Conf.Engine.Store;
  for (unsigned I = 0; I != Conf.Shards; ++I) {
    auto W = std::make_unique<Worker>();
    W->Engine = std::make_unique<ServiceEngine>(Conf.Engine);
    W->Pool = std::make_unique<ThreadPool>(PerShard);
    Workers.push_back(std::move(W));
  }
}

ShardedService::~ShardedService() = default;

ServiceEngine &ShardedService::engine(unsigned Shard) {
  return *Workers[Shard]->Engine;
}

unsigned ShardedService::shardIndexFor(const std::string &SessionKey,
                                       unsigned ShardCount) {
  // Shards own whole cache buckets: the key maps to one of the
  // ServiceEngine::CacheBuckets fixed buckets, and the bucket — not the
  // raw key — picks the shard. Each bucket (the eviction domain) then
  // lives wholly on one shard, so eviction points are a function of the
  // request stream, never of the shard count.
  return ShardCount <= 1
             ? 0
             : ServiceEngine::bucketFor(SessionKey) % ShardCount;
}

unsigned ShardedService::routeShard(const ServiceRequest &Req) {
  std::string Key = ServiceEngine::sessionKeyFor(Req);
  if (!Key.empty())
    return shardIndexFor(Key, shards());
  // Cache-less requests produce shard-independent bytes, so they just
  // balance across shards. The counter lives on the reader thread, so
  // the placement — and with it every per-shard counter — is a function
  // of the request stream, not of timing.
  return unsigned(RoundRobin++ % shards());
}

void ShardedService::submitToShard(unsigned Shard,
                                   std::function<void()> Task) {
  Worker &W = *Workers[Shard];
  uint64_t D = W.Depth.fetch_add(1) + 1;
  uint64_t P = W.Peak.load();
  while (D > P && !W.Peak.compare_exchange_weak(P, D)) {
  }
  W.Pool->submit([&W, Task = std::move(Task)] {
    Task();
    W.Depth.fetch_sub(1);
  });
}

void ShardedService::drainAll() {
  // No new work arrives while the reader thread sits in a control op,
  // so waiting the pools one by one is a true all-shard barrier.
  for (const std::unique_ptr<Worker> &W : Workers)
    W->Pool->wait();
}

//===----------------------------------------------------------------------===//
// Streams and dispatch
//===----------------------------------------------------------------------===//

std::unique_ptr<ShardedService::Stream> ShardedService::openStream() {
  return std::unique_ptr<Stream>(new Stream(Conf.ResultBuffer));
}

void ShardedService::pushEnvelope(Stream &St, uint64_t Seq,
                                  const JsonValue *Id, JsonValue Body) {
  St.Results.push(Seq,
                  buildServiceEnvelope(Seq, Id, std::move(Body)).dump() +
                      "\n");
}

static JsonValue errorBody(const std::string &Status, const std::string &Code,
                           const std::string &Message) {
  JsonValue Body = JsonValue::object();
  Body.set("status", Status);
  Body.set("error", serviceErrorObject(Code, Message));
  return Body;
}

/// The queue-full rejection. The backoff hint is a fixed constant, not
/// a load measurement: response bytes must stay a pure function of the
/// request stream (docs/SCALING.md), and clients add their own jitter
/// (ipcp_loadgen --retry-busy).
static JsonValue busyBody() {
  JsonValue Body =
      errorBody("busy", "busy", "request queue is full; retry later");
  Body.find("error")->set("retry_after_ms", uint64_t(10));
  return Body;
}

bool ShardedService::submitLine(Stream &St, const std::string &Line) {
  if (Line.find_first_not_of(" \t\r") == std::string::npos)
    return false; // blank keep-alive lines carry no request
  uint64_t Seq = St.NextSeq++;
  ServiceRequest Req;
  std::string Code, Error;
  // Parsing depends only on the shared Config, so shard 0's engine
  // parses for everyone.
  if (!Workers[0]->Engine->parseRequestLine(Line, Req, &Code, &Error)) {
    pushEnvelope(St, Seq, nullptr, errorBody("error", Code, Error));
    return false;
  }

  switch (Req.Op) {
  case ServiceRequest::Kind::Analyze: {
    if (!Gate.tryAcquire()) {
      ++StatBusy;
      pushEnvelope(St, Seq, Req.HasId ? &Req.Id : nullptr, busyBody());
      break;
    }
    unsigned Shard = routeShard(Req);
    ServiceEngine &E = *Workers[Shard]->Engine;
    // Reserve the session turn here on the reader thread, in arrival
    // order — the turnstile that makes concurrent bytes serial-equal.
    ServiceEngine::SessionTurn Turn = E.reserveTurn(Req);
    submitToShard(Shard,
                  [this, &St, &E, Seq, Req = std::move(Req), Turn]() mutable {
                    // Backstop behind the engine's own failure boundary:
                    // whatever happens, the sequence number is answered
                    // and the admission slot is released — a throwing
                    // request can never wedge the response stream.
                    JsonValue Body;
                    try {
                      Body = E.analyze(Req, std::move(Turn));
                    } catch (...) {
                      Body = errorBody("error", "internal",
                                       "analysis failed in worker");
                    }
                    pushEnvelope(St, Seq, Req.HasId ? &Req.Id : nullptr,
                                 std::move(Body));
                    Gate.release();
                  });
    break;
  }
  case ServiceRequest::Kind::AnalyzeBatch: {
    size_t N = Req.Batch.size();
    if (!Gate.tryAcquire(N)) {
      ++StatBusy;
      pushEnvelope(St, Seq, Req.HasId ? &Req.Id : nullptr, busyBody());
      break;
    }
    ++StatBatches;
    auto State = std::make_shared<BatchState>();
    State->Items.resize(N);
    State->Remaining.store(N);
    State->Seq = Seq;
    State->Id = Req.Id;
    State->HasId = Req.HasId;
    // Items route to their own shards; turns are reserved in item
    // order, so the batch replays the serial warm/cold sequence no
    // matter how the shard pools schedule the items.
    for (size_t I = 0; I != N; ++I) {
      unsigned Shard = routeShard(Req.Batch[I]);
      ServiceEngine &E = *Workers[Shard]->Engine;
      ServiceEngine::SessionTurn Turn = E.reserveTurn(Req.Batch[I]);
      submitToShard(
          Shard, [this, &St, &E, State, I, Item = Req.Batch[I],
                  Turn]() mutable {
            try {
              State->Items[I] = E.analyzeBatchItem(Item, I, std::move(Turn));
            } catch (...) {
              JsonValue Failed = JsonValue::object();
              Failed.set("index", uint64_t(I));
              if (Item.HasId)
                Failed.set("id", Item.Id);
              for (auto &[Key, Val] :
                   errorBody("error", "internal", "analysis failed in worker")
                       .members())
                Failed.set(Key, std::move(Val));
              State->Items[I] = std::move(Failed);
            }
            Gate.release();
            if (State->Remaining.fetch_sub(1) != 1)
              return;
            JsonValue Responses = JsonValue::array();
            for (JsonValue &R : State->Items)
              Responses.push(std::move(R));
            JsonValue Body = JsonValue::object();
            Body.set("status", "ok");
            Body.set("responses", std::move(Responses));
            pushEnvelope(St, State->Seq,
                         State->HasId ? &State->Id : nullptr,
                         std::move(Body));
          });
    }
    break;
  }
  case ServiceRequest::Kind::Stats: {
    // Sample queue gauges at arrival — the drain below would read them
    // as zero — then barrier so the counters are a function of the
    // request stream alone.
    std::vector<std::array<uint64_t, 2>> Depths;
    for (const std::unique_ptr<Worker> &W : Workers)
      Depths.push_back({W->Depth.load(), W->Peak.load()});
    drainAll();
    JsonValue Body = statsBody();
    if (!Conf.Engine.ScrubTimings) {
      JsonValue *Stats = Body.find("stats");
      JsonValue *Shards = Stats ? Stats->find("shards") : nullptr;
      for (size_t I = 0; Shards && I != Shards->size(); ++I) {
        Shards->at(I).set("queue_depth", Depths[I][0]);
        Shards->at(I).set("queue_peak", Depths[I][1]);
      }
    }
    pushEnvelope(St, Seq, Req.HasId ? &Req.Id : nullptr, std::move(Body));
    break;
  }
  case ServiceRequest::Kind::FlushCache: {
    drainAll();
    uint64_t Flushed = 0, Persisted = 0;
    for (const std::unique_ptr<Worker> &W : Workers) {
      JsonValue B = W->Engine->flushCacheBody();
      if (const JsonValue *V = B.find("sessions_flushed"))
        Flushed += uint64_t(V->asInt());
      if (const JsonValue *V = B.find("persisted"))
        Persisted += uint64_t(V->asInt());
    }
    JsonValue Body = JsonValue::object();
    Body.set("status", "ok");
    Body.set("sessions_flushed", Flushed);
    Body.set("persisted", Persisted);
    pushEnvelope(St, Seq, Req.HasId ? &Req.Id : nullptr, std::move(Body));
    break;
  }
  case ServiceRequest::Kind::Shutdown: {
    drainAll();
    JsonValue Body = JsonValue::object();
    Body.set("status", "ok");
    Body.set("persisted", uint64_t(shutdownFlush()));
    pushEnvelope(St, Seq, Req.HasId ? &Req.Id : nullptr, std::move(Body));
    return true;
  }
  }
  return false;
}

void ShardedService::finishStream(Stream &St) {
  drainAll();
  St.Results.close();
}

unsigned ShardedService::shutdownFlush() {
  unsigned Persisted = 0;
  for (const std::unique_ptr<Worker> &W : Workers)
    Persisted += W->Engine->shutdownFlush();
  return Persisted;
}

size_t ShardedService::residentSessions() const {
  size_t N = 0;
  for (const std::unique_ptr<Worker> &W : Workers)
    N += W->Engine->residentSessions();
  return N;
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

JsonValue ShardedService::statsBody() {
  // Aggregate counters first (same keys as the single-engine body, so
  // existing consumers keep working), then the per-shard breakdown the
  // capacity-planning docs read, then the shared store's counters.
  std::vector<ServiceEngine::CountersSnapshot> Snaps;
  for (const std::unique_ptr<Worker> &W : Workers)
    Snaps.push_back(W->Engine->snapshot());
  ServiceEngine::CountersSnapshot Sum;
  for (const ServiceEngine::CountersSnapshot &S : Snaps) {
    Sum.Analyses += S.Analyses;
    Sum.Optimizes += S.Optimizes;
    Sum.Degraded += S.Degraded;
    Sum.Errors += S.Errors;
    Sum.InternalErrors += S.InternalErrors;
    Sum.Batches += S.Batches;
    Sum.Busy += S.Busy;
    Sum.WarmHits += S.WarmHits;
    Sum.CacheHits += S.CacheHits;
    Sum.CacheMisses += S.CacheMisses;
    Sum.Evictions += S.Evictions;
    Sum.WriteBehindSaves += S.WriteBehindSaves;
    Sum.WriteBehindFailures += S.WriteBehindFailures;
    Sum.DiskLoads += S.DiskLoads;
    Sum.Resident += S.Resident;
  }

  JsonValue Stats = JsonValue::object();
  Stats.set("analyze_requests", Sum.Analyses);
  Stats.set("optimize_requests", Sum.Optimizes);
  Stats.set("degraded", Sum.Degraded);
  Stats.set("errors", Sum.Errors);
  Stats.set("internal_errors", Sum.InternalErrors);
  Stats.set("batches", StatBatches.load() + Sum.Batches);
  Stats.set("busy_rejections", StatBusy.load() + Sum.Busy);
  Stats.set("sessions_resident", Sum.Resident);
  Stats.set("session_evictions", Sum.Evictions);
  Stats.set("warm_hits", Sum.WarmHits);
  Stats.set("cache_hits", Sum.CacheHits);
  Stats.set("cache_misses", Sum.CacheMisses);
  Stats.set("write_behind_saves", Sum.WriteBehindSaves);
  Stats.set("write_behind_failures", Sum.WriteBehindFailures);
  Stats.set("disk_loads", Sum.DiskLoads);

  JsonValue Shards = JsonValue::array();
  for (size_t I = 0; I != Snaps.size(); ++I) {
    const ServiceEngine::CountersSnapshot &S = Snaps[I];
    JsonValue Entry = JsonValue::object();
    Entry.set("shard", uint64_t(I));
    Entry.set("analyze_requests", S.Analyses);
    Entry.set("sessions_resident", S.Resident);
    Entry.set("session_evictions", S.Evictions);
    Entry.set("warm_hits", S.WarmHits);
    Entry.set("cache_hits", S.CacheHits);
    Entry.set("cache_misses", S.CacheMisses);
    Entry.set("disk_loads", S.DiskLoads);
    // Live gauges; the stats handler overwrites them with its
    // pre-barrier sample unless timings are scrubbed (they are the only
    // timing-dependent stats fields).
    Entry.set("queue_depth", uint64_t(0));
    Entry.set("queue_peak", uint64_t(0));
    Shards.push(std::move(Entry));
  }
  Stats.set("shards", std::move(Shards));

  JsonValue StoreStats = JsonValue::object();
  ContentStore::Stats CS = Store ? Store->stats() : ContentStore::Stats();
  StoreStats.set("objects_written", CS.ObjectsWritten);
  StoreStats.set("dedup_hits", CS.DedupHits);
  StoreStats.set("loads", CS.Loads);
  StoreStats.set("misses", CS.Misses);
  StoreStats.set("integrity_failures", CS.IntegrityFailures);
  StoreStats.set("errors", CS.Errors);
  StoreStats.set("scrub_runs", CS.ScrubRuns);
  StoreStats.set("tmp_swept", CS.TmpSwept);
  StoreStats.set("quarantined", CS.Quarantined);
  StoreStats.set("dangling_refs_dropped", CS.DanglingDropped);
  Stats.set("store", std::move(StoreStats));

  // Only present while a fault plan is installed: normal stats bodies
  // stay byte-stable, chaos runs get their injection counters inline.
  if (faultInjector().active())
    Stats.set("faults", faultInjector().statsJson());

  JsonValue Body = JsonValue::object();
  Body.set("status", "ok");
  Body.set("stats", std::move(Stats));
  return Body;
}
