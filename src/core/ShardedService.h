//===- core/ShardedService.h - Sharded worker pool service ------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-worker layer between the daemon's accept loop and the
/// per-shard ServiceEngines (docs/SCALING.md). One reader thread feeds
/// request lines into submitLine(); the service routes each request to
/// a shard, runs it on that shard's pool, and delivers responses in
/// global sequence order through a per-stream reorder queue:
///
///  * routing is by session key: every request with the same (session,
///    name, options-fingerprint) key hashes — via support/StableHash —
///    to the same shard, so exactly one shard owns each session's
///    turnstile and the per-session warm/cold order is identical to a
///    single-worker run. Cache-less requests round-robin (their
///    response bytes are shard-independent);
///
///  * every shard owns its in-memory summary caches, but all shards
///    share one content-addressed store (support/ContentStore) as the
///    write-behind tier, so a session evicted by shard A warm-starts on
///    shard B — and warm-starts byte-identically, because the embedded
///    report's cache counters come from the run's own adoption, not
///    from where the summaries were loaded;
///
///  * admission control is global: one AdmissionGate bounds in-flight
///    analyses across all shards (`busy` beyond the limit), and the
///    per-stream response queue is bounded, so a slow reader of the
///    response stream backpressures the workers instead of growing an
///    unbounded reorder buffer. Under overload, memory is bounded by
///    queue-limit + result-buffer, never by the request backlog;
///
///  * control ops (stats, flush-cache, shutdown) are barriers across
///    every shard, exactly as they are barriers across the single pool
///    today.
///
/// With Shards=1 the service is behaviorally identical to the previous
/// single-engine daemon: same bytes, same counters, same turnstile.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_SHARDEDSERVICE_H
#define IPCP_CORE_SHARDEDSERVICE_H

#include "core/ServiceEngine.h"
#include "support/BoundedQueue.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ipcp {

class ContentStore;
class ThreadPool;

/// A pool of ServiceEngine shards behind one dispatch entry point.
class ShardedService {
public:
  struct Config {
    /// Worker shards; each owns an engine and a slice of the threads.
    unsigned Shards = 1;
    /// Total worker threads across shards (0 = hardware concurrency);
    /// each shard gets max(1, Jobs / Shards).
    unsigned Jobs = 0;
    /// Global in-flight analysis bound before `busy` (0 rejects every
    /// analyze — the backpressure tests).
    size_t QueueLimit = 256;
    /// Buffered out-of-order responses per stream before producers
    /// block (0 = unbounded). The next-in-order response is always
    /// accepted, so this throttles without deadlocking.
    size_t ResultBuffer = 1024;
    /// Per-shard engine configuration. MaxSessions is per cache bucket
    /// (ServiceEngine::CacheBuckets fixed buckets service-wide, each
    /// owned wholly by one shard, so eviction is shard-count-
    /// independent); a non-empty CacheDir becomes ONE content-addressed
    /// store shared by every shard (Engine.Store is overwritten).
    ServiceEngine::Config Engine;
  };

  explicit ShardedService(Config C);
  ~ShardedService();

  ShardedService(const ShardedService &) = delete;
  ShardedService &operator=(const ShardedService &) = delete;

  /// One response stream (one connection, or one in-process driver).
  /// Sequence numbers restart at 0 per stream; responses come out of
  /// popResponse in sequence order, each a full line with trailing
  /// newline. Engines and session caches persist across streams.
  class Stream {
    friend class ShardedService;
    explicit Stream(size_t MaxBuffered) : Results(MaxBuffered) {}
    OrderedResultQueue<std::string> Results;
    uint64_t NextSeq = 0;

  public:
    /// Blocks for the next in-order response; false when the stream is
    /// finished and drained.
    bool popResponse(std::string &Out) { return Results.pop(Out); }

    /// High-water mark of buffered out-of-order responses.
    size_t peakBuffered() const { return Results.peakBuffered(); }
  };

  /// Opens a response stream. One reader thread per stream; a consumer
  /// thread drains popResponse concurrently.
  std::unique_ptr<Stream> openStream();

  /// Handles one request line on the reader thread: parse, admission,
  /// session-turn reservation, shard routing, pool submission. Control
  /// ops run inline after an all-shard barrier. Returns true when the
  /// line was a shutdown request (stop reading; then finishStream).
  bool submitLine(Stream &St, const std::string &Line);

  /// Drains every shard pool and closes the stream's response queue;
  /// call after EOF or shutdown, before joining the consumer.
  void finishStream(Stream &St);

  /// Persists every dirty session across all shards (daemon exit path
  /// when the stream ends without a shutdown request).
  unsigned shutdownFlush();

  unsigned shards() const { return unsigned(Workers.size()); }
  size_t residentSessions() const;

  /// Direct access for tests and the engine-direct bench paths.
  ServiceEngine &engine(unsigned Shard);
  const std::shared_ptr<ContentStore> &store() const { return Store; }

  /// The routing function: which shard owns \p SessionKey (a
  /// ServiceEngine::sessionKeyFor result, non-empty).
  static unsigned shardIndexFor(const std::string &SessionKey,
                                unsigned ShardCount);

private:
  struct Worker;
  struct BatchState;

  void submitToShard(unsigned Shard, std::function<void()> Task);
  unsigned routeShard(const ServiceRequest &Req);
  void drainAll();
  JsonValue statsBody();
  void pushEnvelope(Stream &St, uint64_t Seq, const JsonValue *Id,
                    JsonValue Body);

  Config Conf;
  std::shared_ptr<ContentStore> Store;
  AdmissionGate Gate;
  std::vector<std::unique_ptr<Worker>> Workers;
  uint64_t RoundRobin = 0; ///< reader-thread only: cache-less routing
  std::atomic<uint64_t> StatBatches{0};
  std::atomic<uint64_t> StatBusy{0};
};

} // namespace ipcp

#endif // IPCP_CORE_SHARDEDSERVICE_H
