//===- core/SuiteRunner.cpp -----------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/SuiteRunner.h"

#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <memory>
#include <vector>

using namespace ipcp;

SuiteRunner::SuiteRunner(unsigned Jobs)
    : Jobs(Jobs == 0 ? ThreadPool::defaultConcurrency() : Jobs) {}

void SuiteRunner::run(size_t Count, const std::function<void(size_t)> &Fn) {
  if (Count == 0)
    return;

  if (Jobs <= 1 || Count == 1) {
    for (size_t I = 0; I != Count; ++I)
      Fn(I);
    return;
  }

  Trace *Parent = Trace::active();
  std::vector<std::unique_ptr<Trace>> TaskTraces;
  if (Parent) {
    TaskTraces.resize(Count);
    for (size_t I = 0; I != Count; ++I)
      TaskTraces[I] = std::make_unique<Trace>();
  }

  ThreadPool Pool(unsigned(std::min<size_t>(Jobs, Count)));
  for (size_t I = 0; I != Count; ++I) {
    Pool.submit([I, &Fn, &TaskTraces] {
      if (!TaskTraces.empty()) {
        Trace *Prev = Trace::setActive(TaskTraces[I].get());
        Fn(I);
        Trace::setActive(Prev);
      } else {
        Fn(I);
      }
    });
  }
  Pool.wait();

  // Fold per-task traces back in task order so the rendered span tree is
  // independent of worker scheduling.
  if (Parent)
    for (const std::unique_ptr<Trace> &T : TaskTraces)
      Parent->absorb(*T);
}
