//===- core/SuiteRunner.h - Parallel independent-program runner -*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs N independent suite tasks (one per benchmark program, or one per
/// study-table row) across a thread pool while keeping every observable
/// output deterministic. Tasks are identified by index; the caller indexes
/// a pre-sized result vector from inside the task body, so results land in
/// program order no matter which worker finishes first.
///
/// Tracing stays coherent under parallelism: when the calling thread has
/// an active Trace, each task runs with a private per-task Trace installed
/// as its thread's active trace, and after the pool drains the per-task
/// traces are absorb()ed into the caller's trace in task-index order. A
/// `--jobs=8 --trace` run therefore renders the same span tree as a
/// sequential one, only with different timings.
///
/// With Jobs <= 1 (or a single task) everything runs inline on the calling
/// thread — no pool, no trace redirection — which is also the fallback
/// that keeps single-threaded behavior bit-for-bit unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_SUITERUNNER_H
#define IPCP_CORE_SUITERUNNER_H

#include <functional>

namespace ipcp {

/// Deterministic fan-out of index-addressed tasks over a thread pool.
class SuiteRunner {
public:
  /// \p Jobs worker threads; 0 means ThreadPool::defaultConcurrency().
  explicit SuiteRunner(unsigned Jobs = 0);

  /// Runs Fn(0) .. Fn(Count - 1), possibly concurrently, and returns once
  /// all calls have finished. Fn must not touch shared mutable state other
  /// than its own slot of a caller-owned result vector.
  void run(size_t Count, const std::function<void(size_t)> &Fn);

  unsigned jobs() const { return Jobs; }

private:
  unsigned Jobs;
};

} // namespace ipcp

#endif // IPCP_CORE_SUITERUNNER_H
