//===- core/SummaryCache.cpp ----------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/SummaryCache.h"

#include "ir/Module.h"
#include "ir/Procedure.h"
#include "support/FaultInjection.h"
#include "support/FileIO.h"
#include "support/Json.h"
#include "support/StableHash.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <optional>

using namespace ipcp;

namespace {

/// A cache file larger than this is rejected outright — no legitimate
/// store comes close, and refusing early keeps a corrupt or hostile file
/// from ballooning the parse under someone else's deadline.
constexpr size_t MaxCacheFileBytes = 64u << 20;

constexpr const char *CacheSchema = "ipcp-cache-v1";

} // namespace

std::string SummaryCache::optionsFingerprint(const IPCPOptions &Opts) {
  std::string FP = CacheSchema;
  FP += ";jf=";
  FP += jumpFunctionKindName(Opts.ForwardKind);
  FP += ";rjf=";
  FP += Opts.UseReturnJumpFunctions ? '1' : '0';
  FP += ";mod=";
  FP += Opts.UseModInformation ? '1' : '0';
  FP += ";intra=";
  FP += Opts.IntraproceduralOnly ? '1' : '0';
  FP += ";gated=";
  FP += Opts.UseGatedSSA ? '1' : '0';
  FP += ";bg=";
  FP += Opts.UseBindingGraphPropagator ? '1' : '0';
  FP += ";sched=";
  FP += Opts.Schedule == PropagationSchedule::FIFO ? "fifo" : "scc";
  FP += ";engine=";
  FP += propagationEngineName(Opts.Engine);
  FP += ";maxexpr=" + std::to_string(Opts.MaxExprNodes);
  FP += ";entry=";
  FP += Opts.EntryProcedure;
  return FP;
}

//===----------------------------------------------------------------------===//
// Variable reference codec
//===----------------------------------------------------------------------===//

std::string SummaryCache::varRef(const Variable *V) {
  if (!V)
    return "?";
  if (V->isFormal())
    return "F" + std::to_string(V->getFormalIndex());
  if (V->isGlobal())
    return "G:" + V->getName();
  return "L:" + V->getName();
}

Variable *SummaryCache::resolveVarRef(const std::string &Ref,
                                      Procedure *Owner) {
  if (Ref.size() < 2 || !Owner)
    return nullptr;
  if (Ref[0] == 'F') {
    char *End = nullptr;
    unsigned long Index = std::strtoul(Ref.c_str() + 1, &End, 10);
    if (!End || *End != '\0' || Index >= Owner->formals().size())
      return nullptr;
    return Owner->formals()[Index];
  }
  if (Ref[0] == 'G' && Ref[1] == ':') {
    Variable *G = Owner->getModule()->findGlobal(Ref.substr(2));
    return G && G->isGlobal() ? G : nullptr;
  }
  if (Ref[0] == 'L' && Ref[1] == ':') {
    Variable *L = Owner->findVariable(Ref.substr(2));
    return L && L->isLocal() ? L : nullptr;
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Expression codec
//===----------------------------------------------------------------------===//

namespace {

void renderExpr(const SymExpr *E, std::string &Out) {
  switch (E->getKind()) {
  case SymExpr::Kind::Const:
    Out += "C" + std::to_string(E->getConst());
    return;
  case SymExpr::Kind::Formal:
    Out += SummaryCache::varRef(E->getFormal());
    return;
  case SymExpr::Kind::Binary:
    Out += "(";
    Out += binaryOpSpelling(E->getBinaryOp());
    Out += " ";
    renderExpr(E->getLHS(), Out);
    Out += " ";
    renderExpr(E->getRHS(), Out);
    Out += ")";
    return;
  case SymExpr::Kind::Unary:
    Out += "(u";
    Out += unaryOpSpelling(E->getUnaryOp());
    Out += " ";
    renderExpr(E->getLHS(), Out);
    Out += ")";
    return;
  }
}

std::optional<BinaryOp> binaryOpFromSpelling(const std::string &Token) {
  static constexpr BinaryOp All[] = {
      BinaryOp::Add,   BinaryOp::Sub,   BinaryOp::Mul,   BinaryOp::Div,
      BinaryOp::Mod,   BinaryOp::CmpEq, BinaryOp::CmpNe, BinaryOp::CmpLt,
      BinaryOp::CmpLe, BinaryOp::CmpGt, BinaryOp::CmpGe};
  for (BinaryOp Op : All)
    if (Token == binaryOpSpelling(Op))
      return Op;
  return std::nullopt;
}

/// Whitespace/paren tokenizer + recursive-descent parser for the prefix
/// grammar. Depth-capped: cached expressions are trees the run's own
/// SymExprContext produced, so anything deeper than the node cap is
/// corrupt input, not data.
class ExprParser {
public:
  ExprParser(const std::string &Text, Procedure *Owner, SymExprContext &Ctx)
      : Owner(Owner), Ctx(Ctx) {
    tokenize(Text);
  }

  const SymExpr *parse(bool *Ok) {
    const SymExpr *E = parseOne(0);
    bool Good = !Failed && Pos == Tokens.size();
    *Ok = Good;
    return Good ? E : nullptr;
  }

private:
  void tokenize(const std::string &Text) {
    std::string Cur;
    auto Flush = [&] {
      if (!Cur.empty()) {
        Tokens.push_back(Cur);
        Cur.clear();
      }
    };
    for (char C : Text) {
      if (C == ' ' || C == '\t') {
        Flush();
      } else if (C == '(' || C == ')') {
        Flush();
        Tokens.push_back(std::string(1, C));
      } else {
        Cur += C;
      }
    }
    Flush();
  }

  const std::string *next() {
    if (Pos >= Tokens.size()) {
      Failed = true;
      return nullptr;
    }
    return &Tokens[Pos++];
  }

  const SymExpr *parseOne(unsigned Depth) {
    if (Depth > 512) {
      Failed = true;
      return nullptr;
    }
    const std::string *Tok = next();
    if (!Tok)
      return nullptr;
    if (*Tok == "(") {
      const std::string *Op = next();
      if (!Op)
        return nullptr;
      const SymExpr *E = nullptr;
      if (Op->size() > 1 && (*Op)[0] == 'u') {
        UnaryOp UOp = (*Op == "u-") ? UnaryOp::Neg : UnaryOp::Not;
        if (*Op != "u-" && *Op != "u!") {
          Failed = true;
          return nullptr;
        }
        const SymExpr *X = parseOne(Depth + 1);
        E = X ? Ctx.getUnary(UOp, X) : nullptr;
      } else if (std::optional<BinaryOp> BOp = binaryOpFromSpelling(*Op)) {
        const SymExpr *L = parseOne(Depth + 1);
        const SymExpr *R = L ? parseOne(Depth + 1) : nullptr;
        E = R ? Ctx.getBinary(*BOp, L, R) : nullptr;
      } else {
        Failed = true;
        return nullptr;
      }
      const std::string *Close = next();
      if (!Close || *Close != ")") {
        Failed = true;
        return nullptr;
      }
      // A null from the context here means the canonical re-intern
      // disagrees with what was stored (e.g. a bit-flipped constant now
      // folds or traps) — corrupt, not bottom.
      if (!E)
        Failed = true;
      return E;
    }
    if ((*Tok)[0] == 'C') {
      char *End = nullptr;
      long long V = std::strtoll(Tok->c_str() + 1, &End, 10);
      if (!End || *End != '\0' || Tok->size() < 2) {
        Failed = true;
        return nullptr;
      }
      return Ctx.getConst(V);
    }
    Variable *Var = SummaryCache::resolveVarRef(*Tok, Owner);
    if (!Var) {
      Failed = true;
      return nullptr;
    }
    return Ctx.getFormal(Var);
  }

  Procedure *Owner;
  SymExprContext &Ctx;
  std::vector<std::string> Tokens;
  size_t Pos = 0;
  bool Failed = false;
};

} // namespace

std::string SummaryCache::exprString(const SymExpr *E) {
  if (!E)
    return "_";
  std::string Out;
  renderExpr(E, Out);
  return Out;
}

const SymExpr *SummaryCache::parseExpr(const std::string &Text,
                                       Procedure *Owner, SymExprContext &Ctx,
                                       bool *Ok) {
  if (Text == "_") {
    *Ok = true;
    return nullptr;
  }
  return ExprParser(Text, Owner, Ctx).parse(Ok);
}

//===----------------------------------------------------------------------===//
// JSON encode / decode
//===----------------------------------------------------------------------===//

namespace {

JsonValue stringPairsToJson(
    const std::vector<std::pair<std::string, std::string>> &Pairs) {
  JsonValue Arr = JsonValue::array();
  for (const auto &[A, B] : Pairs) {
    JsonValue Pair = JsonValue::array();
    Pair.push(A);
    Pair.push(B);
    Arr.push(std::move(Pair));
  }
  return Arr;
}

bool stringPairsFromJson(
    const JsonValue *V,
    std::vector<std::pair<std::string, std::string>> &Out) {
  if (!V || !V->isArray())
    return false;
  for (size_t I = 0, E = V->size(); I != E; ++I) {
    const JsonValue &Pair = V->at(I);
    if (!Pair.isArray() || Pair.size() != 2 || !Pair.at(0).isString() ||
        !Pair.at(1).isString())
      return false;
    Out.emplace_back(Pair.at(0).asString(), Pair.at(1).asString());
  }
  return true;
}

bool stringsFromJson(const JsonValue *V, std::vector<std::string> &Out) {
  if (!V || !V->isArray())
    return false;
  for (size_t I = 0, E = V->size(); I != E; ++I) {
    if (!V->at(I).isString())
      return false;
    Out.push_back(V->at(I).asString());
  }
  return true;
}

JsonValue entryToJson(const CacheEntry &E) {
  JsonValue Obj = JsonValue::object();
  Obj.set("name", E.Name);
  Obj.set("body", E.BodyHash);
  Obj.set("scc_key", E.SCCKey);
  Obj.set("callers", E.CallersHash);

  JsonValue ModFormals = JsonValue::array();
  for (unsigned I : E.ModFormals)
    ModFormals.push(I);
  Obj.set("mod_formals", std::move(ModFormals));
  JsonValue ModGlobals = JsonValue::array();
  for (const std::string &G : E.ModGlobals)
    ModGlobals.push(G);
  Obj.set("mod_globals", std::move(ModGlobals));
  JsonValue ExtGlobals = JsonValue::array();
  for (const std::string &G : E.ExtGlobals)
    ExtGlobals.push(G);
  Obj.set("ext_globals", std::move(ExtGlobals));

  Obj.set("return_jfs", stringPairsToJson(E.ReturnJFs));

  JsonValue Sites = JsonValue::array();
  for (const CacheEntry::SiteJFs &S : E.ForwardJFs) {
    JsonValue Site = JsonValue::object();
    Site.set("callee", S.Callee);
    JsonValue Formals = JsonValue::array();
    for (const std::string &F : S.Formals)
      Formals.push(F);
    Site.set("formals", std::move(Formals));
    Site.set("globals", stringPairsToJson(S.Globals));
    Sites.push(std::move(Site));
  }
  Obj.set("forward_jfs", std::move(Sites));

  if (E.HasVal)
    Obj.set("val", stringPairsToJson(E.Val));
  if (E.HasRecord) {
    JsonValue Rec = JsonValue::object();
    Rec.set("refs", E.ConstantRefs);
    Rec.set("irrelevant", E.IrrelevantConstants);
    Rec.set("sccp_values", E.SCCPConstantValues);
    Rec.set("sccp_blocks", E.SCCPExecutableBlocks);
    Obj.set("record", std::move(Rec));
  }
  return Obj;
}

bool entryFromJson(const JsonValue &Obj, CacheEntry &E) {
  if (!Obj.isObject())
    return false;
  auto Str = [&Obj](const char *Key, std::string &Out) {
    const JsonValue *V = Obj.find(Key);
    if (!V || !V->isString())
      return false;
    Out = V->asString();
    return true;
  };
  if (!Str("name", E.Name) || !Str("body", E.BodyHash) ||
      !Str("scc_key", E.SCCKey) || !Str("callers", E.CallersHash))
    return false;

  const JsonValue *ModFormals = Obj.find("mod_formals");
  if (!ModFormals || !ModFormals->isArray())
    return false;
  for (size_t I = 0, N = ModFormals->size(); I != N; ++I) {
    if (!ModFormals->at(I).isInt() || ModFormals->at(I).asInt() < 0)
      return false;
    E.ModFormals.push_back(unsigned(ModFormals->at(I).asInt()));
  }
  if (!stringsFromJson(Obj.find("mod_globals"), E.ModGlobals) ||
      !stringsFromJson(Obj.find("ext_globals"), E.ExtGlobals) ||
      !stringPairsFromJson(Obj.find("return_jfs"), E.ReturnJFs))
    return false;

  const JsonValue *Sites = Obj.find("forward_jfs");
  if (!Sites || !Sites->isArray())
    return false;
  for (size_t I = 0, N = Sites->size(); I != N; ++I) {
    const JsonValue &Site = Sites->at(I);
    CacheEntry::SiteJFs S;
    const JsonValue *Callee = Site.find("callee");
    if (!Callee || !Callee->isString())
      return false;
    S.Callee = Callee->asString();
    if (!stringsFromJson(Site.find("formals"), S.Formals) ||
        !stringPairsFromJson(Site.find("globals"), S.Globals))
      return false;
    E.ForwardJFs.push_back(std::move(S));
  }

  if (const JsonValue *Val = Obj.find("val")) {
    if (!stringPairsFromJson(Val, E.Val))
      return false;
    E.HasVal = true;
  }
  if (const JsonValue *Rec = Obj.find("record")) {
    auto Count = [&Rec](const char *Key, uint64_t &Out) {
      const JsonValue *V = Rec->find(Key);
      if (!V || !V->isInt() || V->asInt() < 0)
        return false;
      Out = uint64_t(V->asInt());
      return true;
    };
    if (!Count("refs", E.ConstantRefs) ||
        !Count("irrelevant", E.IrrelevantConstants) ||
        !Count("sccp_values", E.SCCPConstantValues) ||
        !Count("sccp_blocks", E.SCCPExecutableBlocks))
      return false;
    E.HasRecord = true;
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Store lifecycle
//===----------------------------------------------------------------------===//

const CacheEntry *SummaryCache::find(const std::string &Name) const {
  auto It = Entries.find(Name);
  return It == Entries.end() ? nullptr : &It->second;
}

void SummaryCache::beginRun() { Staged.clear(); }

void SummaryCache::stage(CacheEntry E) {
  std::string Name = E.Name;
  Staged.insert_or_assign(std::move(Name), std::move(E));
}

void SummaryCache::finishRun(bool Commit) {
  if (Commit) {
    Entries = std::move(Staged);
    RunCommitted = true;
  }
  Staged.clear();
}

std::string SummaryCache::serialize(const IPCPOptions &Opts) const {
  JsonValue Payload = JsonValue::object();
  Payload.set("options", optionsFingerprint(Opts));

  std::vector<const CacheEntry *> Sorted;
  Sorted.reserve(Entries.size());
  for (const auto &[Name, E] : Entries)
    Sorted.push_back(&E);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const CacheEntry *A, const CacheEntry *B) {
              return A->Name < B->Name;
            });
  JsonValue Procs = JsonValue::array();
  for (const CacheEntry *E : Sorted)
    Procs.push(entryToJson(*E));
  Payload.set("procedures", std::move(Procs));

  // The checksum covers the compact dump of the payload — exactly what
  // load() recomputes from the parsed tree, so any parse-surviving bit
  // flip that changes payload content fails validation deterministically.
  std::string Checksum = stableHashHex(stableHashBytes(Payload.dump(0)));

  JsonValue Doc = JsonValue::object();
  Doc.set("schema", CacheSchema);
  Doc.set("checksum", Checksum);
  Doc.set("payload", std::move(Payload));
  return Doc.dump(2) + "\n";
}

bool SummaryCache::loadFromString(const std::string &Text,
                                  const IPCPOptions &Opts,
                                  ResourceGuard *Guard) {
  Entries.clear();
  LoadFailed = true; // flipped to false only on full success

  if (Text.size() > MaxCacheFileBytes)
    return false;
  if (Guard) {
    Guard->checkDeadline("analysis");
    if (Guard->tripped())
      return false;
  }

  std::string Error;
  std::optional<JsonValue> Doc = JsonValue::parse(Text, &Error);
  if (!Doc || !Doc->isObject())
    return false;

  const JsonValue *Schema = Doc->find("schema");
  if (!Schema || !Schema->isString() || Schema->asString() != CacheSchema)
    return false;
  const JsonValue *Checksum = Doc->find("checksum");
  const JsonValue *Payload = Doc->find("payload");
  if (!Checksum || !Checksum->isString() || !Payload || !Payload->isObject())
    return false;
  if (stableHashHex(stableHashBytes(Payload->dump(0))) !=
      Checksum->asString())
    return false;

  const JsonValue *FP = Payload->find("options");
  if (!FP || !FP->isString() || FP->asString() != optionsFingerprint(Opts))
    return false;

  const JsonValue *Procs = Payload->find("procedures");
  if (!Procs || !Procs->isArray())
    return false;
  std::unordered_map<std::string, CacheEntry> Loaded;
  for (size_t I = 0, N = Procs->size(); I != N; ++I) {
    CacheEntry E;
    if (!entryFromJson(Procs->at(I), E))
      return false;
    std::string Name = E.Name;
    if (!Loaded.emplace(std::move(Name), std::move(E)).second)
      return false; // duplicate procedure: corrupt
  }
  if (Guard) {
    Guard->checkDeadline("analysis");
    if (Guard->tripped()) {
      Entries.clear();
      return false;
    }
  }

  Entries = std::move(Loaded);
  LoadFailed = false;
  return true;
}

std::string SummaryCache::filePathFor(const std::string &SourceName,
                                      const IPCPOptions &Opts) const {
  std::string Stem;
  for (char C : SourceName) {
    bool Safe = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
                (C >= '0' && C <= '9') || C == '.' || C == '_' || C == '-';
    Stem += Safe ? C : '_';
  }
  if (Stem.size() > 64)
    Stem = Stem.substr(Stem.size() - 64);
  // Disambiguates sanitized collisions and separates option axes.
  std::string Key = stableHashHex(
      stableHashBytes(SourceName + "\n" + optionsFingerprint(Opts)));
  return Dir + "/" + Stem + "-" + Key.substr(0, 12) + ".json";
}

bool SummaryCache::load(const std::string &SourceName,
                        const IPCPOptions &Opts, ResourceGuard *Guard) {
  Entries.clear();
  LoadFailed = false;
  if (Dir.empty())
    return false;

  std::string Path = filePathFor(SourceName, Opts);
  std::error_code EC;
  if (!std::filesystem::exists(Path, EC) || EC)
    return false; // cold start, not a failure

  uintmax_t Size = std::filesystem::file_size(Path, EC);
  if (EC || Size > MaxCacheFileBytes) {
    LoadFailed = true;
    return false;
  }

  std::string Text;
  if (faultInjector().shouldFail("cache.load") ||
      !readFileToString(Path, Text, nullptr)) {
    LoadFailed = true;
    return false;
  }
  return loadFromString(Text, Opts, Guard);
}

bool SummaryCache::save(const std::string &SourceName,
                        const IPCPOptions &Opts, std::string *Error) {
  if (Dir.empty() || !RunCommitted)
    return true; // nothing to persist
  if (faultInjector().shouldFail("cache.save", Error))
    return false;

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    if (Error)
      *Error = "cannot create cache directory " + Dir + ": " + EC.message();
    return false;
  }

  std::string Path = filePathFor(SourceName, Opts);
  std::string Temp = Path + ".tmp";
  if (!writeStringToFile(Temp, serialize(Opts), Error))
    return false;
  std::filesystem::rename(Temp, Path, EC);
  if (EC) {
    if (Error)
      *Error = "cannot rename " + Temp + ": " + EC.message();
    std::filesystem::remove(Temp, EC);
    return false;
  }
  return true;
}
