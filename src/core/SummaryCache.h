//===- core/SummaryCache.h - Persistent per-procedure summaries -*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent summary store behind incremental analysis
/// (docs/INCREMENTAL.md). One CacheEntry holds everything the pipeline
/// derives per procedure — MOD summary, return and forward jump
/// functions, the VAL set at fixpoint, and the record-stage counts — and
/// is keyed by:
///
///  * `BodyHash`: the StableHash of the pristine lowered body;
///  * `SCCKey`: a hash over the body hashes of the procedure's entire
///    call-graph SCC plus the *content* hashes (MOD + return jump
///    functions — exactly what callers consume) of every external direct
///    callee. An edit that leaves a callee's summary content unchanged
///    therefore cuts off early instead of invalidating every transitive
///    caller;
///  * `CallersHash`: a hash over (name, body hash) of the direct
///    callers, which catches added or deleted call sites whose absence
///    the callee-directed keys cannot see (the cached VAL set depends on
///    who calls you).
///
/// The store is in-memory first: runIPCP stages fresh entries during a
/// run and commits them only when the run finished un-degraded, so a
/// tripped budget can never poison the cache. `load`/`save` move the
/// whole store through a versioned `ipcp-cache-v1` JSON file whose
/// payload is checksummed with the same StableHash — truncated,
/// version-mismatched, or bit-flipped files fail validation atomically
/// and the run proceeds cold (counted by cache_load_failures).
///
/// Expressions and variable references cross the serialization boundary
/// as a tiny prefix grammar (`C5`, `F0`, `G:x`, `(+ F0 C1)`, `(u- F0)`,
/// `_` for bottom) re-interned through the run's SymExprContext; the
/// codec is exposed statically so the differential tests and the fuzzer
/// can attack it directly.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_SUMMARYCACHE_H
#define IPCP_CORE_SUMMARYCACHE_H

#include "core/JumpFunction.h"
#include "core/Options.h"

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ipcp {

class Procedure;

/// One procedure's persisted summary. String-typed throughout: entries
/// are resolved against the *current* module only after their keys
/// validate, so a stale entry can never dangle into freed IR.
struct CacheEntry {
  std::string Name;
  std::string BodyHash;
  std::string SCCKey;
  std::string CallersHash;

  /// MOD summary: modifiable formal indices, modified global names, and
  /// extended (referenced) global names, all in their canonical orders.
  /// Validated against the current ModRef results on reuse.
  std::vector<unsigned> ModFormals;
  std::vector<std::string> ModGlobals;
  std::vector<std::string> ExtGlobals;

  /// Return jump functions as (variable ref, expression) pairs, sorted
  /// by ref string.
  std::vector<std::pair<std::string, std::string>> ReturnJFs;

  /// Forward jump functions, one record per call site in body order.
  struct SiteJFs {
    std::string Callee;
    std::vector<std::string> Formals;
    std::vector<std::pair<std::string, std::string>> Globals;
  };
  std::vector<SiteJFs> ForwardJFs;

  /// VAL(p) at fixpoint: non-top entries as (variable ref, value) pairs
  /// sorted by ref, where a value is "c:<n>" or "bot". Present only when
  /// the run reached a propagation fixpoint.
  bool HasVal = false;
  std::vector<std::pair<std::string, std::string>> Val;

  /// Record-stage replay data (counts only; substitution facts are
  /// deliberately not cached — see docs/INCREMENTAL.md).
  bool HasRecord = false;
  uint64_t ConstantRefs = 0;
  uint64_t IrrelevantConstants = 0;
  uint64_t SCCPConstantValues = 0;
  uint64_t SCCPExecutableBlocks = 0;
};

/// The summary store. One instance serves one (source, options) pair;
/// reusing it across runIPCP calls on the same module gives warm runs
/// without touching disk.
class SummaryCache {
public:
  /// In-memory store (tests, fuzzing, same-process warm runs).
  SummaryCache() = default;

  /// Disk-backed store rooted at \p CacheDir (created on save).
  explicit SummaryCache(std::string CacheDir) : Dir(std::move(CacheDir)) {}

  /// Loads the store for \p SourceName under \p Opts from the cache
  /// directory. Any failure — missing file, oversized file, parse error,
  /// schema or options mismatch, checksum mismatch — empties the store
  /// and returns false (the warm run degrades to a cold one); a missing
  /// Dir is treated the same way. \p Guard, when non-null, bounds the
  /// read against the shared deadline.
  bool load(const std::string &SourceName, const IPCPOptions &Opts,
            ResourceGuard *Guard = nullptr);

  /// Saves the store (atomically: temp file + rename) if the last run
  /// committed fresh entries. Returns false only on I/O failure.
  bool save(const std::string &SourceName, const IPCPOptions &Opts,
            std::string *Error = nullptr);

  /// The file this (source, options) pair maps to inside Dir.
  std::string filePathFor(const std::string &SourceName,
                          const IPCPOptions &Opts) const;

  /// String-level codec used by load/save; exposed for the differential
  /// tests and the fuzzer's corruption invariant.
  bool loadFromString(const std::string &Text, const IPCPOptions &Opts,
                      ResourceGuard *Guard = nullptr);
  std::string serialize(const IPCPOptions &Opts) const;

  /// True when the last load attempt found a file but rejected it.
  bool loadFailed() const { return LoadFailed; }

  size_t size() const { return Entries.size(); }
  const CacheEntry *find(const std::string &Name) const;

  /// Run lifecycle, driven by runIPCP: beginRun clears the staging area,
  /// stage() collects this run's fresh entries, and finishRun(true)
  /// replaces the store with them (making this object warm for the next
  /// run); finishRun(false) — a degraded run — discards the staging area
  /// and keeps the previous store untouched.
  void beginRun();
  void stage(CacheEntry E);
  void finishRun(bool Commit);

  /// True once a run committed entries (what save() persists).
  bool committed() const { return RunCommitted; }

  /// The option axes that change analysis results, as a string baked
  /// into the cache key and the on-disk payload.
  static std::string optionsFingerprint(const IPCPOptions &Opts);

  /// Variable reference codec: "F<i>" (formal of the owning procedure,
  /// by position), "G:<name>" (global), "L:<name>" (local). Resolution
  /// returns null on any mismatch with the current module.
  static std::string varRef(const Variable *V);
  static Variable *resolveVarRef(const std::string &Ref, Procedure *Owner);

  /// Expression codec (prefix, space-separated): "_" bottom, "C<n>"
  /// constant, variable refs as above, "(<op> L R)" binary with the
  /// operator's source spelling, "(u- X)" / "(u! X)" unary. parseExpr
  /// re-interns through \p Ctx (idempotent on canonical trees) and sets
  /// \p Ok false on malformed input; a well-formed "_" yields null with
  /// \p Ok true.
  static std::string exprString(const SymExpr *E);
  static const SymExpr *parseExpr(const std::string &Text, Procedure *Owner,
                                  SymExprContext &Ctx, bool *Ok);

private:
  std::string Dir;
  std::unordered_map<std::string, CacheEntry> Entries;
  std::unordered_map<std::string, CacheEntry> Staged;
  bool LoadFailed = false;
  bool RunCommitted = false;
};

} // namespace ipcp

#endif // IPCP_CORE_SUMMARYCACHE_H
