//===- core/ValueContexts.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/ValueContexts.h"

#include "support/Trace.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace ipcp;

const char *ipcp::propagationEngineName(PropagationEngine Engine) {
  switch (Engine) {
  case PropagationEngine::Jump:
    return "jump";
  case PropagationEngine::Contexts:
    return "contexts";
  }
  return "?";
}

namespace {

/// The context-tabulation solver. Contexts live in SoA tables (proc
/// index, flat entry-slot spans into one value vector) with a FIFO
/// worklist of context ids; the per-procedure slot numbering is identical
/// to the jump engine's (formals positionally, then extended globals in
/// ID order), so the baseline's rows align slot for slot with ours.
class ContextSolver {
public:
  ContextSolver(const CallGraph &CG, const ModRefInfo &MRI,
                const ForwardJumpFunctions &FJFs, const IPCPOptions &Opts,
                PropagatorStats *Stats, ResourceGuard *Guard,
                ContextEngineStats *CtxStats)
      : CG(CG), MRI(MRI), FJFs(FJFs), Opts(Opts), Stats(Stats), Guard(Guard),
        CtxStats(CtxStats) {}

  ConstantsMap solve() {
    numberSlots();

    // The baseline 1986 run: the refinement target, the precision yard-
    // stick for the study, and the sound fallback when a budget trips
    // mid-tabulation. Its evaluations share this run's guard budget; its
    // work counters stay out of PropagatorStats (those describe the
    // contexts engine).
    ConstantsMap Base =
        propagateConstants(CG, MRI, FJFs, Opts, nullptr, Guard, nullptr);
    if (CtxStats) {
      CtxStats->Enabled = true;
      CtxStats->BaselineValConstants = Base.totalConstants();
    }
    if (tripped())
      return Base; // empty: the baseline itself was cut short.

    seedRoot();
    runWorklist();
    publishStats();
    if (tripped()) {
      // An interrupted tabulation is missing meet contributions — too
      // optimistic — so degrade to the completed baseline.
      if (CtxStats)
        CtxStats->ValConstants = Base.totalConstants();
      return Base;
    }
    return package(Base);
  }

private:
  /// Slot layout of one procedure's extended formals (identical to the
  /// jump engine's numbering; see Propagator.cpp).
  struct ProcSlots {
    unsigned FormalCount = 0;
    std::vector<Variable *> Globals; ///< ID-ordered
  };

  static unsigned globalSlot(const ProcSlots &S, const Variable *G) {
    auto It = std::lower_bound(S.Globals.begin(), S.Globals.end(), G,
                               [](const Variable *A, const Variable *B) {
                                 return A->getId() < B->getId();
                               });
    if (It == S.Globals.end() || *It != G)
      return ~0u;
    return S.FormalCount + unsigned(It - S.Globals.begin());
  }

  void numberSlots() {
    size_t N = CG.procedures().size();
    Slots.resize(N);
    Width.resize(N);
    SummaryOf.assign(N, -1);
    for (Procedure *P : CG.procedures()) {
      unsigned PI = CG.procIndex(P);
      ProcSlots &S = Slots[PI];
      S.FormalCount = unsigned(P->formals().size());
      const VariableSet &Ext = MRI.extendedGlobals(P);
      S.Globals.assign(Ext.begin(), Ext.end()); // ID-ordered by VariableSet
      Width[PI] = S.FormalCount + unsigned(S.Globals.size());
    }
  }

  bool tripped() const { return Guard && Guard->tripped(); }

  /// FNV-1a over (proc, tagged slot values): the memo key for exact
  /// entry vectors.
  static uint64_t hashVector(unsigned PI, const LatticeValue *V, unsigned N) {
    uint64_t H = 1469598103934665603ull;
    auto Mix = [&H](uint64_t X) {
      for (unsigned B = 0; B != 8; ++B) {
        H ^= (X >> (B * 8)) & 0xff;
        H *= 1099511628211ull;
      }
    };
    Mix(PI);
    for (unsigned I = 0; I != N; ++I) {
      if (V[I].isTop()) {
        Mix(0);
      } else if (V[I].isBottom()) {
        Mix(2);
      } else {
        Mix(1);
        Mix(uint64_t(V[I].getConstant()));
      }
    }
    return H;
  }

  bool sameVector(uint32_t C, unsigned PI, const LatticeValue *V,
                  unsigned N) const {
    if (CtxProc[C] != PI || CtxIsSummary[C])
      return false;
    const LatticeValue *U = Entries.data() + CtxBase[C];
    for (unsigned I = 0; I != N; ++I)
      if (U[I] != V[I])
        return false;
    return true;
  }

  /// Appends a context row (proc, entry vector) and queues it.
  uint32_t createContext(unsigned PI, const LatticeValue *V, unsigned N,
                         bool Summary) {
    uint32_t C = uint32_t(CtxProc.size());
    CtxProc.push_back(PI);
    CtxBase.push_back(Entries.size());
    CtxIsSummary.push_back(Summary ? 1 : 0);
    CtxQueued.push_back(1);
    Entries.insert(Entries.end(), V, V + N);
    Queue.push_back(C);
    return C;
  }

  /// Routes one derived entry vector: reuse an identical tabulated
  /// context, spawn a fresh one while the budget lasts, else meet into
  /// the target procedure's summary context.
  void dispatch(unsigned QI, const std::vector<LatticeValue> &V) {
    unsigned N = Width[QI];
    uint64_t H = hashVector(QI, V.data(), N);
    auto It = Memo.find(H);
    if (It != Memo.end())
      for (uint32_t C : It->second)
        if (sameVector(C, QI, V.data(), N)) {
          ++Reused;
          return;
        }
    if (CtxProc.size() < Opts.MaxContexts) {
      uint32_t C = createContext(QI, V.data(), N, /*Summary=*/false);
      Memo[H].push_back(C);
      return;
    }
    // Budget exhausted: degrade this procedure toward caller-merging.
    BudgetTripped = true;
    ++Merges;
    int32_t S = SummaryOf[QI];
    if (S < 0) {
      SummaryOf[QI] = int32_t(createContext(QI, V.data(), N, /*Summary=*/true));
      ++SummaryContexts;
      return;
    }
    bool Lowered = false;
    LatticeValue *U = Entries.data() + CtxBase[size_t(S)];
    for (unsigned I = 0; I != N; ++I) {
      LatticeValue Met = meet(U[I], V[I]);
      if (Met != U[I]) {
        assert(Met.strictlyBelow(U[I]) && "meet must move down the lattice");
        U[I] = Met;
        Lowered = true;
        if (Stats)
          ++Stats->Lowerings;
      }
    }
    if (Lowered && !CtxQueued[size_t(S)]) {
      CtxQueued[size_t(S)] = 1;
      Queue.push_back(uint32_t(S));
    }
  }

  /// The virtual entry edge, exactly as the jump engine seeds it: the
  /// entry procedure starts with top formals and zero-valued globals.
  void seedRoot() {
    for (Procedure *P : CG.procedures())
      if (P->getName() == Opts.EntryProcedure) {
        unsigned PI = CG.procIndex(P);
        const ProcSlots &S = Slots[PI];
        std::vector<LatticeValue> Root(Width[PI], LatticeValue::top());
        for (unsigned I = 0, E = unsigned(S.Globals.size()); I != E; ++I)
          Root[S.FormalCount + I] = LatticeValue::constant(0);
        dispatch(PI, Root);
        return;
      }
  }

  /// Evaluates every jump function out of context \p C on its exact
  /// entry vector, dispatching each derived callee vector.
  void processContext(uint32_t C) {
    unsigned PI = CtxProc[C];
    if (Stats) {
      ++Stats->ProcVisits;
      if (CtxIsSummary[C] && VisitedSummary.count(C))
        ++Stats->Revisits;
    }
    if (CtxIsSummary[C])
      VisitedSummary.insert(C);

    // Snapshot: Entries may reallocate while callee contexts are created,
    // and a self-recursive merge may lower a summary mid-visit (the
    // requeue re-processes the lowered vector).
    std::vector<LatticeValue> U(Entries.begin() + CtxBase[C],
                                Entries.begin() + CtxBase[C] + Width[PI]);
    Procedure *P = CG.procedures()[PI];
    const ProcSlots &PS = Slots[PI];
    auto Lookup = [&U, &PS](Variable *Var) {
      if (Var->isFormal())
        return U[Var->getFormalIndex()];
      unsigned Slot = globalSlot(PS, Var);
      return Slot == ~0u ? LatticeValue::top() : U[Slot];
    };

    for (CallInst *Site : CG.callSitesIn(P)) {
      if (tripped())
        return;
      Procedure *Q = Site->getCallee();
      unsigned QI = CG.procIndex(Q);
      const CallSiteJumpFunctions &JFs = FJFs.at(Site);
      const ProcSlots &QS = Slots[QI];

      std::vector<LatticeValue> V(Width[QI], LatticeValue::top());
      for (unsigned I = 0,
                    E = std::min(unsigned(JFs.Formals.size()), Width[QI]);
           I != E; ++I) {
        V[I] = JFs.Formals[I].evaluateVia(Lookup);
        noteEvaluation();
      }
      for (const auto &[G, JF] : JFs.Globals) {
        unsigned Slot = globalSlot(QS, G);
        assert(Slot != ~0u &&
               "call-site global jump function outside callee numbering");
        if (Slot == ~0u)
          continue;
        V[Slot] = JF.evaluateVia(Lookup);
        noteEvaluation();
      }
      dispatch(QI, V);
    }
  }

  void noteEvaluation() {
    ++Evaluations;
    if (Stats)
      ++Stats->JumpFunctionEvaluations;
    if (Guard)
      Guard->noteEvaluations();
  }

  void runWorklist() {
    while (Head < Queue.size() && !tripped()) {
      uint32_t C = Queue[Head++];
      CtxQueued[C] = 0;
      processContext(C);
    }
  }

  void publishStats() {
    if (!CtxStats)
      return;
    CtxStats->Contexts = CtxProc.size();
    CtxStats->SummaryContexts = SummaryContexts;
    CtxStats->Evaluations = Evaluations;
    CtxStats->Reused = Reused;
    CtxStats->Merges = Merges;
    CtxStats->EntryBytes = Entries.size() * sizeof(LatticeValue);
    CtxStats->BudgetTripped = BudgetTripped;
  }

  /// Meets each procedure's tabulated contexts, refines top slots from
  /// the baseline (adopting its sound conclusion wherever the tabulation
  /// has no evidence — this is what makes the engine's CONSTANTS sets a
  /// superset of the jump engine's on every program), and packages the
  /// rows zero-copy.
  ConstantsMap package(const ConstantsMap &Base) {
    size_t N = CG.procedures().size();
    std::vector<std::vector<LatticeValue>> Final(N);
    for (unsigned PI = 0; PI != N; ++PI)
      Final[PI].assign(Width[PI], LatticeValue::top());
    for (uint32_t C = 0, E = uint32_t(CtxProc.size()); C != E; ++C) {
      unsigned PI = CtxProc[C];
      const LatticeValue *U = Entries.data() + CtxBase[C];
      for (unsigned I = 0, W = Width[PI]; I != W; ++I)
        Final[PI][I] = meet(Final[PI][I], U[I]);
    }

    ConstantsMap CM;
    for (Procedure *P : CG.procedures()) {
      unsigned PI = CG.procIndex(P);
      ProcSlots &S = Slots[PI];
      const ConstantsMap::Row &BR = Base.row(P);
      if (BR.Vals.size() == Final[PI].size())
        for (unsigned I = 0, W = Width[PI]; I != W; ++I)
          if (Final[PI][I].isTop())
            Final[PI][I] = BR.Vals[I];
      std::vector<Variable *> Vars;
      Vars.reserve(Final[PI].size());
      Vars.insert(Vars.end(), P->formals().begin(), P->formals().end());
      Vars.insert(Vars.end(), S.Globals.begin(), S.Globals.end());
      CM.adoptRow(P, std::move(Vars), std::move(Final[PI]));
    }
    if (CtxStats)
      CtxStats->ValConstants = CM.totalConstants();
    return CM;
  }

  const CallGraph &CG;
  const ModRefInfo &MRI;
  const ForwardJumpFunctions &FJFs;
  const IPCPOptions &Opts;
  PropagatorStats *Stats;
  ResourceGuard *Guard;
  ContextEngineStats *CtxStats;

  std::vector<ProcSlots> Slots;
  std::vector<unsigned> Width;

  // Context tables (SoA): per-context proc index, span base into the
  // flat entry-value vector, summary/queued flags.
  std::vector<uint32_t> CtxProc;
  std::vector<size_t> CtxBase;
  std::vector<char> CtxIsSummary;
  std::vector<char> CtxQueued;
  std::vector<LatticeValue> Entries;
  std::vector<int32_t> SummaryOf;
  std::unordered_map<uint64_t, std::vector<uint32_t>> Memo;
  std::unordered_set<uint32_t> VisitedSummary;

  std::vector<uint32_t> Queue;
  size_t Head = 0;

  uint64_t Evaluations = 0;
  uint64_t Reused = 0;
  uint64_t Merges = 0;
  uint64_t SummaryContexts = 0;
  bool BudgetTripped = false;
};

} // namespace

ConstantsMap ipcp::propagateConstantsContexts(
    const CallGraph &CG, const ModRefInfo &MRI,
    const ForwardJumpFunctions &FJFs, const IPCPOptions &Opts,
    PropagatorStats *Stats, ResourceGuard *Guard,
    ContextEngineStats *CtxStats) {
  ScopedTraceSpan PropSpan("propagate", "value-contexts");
  ContextSolver Solver(CG, MRI, FJFs, Opts, Stats, Guard, CtxStats);
  return Solver.solve();
}
