//===- core/ValueContexts.h - Context-sensitive propagation -----*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The value-contexts propagation engine (--engine=contexts): instead of
/// meeting every caller's bindings into one VAL set per procedure (the
/// 1986 framework), tabulate a *context* per distinct (procedure, entry
/// VAL vector) pair, following Padhye & Khedker's value-contexts method.
/// Each context evaluates the procedure's outgoing jump functions on its
/// exact entry vector, so correlated formals survive — two call sites
/// passing (1,2) and (2,1) both send x+y = 3 to a callee the merged
/// engine only sees as (bottom, bottom).
///
/// The engine is a worklist over context-transition edges. Contexts with
/// exact entry vectors are immutable and processed once (hash-cons memo:
/// an edge that re-derives an existing vector just reuses the context);
/// once the context-count budget (IPCPOptions::MaxContexts) is exhausted,
/// new vectors are met into one mutable *summary* context per procedure,
/// which re-enters the worklist whenever a merge lowers it — the
/// in-progress fixpoint iteration that keeps unbounded recursion
/// (f(n) calling f(n+1)) terminating: lattice depth 2 bounds every
/// summary slot to two lowerings.
///
/// The final per-procedure result is the meet over that procedure's
/// tabulated contexts, refined per slot against a baseline run of the
/// 1986 engine: wherever the contexts engine has no evidence (top) the
/// baseline's sound conclusion is adopted. The refinement makes the
/// engine's CONSTANTS sets a superset of the jump engine's on *every*
/// program — including ones where unreachable callers or top-valued
/// entry formals would otherwise make the two incomparable — and a
/// budget-exhausted or guard-tripped run degrades exactly to the
/// baseline. See docs/CONTEXTS.md for the termination and precision
/// arguments and the published study.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_VALUECONTEXTS_H
#define IPCP_CORE_VALUECONTEXTS_H

#include "core/Propagator.h"

namespace ipcp {

/// Cost/precision figures of one contexts-engine run — the source of the
/// report's context_study block and the ctx_* counters.
struct ContextEngineStats {
  /// False until propagateConstantsContexts fills the struct; the report
  /// emits context_study exactly when set.
  bool Enabled = false;

  /// Contexts tabulated, including summary contexts.
  uint64_t Contexts = 0;

  /// Mutable per-procedure summary contexts created after the budget
  /// tripped (or for procedures whose context population overflowed).
  uint64_t SummaryContexts = 0;

  /// Jump-function evaluations performed by the tabulation.
  uint64_t Evaluations = 0;

  /// Context-transition edges whose derived entry vector matched an
  /// already-tabulated context (the memoization hit count).
  uint64_t Reused = 0;

  /// Entry vectors met into a summary context instead of spawning a
  /// fresh context.
  uint64_t Merges = 0;

  /// Bytes of flat entry-value storage at fixpoint — the engine's peak
  /// memory proxy (entry vectors only grow, so final size == peak).
  uint64_t EntryBytes = 0;

  /// The MaxContexts budget was exhausted and the engine switched to
  /// summary-merging (graceful degradation toward the 1986 behavior).
  bool BudgetTripped = false;

  /// VAL entries constant at the baseline (1986 jump engine) fixpoint,
  /// against which ValConstants measures the precision delta.
  uint64_t BaselineValConstants = 0;

  /// VAL entries constant under the contexts engine (post-refinement);
  /// never less than BaselineValConstants.
  uint64_t ValConstants = 0;
};

/// Runs the value-contexts engine to fixpoint and packages the refined
/// per-procedure meet as a ConstantsMap (same row layout as the jump
/// engine: formals positionally, then extended globals in ID order).
/// \p Guard budgets jump-function evaluations and the deadline exactly
/// like propagateConstants; on a trip the engine returns the baseline
/// jump-engine result computed before tabulation started (empty if the
/// baseline itself tripped). \p CtxStats, when non-null, receives the
/// study figures.
ConstantsMap propagateConstantsContexts(const CallGraph &CG,
                                        const ModRefInfo &MRI,
                                        const ForwardJumpFunctions &FJFs,
                                        const IPCPOptions &Opts,
                                        PropagatorStats *Stats = nullptr,
                                        ResourceGuard *Guard = nullptr,
                                        ContextEngineStats *CtxStats =
                                            nullptr);

} // namespace ipcp

#endif // IPCP_CORE_VALUECONTEXTS_H
