//===- core/ValueNumbering.cpp --------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "core/ValueNumbering.h"

#include "core/ReturnJumpFunctions.h"
#include "support/Casting.h"

using namespace ipcp;

SymbolicLifter::SymbolicLifter(SymExprContext &Ctx, const SSAResult &SSA,
                               const ReturnJumpFunctions *RJFs,
                               CallOutMode Mode, bool UseGatedSSA)
    : Ctx(Ctx), SSA(SSA), RJFs(RJFs), Mode(Mode), UseGatedSSA(UseGatedSSA) {}

const SymExpr *SymbolicLifter::lift(Value *V) {
  auto It = Memo.find(V);
  if (It != Memo.end())
    return It->second;
  if (Active.count(V))
    return nullptr; // phi cycle: not expressible over entry values
  Active.emplace(V, State::InProgress);
  const SymExpr *E = liftImpl(V);
  Active.erase(V);
  Memo[V] = E;
  return E;
}

const SymExpr *SymbolicLifter::liftImpl(Value *V) {
  switch (V->getKind()) {
  case ValueKind::ConstantInt:
    return Ctx.getConst(cast<ConstantInt>(V)->getValue());
  case ValueKind::EntryValue:
    return Ctx.getFormal(cast<EntryValue>(V)->getVariable());
  case ValueKind::Undef:
    return nullptr;
  case ValueKind::Binary: {
    auto *Bin = cast<BinaryInst>(V);
    const SymExpr *L = lift(Bin->getLHS());
    if (!L)
      return nullptr;
    return Ctx.getBinary(Bin->getOp(), L, lift(Bin->getRHS()));
  }
  case ValueKind::Unary: {
    auto *Un = cast<UnaryInst>(V);
    return Ctx.getUnary(Un->getOp(), lift(Un->getValueOperand()));
  }
  case ValueKind::Phi: {
    // Value numbering across merges: a phi whose incoming values all lift
    // to the same canonical expression is that expression (hash-consing
    // makes the check a pointer comparison). Otherwise the merge is not a
    // function of entry values alone.
    auto *Phi = cast<PhiInst>(V);
    if (Phi->getNumIncoming() == 0)
      return nullptr;
    const SymExpr *Common = lift(Phi->getIncomingValue(0));
    bool AllEqual = Common != nullptr;
    for (unsigned I = 1, E = Phi->getNumIncoming(); AllEqual && I != E; ++I)
      if (lift(Phi->getIncomingValue(I)) != Common)
        AllEqual = false;
    if (AllEqual)
      return Common;
    if (UseGatedSSA)
      return liftGatedPhi(Phi);
    return nullptr;
  }
  case ValueKind::CallOut:
    return liftCallOut(cast<CallOutInst>(V));
  case ValueKind::ArrayLoad:
  case ValueKind::Read:
  case ValueKind::Load:
    return nullptr; // opaque sources, exactly as in the paper
  default:
    assert(!V->producesValue() && "unhandled value-producing kind");
    return nullptr;
  }
}

const SymExpr *SymbolicLifter::liftGatedPhi(PhiInst *Phi) {
  // Gamma-node resolution: for a two-way merge whose immediate dominator
  // ends in a conditional branch with a constant-valued condition, pick
  // the live side — provided the dead side's incoming block is reachable
  // only through the untaken edge, which makes its assignment provably
  // dead (exactly what dead code elimination would remove; paper
  // Section 4.2's gated-single-assignment observation).
  const DominatorTree *DT = SSA.DomTree.get();
  if (!DT || Phi->getNumIncoming() != 2)
    return nullptr;
  BasicBlock *Merge = Phi->getParent();
  if (!DT->isReachable(Merge))
    return nullptr;
  BasicBlock *Dom = DT->idom(Merge);
  if (!Dom)
    return nullptr;
  auto *Gate = dyn_cast_or_null<CondBranchInst>(Dom->getTerminator());
  if (!Gate)
    return nullptr;

  const SymExpr *Cond = lift(Gate->getCond());
  if (!Cond || !Cond->isConst())
    return nullptr;
  bool TakeTrue = Cond->getConst() != 0;
  BasicBlock *Taken = TakeTrue ? Gate->getTrueTarget() : Gate->getFalseTarget();
  BasicBlock *Untaken =
      TakeTrue ? Gate->getFalseTarget() : Gate->getTrueTarget();
  if (Taken == Untaken)
    return nullptr;

  // An incoming edge is on the taken side if its block is the gate
  // itself with the taken edge entering the merge directly, or lies
  // under the taken successor.
  auto OnTakenSide = [&](BasicBlock *Pred) {
    if (Pred == Dom)
      return Taken == Merge;
    return Taken != Merge && DT->isReachable(Pred) &&
           DT->dominates(Taken, Pred);
  };
  // The dead side must be provably unreachable when the condition holds:
  // either it is the direct untaken edge from the gate, or it lies under
  // an untaken arm whose *only* entry is the gate (single predecessor).
  // The single-entry requirement rules out cross edges and loop back
  // edges; structured lowering always satisfies it for if-arms.
  auto OnDeadSide = [&](BasicBlock *Pred) {
    if (Pred == Dom)
      return Untaken == Merge;
    return Untaken != Merge && Untaken->predecessors().size() == 1 &&
           Untaken->predecessors().front() == Dom && DT->isReachable(Pred) &&
           DT->dominates(Untaken, Pred);
  };

  int Selected = -1;
  for (unsigned I = 0; I != 2; ++I) {
    BasicBlock *PredSel = Phi->getIncomingBlock(I);
    BasicBlock *PredDead = Phi->getIncomingBlock(1 - I);
    if (OnTakenSide(PredSel) && OnDeadSide(PredDead)) {
      Selected = static_cast<int>(I);
      break;
    }
  }
  if (Selected < 0)
    return nullptr;
  return lift(Phi->getIncomingValue(Selected));
}

const SymExpr *SymbolicLifter::liftCallOut(CallOutInst *Out) {
  if (!RJFs)
    return nullptr; // configuration without return jump functions

  CallInst *Call = Out->getCall();
  Procedure *Callee = Call->getCallee();
  Variable *Var = Out->getVariable();

  // Identify how the callee reaches this location: through exactly one
  // by-reference binding, or as a global. Multiple routes (aliasing) are
  // conservatively bottom.
  const JumpFunction *RJF = nullptr;
  unsigned Sources = 0;
  for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
    if (Call->getActual(I).ByRefLoc != Var)
      continue;
    if (const JumpFunction *JF = RJFs->find(Callee, Callee->formals()[I])) {
      RJF = JF;
      ++Sources;
    }
  }
  if (Var->isGlobal())
    if (const JumpFunction *JF = RJFs->find(Callee, Var)) {
      RJF = JF;
      ++Sources;
    }
  if (Sources != 1 || !RJF || RJF->isBottom())
    return nullptr;

  // Compose: substitute the callee's entry values with the caller-side
  // expressions of the corresponding actuals / globals at this site.
  auto CallIn = SSA.CallInValues.find(Call);
  const SymExpr *Result = Ctx.substitute(
      RJF->expr(), [&](Variable *Support) -> const SymExpr * {
        if (Support->isFormal() && Support->getParent() == Callee) {
          unsigned Index = Support->getFormalIndex();
          if (Index >= Call->getNumActuals())
            return nullptr;
          return lift(Call->getActualValue(Index));
        }
        if (Support->isGlobal() && CallIn != SSA.CallInValues.end()) {
          auto It = CallIn->second.find(Support);
          if (It != CallIn->second.end())
            return lift(It->second);
        }
        return nullptr;
      });

  // Paper Section 3.2: during forward jump function generation, a return
  // jump function that does not evaluate to a constant is bottom.
  if (Mode == CallOutMode::ConstantOnly && Result && !Result->isConst())
    return nullptr;
  return Result;
}
