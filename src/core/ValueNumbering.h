//===- core/ValueNumbering.h - SSA value -> symbolic expr -------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SSA-based value numbering that the paper builds its jump functions
/// on (Section 4.1: "we built a set of jump functions on top of an
/// existing framework for global value numbering"). The SymbolicLifter
/// maps each SSA value of one procedure to a canonical symbolic
/// expression over the procedure's entry values (or bottom), memoized so
/// that structurally equal values share one hash-consed expression.
///
/// CallOut values — the definitions a call imposes on its MOD set — are
/// resolved through the callee's return jump function, composed with the
/// symbolic values of the actuals at the site. Two resolution modes
/// mirror the paper's two evaluations of each return jump function
/// (Section 3.2):
///  - Symbolic (used while *generating* return jump functions, "to expose
///    as many return jump functions as possible in the calling
///    procedure"): full substitution, possibly yielding an expression
///    over the caller's formals;
///  - ConstantOnly (used while generating *forward* jump functions): "any
///    return jump function that cannot be evaluated as constant ... is
///    set to bottom".
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_CORE_VALUENUMBERING_H
#define IPCP_CORE_VALUENUMBERING_H

#include "analysis/SSAConstruction.h"
#include "core/JumpFunction.h"
#include "ir/Module.h"

#include <unordered_map>

namespace ipcp {

class ReturnJumpFunctions;

/// How CallOut values resolve through return jump functions.
enum class CallOutMode { ConstantOnly, Symbolic };

/// Lifts the SSA values of one procedure into symbolic expressions.
class SymbolicLifter {
public:
  /// \p RJFs may be null (no return jump functions: every CallOut is
  /// bottom). \p SSA must be the result of constructing SSA for \p P.
  ///
  /// With \p UseGatedSSA, phis behave like the gamma nodes of gated
  /// single-assignment form (paper Section 4.2, citing Ballance et al.
  /// and Havlak): a two-way merge whose controlling branch condition
  /// lifts to a constant resolves to the live side's value, never
  /// considering the dead assignment — which is how the paper says the
  /// complete-propagation results can be achieved in a single pass.
  SymbolicLifter(SymExprContext &Ctx, const SSAResult &SSA,
                 const ReturnJumpFunctions *RJFs, CallOutMode Mode,
                 bool UseGatedSSA = false);

  /// The canonical expression for \p V, or null (bottom). Memoized.
  const SymExpr *lift(Value *V);

private:
  const SymExpr *liftImpl(Value *V);
  const SymExpr *liftCallOut(CallOutInst *Out);
  const SymExpr *liftGatedPhi(PhiInst *Phi);

  SymExprContext &Ctx;
  const SSAResult &SSA;
  const ReturnJumpFunctions *RJFs;
  CallOutMode Mode;
  bool UseGatedSSA;

  /// Memo table; InProgress breaks phi cycles (a value on a cycle that
  /// reaches itself is not expressible over entry values: bottom).
  enum class State { InProgress };
  std::unordered_map<Value *, const SymExpr *> Memo;
  std::unordered_map<Value *, State> Active;
};

} // namespace ipcp

#endif // IPCP_CORE_VALUENUMBERING_H
