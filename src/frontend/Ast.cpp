//===- frontend/Ast.cpp ---------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Ast.h"

using namespace ipcp;

// Out-of-line virtual destructors anchor the vtables (see LLVM coding
// standards, "Provide a Virtual Method Anchor for Classes in Headers").
Expr::~Expr() = default;
Stmt::~Stmt() = default;
