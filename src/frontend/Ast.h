//===- frontend/Ast.h - MiniFort abstract syntax tree -----------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniFort AST: expressions, statements, declarations, and the Program
/// root. Nodes carry source locations and participate in the LLVM-style
/// isa/cast/dyn_cast machinery through Kind enums.
///
/// Semantics relevant to the analysis (see DESIGN.md):
///  - all scalar values are 64-bit integers;
///  - parameters are passed by reference (Fortran call semantics) — a plain
///    variable actual aliases the callee formal, any other actual is copied
///    into a hidden temporary whose final value is discarded;
///  - global variables are shared by all procedures (COMMON semantics) and
///    initialized to zero;
///  - arrays are opaque to constant propagation, as in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FRONTEND_AST_H
#define IPCP_FRONTEND_AST_H

#include "support/Casting.h"
#include "support/ConstantMath.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace ipcp {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of every MiniFort expression.
class Expr {
public:
  enum class Kind {
    IntLiteral,
    VarRef,
    ArrayRef,
    Binary,
    Unary,
  };

  virtual ~Expr();

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Expr(Kind TheKind, SourceLoc Loc) : TheKind(TheKind), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

/// An integer literal such as `42`.
class IntLiteralExpr : public Expr {
public:
  IntLiteralExpr(SourceLoc Loc, ConstantValue Value)
      : Expr(Kind::IntLiteral, Loc), Value(Value) {}

  ConstantValue getValue() const { return Value; }

  static bool classof(const Expr *E) {
    return E->getKind() == Kind::IntLiteral;
  }

private:
  ConstantValue Value;
};

/// A reference to a scalar variable (local, formal, or global).
class VarRefExpr : public Expr {
public:
  VarRefExpr(SourceLoc Loc, std::string Name)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }

  static bool classof(const Expr *E) { return E->getKind() == Kind::VarRef; }

private:
  std::string Name;
};

/// A subscripted array reference `a[i]`.
class ArrayRefExpr : public Expr {
public:
  ArrayRefExpr(SourceLoc Loc, std::string Name, ExprPtr Index)
      : Expr(Kind::ArrayRef, Loc), Name(std::move(Name)),
        Index(std::move(Index)) {}

  const std::string &getName() const { return Name; }
  const Expr *getIndex() const { return Index.get(); }
  Expr *getIndex() { return Index.get(); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::ArrayRef; }

private:
  std::string Name;
  ExprPtr Index;
};

/// A binary arithmetic or comparison expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, ExprPtr LHS, ExprPtr RHS)
      : Expr(Kind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}

  BinaryOp getOp() const { return Op; }
  const Expr *getLHS() const { return LHS.get(); }
  const Expr *getRHS() const { return RHS.get(); }
  Expr *getLHS() { return LHS.get(); }
  Expr *getRHS() { return RHS.get(); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// A unary negation or logical-not expression.
class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, UnaryOp Op, ExprPtr Operand)
      : Expr(Kind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}

  UnaryOp getOp() const { return Op; }
  const Expr *getOperand() const { return Operand.get(); }
  Expr *getOperand() { return Operand.get(); }

  static bool classof(const Expr *E) { return E->getKind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Operand;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of every MiniFort statement.
class Stmt {
public:
  enum class Kind {
    VarDecl,
    Assign,
    If,
    While,
    DoLoop,
    Call,
    Print,
    Read,
    Return,
    Block,
  };

  virtual ~Stmt();

  Kind getKind() const { return TheKind; }
  SourceLoc getLoc() const { return Loc; }

protected:
  Stmt(Kind TheKind, SourceLoc Loc) : TheKind(TheKind), Loc(Loc) {}

private:
  Kind TheKind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

/// One declared name: a scalar, or an array with its extent.
struct DeclItem {
  SourceLoc Loc;
  std::string Name;
  /// Zero for scalars; the declared extent for arrays.
  ConstantValue ArraySize = 0;
  bool isArray() const { return ArraySize != 0; }
};

/// `var a, b;` or `var t[10];` — procedure-scoped declarations.
class VarDeclStmt : public Stmt {
public:
  VarDeclStmt(SourceLoc Loc, std::vector<DeclItem> Items)
      : Stmt(Kind::VarDecl, Loc), Items(std::move(Items)) {}

  const std::vector<DeclItem> &getItems() const { return Items; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::VarDecl; }

private:
  std::vector<DeclItem> Items;
};

/// `lvalue = expr;`. The target is a VarRefExpr or ArrayRefExpr.
class AssignStmt : public Stmt {
public:
  AssignStmt(SourceLoc Loc, ExprPtr Target, ExprPtr Value)
      : Stmt(Kind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)) {}

  const Expr *getTarget() const { return Target.get(); }
  const Expr *getValue() const { return Value.get(); }
  Expr *getTarget() { return Target.get(); }
  Expr *getValue() { return Value.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Assign; }

private:
  ExprPtr Target;
  ExprPtr Value;
};

/// `if (cond) block [else block-or-if]`. Nonzero condition is true.
class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Then, StmtPtr Else)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  const Expr *getCond() const { return Cond.get(); }
  Expr *getCond() { return Cond.get(); }
  const Stmt *getThen() const { return Then.get(); }
  Stmt *getThen() { return Then.get(); }
  /// May be null.
  const Stmt *getElse() const { return Else.get(); }
  Stmt *getElse() { return Else.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else;
};

/// `while (cond) block`.
class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, ExprPtr Cond, StmtPtr Body)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  const Expr *getCond() const { return Cond.get(); }
  Expr *getCond() { return Cond.get(); }
  const Stmt *getBody() const { return Body.get(); }
  Stmt *getBody() { return Body.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

/// `do i = lo, hi [, step] block` — the Fortran DO loop. The induction
/// variable counts from `lo` while `i <= hi` (or `i >= hi` when the step is
/// a negative literal), incremented by `step` (default 1) each iteration.
class DoLoopStmt : public Stmt {
public:
  DoLoopStmt(SourceLoc Loc, std::string IndVar, ExprPtr Lo, ExprPtr Hi,
             ExprPtr Step, StmtPtr Body)
      : Stmt(Kind::DoLoop, Loc), IndVar(std::move(IndVar)), Lo(std::move(Lo)),
        Hi(std::move(Hi)), Step(std::move(Step)), Body(std::move(Body)) {}

  const std::string &getIndVar() const { return IndVar; }
  const Expr *getLo() const { return Lo.get(); }
  Expr *getLo() { return Lo.get(); }
  const Expr *getHi() const { return Hi.get(); }
  Expr *getHi() { return Hi.get(); }
  /// May be null (step 1).
  const Expr *getStep() const { return Step.get(); }
  Expr *getStep() { return Step.get(); }
  const Stmt *getBody() const { return Body.get(); }
  Stmt *getBody() { return Body.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::DoLoop; }

private:
  std::string IndVar;
  ExprPtr Lo;
  ExprPtr Hi;
  ExprPtr Step;
  StmtPtr Body;
};

/// `call p(e1, ..., en);`.
class CallStmt : public Stmt {
public:
  CallStmt(SourceLoc Loc, std::string Callee, std::vector<ExprPtr> Args)
      : Stmt(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &getCallee() const { return Callee; }
  const std::vector<ExprPtr> &getArgs() const { return Args; }
  std::vector<ExprPtr> &getArgs() { return Args; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
};

/// `print expr;` — the observable output of a program.
class PrintStmt : public Stmt {
public:
  PrintStmt(SourceLoc Loc, ExprPtr Value)
      : Stmt(Kind::Print, Loc), Value(std::move(Value)) {}

  const Expr *getValue() const { return Value.get(); }
  Expr *getValue() { return Value.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Print; }

private:
  ExprPtr Value;
};

/// `read lvalue;` — reads an external (hence non-constant) integer.
class ReadStmt : public Stmt {
public:
  ReadStmt(SourceLoc Loc, ExprPtr Target)
      : Stmt(Kind::Read, Loc), Target(std::move(Target)) {}

  const Expr *getTarget() const { return Target.get(); }
  Expr *getTarget() { return Target.get(); }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Read; }

private:
  ExprPtr Target;
};

/// `return;` — exits the current procedure.
class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(SourceLoc Loc) : Stmt(Kind::Return, Loc) {}

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Return; }
};

/// `{ stmt* }`.
class BlockStmt : public Stmt {
public:
  BlockStmt(SourceLoc Loc, std::vector<StmtPtr> Stmts)
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}

  const std::vector<StmtPtr> &getStmts() const { return Stmts; }
  std::vector<StmtPtr> &getStmts() { return Stmts; }

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

//===----------------------------------------------------------------------===//
// Declarations and the program root
//===----------------------------------------------------------------------===//

/// A `global` declaration of one or more shared scalars or arrays.
struct GlobalDecl {
  SourceLoc Loc;
  std::vector<DeclItem> Items;
};

/// A `proc name(params) { ... }` definition.
struct ProcDecl {
  SourceLoc Loc;
  std::string Name;
  std::vector<DeclItem> Params; // always scalars
  std::unique_ptr<BlockStmt> Body;
};

/// A whole MiniFort compilation unit.
struct Program {
  std::vector<GlobalDecl> Globals;
  std::vector<ProcDecl> Procs;

  /// Finds a procedure by name; null if absent.
  const ProcDecl *findProc(const std::string &Name) const {
    for (const ProcDecl &P : Procs)
      if (P.Name == Name)
        return &P;
    return nullptr;
  }
};

} // namespace ipcp

#endif // IPCP_FRONTEND_AST_H
