//===- frontend/AstPrinter.cpp --------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "frontend/AstPrinter.h"

#include "support/Casting.h"

using namespace ipcp;

namespace {

/// Stateful pretty printer with indentation tracking.
class PrinterImpl {
public:
  std::string run(const Program &Prog) {
    for (const GlobalDecl &G : Prog.Globals) {
      Out += "global ";
      printItems(G.Items);
      Out += ";\n";
    }
    for (const ProcDecl &P : Prog.Procs) {
      Out += "\nproc ";
      Out += P.Name;
      Out += "(";
      for (size_t I = 0; I != P.Params.size(); ++I) {
        if (I)
          Out += ", ";
        Out += P.Params[I].Name;
      }
      Out += ") ";
      printStmt(P.Body.get());
      Out += "\n";
    }
    return std::move(Out);
  }

  void printExprInto(const Expr *E) { printExpr(E); }
  std::string take() { return std::move(Out); }

private:
  void indent() { Out.append(2 * Depth, ' '); }

  void printItems(const std::vector<DeclItem> &Items) {
    for (size_t I = 0; I != Items.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Items[I].Name;
      if (Items[I].isArray()) {
        Out += "[";
        Out += std::to_string(Items[I].ArraySize);
        Out += "]";
      }
    }
  }

  void printExpr(const Expr *E) {
    switch (E->getKind()) {
    case Expr::Kind::IntLiteral: {
      ConstantValue V = cast<IntLiteralExpr>(E)->getValue();
      if (V < 0)
        Out += "(";
      Out += std::to_string(V);
      if (V < 0)
        Out += ")";
      return;
    }
    case Expr::Kind::VarRef:
      Out += cast<VarRefExpr>(E)->getName();
      return;
    case Expr::Kind::ArrayRef: {
      const auto *Ref = cast<ArrayRefExpr>(E);
      Out += Ref->getName();
      Out += "[";
      printExpr(Ref->getIndex());
      Out += "]";
      return;
    }
    case Expr::Kind::Binary: {
      const auto *Bin = cast<BinaryExpr>(E);
      Out += "(";
      printExpr(Bin->getLHS());
      Out += " ";
      Out += binaryOpSpelling(Bin->getOp());
      Out += " ";
      printExpr(Bin->getRHS());
      Out += ")";
      return;
    }
    case Expr::Kind::Unary: {
      const auto *Un = cast<UnaryExpr>(E);
      Out += "(";
      Out += unaryOpSpelling(Un->getOp());
      printExpr(Un->getOperand());
      Out += ")";
      return;
    }
    }
  }

  void printStmt(const Stmt *S) {
    switch (S->getKind()) {
    case Stmt::Kind::VarDecl:
      Out += "var ";
      printItems(cast<VarDeclStmt>(S)->getItems());
      Out += ";";
      return;
    case Stmt::Kind::Assign: {
      const auto *Assign = cast<AssignStmt>(S);
      printExpr(Assign->getTarget());
      Out += " = ";
      printExpr(Assign->getValue());
      Out += ";";
      return;
    }
    case Stmt::Kind::If: {
      const auto *If = cast<IfStmt>(S);
      Out += "if (";
      printExpr(If->getCond());
      Out += ") ";
      printStmt(If->getThen());
      if (If->getElse()) {
        Out += " else ";
        printStmt(If->getElse());
      }
      return;
    }
    case Stmt::Kind::While: {
      const auto *While = cast<WhileStmt>(S);
      Out += "while (";
      printExpr(While->getCond());
      Out += ") ";
      printStmt(While->getBody());
      return;
    }
    case Stmt::Kind::DoLoop: {
      const auto *Do = cast<DoLoopStmt>(S);
      Out += "do ";
      Out += Do->getIndVar();
      Out += " = ";
      printExpr(Do->getLo());
      Out += ", ";
      printExpr(Do->getHi());
      if (Do->getStep()) {
        Out += ", ";
        printExpr(Do->getStep());
      }
      Out += " ";
      printStmt(Do->getBody());
      return;
    }
    case Stmt::Kind::Call: {
      const auto *Call = cast<CallStmt>(S);
      Out += "call ";
      Out += Call->getCallee();
      Out += "(";
      const auto &Args = Call->getArgs();
      for (size_t I = 0; I != Args.size(); ++I) {
        if (I)
          Out += ", ";
        printExpr(Args[I].get());
      }
      Out += ");";
      return;
    }
    case Stmt::Kind::Print:
      Out += "print ";
      printExpr(cast<PrintStmt>(S)->getValue());
      Out += ";";
      return;
    case Stmt::Kind::Read:
      Out += "read ";
      printExpr(cast<ReadStmt>(S)->getTarget());
      Out += ";";
      return;
    case Stmt::Kind::Return:
      Out += "return;";
      return;
    case Stmt::Kind::Block: {
      Out += "{\n";
      ++Depth;
      for (const StmtPtr &Child : cast<BlockStmt>(S)->getStmts()) {
        indent();
        printStmt(Child.get());
        Out += "\n";
      }
      --Depth;
      indent();
      Out += "}";
      return;
    }
    }
  }

  std::string Out;
  unsigned Depth = 0;
};

} // namespace

std::string ipcp::printExpr(const Expr *E) {
  PrinterImpl Impl;
  Impl.printExprInto(E);
  return Impl.take();
}

std::string ipcp::printProgram(const Program &Prog) {
  PrinterImpl Impl;
  return Impl.run(Prog);
}
