//===- frontend/AstPrinter.h - Render a Program back to source --*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an AST back to canonical MiniFort source text. Used by tests
/// (round-tripping), by the examples, and by the constant-substitution
/// report. Output re-parses to a structurally identical program.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FRONTEND_ASTPRINTER_H
#define IPCP_FRONTEND_ASTPRINTER_H

#include "frontend/Ast.h"

#include <string>

namespace ipcp {

/// Renders \p E as an expression (fully parenthesized compound terms).
std::string printExpr(const Expr *E);

/// Renders the whole program as canonical source.
std::string printProgram(const Program &Prog);

} // namespace ipcp

#endif // IPCP_FRONTEND_ASTPRINTER_H
