//===- frontend/Lexer.cpp -------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace ipcp;

const char *ipcp::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwGlobal:
    return "'global'";
  case TokenKind::KwProc:
    return "'proc'";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwArray:
    return "'array'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwCall:
    return "'call'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwRead:
    return "'read'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::Not:
    return "'!'";
  }
  return "unknown token";
}

Lexer::Lexer(std::string_view Source, DiagnosticsEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek() const { return atEnd() ? '\0' : Source[Pos]; }

char Lexer::peekAhead() const {
  return Pos + 1 >= Source.size() ? '\0' : Source[Pos + 1];
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peekAhead() == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc, std::string Text) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = Loc;
  Tok.Text = std::move(Text);
  return Tok;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"global", TokenKind::KwGlobal}, {"proc", TokenKind::KwProc},
      {"var", TokenKind::KwVar},       {"array", TokenKind::KwArray},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"while", TokenKind::KwWhile},   {"do", TokenKind::KwDo},
      {"call", TokenKind::KwCall},     {"print", TokenKind::KwPrint},
      {"read", TokenKind::KwRead},     {"return", TokenKind::KwReturn},
  };

  size_t Begin = Pos;
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    advance();
  std::string Text(Source.substr(Begin, Pos - Begin));
  auto It = Keywords.find(Text);
  TokenKind Kind = It == Keywords.end() ? TokenKind::Identifier : It->second;
  return makeToken(Kind, Loc, std::move(Text));
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Begin = Pos;
  ConstantValue Value = 0;
  bool Overflow = false;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
    int Digit = advance() - '0';
    if (auto Scaled = checkedMul(Value, 10)) {
      if (auto Sum = checkedAdd(*Scaled, Digit)) {
        Value = *Sum;
        continue;
      }
    }
    Overflow = true;
  }
  std::string Text(Source.substr(Begin, Pos - Begin));
  if (Overflow) {
    Diags.error(Loc, "integer literal '" + Text + "' is too large");
    return makeToken(TokenKind::Error, Loc, std::move(Text));
  }
  Token Tok = makeToken(TokenKind::IntLiteral, Loc, std::move(Text));
  Tok.IntValue = Value;
  return Tok;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Loc(Line, Col);
  if (atEnd())
    return makeToken(TokenKind::Eof, Loc, "");

  char C = peek();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc, "(");
  case ')':
    return makeToken(TokenKind::RParen, Loc, ")");
  case '{':
    return makeToken(TokenKind::LBrace, Loc, "{");
  case '}':
    return makeToken(TokenKind::RBrace, Loc, "}");
  case '[':
    return makeToken(TokenKind::LBracket, Loc, "[");
  case ']':
    return makeToken(TokenKind::RBracket, Loc, "]");
  case ',':
    return makeToken(TokenKind::Comma, Loc, ",");
  case ';':
    return makeToken(TokenKind::Semicolon, Loc, ";");
  case '+':
    return makeToken(TokenKind::Plus, Loc, "+");
  case '-':
    return makeToken(TokenKind::Minus, Loc, "-");
  case '*':
    return makeToken(TokenKind::Star, Loc, "*");
  case '/':
    return makeToken(TokenKind::Slash, Loc, "/");
  case '%':
    return makeToken(TokenKind::Percent, Loc, "%");
  case '=':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::EqEq, Loc, "==");
    }
    return makeToken(TokenKind::Assign, Loc, "=");
  case '!':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::NotEq, Loc, "!=");
    }
    return makeToken(TokenKind::Not, Loc, "!");
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEq, Loc, "<=");
    }
    return makeToken(TokenKind::Less, Loc, "<");
  case '>':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::GreaterEq, Loc, ">=");
    }
    return makeToken(TokenKind::Greater, Loc, ">");
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return makeToken(TokenKind::Error, Loc, std::string(1, C));
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::Eof))
      break;
  }
  return Tokens;
}
