//===- frontend/Lexer.h - MiniFort lexer ------------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniFort. Comments run from `//` to end of line.
/// Integer literals are decimal; a leading `-` is a separate token handled
/// by the parser as unary negation.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FRONTEND_LEXER_H
#define IPCP_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace ipcp {

/// Streams tokens out of a MiniFort source buffer.
class Lexer {
public:
  /// \p Source must outlive the lexer. Errors go to \p Diags.
  Lexer(std::string_view Source, DiagnosticsEngine &Diags);

  /// Lexes and returns the next token. After end of input, returns Eof
  /// tokens forever.
  Token next();

  /// Lexes the whole buffer; the last element is always Eof.
  std::vector<Token> lexAll();

private:
  char peek() const;
  char peekAhead() const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  void skipWhitespaceAndComments();
  Token makeToken(TokenKind Kind, SourceLoc Loc, std::string Text);
  Token lexIdentifierOrKeyword(SourceLoc Loc);
  Token lexNumber(SourceLoc Loc);

  std::string_view Source;
  DiagnosticsEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace ipcp

#endif // IPCP_FRONTEND_LEXER_H
