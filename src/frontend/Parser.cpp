//===- frontend/Parser.cpp ------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Sema.h"

using namespace ipcp;

Parser::Parser(std::string_view Source, DiagnosticsEngine &Diags,
               ResourceGuard *Guard)
    : Diags(Diags), Guard(Guard) {
  Lexer Lex(Source, Diags);
  Tokens = Lex.lexAll();
  if (Guard) {
    if (Guard->limits().MaxParseDepth != 0)
      MaxDepth = Guard->limits().MaxParseDepth;
    // lexAll always appends Eof; only real tokens count.
    if (!Guard->checkTokens(Tokens.size() - 1)) {
      Diags.error(Tokens.front().Loc,
                  "input exceeds the token budget (limit " +
                      std::to_string(Guard->limits().MaxTokens) + ")");
      BudgetReported = true;
      Tokens.erase(Tokens.begin(), Tokens.end() - 1); // keep Eof only
    }
  }
}

bool Parser::atDepthLimit() {
  if (Depth < MaxDepth)
    return false;
  if (!BudgetReported) {
    BudgetReported = true;
    Diags.error(peek().Loc, "nesting too deep (parser depth limit " +
                                std::to_string(MaxDepth) + ")");
    if (Guard)
      Guard->trip("parse-depth", "frontend");
    abortParse();
  }
  return true;
}

void Parser::noteNode() {
  ++NodeCount;
  if (Guard && !Guard->checkAstNodes(NodeCount) && !BudgetReported) {
    BudgetReported = true;
    Diags.error(peek().Loc,
                "program exceeds the AST node budget (limit " +
                    std::to_string(Guard->limits().MaxAstNodes) + ")");
    abortParse();
  }
}

const Token &Parser::peekAhead() const {
  size_t Next = Index + 1;
  if (Next >= Tokens.size())
    Next = Tokens.size() - 1; // Eof
  return Tokens[Next];
}

Token Parser::consume() {
  Token Tok = Tokens[Index];
  if (!Tok.is(TokenKind::Eof))
    ++Index;
  return Tok;
}

bool Parser::match(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (match(Kind))
    return true;
  Diags.error(peek().Loc, std::string("expected ") + tokenKindName(Kind) +
                              " " + Context + ", found " +
                              tokenKindName(peek().Kind));
  return false;
}

void Parser::syncToStmtBoundary() {
  while (!check(TokenKind::Eof)) {
    if (match(TokenKind::Semicolon))
      return;
    if (check(TokenKind::RBrace) || check(TokenKind::LBrace) ||
        check(TokenKind::KwProc) || check(TokenKind::KwGlobal))
      return;
    consume();
  }
}

void Parser::syncToTopLevel() {
  while (!check(TokenKind::Eof) && !check(TokenKind::KwProc) &&
         !check(TokenKind::KwGlobal))
    consume();
}

std::vector<DeclItem> Parser::parseDeclItems(bool AllowArrays) {
  std::vector<DeclItem> Items;
  do {
    Token Name = consume();
    if (!Name.is(TokenKind::Identifier)) {
      Diags.error(Name.Loc, "expected identifier in declaration, found " +
                                std::string(tokenKindName(Name.Kind)));
      return Items;
    }
    DeclItem Item;
    Item.Loc = Name.Loc;
    Item.Name = Name.Text;
    if (check(TokenKind::LBracket)) {
      consume();
      Token Size = consume();
      if (!Size.is(TokenKind::IntLiteral)) {
        Diags.error(Size.Loc, "expected integer literal array extent");
      } else if (Size.IntValue <= 0) {
        Diags.error(Size.Loc, "array extent must be positive");
      } else if (!AllowArrays) {
        Diags.error(Name.Loc,
                    "array '" + Item.Name + "' not allowed in this context");
      } else {
        Item.ArraySize = Size.IntValue;
      }
      expect(TokenKind::RBracket, "after array extent");
    }
    Items.push_back(std::move(Item));
  } while (match(TokenKind::Comma));
  return Items;
}

void Parser::parseGlobalDecl(Program &Prog) {
  GlobalDecl Decl;
  Decl.Loc = consume().Loc; // 'global'
  Decl.Items = parseDeclItems(/*AllowArrays=*/true);
  expect(TokenKind::Semicolon, "after global declaration");
  Prog.Globals.push_back(std::move(Decl));
}

void Parser::parseProcDecl(Program &Prog) {
  ProcDecl Decl;
  Decl.Loc = consume().Loc; // 'proc'
  Token Name = consume();
  if (!Name.is(TokenKind::Identifier)) {
    Diags.error(Name.Loc, "expected procedure name after 'proc'");
    syncToTopLevel();
    return;
  }
  Decl.Name = Name.Text;
  if (!expect(TokenKind::LParen, "after procedure name")) {
    syncToTopLevel();
    return;
  }
  if (!check(TokenKind::RParen))
    Decl.Params = parseDeclItems(/*AllowArrays=*/false);
  expect(TokenKind::RParen, "after parameter list");
  if (!check(TokenKind::LBrace)) {
    Diags.error(peek().Loc, "expected '{' to begin procedure body");
    syncToTopLevel();
    return;
  }
  Decl.Body = parseBlock();
  Prog.Procs.push_back(std::move(Decl));
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  if (atDepthLimit())
    return nullptr;
  DepthScope Scope(*this);
  SourceLoc Loc = peek().Loc;
  expect(TokenKind::LBrace, "to begin block");
  std::vector<StmtPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    // Stop when we fell off the end of a malformed body into a new
    // top-level declaration.
    if (check(TokenKind::KwProc) || check(TokenKind::KwGlobal))
      break;
    if (StmtPtr S = parseStmt())
      Stmts.push_back(std::move(S));
  }
  expect(TokenKind::RBrace, "to end block");
  return makeNode<BlockStmt>(Loc, std::move(Stmts));
}

StmtPtr Parser::parseStmt() {
  if (atDepthLimit())
    return nullptr;
  DepthScope Scope(*this);
  SourceLoc Loc = peek().Loc;
  switch (peek().Kind) {
  case TokenKind::KwVar: {
    consume();
    std::vector<DeclItem> Items = parseDeclItems(/*AllowArrays=*/true);
    expect(TokenKind::Semicolon, "after variable declaration");
    return makeNode<VarDeclStmt>(Loc, std::move(Items));
  }
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoLoop();
  case TokenKind::KwCall:
    return parseCall();
  case TokenKind::KwPrint: {
    consume();
    ExprPtr Value = parseExpr();
    expect(TokenKind::Semicolon, "after print statement");
    if (!Value)
      return nullptr;
    return makeNode<PrintStmt>(Loc, std::move(Value));
  }
  case TokenKind::KwRead: {
    consume();
    ExprPtr Target = parseLValue();
    expect(TokenKind::Semicolon, "after read statement");
    if (!Target)
      return nullptr;
    return makeNode<ReadStmt>(Loc, std::move(Target));
  }
  case TokenKind::KwReturn: {
    consume();
    expect(TokenKind::Semicolon, "after return statement");
    return makeNode<ReturnStmt>(Loc);
  }
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::Identifier:
    return parseAssign();
  default:
    Diags.error(Loc, std::string("expected statement, found ") +
                         tokenKindName(peek().Kind));
    syncToStmtBoundary();
    return nullptr;
  }
}

StmtPtr Parser::parseIf() {
  if (atDepthLimit())
    return nullptr;
  DepthScope Scope(*this);
  SourceLoc Loc = consume().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then = parseBlock();
  StmtPtr Else;
  if (match(TokenKind::KwElse)) {
    if (check(TokenKind::KwIf))
      Else = parseIf();
    else
      Else = parseBlock();
  }
  if (!Cond || !Then)
    return nullptr;
  return makeNode<IfStmt>(Loc, std::move(Cond), std::move(Then),
                                  std::move(Else));
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = consume().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  StmtPtr Body = parseBlock();
  if (!Cond || !Body)
    return nullptr;
  return makeNode<WhileStmt>(Loc, std::move(Cond), std::move(Body));
}

StmtPtr Parser::parseDoLoop() {
  SourceLoc Loc = consume().Loc; // 'do'
  Token IndVar = consume();
  if (!IndVar.is(TokenKind::Identifier)) {
    Diags.error(IndVar.Loc, "expected induction variable after 'do'");
    syncToStmtBoundary();
    return nullptr;
  }
  expect(TokenKind::Assign, "after do-loop induction variable");
  ExprPtr Lo = parseExpr();
  expect(TokenKind::Comma, "after do-loop lower bound");
  ExprPtr Hi = parseExpr();
  ExprPtr Step;
  if (match(TokenKind::Comma))
    Step = parseExpr();
  StmtPtr Body = parseBlock();
  if (!Lo || !Hi || !Body)
    return nullptr;
  return makeNode<DoLoopStmt>(Loc, IndVar.Text, std::move(Lo),
                                      std::move(Hi), std::move(Step),
                                      std::move(Body));
}

StmtPtr Parser::parseCall() {
  SourceLoc Loc = consume().Loc; // 'call'
  Token Callee = consume();
  if (!Callee.is(TokenKind::Identifier)) {
    Diags.error(Callee.Loc, "expected procedure name after 'call'");
    syncToStmtBoundary();
    return nullptr;
  }
  expect(TokenKind::LParen, "after callee name");
  std::vector<ExprPtr> Args;
  if (!check(TokenKind::RParen)) {
    do {
      if (ExprPtr Arg = parseExpr())
        Args.push_back(std::move(Arg));
      else
        break;
    } while (match(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after call arguments");
  expect(TokenKind::Semicolon, "after call statement");
  return makeNode<CallStmt>(Loc, Callee.Text, std::move(Args));
}

StmtPtr Parser::parseAssign() {
  SourceLoc Loc = peek().Loc;
  ExprPtr Target = parseLValue();
  if (!Target) {
    syncToStmtBoundary();
    return nullptr;
  }
  if (!expect(TokenKind::Assign, "in assignment")) {
    syncToStmtBoundary();
    return nullptr;
  }
  ExprPtr Value = parseExpr();
  expect(TokenKind::Semicolon, "after assignment");
  if (!Value)
    return nullptr;
  return makeNode<AssignStmt>(Loc, std::move(Target),
                                      std::move(Value));
}

ExprPtr Parser::parseLValue() {
  Token Name = consume();
  if (!Name.is(TokenKind::Identifier)) {
    Diags.error(Name.Loc, "expected variable name, found " +
                              std::string(tokenKindName(Name.Kind)));
    return nullptr;
  }
  if (match(TokenKind::LBracket)) {
    ExprPtr Index = parseExpr();
    expect(TokenKind::RBracket, "after array subscript");
    if (!Index)
      return nullptr;
    return makeNode<ArrayRefExpr>(Name.Loc, Name.Text,
                                          std::move(Index));
  }
  return makeNode<VarRefExpr>(Name.Loc, Name.Text);
}

static std::optional<BinaryOp> relOpFor(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EqEq:
    return BinaryOp::CmpEq;
  case TokenKind::NotEq:
    return BinaryOp::CmpNe;
  case TokenKind::Less:
    return BinaryOp::CmpLt;
  case TokenKind::LessEq:
    return BinaryOp::CmpLe;
  case TokenKind::Greater:
    return BinaryOp::CmpGt;
  case TokenKind::GreaterEq:
    return BinaryOp::CmpGe;
  default:
    return std::nullopt;
  }
}

ExprPtr Parser::parseExpr() {
  if (atDepthLimit())
    return nullptr;
  DepthScope Scope(*this);
  ExprPtr LHS = parseAddExpr();
  if (!LHS)
    return nullptr;
  if (auto Op = relOpFor(peek().Kind)) {
    SourceLoc Loc = consume().Loc;
    ExprPtr RHS = parseAddExpr();
    if (!RHS)
      return nullptr;
    return makeNode<BinaryExpr>(Loc, *Op, std::move(LHS),
                                        std::move(RHS));
  }
  return LHS;
}

ExprPtr Parser::parseAddExpr() {
  ExprPtr LHS = parseMulExpr();
  while (LHS && (check(TokenKind::Plus) || check(TokenKind::Minus))) {
    Token Op = consume();
    ExprPtr RHS = parseMulExpr();
    if (!RHS)
      return nullptr;
    BinaryOp Kind =
        Op.is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    LHS = makeNode<BinaryExpr>(Op.Loc, Kind, std::move(LHS),
                                       std::move(RHS));
  }
  return LHS;
}

ExprPtr Parser::parseMulExpr() {
  ExprPtr LHS = parseUnary();
  while (LHS && (check(TokenKind::Star) || check(TokenKind::Slash) ||
                 check(TokenKind::Percent))) {
    Token Op = consume();
    ExprPtr RHS = parseUnary();
    if (!RHS)
      return nullptr;
    BinaryOp Kind = Op.is(TokenKind::Star)    ? BinaryOp::Mul
                    : Op.is(TokenKind::Slash) ? BinaryOp::Div
                                              : BinaryOp::Mod;
    LHS = makeNode<BinaryExpr>(Op.Loc, Kind, std::move(LHS),
                                       std::move(RHS));
  }
  return LHS;
}

ExprPtr Parser::parseUnary() {
  if (atDepthLimit())
    return nullptr;
  DepthScope Scope(*this);
  SourceLoc Loc = peek().Loc;
  if (match(TokenKind::Minus)) {
    // Fold a negated literal into a single literal so `-5` is a literal
    // constant for the literal jump function, as it would be in Fortran.
    if (check(TokenKind::IntLiteral)) {
      Token Lit = consume();
      return makeNode<IntLiteralExpr>(Loc, -Lit.IntValue);
    }
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return makeNode<UnaryExpr>(Loc, UnaryOp::Neg, std::move(Operand));
  }
  if (match(TokenKind::Not)) {
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return makeNode<UnaryExpr>(Loc, UnaryOp::Not, std::move(Operand));
  }
  if (check(TokenKind::IntLiteral)) {
    Token Lit = consume();
    return makeNode<IntLiteralExpr>(Loc, Lit.IntValue);
  }
  if (match(TokenKind::LParen)) {
    ExprPtr Inner = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return Inner;
  }
  if (check(TokenKind::Identifier))
    return parseLValue();
  Diags.error(Loc, std::string("expected expression, found ") +
                       tokenKindName(peek().Kind));
  consume();
  return nullptr;
}

Program Parser::parseProgram() {
  Program Prog;
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwGlobal)) {
      parseGlobalDecl(Prog);
    } else if (check(TokenKind::KwProc)) {
      parseProcDecl(Prog);
    } else {
      Diags.error(peek().Loc,
                  std::string("expected 'global' or 'proc' at top level, "
                              "found ") +
                      tokenKindName(peek().Kind));
      syncToTopLevel();
      if (check(TokenKind::Eof))
        break;
    }
  }
  return Prog;
}

std::optional<Program> ipcp::parseAndCheck(std::string_view Source,
                                           DiagnosticsEngine &Diags,
                                           bool RequireMain,
                                           ResourceGuard *Guard) {
  Parser P(Source, Diags, Guard);
  Program Prog = P.parseProgram();
  if (Diags.hasErrors())
    return std::nullopt;
  Sema Checker(Diags);
  Checker.setRequireMain(RequireMain);
  Checker.check(Prog);
  if (Diags.hasErrors())
    return std::nullopt;
  return Prog;
}
