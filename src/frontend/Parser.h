//===- frontend/Parser.h - MiniFort parser ----------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniFort. The grammar (see DESIGN.md):
///
/// \code
///   program   := topdecl*
///   topdecl   := 'global' item (',' item)* ';'
///              | 'proc' ident '(' [ident (',' ident)*] ')' block
///   item      := ident ['[' intlit ']']
///   block     := '{' stmt* '}'
///   stmt      := 'var' item (',' item)* ';'
///              | lvalue '=' expr ';'
///              | 'if' '(' expr ')' block ['else' (block | ifstmt)]
///              | 'while' '(' expr ')' block
///              | 'do' ident '=' expr ',' expr [',' expr] block
///              | 'call' ident '(' [expr (',' expr)*] ')' ';'
///              | 'print' expr ';'   | 'read' lvalue ';'  | 'return' ';'
///   lvalue    := ident ['[' expr ']']
///   expr      := addexpr [relop addexpr]
///   addexpr   := mulexpr (('+'|'-') mulexpr)*
///   mulexpr   := unary (('*'|'/'|'%') unary)*
///   unary     := ('-'|'!') unary | intlit | lvalue | '(' expr ')'
/// \endcode
///
/// On a syntax error the parser reports a diagnostic and synchronizes at
/// the next statement or declaration boundary, so one run reports many
/// errors. A program with errors must not be consumed downstream.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FRONTEND_PARSER_H
#define IPCP_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Lexer.h"
#include "support/Diagnostics.h"

#include <optional>

namespace ipcp {

/// Parses one MiniFort source buffer into a Program.
class Parser {
public:
  Parser(std::string_view Source, DiagnosticsEngine &Diags);

  /// Parses the whole buffer. Check \p Diags for errors afterwards.
  Program parseProgram();

private:
  const Token &peek() const { return Tokens[Index]; }
  const Token &peekAhead() const;
  Token consume();
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool match(TokenKind Kind);
  /// Consumes a token of kind \p Kind or reports an error; returns whether
  /// the expected token was present.
  bool expect(TokenKind Kind, const char *Context);
  void syncToStmtBoundary();
  void syncToTopLevel();

  std::vector<DeclItem> parseDeclItems(bool AllowArrays);
  void parseGlobalDecl(Program &Prog);
  void parseProcDecl(Program &Prog);
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseDoLoop();
  StmtPtr parseCall();
  StmtPtr parseAssign();
  ExprPtr parseLValue();
  ExprPtr parseExpr();
  ExprPtr parseAddExpr();
  ExprPtr parseMulExpr();
  ExprPtr parseUnary();

  std::vector<Token> Tokens;
  size_t Index = 0;
  DiagnosticsEngine &Diags;
};

/// Convenience: lex+parse+check \p Source; returns nullopt (with
/// diagnostics) on any error. \p RequireMain demands a zero-argument
/// `main` procedure, which whole-program analysis needs.
std::optional<Program> parseAndCheck(std::string_view Source,
                                     DiagnosticsEngine &Diags,
                                     bool RequireMain = true);

} // namespace ipcp

#endif // IPCP_FRONTEND_PARSER_H
