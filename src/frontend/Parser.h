//===- frontend/Parser.h - MiniFort parser ----------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniFort. The grammar (see DESIGN.md):
///
/// \code
///   program   := topdecl*
///   topdecl   := 'global' item (',' item)* ';'
///              | 'proc' ident '(' [ident (',' ident)*] ')' block
///   item      := ident ['[' intlit ']']
///   block     := '{' stmt* '}'
///   stmt      := 'var' item (',' item)* ';'
///              | lvalue '=' expr ';'
///              | 'if' '(' expr ')' block ['else' (block | ifstmt)]
///              | 'while' '(' expr ')' block
///              | 'do' ident '=' expr ',' expr [',' expr] block
///              | 'call' ident '(' [expr (',' expr)*] ')' ';'
///              | 'print' expr ';'   | 'read' lvalue ';'  | 'return' ';'
///   lvalue    := ident ['[' expr ']']
///   expr      := addexpr [relop addexpr]
///   addexpr   := mulexpr (('+'|'-') mulexpr)*
///   mulexpr   := unary (('*'|'/'|'%') unary)*
///   unary     := ('-'|'!') unary | intlit | lvalue | '(' expr ')'
/// \endcode
///
/// On a syntax error the parser reports a diagnostic and synchronizes at
/// the next statement or declaration boundary, so one run reports many
/// errors. A program with errors must not be consumed downstream.
///
/// The parser is total on adversarial input: recursion depth is always
/// bounded (ResourceLimits::MaxParseDepth, finite even without a guard),
/// so `((((...` diagnoses "nesting too deep" instead of exhausting the
/// C++ stack, and an attached ResourceGuard additionally budgets token
/// and AST-node counts. A tripped budget aborts the parse with one
/// diagnostic and latches the guard so drivers can tell resource
/// degradation apart from a plain syntax error.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FRONTEND_PARSER_H
#define IPCP_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Lexer.h"
#include "support/Diagnostics.h"
#include "support/ResourceGuard.h"

#include <optional>

namespace ipcp {

/// Parses one MiniFort source buffer into a Program.
class Parser {
public:
  /// \p Guard, when non-null, supplies the depth/token/AST budgets and is
  /// latched when one trips; without a guard the default MaxParseDepth
  /// still bounds recursion.
  Parser(std::string_view Source, DiagnosticsEngine &Diags,
         ResourceGuard *Guard = nullptr);

  /// Parses the whole buffer. Check \p Diags for errors afterwards.
  Program parseProgram();

private:
  const Token &peek() const { return Tokens[Index]; }
  const Token &peekAhead() const;
  Token consume();
  bool check(TokenKind Kind) const { return peek().is(Kind); }
  bool match(TokenKind Kind);
  /// Consumes a token of kind \p Kind or reports an error; returns whether
  /// the expected token was present.
  bool expect(TokenKind Kind, const char *Context);
  void syncToStmtBoundary();
  void syncToTopLevel();

  /// Jumps the cursor to Eof: a tripped budget ends the whole parse.
  void abortParse() { Index = Tokens.size() - 1; }
  /// True (after reporting once and aborting) when the recursion budget
  /// is exhausted. Checked on entry to every recursive production.
  bool atDepthLimit();
  /// Charges one AST node against the guard's budget.
  void noteNode();
  /// Allocates an AST node, charging the budget.
  template <typename T, typename... ArgTs>
  std::unique_ptr<T> makeNode(ArgTs &&...Args) {
    noteNode();
    return std::make_unique<T>(std::forward<ArgTs>(Args)...);
  }
  /// RAII recursion-depth counter.
  struct DepthScope {
    Parser &P;
    explicit DepthScope(Parser &P) : P(P) { ++P.Depth; }
    ~DepthScope() { --P.Depth; }
  };

  std::vector<DeclItem> parseDeclItems(bool AllowArrays);
  void parseGlobalDecl(Program &Prog);
  void parseProcDecl(Program &Prog);
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseDoLoop();
  StmtPtr parseCall();
  StmtPtr parseAssign();
  ExprPtr parseLValue();
  ExprPtr parseExpr();
  ExprPtr parseAddExpr();
  ExprPtr parseMulExpr();
  ExprPtr parseUnary();

  std::vector<Token> Tokens;
  size_t Index = 0;
  DiagnosticsEngine &Diags;
  ResourceGuard *Guard = nullptr;
  unsigned Depth = 0;
  unsigned MaxDepth = ResourceLimits().MaxParseDepth;
  uint64_t NodeCount = 0;
  bool BudgetReported = false;
};

/// Convenience: lex+parse+check \p Source; returns nullopt (with
/// diagnostics) on any error. \p RequireMain demands a zero-argument
/// `main` procedure, which whole-program analysis needs. \p Guard, when
/// non-null, bounds the frontend's work (see Parser).
std::optional<Program> parseAndCheck(std::string_view Source,
                                     DiagnosticsEngine &Diags,
                                     bool RequireMain = true,
                                     ResourceGuard *Guard = nullptr);

} // namespace ipcp

#endif // IPCP_FRONTEND_PARSER_H
