//===- frontend/Sema.cpp --------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include "support/Casting.h"

#include <unordered_set>

using namespace ipcp;

bool Sema::check(const Program &Prog) {
  GlobalNames.clear();

  for (const GlobalDecl &G : Prog.Globals) {
    for (const DeclItem &Item : G.Items) {
      Symbol Sym = Item.isArray() ? Symbol::Array : Symbol::Scalar;
      if (!GlobalNames.emplace(Item.Name, Sym).second)
        Diags.error(Item.Loc, "redefinition of global '" + Item.Name + "'");
    }
  }

  std::unordered_set<std::string> ProcNames;
  for (const ProcDecl &P : Prog.Procs) {
    if (!ProcNames.insert(P.Name).second)
      Diags.error(P.Loc, "redefinition of procedure '" + P.Name + "'");
    if (GlobalNames.count(P.Name))
      Diags.error(P.Loc, "procedure '" + P.Name +
                             "' has the same name as a global variable");
  }

  for (const ProcDecl &P : Prog.Procs)
    checkProc(Prog, P);

  if (RequireMain) {
    const ProcDecl *Main = Prog.findProc("main");
    if (!Main)
      Diags.error(SourceLoc(), "program has no 'main' procedure");
    else if (!Main->Params.empty())
      Diags.error(Main->Loc, "'main' must take no parameters");
  }

  return !Diags.hasErrors();
}

void Sema::declare(ProcScope &Scope, const DeclItem &Item, const char *What) {
  Symbol Sym = Item.isArray() ? Symbol::Array : Symbol::Scalar;
  if (!Scope.Names.emplace(Item.Name, Sym).second)
    Diags.error(Item.Loc, std::string("redefinition of ") + What + " '" +
                              Item.Name + "' in procedure '" +
                              Scope.Proc->Name + "'");
}

std::optional<Sema::Symbol> Sema::lookup(const ProcScope &Scope,
                                         const std::string &Name) const {
  auto Local = Scope.Names.find(Name);
  if (Local != Scope.Names.end())
    return Local->second;
  auto Global = GlobalNames.find(Name);
  if (Global != GlobalNames.end())
    return Global->second;
  return std::nullopt;
}

void Sema::checkProc(const Program &Prog, const ProcDecl &Proc) {
  ProcScope Scope;
  Scope.Proc = &Proc;
  for (const DeclItem &Param : Proc.Params)
    declare(Scope, Param, "parameter");

  // Fortran-style flat procedure scope: hoist every `var` declaration in
  // the body (including inside nested blocks) before checking uses.
  // A use before the textual declaration reads an uninitialized (zero)
  // value, exactly like Fortran; lowering gives locals an explicit zero
  // initialization so execution and analysis agree.
  std::vector<const Stmt *> Stack{Proc.Body.get()};
  while (!Stack.empty()) {
    const Stmt *S = Stack.back();
    Stack.pop_back();
    if (const auto *Block = dyn_cast<BlockStmt>(S)) {
      for (const StmtPtr &Child : Block->getStmts())
        Stack.push_back(Child.get());
    } else if (const auto *If = dyn_cast<IfStmt>(S)) {
      Stack.push_back(If->getThen());
      if (If->getElse())
        Stack.push_back(If->getElse());
    } else if (const auto *While = dyn_cast<WhileStmt>(S)) {
      Stack.push_back(While->getBody());
    } else if (const auto *Do = dyn_cast<DoLoopStmt>(S)) {
      Stack.push_back(Do->getBody());
    } else if (const auto *Decl = dyn_cast<VarDeclStmt>(S)) {
      for (const DeclItem &Item : Decl->getItems())
        declare(Scope, Item, "local variable");
    }
  }

  checkStmt(Prog, Scope, Proc.Body.get(), /*LoopIndVar=*/nullptr);
}

void Sema::checkStmt(const Program &Prog, ProcScope &Scope, const Stmt *S,
                     const std::string *LoopIndVar) {
  switch (S->getKind()) {
  case Stmt::Kind::VarDecl:
    return; // handled during hoisting
  case Stmt::Kind::Assign: {
    const auto *Assign = cast<AssignStmt>(S);
    checkLValue(Scope, Assign->getTarget());
    checkExpr(Scope, Assign->getValue());
    if (LoopIndVar) {
      if (const auto *Ref = dyn_cast<VarRefExpr>(Assign->getTarget()))
        if (Ref->getName() == *LoopIndVar)
          Diags.warning(S->getLoc(), "assignment to do-loop induction "
                                     "variable '" +
                                         *LoopIndVar + "' inside the loop");
    }
    return;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    checkExpr(Scope, If->getCond());
    checkStmt(Prog, Scope, If->getThen(), LoopIndVar);
    if (If->getElse())
      checkStmt(Prog, Scope, If->getElse(), LoopIndVar);
    return;
  }
  case Stmt::Kind::While: {
    const auto *While = cast<WhileStmt>(S);
    checkExpr(Scope, While->getCond());
    checkStmt(Prog, Scope, While->getBody(), LoopIndVar);
    return;
  }
  case Stmt::Kind::DoLoop: {
    const auto *Do = cast<DoLoopStmt>(S);
    auto Sym = lookup(Scope, Do->getIndVar());
    if (!Sym)
      Diags.error(S->getLoc(), "use of undeclared variable '" +
                                   Do->getIndVar() + "'");
    else if (*Sym == Symbol::Array)
      Diags.error(S->getLoc(), "do-loop induction variable '" +
                                   Do->getIndVar() + "' is an array");
    checkExpr(Scope, Do->getLo());
    checkExpr(Scope, Do->getHi());
    if (Do->getStep())
      checkExpr(Scope, Do->getStep());
    const std::string IndVar = Do->getIndVar();
    checkStmt(Prog, Scope, Do->getBody(), &IndVar);
    return;
  }
  case Stmt::Kind::Call: {
    const auto *Call = cast<CallStmt>(S);
    const ProcDecl *Callee = Prog.findProc(Call->getCallee());
    if (!Callee) {
      Diags.error(S->getLoc(),
                  "call to undefined procedure '" + Call->getCallee() + "'");
    } else if (Callee->Params.size() != Call->getArgs().size()) {
      Diags.error(S->getLoc(),
                  "procedure '" + Call->getCallee() + "' expects " +
                      std::to_string(Callee->Params.size()) +
                      " argument(s), got " +
                      std::to_string(Call->getArgs().size()));
    }
    for (const ExprPtr &Arg : Call->getArgs()) {
      // A bare array name is not a valid argument (arrays are shared via
      // globals); a subscripted element is fine.
      if (const auto *Ref = dyn_cast<VarRefExpr>(Arg.get())) {
        auto Sym = lookup(Scope, Ref->getName());
        if (Sym && *Sym == Symbol::Array) {
          Diags.error(Arg->getLoc(), "array '" + Ref->getName() +
                                         "' cannot be passed as an argument");
          continue;
        }
      }
      checkExpr(Scope, Arg.get());
    }
    return;
  }
  case Stmt::Kind::Print:
    checkExpr(Scope, cast<PrintStmt>(S)->getValue());
    return;
  case Stmt::Kind::Read:
    checkLValue(Scope, cast<ReadStmt>(S)->getTarget());
    return;
  case Stmt::Kind::Return:
    return;
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(S)->getStmts())
      checkStmt(Prog, Scope, Child.get(), LoopIndVar);
    return;
  }
}

void Sema::checkLValue(const ProcScope &Scope, const Expr *E) {
  if (isa<VarRefExpr, ArrayRefExpr>(E)) {
    checkExpr(Scope, E);
    return;
  }
  Diags.error(E->getLoc(), "assignment target must be a variable or array "
                           "element");
}

void Sema::checkExpr(const ProcScope &Scope, const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    return;
  case Expr::Kind::VarRef: {
    const auto *Ref = cast<VarRefExpr>(E);
    auto Sym = lookup(Scope, Ref->getName());
    if (!Sym)
      Diags.error(E->getLoc(),
                  "use of undeclared variable '" + Ref->getName() + "'");
    else if (*Sym == Symbol::Array)
      Diags.error(E->getLoc(),
                  "array '" + Ref->getName() + "' used without a subscript");
    return;
  }
  case Expr::Kind::ArrayRef: {
    const auto *Ref = cast<ArrayRefExpr>(E);
    auto Sym = lookup(Scope, Ref->getName());
    if (!Sym)
      Diags.error(E->getLoc(),
                  "use of undeclared array '" + Ref->getName() + "'");
    else if (*Sym == Symbol::Scalar)
      Diags.error(E->getLoc(),
                  "scalar '" + Ref->getName() + "' subscripted like an array");
    checkExpr(Scope, Ref->getIndex());
    return;
  }
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    checkExpr(Scope, Bin->getLHS());
    checkExpr(Scope, Bin->getRHS());
    return;
  }
  case Expr::Kind::Unary:
    checkExpr(Scope, cast<UnaryExpr>(E)->getOperand());
    return;
  }
}
