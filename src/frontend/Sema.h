//===- frontend/Sema.h - MiniFort semantic checks ---------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for MiniFort programs. Checks performed:
///
///  - no duplicate global, procedure, parameter, or local names
///    (declarations are procedure-scoped, as in Fortran — nested blocks do
///    not open new scopes);
///  - locals must not shadow parameters; either may shadow a global;
///  - every referenced variable is declared; every called procedure exists;
///  - call argument count matches the callee's parameter count;
///  - arrays are always subscripted and scalars never are;
///  - arrays are not passed as bare call arguments (globals are the
///    sharing mechanism, matching the analysis' array-opacity assumption);
///  - optionally, a zero-argument `main` procedure exists (whole-program
///    analysis needs an entry point);
///  - warning when a do-loop induction variable is assigned in the loop
///    body (nonconforming Fortran; the analysis stays sound regardless).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FRONTEND_SEMA_H
#define IPCP_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "support/Diagnostics.h"

#include <string>
#include <unordered_map>

namespace ipcp {

/// Runs the MiniFort semantic checks and reports through a
/// DiagnosticsEngine.
class Sema {
public:
  explicit Sema(DiagnosticsEngine &Diags) : Diags(Diags) {}

  /// Demand a `main()` procedure (default true).
  void setRequireMain(bool Require) { RequireMain = Require; }

  /// Checks \p Prog; returns true when no errors were found.
  bool check(const Program &Prog);

private:
  /// What a name refers to inside a procedure.
  enum class Symbol { Scalar, Array };

  struct ProcScope {
    std::unordered_map<std::string, Symbol> Names;
    const ProcDecl *Proc = nullptr;
  };

  void checkProc(const Program &Prog, const ProcDecl &Proc);
  void declare(ProcScope &Scope, const DeclItem &Item, const char *What);
  void checkStmt(const Program &Prog, ProcScope &Scope, const Stmt *S,
                 const std::string *LoopIndVar);
  void checkExpr(const ProcScope &Scope, const Expr *E);
  void checkLValue(const ProcScope &Scope, const Expr *E);
  /// Looks up \p Name in the procedure scope, then globals; nullopt when
  /// undeclared.
  std::optional<Symbol> lookup(const ProcScope &Scope,
                               const std::string &Name) const;

  DiagnosticsEngine &Diags;
  bool RequireMain = true;
  std::unordered_map<std::string, Symbol> GlobalNames;
};

} // namespace ipcp

#endif // IPCP_FRONTEND_SEMA_H
