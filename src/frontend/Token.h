//===- frontend/Token.h - MiniFort tokens -----------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token record produced by the MiniFort lexer.
///
/// MiniFort is the small imperative language this reproduction analyzes in
/// place of FORTRAN 77 (see DESIGN.md). It has Fortran semantics — integer
/// scalars, opaque arrays, by-reference parameters, global (COMMON-like)
/// variables, DO loops, subroutine calls — with a C-like surface syntax.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_FRONTEND_TOKEN_H
#define IPCP_FRONTEND_TOKEN_H

#include "support/ConstantMath.h"
#include "support/SourceLoc.h"

#include <string>

namespace ipcp {

/// Every lexical token kind in MiniFort.
enum class TokenKind {
  // Sentinels.
  Eof,
  Error,

  // Literals and identifiers.
  Identifier,
  IntLiteral,

  // Keywords.
  KwGlobal,
  KwProc,
  KwVar,
  KwArray,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwCall,
  KwPrint,
  KwRead,
  KwReturn,

  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,

  // Operators.
  Assign,  // =
  Plus,    // +
  Minus,   // -
  Star,    // *
  Slash,   // /
  Percent, // %
  EqEq,    // ==
  NotEq,   // !=
  Less,    // <
  LessEq,  // <=
  Greater, // >
  GreaterEq, // >=
  Not,       // !
};

/// Returns a stable human-readable name for \p Kind ("identifier", "'=='").
const char *tokenKindName(TokenKind Kind);

/// One lexed token. \c Text is the source spelling; \c IntValue is set only
/// for IntLiteral tokens.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  ConstantValue IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace ipcp

#endif // IPCP_FRONTEND_TOKEN_H
