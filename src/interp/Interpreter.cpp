//===- interp/Interpreter.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "support/Casting.h"

#include <cassert>
#include <map>

using namespace ipcp;

namespace {

/// Mutable storage for one scalar.
using Cell = ConstantValue;

/// One activation record.
struct Frame {
  /// Where each scalar formal/local lives. Formals point into the caller
  /// (by-reference) or into TempCells (expression actuals).
  std::unordered_map<const Variable *, Cell *> ScalarCells;
  /// Backing store for locals.
  std::vector<std::unique_ptr<Cell>> OwnedCells;
  /// Hidden temporaries for expression actuals, reused across loop
  /// iterations (keyed by call instruction and actual index).
  std::map<std::pair<const Instruction *, unsigned>, Cell> TempCells;
  /// Local arrays.
  std::unordered_map<const Variable *, std::vector<Cell>> Arrays;
  /// Values produced by instructions in this activation.
  std::unordered_map<const Instruction *, ConstantValue> Values;
};

/// Whole-execution state.
class Machine {
public:
  Machine(const Module &M, const ExecutionOptions &Opts, ExecutionResult &R)
      : M(M), Opts(Opts), R(R) {
    for (const Variable *G : M.globals()) {
      if (G->isScalar())
        GlobalCells[G] = 0;
      else
        GlobalArrays[G] = std::vector<Cell>(G->getArraySize(), 0);
    }
  }

  void run() {
    const Procedure *Main = M.findProcedure("main");
    assert(Main && "interpret requires a main procedure");
    callProcedure(*Main, /*ArgCells=*/{}, /*Depth=*/0);
  }

private:
  bool trap(const std::string &Message) {
    if (R.TheStatus == ExecutionResult::Status::Ok) {
      R.TheStatus = ExecutionResult::Status::Trap;
      R.TrapMessage = Message;
    }
    return false;
  }

  bool outOfFuel(const std::string &Message) {
    if (R.TheStatus == ExecutionResult::Status::Ok) {
      R.TheStatus = ExecutionResult::Status::OutOfFuel;
      R.TrapMessage = Message;
    }
    return false;
  }

  ConstantValue nextInput() {
    if (InputCursor < Opts.Inputs.size())
      return Opts.Inputs[InputCursor++];
    // xorshift64* stream; keep the magnitude small so arithmetic on read
    // values rarely overflows.
    InputState ^= InputState >> 12;
    InputState ^= InputState << 25;
    InputState ^= InputState >> 27;
    return static_cast<ConstantValue>((InputState * 2685821657736338717ULL) %
                                      2048);
  }

  Cell *scalarCell(Frame &F, const Variable *Var) {
    if (Var->isGlobal()) {
      auto It = GlobalCells.find(Var);
      assert(It != GlobalCells.end() && "unknown global");
      return &It->second;
    }
    auto It = F.ScalarCells.find(Var);
    assert(It != F.ScalarCells.end() && "unbound scalar variable");
    return It->second;
  }

  std::vector<Cell> *arrayStorage(Frame &F, const Variable *Arr) {
    if (Arr->isGlobal()) {
      auto It = GlobalArrays.find(Arr);
      assert(It != GlobalArrays.end() && "unknown global array");
      return &It->second;
    }
    auto It = F.Arrays.find(Arr);
    assert(It != F.Arrays.end() && "unbound local array");
    return &It->second;
  }

  bool value(Frame &F, const Value *V, ConstantValue &Out) {
    if (const auto *C = dyn_cast<ConstantInt>(V)) {
      Out = C->getValue();
      return true;
    }
    const auto *Inst = dyn_cast<Instruction>(V);
    assert(Inst && "pre-SSA operands are constants or instructions");
    auto It = F.Values.find(Inst);
    assert(It != F.Values.end() && "use of unevaluated instruction");
    Out = It->second;
    return true;
  }

  /// Executes \p P with formal cells already bound into \p F by the
  /// caller. Returns false when execution must stop (trap/fuel).
  bool execute(const Procedure &P, Frame &F, unsigned Depth);

  bool callProcedure(const Procedure &P,
                     const std::vector<Cell *> &ArgCells, unsigned Depth);

  const Module &M;
  const ExecutionOptions &Opts;
  ExecutionResult &R;
  std::unordered_map<const Variable *, Cell> GlobalCells;
  std::unordered_map<const Variable *, std::vector<Cell>> GlobalArrays;
  size_t InputCursor = 0;
  uint64_t InputState = 0x9E3779B97F4A7C15ULL;
  bool Seeded = false;
};

} // namespace

bool Machine::callProcedure(const Procedure &P,
                            const std::vector<Cell *> &ArgCells,
                            unsigned Depth) {
  if (!Seeded) {
    InputState ^= Opts.InputSeed * 0x2545F4914F6CDD1DULL + 1;
    Seeded = true;
  }
  if (Depth > Opts.MaxCallDepth)
    return outOfFuel("call depth limit exceeded in '" + P.getName() + "'");
  assert(ArgCells.size() == P.getNumFormals() && "arity mismatch at call");

  Frame F;
  for (unsigned I = 0, E = P.getNumFormals(); I != E; ++I)
    F.ScalarCells[P.formals()[I]] = ArgCells[I];
  for (const Variable *L : P.locals()) {
    if (L->isScalar()) {
      F.OwnedCells.push_back(std::make_unique<Cell>(0));
      F.ScalarCells[L] = F.OwnedCells.back().get();
    } else {
      F.Arrays[L] = std::vector<Cell>(L->getArraySize(), 0);
    }
  }

  if (Opts.RecordEntrySnapshots) {
    EntrySnapshot Snap;
    Snap.Proc = &P;
    for (const Variable *Formal : P.formals())
      Snap.Values[Formal] = *F.ScalarCells[Formal];
    for (const auto &[G, Val] : GlobalCells)
      Snap.Values[G] = Val;
    R.Entries.push_back(std::move(Snap));
  }

  return execute(P, F, Depth);
}

bool Machine::execute(const Procedure &P, Frame &F, unsigned Depth) {
  const BasicBlock *BB = P.getEntryBlock();
  assert(BB && "procedure with no blocks");

  while (BB) {
    const BasicBlock *Next = nullptr;
    for (const std::unique_ptr<Instruction> &InstPtr : BB->instructions()) {
      const Instruction *Inst = InstPtr.get();
      if (++R.Steps > Opts.MaxSteps)
        return outOfFuel("step budget exhausted in '" + P.getName() + "'");

      switch (Inst->getKind()) {
      case ValueKind::Binary: {
        const auto *Bin = cast<BinaryInst>(Inst);
        ConstantValue L, Rv;
        value(F, Bin->getLHS(), L);
        value(F, Bin->getRHS(), Rv);
        auto Folded = foldBinary(Bin->getOp(), L, Rv);
        if (!Folded)
          return trap(std::string("arithmetic fault on '") +
                      binaryOpSpelling(Bin->getOp()) + "' at " +
                      Inst->getLoc().str() + " in '" + P.getName() + "'");
        F.Values[Inst] = *Folded;
        break;
      }
      case ValueKind::Unary: {
        const auto *Un = cast<UnaryInst>(Inst);
        ConstantValue V;
        value(F, Un->getValueOperand(), V);
        auto Folded = foldUnary(Un->getOp(), V);
        if (!Folded)
          return trap("arithmetic fault on unary operator at " +
                      Inst->getLoc().str() + " in '" + P.getName() + "'");
        F.Values[Inst] = *Folded;
        break;
      }
      case ValueKind::Load:
        F.Values[Inst] =
            *scalarCell(F, cast<LoadInst>(Inst)->getVariable());
        break;
      case ValueKind::Store: {
        const auto *Store = cast<StoreInst>(Inst);
        ConstantValue V;
        value(F, Store->getValueOperand(), V);
        *scalarCell(F, Store->getVariable()) = V;
        break;
      }
      case ValueKind::ArrayLoad: {
        const auto *ALoad = cast<ArrayLoadInst>(Inst);
        ConstantValue Index;
        value(F, ALoad->getIndex(), Index);
        std::vector<Cell> *Storage = arrayStorage(F, ALoad->getArray());
        if (Index < 0 || Index >= static_cast<ConstantValue>(Storage->size()))
          return trap("array index " + std::to_string(Index) +
                      " out of bounds for '" + ALoad->getArray()->getName() +
                      "' at " + Inst->getLoc().str());
        F.Values[Inst] = (*Storage)[Index];
        break;
      }
      case ValueKind::ArrayStore: {
        const auto *AStore = cast<ArrayStoreInst>(Inst);
        ConstantValue Index, V;
        value(F, AStore->getIndex(), Index);
        value(F, AStore->getValueOperand(), V);
        std::vector<Cell> *Storage = arrayStorage(F, AStore->getArray());
        if (Index < 0 || Index >= static_cast<ConstantValue>(Storage->size()))
          return trap("array index " + std::to_string(Index) +
                      " out of bounds for '" + AStore->getArray()->getName() +
                      "' at " + Inst->getLoc().str());
        (*Storage)[Index] = V;
        break;
      }
      case ValueKind::Read:
        F.Values[Inst] = nextInput();
        break;
      case ValueKind::Print: {
        ConstantValue V;
        value(F, cast<PrintInst>(Inst)->getValueOperand(), V);
        R.Output.push_back(V);
        break;
      }
      case ValueKind::Call: {
        const auto *Call = cast<CallInst>(Inst);
        std::vector<Cell *> ArgCells;
        for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
          const CallActual &A = Call->getActual(I);
          if (A.ByRefLoc) {
            ArgCells.push_back(scalarCell(F, A.ByRefLoc));
          } else {
            // Expression actual: hidden temporary (Fortran-style);
            // callee updates are discarded.
            ConstantValue V;
            value(F, Call->getActualValue(I), V);
            Cell &Temp = F.TempCells[{Call, I}];
            Temp = V;
            ArgCells.push_back(&Temp);
          }
        }
        if (!callProcedure(*Call->getCallee(), ArgCells, Depth + 1))
          return false;
        break;
      }
      case ValueKind::Branch:
        Next = cast<BranchInst>(Inst)->getTarget();
        break;
      case ValueKind::CondBranch: {
        const auto *CBr = cast<CondBranchInst>(Inst);
        ConstantValue Cond;
        value(F, CBr->getCond(), Cond);
        Next = Cond != 0 ? CBr->getTrueTarget() : CBr->getFalseTarget();
        break;
      }
      case ValueKind::Ret:
        return true;
      case ValueKind::Phi:
      case ValueKind::CallOut:
        assert(false && "interpreter requires pre-SSA form");
        return trap("internal: SSA instruction reached the interpreter");
      default:
        assert(false && "unknown instruction kind");
        return trap("internal: unknown instruction kind");
      }
    }
    BB = Next;
    assert(BB && "fell off a block without a terminator");
  }
  return true;
}

ExecutionResult ipcp::interpret(const Module &M,
                                const ExecutionOptions &Opts) {
  ExecutionResult Result;
  Machine VM(M, Opts, Result);
  VM.run();
  return Result;
}
