//===- interp/Interpreter.h - MiniFort reference interpreter ----*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a pre-SSA module directly, with exact MiniFort semantics:
/// zero-initialized globals/locals/arrays, by-reference parameter cells,
/// checked 64-bit arithmetic (traps on overflow and division by zero),
/// and array bounds checking.
///
/// Besides producing the program's `print` output, the interpreter records
/// a snapshot of every procedure entry: the values of the formals and of
/// every scalar global at the moment of the call. These snapshots are the
/// ground truth that the soundness oracle checks CONSTANTS(p) against —
/// every (name, value) pair the analysis reports must hold on every
/// recorded entry (paper Section 2: "a pair (x, v) in CONSTANTS(p)
/// indicates that x always has value v when p is invoked").
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_INTERP_INTERPRETER_H
#define IPCP_INTERP_INTERPRETER_H

#include "ir/Module.h"
#include "support/ConstantMath.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace ipcp {

/// Knobs for one execution.
struct ExecutionOptions {
  /// Instruction budget; exceeded -> Status::OutOfFuel.
  uint64_t MaxSteps = 10'000'000;

  /// C++ recursion guard for deep call chains.
  unsigned MaxCallDepth = 2'000;

  /// Values returned by `read`, in order. When exhausted (or empty), a
  /// deterministic xorshift stream seeded with InputSeed supplies small
  /// pseudo-random values.
  std::vector<ConstantValue> Inputs;
  uint64_t InputSeed = 1;

  /// Record procedure-entry snapshots (disable for pure benchmarking).
  bool RecordEntrySnapshots = true;
};

/// Values of the formals and scalar globals at one dynamic procedure entry.
struct EntrySnapshot {
  const Procedure *Proc = nullptr;
  /// Value per scalar variable; includes every formal of Proc and every
  /// scalar global of the module.
  std::unordered_map<const Variable *, ConstantValue> Values;
};

/// Outcome of one execution.
struct ExecutionResult {
  enum class Status {
    Ok,        ///< main returned normally
    Trap,      ///< runtime error (overflow, div by zero, bounds)
    OutOfFuel, ///< step or depth budget exhausted
  };

  Status TheStatus = Status::Ok;
  std::string TrapMessage;
  uint64_t Steps = 0;

  /// Chronological `print` output.
  std::vector<ConstantValue> Output;

  /// Chronological procedure-entry snapshots (including main's).
  std::vector<EntrySnapshot> Entries;

  bool ok() const { return TheStatus == Status::Ok; }
};

/// Runs `main`. \p M must be in pre-SSA form and verify cleanly.
ExecutionResult interpret(const Module &M, const ExecutionOptions &Opts = {});

} // namespace ipcp

#endif // IPCP_INTERP_INTERPRETER_H
