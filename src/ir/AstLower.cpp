//===- ir/AstLower.cpp ----------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/AstLower.h"

#include "support/Casting.h"

#include <unordered_map>

using namespace ipcp;

namespace {

/// Lowers one program; one instance per lowerProgram call.
class LoweringContext {
public:
  std::unique_ptr<Module> run(const Program &Prog);

private:
  // Block plumbing -------------------------------------------------------

  /// Adds a CFG edge and maintains the predecessor list.
  void link(BasicBlock *From, BasicBlock *To) { To->addPredecessor(From); }

  template <typename InstT, typename... ArgTs> InstT *emit(ArgTs &&...Args) {
    auto Inst = std::make_unique<InstT>(M->nextInstId(),
                                        std::forward<ArgTs>(Args)...);
    InstT *Raw = Inst.get();
    Cur->append(std::move(Inst));
    return Raw;
  }

  void branchTo(SourceLoc Loc, BasicBlock *Target) {
    emit<BranchInst>(Loc, Target);
    link(Cur, Target);
  }

  void condBranchTo(SourceLoc Loc, Value *Cond, BasicBlock *TrueBB,
                    BasicBlock *FalseBB) {
    assert(TrueBB != FalseBB && "lowering never emits degenerate branches");
    emit<CondBranchInst>(Loc, Cond, TrueBB, FalseBB);
    link(Cur, TrueBB);
    link(Cur, FalseBB);
  }

  // Name resolution ------------------------------------------------------

  Variable *resolve(const std::string &Name) {
    Variable *V = CurProc->findVariable(Name);
    if (!V)
      V = M->findGlobal(Name);
    assert(V && "Sema guarantees every name resolves");
    return V;
  }

  // Lowering -------------------------------------------------------------

  void declareProcVars(Procedure *P, const ProcDecl &Decl);
  void lowerProc(const ProcDecl &Decl);
  void lowerStmt(const Stmt *S);
  Value *lowerExpr(const Expr *E);
  void lowerStore(const Expr *Target, Value *Val, SourceLoc Loc);

  std::unique_ptr<Module> OwnedModule;
  Module *M = nullptr;
  Procedure *CurProc = nullptr;
  BasicBlock *Cur = nullptr;
  BasicBlock *Exit = nullptr;
  unsigned NameCounter = 0;

  std::string freshName(const char *Stem) {
    return std::string(Stem) + std::to_string(NameCounter++);
  }
};

} // namespace

void LoweringContext::declareProcVars(Procedure *P, const ProcDecl &Decl) {
  for (const DeclItem &Param : Decl.Params)
    P->addFormal(Param.Name);

  // Hoist every local declaration (Fortran-style flat procedure scope).
  std::vector<const Stmt *> Stack{Decl.Body.get()};
  while (!Stack.empty()) {
    const Stmt *S = Stack.back();
    Stack.pop_back();
    if (const auto *Block = dyn_cast<BlockStmt>(S)) {
      for (const StmtPtr &Child : Block->getStmts())
        Stack.push_back(Child.get());
    } else if (const auto *If = dyn_cast<IfStmt>(S)) {
      Stack.push_back(If->getThen());
      if (If->getElse())
        Stack.push_back(If->getElse());
    } else if (const auto *While = dyn_cast<WhileStmt>(S)) {
      Stack.push_back(While->getBody());
    } else if (const auto *Do = dyn_cast<DoLoopStmt>(S)) {
      Stack.push_back(Do->getBody());
    } else if (const auto *VarDecl = dyn_cast<VarDeclStmt>(S)) {
      for (const DeclItem &Item : VarDecl->getItems())
        P->addLocal(Item.Name, Item.ArraySize);
    }
  }
}

Value *LoweringContext::lowerExpr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::Kind::IntLiteral:
    return M->getConstant(cast<IntLiteralExpr>(E)->getValue());
  case Expr::Kind::VarRef: {
    Variable *Var = resolve(cast<VarRefExpr>(E)->getName());
    return emit<LoadInst>(E->getLoc(), Var);
  }
  case Expr::Kind::ArrayRef: {
    const auto *Ref = cast<ArrayRefExpr>(E);
    Value *Index = lowerExpr(Ref->getIndex());
    return emit<ArrayLoadInst>(E->getLoc(), resolve(Ref->getName()), Index);
  }
  case Expr::Kind::Binary: {
    const auto *Bin = cast<BinaryExpr>(E);
    Value *LHS = lowerExpr(Bin->getLHS());
    Value *RHS = lowerExpr(Bin->getRHS());
    return emit<BinaryInst>(E->getLoc(), Bin->getOp(), LHS, RHS);
  }
  case Expr::Kind::Unary: {
    const auto *Un = cast<UnaryExpr>(E);
    Value *Operand = lowerExpr(Un->getOperand());
    return emit<UnaryInst>(E->getLoc(), Un->getOp(), Operand);
  }
  }
  return nullptr;
}

void LoweringContext::lowerStore(const Expr *Target, Value *Val,
                                 SourceLoc Loc) {
  if (const auto *Ref = dyn_cast<VarRefExpr>(Target)) {
    emit<StoreInst>(Loc, resolve(Ref->getName()), Val);
    return;
  }
  const auto *Ref = cast<ArrayRefExpr>(Target);
  Value *Index = lowerExpr(Ref->getIndex());
  emit<ArrayStoreInst>(Loc, resolve(Ref->getName()), Index, Val);
}

void LoweringContext::lowerStmt(const Stmt *S) {
  switch (S->getKind()) {
  case Stmt::Kind::VarDecl:
    return; // declarations were hoisted
  case Stmt::Kind::Assign: {
    const auto *Assign = cast<AssignStmt>(S);
    Value *Val = lowerExpr(Assign->getValue());
    lowerStore(Assign->getTarget(), Val, S->getLoc());
    return;
  }
  case Stmt::Kind::If: {
    const auto *If = cast<IfStmt>(S);
    Value *Cond = lowerExpr(If->getCond());
    BasicBlock *ThenBB = CurProc->createBlock(freshName("if.then."));
    BasicBlock *MergeBB = CurProc->createBlock(freshName("if.merge."));
    BasicBlock *ElseBB =
        If->getElse() ? CurProc->createBlock(freshName("if.else.")) : MergeBB;
    condBranchTo(S->getLoc(), Cond, ThenBB, ElseBB);

    Cur = ThenBB;
    lowerStmt(If->getThen());
    if (!Cur->hasTerminator())
      branchTo(S->getLoc(), MergeBB);

    if (If->getElse()) {
      Cur = ElseBB;
      lowerStmt(If->getElse());
      if (!Cur->hasTerminator())
        branchTo(S->getLoc(), MergeBB);
    }
    Cur = MergeBB;
    return;
  }
  case Stmt::Kind::While: {
    const auto *While = cast<WhileStmt>(S);
    BasicBlock *Header = CurProc->createBlock(freshName("while.header."));
    BasicBlock *Body = CurProc->createBlock(freshName("while.body."));
    BasicBlock *ExitBB = CurProc->createBlock(freshName("while.exit."));
    branchTo(S->getLoc(), Header);

    Cur = Header;
    Value *Cond = lowerExpr(While->getCond());
    condBranchTo(S->getLoc(), Cond, Body, ExitBB);

    Cur = Body;
    lowerStmt(While->getBody());
    if (!Cur->hasTerminator())
      branchTo(S->getLoc(), Header);

    Cur = ExitBB;
    return;
  }
  case Stmt::Kind::DoLoop: {
    const auto *Do = cast<DoLoopStmt>(S);
    Variable *IndVar = resolve(Do->getIndVar());

    // Fortran semantics: bounds and step are evaluated once, on entry.
    Value *Lo = lowerExpr(Do->getLo());
    Value *Hi = lowerExpr(Do->getHi());
    Value *Step =
        Do->getStep() ? lowerExpr(Do->getStep()) : M->getConstant(1);
    bool Descending = false;
    if (const auto *StepLit =
            dyn_cast_or_null<IntLiteralExpr>(Do->getStep()))
      Descending = StepLit->getValue() < 0;
    emit<StoreInst>(S->getLoc(), IndVar, Lo);

    BasicBlock *Header = CurProc->createBlock(freshName("do.header."));
    BasicBlock *Body = CurProc->createBlock(freshName("do.body."));
    BasicBlock *ExitBB = CurProc->createBlock(freshName("do.exit."));
    branchTo(S->getLoc(), Header);

    Cur = Header;
    Value *IV = emit<LoadInst>(S->getLoc(), IndVar);
    Value *Cond = emit<BinaryInst>(
        S->getLoc(), Descending ? BinaryOp::CmpGe : BinaryOp::CmpLe, IV, Hi);
    condBranchTo(S->getLoc(), Cond, Body, ExitBB);

    Cur = Body;
    lowerStmt(Do->getBody());
    if (!Cur->hasTerminator()) {
      Value *IV2 = emit<LoadInst>(S->getLoc(), IndVar);
      Value *Next = emit<BinaryInst>(S->getLoc(), BinaryOp::Add, IV2, Step);
      emit<StoreInst>(S->getLoc(), IndVar, Next);
      branchTo(S->getLoc(), Header);
    }

    Cur = ExitBB;
    return;
  }
  case Stmt::Kind::Call: {
    const auto *Call = cast<CallStmt>(S);
    Procedure *Callee = M->findProcedure(Call->getCallee());
    assert(Callee && "Sema guarantees the callee exists");
    std::vector<CallActual> Actuals;
    for (const ExprPtr &Arg : Call->getArgs()) {
      CallActual Actual;
      if (const auto *Lit = dyn_cast<IntLiteralExpr>(Arg.get())) {
        Actual.Val = M->getConstant(Lit->getValue());
        Actual.WasLiteral = true;
      } else if (const auto *Ref = dyn_cast<VarRefExpr>(Arg.get())) {
        Variable *Var = resolve(Ref->getName());
        assert(Var->isScalar() && "Sema rejects bare array arguments");
        Actual.Val = emit<LoadInst>(Arg->getLoc(), Var);
        Actual.ByRefLoc = Var; // Fortran by-reference binding
      } else {
        Actual.Val = lowerExpr(Arg.get()); // hidden temporary
      }
      Actuals.push_back(Actual);
    }
    emit<CallInst>(S->getLoc(), Callee, std::move(Actuals));
    return;
  }
  case Stmt::Kind::Print: {
    Value *Val = lowerExpr(cast<PrintStmt>(S)->getValue());
    emit<PrintInst>(S->getLoc(), Val);
    return;
  }
  case Stmt::Kind::Read: {
    Value *Val = emit<ReadInst>(S->getLoc());
    lowerStore(cast<ReadStmt>(S)->getTarget(), Val, S->getLoc());
    return;
  }
  case Stmt::Kind::Return: {
    branchTo(S->getLoc(), Exit);
    // Statements after the return are unreachable; park them in a block
    // that removeUnreachableBlocks deletes.
    Cur = CurProc->createBlock(freshName("dead."));
    return;
  }
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(S)->getStmts())
      lowerStmt(Child.get());
    return;
  }
}

void LoweringContext::lowerProc(const ProcDecl &Decl) {
  CurProc = M->findProcedure(Decl.Name);
  Cur = CurProc->createBlock("entry");
  Exit = CurProc->createBlock("exit");
  CurProc->setExitBlock(Exit);

  // Zero-initialize scalar locals (MiniFort semantics); arrays are
  // zero-filled by the runtime and opaque to the analysis.
  for (Variable *Local : CurProc->locals())
    if (Local->isScalar())
      emit<StoreInst>(Decl.Loc, Local, M->getConstant(0));

  lowerStmt(Decl.Body.get());
  if (!Cur->hasTerminator())
    branchTo(Decl.Loc, Exit);

  Cur = Exit;
  emit<RetInst>(Decl.Loc);

  CurProc->removeUnreachableBlocks();
}

std::unique_ptr<Module> LoweringContext::run(const Program &Prog) {
  OwnedModule = std::make_unique<Module>();
  M = OwnedModule.get();

  for (const GlobalDecl &G : Prog.Globals)
    for (const DeclItem &Item : G.Items)
      M->addGlobal(Item.Name, Item.ArraySize);

  // Create all procedures first so calls can be resolved in one pass.
  for (const ProcDecl &P : Prog.Procs)
    declareProcVars(M->createProcedure(P.Name), P);

  for (const ProcDecl &P : Prog.Procs)
    lowerProc(P);

  return std::move(OwnedModule);
}

std::unique_ptr<Module> ipcp::lowerProgram(const Program &Prog) {
  LoweringContext Ctx;
  return Ctx.run(Prog);
}
