//===- ir/AstLower.h - AST to IR lowering -----------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a semantically checked MiniFort Program into pre-SSA IR:
///
///  - every scalar variable reference becomes one LoadInst (the unit the
///    substitution metric counts) and every assignment one StoreInst;
///  - scalar locals are explicitly zero-initialized at procedure entry
///    (MiniFort semantics, keeping analysis and execution in agreement);
///  - each procedure gets a single entry block and a single exit block
///    holding the only Ret; `return` branches to the exit block;
///  - DO loops evaluate their bounds and step once, before the loop, with
///    the comparison direction chosen by the sign of a literal step;
///  - call actuals record by-reference bindings (plain scalar variables)
///    and syntactic-literal flags for the literal jump function;
///  - statements made unreachable by `return` are dropped.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_ASTLOWER_H
#define IPCP_IR_ASTLOWER_H

#include "frontend/Ast.h"
#include "ir/Module.h"

#include <memory>

namespace ipcp {

/// Lowers \p Prog (which must have passed Sema) into a fresh module.
std::unique_ptr<Module> lowerProgram(const Program &Prog);

} // namespace ipcp

#endif // IPCP_IR_ASTLOWER_H
