//===- ir/BasicBlock.cpp --------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include <algorithm>

using namespace ipcp;

Instruction *BasicBlock::append(std::unique_ptr<Instruction> Inst) {
  assert(!hasTerminator() && "appending past a terminator");
  Inst->setParent(this);
  Insts.push_back(std::move(Inst));
  return Insts.back().get();
}

Instruction *BasicBlock::insertAfter(Instruction *After,
                                     std::unique_ptr<Instruction> Inst) {
  auto It = std::find_if(
      Insts.begin(), Insts.end(),
      [&](const std::unique_ptr<Instruction> &P) { return P.get() == After; });
  assert(It != Insts.end() && "insertion point not in this block");
  Inst->setParent(this);
  Instruction *Raw = Inst.get();
  Insts.insert(std::next(It), std::move(Inst));
  return Raw;
}

Instruction *BasicBlock::insertAtTop(std::unique_ptr<Instruction> Inst,
                                     bool AfterPhis) {
  auto It = Insts.begin();
  if (AfterPhis)
    while (It != Insts.end() && isa<PhiInst>(It->get()))
      ++It;
  Inst->setParent(this);
  Instruction *Raw = Inst.get();
  Insts.insert(It, std::move(Inst));
  return Raw;
}

void BasicBlock::erase(Instruction *Inst) {
  auto It = std::find_if(
      Insts.begin(), Insts.end(),
      [&](const std::unique_ptr<Instruction> &P) { return P.get() == Inst; });
  assert(It != Insts.end() && "erasing instruction not in this block");
  Insts.erase(It);
}

std::unique_ptr<Instruction> BasicBlock::detach(Instruction *Inst) {
  auto It = std::find_if(
      Insts.begin(), Insts.end(),
      [&](const std::unique_ptr<Instruction> &P) { return P.get() == Inst; });
  assert(It != Insts.end() && "detaching instruction not in this block");
  std::unique_ptr<Instruction> Owned = std::move(*It);
  Insts.erase(It);
  Owned->setParent(nullptr);
  return Owned;
}

Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty())
    return nullptr;
  Instruction *Last = Insts.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  Instruction *Term = getTerminator();
  if (!Term)
    return Succs;
  if (auto *Br = dyn_cast<BranchInst>(Term)) {
    Succs.push_back(Br->getTarget());
  } else if (auto *CBr = dyn_cast<CondBranchInst>(Term)) {
    Succs.push_back(CBr->getTrueTarget());
    if (CBr->getFalseTarget() != CBr->getTrueTarget())
      Succs.push_back(CBr->getFalseTarget());
  }
  return Succs;
}

void BasicBlock::removePredecessor(BasicBlock *BB) {
  auto It = std::find(Preds.begin(), Preds.end(), BB);
  if (It != Preds.end())
    Preds.erase(It);
}
