//===- ir/BasicBlock.cpp --------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"
#include "ir/Procedure.h"

#include <algorithm>

using namespace ipcp;

void BasicBlock::invalidateStream() {
  if (Parent)
    Parent->invalidateInstStream();
}

Instruction *BasicBlock::append(std::unique_ptr<Instruction> Inst) {
  assert(!hasTerminator() && "appending past a terminator");
  Inst->setParent(this);
  Insts.push_back(std::move(Inst));
  invalidateStream();
  return Insts.back().get();
}

Instruction *BasicBlock::insertAfter(Instruction *After,
                                     std::unique_ptr<Instruction> Inst) {
  auto It = std::find_if(
      Insts.begin(), Insts.end(),
      [&](const std::unique_ptr<Instruction> &P) { return P.get() == After; });
  assert(It != Insts.end() && "insertion point not in this block");
  Inst->setParent(this);
  Instruction *Raw = Inst.get();
  Insts.insert(std::next(It), std::move(Inst));
  invalidateStream();
  return Raw;
}

Instruction *BasicBlock::insertAtTop(std::unique_ptr<Instruction> Inst,
                                     bool AfterPhis) {
  auto It = Insts.begin();
  if (AfterPhis)
    while (It != Insts.end() && isa<PhiInst>(It->get()))
      ++It;
  Inst->setParent(this);
  Instruction *Raw = Inst.get();
  Insts.insert(It, std::move(Inst));
  invalidateStream();
  return Raw;
}

void BasicBlock::erase(Instruction *Inst) {
  auto It = std::find_if(
      Insts.begin(), Insts.end(),
      [&](const std::unique_ptr<Instruction> &P) { return P.get() == Inst; });
  assert(It != Insts.end() && "erasing instruction not in this block");
  Insts.erase(It);
  invalidateStream();
}

std::unique_ptr<Instruction> BasicBlock::detach(Instruction *Inst) {
  auto It = std::find_if(
      Insts.begin(), Insts.end(),
      [&](const std::unique_ptr<Instruction> &P) { return P.get() == Inst; });
  assert(It != Insts.end() && "detaching instruction not in this block");
  std::unique_ptr<Instruction> Owned = std::move(*It);
  Insts.erase(It);
  Owned->setParent(nullptr);
  invalidateStream();
  return Owned;
}

Instruction *BasicBlock::getTerminator() const {
  if (Insts.empty())
    return nullptr;
  Instruction *Last = Insts.back().get();
  return Last->isTerminator() ? Last : nullptr;
}

std::vector<BasicBlock *> BasicBlock::successors() const {
  std::vector<BasicBlock *> Succs;
  for (unsigned I = 0, N = getNumSuccessors(); I != N; ++I)
    Succs.push_back(getSuccessor(I));
  return Succs;
}

unsigned BasicBlock::getNumSuccessors() const {
  Instruction *Term = getTerminator();
  if (!Term)
    return 0;
  if (isa<BranchInst>(Term))
    return 1;
  if (auto *CBr = dyn_cast<CondBranchInst>(Term))
    return CBr->getFalseTarget() == CBr->getTrueTarget() ? 1 : 2;
  return 0;
}

BasicBlock *BasicBlock::getSuccessor(unsigned I) const {
  Instruction *Term = getTerminator();
  assert(Term && "successor of a block without terminator");
  if (auto *Br = dyn_cast<BranchInst>(Term)) {
    assert(I == 0 && "successor index out of range");
    return Br->getTarget();
  }
  auto *CBr = cast<CondBranchInst>(Term);
  assert(I < getNumSuccessors() && "successor index out of range");
  return I == 0 ? CBr->getTrueTarget() : CBr->getFalseTarget();
}

void BasicBlock::removePredecessor(BasicBlock *BB) {
  auto It = std::find(Preds.begin(), Preds.end(), BB);
  if (It != Preds.end())
    Preds.erase(It);
}
