//===- ir/BasicBlock.h - CFG nodes ------------------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A BasicBlock owns an ordered list of instructions ending in a
/// terminator. Predecessor lists are maintained explicitly by the edge
/// utilities; successors derive from the terminator.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_BASICBLOCK_H
#define IPCP_IR_BASICBLOCK_H

#include "ir/Instructions.h"

#include <memory>
#include <string>
#include <vector>

namespace ipcp {

class Procedure;

/// One node of a procedure's control-flow graph.
class BasicBlock {
public:
  BasicBlock(unsigned Id, std::string Name, Procedure *Parent)
      : Id(Id), Name(std::move(Name)), Parent(Parent) {}

  unsigned getId() const { return Id; }
  const std::string &getName() const { return Name; }
  Procedure *getParent() const { return Parent; }

  /// Dense position in the parent's block list, assigned when the flat
  /// instruction stream is (re)built. Valid under the same conditions as
  /// Instruction::getLocalIdx().
  uint32_t getDensePos() const { return DensePos; }
  void setDensePos(uint32_t Pos) { DensePos = Pos; }

  /// Appends \p Inst; asserts nothing follows a terminator.
  Instruction *append(std::unique_ptr<Instruction> Inst);

  /// Inserts \p Inst immediately after existing instruction \p After.
  Instruction *insertAfter(Instruction *After,
                           std::unique_ptr<Instruction> Inst);

  /// Inserts \p Inst at the top of the block (before non-phis but after
  /// existing phis when \p AfterPhis is set).
  Instruction *insertAtTop(std::unique_ptr<Instruction> Inst,
                           bool AfterPhis = true);

  /// Removes and destroys \p Inst, which must belong to this block.
  void erase(Instruction *Inst);

  /// Removes \p Inst from this block without destroying it.
  std::unique_ptr<Instruction> detach(Instruction *Inst);

  const std::vector<std::unique_ptr<Instruction>> &instructions() const {
    return Insts;
  }

  bool empty() const { return Insts.empty(); }

  /// The terminator, or null while the block is still being built.
  Instruction *getTerminator() const;
  bool hasTerminator() const { return getTerminator() != nullptr; }

  /// Successor blocks (0, 1, or 2) read off the terminator.
  std::vector<BasicBlock *> successors() const;

  /// Non-allocating successor access for hot traversals. A CondBranch
  /// whose arms coincide reports one successor, matching successors().
  unsigned getNumSuccessors() const;
  BasicBlock *getSuccessor(unsigned I) const;

  const std::vector<BasicBlock *> &predecessors() const { return Preds; }
  void addPredecessor(BasicBlock *BB) { Preds.push_back(BB); }
  void removePredecessor(BasicBlock *BB);
  void clearPredecessors() { Preds.clear(); }

private:
  void invalidateStream();

  unsigned Id;
  uint32_t DensePos = ~uint32_t(0);
  std::string Name;
  Procedure *Parent;
  std::vector<std::unique_ptr<Instruction>> Insts;
  std::vector<BasicBlock *> Preds;
};

} // namespace ipcp

#endif // IPCP_IR_BASICBLOCK_H
