//===- ir/CloneUtil.cpp ---------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/CloneUtil.h"

using namespace ipcp;

void ipcp::patchClonedOperands(IRCloneMaps &Maps) {
  for (Instruction *Inst : Maps.Clones) {
    for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I) {
      Value *Op = Inst->getOperand(I);
      if (!Op || !Op->isInstruction())
        continue;
      if (Value *New = Maps.valueOrNull(Op)) {
        // Either a forward reference still pointing at the original
        // (rewritten here), or an ID-preserving clone resolved during the
        // first pass (New == Op; the store is a no-op).
        Inst->setOperand(I, New);
        continue;
      }
      // Fresh-ID clones sit outside the table; an original value must
      // have been mapped — anything else is a cloning bug.
      assert(cast<Instruction>(Op)->getId() >= Maps.Values.size() &&
             "cloned instruction still references an original value");
    }
  }
}

std::unique_ptr<Instruction>
ipcp::cloneInstructionWithMaps(const Instruction *Inst, Module &NewM,
                               IRCloneMaps &Maps) {
  auto MapValue = [&](Value *Old) -> Value * {
    if (auto *C = dyn_cast<ConstantInt>(Old))
      return NewM.getConstant(C->getValue());
    if (isa<UndefValue>(Old))
      return NewM.getUndef();
    // Forward references (defs later in block order) are resolved by
    // patchClonedOperands once every instruction has a clone.
    Value *New = Maps.valueOrNull(Old);
    return New ? New : Old;
  };

  uint64_t Id = Inst->getId();
  SourceLoc Loc = Inst->getLoc();
  switch (Inst->getKind()) {
  case ValueKind::Binary: {
    const auto *Bin = cast<BinaryInst>(Inst);
    return std::make_unique<BinaryInst>(Id, Loc, Bin->getOp(),
                                        MapValue(Bin->getLHS()),
                                        MapValue(Bin->getRHS()));
  }
  case ValueKind::Unary: {
    const auto *Un = cast<UnaryInst>(Inst);
    return std::make_unique<UnaryInst>(Id, Loc, Un->getOp(),
                                       MapValue(Un->getValueOperand()));
  }
  case ValueKind::Load: {
    const auto *Load = cast<LoadInst>(Inst);
    return std::make_unique<LoadInst>(Id, Loc, Maps.var(Load->getVariable()));
  }
  case ValueKind::Store: {
    const auto *Store = cast<StoreInst>(Inst);
    return std::make_unique<StoreInst>(Id, Loc, Maps.var(Store->getVariable()),
                                       MapValue(Store->getValueOperand()));
  }
  case ValueKind::ArrayLoad: {
    const auto *ALoad = cast<ArrayLoadInst>(Inst);
    return std::make_unique<ArrayLoadInst>(
        Id, Loc, Maps.var(ALoad->getArray()), MapValue(ALoad->getIndex()));
  }
  case ValueKind::ArrayStore: {
    const auto *AStore = cast<ArrayStoreInst>(Inst);
    return std::make_unique<ArrayStoreInst>(
        Id, Loc, Maps.var(AStore->getArray()), MapValue(AStore->getIndex()),
        MapValue(AStore->getValueOperand()));
  }
  case ValueKind::Read:
    return std::make_unique<ReadInst>(Id, Loc);
  case ValueKind::Print: {
    const auto *Print = cast<PrintInst>(Inst);
    return std::make_unique<PrintInst>(Id, Loc,
                                       MapValue(Print->getValueOperand()));
  }
  case ValueKind::Call: {
    const auto *Call = cast<CallInst>(Inst);
    std::vector<CallActual> Actuals;
    Actuals.reserve(Call->getNumActuals());
    for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
      CallActual A = Call->getActual(I);
      A.Val = MapValue(Call->getActualValue(I));
      A.ByRefLoc = Maps.var(A.ByRefLoc);
      Actuals.push_back(A);
    }
    auto It = Maps.Procs.find(Call->getCallee());
    assert(It != Maps.Procs.end() && "call to unmapped procedure");
    return std::make_unique<CallInst>(Id, Loc, It->second,
                                      std::move(Actuals));
  }
  case ValueKind::Branch: {
    const auto *Br = cast<BranchInst>(Inst);
    return std::make_unique<BranchInst>(Id, Loc, Maps.block(Br->getTarget()));
  }
  case ValueKind::CondBranch: {
    const auto *CBr = cast<CondBranchInst>(Inst);
    return std::make_unique<CondBranchInst>(
        Id, Loc, MapValue(CBr->getCond()), Maps.block(CBr->getTrueTarget()),
        Maps.block(CBr->getFalseTarget()));
  }
  case ValueKind::Ret:
    return std::make_unique<RetInst>(Id, Loc);
  case ValueKind::Phi:
  case ValueKind::CallOut:
    assert(false && "clone requires pre-SSA form");
    return nullptr;
  default:
    assert(false && "unknown instruction kind in clone");
    return nullptr;
  }
}
