//===- ir/CloneUtil.h - Reusable instruction cloning ------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mapping tables and per-instruction cloning used by Module::clone,
/// Module::cloneProcedure, and the inliner. Pre-SSA instructions only
/// (no phis, entry values, or call-outs).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_CLONEUTIL_H
#define IPCP_IR_CLONEUTIL_H

#include "ir/Module.h"

#include <cassert>
#include <memory>
#include <unordered_map>

namespace ipcp {

/// Identity maps for one cloning operation. Populate Vars/Procs/Blocks
/// before cloning instructions; Values fills as instructions are cloned
/// in def-before-use order.
struct IRCloneMaps {
  std::unordered_map<const Variable *, Variable *> Vars;
  std::unordered_map<const Procedure *, Procedure *> Procs;
  std::unordered_map<const BasicBlock *, BasicBlock *> Blocks;
  std::unordered_map<const Value *, Value *> Values;

  Variable *var(const Variable *Old) const {
    if (!Old)
      return nullptr;
    auto It = Vars.find(Old);
    assert(It != Vars.end() && "unmapped variable in clone");
    return It->second;
  }

  BasicBlock *block(const BasicBlock *Old) const {
    auto It = Blocks.find(Old);
    assert(It != Blocks.end() && "unmapped block in clone");
    return It->second;
  }
};

/// Clones \p Inst into \p NewM, mapping operands/variables/blocks through
/// \p Maps (constants are re-uniqued). Instruction-valued operands whose
/// clone does not exist yet are left pointing at the *original* value;
/// run patchClonedOperands over all clones afterwards. The clone keeps
/// the original's instruction ID; callers wanting fresh identity must
/// setId afterwards.
std::unique_ptr<Instruction>
cloneInstructionWithMaps(const Instruction *Inst, Module &NewM,
                         IRCloneMaps &Maps);

/// Second pass of a cloning operation: rewrites every instruction-valued
/// operand of the cloned instructions through Maps.Values. Every such
/// operand must have been cloned (asserts otherwise) — block order inside
/// the source no longer matters.
void patchClonedOperands(IRCloneMaps &Maps);

} // namespace ipcp

#endif // IPCP_IR_CLONEUTIL_H
