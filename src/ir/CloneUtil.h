//===- ir/CloneUtil.h - Reusable instruction cloning ------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mapping tables and per-instruction cloning used by Module::clone,
/// Module::cloneProcedure, and the inliner. Pre-SSA instructions only
/// (no phis, entry values, or call-outs).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_CLONEUTIL_H
#define IPCP_IR_CLONEUTIL_H

#include "ir/Module.h"

#include <cassert>
#include <memory>
#include <unordered_map>
#include <vector>

namespace ipcp {

/// Identity maps for one cloning operation. Variables and instructions
/// are keyed by their module-unique IDs into dense vectors sized from the
/// source module's ID bounds — cloning is the hottest path in the
/// analysis pipeline (every request clones the program onto a scratch
/// module) and pointer-keyed hash maps dominated its profile. Procedures
/// and blocks are few; they stay in small hash maps.
///
/// Populate vars/procs/blocks before cloning instructions; values fill as
/// instructions are cloned in def-before-use order.
struct IRCloneMaps {
  /// Sizes the dense tables from \p Src's ID counters. Every key passed
  /// to mapVar/mapValue must be owned by \p Src (its ID is below the
  /// bound at construction time).
  explicit IRCloneMaps(const Module &Src)
      : Vars(Src.varIdBound(), nullptr), Values(Src.instIdBound(), nullptr) {}

  std::vector<Variable *> Vars;       ///< by source Variable::getId()
  std::vector<Value *> Values;        ///< by source Instruction::getId()
  std::vector<Instruction *> Clones;  ///< every mapped clone, in order
  std::unordered_map<const Procedure *, Procedure *> Procs;
  std::unordered_map<const BasicBlock *, BasicBlock *> Blocks;

  void mapVar(const Variable *Old, Variable *New) {
    assert(Old->getId() < Vars.size() && "variable outside the source module");
    Vars[Old->getId()] = New;
  }

  void mapValue(const Instruction *Old, Instruction *New) {
    assert(Old->getId() < Values.size() &&
           "instruction outside the source module");
    Values[Old->getId()] = New;
    Clones.push_back(New);
  }

  Variable *var(const Variable *Old) const {
    if (!Old)
      return nullptr;
    assert(Old->getId() < Vars.size() && Vars[Old->getId()] &&
           "unmapped variable in clone");
    return Vars[Old->getId()];
  }

  BasicBlock *block(const BasicBlock *Old) const {
    auto It = Blocks.find(Old);
    assert(It != Blocks.end() && "unmapped block in clone");
    return It->second;
  }

  /// The clone of \p Old, or null when \p Old is not a mapped source
  /// instruction (fresh-ID clones land outside the table by design).
  Value *valueOrNull(const Value *Old) const {
    const auto *Inst = dyn_cast<Instruction>(Old);
    if (!Inst || Inst->getId() >= Values.size())
      return nullptr;
    return Values[Inst->getId()];
  }
};

/// Clones \p Inst into \p NewM, mapping operands/variables/blocks through
/// \p Maps (constants are re-uniqued). Instruction-valued operands whose
/// clone does not exist yet are left pointing at the *original* value;
/// run patchClonedOperands over all clones afterwards. The clone keeps
/// the original's instruction ID; callers wanting fresh identity must
/// setId afterwards.
std::unique_ptr<Instruction>
cloneInstructionWithMaps(const Instruction *Inst, Module &NewM,
                         IRCloneMaps &Maps);

/// Second pass of a cloning operation: rewrites every instruction-valued
/// operand of the cloned instructions through Maps.Values. Every such
/// operand must have been cloned (asserts otherwise) — block order inside
/// the source no longer matters.
void patchClonedOperands(IRCloneMaps &Maps);

} // namespace ipcp

#endif // IPCP_IR_CLONEUTIL_H
