//===- analysis/Dominators.cpp --------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include "ir/Traversal.h"

#include <algorithm>
#include <cassert>

using namespace ipcp;

DominatorTree::DominatorTree(const Procedure &P) {
  RPO = reversePostOrder(P); // also assigns dense block positions
  size_t NumBlocks = P.blocks().size();
  PostIndex.assign(NumBlocks, Unreachable);
  IDom.assign(NumBlocks, nullptr);
  Children.assign(NumBlocks, {});

  // Postorder numbers: entry gets the highest number.
  for (unsigned I = 0; I != RPO.size(); ++I)
    PostIndex[RPO[I]->getDensePos()] = RPO.size() - 1 - I;

  if (RPO.empty())
    return;
  BasicBlock *Entry = RPO.front();
  IDom[Entry->getDensePos()] = Entry; // sentinel; reported as null by idom()

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (PostIndex[A->getDensePos()] < PostIndex[B->getDensePos()])
        A = IDom[A->getDensePos()];
      while (PostIndex[B->getDensePos()] < PostIndex[A->getDensePos()])
        B = IDom[B->getDensePos()];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *Pred : BB->predecessors()) {
        if (PostIndex[Pred->getDensePos()] == Unreachable ||
            !IDom[Pred->getDensePos()])
          continue; // unreachable or not yet processed
        NewIDom = NewIDom ? Intersect(Pred, NewIDom) : Pred;
      }
      assert(NewIDom && "reachable block with no processed predecessor");
      if (IDom[BB->getDensePos()] != NewIDom) {
        IDom[BB->getDensePos()] = NewIDom;
        Changed = true;
      }
    }
  }

  for (BasicBlock *BB : RPO) {
    if (BB == Entry)
      continue;
    Children[IDom[BB->getDensePos()]->getDensePos()].push_back(BB);
  }
}

BasicBlock *DominatorTree::idom(BasicBlock *BB) const {
  BasicBlock *Dom = IDom[BB->getDensePos()];
  assert(Dom && "idom of unreachable block");
  return Dom == BB ? nullptr : Dom;
}

bool DominatorTree::dominates(BasicBlock *A, BasicBlock *B) const {
  // Walk B's idom chain up to A or the root. Fine for our block counts;
  // switch to DFS-interval numbering if procedures ever get huge.
  while (true) {
    if (A == B)
      return true;
    BasicBlock *Up = idom(B);
    if (!Up)
      return false;
    B = Up;
  }
}

const std::vector<BasicBlock *> &
DominatorTree::children(BasicBlock *BB) const {
  return Children[BB->getDensePos()];
}

DominanceFrontier::DominanceFrontier(const Procedure &P,
                                     const DominatorTree &DT) {
  DF.assign(P.blocks().size(), {});
  // Cooper-Harvey-Kennedy frontier computation: for each join point, walk
  // each predecessor's idom chain up to the join's idom.
  for (BasicBlock *BB : DT.blocksInRPO()) {
    const std::vector<BasicBlock *> &Preds = BB->predecessors();
    if (Preds.size() < 2)
      continue;
    for (BasicBlock *Pred : Preds) {
      if (!DT.isReachable(Pred))
        continue;
      BasicBlock *Runner = Pred;
      while (Runner != DT.idom(BB)) {
        std::vector<BasicBlock *> &Frontier = DF[Runner->getDensePos()];
        if (std::find(Frontier.begin(), Frontier.end(), BB) == Frontier.end())
          Frontier.push_back(BB);
        Runner = DT.idom(Runner);
        assert(Runner && "ran past the entry while walking idom chain");
      }
    }
  }
}

const std::vector<BasicBlock *> &
DominanceFrontier::frontier(BasicBlock *BB) const {
  return DF[BB->getDensePos()];
}
