//===- analysis/Dominators.cpp --------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Dominators.h"

#include "ir/Traversal.h"

#include <algorithm>
#include <cassert>

using namespace ipcp;

DominatorTree::DominatorTree(const Procedure &P) {
  RPO = reversePostOrder(P);
  // Postorder numbers: entry gets the highest number.
  for (unsigned I = 0; I != RPO.size(); ++I)
    PostIndex[RPO[I]] = RPO.size() - 1 - I;

  if (RPO.empty())
    return;
  BasicBlock *Entry = RPO.front();
  IDom[Entry] = Entry; // sentinel; reported as null by idom()

  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (PostIndex.at(A) < PostIndex.at(B))
        A = IDom.at(A);
      while (PostIndex.at(B) < PostIndex.at(A))
        B = IDom.at(B);
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == Entry)
        continue;
      BasicBlock *NewIDom = nullptr;
      for (BasicBlock *Pred : BB->predecessors()) {
        if (!PostIndex.count(Pred) || !IDom.count(Pred))
          continue; // unreachable or not yet processed
        NewIDom = NewIDom ? Intersect(Pred, NewIDom) : Pred;
      }
      assert(NewIDom && "reachable block with no processed predecessor");
      auto It = IDom.find(BB);
      if (It == IDom.end() || It->second != NewIDom) {
        IDom[BB] = NewIDom;
        Changed = true;
      }
    }
  }

  for (BasicBlock *BB : RPO) {
    if (BB == Entry)
      continue;
    Children[IDom.at(BB)].push_back(BB);
  }
}

BasicBlock *DominatorTree::idom(BasicBlock *BB) const {
  auto It = IDom.find(BB);
  assert(It != IDom.end() && "idom of unreachable block");
  return It->second == BB ? nullptr : It->second;
}

bool DominatorTree::dominates(BasicBlock *A, BasicBlock *B) const {
  // Walk B's idom chain up to A or the root. Fine for our block counts;
  // switch to DFS-interval numbering if procedures ever get huge.
  while (true) {
    if (A == B)
      return true;
    BasicBlock *Up = idom(B);
    if (!Up)
      return false;
    B = Up;
  }
}

const std::vector<BasicBlock *> &
DominatorTree::children(BasicBlock *BB) const {
  auto It = Children.find(BB);
  return It == Children.end() ? NoChildren : It->second;
}

DominanceFrontier::DominanceFrontier(const Procedure &P,
                                     const DominatorTree &DT) {
  // Cooper-Harvey-Kennedy frontier computation: for each join point, walk
  // each predecessor's idom chain up to the join's idom.
  for (BasicBlock *BB : DT.blocksInRPO()) {
    const std::vector<BasicBlock *> &Preds = BB->predecessors();
    if (Preds.size() < 2)
      continue;
    for (BasicBlock *Pred : Preds) {
      if (!DT.isReachable(Pred))
        continue;
      BasicBlock *Runner = Pred;
      while (Runner != DT.idom(BB)) {
        std::vector<BasicBlock *> &Frontier = DF[Runner];
        if (std::find(Frontier.begin(), Frontier.end(), BB) == Frontier.end())
          Frontier.push_back(BB);
        Runner = DT.idom(Runner);
        assert(Runner && "ran past the entry while walking idom chain");
      }
    }
  }
  (void)P;
}

const std::vector<BasicBlock *> &
DominanceFrontier::frontier(BasicBlock *BB) const {
  auto It = DF.find(BB);
  return It == DF.end() ? Empty : It->second;
}
