//===- ir/Dominators.h - Dominator tree -------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree and dominance frontiers, computed with the iterative
/// algorithm of Cooper, Harvey & Kennedy ("A Simple, Fast Dominance
/// Algorithm") — fittingly, by the authors of the framework this project
/// reproduces. Operates on the reachable CFG only.
///
/// All side tables are flat vectors indexed by BasicBlock::getDensePos()
/// (assigned by Procedure::instStream()); the tree stays valid across
/// instruction insertion (phi placement) but not across block-list
/// mutation.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_DOMINATORS_H
#define IPCP_IR_DOMINATORS_H

#include "ir/Procedure.h"

#include <vector>

namespace ipcp {

/// Immediate-dominator tree over the reachable blocks of one procedure.
class DominatorTree {
public:
  explicit DominatorTree(const Procedure &P);

  /// Immediate dominator; null for the entry block.
  BasicBlock *idom(BasicBlock *BB) const;

  /// True when \p A dominates \p B (reflexive).
  bool dominates(BasicBlock *A, BasicBlock *B) const;

  /// Children of \p BB in the dominator tree.
  const std::vector<BasicBlock *> &children(BasicBlock *BB) const;

  /// Reachable blocks in reverse postorder (a valid top-down tree order).
  const std::vector<BasicBlock *> &blocksInRPO() const { return RPO; }

  bool isReachable(BasicBlock *BB) const {
    return PostIndex[BB->getDensePos()] != Unreachable;
  }

private:
  static constexpr unsigned Unreachable = ~0u;

  std::vector<BasicBlock *> RPO;
  std::vector<unsigned> PostIndex;                 ///< by dense block pos
  std::vector<BasicBlock *> IDom;                  ///< by dense block pos
  std::vector<std::vector<BasicBlock *>> Children; ///< by dense block pos
};

/// Dominance frontiers (Cytron et al. §4.2), used for phi placement.
class DominanceFrontier {
public:
  DominanceFrontier(const Procedure &P, const DominatorTree &DT);

  const std::vector<BasicBlock *> &frontier(BasicBlock *BB) const;

private:
  std::vector<std::vector<BasicBlock *>> DF; ///< by dense block pos
};

} // namespace ipcp

#endif // IPCP_IR_DOMINATORS_H
