//===- ir/IRPrinter.cpp ---------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "support/Casting.h"

using namespace ipcp;

static const char *binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "add";
  case BinaryOp::Sub:
    return "sub";
  case BinaryOp::Mul:
    return "mul";
  case BinaryOp::Div:
    return "div";
  case BinaryOp::Mod:
    return "mod";
  case BinaryOp::CmpEq:
    return "cmpeq";
  case BinaryOp::CmpNe:
    return "cmpne";
  case BinaryOp::CmpLt:
    return "cmplt";
  case BinaryOp::CmpLe:
    return "cmple";
  case BinaryOp::CmpGt:
    return "cmpgt";
  case BinaryOp::CmpGe:
    return "cmpge";
  }
  return "?";
}

std::string ipcp::printValueRef(const Value *V) {
  if (const auto *C = dyn_cast<ConstantInt>(V))
    return std::to_string(C->getValue());
  if (const auto *E = dyn_cast<EntryValue>(V))
    return "entry(" + E->getVariable()->getName() + ")";
  if (isa<UndefValue>(V))
    return "undef";
  const auto *Inst = cast<Instruction>(V);
  return "%" + std::to_string(Inst->getId());
}

std::string ipcp::printInstruction(const Instruction *Inst) {
  std::string Out;
  auto Def = [&] { Out += printValueRef(Inst) + " = "; };
  switch (Inst->getKind()) {
  case ValueKind::Binary: {
    const auto *Bin = cast<BinaryInst>(Inst);
    Def();
    Out += binaryOpName(Bin->getOp());
    Out += " " + printValueRef(Bin->getLHS()) + ", " +
           printValueRef(Bin->getRHS());
    break;
  }
  case ValueKind::Unary: {
    const auto *Un = cast<UnaryInst>(Inst);
    Def();
    Out += Un->getOp() == UnaryOp::Neg ? "neg " : "not ";
    Out += printValueRef(Un->getValueOperand());
    break;
  }
  case ValueKind::Load:
    Def();
    Out += "load " + cast<LoadInst>(Inst)->getVariable()->getName();
    break;
  case ValueKind::Store: {
    const auto *Store = cast<StoreInst>(Inst);
    Out += "store " + Store->getVariable()->getName() + ", " +
           printValueRef(Store->getValueOperand());
    break;
  }
  case ValueKind::ArrayLoad: {
    const auto *ALoad = cast<ArrayLoadInst>(Inst);
    Def();
    Out += "aload " + ALoad->getArray()->getName() + "[" +
           printValueRef(ALoad->getIndex()) + "]";
    break;
  }
  case ValueKind::ArrayStore: {
    const auto *AStore = cast<ArrayStoreInst>(Inst);
    Out += "astore " + AStore->getArray()->getName() + "[" +
           printValueRef(AStore->getIndex()) + "], " +
           printValueRef(AStore->getValueOperand());
    break;
  }
  case ValueKind::Read:
    Def();
    Out += "read";
    break;
  case ValueKind::Print:
    Out += "print " + printValueRef(cast<PrintInst>(Inst)->getValueOperand());
    break;
  case ValueKind::Phi: {
    const auto *Phi = cast<PhiInst>(Inst);
    Def();
    Out += "phi " + Phi->getVariable()->getName() + " ";
    for (unsigned I = 0, E = Phi->getNumIncoming(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += "[" + printValueRef(Phi->getIncomingValue(I)) + ", " +
             Phi->getIncomingBlock(I)->getName() + "]";
    }
    break;
  }
  case ValueKind::Call: {
    const auto *Call = cast<CallInst>(Inst);
    Out += "call " + Call->getCallee()->getName() + "(";
    for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += printValueRef(Call->getActualValue(I));
      if (Variable *Loc = Call->getActual(I).ByRefLoc)
        Out += " @" + Loc->getName();
    }
    Out += ")";
    break;
  }
  case ValueKind::CallOut: {
    const auto *Out2 = cast<CallOutInst>(Inst);
    Def();
    Out += "callout %" + std::to_string(Out2->getCall()->getId()) + ", " +
           Out2->getVariable()->getName();
    break;
  }
  case ValueKind::Branch:
    Out += "br " + cast<BranchInst>(Inst)->getTarget()->getName();
    break;
  case ValueKind::CondBranch: {
    const auto *CBr = cast<CondBranchInst>(Inst);
    Out += "cbr " + printValueRef(CBr->getCond()) + ", " +
           CBr->getTrueTarget()->getName() + ", " +
           CBr->getFalseTarget()->getName();
    break;
  }
  case ValueKind::Ret:
    Out += "ret";
    break;
  default:
    Out += "<unknown>";
    break;
  }
  return Out;
}

std::string ipcp::printProcedure(const Procedure &P) {
  std::string Out = "proc " + P.getName() + "(";
  for (size_t I = 0; I != P.formals().size(); ++I) {
    if (I)
      Out += ", ";
    Out += P.formals()[I]->getName();
  }
  Out += ") {\n";
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks()) {
    Out += BB->getName() + ":";
    if (!BB->predecessors().empty()) {
      Out += "    ; preds:";
      for (BasicBlock *Pred : BB->predecessors())
        Out += " " + Pred->getName();
    }
    Out += "\n";
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      Out += "  " + printInstruction(Inst.get()) + "\n";
  }
  Out += "}\n";
  return Out;
}

std::string ipcp::printModule(const Module &M) {
  std::string Out;
  for (const Variable *G : M.globals()) {
    Out += "global " + G->getName();
    if (G->isArray())
      Out += "[" + std::to_string(G->getArraySize()) + "]";
    Out += "\n";
  }
  for (const std::unique_ptr<Procedure> &P : M.procedures()) {
    Out += "\n";
    Out += printProcedure(*P);
  }
  return Out;
}
