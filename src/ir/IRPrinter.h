//===- ir/IRPrinter.h - Textual IR dump -------------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders modules, procedures, and values as readable text for tests,
/// debugging, and the examples. Instructions print as `%<id>`; entry
/// values as `entry(<var>)`; constants as bare integers.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_IRPRINTER_H
#define IPCP_IR_IRPRINTER_H

#include "ir/Module.h"

#include <string>

namespace ipcp {

/// Short name for a value usable inside an instruction ("%7", "42",
/// "entry(n)", "undef").
std::string printValueRef(const Value *V);

/// One-line rendering of \p Inst ("  %7 = add %5, %6").
std::string printInstruction(const Instruction *Inst);

/// Full rendering of one procedure.
std::string printProcedure(const Procedure &P);

/// Full rendering of the module.
std::string printModule(const Module &M);

} // namespace ipcp

#endif // IPCP_IR_IRPRINTER_H
