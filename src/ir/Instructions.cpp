//===- ir/Instructions.cpp ------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Instructions.h"

using namespace ipcp;

Instruction::~Instruction() = default;

void Instruction::replaceUsesOfWith(Value *From, Value *To) {
  for (unsigned I = 0, E = Operands.size(); I != E; ++I)
    if (Operands[I] == From)
      Operands[I] = To;
}

void PhiInst::removeIncoming(unsigned I) {
  assert(I < Blocks.size() && "incoming index out of range");
  Operands.erase(Operands.begin() + I);
  Blocks.erase(Blocks.begin() + I);
}
