//===- ir/Instructions.h - Instruction classes ------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instruction and its subclasses. Instructions live in basic blocks, own
/// a module-unique ID that survives module cloning (so facts computed on a
/// clone can be applied to the original), and reference their operands as
/// raw Value pointers in a uniform operand list.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_INSTRUCTIONS_H
#define IPCP_IR_INSTRUCTIONS_H

#include "ir/Value.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <vector>

namespace ipcp {

class BasicBlock;
class Procedure;

/// Base class of all instructions.
class Instruction : public Value {
public:
  virtual ~Instruction();

  /// Module-unique, clone-stable identifier.
  uint64_t getId() const { return Id; }
  void setId(uint64_t NewId) { Id = NewId; }

  /// Dense position in the owning procedure's flat instruction stream
  /// (Procedure::instStream()). Only valid while that stream is; analyses
  /// must materialize the stream before indexing with this.
  uint32_t getLocalIdx() const { return LocalIdx; }
  void setLocalIdx(uint32_t Idx) { LocalIdx = Idx; }

  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc NewLoc) { Loc = NewLoc; }

  BasicBlock *getParent() const { return Parent; }
  void setParent(BasicBlock *BB) { Parent = BB; }

  unsigned getNumOperands() const { return Operands.size(); }
  Value *getOperand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }
  const std::vector<Value *> &operands() const { return Operands; }

  /// Replaces every occurrence of \p From in the operand list with \p To.
  void replaceUsesOfWith(Value *From, Value *To);

  /// True for Branch, CondBranch, and Ret.
  bool isTerminator() const {
    return getKind() == ValueKind::Branch ||
           getKind() == ValueKind::CondBranch || getKind() == ValueKind::Ret;
  }

  static bool classof(const Value *V) { return V->isInstruction(); }

protected:
  Instruction(ValueKind Kind, uint64_t Id, SourceLoc Loc)
      : Value(Kind), Id(Id), Loc(Loc) {}

  void addOperand(Value *V) { Operands.push_back(V); }

  std::vector<Value *> Operands;

private:
  uint64_t Id;
  uint32_t LocalIdx = ~uint32_t(0);
  SourceLoc Loc;
  BasicBlock *Parent = nullptr;
};

/// `%v = lhs op rhs`.
class BinaryInst : public Instruction {
public:
  BinaryInst(uint64_t Id, SourceLoc Loc, BinaryOp Op, Value *LHS, Value *RHS)
      : Instruction(ValueKind::Binary, Id, Loc), Op(Op) {
    addOperand(LHS);
    addOperand(RHS);
  }

  BinaryOp getOp() const { return Op; }
  Value *getLHS() const { return getOperand(0); }
  Value *getRHS() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Binary;
  }

private:
  BinaryOp Op;
};

/// `%v = op operand`.
class UnaryInst : public Instruction {
public:
  UnaryInst(uint64_t Id, SourceLoc Loc, UnaryOp Op, Value *Operand)
      : Instruction(ValueKind::Unary, Id, Loc), Op(Op) {
    addOperand(Operand);
  }

  UnaryOp getOp() const { return Op; }
  Value *getValueOperand() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Unary;
  }

private:
  UnaryOp Op;
};

/// `%v = load X` — reads scalar variable X. Every source-level reference
/// of a scalar lowers to exactly one Load, so the substitution metric (the
/// paper's "constants substituted into the program") counts Loads whose
/// value is proven constant. SSA promotion deletes these.
class LoadInst : public Instruction {
public:
  LoadInst(uint64_t Id, SourceLoc Loc, Variable *Var)
      : Instruction(ValueKind::Load, Id, Loc), Var(Var) {
    assert(Var->isScalar() && "load of array variable");
  }

  Variable *getVariable() const { return Var; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Load;
  }

private:
  Variable *Var;
};

/// `store X, %v` — writes scalar variable X.
class StoreInst : public Instruction {
public:
  StoreInst(uint64_t Id, SourceLoc Loc, Variable *Var, Value *Val)
      : Instruction(ValueKind::Store, Id, Loc), Var(Var) {
    assert(Var->isScalar() && "store to array variable");
    addOperand(Val);
  }

  Variable *getVariable() const { return Var; }
  Value *getValueOperand() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Store;
  }

private:
  Variable *Var;
};

/// `%v = aload A[%idx]` — reads an array element. Opaque to constant
/// propagation (always lattice bottom), exactly as in the paper.
class ArrayLoadInst : public Instruction {
public:
  ArrayLoadInst(uint64_t Id, SourceLoc Loc, Variable *Arr, Value *Index)
      : Instruction(ValueKind::ArrayLoad, Id, Loc), Arr(Arr) {
    assert(Arr->isArray() && "array load from scalar");
    addOperand(Index);
  }

  Variable *getArray() const { return Arr; }
  Value *getIndex() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ArrayLoad;
  }

private:
  Variable *Arr;
};

/// `astore A[%idx], %v` — writes an array element.
class ArrayStoreInst : public Instruction {
public:
  ArrayStoreInst(uint64_t Id, SourceLoc Loc, Variable *Arr, Value *Index,
                 Value *Val)
      : Instruction(ValueKind::ArrayStore, Id, Loc), Arr(Arr) {
    assert(Arr->isArray() && "array store to scalar");
    addOperand(Index);
    addOperand(Val);
  }

  Variable *getArray() const { return Arr; }
  Value *getIndex() const { return getOperand(0); }
  Value *getValueOperand() const { return getOperand(1); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::ArrayStore;
  }

private:
  Variable *Arr;
};

/// `%v = read` — an external input; never constant.
class ReadInst : public Instruction {
public:
  ReadInst(uint64_t Id, SourceLoc Loc)
      : Instruction(ValueKind::Read, Id, Loc) {}

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Read;
  }
};

/// `print %v` — the observable output.
class PrintInst : public Instruction {
public:
  PrintInst(uint64_t Id, SourceLoc Loc, Value *Val)
      : Instruction(ValueKind::Print, Id, Loc) {
    addOperand(Val);
  }

  Value *getValueOperand() const { return getOperand(0); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Print;
  }
};

/// One actual parameter at a call site.
struct CallActual {
  /// The value of the actual at the call (for jump functions).
  /// Stored redundantly with the operand list; kept in sync by CallInst.
  Value *Val = nullptr;
  /// Non-null iff the actual was a plain scalar variable: Fortran
  /// by-reference binding; the callee's formal aliases this location.
  /// Null for expression actuals (hidden temporary, updates discarded).
  Variable *ByRefLoc = nullptr;
  /// True iff the actual was syntactically an integer literal — the only
  /// case the literal jump function handles.
  bool WasLiteral = false;
};

/// `call q(a1, ..., an)` — a call site: one edge of the call graph.
class CallInst : public Instruction {
public:
  CallInst(uint64_t Id, SourceLoc Loc, Procedure *Callee,
           std::vector<CallActual> TheActuals)
      : Instruction(ValueKind::Call, Id, Loc), Callee(Callee),
        Actuals(std::move(TheActuals)) {
    for (CallActual &A : Actuals)
      addOperand(A.Val);
  }

  Procedure *getCallee() const { return Callee; }
  void setCallee(Procedure *NewCallee) { Callee = NewCallee; }
  unsigned getNumActuals() const { return Actuals.size(); }

  /// The actual descriptor; Val mirrors operand \p I.
  const CallActual &getActual(unsigned I) const {
    assert(I < Actuals.size() && "actual index out of range");
    return Actuals[I];
  }

  /// The current value operand of actual \p I (RAUW-safe accessor).
  Value *getActualValue(unsigned I) const { return getOperand(I); }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Call;
  }

private:
  Procedure *Callee;
  std::vector<CallActual> Actuals;
};

/// `%v = callout(call, X)` — the SSA definition of location X after a call
/// that may modify X (a MOD-set member bound at the site). Inserted by SSA
/// construction; its meaning is the callee's return jump function for the
/// bound formal, or bottom. This is how the paper's return jump functions
/// enter the value graph.
class CallOutInst : public Instruction {
public:
  CallOutInst(uint64_t Id, SourceLoc Loc, CallInst *Call, Variable *Var)
      : Instruction(ValueKind::CallOut, Id, Loc), Call(Call), Var(Var) {}

  CallInst *getCall() const { return Call; }
  Variable *getVariable() const { return Var; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::CallOut;
  }

private:
  CallInst *Call;
  Variable *Var;
};

/// SSA phi node; incoming values parallel the incoming block list.
class PhiInst : public Instruction {
public:
  PhiInst(uint64_t Id, SourceLoc Loc, Variable *Var)
      : Instruction(ValueKind::Phi, Id, Loc), Var(Var) {}

  /// The variable this phi merges (for debugging/printing only).
  Variable *getVariable() const { return Var; }

  void addIncoming(Value *V, BasicBlock *BB) {
    addOperand(V);
    Blocks.push_back(BB);
  }

  unsigned getNumIncoming() const { return Blocks.size(); }
  Value *getIncomingValue(unsigned I) const { return getOperand(I); }
  void setIncomingValue(unsigned I, Value *V) { setOperand(I, V); }
  BasicBlock *getIncomingBlock(unsigned I) const { return Blocks[I]; }

  /// Drops the \p I-th incoming pair (used when a predecessor dies).
  void removeIncoming(unsigned I);

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Phi;
  }

private:
  Variable *Var;
  std::vector<BasicBlock *> Blocks;
};

/// Unconditional branch.
class BranchInst : public Instruction {
public:
  BranchInst(uint64_t Id, SourceLoc Loc, BasicBlock *Target)
      : Instruction(ValueKind::Branch, Id, Loc), Target(Target) {}

  BasicBlock *getTarget() const { return Target; }
  void setTarget(BasicBlock *BB) { Target = BB; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Branch;
  }

private:
  BasicBlock *Target;
};

/// Conditional branch: takes the true edge when the operand is nonzero.
class CondBranchInst : public Instruction {
public:
  CondBranchInst(uint64_t Id, SourceLoc Loc, Value *Cond,
                 BasicBlock *TrueTarget, BasicBlock *FalseTarget)
      : Instruction(ValueKind::CondBranch, Id, Loc), TrueTarget(TrueTarget),
        FalseTarget(FalseTarget) {
    addOperand(Cond);
  }

  Value *getCond() const { return getOperand(0); }
  BasicBlock *getTrueTarget() const { return TrueTarget; }
  BasicBlock *getFalseTarget() const { return FalseTarget; }
  void setTrueTarget(BasicBlock *BB) { TrueTarget = BB; }
  void setFalseTarget(BasicBlock *BB) { FalseTarget = BB; }

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::CondBranch;
  }

private:
  BasicBlock *TrueTarget;
  BasicBlock *FalseTarget;
};

/// Procedure return. Lowering gives every procedure a single exit block
/// whose only instruction is the Ret.
class RetInst : public Instruction {
public:
  RetInst(uint64_t Id, SourceLoc Loc)
      : Instruction(ValueKind::Ret, Id, Loc) {}

  static bool classof(const Value *V) {
    return V->getKind() == ValueKind::Ret;
  }
};

} // namespace ipcp

#endif // IPCP_IR_INSTRUCTIONS_H
