//===- ir/Module.cpp ------------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

#include "ir/CloneUtil.h"

using namespace ipcp;

Procedure *Module::createProcedure(const std::string &Name) {
  Procs.push_back(std::make_unique<Procedure>(this, Name));
  Procs.back()->ModuleIndex = uint32_t(Procs.size() - 1);
  return Procs.back().get();
}

Procedure *Module::findProcedure(const std::string &Name) const {
  for (const std::unique_ptr<Procedure> &P : Procs)
    if (P->getName() == Name)
      return P.get();
  return nullptr;
}

void Module::eraseProcedure(Procedure *P) {
  for (auto It = Procs.begin(); It != Procs.end(); ++It)
    if (It->get() == P) {
      It = Procs.erase(It);
      for (; It != Procs.end(); ++It)
        (*It)->ModuleIndex = uint32_t(It - Procs.begin());
      return;
    }
  assert(false && "procedure not in this module");
}

Variable *Module::addGlobal(const std::string &Name, ConstantValue ArraySize) {
  Variable::Kind Kind =
      ArraySize ? Variable::Kind::GlobalArray : Variable::Kind::Global;
  auto Var = std::make_unique<Variable>(nextVarId(), Kind, Name,
                                        /*Parent=*/nullptr,
                                        /*FormalIndex=*/0, ArraySize);
  Globals.push_back(Var.get());
  OwnedGlobals.push_back(std::move(Var));
  return Globals.back();
}

Variable *Module::findGlobal(const std::string &Name) const {
  for (Variable *V : Globals)
    if (V->getName() == Name)
      return V;
  return nullptr;
}

ConstantInt *Module::getConstant(ConstantValue V) {
  auto It = Constants.find(V);
  if (It != Constants.end())
    return It->second.get();
  auto C = std::make_unique<ConstantInt>(V);
  ConstantInt *Raw = C.get();
  Constants.emplace(V, std::move(C));
  return Raw;
}

unsigned Module::instructionCount() const {
  unsigned Count = 0;
  for (const std::unique_ptr<Procedure> &P : Procs)
    Count += P->instructionCount();
  return Count;
}

std::unique_ptr<Module> Module::clone() const {
  auto NewM = std::make_unique<Module>();
  IRCloneMaps Maps(*this);
  Maps.Clones.reserve(instructionCount());

  for (const Variable *G : Globals) {
    Variable *NewG = NewM->addGlobal(G->getName(), G->getArraySize());
    NewG->setId(G->getId());
    Maps.mapVar(G, NewG);
  }

  // Create all procedures, variables, and blocks first so call and branch
  // targets can be mapped while cloning instructions.
  for (const std::unique_ptr<Procedure> &P : Procs) {
    Procedure *NewP = NewM->createProcedure(P->getName());
    Maps.Procs.emplace(P.get(), NewP);
    for (const Variable *F : P->formals()) {
      Variable *NewF = NewP->addFormal(F->getName());
      NewF->setId(F->getId());
      Maps.mapVar(F, NewF);
    }
    for (const Variable *L : P->locals()) {
      Variable *NewL = NewP->addLocal(L->getName(), L->getArraySize());
      NewL->setId(L->getId());
      Maps.mapVar(L, NewL);
    }
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks())
      Maps.Blocks.emplace(BB.get(), NewP->createBlock(BB->getName()));
    if (P->getExitBlock())
      NewP->setExitBlock(Maps.block(P->getExitBlock()));
  }

  for (const std::unique_ptr<Procedure> &P : Procs) {
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks()) {
      BasicBlock *NewBB = Maps.block(BB.get());
      for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
        std::unique_ptr<Instruction> NewInst =
            cloneInstructionWithMaps(Inst.get(), *NewM, Maps);
        Maps.mapValue(Inst.get(), NewInst.get());
        NewBB->append(std::move(NewInst));
      }
      for (BasicBlock *Pred : BB->predecessors())
        NewBB->addPredecessor(Maps.block(Pred));
    }
  }

  patchClonedOperands(Maps);

  // Preserve ID continuity for instructions added to the clone later.
  NewM->NextInstId = NextInstId;
  NewM->NextVarId = NextVarId;
  return NewM;
}

Procedure *Module::cloneProcedure(const Procedure &Src,
                                  const std::string &NewName) {
  assert(Src.getModule() == this && "cloning a foreign procedure");
  IRCloneMaps Maps(*this);
  // Globals and procedures are shared; local storage is fresh.
  for (Variable *G : Globals)
    Maps.mapVar(G, G);
  for (const std::unique_ptr<Procedure> &P : Procs)
    Maps.Procs.emplace(P.get(), P.get());

  Procedure *NewP = createProcedure(NewName);
  for (const Variable *F : Src.formals())
    Maps.mapVar(F, NewP->addFormal(F->getName()));
  for (const Variable *L : Src.locals())
    Maps.mapVar(L, NewP->addLocal(L->getName(), L->getArraySize()));
  for (const std::unique_ptr<BasicBlock> &BB : Src.blocks())
    Maps.Blocks.emplace(BB.get(), NewP->createBlock(BB->getName()));
  if (Src.getExitBlock())
    NewP->setExitBlock(Maps.block(Src.getExitBlock()));

  for (const std::unique_ptr<BasicBlock> &BB : Src.blocks()) {
    BasicBlock *NewBB = Maps.block(BB.get());
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
      std::unique_ptr<Instruction> NewInst =
          cloneInstructionWithMaps(Inst.get(), *this, Maps);
      NewInst->setId(nextInstId()); // fresh identity for the copy
      Maps.mapValue(Inst.get(), NewInst.get());
      NewBB->append(std::move(NewInst));
    }
    for (BasicBlock *Pred : BB->predecessors())
      NewBB->addPredecessor(Maps.block(Pred));
  }
  patchClonedOperands(Maps);
  return NewP;
}
