//===- ir/Module.h - Whole-program IR container -----------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Module owns every procedure, every global variable, the uniqued
/// integer constants, and the ID counters. Modules deep-clone with all
/// instruction and variable IDs preserved, which is how analysis results
/// computed on a scratch copy are applied back to the canonical program
/// during complete propagation (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_MODULE_H
#define IPCP_IR_MODULE_H

#include "ir/Procedure.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipcp {

/// A whole MiniFort program in IR form.
class Module {
public:
  Module() = default;
  Module(const Module &) = delete;
  Module &operator=(const Module &) = delete;

  //===--------------------------------------------------------------------===
  // Procedures and globals
  //===--------------------------------------------------------------------===

  Procedure *createProcedure(const std::string &Name);

  const std::vector<std::unique_ptr<Procedure>> &procedures() const {
    return Procs;
  }

  Procedure *findProcedure(const std::string &Name) const;

  /// Destroys \p P and removes it from the module. The caller must
  /// ensure no live procedure still calls it (the inliner removes whole
  /// unreachable groups at once).
  void eraseProcedure(Procedure *P);

  /// Creates a global scalar (ArraySize 0) or array.
  Variable *addGlobal(const std::string &Name, ConstantValue ArraySize = 0);

  const std::vector<Variable *> &globals() const { return Globals; }

  Variable *findGlobal(const std::string &Name) const;

  //===--------------------------------------------------------------------===
  // Uniqued values and IDs
  //===--------------------------------------------------------------------===

  /// The uniqued ConstantInt for \p V.
  ConstantInt *getConstant(ConstantValue V);

  /// The module's undef singleton.
  UndefValue *getUndef() { return &Undef; }

  /// Fresh module-unique instruction ID.
  uint64_t nextInstId() { return NextInstId++; }

  /// Fresh module-unique variable ID.
  uint64_t nextVarId() { return NextVarId++; }

  /// Exclusive upper bounds on the IDs handed out so far; dense clone
  /// tables are sized from these.
  uint64_t instIdBound() const { return NextInstId; }
  uint64_t varIdBound() const { return NextVarId; }

  //===--------------------------------------------------------------------===
  // Cloning
  //===--------------------------------------------------------------------===

  /// Deep-copies the module. Instruction and variable IDs are preserved,
  /// so an (ID -> fact) map computed on the clone applies to the original.
  /// Requires pre-SSA form (no phis, entry values, or call-outs), which is
  /// the canonical on-disk form of a lowered program.
  std::unique_ptr<Module> clone() const;

  /// Copies procedure \p Src into this module (its own module) under
  /// \p NewName, with fresh instruction and variable IDs. Globals and
  /// callee references are shared with the original. Used by the
  /// procedure-cloning transformation; requires pre-SSA form.
  Procedure *cloneProcedure(const Procedure &Src, const std::string &NewName);

  /// Total instructions across all procedures.
  unsigned instructionCount() const;

private:
  std::vector<std::unique_ptr<Procedure>> Procs;
  std::vector<Variable *> Globals;
  std::vector<std::unique_ptr<Variable>> OwnedGlobals;
  std::unordered_map<ConstantValue, std::unique_ptr<ConstantInt>> Constants;
  UndefValue Undef;
  uint64_t NextInstId = 0;
  uint64_t NextVarId = 0;
};

} // namespace ipcp

#endif // IPCP_IR_MODULE_H
