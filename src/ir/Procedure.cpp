//===- ir/Procedure.cpp ---------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Procedure.h"

#include "ir/Module.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

using namespace ipcp;

BasicBlock *Procedure::createBlock(std::string BlockName) {
  Blocks.push_back(
      std::make_unique<BasicBlock>(NextBlockId++, std::move(BlockName), this));
  invalidateInstStream();
  return Blocks.back().get();
}

void Procedure::eraseBlock(BasicBlock *BB) {
  assert(BB->predecessors().empty() && "erasing block with live predecessors");
  if (BB == ExitBlock)
    ExitBlock = nullptr;
  auto It = std::find_if(
      Blocks.begin(), Blocks.end(),
      [&](const std::unique_ptr<BasicBlock> &P) { return P.get() == BB; });
  assert(It != Blocks.end() && "block not in this procedure");
  Blocks.erase(It);
  invalidateInstStream();
}

unsigned Procedure::removeUnreachableBlocks() {
  if (Blocks.empty())
    return 0;

  std::unordered_set<BasicBlock *> Reachable;
  std::deque<BasicBlock *> Queue{getEntryBlock()};
  Reachable.insert(getEntryBlock());
  while (!Queue.empty()) {
    BasicBlock *BB = Queue.front();
    Queue.pop_front();
    for (BasicBlock *Succ : BB->successors())
      if (Reachable.insert(Succ).second)
        Queue.push_back(Succ);
  }
  if (Reachable.size() == Blocks.size())
    return 0;

  // Detach dead blocks from live successors: fix predecessor lists and
  // drop the corresponding phi incoming entries.
  for (const std::unique_ptr<BasicBlock> &BBPtr : Blocks) {
    BasicBlock *BB = BBPtr.get();
    if (Reachable.count(BB))
      continue;
    for (BasicBlock *Succ : BB->successors()) {
      if (!Reachable.count(Succ))
        continue;
      Succ->removePredecessor(BB);
      for (const std::unique_ptr<Instruction> &Inst : Succ->instructions()) {
        auto *Phi = dyn_cast<PhiInst>(Inst.get());
        if (!Phi)
          break;
        for (unsigned I = 0; I < Phi->getNumIncoming();) {
          if (Phi->getIncomingBlock(I) == BB)
            Phi->removeIncoming(I);
          else
            ++I;
        }
      }
    }
  }

  unsigned Removed = 0;
  for (auto It = Blocks.begin(); It != Blocks.end();) {
    if (Reachable.count(It->get())) {
      ++It;
      continue;
    }
    // A procedure that can only loop forever loses its exit block; return
    // jump functions treat a missing exit as "never returns" (bottom-free).
    if (It->get() == ExitBlock)
      ExitBlock = nullptr;
    It = Blocks.erase(It);
    ++Removed;
  }
  if (Removed)
    invalidateInstStream();
  return Removed;
}

Variable *Procedure::addFormal(const std::string &VarName) {
  auto Var = std::make_unique<Variable>(
      Parent->nextVarId(), Variable::Kind::Formal, VarName, this,
      /*FormalIndex=*/static_cast<unsigned>(Formals.size()));
  Formals.push_back(Var.get());
  OwnedVars.push_back(std::move(Var));
  return Formals.back();
}

Variable *Procedure::addLocal(const std::string &VarName,
                              ConstantValue ArraySize) {
  Variable::Kind Kind =
      ArraySize ? Variable::Kind::LocalArray : Variable::Kind::Local;
  auto Var = std::make_unique<Variable>(Parent->nextVarId(), Kind, VarName,
                                        this, /*FormalIndex=*/0, ArraySize);
  Locals.push_back(Var.get());
  OwnedVars.push_back(std::move(Var));
  return Locals.back();
}

Variable *Procedure::findVariable(const std::string &VarName) const {
  for (Variable *V : Formals)
    if (V->getName() == VarName)
      return V;
  for (Variable *V : Locals)
    if (V->getName() == VarName)
      return V;
  return nullptr;
}

EntryValue *Procedure::getEntryValue(Variable *Var) {
  assert(Var->isScalar() && "entry values exist only for scalars");
  assert((Var->isGlobal() || Var->getParent() == this) &&
         "entry value for a foreign variable");
  auto It = EntryValues.find(Var);
  if (It != EntryValues.end())
    return It->second.get();
  auto Entry = std::make_unique<EntryValue>(Var);
  EntryValue *Raw = Entry.get();
  EntryValues.emplace(Var, std::move(Entry));
  return Raw;
}

unsigned Procedure::instructionCount() const {
  unsigned Count = 0;
  for (const std::unique_ptr<BasicBlock> &BB : Blocks)
    Count += BB->instructions().size();
  return Count;
}

const Procedure::InstStream &Procedure::instStream() const {
  if (StreamValid)
    return Stream;
  Stream.Insts.clear();
  Stream.Spans.clear();
  Stream.Spans.reserve(Blocks.size());
  Stream.Insts.reserve(instructionCount());
  for (size_t BI = 0; BI != Blocks.size(); ++BI) {
    BasicBlock *BB = Blocks[BI].get();
    BB->setDensePos(uint32_t(BI));
    InstStream::Span Span;
    Span.Begin = uint32_t(Stream.Insts.size());
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
      Inst->setLocalIdx(uint32_t(Stream.Insts.size()));
      Stream.Insts.push_back(Inst.get());
    }
    Span.End = uint32_t(Stream.Insts.size());
    Stream.Spans.push_back(Span);
  }
  StreamValid = true;
  return Stream;
}

std::vector<CallInst *> Procedure::callSites() const {
  std::vector<CallInst *> Calls;
  for (const std::unique_ptr<BasicBlock> &BB : Blocks)
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (auto *Call = dyn_cast<CallInst>(Inst.get()))
        Calls.push_back(Call);
  return Calls;
}
