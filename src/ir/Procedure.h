//===- ir/Procedure.h - One procedure's CFG and symbols ---------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Procedure owns its basic blocks, its formal and local variables, and
/// the per-variable EntryValue objects that jump functions range over.
/// Lowering guarantees a single entry block and a single exit block whose
/// only instruction is the Ret.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_PROCEDURE_H
#define IPCP_IR_PROCEDURE_H

#include "ir/BasicBlock.h"
#include "ir/Value.h"
#include "ir/Variable.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipcp {

class Module;

/// One MiniFort procedure in IR form.
class Procedure {
public:
  Procedure(Module *Parent, std::string Name)
      : Parent(Parent), Name(std::move(Name)) {}

  Module *getModule() const { return Parent; }
  const std::string &getName() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  //===--------------------------------------------------------------------===
  // Blocks
  //===--------------------------------------------------------------------===

  /// Creates and appends a new block.
  BasicBlock *createBlock(std::string BlockName);

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  BasicBlock *getEntryBlock() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  BasicBlock *getExitBlock() const { return ExitBlock; }
  void setExitBlock(BasicBlock *BB) { ExitBlock = BB; }

  /// Destroys \p BB (must have no predecessors left). Instructions inside
  /// are destroyed with it.
  void eraseBlock(BasicBlock *BB);

  /// Deletes blocks unreachable from the entry, fixing predecessor lists
  /// and phis. Returns the number of blocks removed.
  unsigned removeUnreachableBlocks();

  //===--------------------------------------------------------------------===
  // Variables
  //===--------------------------------------------------------------------===

  /// Appends a formal parameter (in positional order).
  Variable *addFormal(const std::string &VarName);

  /// Adds a scalar or array local.
  Variable *addLocal(const std::string &VarName, ConstantValue ArraySize = 0);

  const std::vector<Variable *> &formals() const { return Formals; }
  const std::vector<Variable *> &locals() const { return Locals; }

  /// Looks up a formal or local by name (globals live in the Module).
  Variable *findVariable(const std::string &VarName) const;

  /// The canonical "value of \p Var on entry" SSA object.
  EntryValue *getEntryValue(Variable *Var);

  //===--------------------------------------------------------------------===
  // Misc
  //===--------------------------------------------------------------------===

  unsigned getNumFormals() const { return Formals.size(); }

  /// Number of instructions across all blocks.
  unsigned instructionCount() const;

  /// Collects every CallInst in block order.
  std::vector<CallInst *> callSites() const;

private:
  friend class Module; // clone support

  Module *Parent;
  std::string Name;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  BasicBlock *ExitBlock = nullptr;
  std::vector<Variable *> Formals;
  std::vector<Variable *> Locals;
  std::vector<std::unique_ptr<Variable>> OwnedVars;
  std::unordered_map<Variable *, std::unique_ptr<EntryValue>> EntryValues;
  unsigned NextBlockId = 0;
};

} // namespace ipcp

#endif // IPCP_IR_PROCEDURE_H
