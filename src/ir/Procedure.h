//===- ir/Procedure.h - One procedure's CFG and symbols ---------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Procedure owns its basic blocks, its formal and local variables, and
/// the per-variable EntryValue objects that jump functions range over.
/// Lowering guarantees a single entry block and a single exit block whose
/// only instruction is the Ret.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_PROCEDURE_H
#define IPCP_IR_PROCEDURE_H

#include "ir/BasicBlock.h"
#include "ir/Value.h"
#include "ir/Variable.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace ipcp {

class Module;

/// One MiniFort procedure in IR form.
class Procedure {
public:
  Procedure(Module *Parent, std::string Name)
      : Parent(Parent), Name(std::move(Name)) {}

  Module *getModule() const { return Parent; }
  const std::string &getName() const { return Name; }
  void setName(std::string NewName) { Name = std::move(NewName); }

  /// Dense position in the owning module's procedure list.
  uint32_t getModuleIndex() const { return ModuleIndex; }

  //===--------------------------------------------------------------------===
  // Blocks
  //===--------------------------------------------------------------------===

  /// Creates and appends a new block.
  BasicBlock *createBlock(std::string BlockName);

  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }

  BasicBlock *getEntryBlock() const {
    return Blocks.empty() ? nullptr : Blocks.front().get();
  }

  BasicBlock *getExitBlock() const { return ExitBlock; }
  void setExitBlock(BasicBlock *BB) { ExitBlock = BB; }

  /// Destroys \p BB (must have no predecessors left). Instructions inside
  /// are destroyed with it.
  void eraseBlock(BasicBlock *BB);

  /// Deletes blocks unreachable from the entry, fixing predecessor lists
  /// and phis. Returns the number of blocks removed.
  unsigned removeUnreachableBlocks();

  //===--------------------------------------------------------------------===
  // Variables
  //===--------------------------------------------------------------------===

  /// Appends a formal parameter (in positional order).
  Variable *addFormal(const std::string &VarName);

  /// Adds a scalar or array local.
  Variable *addLocal(const std::string &VarName, ConstantValue ArraySize = 0);

  const std::vector<Variable *> &formals() const { return Formals; }
  const std::vector<Variable *> &locals() const { return Locals; }

  /// Looks up a formal or local by name (globals live in the Module).
  Variable *findVariable(const std::string &VarName) const;

  /// The canonical "value of \p Var on entry" SSA object.
  EntryValue *getEntryValue(Variable *Var);

  //===--------------------------------------------------------------------===
  // Misc
  //===--------------------------------------------------------------------===

  unsigned getNumFormals() const { return Formals.size(); }

  /// Number of instructions across all blocks.
  unsigned instructionCount() const;

  /// Collects every CallInst in block order.
  std::vector<CallInst *> callSites() const;

  //===--------------------------------------------------------------------===
  // Flat instruction stream
  //===--------------------------------------------------------------------===

  /// The procedure's instructions laid out as one contiguous array in
  /// block order, with each block's instructions addressed as an index
  /// span. Rebuilt lazily after any CFG or instruction-list mutation;
  /// building it also assigns Instruction::getLocalIdx() and
  /// BasicBlock::getDensePos(), so analyses index dense side tables
  /// instead of pointer-keyed hash maps.
  struct InstStream {
    struct Span {
      uint32_t Begin = 0;
      uint32_t End = 0;
    };
    std::vector<Instruction *> Insts; ///< all instructions, block order
    std::vector<Span> Spans;          ///< per-block [Begin, End) into Insts

    size_t size() const { return Insts.size(); }
    size_t numBlocks() const { return Spans.size(); }
  };

  /// Materializes (or returns the cached) flat stream. Iteration over
  /// Insts visits every instruction exactly once in block order.
  const InstStream &instStream() const;

  /// Marks the cached stream stale; called by every block/instruction
  /// mutator. Dense indices remain readable but must not be trusted until
  /// instStream() runs again.
  void invalidateInstStream() { StreamValid = false; }

private:
  friend class Module; // clone support

  Module *Parent;
  std::string Name;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  BasicBlock *ExitBlock = nullptr;
  std::vector<Variable *> Formals;
  std::vector<Variable *> Locals;
  std::vector<std::unique_ptr<Variable>> OwnedVars;
  std::unordered_map<Variable *, std::unique_ptr<EntryValue>> EntryValues;
  unsigned NextBlockId = 0;
  uint32_t ModuleIndex = 0;
  mutable InstStream Stream;
  mutable bool StreamValid = false;
};

} // namespace ipcp

#endif // IPCP_IR_PROCEDURE_H
