//===- analysis/Traversal.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Traversal.h"

#include <algorithm>
#include <unordered_set>

using namespace ipcp;

std::vector<BasicBlock *> ipcp::postOrder(const Procedure &P) {
  std::vector<BasicBlock *> Order;
  if (P.blocks().empty())
    return Order;

  // Iterative DFS with an explicit stack of (block, next-successor-index).
  std::unordered_set<BasicBlock *> Visited;
  std::vector<std::pair<BasicBlock *, size_t>> Stack;
  BasicBlock *Entry = P.getEntryBlock();
  Visited.insert(Entry);
  Stack.push_back({Entry, 0});
  while (!Stack.empty()) {
    auto &[BB, NextIdx] = Stack.back();
    std::vector<BasicBlock *> Succs = BB->successors();
    if (NextIdx >= Succs.size()) {
      Order.push_back(BB);
      Stack.pop_back();
      continue;
    }
    BasicBlock *Succ = Succs[NextIdx++];
    if (Visited.insert(Succ).second)
      Stack.push_back({Succ, 0});
  }
  return Order;
}

std::vector<BasicBlock *> ipcp::reversePostOrder(const Procedure &P) {
  std::vector<BasicBlock *> Order = postOrder(P);
  std::reverse(Order.begin(), Order.end());
  return Order;
}
