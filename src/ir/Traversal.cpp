//===- analysis/Traversal.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Traversal.h"

#include <algorithm>

using namespace ipcp;

std::vector<BasicBlock *> ipcp::postOrder(const Procedure &P) {
  std::vector<BasicBlock *> Order;
  if (P.blocks().empty())
    return Order;

  // Materializing the stream assigns dense block positions, letting the
  // DFS keep its visited set in a flat bitmap instead of a hash set.
  const Procedure::InstStream &Stream = P.instStream();
  std::vector<char> Visited(Stream.numBlocks(), 0);
  Order.reserve(Stream.numBlocks());

  // Iterative DFS with an explicit stack of (block, next-successor-index).
  std::vector<std::pair<BasicBlock *, unsigned>> Stack;
  BasicBlock *Entry = P.getEntryBlock();
  Visited[Entry->getDensePos()] = 1;
  Stack.push_back({Entry, 0});
  while (!Stack.empty()) {
    auto &[BB, NextIdx] = Stack.back();
    if (NextIdx >= BB->getNumSuccessors()) {
      Order.push_back(BB);
      Stack.pop_back();
      continue;
    }
    BasicBlock *Succ = BB->getSuccessor(NextIdx++);
    if (!Visited[Succ->getDensePos()]) {
      Visited[Succ->getDensePos()] = 1;
      Stack.push_back({Succ, 0});
    }
  }
  return Order;
}

std::vector<BasicBlock *> ipcp::reversePostOrder(const Procedure &P) {
  std::vector<BasicBlock *> Order = postOrder(P);
  std::reverse(Order.begin(), Order.end());
  return Order;
}
