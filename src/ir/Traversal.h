//===- ir/Traversal.h - CFG orderings ---------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reverse-postorder and postorder walks over the reachable CFG of a
/// procedure, used by the dominator computation and the dataflow passes.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_TRAVERSAL_H
#define IPCP_IR_TRAVERSAL_H

#include "ir/Procedure.h"

#include <vector>

namespace ipcp {

/// Reachable blocks in postorder (entry last).
std::vector<BasicBlock *> postOrder(const Procedure &P);

/// Reachable blocks in reverse postorder (entry first).
std::vector<BasicBlock *> reversePostOrder(const Procedure &P);

} // namespace ipcp

#endif // IPCP_IR_TRAVERSAL_H
