//===- ir/Value.h - SSA value hierarchy -------------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Value hierarchy. A Value is anything an instruction operand can
/// name: integer constants, the entry value of a formal/global, an undef
/// placeholder, or a value-producing instruction. Dispatch uses a single
/// ValueKind enum and the LLVM-style casting templates.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_VALUE_H
#define IPCP_IR_VALUE_H

#include "ir/Variable.h"
#include "support/Casting.h"
#include "support/ConstantMath.h"

#include <cstdint>

namespace ipcp {

/// Discriminator for the whole Value hierarchy (constants and
/// instructions). Instruction kinds are a contiguous sub-range.
enum class ValueKind {
  ConstantInt,
  EntryValue,
  Undef,
  // --- value-producing instructions ---
  FirstInst,
  Binary = FirstInst,
  Unary,
  Load,
  ArrayLoad,
  Read,
  Phi,
  CallOut,
  // --- side-effect / control instructions (produce no value) ---
  Store,
  ArrayStore,
  Print,
  Call,
  Branch,
  CondBranch,
  Ret,
  LastInst = Ret,
};

/// Root of the value hierarchy.
class Value {
public:
  ValueKind getKind() const { return TheKind; }

  bool isInstruction() const {
    return TheKind >= ValueKind::FirstInst && TheKind <= ValueKind::LastInst;
  }

  /// True when this value may appear as an operand (constants, entry
  /// values, undef, and value-producing instructions).
  bool producesValue() const {
    return TheKind < ValueKind::Store;
  }

protected:
  explicit Value(ValueKind TheKind) : TheKind(TheKind) {}
  ~Value() = default; // not deleted polymorphically through Value*

private:
  ValueKind TheKind;
};

/// A uniqued integer constant; obtained via Module::getConstant.
class ConstantInt : public Value {
public:
  explicit ConstantInt(ConstantValue V)
      : Value(ValueKind::ConstantInt), V(V) {}

  ConstantValue getValue() const { return V; }

  static bool classof(const Value *Val) {
    return Val->getKind() == ValueKind::ConstantInt;
  }

private:
  ConstantValue V;
};

/// The SSA name for "the value variable X holds on entry to procedure P".
/// These are the unknowns that jump functions range over: the support of
/// a jump function is a set of EntryValues. One exists per (procedure,
/// promoted scalar); obtained via Procedure::getEntryValue.
class EntryValue : public Value {
public:
  explicit EntryValue(Variable *Var)
      : Value(ValueKind::EntryValue), Var(Var) {}

  Variable *getVariable() const { return Var; }

  static bool classof(const Value *Val) {
    return Val->getKind() == ValueKind::EntryValue;
  }

private:
  Variable *Var;
};

/// Placeholder for a value on a path where no definition reaches. MiniFort
/// zero-initializes every location, so well-formed lowering never leaves
/// undef reachable; it exists as a defensive backstop for the verifier.
class UndefValue : public Value {
public:
  UndefValue() : Value(ValueKind::Undef) {}

  static bool classof(const Value *Val) {
    return Val->getKind() == ValueKind::Undef;
  }
};

} // namespace ipcp

#endif // IPCP_IR_VALUE_H
