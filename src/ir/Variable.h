//===- ir/Variable.h - Named storage locations ------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Variable is a named storage location: a global (COMMON-like), a formal
/// parameter (a by-reference cell), a procedure local, or an array of any
/// of those. Pre-SSA IR reads and writes variables through Load/Store
/// instructions; SSA construction promotes scalar variables to SSA values.
///
/// Variables carry module-unique IDs that deep-cloning preserves, so
/// analysis facts computed on a clone can be mapped back to the original.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_VARIABLE_H
#define IPCP_IR_VARIABLE_H

#include "support/ConstantMath.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace ipcp {

class Procedure;

/// A named storage location in a MiniFort program.
class Variable {
public:
  enum class Kind {
    Global,      ///< shared scalar, zero-initialized
    GlobalArray, ///< shared array, zero-initialized
    Formal,      ///< by-reference parameter cell
    Local,       ///< procedure-scoped scalar, zero-initialized
    LocalArray,  ///< procedure-scoped array, zero-initialized
  };

  Variable(uint64_t Id, Kind TheKind, std::string Name, Procedure *Parent,
           unsigned FormalIndex = 0, ConstantValue ArraySize = 0)
      : Id(Id), TheKind(TheKind), Name(std::move(Name)), Parent(Parent),
        FormalIndex(FormalIndex), ArraySize(ArraySize) {}

  uint64_t getId() const { return Id; }
  /// Used only by Module::clone to preserve IDs across deep copies.
  void setId(uint64_t NewId) { Id = NewId; }
  Kind getKind() const { return TheKind; }
  const std::string &getName() const { return Name; }

  /// The owning procedure; null for globals.
  Procedure *getParent() const { return Parent; }

  bool isGlobal() const {
    return TheKind == Kind::Global || TheKind == Kind::GlobalArray;
  }
  bool isFormal() const { return TheKind == Kind::Formal; }
  bool isLocal() const {
    return TheKind == Kind::Local || TheKind == Kind::LocalArray;
  }
  bool isArray() const {
    return TheKind == Kind::GlobalArray || TheKind == Kind::LocalArray;
  }
  /// Scalars are candidates for SSA promotion and constant propagation.
  bool isScalar() const { return !isArray(); }

  /// Position in the owning procedure's parameter list (formals only).
  unsigned getFormalIndex() const { return FormalIndex; }

  /// Declared extent (arrays only).
  ConstantValue getArraySize() const { return ArraySize; }

private:
  uint64_t Id;
  Kind TheKind;
  std::string Name;
  Procedure *Parent;
  unsigned FormalIndex;
  ConstantValue ArraySize;
};

/// Deterministic variable ordering (by clone-stable ID). Analyses iterate
/// variable sets; ordering them by ID keeps every run reproducible.
struct VariableIdLess {
  bool operator()(const Variable *A, const Variable *B) const {
    return A->getId() < B->getId();
  }
};

/// An ID-ordered set of variables, backed by a sorted flat vector: the
/// sets are small (a procedure's referenced globals, a call's kills) and
/// hot loops iterate them, so contiguity beats the red-black tree this
/// replaces. Iteration order remains ID order, keeping runs reproducible.
class VariableSet {
public:
  using const_iterator = std::vector<Variable *>::const_iterator;

  std::pair<const_iterator, bool> insert(Variable *V) {
    auto It = std::lower_bound(Items.begin(), Items.end(), V,
                               VariableIdLess());
    if (It != Items.end() && *It == V)
      return {It, false};
    return {Items.insert(It, V), true};
  }

  size_t count(const Variable *V) const {
    return std::binary_search(Items.begin(), Items.end(),
                              const_cast<Variable *>(V), VariableIdLess())
               ? 1
               : 0;
  }

  const_iterator begin() const { return Items.begin(); }
  const_iterator end() const { return Items.end(); }
  size_t size() const { return Items.size(); }
  bool empty() const { return Items.empty(); }

private:
  std::vector<Variable *> Items;
};

} // namespace ipcp

#endif // IPCP_IR_VARIABLE_H
