//===- ir/Verifier.cpp ----------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/Dominators.h"
#include "ir/IRPrinter.h"
#include "support/Casting.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_set>

using namespace ipcp;

namespace {

/// Accumulates violations for one procedure.
class ProcVerifier {
public:
  ProcVerifier(const Procedure &P, VerifyMode Mode,
               std::vector<std::string> &Errors)
      : P(P), Mode(Mode), Errors(Errors) {}

  void run();

private:
  void report(const std::string &Message) {
    Errors.push_back("proc '" + P.getName() + "': " + Message);
  }

  void checkBlockStructure(const BasicBlock &BB);
  void checkEdges();
  void checkReachability();
  void checkRet();
  void checkInstruction(const Instruction &Inst);
  void checkOperandDominance();

  const Procedure &P;
  VerifyMode Mode;
  std::vector<std::string> &Errors;
};

} // namespace

void ProcVerifier::checkBlockStructure(const BasicBlock &BB) {
  if (BB.empty()) {
    report("block '" + BB.getName() + "' is empty");
    return;
  }
  unsigned Terminators = 0;
  bool SeenNonPhi = false;
  for (const std::unique_ptr<Instruction> &Inst : BB.instructions()) {
    if (Inst->isTerminator())
      ++Terminators;
    if (isa<PhiInst>(Inst.get())) {
      if (SeenNonPhi)
        report("phi after non-phi in block '" + BB.getName() + "'");
    } else {
      SeenNonPhi = true;
    }
    if (Inst->getParent() != &BB)
      report("instruction %" + std::to_string(Inst->getId()) +
             " has a stale parent pointer");
  }
  if (Terminators != 1)
    report("block '" + BB.getName() + "' has " + std::to_string(Terminators) +
           " terminators");
  else if (!BB.instructions().back()->isTerminator())
    report("terminator is not last in block '" + BB.getName() + "'");
}

void ProcVerifier::checkEdges() {
  // Successor edges, counted per (from, to) pair, must equal predecessor
  // list entries.
  std::map<std::pair<const BasicBlock *, const BasicBlock *>, int> EdgeCount;
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    for (BasicBlock *Succ : BB->successors())
      ++EdgeCount[{BB.get(), Succ}];
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    for (BasicBlock *Pred : BB->predecessors())
      --EdgeCount[{Pred, BB.get()}];
  for (const auto &[Edge, Count] : EdgeCount)
    if (Count != 0)
      report("edge " + Edge.first->getName() + " -> " +
             Edge.second->getName() + " has inconsistent pred/succ lists");

  // Phis: incoming blocks must match predecessors as multisets.
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks()) {
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
      const auto *Phi = dyn_cast<PhiInst>(Inst.get());
      if (!Phi)
        break;
      std::vector<const BasicBlock *> Incoming, Preds;
      for (unsigned I = 0, E = Phi->getNumIncoming(); I != E; ++I)
        Incoming.push_back(Phi->getIncomingBlock(I));
      for (const BasicBlock *Pred : BB->predecessors())
        Preds.push_back(Pred);
      std::sort(Incoming.begin(), Incoming.end());
      std::sort(Preds.begin(), Preds.end());
      if (Incoming != Preds)
        report("phi %" + std::to_string(Phi->getId()) +
               " incoming blocks disagree with predecessors of '" +
               BB->getName() + "'");
    }
  }
}

void ProcVerifier::checkReachability() {
  if (P.blocks().empty()) {
    report("procedure has no blocks");
    return;
  }
  std::unordered_set<const BasicBlock *> Reachable;
  std::deque<const BasicBlock *> Queue{P.getEntryBlock()};
  Reachable.insert(P.getEntryBlock());
  while (!Queue.empty()) {
    const BasicBlock *BB = Queue.front();
    Queue.pop_front();
    for (BasicBlock *Succ : BB->successors())
      if (Reachable.insert(Succ).second)
        Queue.push_back(Succ);
  }
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    if (!Reachable.count(BB.get()))
      report("block '" + BB->getName() + "' is unreachable");
}

void ProcVerifier::checkRet() {
  unsigned Rets = 0;
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      if (isa<RetInst>(Inst.get())) {
        ++Rets;
        if (BB.get() != P.getExitBlock())
          report("ret outside the designated exit block");
      }
  if (P.getExitBlock()) {
    if (Rets != 1)
      report("expected exactly one ret, found " + std::to_string(Rets));
  } else if (Rets != 0) {
    report("procedure has rets but no designated exit block");
  }
}

void ProcVerifier::checkInstruction(const Instruction &Inst) {
  for (Value *Op : Inst.operands()) {
    if (!Op) {
      report("null operand in %" + std::to_string(Inst.getId()));
      continue;
    }
    if (!Op->producesValue())
      report("operand of %" + std::to_string(Inst.getId()) +
             " does not produce a value");
    if (const auto *Entry = dyn_cast<EntryValue>(Op)) {
      const Variable *Var = Entry->getVariable();
      if (!Var->isGlobal() && Var->getParent() != &P)
        report("entry value of foreign variable '" + Var->getName() +
               "' used in %" + std::to_string(Inst.getId()));
    }
  }

  if (const auto *Call = dyn_cast<CallInst>(&Inst)) {
    if (Call->getNumActuals() != Call->getCallee()->getNumFormals())
      report("call %" + std::to_string(Call->getId()) + " passes " +
             std::to_string(Call->getNumActuals()) + " actuals to '" +
             Call->getCallee()->getName() + "' which takes " +
             std::to_string(Call->getCallee()->getNumFormals()));
    for (unsigned I = 0, E = Call->getNumActuals(); I != E; ++I) {
      const CallActual &A = Call->getActual(I);
      if (A.ByRefLoc && !A.ByRefLoc->isScalar())
        report("by-ref actual " + std::to_string(I) + " of call %" +
               std::to_string(Call->getId()) + " is not a scalar");
    }
  }

  // Scalar loads/stores only ever name scalars (constructor invariant).
  if (Mode == VerifyMode::SSA && isa<LoadInst, StoreInst>(&Inst))
    report("scalar load/store %" + std::to_string(Inst.getId()) +
           " present in SSA form");
  if (Mode == VerifyMode::PreSSA && isa<PhiInst, CallOutInst>(&Inst))
    report("phi/callout %" + std::to_string(Inst.getId()) +
           " present in pre-SSA form");
}

void ProcVerifier::checkOperandDominance() {
  // Pre-SSA discipline: the definition of any instruction-valued operand
  // must dominate its use — same block and earlier, or in a strictly
  // dominating block. (Lowering produces this; splitting transforms like
  // the inliner preserve it even though block-vector order changes.)
  if (P.blocks().empty())
    return;
  DominatorTree DT(P);

  // Position of each instruction within its block for same-block checks.
  std::unordered_map<const Instruction *, unsigned> Position;
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks()) {
    unsigned Index = 0;
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      Position[Inst.get()] = Index++;
  }

  for (const std::unique_ptr<BasicBlock> &BB : P.blocks()) {
    if (!DT.isReachable(BB.get()))
      continue;
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions()) {
      for (Value *Op : Inst->operands()) {
        auto *Def = dyn_cast_or_null<Instruction>(Op);
        if (!Def)
          continue;
        BasicBlock *DefBB = Def->getParent();
        bool Dominates;
        if (!DefBB || !DT.isReachable(DefBB))
          Dominates = false;
        else if (DefBB == BB.get())
          Dominates = Position[Def] < Position[Inst.get()];
        else
          Dominates = DT.dominates(DefBB, BB.get());
        if (!Dominates)
          report("operand %" + std::to_string(Def->getId()) + " of %" +
                 std::to_string(Inst->getId()) +
                 " does not dominate its use");
      }
    }
  }
}

void ProcVerifier::run() {
  size_t ErrorsBefore = Errors.size();
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    checkBlockStructure(*BB);
  checkEdges();
  checkReachability();
  checkRet();
  for (const std::unique_ptr<BasicBlock> &BB : P.blocks())
    for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
      checkInstruction(*Inst);
  // Dominance is only meaningful over a structurally sound CFG (the
  // dominator computation itself asserts on inconsistent edges).
  if (Mode == VerifyMode::PreSSA && Errors.size() == ErrorsBefore)
    checkOperandDominance();
}

void ipcp::verifyProcedure(const Procedure &P, VerifyMode Mode,
                           std::vector<std::string> &Errors) {
  ProcVerifier(P, Mode, Errors).run();
}

std::vector<std::string> ipcp::verifyModule(const Module &M, VerifyMode Mode) {
  std::vector<std::string> Errors;
  for (const std::unique_ptr<Procedure> &P : M.procedures())
    verifyProcedure(*P, Mode, Errors);
  return Errors;
}
