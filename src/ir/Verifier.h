//===- ir/Verifier.h - IR well-formedness checks ----------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural invariant checker for the IR, run by tests after lowering,
/// after SSA construction, and after every transform. Returns a list of
/// violation messages (empty means well-formed) rather than asserting, so
/// tests can report precisely what broke.
///
/// Checked in both modes:
///  - every block ends in exactly one terminator, which is its last
///    instruction, and contains no other terminator;
///  - predecessor lists exactly mirror successor edges (as multisets);
///  - all blocks are reachable from the entry;
///  - exactly one Ret, located in the designated exit block;
///  - call arity matches the callee, and by-ref actuals are scalars;
///  - phis appear only at the top of a block; their incoming blocks match
///    the predecessor list (as multisets).
///
/// Pre-SSA mode additionally requires the absence of Phi/CallOut and that
/// instruction operands are defined earlier in the block-order walk (the
/// def-before-use discipline Module::clone relies on).
///
/// SSA mode additionally requires the absence of scalar Load/Store and
/// that non-phi operand definitions are in scope.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_IR_VERIFIER_H
#define IPCP_IR_VERIFIER_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace ipcp {

/// Which invariant family to check.
enum class VerifyMode { PreSSA, SSA };

/// Verifies one procedure; appends human-readable violations.
void verifyProcedure(const Procedure &P, VerifyMode Mode,
                     std::vector<std::string> &Errors);

/// Verifies the whole module; returns all violations.
std::vector<std::string> verifyModule(const Module &M, VerifyMode Mode);

} // namespace ipcp

#endif // IPCP_IR_VERIFIER_H
