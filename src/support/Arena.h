//===- support/Arena.h - Bump-pointer allocation ----------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A chunked bump allocator for the data-oriented core (docs/PERFORMANCE.md,
/// "Memory layout"). Objects allocated back-to-back from one Arena are
/// contiguous in allocation order, so consumers that walk them in that
/// order (the flat instruction stream, the SymExpr node table) touch
/// memory linearly instead of pointer-chasing a heap of individual
/// allocations.
///
/// The arena never frees individual objects: memory is reclaimed all at
/// once by reset() or destruction. Destructors are NOT run — only use
/// create<T>() for trivially destructible types, or arrange for the owner
/// to destroy objects explicitly before the arena dies (Procedure does
/// this for instructions, whose operand vectors own heap memory).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_ARENA_H
#define IPCP_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace ipcp {

/// A chunked bump allocator. Allocation is a pointer bump in the common
/// case; chunks grow geometrically up to MaxChunkBytes so large arenas
/// amortize to O(log n) mallocs total.
class Arena {
public:
  explicit Arena(size_t FirstChunkBytes = 4096,
                 size_t MaxChunkBytes = 256 * 1024)
      : NextChunkBytes(FirstChunkBytes ? FirstChunkBytes : 4096),
        MaxChunkBytes(MaxChunkBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;
  Arena(Arena &&) = default;
  Arena &operator=(Arena &&) = default;

  /// Returns \p Size bytes aligned to \p Align (a power of two).
  void *allocate(size_t Size, size_t Align = alignof(std::max_align_t)) {
    assert(Align != 0 && (Align & (Align - 1)) == 0 &&
           "alignment must be a power of two");
    uintptr_t P = (Cur + (Align - 1)) & ~uintptr_t(Align - 1);
    if (P + Size > End) {
      grow(Size + Align);
      P = (Cur + (Align - 1)) & ~uintptr_t(Align - 1);
    }
    Cur = P + Size;
    Allocated += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Constructs a T in the arena. The destructor is never run by the
  /// arena itself — see the file comment.
  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    return ::new (allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(CtorArgs)...);
  }

  /// Drops every allocation but keeps the first chunk for reuse, so a
  /// reset-and-refill cycle (one analysis request) settles into zero
  /// mallocs.
  void reset() {
    if (Chunks.size() > 1)
      Chunks.resize(1);
    if (!Chunks.empty()) {
      Cur = reinterpret_cast<uintptr_t>(Chunks.front().Data.get());
      End = Cur + Chunks.front().Bytes;
    } else {
      Cur = End = 0;
    }
    Allocated = 0;
  }

  /// Total payload bytes handed out since construction or reset().
  size_t bytesAllocated() const { return Allocated; }

  /// Chunks currently owned (1 after reset unless empty).
  size_t chunkCount() const { return Chunks.size(); }

private:
  struct Chunk {
    std::unique_ptr<std::byte[]> Data;
    size_t Bytes = 0;
  };

  void grow(size_t AtLeast) {
    size_t Bytes = NextChunkBytes;
    while (Bytes < AtLeast)
      Bytes *= 2;
    if (NextChunkBytes < MaxChunkBytes)
      NextChunkBytes = std::min(NextChunkBytes * 2, MaxChunkBytes);
    Chunk C;
    C.Data = std::make_unique<std::byte[]>(Bytes);
    C.Bytes = Bytes;
    Cur = reinterpret_cast<uintptr_t>(C.Data.get());
    End = Cur + Bytes;
    Chunks.push_back(std::move(C));
  }

  std::vector<Chunk> Chunks;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t Allocated = 0;
  size_t NextChunkBytes;
  size_t MaxChunkBytes;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_ARENA_H
