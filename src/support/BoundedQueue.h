//===- support/BoundedQueue.h - Service queue primitives --------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two queue primitives behind the analysis daemon's concurrency
/// story (docs/SERVICE.md):
///
///  * AdmissionGate — a bounded in-flight counter giving the request
///    queue explicit backpressure: admission either succeeds immediately
///    or fails immediately (the caller answers `busy`), it never blocks,
///    so one pathological program can saturate the workers but can never
///    stall the accept loop or grow an unbounded backlog.
///
///  * OrderedResultQueue — a sequence-numbered reorder buffer between
///    concurrent producers and one consumer. Producers complete in any
///    order; the consumer receives results strictly in sequence order,
///    which is what makes concurrent service responses deterministic and
///    byte-comparable against serial runs.
///
/// Both are small, mutex-based, and header-only; the daemon's throughput
/// is bounded by whole-program analyses, not by queue operations.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_BOUNDEDQUEUE_H
#define IPCP_SUPPORT_BOUNDEDQUEUE_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

namespace ipcp {

/// Bounded in-flight work counter with non-blocking admission.
class AdmissionGate {
public:
  /// \p Limit is the maximum admitted-but-unfinished work items; zero
  /// admits nothing (every tryAcquire fails — the backpressure tests
  /// drive this).
  explicit AdmissionGate(size_t Limit) : Limit(Limit) {}

  /// Admits \p N items if they fit within the limit; never blocks.
  bool tryAcquire(size_t N = 1) {
    std::lock_guard<std::mutex> Lock(Mutex);
    if (InFlightCount + N > Limit)
      return false;
    InFlightCount += N;
    return true;
  }

  /// Returns \p N previously admitted items.
  void release(size_t N = 1) {
    std::lock_guard<std::mutex> Lock(Mutex);
    InFlightCount -= N <= InFlightCount ? N : InFlightCount;
  }

  size_t inFlight() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return InFlightCount;
  }

  size_t limit() const { return Limit; }

private:
  mutable std::mutex Mutex;
  size_t Limit;
  size_t InFlightCount = 0;
};

/// Reorder buffer: push(Seq, Value) from any thread, pop() delivers
/// values in ascending Seq order (0, 1, 2, ...) to one consumer.
///
/// The buffer is bounded: a push that would grow it past \p MaxBuffered
/// out-of-order entries blocks the producing worker until the consumer
/// drains, so a slow reader of the response stream exerts backpressure
/// on the workers instead of growing an unbounded reorder map. The
/// next-in-order result is always admitted regardless of the bound —
/// otherwise a full buffer of later results could deadlock waiting for
/// the one entry that would let the consumer advance.
template <typename T> class OrderedResultQueue {
public:
  /// \p MaxBuffered caps buffered results; 0 means unbounded.
  explicit OrderedResultQueue(size_t MaxBuffered = 0)
      : MaxBuffered(MaxBuffered) {}

  /// Publishes the result for \p Seq. Every sequence number must be
  /// pushed exactly once. May block while the buffer is full (see class
  /// comment); never blocks for the in-order sequence number.
  void push(uint64_t Seq, T Value) {
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Available.wait(Lock, [&] {
        return MaxBuffered == 0 || Seq == Next || Ready.size() < MaxBuffered ||
               Closed;
      });
      Ready.emplace(Seq, std::move(Value));
      if (Ready.size() > PeakBuffered)
        PeakBuffered = Ready.size();
    }
    Available.notify_all();
  }

  /// High-water mark of buffered (not yet consumed) results.
  size_t peakBuffered() const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return PeakBuffered;
  }

  /// Blocks until the next-in-order result exists (or the queue is
  /// closed and drained). Returns false only when closed and drained.
  bool pop(T &Out) {
    std::unique_lock<std::mutex> Lock(Mutex);
    Available.wait(Lock, [&] {
      return Ready.count(Next) != 0 || (Closed && Ready.empty());
    });
    auto It = Ready.find(Next);
    if (It == Ready.end())
      return false;
    Out = std::move(It->second);
    Ready.erase(It);
    ++Next;
    Lock.unlock();
    Available.notify_all();
    return true;
  }

  /// Marks the stream complete. Call only after every admitted sequence
  /// number has been pushed (the daemon drains its pool first).
  void close() {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Closed = true;
    }
    Available.notify_all();
  }

private:
  mutable std::mutex Mutex;
  std::condition_variable Available;
  std::map<uint64_t, T> Ready;
  size_t MaxBuffered;
  size_t PeakBuffered = 0;
  uint64_t Next = 0;
  bool Closed = false;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_BOUNDEDQUEUE_H
