//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++ -*-===//
//
// Part of the ipcp project: a reproduction of jump-function interprocedural
// constant propagation (Callahan, Cooper, Kennedy, Torczon, SIGPLAN '86).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal reimplementation of the LLVM casting machinery (isa<>, cast<>,
/// dyn_cast<> and the *_or_null variants) driven by a static `classof`
/// member on each class in a hierarchy. This lets the IR and jump-function
/// hierarchies dispatch on a Kind enum without C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_CASTING_H
#define IPCP_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace ipcp {

/// Returns true if \p Val is an instance of type To (or a subclass).
///
/// Every class participating in a hierarchy must define
/// `static bool classof(const Base *)`.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Variadic isa: true if \p Val is any of the listed types.
template <typename To, typename Second, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<Second, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null if \p Val is not a To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates (and returns false for) null pointers.
template <typename To, typename From> bool isa_and_nonnull(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates (and propagates) null pointers.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<To *>(Val) : nullptr;
}

/// Like dyn_cast<>, const overload tolerating null.
template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return (Val && isa<To>(Val)) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace ipcp

#endif // IPCP_SUPPORT_CASTING_H
