//===- support/ConstantMath.cpp -------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/ConstantMath.h"

#include <limits>

using namespace ipcp;

const char *ipcp::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "%";
  case BinaryOp::CmpEq:
    return "==";
  case BinaryOp::CmpNe:
    return "!=";
  case BinaryOp::CmpLt:
    return "<";
  case BinaryOp::CmpLe:
    return "<=";
  case BinaryOp::CmpGt:
    return ">";
  case BinaryOp::CmpGe:
    return ">=";
  }
  return "?";
}

const char *ipcp::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::Not:
    return "!";
  }
  return "?";
}

bool ipcp::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::CmpEq:
  case BinaryOp::CmpNe:
  case BinaryOp::CmpLt:
  case BinaryOp::CmpLe:
  case BinaryOp::CmpGt:
  case BinaryOp::CmpGe:
    return true;
  default:
    return false;
  }
}

bool ipcp::isCommutativeOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Mul:
  case BinaryOp::CmpEq:
  case BinaryOp::CmpNe:
    return true;
  default:
    return false;
  }
}

std::optional<ConstantValue> ipcp::checkedAdd(ConstantValue L,
                                              ConstantValue R) {
  ConstantValue Result;
  if (__builtin_add_overflow(L, R, &Result))
    return std::nullopt;
  return Result;
}

std::optional<ConstantValue> ipcp::checkedSub(ConstantValue L,
                                              ConstantValue R) {
  ConstantValue Result;
  if (__builtin_sub_overflow(L, R, &Result))
    return std::nullopt;
  return Result;
}

std::optional<ConstantValue> ipcp::checkedMul(ConstantValue L,
                                              ConstantValue R) {
  ConstantValue Result;
  if (__builtin_mul_overflow(L, R, &Result))
    return std::nullopt;
  return Result;
}

std::optional<ConstantValue> ipcp::checkedDiv(ConstantValue L,
                                              ConstantValue R) {
  if (R == 0)
    return std::nullopt;
  if (L == std::numeric_limits<ConstantValue>::min() && R == -1)
    return std::nullopt;
  return L / R;
}

std::optional<ConstantValue> ipcp::checkedRem(ConstantValue L,
                                              ConstantValue R) {
  if (R == 0)
    return std::nullopt;
  if (L == std::numeric_limits<ConstantValue>::min() && R == -1)
    return std::nullopt;
  return L % R;
}

std::optional<ConstantValue> ipcp::checkedNeg(ConstantValue V) {
  if (V == std::numeric_limits<ConstantValue>::min())
    return std::nullopt;
  return -V;
}

std::optional<ConstantValue> ipcp::foldBinary(BinaryOp Op, ConstantValue L,
                                              ConstantValue R) {
  switch (Op) {
  case BinaryOp::Add:
    return checkedAdd(L, R);
  case BinaryOp::Sub:
    return checkedSub(L, R);
  case BinaryOp::Mul:
    return checkedMul(L, R);
  case BinaryOp::Div:
    return checkedDiv(L, R);
  case BinaryOp::Mod:
    return checkedRem(L, R);
  case BinaryOp::CmpEq:
    return ConstantValue(L == R);
  case BinaryOp::CmpNe:
    return ConstantValue(L != R);
  case BinaryOp::CmpLt:
    return ConstantValue(L < R);
  case BinaryOp::CmpLe:
    return ConstantValue(L <= R);
  case BinaryOp::CmpGt:
    return ConstantValue(L > R);
  case BinaryOp::CmpGe:
    return ConstantValue(L >= R);
  }
  return std::nullopt;
}

std::optional<ConstantValue> ipcp::foldUnary(UnaryOp Op, ConstantValue V) {
  switch (Op) {
  case UnaryOp::Neg:
    return checkedNeg(V);
  case UnaryOp::Not:
    return ConstantValue(V == 0);
  }
  return std::nullopt;
}
