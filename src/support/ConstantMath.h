//===- support/ConstantMath.h - Checked integer folding ---------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Overflow-checked 64-bit integer arithmetic used everywhere the analysis
/// folds constants (value numbering, SCCP, jump-function evaluation). An
/// operation that would overflow, divide by zero, or otherwise not produce
/// a well-defined compile-time value returns nullopt, which callers must
/// treat as lattice bottom: it is always sound to decline to fold.
///
/// Division and modulus fold with C++ (truncating) semantics, matching the
/// MiniFort interpreter, so folded results agree with execution.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_CONSTANTMATH_H
#define IPCP_SUPPORT_CONSTANTMATH_H

#include <cstdint>
#include <optional>

namespace ipcp {

/// The integer type of every MiniFort scalar value.
using ConstantValue = int64_t;

/// Binary operators shared by the AST, the IR, and jump functions.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
};

/// Unary operators.
enum class UnaryOp { Neg, Not };

/// Returns a printable spelling ("+", "<=", ...) for \p Op.
const char *binaryOpSpelling(BinaryOp Op);

/// Returns a printable spelling ("-", "!") for \p Op.
const char *unaryOpSpelling(UnaryOp Op);

/// True for the six comparison operators (which produce 0 or 1).
bool isComparisonOp(BinaryOp Op);

/// True for +, *, and the symmetric comparisons == and !=.
bool isCommutativeOp(BinaryOp Op);

/// Folds L + R; nullopt on signed overflow.
std::optional<ConstantValue> checkedAdd(ConstantValue L, ConstantValue R);

/// Folds L - R; nullopt on signed overflow.
std::optional<ConstantValue> checkedSub(ConstantValue L, ConstantValue R);

/// Folds L * R; nullopt on signed overflow.
std::optional<ConstantValue> checkedMul(ConstantValue L, ConstantValue R);

/// Folds L / R (truncating); nullopt when R==0 or INT64_MIN / -1.
std::optional<ConstantValue> checkedDiv(ConstantValue L, ConstantValue R);

/// Folds L % R (C++ semantics); nullopt when R==0 or INT64_MIN % -1.
std::optional<ConstantValue> checkedRem(ConstantValue L, ConstantValue R);

/// Folds -V; nullopt for INT64_MIN.
std::optional<ConstantValue> checkedNeg(ConstantValue V);

/// Folds any binary operator; comparisons yield 0 or 1.
std::optional<ConstantValue> foldBinary(BinaryOp Op, ConstantValue L,
                                        ConstantValue R);

/// Folds any unary operator.
std::optional<ConstantValue> foldUnary(UnaryOp Op, ConstantValue V);

} // namespace ipcp

#endif // IPCP_SUPPORT_CONSTANTMATH_H
