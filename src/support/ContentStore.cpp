//===- support/ContentStore.cpp - Content-addressed blob store ------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/ContentStore.h"
#include "support/FaultInjection.h"
#include "support/StableHash.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

namespace ipcp {

namespace {

// mkdir -p: a store rooted at a not-yet-existing nested path must come
// up on first put, not fail every write because the parent is missing.
bool ensureDir(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) == 0)
    return S_ISDIR(St.st_mode);
  size_t Slash = Path.find_last_of('/');
  if (Slash != std::string::npos && Slash > 0 &&
      !ensureDir(Path.substr(0, Slash)))
    return false;
  return ::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST;
}

bool dirExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}

// The scrub and the load path read through this rather than FileIO so
// recovery itself is not a fault-injection target: a plan that fails
// every read must not be able to make the scrub quarantine good objects.
bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

// Directory listing, sorted so scrub order (and therefore scrub
// counters and any injected-fault schedule) is deterministic.
bool listDir(const std::string &Dir, std::vector<std::string> &Names) {
  Names.clear();
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return false;
  while (dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name != "." && Name != "..")
      Names.push_back(std::move(Name));
  }
  ::closedir(D);
  std::sort(Names.begin(), Names.end());
  return true;
}

// fsync of a file written durably, and of the directory after a rename
// so the new directory entry itself reaches disk.
bool fsyncPath(const std::string &Path, bool IsDir, std::string *Error) {
  int Fd = ::open(Path.c_str(), IsDir ? (O_RDONLY | O_DIRECTORY) : O_WRONLY);
  if (Fd < 0) {
    if (Error)
      *Error = "cannot open '" + Path + "' for fsync: " + std::strerror(errno);
    return false;
  }
  int RC;
  do
    RC = ::fsync(Fd);
  while (RC < 0 && errno == EINTR);
  ::close(Fd);
  if (RC < 0) {
    if (Error)
      *Error = "fsync '" + Path + "' failed: " + std::strerror(errno);
    return false;
  }
  return true;
}

std::string parentDir(const std::string &Path) {
  size_t Pos = Path.find_last_of('/');
  return Pos == std::string::npos ? std::string(".") : Path.substr(0, Pos);
}

/// Fault points bracketing one atomic write: `Write` fires before any
/// byte is written (a clean failure), `Commit` fires after the temp
/// file is complete but before the rename — the temp file is left
/// behind, simulating a crash mid-write (a torn write) for the
/// recovery scrub to find.
struct WriteFaultPoints {
  const char *Write;
  const char *Commit;
};

// Write-to-temp then rename: readers on any thread or process see either
// nothing or the complete file, never a prefix. The temp name carries a
// process-unique serial so concurrent writers of the same object cannot
// collide on the temp file either. With Durable, the temp file is
// fsynced before the rename and the directory after it.
bool atomicWrite(const std::string &Path, const std::string &Bytes,
                 std::string *Error, const WriteFaultPoints &FP,
                 bool Durable) {
  if (faultInjector().shouldFail(FP.Write, Error))
    return false;
  static std::atomic<uint64_t> Serial{0};
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(Serial.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      if (Error)
        *Error = "cannot open " + Tmp + " for writing";
      return false;
    }
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    Out.flush();
    if (!Out) {
      if (Error)
        *Error = "short write to " + Tmp;
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (Durable) {
    if (faultInjector().shouldFail("store.fsync", Error)) {
      std::remove(Tmp.c_str());
      return false;
    }
    if (!fsyncPath(Tmp, /*IsDir=*/false, Error)) {
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (faultInjector().shouldFail(FP.Commit, Error))
    return false; // deliberately leaves the temp file: a torn write
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (Error)
      *Error = std::string("rename failed: ") + std::strerror(errno);
    std::remove(Tmp.c_str());
    return false;
  }
  if (Durable)
    fsyncPath(parentDir(Path), /*IsDir=*/true, nullptr); // best effort
  return true;
}

bool isTempFile(const std::string &Name) {
  return Name.find(".tmp.") != std::string::npos;
}

bool hasSuffix(const std::string &Name, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return Name.size() >= N && Name.compare(Name.size() - N, N, Suffix) == 0;
}

} // namespace

ContentStore::ContentStore(std::string RootDir, Options O)
    : Root(std::move(RootDir)), Opts(O) {
  if (Opts.ScrubOnOpen && dirExists(Root))
    scrub();
}

std::string ContentStore::contentKey(const std::string &Bytes) {
  return stableHashHex(stableHashBytes(Bytes));
}

std::string ContentStore::objectPath(const std::string &Key) const {
  return Root + "/objects/" + Key + ".blob";
}

std::string ContentStore::refPath(const std::string &LogicalName) const {
  return Root + "/refs/" + stableHashHex(stableHashBytes(LogicalName)) +
         ".ref";
}

std::string ContentStore::quarantinePath(const std::string &Name) const {
  return Root + "/quarantine/" + Name;
}

std::string ContentStore::put(const std::string &Bytes, std::string *Error) {
  std::string Key = contentKey(Bytes);
  std::string Path = objectPath(Key);
  if (fileExists(Path)) {
    StatDedupHits.fetch_add(1, std::memory_order_relaxed);
    return Key;
  }
  if (!ensureDir(Root) || !ensureDir(Root + "/objects")) {
    StatErrors.fetch_add(1, std::memory_order_relaxed);
    if (Error)
      *Error = "cannot create object directory under " + Root;
    return std::string();
  }
  WriteFaultPoints FP{"store.write.object", "store.commit.object"};
  if (!atomicWrite(Path, Bytes, Error, FP, Opts.Durable)) {
    StatErrors.fetch_add(1, std::memory_order_relaxed);
    return std::string();
  }
  StatObjectsWritten.fetch_add(1, std::memory_order_relaxed);
  return Key;
}

bool ContentStore::bind(const std::string &LogicalName, const std::string &Key,
                        std::string *Error) {
  if (!ensureDir(Root) || !ensureDir(Root + "/refs")) {
    StatErrors.fetch_add(1, std::memory_order_relaxed);
    if (Error)
      *Error = "cannot create refs directory under " + Root;
    return false;
  }
  WriteFaultPoints FP{"store.write.ref", "store.commit.ref"};
  if (!atomicWrite(refPath(LogicalName), Key + "\n", Error, FP,
                   Opts.Durable)) {
    StatErrors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

std::string ContentStore::putNamed(const std::string &LogicalName,
                                   const std::string &Bytes,
                                   std::string *Error) {
  std::string Key = put(Bytes, Error);
  if (Key.empty())
    return Key;
  if (!bind(LogicalName, Key, Error))
    return std::string();
  return Key;
}

bool ContentStore::get(const std::string &LogicalName, std::string &BytesOut) {
  std::string Ref;
  if (faultInjector().shouldFail("store.read.ref") ||
      !readFile(refPath(LogicalName), Ref)) {
    StatMisses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  while (!Ref.empty() && (Ref.back() == '\n' || Ref.back() == '\r'))
    Ref.pop_back();
  std::string Bytes;
  if (Ref.empty() || faultInjector().shouldFail("store.read.object") ||
      !readFile(objectPath(Ref), Bytes)) {
    StatMisses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (contentKey(Bytes) != Ref) {
    StatIntegrityFailures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  StatLoads.fetch_add(1, std::memory_order_relaxed);
  BytesOut = std::move(Bytes);
  return true;
}

bool ContentStore::contains(const std::string &LogicalName) {
  std::string Ref;
  if (!readFile(refPath(LogicalName), Ref))
    return false;
  while (!Ref.empty() && (Ref.back() == '\n' || Ref.back() == '\r'))
    Ref.pop_back();
  return !Ref.empty() && fileExists(objectPath(Ref));
}

ContentStore::ScrubReport ContentStore::scrub() {
  ScrubReport R;
  StatScrubRuns.fetch_add(1, std::memory_order_relaxed);
  if (!dirExists(Root))
    return R;

  // Pass 1: objects. Sweep temp litter, re-hash every blob, move
  // anything that fails verification aside under quarantine/ (kept,
  // not deleted — the bytes are evidence of what went wrong).
  std::string ObjDir = Root + "/objects";
  std::vector<std::string> Names;
  if (listDir(ObjDir, Names)) {
    for (const std::string &Name : Names) {
      std::string Path = ObjDir + "/" + Name;
      if (isTempFile(Name)) {
        if (std::remove(Path.c_str()) == 0)
          ++R.TmpSwept;
        else
          R.Ok = false;
        continue;
      }
      if (!hasSuffix(Name, ".blob"))
        continue;
      ++R.ObjectsChecked;
      std::string Key = Name.substr(0, Name.size() - 5);
      std::string Bytes;
      if (readFile(Path, Bytes) && contentKey(Bytes) == Key)
        continue;
      if (ensureDir(Root + "/quarantine") &&
          std::rename(Path.c_str(), quarantinePath(Name).c_str()) == 0)
        ++R.Quarantined;
      else
        R.Ok = false;
    }
  }

  // Pass 2: refs, after objects so a ref to a just-quarantined blob is
  // seen as dangling and dropped — the next get() is a clean miss.
  std::string RefDir = Root + "/refs";
  if (listDir(RefDir, Names)) {
    for (const std::string &Name : Names) {
      std::string Path = RefDir + "/" + Name;
      if (isTempFile(Name)) {
        if (std::remove(Path.c_str()) == 0)
          ++R.TmpSwept;
        else
          R.Ok = false;
        continue;
      }
      if (!hasSuffix(Name, ".ref"))
        continue;
      ++R.RefsChecked;
      std::string Ref;
      bool Readable = readFile(Path, Ref);
      while (!Ref.empty() && (Ref.back() == '\n' || Ref.back() == '\r'))
        Ref.pop_back();
      if (Readable && !Ref.empty() && fileExists(objectPath(Ref)))
        continue;
      if (std::remove(Path.c_str()) == 0)
        ++R.DanglingDropped;
      else
        R.Ok = false;
    }
  }

  StatTmpSwept.fetch_add(R.TmpSwept, std::memory_order_relaxed);
  StatQuarantined.fetch_add(R.Quarantined, std::memory_order_relaxed);
  StatDanglingDropped.fetch_add(R.DanglingDropped, std::memory_order_relaxed);
  if (!R.Ok)
    StatErrors.fetch_add(1, std::memory_order_relaxed);
  return R;
}

ContentStore::Stats ContentStore::stats() const {
  Stats S;
  S.ObjectsWritten = StatObjectsWritten.load(std::memory_order_relaxed);
  S.DedupHits = StatDedupHits.load(std::memory_order_relaxed);
  S.Loads = StatLoads.load(std::memory_order_relaxed);
  S.Misses = StatMisses.load(std::memory_order_relaxed);
  S.IntegrityFailures = StatIntegrityFailures.load(std::memory_order_relaxed);
  S.Errors = StatErrors.load(std::memory_order_relaxed);
  S.ScrubRuns = StatScrubRuns.load(std::memory_order_relaxed);
  S.TmpSwept = StatTmpSwept.load(std::memory_order_relaxed);
  S.Quarantined = StatQuarantined.load(std::memory_order_relaxed);
  S.DanglingDropped = StatDanglingDropped.load(std::memory_order_relaxed);
  return S;
}

} // namespace ipcp
