//===- support/ContentStore.cpp - Content-addressed blob store ------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/ContentStore.h"
#include "support/StableHash.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

namespace ipcp {

namespace {

bool ensureDir(const std::string &Path) {
  struct stat St;
  if (::stat(Path.c_str(), &St) == 0)
    return S_ISDIR(St.st_mode);
  return ::mkdir(Path.c_str(), 0755) == 0 || errno == EEXIST;
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISREG(St.st_mode);
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Out = Buf.str();
  return true;
}

// Write-to-temp then rename: readers on any thread or process see either
// nothing or the complete file, never a prefix. The temp name carries a
// process-unique serial so concurrent writers of the same object cannot
// collide on the temp file either.
bool atomicWrite(const std::string &Path, const std::string &Bytes,
                 std::string *Error) {
  static std::atomic<uint64_t> Serial{0};
  std::string Tmp = Path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(Serial.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      if (Error)
        *Error = "cannot open " + Tmp + " for writing";
      return false;
    }
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    Out.flush();
    if (!Out) {
      if (Error)
        *Error = "short write to " + Tmp;
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    if (Error)
      *Error = std::string("rename failed: ") + std::strerror(errno);
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

} // namespace

ContentStore::ContentStore(std::string RootDir) : Root(std::move(RootDir)) {}

std::string ContentStore::contentKey(const std::string &Bytes) {
  return stableHashHex(stableHashBytes(Bytes));
}

std::string ContentStore::objectPath(const std::string &Key) const {
  return Root + "/objects/" + Key + ".blob";
}

std::string ContentStore::refPath(const std::string &LogicalName) const {
  return Root + "/refs/" + stableHashHex(stableHashBytes(LogicalName)) +
         ".ref";
}

std::string ContentStore::put(const std::string &Bytes, std::string *Error) {
  std::string Key = contentKey(Bytes);
  std::string Path = objectPath(Key);
  if (fileExists(Path)) {
    StatDedupHits.fetch_add(1, std::memory_order_relaxed);
    return Key;
  }
  if (!ensureDir(Root) || !ensureDir(Root + "/objects")) {
    StatErrors.fetch_add(1, std::memory_order_relaxed);
    if (Error)
      *Error = "cannot create object directory under " + Root;
    return std::string();
  }
  if (!atomicWrite(Path, Bytes, Error)) {
    StatErrors.fetch_add(1, std::memory_order_relaxed);
    return std::string();
  }
  StatObjectsWritten.fetch_add(1, std::memory_order_relaxed);
  return Key;
}

bool ContentStore::bind(const std::string &LogicalName, const std::string &Key,
                        std::string *Error) {
  if (!ensureDir(Root) || !ensureDir(Root + "/refs")) {
    StatErrors.fetch_add(1, std::memory_order_relaxed);
    if (Error)
      *Error = "cannot create refs directory under " + Root;
    return false;
  }
  if (!atomicWrite(refPath(LogicalName), Key + "\n", Error)) {
    StatErrors.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

std::string ContentStore::putNamed(const std::string &LogicalName,
                                   const std::string &Bytes,
                                   std::string *Error) {
  std::string Key = put(Bytes, Error);
  if (Key.empty())
    return Key;
  if (!bind(LogicalName, Key, Error))
    return std::string();
  return Key;
}

bool ContentStore::get(const std::string &LogicalName, std::string &BytesOut) {
  std::string Ref;
  if (!readFile(refPath(LogicalName), Ref)) {
    StatMisses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  while (!Ref.empty() && (Ref.back() == '\n' || Ref.back() == '\r'))
    Ref.pop_back();
  std::string Bytes;
  if (Ref.empty() || !readFile(objectPath(Ref), Bytes)) {
    StatMisses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (contentKey(Bytes) != Ref) {
    StatIntegrityFailures.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  StatLoads.fetch_add(1, std::memory_order_relaxed);
  BytesOut = std::move(Bytes);
  return true;
}

bool ContentStore::contains(const std::string &LogicalName) {
  std::string Ref;
  if (!readFile(refPath(LogicalName), Ref))
    return false;
  while (!Ref.empty() && (Ref.back() == '\n' || Ref.back() == '\r'))
    Ref.pop_back();
  return !Ref.empty() && fileExists(objectPath(Ref));
}

ContentStore::Stats ContentStore::stats() const {
  Stats S;
  S.ObjectsWritten = StatObjectsWritten.load(std::memory_order_relaxed);
  S.DedupHits = StatDedupHits.load(std::memory_order_relaxed);
  S.Loads = StatLoads.load(std::memory_order_relaxed);
  S.Misses = StatMisses.load(std::memory_order_relaxed);
  S.IntegrityFailures = StatIntegrityFailures.load(std::memory_order_relaxed);
  S.Errors = StatErrors.load(std::memory_order_relaxed);
  return S;
}

} // namespace ipcp
