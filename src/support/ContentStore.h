//===- support/ContentStore.h - Content-addressed blob store ----*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The content-addressed disk tier behind the sharded analysis service
/// (docs/SCALING.md). Two maps, both plain files:
///
///  * `objects/<key>.blob` — immutable blobs named by the StableHash of
///    their bytes (`contentKey`). Writing the same bytes twice is a
///    dedup hit, not a second file: identical session caches persisted
///    by different shards (or different sessions analyzing the same
///    program under the same options) collapse to one object. Objects
///    are written once via temp-file + rename, so readers never see a
///    partial blob, and a reread is verified against its own name —
///    the store detects bit rot instead of serving it.
///
///  * `refs/<hash-of-name>.ref` — a mutable pointer from a logical name
///    (for the service: source name + options fingerprint, deliberately
///    session- and shard-independent) to the current object key. Rebinds
///    are atomic renames, so a crash leaves either the old or the new
///    pointer, never a torn one.
///
/// The split is what makes the tier shared: any worker resolves any
/// logical name to the same object, so a session evicted by shard A
/// warm-starts on shard B (or in a restarted daemon) with zero
/// jump-function evaluations. Thread-safe; all operations are also safe
/// across processes sharing the directory (atomic renames only).
///
/// Crash safety (docs/ROBUSTNESS.md): opening a store runs a recovery
/// *scrub* — stale `.tmp.*` files left by a crash mid-write are swept,
/// every object is re-hashed and corrupt ones are moved aside under
/// `quarantine/` (never deleted: they are forensic evidence), and refs
/// whose object is gone are dropped so `get` degrades to a clean miss
/// instead of an integrity failure. `Options::Durable` additionally
/// fsyncs data before the rename and the directory after it, so a
/// renamed object survives power loss, not just process death.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_CONTENTSTORE_H
#define IPCP_SUPPORT_CONTENTSTORE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace ipcp {

/// Content-addressed blob store with named references.
class ContentStore {
public:
  struct Options {
    /// fsync data before rename and the parent directory after it.
    bool Durable;
    /// Run the recovery scrub when the store directory already exists.
    bool ScrubOnOpen;
    // Explicit default constructor (not member initializers): Options()
    // is a default argument of the enclosing class's constructor, which
    // member initializers cannot serve.
    Options() : Durable(false), ScrubOnOpen(true) {}
  };

  /// Uses \p Root as the store directory; created lazily on first put.
  /// When the directory already exists and \p Opts.ScrubOnOpen is set,
  /// runs `scrub()` before serving (counted in `stats()`).
  explicit ContentStore(std::string Root, Options Opts = Options());

  ContentStore(const ContentStore &) = delete;
  ContentStore &operator=(const ContentStore &) = delete;

  /// Stores \p Bytes under its content key and returns the key. An
  /// object that already exists is not rewritten (a dedup hit). On I/O
  /// failure returns an empty string and fills \p Error.
  std::string put(const std::string &Bytes, std::string *Error = nullptr);

  /// Atomically points \p LogicalName at object \p Key.
  bool bind(const std::string &LogicalName, const std::string &Key,
            std::string *Error = nullptr);

  /// put + bind in one call; returns the key or "".
  std::string putNamed(const std::string &LogicalName,
                       const std::string &Bytes,
                       std::string *Error = nullptr);

  /// Resolves \p LogicalName and loads its object into \p BytesOut,
  /// verifying the bytes against the content key. Returns false for an
  /// unknown name, a dangling ref, or an integrity failure (counted).
  bool get(const std::string &LogicalName, std::string &BytesOut);

  /// True when \p LogicalName currently resolves to an object.
  bool contains(const std::string &LogicalName);

  /// What one recovery pass found and repaired.
  struct ScrubReport {
    uint64_t TmpSwept = 0;        ///< stale `.tmp.*` files removed
    uint64_t ObjectsChecked = 0;  ///< blobs re-hashed
    uint64_t Quarantined = 0;     ///< corrupt blobs moved to quarantine/
    uint64_t RefsChecked = 0;     ///< refs resolved
    uint64_t DanglingDropped = 0; ///< refs to missing objects removed
    bool Ok = true;               ///< false when a repair itself failed
  };

  /// Recovery pass over the whole store: sweep temp litter, verify and
  /// quarantine objects, drop dangling refs. Safe on a live store (all
  /// repairs are unlink/rename); a missing root is an empty, Ok report.
  ScrubReport scrub();

  /// Lifetime counters, all monotone. `DedupHits` counts puts that found
  /// their object already present; `IntegrityFailures` counts loads
  /// whose bytes did not hash back to their name. The scrub counters
  /// accumulate across every `scrub()` run on this handle.
  struct Stats {
    uint64_t ObjectsWritten = 0;
    uint64_t DedupHits = 0;
    uint64_t Loads = 0;
    uint64_t Misses = 0;
    uint64_t IntegrityFailures = 0;
    uint64_t Errors = 0;
    uint64_t ScrubRuns = 0;
    uint64_t TmpSwept = 0;
    uint64_t Quarantined = 0;
    uint64_t DanglingDropped = 0;
  };
  Stats stats() const;

  const std::string &root() const { return Root; }
  std::string objectPath(const std::string &Key) const;
  std::string refPath(const std::string &LogicalName) const;
  std::string quarantinePath(const std::string &Key) const;

  /// The content key of \p Bytes: the hex StableHash (FNV-1a 64) of the
  /// byte string — the same primitive that keys the summary cache.
  static std::string contentKey(const std::string &Bytes);

private:
  std::string Root;
  Options Opts;
  std::atomic<uint64_t> StatObjectsWritten{0};
  std::atomic<uint64_t> StatDedupHits{0};
  std::atomic<uint64_t> StatLoads{0};
  std::atomic<uint64_t> StatMisses{0};
  std::atomic<uint64_t> StatIntegrityFailures{0};
  std::atomic<uint64_t> StatErrors{0};
  std::atomic<uint64_t> StatScrubRuns{0};
  std::atomic<uint64_t> StatTmpSwept{0};
  std::atomic<uint64_t> StatQuarantined{0};
  std::atomic<uint64_t> StatDanglingDropped{0};
};

} // namespace ipcp

#endif // IPCP_SUPPORT_CONTENTSTORE_H
