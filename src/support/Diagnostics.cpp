//===- support/Diagnostics.cpp --------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace ipcp;

static const char *kindName(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += kindName(Kind);
  Out += ": ";
  Out += Message;
  return Out;
}

void DiagnosticsEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticsEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
}

void DiagnosticsEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
}

std::string DiagnosticsEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
