//===- support/Diagnostics.h - Diagnostic reporting -------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Library code never prints or aborts on user
/// errors; it records diagnostics here, and tools decide how to render them.
/// Message style follows the LLVM convention: lowercase first letter, no
/// trailing period.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_DIAGNOSTICS_H
#define IPCP_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace ipcp {

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  /// Renders "12:3: error: message" (location omitted when invalid).
  std::string str() const;
};

/// Collects diagnostics produced while processing one source unit.
class DiagnosticsEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_DIAGNOSTICS_H
