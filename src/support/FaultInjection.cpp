//===- support/FaultInjection.cpp - Deterministic fault injection ---------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <cstdlib>

namespace ipcp {

bool faultPatternMatches(const std::string &Pattern, const std::string &Point) {
  // Iterative `*`-glob with backtracking to the last star.
  size_t PI = 0, SI = 0;
  size_t Star = std::string::npos, Mark = 0;
  while (SI < Point.size()) {
    if (PI < Pattern.size() && Pattern[PI] == '*') {
      Star = PI++;
      Mark = SI;
    } else if (PI < Pattern.size() && Pattern[PI] == Point[SI]) {
      ++PI;
      ++SI;
    } else if (Star != std::string::npos) {
      PI = Star + 1;
      SI = ++Mark;
    } else {
      return false;
    }
  }
  while (PI < Pattern.size() && Pattern[PI] == '*')
    ++PI;
  return PI == Pattern.size();
}

namespace {

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return std::string();
  size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

bool parseCount(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    if (V > (UINT64_MAX - (C - '0')) / 10)
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

/// Parses one `PATTERN(:key=value)*` rule; false + Error on bad syntax.
bool parseRule(const std::string &Text, FaultRule &Rule, std::string *Error) {
  size_t Pos = Text.find(':');
  Rule.Pattern = trim(Pos == std::string::npos ? Text : Text.substr(0, Pos));
  if (Rule.Pattern.empty()) {
    if (Error)
      *Error = "fault rule has an empty pattern: '" + Text + "'";
    return false;
  }
  while (Pos != std::string::npos) {
    size_t Next = Text.find(':', Pos + 1);
    std::string Term = trim(Next == std::string::npos
                                ? Text.substr(Pos + 1)
                                : Text.substr(Pos + 1, Next - Pos - 1));
    Pos = Next;
    size_t Eq = Term.find('=');
    std::string Key = Eq == std::string::npos ? Term : Term.substr(0, Eq);
    uint64_t Value = 0;
    if (Eq == std::string::npos ||
        !parseCount(Term.substr(Eq + 1), Value)) {
      if (Error)
        *Error = "fault rule trigger needs KEY=N: '" + Term + "'";
      return false;
    }
    if (Key == "nth")
      Rule.Nth = Value;
    else if (Key == "period")
      Rule.Period = Value;
    else if (Key == "start")
      Rule.Start = Value;
    else if (Key == "times")
      Rule.Times = Value;
    else {
      if (Error)
        *Error = "unknown fault rule key '" + Key +
                 "' (expected nth, period, start, or times)";
      return false;
    }
    if ((Key == "nth" || Key == "period") && Value == 0) {
      if (Error)
        *Error = "fault rule key '" + Key + "' must be >= 1";
      return false;
    }
  }
  return true;
}

} // namespace

bool FaultInjector::installPlan(const std::string &Spec, std::string *Error) {
  std::vector<FaultRule> Parsed;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t End = Spec.find(';', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Text = trim(Spec.substr(Pos, End - Pos));
    Pos = End + 1;
    if (Text.empty())
      continue;
    FaultRule Rule;
    if (!parseRule(Text, Rule, Error))
      return false;
    Parsed.push_back(std::move(Rule));
  }
  std::lock_guard<std::mutex> G(Lock);
  Rules = std::move(Parsed);
  this->Spec = Rules.empty() ? std::string() : Spec;
  Checked = 0;
  InjectedTotal = 0;
  ByPoint.clear();
  Active.store(!Rules.empty(), std::memory_order_relaxed);
  return true;
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> G(Lock);
  Rules.clear();
  Spec.clear();
  Checked = 0;
  InjectedTotal = 0;
  ByPoint.clear();
  Active.store(false, std::memory_order_relaxed);
}

bool FaultInjector::shouldFail(const std::string &Point,
                               std::string *Message) {
  if (!Active.load(std::memory_order_relaxed))
    return false;
  std::lock_guard<std::mutex> G(Lock);
  ++Checked;
  FaultRule *Fired = nullptr;
  for (FaultRule &R : Rules) {
    if (!faultPatternMatches(R.Pattern, Point))
      continue;
    ++R.Matches;
    if (Fired)
      continue; // later rules still count their matches
    bool Fire;
    if (R.Nth) {
      Fire = R.Matches == R.Nth;
    } else {
      uint64_t Start = R.Start ? R.Start : (R.Period ? R.Period : 1);
      Fire = R.Matches >= Start &&
             (R.Period == 0 || (R.Matches - Start) % R.Period == 0) &&
             (R.Times == 0 || R.Injected < R.Times);
    }
    if (Fire) {
      ++R.Injected;
      Fired = &R;
    }
  }
  if (!Fired)
    return false;
  ++InjectedTotal;
  bool Counted = false;
  for (auto &[Name, Count] : ByPoint)
    if (Name == Point) {
      ++Count;
      Counted = true;
      break;
    }
  if (!Counted)
    ByPoint.emplace_back(Point, 1);
  if (Message)
    *Message = "injected fault: " + Point + " (rule '" + Fired->Pattern +
               "' match " + std::to_string(Fired->Matches) + ")";
  return true;
}

FaultInjector::Totals FaultInjector::totals() const {
  std::lock_guard<std::mutex> G(Lock);
  Totals T;
  T.Checked = Checked;
  T.Injected = InjectedTotal;
  return T;
}

std::string FaultInjector::planSpec() const {
  std::lock_guard<std::mutex> G(Lock);
  return Spec;
}

JsonValue FaultInjector::statsJson() const {
  std::lock_guard<std::mutex> G(Lock);
  JsonValue Doc = JsonValue::object();
  Doc.set("plan", Spec);
  Doc.set("checked", Checked);
  Doc.set("injected", InjectedTotal);
  JsonValue RulesArr = JsonValue::array();
  for (const FaultRule &R : Rules) {
    JsonValue Obj = JsonValue::object();
    Obj.set("pattern", R.Pattern);
    Obj.set("matched", R.Matches);
    Obj.set("injected", R.Injected);
    RulesArr.push(std::move(Obj));
  }
  Doc.set("rules", std::move(RulesArr));
  JsonValue Points = JsonValue::object();
  for (const auto &[Name, Count] : ByPoint)
    Points.set(Name, Count);
  Doc.set("points", std::move(Points));
  return Doc;
}

FaultInjector &faultInjector() {
  static FaultInjector Injector;
  return Injector;
}

bool installFaultPlanFromEnv(std::string *Error) {
  const char *Spec = std::getenv("IPCP_FAULT_PLAN");
  if (!Spec || !*Spec)
    return true;
  return faultInjector().installPlan(Spec, Error);
}

} // namespace ipcp
