//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, schedule-driven fault injection for the I/O layer
/// (docs/ROBUSTNESS.md, "Fault injection & recovery"). The substrate is
/// a process-wide \c FaultInjector holding a parsed *fault plan*: a
/// semicolon-separated list of rules, each a glob pattern over fault
/// point names plus trigger keys:
///
///   SPEC  := RULE (';' RULE)*
///   RULE  := PATTERN (':' KEY '=' N)*
///   KEY   := nth | period | start | times
///
///  * `nth=N`    — fail exactly the Nth matching operation (1-based).
///  * `period=P` — fail every Pth matching operation (P, 2P, 3P, ...).
///  * `start=N`  — first eligible match (defaults to `period` when a
///                 period is given, else 1).
///  * `times=K`  — cap the rule at K injections (0 = unlimited).
///  * no keys    — fail every matching operation.
///
/// Instrumented code brackets each fallible operation with a *named
/// fault point* (`store.write.object`, `cache.save`, `lineio.write`,
/// ...; the full table lives in docs/ROBUSTNESS.md) and asks
/// `faultInjector().shouldFail(point)`. Rules count their own matches,
/// so a plan is a pure function of the sequence of matching operations:
/// replaying the same request stream under the same plan injects the
/// same faults at the same places, byte-identically — which is what
/// lets the chaos suite diff a faulted run against a clean one.
///
/// When no plan is installed the check is a single relaxed atomic load;
/// the instrumented hot paths cost nothing in production.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_FAULTINJECTION_H
#define IPCP_SUPPORT_FAULTINJECTION_H

#include "support/Json.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ipcp {

/// One parsed rule of a fault plan, with its runtime counters.
struct FaultRule {
  std::string Pattern; ///< glob over fault point names (`*` = any run)
  uint64_t Nth = 0;    ///< fire exactly on this match (1-based), once
  uint64_t Period = 0; ///< fire every Period-th match
  uint64_t Start = 0;  ///< first eligible match; 0 = default
  uint64_t Times = 0;  ///< injection cap; 0 = unlimited
  uint64_t Matches = 0;
  uint64_t Injected = 0;
};

/// `*`-glob match of \p Point against \p Pattern (exposed for tests).
bool faultPatternMatches(const std::string &Pattern, const std::string &Point);

/// Process-wide fault scheduler. All mutation goes through a mutex; the
/// no-plan fast path is one atomic load.
class FaultInjector {
public:
  /// Parses and installs \p Spec, replacing any current plan and
  /// resetting all counters. An empty spec clears the plan. Returns
  /// false (leaving no plan installed) and fills \p Error on a
  /// malformed spec.
  bool installPlan(const std::string &Spec, std::string *Error = nullptr);

  /// Removes the plan and resets all counters.
  void clear();

  /// True when a plan with at least one rule is installed.
  bool active() const { return Active.load(std::memory_order_relaxed); }

  /// The instrumentation hook: counts a match against every rule whose
  /// pattern covers \p Point and reports whether one of them fires. On
  /// injection fills \p Message with a deterministic description
  /// (point, rule pattern, match ordinal) suitable for error bodies.
  bool shouldFail(const std::string &Point, std::string *Message = nullptr);

  struct Totals {
    uint64_t Checked = 0;  ///< shouldFail calls while a plan was active
    uint64_t Injected = 0; ///< checks that fired
  };
  Totals totals() const;

  /// The installed spec ("" when inactive).
  std::string planSpec() const;

  /// Counter snapshot for stats bodies and artifacts: plan, totals,
  /// per-rule match/injection counts, per-point injection counts.
  JsonValue statsJson() const;

private:
  mutable std::mutex Lock;
  std::atomic<bool> Active{false};
  std::string Spec;
  std::vector<FaultRule> Rules;
  uint64_t Checked = 0;
  uint64_t InjectedTotal = 0;
  std::vector<std::pair<std::string, uint64_t>> ByPoint; // insertion order
};

/// The process-wide injector every fault point consults.
FaultInjector &faultInjector();

/// Installs the plan from the IPCP_FAULT_PLAN environment variable, if
/// set and non-empty. Returns false and fills \p Error when the
/// variable holds a malformed spec; returns true (a no-op) when unset.
bool installFaultPlanFromEnv(std::string *Error = nullptr);

} // namespace ipcp

#endif // IPCP_SUPPORT_FAULTINJECTION_H
