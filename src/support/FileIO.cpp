//===- support/FileIO.cpp -------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/FileIO.h"
#include "support/FaultInjection.h"

#include <cstdio>

using namespace ipcp;

bool ipcp::readFileToString(const std::string &Path, std::string &Out,
                            std::string *Error) {
  Out.clear();
  if (faultInjector().shouldFail("fileio.read", Error))
    return false;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Error)
      *Error = "cannot open '" + Path + "' for reading";
    return false;
  }
  char Buf[64 * 1024];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, Got);
  bool ReadError = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadError) {
    if (Error)
      *Error = "cannot read '" + Path + "'";
    Out.clear();
    return false;
  }
  return true;
}

bool ipcp::writeStringToFile(const std::string &Path, std::string_view Text,
                             std::string *Error) {
  if (faultInjector().shouldFail("fileio.write", Error))
    return false;
  if (Path == "-") {
    size_t Written = std::fwrite(Text.data(), 1, Text.size(), stdout);
    if (Written != Text.size() || std::fflush(stdout) != 0) {
      if (Error)
        *Error = "short write to stdout";
      return false;
    }
    return true;
  }
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool WriteOk = Written == Text.size();
  bool CloseOk = std::fclose(F) == 0; // always close, even on short write
  if (!WriteOk || !CloseOk) {
    if (Error)
      *Error = (WriteOk ? "cannot close '" : "short write to '") + Path + "'";
    return false;
  }
  return true;
}
