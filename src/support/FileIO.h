//===- support/FileIO.h - Checked whole-file read/write ---------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-file I/O with every failure checked and reported. Tools route
/// all their file reads (source programs) and writes (traces, JSON
/// reports) through these helpers so an unreadable input or a failed
/// write becomes a diagnostic and a nonzero exit code, never a silently
/// empty program or a silently dropped output file.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_FILEIO_H
#define IPCP_SUPPORT_FILEIO_H

#include <string>
#include <string_view>

namespace ipcp {

/// Reads the entire file at \p Path into \p Out. Distinguishes an
/// unopenable file ("cannot open") from a read failure mid-stream
/// ("cannot read", e.g. the path is a directory) — an empty file reads
/// successfully as the empty string. Returns false and fills \p Error
/// on failure.
bool readFileToString(const std::string &Path, std::string &Out,
                      std::string *Error = nullptr);

/// Writes \p Text to \p Path ("-" means stdout), checking open, write,
/// and close. Returns false and fills \p Error on any failure.
bool writeStringToFile(const std::string &Path, std::string_view Text,
                       std::string *Error = nullptr);

} // namespace ipcp

#endif // IPCP_SUPPORT_FILEIO_H
