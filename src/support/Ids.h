//===- support/Ids.h - Typed dense integer IDs ------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer handles for the data-oriented core. A DenseId<Tag> is a
/// strongly typed wrapper over a uint32_t index: ProcId, BlockId, VarId
/// and ExprId cannot be mixed up accidentally, and each doubles as a
/// direct index into the SoA side tables (IdMap) that replace pointer-
/// keyed hash maps on the hot paths. Invalid ids compare equal to each
/// other and convert to false.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_IDS_H
#define IPCP_SUPPORT_IDS_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace ipcp {

/// A strongly typed dense index. Tag is any distinct type; it is never
/// instantiated.
template <typename Tag> class DenseId {
public:
  static constexpr uint32_t InvalidIndex = ~uint32_t(0);

  constexpr DenseId() = default;
  constexpr explicit DenseId(uint32_t Index) : Index(Index) {}

  static constexpr DenseId invalid() { return DenseId(); }
  static constexpr DenseId fromIndex(size_t I) {
    return DenseId(uint32_t(I));
  }

  constexpr bool isValid() const { return Index != InvalidIndex; }
  constexpr explicit operator bool() const { return isValid(); }

  /// The raw table index; only meaningful for valid ids.
  constexpr uint32_t index() const {
    assert(isValid() && "indexing with an invalid id");
    return Index;
  }

  constexpr uint32_t rawValue() const { return Index; }

  friend constexpr bool operator==(DenseId A, DenseId B) {
    return A.Index == B.Index;
  }
  friend constexpr bool operator!=(DenseId A, DenseId B) {
    return A.Index != B.Index;
  }
  friend constexpr bool operator<(DenseId A, DenseId B) {
    return A.Index < B.Index;
  }

private:
  uint32_t Index = InvalidIndex;
};

struct ProcIdTag;
struct BlockIdTag;
struct VarIdTag;
struct ExprIdTag;

/// Dense procedure number (CallGraph::procIndex order).
using ProcId = DenseId<ProcIdTag>;
/// Dense basic-block position within one procedure's flat stream.
using BlockId = DenseId<BlockIdTag>;
/// Dense variable number (extended-formal numbering within a procedure).
using VarId = DenseId<VarIdTag>;
/// Handle into a SymExprContext's node table.
using ExprId = DenseId<ExprIdTag>;

/// A dense side table keyed by a DenseId: a vector that grows on write
/// and treats out-of-range reads as the default value. This is the
/// drop-in replacement for unordered_map<Key*, V> once keys are dense.
template <typename Id, typename V> class IdMap {
public:
  IdMap() = default;
  explicit IdMap(size_t Size, const V &Init = V()) : Table(Size, Init) {}

  /// Grows to cover at least \p Size keys.
  void resize(size_t Size, const V &Init = V()) {
    if (Table.size() < Size)
      Table.resize(Size, Init);
  }

  void assign(size_t Size, const V &Init) { Table.assign(Size, Init); }
  void clear() { Table.clear(); }

  /// Mutable access; grows the table as needed.
  V &operator[](Id Key) {
    if (Key.index() >= Table.size())
      Table.resize(Key.index() + 1);
    return Table[Key.index()];
  }

  /// Read-only access; keys beyond the table report the default.
  const V &lookup(Id Key) const {
    static const V Default{};
    return Key.index() < Table.size() ? Table[Key.index()] : Default;
  }

  /// Unchecked access for keys known to be in range (hot loops).
  const V &at(Id Key) const {
    assert(Key.index() < Table.size() && "id outside the dense table");
    return Table[Key.index()];
  }
  V &at(Id Key) {
    assert(Key.index() < Table.size() && "id outside the dense table");
    return Table[Key.index()];
  }

  size_t size() const { return Table.size(); }
  bool empty() const { return Table.empty(); }

  typename std::vector<V>::iterator begin() { return Table.begin(); }
  typename std::vector<V>::iterator end() { return Table.end(); }
  typename std::vector<V>::const_iterator begin() const {
    return Table.begin();
  }
  typename std::vector<V>::const_iterator end() const { return Table.end(); }

private:
  std::vector<V> Table;
};

} // namespace ipcp

/// DenseIds hash as their raw index (for the rare cold-path containers
/// still keyed by id).
template <typename Tag> struct std::hash<ipcp::DenseId<Tag>> {
  size_t operator()(ipcp::DenseId<Tag> Id) const {
    return std::hash<uint32_t>()(Id.rawValue());
  }
};

#endif // IPCP_SUPPORT_IDS_H
