//===- support/Json.cpp ---------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include "support/FileIO.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ipcp;

//===----------------------------------------------------------------------===//
// Equality
//===----------------------------------------------------------------------===//

bool JsonValue::operator==(const JsonValue &Other) const {
  if (isNumber() && Other.isNumber()) {
    if (isInt() && Other.isInt())
      return IntVal == Other.IntVal;
    return asDouble() == Other.asDouble();
  }
  if (TheKind != Other.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return BoolVal == Other.BoolVal;
  case Kind::String:
    return StringVal == Other.StringVal;
  case Kind::Array:
    if (Elements.size() != Other.Elements.size())
      return false;
    for (size_t I = 0; I != Elements.size(); ++I)
      if (Elements[I] != Other.Elements[I])
        return false;
    return true;
  case Kind::Object: {
    if (Members.size() != Other.Members.size())
      return false;
    for (const auto &[Key, Val] : Members) {
      const JsonValue *Theirs = Other.find(Key);
      if (!Theirs || *Theirs != Val)
        return false;
    }
    return true;
  }
  case Kind::Int:
  case Kind::Double:
    break; // handled above
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string ipcp::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += char(C);
      }
    }
  }
  return Out;
}

void JsonValue::dumpTo(std::string &Out, unsigned Indent,
                       unsigned Depth) const {
  auto Newline = [&](unsigned D) {
    if (Indent == 0)
      return;
    Out += '\n';
    Out.append(size_t(Indent) * D, ' ');
  };

  switch (TheKind) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolVal ? "true" : "false";
    break;
  case Kind::Int:
    Out += std::to_string(IntVal);
    break;
  case Kind::Double: {
    if (std::isfinite(DoubleVal)) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.17g", DoubleVal);
      Out += Buf;
    } else {
      Out += "null"; // JSON has no Inf/NaN
    }
    break;
  }
  case Kind::String:
    Out += '"';
    Out += jsonEscape(StringVal);
    Out += '"';
    break;
  case Kind::Array:
    if (Elements.empty()) {
      Out += "[]";
      break;
    }
    Out += '[';
    for (size_t I = 0; I != Elements.size(); ++I) {
      if (I)
        Out += ',';
      Newline(Depth + 1);
      Elements[I].dumpTo(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += ']';
    break;
  case Kind::Object:
    if (Members.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    for (size_t I = 0; I != Members.size(); ++I) {
      if (I)
        Out += ',';
      Newline(Depth + 1);
      Out += '"';
      Out += jsonEscape(Members[I].first);
      Out += Indent ? "\": " : "\":";
      Members[I].second.dumpTo(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += '}';
    break;
  }
}

std::string JsonValue::dump(unsigned Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

bool ipcp::writeJsonFile(const std::string &Path, const JsonValue &V,
                         std::string *Error) {
  std::string Text = V.dump(2);
  Text += '\n';
  return writeStringToFile(Path, Text, Error);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser over the whole document.
class JsonParser {
public:
  JsonParser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  std::optional<JsonValue> run() {
    skipSpace();
    std::optional<JsonValue> V = parseValue(0);
    if (!V)
      return std::nullopt;
    skipSpace();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return V;
  }

private:
  std::optional<JsonValue> fail(const std::string &Message) {
    if (Error && Error->empty())
      *Error = "offset " + std::to_string(Pos) + ": " + Message;
    return std::nullopt;
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) == 0) {
      Pos += Len;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parseValue(unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject(Depth);
    if (C == '[')
      return parseArray(Depth);
    if (C == '"') {
      std::optional<std::string> S = parseString();
      if (!S)
        return std::nullopt;
      return JsonValue(std::move(*S));
    }
    if (consumeWord("null"))
      return JsonValue();
    if (consumeWord("true"))
      return JsonValue(true);
    if (consumeWord("false"))
      return JsonValue(false);
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    return fail(std::string("unexpected character '") + C + "'");
  }

  std::optional<JsonValue> parseObject(unsigned Depth) {
    consume('{');
    JsonValue Obj = JsonValue::object();
    skipSpace();
    if (consume('}'))
      return Obj;
    while (true) {
      skipSpace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key string");
      std::optional<std::string> Key = parseString();
      if (!Key)
        return std::nullopt;
      skipSpace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      skipSpace();
      std::optional<JsonValue> Val = parseValue(Depth + 1);
      if (!Val)
        return std::nullopt;
      Obj.set(*Key, std::move(*Val));
      skipSpace();
      if (consume(','))
        continue;
      if (consume('}'))
        return Obj;
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<JsonValue> parseArray(unsigned Depth) {
    consume('[');
    JsonValue Arr = JsonValue::array();
    skipSpace();
    if (consume(']'))
      return Arr;
    while (true) {
      skipSpace();
      std::optional<JsonValue> Val = parseValue(Depth + 1);
      if (!Val)
        return std::nullopt;
      Arr.push(std::move(*Val));
      skipSpace();
      if (consume(','))
        continue;
      if (consume(']'))
        return Arr;
      return fail("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> parseString() {
    consume('"');
    std::string Out;
    while (true) {
      if (Pos >= Text.size()) {
        fail("unterminated string");
        return std::nullopt;
      }
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (static_cast<unsigned char>(C) < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      }
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size()) {
        fail("unterminated escape");
        return std::nullopt;
      }
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        std::optional<unsigned> Code = parseHex4();
        if (!Code)
          return std::nullopt;
        unsigned CP = *Code;
        // Surrogate pair: combine when a low surrogate follows.
        if (CP >= 0xD800 && CP <= 0xDBFF && Pos + 1 < Text.size() &&
            Text[Pos] == '\\' && Text[Pos + 1] == 'u') {
          size_t Save = Pos;
          Pos += 2;
          std::optional<unsigned> Low = parseHex4();
          if (Low && *Low >= 0xDC00 && *Low <= 0xDFFF)
            CP = 0x10000 + ((CP - 0xD800) << 10) + (*Low - 0xDC00);
          else
            Pos = Save; // lone surrogate; encode as-is
        }
        appendUtf8(Out, CP);
        break;
      }
      default:
        fail("invalid escape sequence");
        return std::nullopt;
      }
    }
  }

  std::optional<unsigned> parseHex4() {
    if (Pos + 4 > Text.size()) {
      fail("truncated \\u escape");
      return std::nullopt;
    }
    unsigned Value = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Value <<= 4;
      if (C >= '0' && C <= '9')
        Value |= unsigned(C - '0');
      else if (C >= 'a' && C <= 'f')
        Value |= unsigned(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Value |= unsigned(C - 'A' + 10);
      else {
        fail("invalid \\u escape digit");
        return std::nullopt;
      }
    }
    return Value;
  }

  static void appendUtf8(std::string &Out, unsigned CP) {
    if (CP < 0x80) {
      Out += char(CP);
    } else if (CP < 0x800) {
      Out += char(0xC0 | (CP >> 6));
      Out += char(0x80 | (CP & 0x3F));
    } else if (CP < 0x10000) {
      Out += char(0xE0 | (CP >> 12));
      Out += char(0x80 | ((CP >> 6) & 0x3F));
      Out += char(0x80 | (CP & 0x3F));
    } else {
      Out += char(0xF0 | (CP >> 18));
      Out += char(0x80 | ((CP >> 12) & 0x3F));
      Out += char(0x80 | ((CP >> 6) & 0x3F));
      Out += char(0x80 | (CP & 0x3F));
    }
  }

  std::optional<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    bool IsDouble = false;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsDouble = true;
      ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsDouble = true;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Token = Text.substr(Start, Pos - Start);
    if (Token.empty() || Token == "-")
      return fail("malformed number");
    errno = 0;
    if (!IsDouble) {
      char *End = nullptr;
      long long IV = std::strtoll(Token.c_str(), &End, 10);
      if (errno != ERANGE && End && *End == '\0')
        return JsonValue(int64_t(IV));
      // Out of int64 range: fall through to double.
    }
    char *End = nullptr;
    double DV = std::strtod(Token.c_str(), &End);
    if (!End || *End != '\0')
      return fail("malformed number");
    return JsonValue(DV);
  }

  static constexpr unsigned MaxDepth = 200;
  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
};

} // namespace

std::optional<JsonValue> JsonValue::parse(const std::string &Text,
                                          std::string *Error) {
  if (Error)
    Error->clear();
  JsonParser P(Text, Error);
  return P.run();
}
