//===- support/Json.h - Minimal JSON tree, writer, parser -------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small hand-rolled JSON facility (no external dependency) backing the
/// observability layer: analysis reports, trace dumps, and bench output
/// are all serialized through JsonValue. Objects preserve insertion
/// order so reports are stable and diffable; the parser accepts exactly
/// what the writer emits (plus arbitrary standard JSON), which gives the
/// test suite a round-trip check and lets tools re-read their own
/// reports.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_JSON_H
#define IPCP_SUPPORT_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ipcp {

/// One JSON document node. Numbers are stored as either int64 or double
/// (counters and timings are integral; benchmark rates are not).
class JsonValue {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() : TheKind(Kind::Null) {}
  JsonValue(bool B) : TheKind(Kind::Bool), BoolVal(B) {}
  JsonValue(int64_t I) : TheKind(Kind::Int), IntVal(I) {}
  JsonValue(uint64_t U) : TheKind(Kind::Int), IntVal(int64_t(U)) {}
  JsonValue(int I) : TheKind(Kind::Int), IntVal(I) {}
  JsonValue(unsigned U) : TheKind(Kind::Int), IntVal(int64_t(U)) {}
  JsonValue(double D) : TheKind(Kind::Double), DoubleVal(D) {}
  JsonValue(std::string S) : TheKind(Kind::String), StringVal(std::move(S)) {}
  JsonValue(const char *S) : TheKind(Kind::String), StringVal(S) {}

  static JsonValue array() {
    JsonValue V;
    V.TheKind = Kind::Array;
    return V;
  }
  static JsonValue object() {
    JsonValue V;
    V.TheKind = Kind::Object;
    return V;
  }

  Kind kind() const { return TheKind; }
  bool isNull() const { return TheKind == Kind::Null; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isDouble() const { return TheKind == Kind::Double; }
  bool isNumber() const { return isInt() || isDouble(); }
  bool isString() const { return TheKind == Kind::String; }
  bool isArray() const { return TheKind == Kind::Array; }
  bool isObject() const { return TheKind == Kind::Object; }

  bool asBool() const { return BoolVal; }
  int64_t asInt() const {
    return TheKind == Kind::Double ? int64_t(DoubleVal) : IntVal;
  }
  double asDouble() const {
    return TheKind == Kind::Int ? double(IntVal) : DoubleVal;
  }
  const std::string &asString() const { return StringVal; }

  /// Array/object element count.
  size_t size() const {
    return TheKind == Kind::Object ? Members.size() : Elements.size();
  }

  /// Array indexing.
  const JsonValue &at(size_t I) const { return Elements[I]; }
  JsonValue &at(size_t I) { return Elements[I]; }

  /// Appends \p V to this array.
  JsonValue &push(JsonValue V) {
    Elements.push_back(std::move(V));
    return Elements.back();
  }

  /// Sets object key \p Key (replacing an existing entry in place).
  JsonValue &set(const std::string &Key, JsonValue V) {
    for (auto &[K, Existing] : Members)
      if (K == Key) {
        Existing = std::move(V);
        return Existing;
      }
    Members.emplace_back(Key, std::move(V));
    return Members.back().second;
  }

  /// Object lookup; null when absent (or not an object).
  const JsonValue *find(const std::string &Key) const {
    for (const auto &[K, V] : Members)
      if (K == Key)
        return &V;
    return nullptr;
  }
  JsonValue *find(const std::string &Key) {
    for (auto &[K, V] : Members)
      if (K == Key)
        return &V;
    return nullptr;
  }

  /// Removes object key \p Key; returns true when it was present. The
  /// report-normalization helpers edit documents in place with this.
  bool remove(const std::string &Key) {
    for (auto It = Members.begin(); It != Members.end(); ++It)
      if (It->first == Key) {
        Members.erase(It);
        return true;
      }
    return false;
  }

  /// Object members in insertion order.
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }
  std::vector<std::pair<std::string, JsonValue>> &members() { return Members; }

  /// Structural equality (object key order is ignored).
  bool operator==(const JsonValue &Other) const;
  bool operator!=(const JsonValue &Other) const { return !(*this == Other); }

  /// Serializes. \p Indent 0 emits one compact line; a positive value
  /// pretty-prints with that many spaces per nesting level.
  std::string dump(unsigned Indent = 0) const;

  /// Parses a complete JSON document. On failure returns nullopt and, if
  /// \p Error is non-null, stores a byte-offset diagnostic.
  static std::optional<JsonValue> parse(const std::string &Text,
                                        std::string *Error = nullptr);

private:
  void dumpTo(std::string &Out, unsigned Indent, unsigned Depth) const;

  Kind TheKind;
  bool BoolVal = false;
  int64_t IntVal = 0;
  double DoubleVal = 0.0;
  std::string StringVal;
  std::vector<JsonValue> Elements;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included). Control characters become \uXXXX; UTF-8 passes through.
std::string jsonEscape(const std::string &S);

/// Writes \p V pretty-printed to \p Path ("-" means stdout). Returns
/// false and fills \p Error on I/O failure.
bool writeJsonFile(const std::string &Path, const JsonValue &V,
                   std::string *Error = nullptr);

} // namespace ipcp

#endif // IPCP_SUPPORT_JSON_H
