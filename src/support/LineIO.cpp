//===- support/LineIO.cpp -------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/LineIO.h"
#include "support/FaultInjection.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ipcp;

bool LineReader::readLine(std::string &Out) {
  Out.clear();
  Truncated = false;
  for (;;) {
    // Drain buffered bytes up to the next newline.
    while (Pos < Buffer.size()) {
      char C = Buffer[Pos++];
      if (C == '\n')
        return true;
      if (Out.size() < MaxLineBytes)
        Out.push_back(C);
      else
        Truncated = true;
    }
    Buffer.clear();
    Pos = 0;
    if (AtEof || ReadError)
      return !Out.empty();

    char Chunk[64 * 1024];
    ssize_t N;
    do
      N = ::read(Fd, Chunk, sizeof Chunk);
    while (N < 0 && errno == EINTR);
    if (N < 0) {
      ReadError = true;
      return !Out.empty();
    }
    if (N == 0) {
      AtEof = true;
      // A trailing unterminated line is still a line.
      return !Out.empty();
    }
    Buffer.assign(Chunk, size_t(N));
  }
}

bool ipcp::writeAllToFd(int Fd, std::string_view Data, std::string *Error) {
  if (faultInjector().shouldFail("lineio.write", Error))
    return false;
  while (!Data.empty()) {
    ssize_t N;
    do
      N = ::write(Fd, Data.data(), Data.size());
    while (N < 0 && errno == EINTR);
    if (N < 0) {
      if (Error)
        *Error = std::string("write failed: ") + std::strerror(errno);
      return false;
    }
    Data.remove_prefix(size_t(N));
  }
  return true;
}

int ipcp::listenUnixSocket(const std::string &Path, std::string *Error) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof Addr);
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof Addr.sun_path) {
    if (Error)
      *Error = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("cannot create socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(Path.c_str()); // a stale socket file from a previous run
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr) < 0 ||
      ::listen(Fd, 16) < 0) {
    if (Error)
      *Error = "cannot listen on '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int ipcp::connectUnixSocket(const std::string &Path, std::string *Error) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof Addr);
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof Addr.sun_path) {
    if (Error)
      *Error = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Error)
      *Error = std::string("cannot create socket: ") + std::strerror(errno);
    return -1;
  }
  int RC;
  do
    RC = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof Addr);
  while (RC < 0 && errno == EINTR);
  if (RC < 0) {
    if (Error)
      *Error = "cannot connect to '" + Path + "': " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int ipcp::acceptUnixConnection(int ListenFd, std::string *Error) {
  int Fd;
  do
    Fd = ::accept(ListenFd, nullptr, nullptr);
  while (Fd < 0 && errno == EINTR);
  if (Fd < 0 && Error)
    *Error = std::string("accept failed: ") + std::strerror(errno);
  return Fd;
}

void ipcp::closeFd(int Fd) {
  if (Fd >= 0)
    ::close(Fd);
}
