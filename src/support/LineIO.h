//===- support/LineIO.h - Line-delimited stream + unix sockets --*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stream-level I/O for the analysis service (docs/SERVICE.md): a
/// buffered newline-delimited reader over a file descriptor, a checked
/// write-everything helper, and the unix-domain-socket listener the
/// daemon serves on. This is the streaming sibling of support/FileIO —
/// FileIO moves whole files, LineIO moves one request or response line
/// at a time over pipes and sockets, with every failure reported instead
/// of swallowed.
///
/// POSIX-only (read/write/socket/bind/listen/accept); the daemon is a
/// server-side tool, not part of the portable analysis library.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_LINEIO_H
#define IPCP_SUPPORT_LINEIO_H

#include <cstddef>
#include <string>
#include <string_view>

namespace ipcp {

/// Buffered reader yielding one '\n'-terminated line at a time from a
/// file descriptor it does not own. A trailing unterminated line is
/// still delivered (stdin piped from printf without a final newline).
class LineReader {
public:
  /// Reads from \p Fd; \p MaxLineBytes bounds a single line so one
  /// unterminated request cannot grow the buffer without limit (the
  /// oversized line is delivered truncated, flagged by lineTruncated()).
  explicit LineReader(int Fd, size_t MaxLineBytes = 64u << 20)
      : Fd(Fd), MaxLineBytes(MaxLineBytes) {}

  /// Fetches the next line into \p Out (terminator stripped). Returns
  /// false on end of stream or read error; readFailed() tells the two
  /// apart.
  bool readLine(std::string &Out);

  /// True when the stream ended with a read(2) error rather than EOF.
  bool readFailed() const { return ReadError; }

  /// True when the last delivered line exceeded MaxLineBytes and was
  /// truncated (the remainder of that line is discarded).
  bool lineTruncated() const { return Truncated; }

private:
  int Fd;
  size_t MaxLineBytes;
  std::string Buffer;
  size_t Pos = 0;
  bool AtEof = false;
  bool ReadError = false;
  bool Truncated = false;
};

/// Writes all of \p Data to \p Fd, restarting on EINTR and short
/// writes. Returns false and fills \p Error on failure.
bool writeAllToFd(int Fd, std::string_view Data, std::string *Error = nullptr);

/// Creates, binds, and listens on a unix domain socket at \p Path,
/// removing any stale socket file first. Returns the listening fd, or
/// -1 with \p Error filled.
int listenUnixSocket(const std::string &Path, std::string *Error = nullptr);

/// Accepts one connection on \p ListenFd (blocking, EINTR-restarted).
/// Returns the connection fd, or -1 with \p Error filled.
int acceptUnixConnection(int ListenFd, std::string *Error = nullptr);

/// Connects to a unix domain socket at \p Path (the client side of
/// listenUnixSocket; used by ipcp_loadgen --connect). Returns the
/// connection fd, or -1 with \p Error filled.
int connectUnixSocket(const std::string &Path, std::string *Error = nullptr);

/// close(2) wrapper so callers outside support/ need no <unistd.h>.
void closeFd(int Fd);

} // namespace ipcp

#endif // IPCP_SUPPORT_LINEIO_H
