//===- support/ResourceGuard.cpp ------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/ResourceGuard.h"

using namespace ipcp;

void ResourceGuard::trip(const char *Limit, const char *Stage) {
  if (Tripped)
    return; // first trip wins
  Tripped = true;
  TrippedLimit = Limit;
  TrippedStage = Stage;
}

PipelineStatus ResourceGuard::status() const {
  PipelineStatus S;
  if (!Tripped)
    return S;
  S.Degraded = true;
  S.TrippedLimit = TrippedLimit;
  S.Stage = TrippedStage;
  S.Message = "resource budget '" + TrippedLimit + "' tripped during " +
              TrippedStage + "; results are partial";
  return S;
}
