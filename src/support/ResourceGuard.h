//===- support/ResourceGuard.h - Pipeline resource budgets ------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource governance for the analysis pipeline. A ResourceGuard carries
/// the configured budgets (ResourceLimits) for one end-to-end run —
/// frontend through propagation — and every stage charges its work
/// against them. When a budget trips, the guard latches the first tripped
/// limit and the stage it tripped in; stages observe the latch and unwind
/// cleanly, so the pipeline *degrades gracefully*: it returns whatever
/// partial (still sound) results it has, tagged with a PipelineStatus,
/// instead of crashing, looping, or blowing the stack on adversarial
/// input (deeply nested expressions, explosive cloning, runaway
/// propagation).
///
/// A guard is single-run, single-thread state: create one per pipeline
/// invocation and never share it across threads (each SuiteRunner task
/// gets its own). All check methods are cheap; the deadline is polled
/// with an amortized clock read on the hot evaluation path.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_RESOURCEGUARD_H
#define IPCP_SUPPORT_RESOURCEGUARD_H

#include <chrono>
#include <cstdint>
#include <string>

namespace ipcp {

/// Budgets for one pipeline run. Zero means unlimited, except for
/// MaxParseDepth, which is always finite: the recursive-descent parser
/// must never be able to exhaust the C++ stack.
struct ResourceLimits {
  /// Maximum recursion depth of the parser (statement nesting plus
  /// expression nesting). Tripping it is a frontend diagnostic, exactly
  /// like any other syntax error.
  unsigned MaxParseDepth = 512;

  /// Maximum number of tokens the frontend accepts per source buffer.
  uint64_t MaxTokens = 0;

  /// Maximum number of AST nodes the parser allocates.
  uint64_t MaxAstNodes = 0;

  /// Maximum IR instruction count a module may have when entering the
  /// analysis (and that cloning may grow it to).
  uint64_t MaxIRInstructions = 0;

  /// Maximum jump-function evaluations across one propagation solve.
  uint64_t MaxPropagationEvals = 0;

  /// Wall-clock deadline for the whole run, milliseconds.
  uint64_t DeadlineMs = 0;
};

/// Outcome classification of one pipeline run. Default-constructed means
/// "completed normally".
struct PipelineStatus {
  /// True when any budget or the deadline tripped and the run returned
  /// partial results.
  bool Degraded = false;

  /// The tripped limit, named after the driver flag that configures it:
  /// "parse-depth", "tokens", "ast-nodes", "ir-insts", "prop-evals",
  /// "deadline-ms". Empty when not degraded.
  std::string TrippedLimit;

  /// Pipeline stage the trip happened in: "frontend", "lowering",
  /// "analysis", "propagation", "record", "cloning".
  std::string Stage;

  /// Human-readable one-liner for diagnostics.
  std::string Message;

  bool ok() const { return !Degraded; }
};

/// Tracks consumption against one ResourceLimits instance and latches the
/// first trip. Not thread-safe; one guard per run per thread.
class ResourceGuard {
public:
  explicit ResourceGuard(const ResourceLimits &Limits = {})
      : Limits(Limits), Start(Clock::now()) {}

  const ResourceLimits &limits() const { return Limits; }

  /// Whether any budget has tripped (latched).
  bool tripped() const { return Tripped; }

  /// True when the wall-clock deadline specifically tripped.
  bool deadlineTripped() const { return DeadlineTripped; }

  /// The latched outcome; Degraded mirrors tripped().
  PipelineStatus status() const;

  /// Latches a trip of \p Limit in \p Stage (first trip wins).
  void trip(const char *Limit, const char *Stage);

  /// Elapsed wall time since construction, milliseconds.
  uint64_t elapsedMs() const {
    return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                        Clock::now() - Start)
                        .count());
  }

  /// Polls the deadline (a real clock read). Returns false — after
  /// latching — when the deadline passed or the guard already tripped.
  bool checkDeadline(const char *Stage) {
    if (Tripped)
      return false;
    if (Limits.DeadlineMs != 0 && elapsedMs() >= Limits.DeadlineMs) {
      DeadlineTripped = true;
      trip("deadline-ms", Stage);
      return false;
    }
    return true;
  }

  /// Budget checks: each compares an externally maintained total against
  /// its limit (zero = unlimited) and latches on excess. All return
  /// false once the guard has tripped, so callers can use the return
  /// value to unwind.
  bool checkTokens(uint64_t Count) {
    return checkCount(Count, Limits.MaxTokens, "tokens", "frontend");
  }
  bool checkAstNodes(uint64_t Count) {
    return checkCount(Count, Limits.MaxAstNodes, "ast-nodes", "frontend");
  }
  bool checkIRInstructions(uint64_t Count, const char *Stage = "lowering") {
    return checkCount(Count, Limits.MaxIRInstructions, "ir-insts", Stage);
  }

  /// Charges \p N jump-function evaluations; polls the deadline every
  /// 4096 evaluations so a deadline can interrupt a propagation solve
  /// without a clock read per evaluation.
  bool noteEvaluations(uint64_t N = 1) {
    if (Tripped)
      return false;
    Evaluations += N;
    if (Limits.MaxPropagationEvals != 0 &&
        Evaluations > Limits.MaxPropagationEvals) {
      trip("prop-evals", "propagation");
      return false;
    }
    if (Limits.DeadlineMs != 0 && ++EvalsSinceClock >= 4096) {
      EvalsSinceClock = 0;
      return checkDeadline("propagation");
    }
    return true;
  }

  uint64_t evaluations() const { return Evaluations; }

private:
  bool checkCount(uint64_t Count, uint64_t Limit, const char *Name,
                  const char *Stage) {
    if (Tripped)
      return false;
    if (Limit != 0 && Count > Limit) {
      trip(Name, Stage);
      return false;
    }
    return true;
  }

  using Clock = std::chrono::steady_clock;
  ResourceLimits Limits;
  Clock::time_point Start;
  uint64_t Evaluations = 0;
  unsigned EvalsSinceClock = 0;
  bool Tripped = false;
  bool DeadlineTripped = false;
  std::string TrippedLimit;
  std::string TrippedStage;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_RESOURCEGUARD_H
