//===- support/SourceLoc.h - Source positions -------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line/column source locations used by the lexer, parser, semantic checker
/// and diagnostics engine. Line and column are 1-based; an invalid location
/// is all zeros.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_SOURCELOC_H
#define IPCP_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace ipcp {

/// A position in MiniFort source text.
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &RHS) const {
    return Line == RHS.Line && Col == RHS.Col;
  }
  bool operator!=(const SourceLoc &RHS) const { return !(*this == RHS); }

  /// Renders "line:col", or "<unknown>" for an invalid location.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace ipcp

#endif // IPCP_SUPPORT_SOURCELOC_H
