//===- support/StableHash.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/StableHash.h"

#include "ir/BasicBlock.h"
#include "ir/Instructions.h"
#include "ir/Procedure.h"
#include "support/Casting.h"
#include "support/ConstantMath.h"

#include <unordered_map>

using namespace ipcp;

uint64_t ipcp::stableHashBytes(std::string_view Data) {
  StableHasher H;
  H.bytes(Data.data(), Data.size());
  return H.result();
}

std::string ipcp::stableHashHex(uint64_t H) {
  static const char Digits[] = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I, H >>= 4)
    Out[size_t(I)] = Digits[H & 0xf];
  return Out;
}

namespace {

// Byte tags of the serialization format (docs/INCREMENTAL.md). These are
// part of the persisted cache key: renumbering them is a format change
// and must bump the cache schema version.
enum : uint8_t {
  TagProcedure = 0x50,
  TagBlock = 0x42,

  // Operand references.
  TagOpConstant = 0x01,
  TagOpEntryValue = 0x02,
  TagOpUndef = 0x03,
  TagOpInstruction = 0x04,
  TagOpNull = 0x05,

  // Variable references.
  TagVarGlobal = 0x11,
  TagVarGlobalArray = 0x12,
  TagVarFormal = 0x13,
  TagVarLocal = 0x14,
  TagVarLocalArray = 0x15,
  TagVarNull = 0x16,

  // Instruction opcodes.
  TagInstBinary = 0x20,
  TagInstUnary = 0x21,
  TagInstLoad = 0x22,
  TagInstArrayLoad = 0x23,
  TagInstRead = 0x24,
  TagInstPhi = 0x25,
  TagInstCallOut = 0x26,
  TagInstStore = 0x27,
  TagInstArrayStore = 0x28,
  TagInstPrint = 0x29,
  TagInstCall = 0x2a,
  TagInstBranch = 0x2b,
  TagInstCondBranch = 0x2c,
  TagInstRet = 0x2d,
  TagInstOther = 0x2e,
};

/// Serializes one procedure body into a StableHasher. Identity of
/// instructions is their dense traversal-order number (assigned up
/// front, so forward references — phi inputs — still resolve); identity
/// of blocks is their position in the block list.
class BodyHasher {
public:
  explicit BodyHasher(const Procedure &P) : P(P) {}

  uint64_t hash() {
    H.u8(TagProcedure);
    H.str(P.getName());
    H.u32(uint32_t(P.getNumFormals()));

    uint32_t NextInst = 0, NextBlock = 0;
    for (const std::unique_ptr<BasicBlock> &BB : P.blocks()) {
      BlockIndex.emplace(BB.get(), NextBlock++);
      for (const std::unique_ptr<Instruction> &I : BB->instructions())
        InstIndex.emplace(I.get(), NextInst++);
    }

    H.u32(NextBlock);
    for (const std::unique_ptr<BasicBlock> &BB : P.blocks()) {
      H.u8(TagBlock);
      H.u32(uint32_t(BB->instructions().size()));
      for (const std::unique_ptr<Instruction> &I : BB->instructions())
        hashInst(*I);
    }
    return H.result();
  }

private:
  void hashVar(const Variable *Var) {
    if (!Var) {
      H.u8(TagVarNull);
      return;
    }
    switch (Var->getKind()) {
    case Variable::Kind::Global:
      H.u8(TagVarGlobal);
      H.str(Var->getName());
      return;
    case Variable::Kind::GlobalArray:
      H.u8(TagVarGlobalArray);
      H.str(Var->getName());
      return;
    case Variable::Kind::Formal:
      // Formals of this procedure go by position; a (defensive) formal
      // of another procedure falls back to the owner's name too.
      H.u8(TagVarFormal);
      if (Var->getParent() == &P) {
        H.u32(Var->getFormalIndex());
      } else {
        H.u32(~0u);
        H.str(Var->getName());
      }
      return;
    case Variable::Kind::Local:
      H.u8(TagVarLocal);
      H.str(Var->getName());
      return;
    case Variable::Kind::LocalArray:
      H.u8(TagVarLocalArray);
      H.str(Var->getName());
      return;
    }
  }

  void hashOperand(const Value *V) {
    if (!V) {
      H.u8(TagOpNull);
      return;
    }
    if (const auto *C = dyn_cast<ConstantInt>(V)) {
      H.u8(TagOpConstant);
      H.i64(C->getValue());
      return;
    }
    if (const auto *E = dyn_cast<EntryValue>(V)) {
      H.u8(TagOpEntryValue);
      hashVar(E->getVariable());
      return;
    }
    if (isa<UndefValue>(V)) {
      H.u8(TagOpUndef);
      return;
    }
    const auto *I = cast<Instruction>(V);
    auto It = InstIndex.find(I);
    H.u8(TagOpInstruction);
    H.u32(It == InstIndex.end() ? ~0u : It->second);
  }

  void hashBlockRef(const BasicBlock *BB) {
    auto It = BlockIndex.find(BB);
    H.u32(It == BlockIndex.end() ? ~0u : It->second);
  }

  void hashInst(const Instruction &I) {
    switch (I.getKind()) {
    case ValueKind::Binary:
      H.u8(TagInstBinary);
      H.str(binaryOpSpelling(cast<BinaryInst>(&I)->getOp()));
      break;
    case ValueKind::Unary:
      H.u8(TagInstUnary);
      H.str(unaryOpSpelling(cast<UnaryInst>(&I)->getOp()));
      break;
    case ValueKind::Load:
      H.u8(TagInstLoad);
      hashVar(cast<LoadInst>(&I)->getVariable());
      break;
    case ValueKind::ArrayLoad:
      H.u8(TagInstArrayLoad);
      hashVar(cast<ArrayLoadInst>(&I)->getArray());
      break;
    case ValueKind::Read:
      H.u8(TagInstRead);
      break;
    case ValueKind::Phi: {
      // Pre-SSA bodies (what the cache hashes) carry no phis; handled
      // anyway so the hash stays total on any verifier-clean body.
      const auto *Phi = cast<PhiInst>(&I);
      H.u8(TagInstPhi);
      hashVar(Phi->getVariable());
      H.u32(Phi->getNumIncoming());
      for (unsigned In = 0, E = Phi->getNumIncoming(); In != E; ++In)
        hashBlockRef(Phi->getIncomingBlock(In));
      break;
    }
    case ValueKind::CallOut: {
      const auto *Out = cast<CallOutInst>(&I);
      H.u8(TagInstCallOut);
      hashOperand(Out->getCall());
      hashVar(Out->getVariable());
      break;
    }
    case ValueKind::Store:
      H.u8(TagInstStore);
      hashVar(cast<StoreInst>(&I)->getVariable());
      break;
    case ValueKind::ArrayStore:
      H.u8(TagInstArrayStore);
      hashVar(cast<ArrayStoreInst>(&I)->getArray());
      break;
    case ValueKind::Print:
      H.u8(TagInstPrint);
      break;
    case ValueKind::Call: {
      const auto *Call = cast<CallInst>(&I);
      H.u8(TagInstCall);
      H.str(Call->getCallee() ? Call->getCallee()->getName()
                              : std::string());
      H.u32(Call->getNumActuals());
      for (unsigned A = 0, E = Call->getNumActuals(); A != E; ++A) {
        const CallActual &Actual = Call->getActual(A);
        hashVar(Actual.ByRefLoc);
        H.u8(Actual.WasLiteral ? 1 : 0);
      }
      break;
    }
    case ValueKind::Branch:
      H.u8(TagInstBranch);
      hashBlockRef(cast<BranchInst>(&I)->getTarget());
      break;
    case ValueKind::CondBranch: {
      const auto *CBr = cast<CondBranchInst>(&I);
      H.u8(TagInstCondBranch);
      hashBlockRef(CBr->getTrueTarget());
      hashBlockRef(CBr->getFalseTarget());
      break;
    }
    case ValueKind::Ret:
      H.u8(TagInstRet);
      break;
    default:
      H.u8(TagInstOther);
      break;
    }

    H.u32(uint32_t(I.operands().size()));
    for (const Value *Op : I.operands())
      hashOperand(Op);
  }

  const Procedure &P;
  StableHasher H;
  std::unordered_map<const Instruction *, uint32_t> InstIndex;
  std::unordered_map<const BasicBlock *, uint32_t> BlockIndex;
};

} // namespace

uint64_t ipcp::hashProcedureBody(const Procedure &P) {
  return BodyHasher(P).hash();
}
