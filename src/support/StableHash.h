//===- support/StableHash.h - Stable structural hashing ---------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The content hashes behind the incremental summary cache
/// (docs/INCREMENTAL.md). Two requirements shape everything here:
///
///  1. *Stability.* The same procedure body must hash identically across
///     processes, runs, platforms, and endiannesses — the hash is a
///     persisted cache key, not an in-memory bucket index. Every integer
///     is therefore serialized as explicit little-endian bytes before it
///     touches the hash, and the byte stream never contains pointers,
///     allocation-order ids, or source locations.
///
///  2. *Sensitivity.* Any single-instruction change to the lowered IR —
///     a different literal, operator, operand, callee, variable, or
///     branch target — must change the hash (StableHashTests pins this
///     on mutation corpora). Structural identity is encoded with
///     per-kind opcode tags, dense traversal-order numbering of
///     instruction results, and block indices for branch targets.
///
/// The underlying mix is 64-bit FNV-1a: tiny, dependency-free, and fully
/// specified, so the on-disk `ipcp-cache-v1` format can document it in
/// one sentence. Cryptographic strength is not a goal; 64 bits over the
/// handful of procedures a module holds keeps accidental collisions
/// negligible, and the differential test layer cross-checks the cached
/// answers against cold runs anyway.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_STABLEHASH_H
#define IPCP_SUPPORT_STABLEHASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ipcp {

class Procedure;

/// Incremental 64-bit FNV-1a over an explicitly serialized byte stream.
/// All multi-byte integers enter the stream little-endian regardless of
/// host byte order (the documented, test-pinned format).
class StableHasher {
public:
  static constexpr uint64_t OffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr uint64_t Prime = 0x100000001b3ULL;

  void byte(uint8_t B) { H = (H ^ B) * Prime; }

  void bytes(const void *Data, size_t Size) {
    const auto *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I != Size; ++I)
      byte(P[I]);
  }

  void u8(uint8_t V) { byte(V); }

  void u32(uint32_t V) {
    byte(uint8_t(V));
    byte(uint8_t(V >> 8));
    byte(uint8_t(V >> 16));
    byte(uint8_t(V >> 24));
  }

  void u64(uint64_t V) {
    u32(uint32_t(V));
    u32(uint32_t(V >> 32));
  }

  void i64(int64_t V) { u64(uint64_t(V)); }

  /// Length-prefixed, so "ab"+"c" and "a"+"bc" hash differently.
  void str(std::string_view S) {
    u32(uint32_t(S.size()));
    bytes(S.data(), S.size());
  }

  uint64_t result() const { return H; }

private:
  uint64_t H = OffsetBasis;
};

/// One-shot FNV-1a of a raw byte string (no length prefix; matches the
/// classic published test vectors).
uint64_t stableHashBytes(std::string_view Data);

/// Fixed-width lowercase hex rendering of a hash (16 digits).
std::string stableHashHex(uint64_t H);

/// The structural hash of one procedure's lowered (pre-SSA) body. Covers
/// the procedure name, formal count, every instruction's opcode and
/// operands (instruction results by dense traversal-order number,
/// variables by kind + formal index or name, constants by value), binary
/// and unary operator spellings, callee names, by-reference binding and
/// literal-actual flags at call sites, and branch targets as block
/// indices. Excludes instruction ids, variable ids, source locations,
/// and anything reachable only through global state — see
/// docs/INCREMENTAL.md for the byte-level format.
uint64_t hashProcedureBody(const Procedure &P);

} // namespace ipcp

#endif // IPCP_SUPPORT_STABLEHASH_H
