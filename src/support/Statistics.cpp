//===- support/Statistics.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

using namespace ipcp;

std::string StatisticSet::str() const {
  std::string Out;
  for (const auto &[Name, Count] : Counters) {
    Out += Name;
    Out += " = ";
    Out += std::to_string(Count);
    Out += '\n';
  }
  return Out;
}
