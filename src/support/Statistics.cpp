//===- support/Statistics.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/Json.h"

#include <algorithm>

using namespace ipcp;

std::string StatisticSet::str() const {
  std::string Out;
  for (const auto &[Name, Count] : Counters) {
    Out += Name;
    Out += " = ";
    Out += std::to_string(Count);
    Out += '\n';
  }
  return Out;
}

JsonValue StatisticSet::toJson() const {
  JsonValue Obj = JsonValue::object();
  for (const auto &[Name, Count] : Counters)
    Obj.set(Name, JsonValue(Count));
  return Obj;
}

namespace {

struct CounterDesc {
  const char *Name;
  const char *Description;
};

constexpr CounterDesc Registry[] = {
#define IPCP_COUNTER(name, description) {#name, description},
#include "support/Counters.def"
#undef IPCP_COUNTER
};

} // namespace

const char *ipcp::describeCounter(const std::string &Name) {
  for (const CounterDesc &D : Registry)
    if (Name == D.Name)
      return D.Description;
  return nullptr;
}

bool ipcp::isRegisteredCounter(const std::string &Name) {
  return describeCounter(Name) != nullptr;
}

std::vector<std::pair<const char *, const char *>>
ipcp::registeredCounters() {
  std::vector<std::pair<const char *, const char *>> Out;
  for (const CounterDesc &D : Registry)
    Out.push_back({D.Name, D.Description});
  return Out;
}

std::string ipcp::formatStatsTable(const StatisticSet &Stats) {
  // Registry order groups related counters; unregistered names (if any
  // slip through) are appended alphabetically so nothing is hidden.
  std::vector<std::pair<std::string, uint64_t>> Rows;
  for (const CounterDesc &D : Registry) {
    auto It = Stats.counters().find(D.Name);
    if (It != Stats.counters().end())
      Rows.push_back({D.Name, It->second});
  }
  for (const auto &[Name, Count] : Stats.counters())
    if (!isRegisteredCounter(Name))
      Rows.push_back({Name, Count});

  size_t NameWidth = 0, ValueWidth = 0;
  for (const auto &[Name, Count] : Rows) {
    NameWidth = std::max(NameWidth, Name.size());
    ValueWidth = std::max(ValueWidth, std::to_string(Count).size());
  }

  std::string Out;
  for (const auto &[Name, Count] : Rows) {
    Out += "  ";
    Out += Name;
    Out.append(NameWidth - Name.size(), ' ');
    std::string Value = std::to_string(Count);
    Out.append(2 + ValueWidth - Value.size(), ' ');
    Out += Value;
    if (const char *Desc = describeCounter(Name)) {
      Out += "  ";
      Out += Desc;
    }
    Out += '\n';
  }
  return Out;
}
