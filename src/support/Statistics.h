//===- support/Statistics.h - Counters and timers ---------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight named counters and a wall-clock timer used by the analysis
/// pipeline to report the cost numbers behind the paper's Section 3.1.5
/// discussion (jump-function construction cost vs. propagation cost).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_STATISTICS_H
#define IPCP_SUPPORT_STATISTICS_H

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ipcp {

class JsonValue;

/// A bag of named monotonically increasing counters.
class StatisticSet {
public:
  /// Adds \p Delta to counter \p Name (creating it at zero).
  void add(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Reads counter \p Name (zero if never touched).
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// Merges all counters from \p Other into this set.
  void merge(const StatisticSet &Other) {
    for (const auto &[Name, Count] : Other.Counters)
      Counters[Name] += Count;
  }

  const std::map<std::string, uint64_t> &counters() const { return Counters; }

  /// Renders "name = value" lines sorted by name.
  std::string str() const;

  /// Serializes as a flat JSON object, name-sorted.
  JsonValue toJson() const;

private:
  std::map<std::string, uint64_t> Counters;
};

/// The registry in support/Counters.def: the one-line description of a
/// registered counter, or null for an unknown name. Every counter the
/// analyzer emits must be registered (StatisticsTests enforces this) and
/// documented in docs/OBSERVABILITY.md (the CI docs lint enforces that).
const char *describeCounter(const std::string &Name);

/// Whether \p Name appears in support/Counters.def.
bool isRegisteredCounter(const std::string &Name);

/// All registered (name, description) pairs in registry order.
std::vector<std::pair<const char *, const char *>> registeredCounters();

/// Renders an aligned human-readable table of \p Stats with the registry
/// descriptions — the driver's --stats output.
std::string formatStatsTable(const StatisticSet &Stats);

/// Measures wall-clock time between construction (or restart) and stop.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the timer.
  void restart() { Start = Clock::now(); }

  /// Elapsed seconds since construction or the last restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_STATISTICS_H
