//===- support/StringInterner.cpp -----------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

using namespace ipcp;

const std::string *StringInterner::intern(std::string_view S) {
  auto It = Table.find(S);
  if (It != Table.end())
    return It->second;
  Storage.emplace_back(S);
  const std::string *Handle = &Storage.back();
  Table.emplace(std::string_view(*Handle), Handle);
  return Handle;
}
