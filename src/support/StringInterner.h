//===- support/StringInterner.h - Unique string pool ------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A string interner: maps strings to stable, unique `const std::string *`
/// handles so that identifier comparisons throughout the compiler are
/// pointer comparisons. Pointers remain valid for the interner's lifetime.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_STRINGINTERNER_H
#define IPCP_SUPPORT_STRINGINTERNER_H

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ipcp {

/// Interns strings; returned pointers are stable and unique per content.
class StringInterner {
public:
  StringInterner() = default;
  StringInterner(const StringInterner &) = delete;
  StringInterner &operator=(const StringInterner &) = delete;

  /// Returns the canonical handle for \p S, inserting it if new.
  const std::string *intern(std::string_view S);

  /// Number of distinct strings interned so far.
  size_t size() const { return Table.size(); }

private:
  std::deque<std::string> Storage;
  std::unordered_map<std::string_view, const std::string *> Table;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_STRINGINTERNER_H
