//===- support/ThreadPool.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace ipcp;

ThreadPool::ThreadPool(unsigned ThreadCount) {
  if (ThreadCount == 0)
    ThreadCount = 1;
  Workers.reserve(ThreadCount);
  for (unsigned I = 0; I != ThreadCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  TasksAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    Tasks.push_back(std::move(Task));
    ++Unfinished;
  }
  TasksAvailable.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mutex);
  AllIdle.wait(Lock, [this] { return Unfinished == 0; });
}

unsigned ThreadPool::defaultConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      TasksAvailable.wait(Lock, [this] { return Stopping || !Tasks.empty(); });
      if (Tasks.empty())
        return; // Stopping and drained.
      Task = std::move(Tasks.front());
      Tasks.pop_front();
    }
    Task();
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      if (--Unfinished == 0)
        AllIdle.notify_all();
    }
  }
}
