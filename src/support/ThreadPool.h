//===- support/ThreadPool.h - Fixed-size task thread pool -------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size, queue-based thread pool with no external dependencies —
/// the execution engine behind the parallel suite runner (core/SuiteRunner).
/// Workers block on a single shared FIFO queue; there is no work stealing
/// because suite-analysis tasks are coarse (one whole program each) and a
/// shared queue keeps the implementation small and obviously correct.
///
/// wait() blocks until every submitted task has finished, so one pool can
/// serve several sequential parallel phases (analyze programs, then table
/// rows) without being torn down in between.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_THREADPOOL_H
#define IPCP_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ipcp {

/// Fixed-size pool of worker threads draining one FIFO task queue.
class ThreadPool {
public:
  /// Spawns \p ThreadCount workers (clamped to at least one).
  explicit ThreadPool(unsigned ThreadCount);

  /// Joins all workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Blocks until every task submitted so far has completed.
  void wait();

  unsigned threadCount() const { return unsigned(Workers.size()); }

  /// std::thread::hardware_concurrency with a floor of one (the value is
  /// zero on platforms that cannot report it).
  static unsigned defaultConcurrency();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Tasks;
  std::mutex Mutex;
  std::condition_variable TasksAvailable;
  std::condition_variable AllIdle;
  size_t Unfinished = 0; ///< queued + currently running tasks
  bool Stopping = false;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_THREADPOOL_H
