//===- support/Trace.cpp --------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/Json.h"

using namespace ipcp;

thread_local Trace *Trace::Active = nullptr;

size_t Trace::beginSpan(std::string Name, std::string Detail) {
  Span S;
  S.Name = std::move(Name);
  S.Detail = std::move(Detail);
  S.StartUs = nowUs();
  if (!OpenStack.empty()) {
    S.Parent = OpenStack.back();
    S.Depth = Spans[S.Parent].Depth + 1;
  }
  Spans.push_back(std::move(S));
  OpenStack.push_back(Spans.size() - 1);
  return Spans.size() - 1;
}

void Trace::endSpan() {
  if (OpenStack.empty())
    return;
  Span &S = Spans[OpenStack.back()];
  S.DurationUs = nowUs() - S.StartUs;
  S.Open = false;
  OpenStack.pop_back();
}

void Trace::absorb(const Trace &Child) {
  // The child trace was constructed after this one (its tasks were
  // spawned from a context where this trace was active), so the offset
  // is non-negative up to clock noise; clamp to keep times monotone.
  uint64_t OffsetUs = 0;
  if (Child.Start > Start)
    OffsetUs = uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                            Child.Start - Start)
                            .count());

  size_t Base = Spans.size();
  size_t AttachTo = OpenStack.empty() ? NoParent : OpenStack.back();
  unsigned BaseDepth = AttachTo == NoParent ? 0 : Spans[AttachTo].Depth + 1;

  for (const Span &ChildSpan : Child.Spans) {
    Span S = ChildSpan;
    S.StartUs += OffsetUs;
    if (S.Parent == NoParent)
      S.Parent = AttachTo;
    else
      S.Parent += Base;
    S.Depth += BaseDepth;
    Spans.push_back(std::move(S));
  }
  for (const Event &ChildEvent : Child.Events) {
    Event E = ChildEvent;
    E.TimeUs += OffsetUs;
    if (E.Span == NoParent)
      E.Span = AttachTo;
    else
      E.Span += Base;
    Events.push_back(std::move(E));
  }
  Counters.merge(Child.Counters);
}

void Trace::event(std::string Name, std::string Detail) {
  Event E;
  E.Name = std::move(Name);
  E.Detail = std::move(Detail);
  E.TimeUs = nowUs();
  if (!OpenStack.empty())
    E.Span = OpenStack.back();
  Events.push_back(std::move(E));
}

std::string Trace::str() const {
  std::string Out = "trace:\n";
  for (const Span &S : Spans) {
    Out.append(2 * (size_t(S.Depth) + 1), ' ');
    Out += S.Name;
    if (!S.Detail.empty()) {
      Out += '(';
      Out += S.Detail;
      Out += ')';
    }
    Out += "  ";
    Out += S.Open ? "(open)" : std::to_string(S.DurationUs) + " us";
    Out += '\n';
  }
  if (!Events.empty()) {
    Out += "events:\n";
    for (const Event &E : Events) {
      Out += "  ";
      Out += std::to_string(E.TimeUs);
      Out += " us  ";
      Out += E.Name;
      if (!E.Detail.empty()) {
        Out += '(';
        Out += E.Detail;
        Out += ')';
      }
      if (E.Span != NoParent) {
        Out += "  in ";
        Out += Spans[E.Span].Name;
      }
      Out += '\n';
    }
  }
  if (!Counters.counters().empty()) {
    Out += "counters:\n";
    for (const auto &[Name, Count] : Counters.counters()) {
      Out += "  ";
      Out += Name;
      Out += " = ";
      Out += std::to_string(Count);
      Out += '\n';
    }
  }
  return Out;
}

JsonValue Trace::spanToJson(size_t Index) const {
  const Span &S = Spans[Index];
  JsonValue Obj = JsonValue::object();
  Obj.set("name", S.Name);
  if (!S.Detail.empty())
    Obj.set("detail", S.Detail);
  Obj.set("start_us", S.StartUs);
  Obj.set("duration_us", S.DurationUs);
  JsonValue Children = JsonValue::array();
  for (size_t I = 0; I != Spans.size(); ++I)
    if (Spans[I].Parent == Index)
      Children.push(spanToJson(I));
  if (Children.size())
    Obj.set("children", std::move(Children));
  return Obj;
}

JsonValue Trace::toJson() const {
  JsonValue Obj = JsonValue::object();
  JsonValue Roots = JsonValue::array();
  for (size_t I = 0; I != Spans.size(); ++I)
    if (Spans[I].Parent == NoParent)
      Roots.push(spanToJson(I));
  Obj.set("spans", std::move(Roots));
  if (!Events.empty()) {
    JsonValue Evs = JsonValue::array();
    for (const Event &E : Events) {
      JsonValue EV = JsonValue::object();
      EV.set("name", E.Name);
      if (!E.Detail.empty())
        EV.set("detail", E.Detail);
      EV.set("time_us", E.TimeUs);
      if (E.Span != NoParent)
        EV.set("span", Spans[E.Span].Name);
      Evs.push(std::move(EV));
    }
    Obj.set("events", std::move(Evs));
  }
  if (!Counters.counters().empty())
    Obj.set("counters", Counters.toJson());
  return Obj;
}
