//===- support/Trace.h - Hierarchical analysis tracing ----------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of the observability layer: hierarchical timed spans
/// (one per pipeline stage, per SCCP solve, per cloning round, ...),
/// point events carrying a per-procedure detail string, and aggregated
/// counters. Tracing is opt-in and thread-local: instrumentation sites
/// go through the zero-cost-when-inactive helpers (ScopedTraceSpan,
/// traceEvent, traceCounter) instead of threading a Trace through every
/// analysis signature. Each thread has its own active trace; the parallel
/// suite runner gives every worker task a private Trace and merges them
/// into the parent trace in deterministic task order with absorb(), so a
/// traced `suitecheck --jobs=8` run renders the same span tree as a
/// sequential one (only the timings differ).
///
/// A finished trace renders as an indented text tree (`--trace`) or as
/// JSON (embedded in the `--report-json` report). The span and event
/// names used by the analyzer are documented in docs/OBSERVABILITY.md.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_TRACE_H
#define IPCP_SUPPORT_TRACE_H

#include "support/Statistics.h"

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ipcp {

class JsonValue;

/// One recording session. Create one, activate it around the work to
/// observe, then render with str() or toJson().
class Trace {
public:
  static constexpr size_t NoParent = size_t(-1);

  /// One completed (or still-open) timed region.
  struct Span {
    std::string Name;
    std::string Detail;          ///< e.g. the procedure being analyzed
    uint64_t StartUs = 0;        ///< offset from trace start
    uint64_t DurationUs = 0;     ///< 0 while still open
    size_t Parent = NoParent;    ///< index into spans(), NoParent for roots
    unsigned Depth = 0;
    bool Open = true;
  };

  /// One point-in-time event, attributed to the enclosing span.
  struct Event {
    std::string Name;
    std::string Detail;
    uint64_t TimeUs = 0;
    size_t Span = NoParent;
  };

  Trace() : Start(Clock::now()) {}

  /// The calling thread's active trace; null when tracing is off.
  static Trace *active() { return Active; }

  /// Installs \p T as the calling thread's active trace (null
  /// deactivates). Returns the previously active trace so scopes can
  /// nest.
  static Trace *setActive(Trace *T) {
    Trace *Prev = Active;
    Active = T;
    return Prev;
  }

  /// Opens a span under the currently open span. Returns its index.
  size_t beginSpan(std::string Name, std::string Detail = {});

  /// Closes the innermost open span (asserting LIFO discipline is the
  /// caller's job; mismatches simply close the innermost).
  void endSpan();

  /// Records a point event inside the currently open span.
  void event(std::string Name, std::string Detail = {});

  /// Bumps an aggregated counter.
  void count(const std::string &Name, uint64_t Delta = 1) {
    Counters.add(Name, Delta);
  }

  /// Appends \p Child's spans and events under this trace's currently
  /// open span (or as roots when none is open), offsetting their times by
  /// the interval between the two traces' construction, and merges the
  /// child's counters. The child is left untouched. This is how the
  /// parallel suite runner folds per-worker traces back into the parent
  /// trace in deterministic task order.
  void absorb(const Trace &Child);

  const std::vector<Span> &spans() const { return Spans; }
  const std::vector<Event> &events() const { return Events; }
  const StatisticSet &counters() const { return Counters; }

  /// Microseconds since the trace was constructed.
  uint64_t nowUs() const {
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        Clock::now() - Start)
                        .count());
  }

  /// Indented text rendering: the span tree with durations, then events,
  /// then counters.
  std::string str() const;

  /// JSON rendering: {"spans": [...], "events": [...], "counters": {...}}
  /// with spans nested as trees.
  JsonValue toJson() const;

private:
  using Clock = std::chrono::steady_clock;

  JsonValue spanToJson(size_t Index) const;

  static thread_local Trace *Active;

  Clock::time_point Start;
  std::vector<Span> Spans;
  std::vector<Event> Events;
  StatisticSet Counters;
  std::vector<size_t> OpenStack;
};

/// RAII span: no-op when no trace is active at construction time.
class ScopedTraceSpan {
public:
  ScopedTraceSpan(const char *Name, std::string Detail = {}) {
    if (Trace *T = Trace::active()) {
      T->beginSpan(Name, std::move(Detail));
      Recording = T;
    }
  }
  ~ScopedTraceSpan() {
    if (Recording)
      Recording->endSpan();
  }

  ScopedTraceSpan(const ScopedTraceSpan &) = delete;
  ScopedTraceSpan &operator=(const ScopedTraceSpan &) = delete;

private:
  Trace *Recording = nullptr;
};

/// Records a point event on the active trace, if any.
inline void traceEvent(const char *Name, std::string Detail = {}) {
  if (Trace *T = Trace::active())
    T->event(Name, std::move(Detail));
}

/// Bumps a counter on the active trace, if any.
inline void traceCounter(const char *Name, uint64_t Delta = 1) {
  if (Trace *T = Trace::active())
    T->count(Name, Delta);
}

} // namespace ipcp

#endif // IPCP_SUPPORT_TRACE_H
