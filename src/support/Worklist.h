//===- support/Worklist.h - Deduplicating worklist --------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FIFO worklist that keeps at most one pending occurrence of each item.
/// Used by the SCCP solver, the MOD/REF fixpoint, and the interprocedural
/// constant propagator (the paper's "simple worklist iterative scheme").
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_WORKLIST_H
#define IPCP_SUPPORT_WORKLIST_H

#include <cassert>
#include <deque>
#include <unordered_set>

namespace ipcp {

/// FIFO queue of unique T values; re-inserting a pending item is a no-op,
/// but an item may be re-inserted after it has been popped.
template <typename T> class Worklist {
public:
  /// Enqueues \p Item; returns false if it was already pending.
  bool insert(const T &Item) {
    if (!Pending.insert(Item).second)
      return false;
    Queue.push_back(Item);
    return true;
  }

  /// Dequeues the oldest item. Precondition: !empty().
  T pop() {
    assert(!empty() && "pop from empty worklist");
    T Item = Queue.front();
    Queue.pop_front();
    Pending.erase(Item);
    return Item;
  }

  bool empty() const { return Queue.empty(); }
  size_t size() const { return Queue.size(); }

private:
  std::deque<T> Queue;
  std::unordered_set<T> Pending;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_WORKLIST_H
