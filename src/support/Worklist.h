//===- support/Worklist.h - Deduplicating worklists -------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FIFO worklists that keep at most one pending occurrence of each item.
/// Worklist<T> hashes arbitrary keys and is used by the SCCP solver and
/// the MOD/REF fixpoint; IndexWorklist serves densely numbered keys (the
/// SCC-scheduled interprocedural propagator numbers procedures 0..N-1)
/// with a generation-stamped membership vector, so membership tests do no
/// hashing and clear() is O(1).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_SUPPORT_WORKLIST_H
#define IPCP_SUPPORT_WORKLIST_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

namespace ipcp {

/// FIFO queue of unique T values; re-inserting a pending item is a no-op,
/// but an item may be re-inserted after it has been popped.
template <typename T> class Worklist {
public:
  /// Enqueues \p Item; returns false if it was already pending.
  bool insert(const T &Item) {
    if (!Pending.insert(Item).second)
      return false;
    Queue.push_back(Item);
    return true;
  }

  /// Dequeues the oldest item. Precondition: !empty().
  T pop() {
    assert(!empty() && "pop from empty worklist");
    T Item = std::move(Queue.front());
    Queue.pop_front();
    auto It = Pending.find(Item);
    assert(It != Pending.end() && "queued item missing from pending set");
    Pending.erase(It);
    return Item;
  }

  /// Pre-sizes the membership hash for \p Count items, avoiding rehashes
  /// while a solver seeds its initial work.
  void reserve(size_t Count) { Pending.reserve(Count); }

  /// Drops all pending items.
  void clear() {
    Queue.clear();
    Pending.clear();
  }

  bool empty() const { return Queue.empty(); }
  size_t size() const { return Queue.size(); }

private:
  std::deque<T> Queue;
  std::unordered_set<T> Pending;
};

/// FIFO queue of unique dense indices in [0, reserve()d count).
/// Membership is a generation stamp per key: a key is pending iff its
/// stamp equals the current generation, so insert/pop never hash and
/// clear() just bumps the generation.
class IndexWorklist {
public:
  /// Grows the key universe to at least \p Count keys and pre-sizes the
  /// queue to match: at most one occurrence of each key is ever pending,
  /// so Count slots make every subsequent push allocation-free.
  void reserve(size_t Count) {
    if (Stamp.size() < Count)
      Stamp.resize(Count, 0);
    Queue.reserve(Count);
  }

  /// Empties the queue in O(1); all keys become re-insertable.
  void clear() {
    ++Generation;
    Queue.clear();
    Head = 0;
  }

  /// Enqueues \p Key; returns false if it was already pending.
  bool insert(unsigned Key) {
    assert(Key < Stamp.size() && "key outside reserved universe");
    if (Stamp[Key] == Generation)
      return false;
    Stamp[Key] = Generation;
    Queue.push_back(Key);
    return true;
  }

  /// Dequeues the oldest key. Precondition: !empty().
  unsigned pop() {
    assert(!empty() && "pop from empty worklist");
    unsigned Key = Queue[Head++];
    Stamp[Key] = Generation - 1; // no longer pending; re-insertable
    if (Head == Queue.size()) {
      Queue.clear();
      Head = 0;
    }
    return Key;
  }

  bool empty() const { return Head == Queue.size(); }
  size_t size() const { return Queue.size() - Head; }

private:
  std::vector<uint64_t> Stamp;
  std::vector<unsigned> Queue;
  size_t Head = 0;
  uint64_t Generation = 1;
};

} // namespace ipcp

#endif // IPCP_SUPPORT_WORKLIST_H
