//===- transform/Transform.cpp --------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "transform/Transform.h"

#include "analysis/CallGraph.h"
#include "analysis/DeadCode.h"
#include "analysis/ModRef.h"
#include "core/Pipeline.h"
#include "ir/Module.h"
#include "support/Casting.h"
#include "support/Trace.h"

#include <unordered_map>
#include <vector>

using namespace ipcp;

bool ipcp::parsePassSpec(const std::string &Spec, TransformPassConfig &Config,
                         std::string *Error) {
  Config.ConstantSubstitution = false;
  Config.CopyPropagation = false;
  size_t Pos = 0;
  for (;;) {
    size_t Comma = Spec.find(',', Pos);
    std::string Name = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    if (Name == "constants") {
      Config.ConstantSubstitution = true;
    } else if (Name == "copyprop") {
      Config.CopyPropagation = true;
    } else {
      if (Error)
        *Error = "unknown optimization pass '" + Name +
                 "' (expected constants, copyprop)";
      return false;
    }
    if (Comma == std::string::npos)
      return true;
    Pos = Comma + 1;
  }
}

unsigned ipcp::propagateCopies(Module &M, const ModRefInfo &MRI) {
  unsigned Forwarded = 0;
  for (const std::unique_ptr<Procedure> &P : M.procedures()) {
    const Procedure::InstStream &Stream = P->instStream();

    // Forwarded load -> replacement value. Every value placed in Avail is
    // itself fully resolved (never a load scheduled for deletion), so one
    // operand-rewrite sweep suffices — the same discipline applyFacts
    // uses for constant substitution.
    std::unordered_map<const Value *, Value *> LoadSubst;
    std::vector<LoadInst *> ForwardedLoads;

    for (const Procedure::InstStream::Span &Span : Stream.Spans) {
      // Scalar variable -> the value its most recent store in this block
      // wrote, still valid at the current point.
      std::unordered_map<Variable *, Value *> Avail;
      for (uint32_t I = Span.Begin; I != Span.End; ++I) {
        Instruction *Inst = Stream.Insts[I];
        switch (Inst->getKind()) {
        case ValueKind::Store: {
          auto *St = cast<StoreInst>(Inst);
          Value *V = St->getValueOperand();
          auto It = LoadSubst.find(V);
          Avail[St->getVariable()] = It == LoadSubst.end() ? V : It->second;
          break;
        }
        case ValueKind::Load: {
          auto *Ld = cast<LoadInst>(Inst);
          auto It = Avail.find(Ld->getVariable());
          if (It != Avail.end()) {
            LoadSubst[Ld] = It->second;
            ForwardedLoads.push_back(Ld);
          }
          break;
        }
        case ValueKind::Call:
          // The interprocedural ingredient: only the locations MOD
          // information proves the call may write are invalidated. With
          // worst-case MOD every call kills everything and the pass
          // degenerates to single-call-free regions (the Table 3
          // ablation, observable through opt_copies_propagated).
          for (Variable *V : MRI.callKills(cast<CallInst>(Inst)))
            Avail.erase(V);
          break;
        default:
          // ArrayLoad/ArrayStore touch arrays only, Read/Print touch no
          // scalar storage; none disturb forwarded scalar values.
          break;
        }
      }
    }

    if (LoadSubst.empty())
      continue;
    for (const std::unique_ptr<BasicBlock> &BB : P->blocks())
      for (const std::unique_ptr<Instruction> &Inst : BB->instructions())
        for (unsigned I = 0, E = Inst->getNumOperands(); I != E; ++I) {
          auto It = LoadSubst.find(Inst->getOperand(I));
          if (It != LoadSubst.end())
            Inst->setOperand(I, It->second);
        }
    for (LoadInst *Ld : ForwardedLoads) {
      Ld->getParent()->erase(Ld);
      ++Forwarded;
    }
  }
  return Forwarded;
}

static uint64_t elapsedUs(const Timer &T) {
  return uint64_t(T.seconds() * 1e6);
}

OptimizationResult ipcp::optimizeModule(Module &M, const IPCPOptions &Opts,
                                        const TransformPassConfig &Config,
                                        ResourceGuard *Guard) {
  OptimizationResult Result;
  ScopedTraceSpan OptSpan("optimize");
  Timer Total;
  Result.InstructionsBefore = M.instructionCount();

  // Replayed procedures contribute no substitution facts, so the
  // analyze-substitute rounds must run cache-less (Pipeline.h).
  IPCPOptions RoundOpts = Opts;
  RoundOpts.Cache = nullptr;

  // One guard spans every pass and round, so a deadline bounds the whole
  // optimization rather than restarting per round.
  ResourceGuard LocalGuard(Opts.Limits);
  if (!Guard)
    Guard = &LocalGuard;

  if (Config.ConstantSubstitution) {
    ScopedTraceSpan PassSpan("constant-substitution");
    Timer PassTimer;
    for (unsigned Round = 0; Round < Config.MaxRounds; ++Round) {
      ScopedTraceSpan RoundSpan("round", std::to_string(Round + 1));
      IPCPResult RoundResult = runIPCP(M, RoundOpts, Guard);
      ++Result.Rounds;
      Result.Stats.merge(RoundResult.Stats);

      // Facts from a degraded round are still sound (a cut-short
      // propagation discards its too-optimistic map entirely), so apply
      // whatever this round proved before stopping.
      TransformStats TS = applyFacts(M, RoundResult.Facts);
      Result.Substitutions += TS.LoadsReplaced;
      Result.Folds += TS.ExprsFolded;
      Result.BranchesResolved += TS.BranchesFolded;
      Result.BlocksRemoved += TS.BlocksRemoved;
      Result.InstsRemoved += TS.LoadsReplaced + TS.InstsRemoved;

      if (Guard->tripped()) {
        Result.Status = Guard->status();
        break;
      }
      if (!TS.changedAnything())
        break;
    }
    Result.PassTimings.push_back({"constants", elapsedUs(PassTimer)});
  }

  if (Config.CopyPropagation && !Guard->tripped()) {
    ScopedTraceSpan PassSpan("copy-propagation");
    Timer PassTimer;
    CallGraph CG(M);
    ModRefInfo MRI = Opts.UseModInformation ? ModRefInfo::compute(M, CG)
                                            : ModRefInfo::worstCase(M);
    Result.CopiesPropagated = propagateCopies(M, MRI);

    // Forwarding strands the forwarded loads' pure operand chains when
    // the load was a value's only consumer; sweep them so the optimized
    // module is as tight as the report claims.
    unsigned Cleaned = 0;
    for (const std::unique_ptr<Procedure> &P : M.procedures())
      Cleaned += removeTriviallyDeadInstructions(*P);
    Result.InstsRemoved += Result.CopiesPropagated + Cleaned;
    Result.PassTimings.push_back({"copyprop", elapsedUs(PassTimer)});
  }

  Result.InstructionsAfter = M.instructionCount();
  Result.Stats.add("opt_rounds", Result.Rounds);
  Result.Stats.add("opt_substitutions", Result.Substitutions);
  Result.Stats.add("opt_folds", Result.Folds);
  Result.Stats.add("opt_branches_resolved", Result.BranchesResolved);
  Result.Stats.add("opt_blocks_removed", Result.BlocksRemoved);
  Result.Stats.add("opt_insts_removed", Result.InstsRemoved);
  Result.Stats.add("opt_copies_propagated", Result.CopiesPropagated);
  Result.Stats.add("time_optimize_us", elapsedUs(Total));
  return Result;
}
