//===- transform/Transform.h - Interprocedural optimization -----*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transformation pipeline that closes the paper's loop: instead of
/// only *reporting* CONSTANTS(p), rewrite the program the way the paper's
/// Table 2/3 experiments imagine ("a transformed version of the original
/// source in which the interprocedural constants are textually
/// substituted into the code") and then run it.
///
/// Two passes, in order:
///
///  1. constant substitution + folding ("constants"): iterate the full
///     interprocedural analysis and applyFacts *on the module itself*
///     (not a scratch clone) until quiescence — every load proven
///     constant becomes a literal, expressions over literals fold,
///     constant branches resolve, and unreachable blocks disappear.
///     This is runCompletePropagation made real: the rewritten module is
///     the result, not just the counters.
///
///  2. interprocedural copy propagation ("copyprop"): per-block
///     store-to-load forwarding over the flat instStream(), killing
///     forwarded values across calls only for the locations in
///     ModRefInfo::callKills — the interprocedural MOD information is
///     what lets a value survive a call (the subsumption observation of
///     "Copy Propagation subsumes Constant Propagation", arXiv
///     2207.03894: with precise kill sets, forwarding a stored value
///     generalizes forwarding a stored constant).
///
/// Both passes preserve observable behavior: optimized modules verify in
/// pre-SSA form and interpret to byte-identical output (the differential
/// test layer and `ipcp_fuzz --optimize` enforce this). See
/// docs/TRANSFORMS.md for the contract of each pass.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_TRANSFORM_TRANSFORM_H
#define IPCP_TRANSFORM_TRANSFORM_H

#include "core/Options.h"
#include "support/Statistics.h"

#include <string>
#include <vector>

namespace ipcp {

class Module;
class ModRefInfo;

/// Which passes optimizeModule runs. Both default on; the driver's
/// `--optimize=<passes>` spec (comma-separated pass names) narrows this.
struct TransformPassConfig {
  /// Run iterated constant substitution + folding ("constants").
  bool ConstantSubstitution = true;

  /// Run store-to-load copy propagation ("copyprop").
  bool CopyPropagation = true;

  /// Round cap for the constant-substitution fixpoint (the paper's
  /// complete-propagation experiment converged after one extra round; the
  /// cap only guards adversarial inputs).
  unsigned MaxRounds = 8;
};

/// Parses a comma-separated pass list ("constants", "copyprop", or
/// "constants,copyprop" in any order) into \p Config, which is reset so
/// only the named passes run. Returns false (and fills \p Error) on an
/// unknown or empty pass name.
bool parsePassSpec(const std::string &Spec, TransformPassConfig &Config,
                   std::string *Error = nullptr);

/// Wall time of one executed pass, for the report's optimization block.
struct PassTiming {
  std::string Pass;
  uint64_t Us = 0;
};

/// What optimizeModule did to the module.
struct OptimizationResult {
  /// Analysis+substitution rounds executed by the constants pass.
  unsigned Rounds = 0;

  /// Loads of proven-constant locations rewritten into literals.
  unsigned Substitutions = 0;

  /// Binary/Unary instructions over literals folded away.
  unsigned Folds = 0;

  /// Conditional branches with proven-constant conditions rewritten into
  /// unconditional branches.
  unsigned BranchesResolved = 0;

  /// Blocks deleted as unreachable after branch resolution.
  unsigned BlocksRemoved = 0;

  /// Total instructions deleted (substituted loads, folded expressions,
  /// dead chains, forwarded loads — everything).
  unsigned InstsRemoved = 0;

  /// Loads forwarded to an earlier stored value by the copyprop pass.
  unsigned CopiesPropagated = 0;

  /// Module instruction counts on entry and exit of the pipeline.
  unsigned InstructionsBefore = 0;
  unsigned InstructionsAfter = 0;

  /// Passes that ran, in order, with their wall times.
  std::vector<PassTiming> PassTimings;

  /// Counters merged over every analysis round plus the opt_* totals.
  StatisticSet Stats;

  /// Degradation status across all rounds (first trip wins). A degraded
  /// optimization is still sound: facts already applied stay applied,
  /// remaining rounds are skipped.
  PipelineStatus Status;

  bool changedAnything() const {
    return Substitutions || Folds || BranchesResolved || BlocksRemoved ||
           InstsRemoved || CopiesPropagated;
  }
};

/// Optimizes \p M in place under analysis configuration \p Opts. The
/// summary cache is never consulted (replayed procedures carry no
/// substitution facts — same restriction as runCompletePropagation).
/// When \p Guard is null a run-local guard is created from Opts.Limits;
/// pass an external guard to share one deadline with surrounding work.
OptimizationResult optimizeModule(Module &M, const IPCPOptions &Opts = {},
                                  const TransformPassConfig &Config = {},
                                  ResourceGuard *Guard = nullptr);

/// The copyprop pass alone: forwards each load of a scalar variable to
/// the value most recently stored to it in the same block, when no
/// intervening call may modify the location (per \p MRI's kill sets —
/// \p MRI must be computed over \p M itself). Forwarded loads are
/// deleted. Returns the number of loads forwarded.
unsigned propagateCopies(Module &M, const ModRefInfo &MRI);

} // namespace ipcp

#endif // IPCP_TRANSFORM_TRANSFORM_H
