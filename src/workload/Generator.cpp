//===- workload/Generator.cpp ---------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "workload/Generator.h"

#include <vector>

using namespace ipcp;

namespace {

/// Deterministic generator state for one program.
class ProgramGenerator {
public:
  explicit ProgramGenerator(const GeneratorConfig &Config)
      : Config(Config), RngState(Config.Seed * 0x9E3779B97F4A7C15ULL + 1) {}

  std::string run();

private:
  // xorshift64.
  uint64_t next() {
    RngState ^= RngState << 13;
    RngState ^= RngState >> 7;
    RngState ^= RngState << 17;
    return RngState;
  }
  unsigned below(unsigned N) { return N ? next() % N : 0; }
  bool chance(unsigned Percent) { return below(100) < Percent; }

  struct ProcShape {
    std::string Name;
    unsigned NumParams;
  };

  std::string arrayIndex();
  void indent() { Out.append(2 * Depth, ' '); }
  void line(const std::string &Text) {
    indent();
    Out += Text;
    Out += '\n';
  }

  std::string varName(unsigned ProcIdx);
  std::string expr(unsigned ProcIdx, unsigned DepthLeft);
  std::string callStmt(unsigned ProcIdx);
  void stmt(unsigned ProcIdx, unsigned Budget, unsigned LoopDepth);
  void body(unsigned ProcIdx, unsigned Stmts, unsigned LoopDepth);
  void proc(unsigned ProcIdx);

  const GeneratorConfig &Config;
  uint64_t RngState;
  std::string Out;
  unsigned Depth = 0;
  unsigned LoopCounter = 0;
  std::vector<ProcShape> Procs;
  static constexpr unsigned NumLocals = 3;
};

} // namespace

std::string ProgramGenerator::varName(unsigned ProcIdx) {
  // Pick among this procedure's params, its locals, and the globals.
  unsigned NumParams = ProcIdx < Procs.size() ? Procs[ProcIdx].NumParams : 0;
  unsigned Total = NumParams + NumLocals + Config.NumGlobals;
  unsigned Pick = below(Total);
  if (Pick < NumParams)
    return "a" + std::to_string(Pick);
  Pick -= NumParams;
  if (Pick < NumLocals)
    return "v" + std::to_string(Pick);
  Pick -= NumLocals;
  return "g" + std::to_string(Pick);
}

std::string ProgramGenerator::expr(unsigned ProcIdx, unsigned DepthLeft) {
  if (DepthLeft == 0 || chance(45)) {
    if (chance(40))
      return std::to_string(static_cast<int>(below(19)) - 9);
    return varName(ProcIdx);
  }
  static const char *Ops[] = {"+", "+", "-", "*", "<", "=="};
  const char *Op = Ops[below(6)];
  return "(" + expr(ProcIdx, DepthLeft - 1) + " " + Op + " " +
         expr(ProcIdx, DepthLeft - 1) + ")";
}

std::string ProgramGenerator::callStmt(unsigned ProcIdx) {
  // Layered: only call procedures with larger indices (acyclic), except
  // for guarded self-recursion.
  if (ProcIdx + 1 >= Procs.size())
    return "";
  unsigned Callee = ProcIdx + 1 + below(Procs.size() - ProcIdx - 1);
  const ProcShape &Target = Procs[Callee];

  std::string Call = "call " + Target.Name + "(";
  // Variable actuals must be distinct within one call (the Fortran
  // no-alias rule) and never globals (a global by-ref actual aliased
  // with direct global access would break the framework's assumption).
  std::vector<std::string> UsedVars;
  unsigned NumParams = Procs[ProcIdx].NumParams;
  for (unsigned I = 0; I != Target.NumParams; ++I) {
    if (I)
      Call += ", ";
    if (chance(Config.LiteralArgChance)) {
      Call += std::to_string(below(200));
      continue;
    }
    if (chance(60)) {
      // Try a distinct local/param variable actual (pass-through food).
      unsigned Total = NumParams + NumLocals;
      std::string Name;
      for (unsigned Try = 0; Try != 4 && Name.empty(); ++Try) {
        unsigned Pick = below(Total);
        std::string Candidate = Pick < NumParams
                                    ? "a" + std::to_string(Pick)
                                    : "v" + std::to_string(Pick - NumParams);
        bool Dup = false;
        for (const std::string &Used : UsedVars)
          if (Used == Candidate)
            Dup = true;
        if (!Dup)
          Name = Candidate;
      }
      if (!Name.empty()) {
        UsedVars.push_back(Name);
        Call += Name;
        continue;
      }
    }
    // Expression actual (hidden temporary). The "+ 0" wrapper guarantees
    // this is never a bare variable — in particular never a bare global,
    // which by-reference semantics would alias with direct global access
    // inside the callee (the Fortran nonconformance the framework
    // assumes away). Value numbering folds the identity, so the
    // analysis still sees the underlying expression.
    Call += "(" + expr(ProcIdx, 2) + " + 0)";
  }
  Call += ");";
  return Call;
}

std::string ProgramGenerator::arrayIndex() {
  // In-bounds by construction: loop variables stay within 0..10 and the
  // arrays have 16 elements.
  switch (below(3)) {
  case 0:
    return "i0";
  case 1:
    return "i1";
  default:
    return std::to_string(below(16));
  }
}

void ProgramGenerator::stmt(unsigned ProcIdx, unsigned Budget,
                            unsigned LoopDepth) {
  unsigned Roll = below(100);

  if (Roll < Config.CallChance && LoopDepth == 0) {
    std::string Call = callStmt(ProcIdx);
    if (!Call.empty()) {
      line(Call);
      return;
    }
    Roll = 100; // fall through to an assignment
  } else if (Roll < Config.CallChance + Config.IfChance && Budget > 1) {
    line("if (" + expr(ProcIdx, 2) + ") {");
    ++Depth;
    body(ProcIdx, 1 + below(2), LoopDepth);
    --Depth;
    if (chance(40)) {
      line("} else {");
      ++Depth;
      body(ProcIdx, 1 + below(2), LoopDepth);
      --Depth;
    }
    line("}");
    return;
  } else if (Roll < Config.CallChance + Config.IfChance + Config.LoopChance &&
             Budget > 1 && LoopDepth < 2) {
    std::string IndVar = "i" + std::to_string(LoopCounter++ % 2);
    unsigned Lo = below(4);
    line("do " + IndVar + " = " + std::to_string(Lo) + ", " +
         std::to_string(Lo + 1 + below(6)) + " {");
    ++Depth;
    body(ProcIdx, 1 + below(2), LoopDepth + 1);
    --Depth;
    line("}");
    return;
  } else if (Roll <
             Config.CallChance + Config.IfChance + Config.LoopChance +
                 Config.ReadChance) {
    line("read v" + std::to_string(below(NumLocals)) + ";");
    return;
  } else if (Config.UseWhileLoops && Budget > 1 && LoopDepth < 2 &&
             chance(10)) {
    // Bounded counter loop. The w* counters are reserved for while
    // loops (no other statement ever reads or writes them), so every
    // write is either a small initialization or the decrement below:
    // termination is guaranteed even when loops nest and share one.
    std::string Counter = "w" + std::to_string(LoopCounter++ % 2);
    line(Counter + " = " + std::to_string(1 + below(6)) + ";");
    line("while (" + Counter + " > 0) {");
    ++Depth;
    body(ProcIdx, 1 + below(2), LoopDepth + 1);
    line(Counter + " = " + Counter + " - 1;");
    --Depth;
    line("}");
    return;
  } else if (Config.UseArrays && chance(12)) {
    if (chance(50)) {
      std::string Arr = chance(50) ? "ga" : "la";
      line(Arr + "[" + arrayIndex() + "] = " +
           expr(ProcIdx, Config.MaxExprDepth) + ";");
    } else {
      std::string Arr = chance(50) ? "ga" : "la";
      line("v" + std::to_string(below(NumLocals)) + " = " + Arr + "[" +
           arrayIndex() + "];");
    }
    return;
  } else if (chance(8)) {
    line("print " + expr(ProcIdx, Config.MaxExprDepth) + ";");
    return;
  }

  // Assignment.
  std::string Target;
  if (chance(Config.GlobalAssignChance) && Config.NumGlobals)
    Target = "g" + std::to_string(below(Config.NumGlobals));
  else if (chance(50))
    Target = "v" + std::to_string(below(NumLocals));
  else if (Procs[ProcIdx].NumParams)
    Target = "a" + std::to_string(below(Procs[ProcIdx].NumParams));
  else
    Target = "v" + std::to_string(below(NumLocals));
  // Bias toward constants so there is something to propagate.
  std::string Value = chance(35) ? std::to_string(below(500))
                                 : expr(ProcIdx, Config.MaxExprDepth);
  line(Target + " = " + Value + ";");
}

void ProgramGenerator::body(unsigned ProcIdx, unsigned Stmts,
                            unsigned LoopDepth) {
  for (unsigned I = 0; I != Stmts; ++I)
    stmt(ProcIdx, Stmts - I, LoopDepth);
}

void ProgramGenerator::proc(unsigned ProcIdx) {
  const ProcShape &Shape = Procs[ProcIdx];
  std::string Header = "proc " + Shape.Name + "(";
  for (unsigned I = 0; I != Shape.NumParams; ++I) {
    if (I)
      Header += ", ";
    Header += "a" + std::to_string(I);
  }
  Header += ") {";
  line(Header);
  ++Depth;
  line("var v0, v1, v2, i0, i1;");
  if (Config.UseWhileLoops)
    line("var w0, w1;");
  if (Config.UseArrays)
    line("var la[16];");

  // Guarded self-recursion: strictly decreasing depth argument.
  if (Config.AllowRecursion && Shape.NumParams != 0 && chance(50)) {
    line("if (a0 > 0) {");
    ++Depth;
    std::string Self = "call " + Shape.Name + "(a0 - 1";
    // Wrap the remaining arguments as expressions (hidden temporaries)
    // so recursion never creates by-reference aliasing.
    for (unsigned I = 1; I != Shape.NumParams; ++I)
      Self += ", (" + expr(ProcIdx, 1) + " + 0)";
    Self += ");";
    line(Self);
    --Depth;
    line("}");
  }

  body(ProcIdx, Config.StmtsPerProc, 0);
  --Depth;
  line("}");
  line("");
}

std::string ProgramGenerator::run() {
  Out += "// generated: seed=" + std::to_string(Config.Seed) + "\n";
  if (Config.NumGlobals) {
    Out += "global ";
    for (unsigned I = 0; I != Config.NumGlobals; ++I) {
      if (I)
        Out += ", ";
      Out += "g" + std::to_string(I);
    }
    Out += ";\n";
  }
  if (Config.UseArrays)
    Out += "global ga[16];\n";
  Out += "\n";

  // main is procedure 0 with no parameters; the rest follow in layers.
  Procs.push_back({"main", 0});
  for (unsigned I = 0; I != Config.NumProcs; ++I)
    Procs.push_back(
        {"p" + std::to_string(I), 1 + below(Config.MaxParams)});

  for (unsigned I = 0; I != Procs.size(); ++I)
    proc(I);
  return std::move(Out);
}

std::string ipcp::generateProgram(const GeneratorConfig &Config) {
  ProgramGenerator Gen(Config);
  return Gen.run();
}
