//===- workload/Generator.h - Random program generator ----------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random MiniFort program generator, used by the property tests
/// (jump-function containment, soundness against the interpreter, MOD
/// monotonicity) and the scaling benchmarks.
///
/// Generated programs are layered: procedure i only calls procedures with
/// larger indices, so the call graph is acyclic unless AllowRecursion
/// requests self-calls. Control flow uses bounded DO loops and IF
/// statements only, so every generated program terminates. Generated
/// expressions avoid division and modulus (no trap-by-zero), variable
/// actuals are locals/formals only and never repeated within one call
/// (the Fortran no-alias rule the framework assumes), and literals stay
/// small to keep overflow rare — a trapped execution is still handled
/// gracefully by the oracle.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOAD_GENERATOR_H
#define IPCP_WORKLOAD_GENERATOR_H

#include <cstdint>
#include <string>

namespace ipcp {

/// Shape parameters for one generated program.
struct GeneratorConfig {
  uint64_t Seed = 1;
  unsigned NumProcs = 8;       ///< besides main
  unsigned NumGlobals = 4;     ///< scalar globals
  unsigned MaxParams = 3;      ///< per procedure
  unsigned StmtsPerProc = 10;  ///< top-level statements per body
  unsigned MaxExprDepth = 3;
  /// Percent chances (0..100) steering statement selection.
  unsigned CallChance = 30;
  unsigned IfChance = 15;
  unsigned LoopChance = 15;
  unsigned ReadChance = 5;
  unsigned GlobalAssignChance = 25; ///< assignments targeting globals
  /// Percent of call actuals that are literal constants.
  unsigned LiteralArgChance = 40;
  bool AllowRecursion = false;

  /// Emit array traffic (a 16-element global array plus a local array per
  /// procedure; indices are loop variables or small literals, so accesses
  /// stay in bounds). Arrays are opaque to the analysis — this exercises
  /// the bottom paths.
  bool UseArrays = true;

  /// Emit bounded counter-controlled while loops in addition to DO loops.
  bool UseWhileLoops = true;
};

/// Produces MiniFort source text; same config -> same text.
std::string generateProgram(const GeneratorConfig &Config);

} // namespace ipcp

#endif // IPCP_WORKLOAD_GENERATOR_H
