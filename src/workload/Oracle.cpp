//===- workload/Oracle.cpp ------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "workload/Oracle.h"

using namespace ipcp;

std::string OracleReport::str() const {
  std::string Out = Sound ? "sound" : "UNSOUND";
  Out += " (" + std::to_string(CheckedPairs) + " pairs over " +
         std::to_string(DynamicEntries) + " entries)";
  for (const std::string &V : Violations) {
    Out += "\n  ";
    Out += V;
  }
  return Out;
}

OracleReport ipcp::checkSoundness(const Module &M, const IPCPResult &R,
                                  const ExecutionOptions &Opts) {
  OracleReport Report;
  ExecutionResult Exec = interpret(M, Opts);
  Report.ExecStatus = Exec.TheStatus;
  Report.DynamicEntries = Exec.Entries.size();

  for (const EntrySnapshot &Snap : Exec.Entries) {
    const ProcedureResult *PR = R.findProc(Snap.Proc->getName());
    if (!PR)
      continue;
    for (const auto &[Name, Claimed] : PR->EntryConstants) {
      // Resolve the claimed name against the snapshot's variables: the
      // procedure's formal of that name, or the global of that name.
      const Variable *Var = Snap.Proc->findVariable(Name);
      if (!Var || !Var->isFormal()) {
        const Variable *G = M.findGlobal(Name);
        if (G)
          Var = G;
      }
      if (!Var)
        continue; // e.g. a local shadowing; not part of a snapshot
      auto It = Snap.Values.find(Var);
      if (It == Snap.Values.end())
        continue;
      ++Report.CheckedPairs;
      if (It->second != Claimed) {
        Report.Sound = false;
        Report.Violations.push_back(
            "procedure '" + Snap.Proc->getName() + "': claimed " + Name +
            " = " + std::to_string(Claimed) + " but observed " +
            std::to_string(It->second));
      }
    }
  }
  return Report;
}
