//===- workload/Oracle.h - Soundness oracle ---------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-checks an analysis result against real executions: every pair in
/// CONSTANTS(p) must hold on every dynamic entry to p that the reference
/// interpreter records (paper Section 2's definition of correctness). A
/// procedure that is never invoked is vacuously satisfied — the paper's
/// "x retains the value T only if the procedure containing x is never
/// called".
///
/// Used by the property tests over random generated programs and by the
/// suite validation tests; strictly stronger than the paper's informal
/// validation.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOAD_ORACLE_H
#define IPCP_WORKLOAD_ORACLE_H

#include "core/Pipeline.h"
#include "interp/Interpreter.h"

#include <string>
#include <vector>

namespace ipcp {

/// Outcome of one oracle run.
struct OracleReport {
  bool Sound = true;
  std::vector<std::string> Violations;
  unsigned CheckedPairs = 0;
  unsigned DynamicEntries = 0;
  ExecutionResult::Status ExecStatus = ExecutionResult::Status::Ok;

  std::string str() const;
};

/// Executes \p M and validates \p R against the recorded entries.
/// A trapped or out-of-fuel execution still validates the entries that
/// were recorded before the stop.
OracleReport checkSoundness(const Module &M, const IPCPResult &R,
                            const ExecutionOptions &Opts = {});

} // namespace ipcp

#endif // IPCP_WORKLOAD_ORACLE_H
