//===- workload/Programs.cpp ----------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "workload/Programs.h"

#include "frontend/Parser.h"
#include "ir/AstLower.h"
#include "workload/ProgramsInternal.h"

#include <cstdio>
#include <cstdlib>

using namespace ipcp;

const std::vector<SuiteProgram> &ipcp::benchmarkSuite() {
  static const std::vector<SuiteProgram> Suite = [] {
    std::vector<SuiteProgram> All = suiteProgramsAtoM();
    std::vector<SuiteProgram> Rest = suiteProgramsNtoZ();
    All.insert(All.end(), std::make_move_iterator(Rest.begin()),
               std::make_move_iterator(Rest.end()));
    return All;
  }();
  return Suite;
}

const SuiteProgram *ipcp::findSuiteProgram(const std::string &Name) {
  for (const SuiteProgram &P : benchmarkSuite())
    if (P.Name == Name)
      return &P;
  return nullptr;
}

std::unique_ptr<Module> ipcp::loadSuiteModule(const SuiteProgram &Prog) {
  DiagnosticsEngine Diags;
  std::optional<Program> Ast = parseAndCheck(Prog.Source, Diags);
  if (!Ast) {
    std::fprintf(stderr, "suite program '%s' failed to compile:\n%s",
                 Prog.Name.c_str(), Diags.str().c_str());
    std::abort();
  }
  return lowerProgram(*Ast);
}

unsigned ipcp::countCodeLines(const std::string &Source) {
  unsigned Lines = 0;
  size_t Pos = 0;
  while (Pos < Source.size()) {
    size_t End = Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Source.size();
    std::string_view Line(Source.data() + Pos, End - Pos);
    // Strip leading whitespace; skip blanks and pure comments.
    size_t First = Line.find_first_not_of(" \t\r");
    if (First != std::string_view::npos &&
        Line.substr(First, 2) != "//")
      ++Lines;
    Pos = End + 1;
  }
  return Lines;
}
