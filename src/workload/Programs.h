//===- workload/Programs.h - The benchmark suite ----------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Twelve MiniFort programs named after the SPEC'89 / PERFECT suite
/// members of the paper's study (Table 1). The original FORTRAN sources
/// are not reproducible here, so each program is a hand-written synthetic
/// stand-in engineered to exhibit the *qualitative* constant-flow
/// structure the paper reports for its namesake — which jump function
/// classes find its constants, whether return jump functions or MOD
/// information matter, whether complete propagation exposes more (see the
/// Notes field and DESIGN.md). Every program parses, verifies, executes
/// to completion without traps under the reference interpreter, and is
/// checked by the soundness oracle in the test suite.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOAD_PROGRAMS_H
#define IPCP_WORKLOAD_PROGRAMS_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace ipcp {

/// One named benchmark program.
struct SuiteProgram {
  std::string Name;
  std::string Source;
  /// Which mechanisms the program exercises and the relations expected
  /// between analysis configurations.
  std::string Notes;
};

/// The twelve programs, in the paper's table order.
const std::vector<SuiteProgram> &benchmarkSuite();

/// Lookup by name; null when absent.
const SuiteProgram *findSuiteProgram(const std::string &Name);

/// Parses, checks, and lowers \p Prog; aborts on any frontend error
/// (suite programs are vetted by the test suite).
std::unique_ptr<Module> loadSuiteModule(const SuiteProgram &Prog);

/// Counts non-blank, non-comment source lines (the paper's Table 1
/// line-count convention).
unsigned countCodeLines(const std::string &Source);

} // namespace ipcp

#endif // IPCP_WORKLOAD_PROGRAMS_H
