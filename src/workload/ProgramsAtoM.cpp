//===- workload/ProgramsAtoM.cpp - Suite programs adm..mdg ----------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "workload/ProgramsInternal.h"

using namespace ipcp;

std::vector<SuiteProgram> ipcp::suiteProgramsAtoM() {
  std::vector<SuiteProgram> Programs;

  //===------------------------------------------------------------------===//
  // adm: air-pollution transport. Constants enter as literal actuals at
  // flat call sites; expected: all four jump function classes equal,
  // intraprocedural baseline lower, return jump functions irrelevant.
  //===------------------------------------------------------------------===//
  Programs.push_back({"adm", R"(
// adm: pollutant transport over a 1-D grid, phases called with literal
// grid sizes and rates from the driver.
global conc[256], emis[256], wind[64];

proc setrow(base, count, value) {
  var i;
  do i = 0, count - 1 {
    conc[base + i] = value;
    emis[base + i] = value / 2;
  }
}

proc emit(n, scale) {
  var i;
  do i = 0, n - 1 {
    conc[i] = conc[i] + emis[i] * scale;
  }
}

proc advect(n, cfl) {
  var i, flux;
  do i = 1, n - 1 {
    flux = (conc[i] - conc[i - 1]) * cfl;
    conc[i] = conc[i] - flux / 8;
  }
}

proc diffusevert(n, k) {
  var i, lap;
  do i = 1, n - 2 {
    lap = conc[i - 1] - 2 * conc[i] + conc[i + 1];
    conc[i] = conc[i] + lap / k;
  }
}

proc chem(n, rate) {
  var i, loss;
  do i = 0, n - 1 {
    loss = conc[i] / rate;
    conc[i] = conc[i] - loss;
  }
}

proc settle(n, speed) {
  var i;
  do i = 0, n - 2 {
    conc[i] = conc[i] + conc[i + 1] / speed;
  }
}

proc stats(n) {
  var i, total, peak;
  total = 0;
  peak = 0;
  do i = 0, n - 1 {
    total = total + conc[i];
    if (conc[i] > peak) {
      peak = conc[i];
    }
  }
  print total;
  print peak;
}

proc main() {
  var t, hours;
  hours = 6;
  call setrow(0, 16, 8);
  call setrow(16, 16, 4);
  do t = 1, hours {
    call emit(32, 2);
    call advect(32, 4);
    call diffusevert(32, 5);
    call chem(32, 10);
    call settle(32, 6);
    wind[t] = t * 3;
  }
  call stats(32);
}
)",
                      "literal actuals only; expect literal == intra == "
                      "pass-through == polynomial; return JFs no effect"});

  //===------------------------------------------------------------------===//
  // doduc: nuclear reactor kinetics. Almost everything is a literal
  // actual; one actual is an intraprocedurally computed constant and one
  // out-parameter initialization needs a return jump function.
  //===------------------------------------------------------------------===//
  Programs.push_back({"doduc", R"(
// doduc: reactor channel simulation; dozens of literal rate constants,
// one computed table size, one out-parameter setup routine.
global temp[128], rho[128], press[128];

proc heat(n, q, cap) {
  var i;
  do i = 0, n - 1 {
    temp[i] = temp[i] + q / cap;
  }
}

proc expand(n, alpha) {
  var i;
  do i = 0, n - 1 {
    rho[i] = rho[i] - temp[i] / alpha;
  }
}

proc pressurize(n, gamma, bias) {
  var i;
  do i = 0, n - 1 {
    press[i] = rho[i] * gamma + bias;
  }
}

proc relax(n, w) {
  var i, d;
  do i = 1, n - 1 {
    d = press[i] - press[i - 1];
    press[i] = press[i] - d / w;
  }
}

proc setfreq(every) {
  every = 8;
}

proc inittables(n, t0, r0) {
  var i;
  do i = 0, n - 1 {
    temp[i] = t0;
    rho[i] = r0;
    press[i] = 0;
  }
}

proc probe(n, every) {
  var i;
  do i = 0, n - 1 {
    if (i % every == 0) {
      print temp[i] + press[i];
    }
  }
}

proc main() {
  var cells, t, span, freq;
  cells = 32;
  span = 4;
  call setfreq(freq);
  call inittables(cells, 500, 9);
  do t = 1, span {
    call heat(32, 60, 3);
    call expand(32, 25);
    call pressurize(32, 7, 100);
    call relax(32, 4);
  }
  call probe(cells, freq);
}
)",
                      "mostly literal actuals; only probe's arguments need "
                      "gcp ('cells') and the return jump function of "
                      "setfreq ('freq'); expect literal slightly below the "
                      "rest and a small drop without return JFs"});

  //===------------------------------------------------------------------===//
  // fpppp: quantum chemistry, one huge routine plus helpers. Every
  // mechanism appears: literal actuals, constant globals, pass-through
  // chains, out-parameter setup.
  //===------------------------------------------------------------------===//
  Programs.push_back({"fpppp", R"(
// fpppp: two-electron integrals; a single dominant routine (fockbuild)
// and small helpers; constants arrive every way the framework knows.
global norb, nshell, cutoff;
global dens[256], fock[256], eri[256];

proc setup() {
  cutoff = 1000;
}

proc scaledens(n, f) {
  var i;
  do i = 0, n * n - 1 {
    dens[i] = dens[i] * f + 1;
  }
}

proc contract(n, f) {
  // pass-through: forwards both parameters unchanged
  call scaledens(n, f);
}

proc pairenergy(i, j, n) {
  var e;
  e = dens[i * n + j] * eri[i * n + j];
  print e;
}

proc fockbuild(n) {
  var i, j, k, acc, scale, half;
  scale = 2;
  half = n / 2;
  do i = 0, n - 1 {
    do j = 0, n - 1 {
      acc = 0;
      do k = 0, n - 1 {
        acc = acc + dens[i * n + k] * eri[k * n + j];
      }
      fock[i * n + j] = acc * scale;
      if (fock[i * n + j] > cutoff) {
        fock[i * n + j] = cutoff;
      }
    }
  }
  do i = 0, half - 1 {
    fock[i] = fock[i] + nshell;
  }
}

proc main() {
  var n, i, iter;
  n = 12;
  nshell = 4;
  call setup();
  do i = 0, n * n - 1 {
    dens[i] = i % 5;
    eri[i] = i % 7;
  }
  do iter = 1, 3 {
    call contract(n, 3);
    call fockbuild(n);
  }
  call pairenergy(2, 3, n);
  call pairenergy(5, 1, n);
  print fock[0];
}
)",
                      "one dominant routine; constants via gcp ('n', "
                      "'nshell') and one return jump function ('cutoff'); "
                      "literal < intra < pass-through; the in-loop calls "
                      "make the no-MOD ablation destructive"});

  //===------------------------------------------------------------------===//
  // linpackd: dense linear algebra. The driver computes the problem size
  // once and passes it by variable to every routine; inner routines get
  // derived (non-constant) arguments. Inner calls make the no-MOD
  // ablation destructive.
  //===------------------------------------------------------------------===//
  Programs.push_back({"linpackd", R"(
// linpackd: LU factorization and solve on a n x n matrix stored in a
// global array; the driver owns the constants.
global a[400], b[20], x[20], pivots[20];

proc fill(base, count, seed) {
  var i;
  do i = 0, count - 1 {
    a[base + i] = (seed * (i + 3)) % 19 + 1;
  }
}

proc matgen(n, lda) {
  var j;
  do j = 0, n - 1 {
    call fill(j * lda, n, j + 7);
    b[j] = j % 11 + 1;
  }
}

proc idamax(base, count, out) {
  var i, best;
  best = 0;
  out = 0;
  do i = 0, count - 1 {
    if (a[base + i] > best) {
      best = a[base + i];
      out = i;
    }
  }
}

proc dscal(base, count, divisor) {
  var i;
  do i = 0, count - 1 {
    a[base + i] = a[base + i] / divisor;
  }
}

proc daxpy(srcbase, dstbase, count, factor) {
  var i;
  do i = 0, count - 1 {
    a[dstbase + i] = a[dstbase + i] - a[srcbase + i] * factor;
  }
}

proc dgefa(n, lda) {
  var k, j, p, piv;
  do k = 0, n - 2 {
    call idamax(k * lda + k, n - k, p);
    pivots[k] = p;
    piv = a[k * lda + k];
    if (piv == 0) {
      piv = 1;
    }
    call dscal(k * lda + k, n - k, piv);
    do j = k + 1, n - 1 {
      call daxpy(k * lda + k, j * lda + k, n - k, a[j * lda + k]);
    }
  }
}

proc dgesl(n, lda) {
  var i, j, acc;
  do i = 0, n - 1 {
    acc = b[i];
    do j = 0, i - 1 {
      acc = acc - a[i * lda + j] * x[j];
    }
    x[i] = acc;
  }
}

proc residual(n) {
  var i, r;
  r = 0;
  do i = 0, n - 1 {
    r = r + x[i] - b[i];
  }
  print r;
}

proc main() {
  var n, lda, trials, t;
  n = 16;
  lda = 20;
  trials = 2;
  do t = 1, trials {
    call matgen(n, lda);
    call dgefa(n, lda);
    call dgesl(n, lda);
    call residual(n);
  }
  print a[0] + x[0];
}
)",
                      "driver-computed constants passed by variable to flat "
                      "calls; literal far below the rest; no-MOD ablation "
                      "destroys nearly everything (inner calls kill the "
                      "by-ref actuals)"});

  //===------------------------------------------------------------------===//
  // matrix300: dense matrix multiply variants. Dimensions live in
  // globals assigned by the driver; one helper level needs pass-through.
  //===------------------------------------------------------------------===//
  Programs.push_back({"matrix300", R"(
// matrix300: blocked matrix products; dimensions in globals, inner
// kernels reached through one forwarding level.
global nrows, ncols, blocksz;
global ma[324], mb[324], mc[324];

proc kernel(arow, bcol, n) {
  var k, acc;
  acc = 0;
  do k = 0, n - 1 {
    acc = acc + ma[arow * n + k] * mb[k * n + bcol];
  }
  mc[arow * n + bcol] = acc;
}

proc block(rowbase, colbase, n, bs) {
  var i, j;
  do i = rowbase, rowbase + bs - 1 {
    do j = colbase, colbase + bs - 1 {
      call kernel(i, j, n);
    }
  }
}

proc multiply(n, bs) {
  var bi, bj, nb;
  nb = n / bs;
  do bi = 0, nb - 1 {
    do bj = 0, nb - 1 {
      call block(bi * bs, bj * bs, n, bs);
    }
  }
}

proc loadmats(n, seed) {
  var i;
  do i = 0, n * n - 1 {
    ma[i] = (i + seed) % 9;
    mb[i] = (i * seed) % 7;
    mc[i] = 0;
  }
}

proc checksum(n) {
  var i, s;
  s = 0;
  do i = 0, n * n - 1 {
    s = s + mc[i];
  }
  print s;
}

proc main() {
  nrows = 12;
  ncols = 12;
  blocksz = 4;
  call loadmats(nrows, 5);
  call multiply(nrows, blocksz);
  call checksum(nrows);
  print nrows * ncols;
}
)",
                      "constant globals + a forwarding level (multiply -> "
                      "block -> kernel); literal < intra < pass-through; "
                      "no-MOD loses the globals"});

  //===------------------------------------------------------------------===//
  // mdg: molecular dynamics of water. Mixed mechanisms with a small
  // return-jump-function effect through an out-parameter particle count.
  //===------------------------------------------------------------------===//
  Programs.push_back({"mdg", R"(
// mdg: pairwise forces on a particle set; the neighbor cutoff and box
// size are globals, the particle count is produced by a setup routine.
global boxlen, cutoff2, pairskip;
global posx[64], posy[64], fx[64], fy[64];

proc pickseed(out) {
  out = 7;
}

proc initpos(n, seed) {
  var i;
  do i = 0, n - 1 {
    posx[i] = (i * seed) % 13;
    posy[i] = (i * 5) % 11;
    fx[i] = 0;
    fy[i] = 0;
  }
}

proc forces(n, strength) {
  var i, j, dx, dy, d2;
  do i = 0, n - 1 {
    do j = 0, n - 1 {
      if (j != i) {
        dx = posx[i] - posx[j];
        dy = posy[i] - posy[j];
        d2 = dx * dx + dy * dy + 1;
        if (d2 < cutoff2) {
          fx[i] = fx[i] + dx * strength / d2;
          fy[i] = fy[i] + dy * strength / d2;
        }
      }
    }
  }
}

proc advance(n, dt) {
  var i;
  do i = 0, n - 1 {
    posx[i] = (posx[i] + fx[i] * dt) % boxlen;
    posy[i] = (posy[i] + fy[i] * dt) % boxlen;
  }
}

proc kinetic(n) {
  var i, e;
  e = 0;
  do i = 0, n - 1 {
    e = e + fx[i] * fx[i] + fy[i] * fy[i];
  }
  print e;
}

proc main() {
  var nparts, step, nsteps, seed;
  boxlen = 13;
  cutoff2 = 50;
  pairskip = 2;
  nsteps = 3;
  nparts = 24;
  call pickseed(seed);
  call initpos(nparts, seed);
  do step = 1, nsteps {
    call forces(nparts, 9);
    call advance(nparts, 1);
  }
  call kinetic(nparts);
  print pairskip + boxlen;
}
)",
                      "constant globals plus one out-parameter seed; "
                      "return JFs add a single reference; literal < intra "
                      "< pass-through"});

  return Programs;
}
