//===- workload/ProgramsInternal.h - Suite chunks ---------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Private header splitting the embedded suite sources across two
/// translation units (see Programs.h for the public interface).
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOAD_PROGRAMSINTERNAL_H
#define IPCP_WORKLOAD_PROGRAMSINTERNAL_H

#include "workload/Programs.h"

namespace ipcp {

/// adm, doduc, fpppp, linpackd, matrix300, mdg.
std::vector<SuiteProgram> suiteProgramsAtoM();

/// ocean, qcd, simple, snasa7, spec77, trfd.
std::vector<SuiteProgram> suiteProgramsNtoZ();

} // namespace ipcp

#endif // IPCP_WORKLOAD_PROGRAMSINTERNAL_H
