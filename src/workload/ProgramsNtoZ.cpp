//===- workload/ProgramsNtoZ.cpp - Suite programs ocean..trfd -------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "workload/ProgramsInternal.h"

using namespace ipcp;

std::vector<SuiteProgram> ipcp::suiteProgramsNtoZ() {
  std::vector<SuiteProgram> Programs;

  //===------------------------------------------------------------------===//
  // ocean: the paper's star witness for return jump functions ("the
  // initialization routine at the start of ocean resulted in the
  // assignment of constant values to many variables") and for complete
  // propagation (+dead code, Table 3). An init procedure assigns many
  // constant globals; a debug flag guards a call that would otherwise
  // clobber one of them.
  //===------------------------------------------------------------------===//
  Programs.push_back({"ocean", R"(
// ocean: 2-D basin circulation; every physical parameter is a global
// assigned once by init() and read everywhere.
global nx, ny, dt, nsteps, visc, depth, outfreq, windamp, coriolis, debug;
global eta[144], u[144], v[144];

proc init() {
  nx = 10;
  ny = 10;
  dt = 3;
  nsteps = 4;
  visc = 2;
  depth = 50;
  outfreq = 2;
  windamp = 6;
  coriolis = 4;
  debug = 0;
  var i;
  do i = 0, 143 {
    eta[i] = 0;
    u[i] = i % 3;
    v[i] = i % 5;
  }
}

proc perturb() {
  var w;
  read w;
  depth = w;
  windamp = w % 7 + 1;
}

proc windstress() {
  var i, amp;
  amp = windamp * dt;
  do i = 0, nx * ny - 1 {
    u[i] = u[i] + amp / 3;
  }
}

proc rotate() {
  var i, f;
  f = coriolis * dt;
  do i = 0, nx * ny - 1 {
    u[i] = u[i] - v[i] * f / 16;
    v[i] = v[i] + u[i] * f / 16;
  }
}

proc continuity() {
  var i, h;
  h = depth / 2;
  do i = 1, nx * ny - 1 {
    eta[i] = eta[i] - (u[i] - u[i - 1]) * h / 64;
  }
}

proc smooth() {
  var i, k;
  k = visc;
  do i = 1, nx * ny - 2 {
    eta[i] = (eta[i - 1] + eta[i] * k + eta[i + 1]) / (k + 2);
  }
}

proc report(step) {
  if (step % outfreq == 0) {
    print eta[nx * ny / 2] + depth;
  }
}

proc main() {
  var t;
  call init();
  if (debug != 0) {
    call perturb();
  }
  do t = 1, nsteps {
    call windstress();
    call rotate();
    call continuity();
    call smooth();
    call report(t);
  }
  print eta[0] + depth + windamp;
}
)",
                      "init() assigns many constant globals: return JFs "
                      "multiply the constant count; the guarded perturb() "
                      "call is the complete-propagation pattern (dead code "
                      "kills depth/windamp until DCE removes it); literal "
                      "finds almost nothing"});

  //===------------------------------------------------------------------===//
  // qcd: lattice gauge theory. Literal actuals at every site; all four
  // classes find the same constants, and the intraprocedural baseline is
  // nearly as good.
  //===------------------------------------------------------------------===//
  Programs.push_back({"qcd", R"(
// qcd: quenched lattice updates; every routine takes literal coupling
// constants and lattice extents from the driver.
global links[256], action[64];

proc staple(site, extent) {
  var s;
  s = links[site % 256] + links[(site + extent) % 256];
  action[site % 64] = s;
}

proc sweep(extent, beta) {
  var s, delta;
  do s = 0, extent - 1 {
    call staple(s, extent);
    delta = action[s % 64] * beta / 6;
    links[s % 256] = links[s % 256] + delta;
  }
}

proc heatbath(extent, beta, tries) {
  var t;
  do t = 1, tries {
    call sweep(extent, beta);
  }
}

proc overrelax(extent, mix) {
  var s;
  do s = 0, extent - 1 {
    links[s % 256] = links[s % 256] * mix / (mix + 1);
  }
}

proc measure(extent, norm) {
  var s, plaq;
  plaq = 0;
  do s = 0, extent - 1 {
    plaq = plaq + action[s % 64];
  }
  print plaq / norm;
}

proc main() {
  var iter, iters;
  iters = 3;
  do iter = 1, iters {
    call heatbath(48, 5, 2);
    call overrelax(48, 3);
    call measure(48, 16);
  }
  do iter = 0, 255 {
    links[iter] = iter % 4;
  }
  call sweep(48, 5);
  call measure(48, 16);
}
)",
                      "literal actuals everywhere; expect all four classes "
                      "equal and the intraprocedural baseline close behind "
                      "(one pass-through level inside heatbath->sweep)"});

  //===------------------------------------------------------------------===//
  // simple: hydrodynamics with one dominant routine. Literal < intra <
  // pass-through, modest return-jump-function effect.
  //===------------------------------------------------------------------===//
  Programs.push_back({"simple", R"(
// simple: Lagrangian hydro on a small mesh; the big loop nest lives in
// hydro(), helpers are thin.
global meshn, gamma, courant;
global r[100], p[100], q[100], e[100];

proc boundary(n, val) {
  r[0] = val;
  r[n - 1] = val;
  p[0] = val * 2;
  p[n - 1] = val * 2;
}

proc hydro(n, dtfac) {
  var i, j, dv, work, steps, cmax;
  steps = 4;
  cmax = 0;
  do j = 1, steps {
    do i = 1, n - 2 {
      dv = (r[i + 1] - r[i - 1]) * dtfac;
      q[i] = dv * dv / (gamma + 1);
      p[i] = p[i] + q[i] - dv;
      e[i] = e[i] + p[i] * dv / courant;
      if (p[i] > cmax) {
        cmax = p[i];
      }
    }
    do i = 1, n - 2 {
      r[i] = r[i] + p[i] / (gamma * 4);
    }
  }
  print cmax;
}

proc energy(n) {
  var i, tot;
  tot = 0;
  do i = 0, n - 1 {
    tot = tot + e[i];
  }
  print tot;
}

proc main() {
  var n, i, cycle;
  n = 9;
  gamma = 5;
  courant = 3;
  meshn = 9;
  do i = 0, n - 1 {
    r[i] = i + 2;
    p[i] = 10 - i;
    q[i] = 0;
    e[i] = 100;
  }
  call boundary(n, 7);
  do cycle = 1, 2 {
    call hydro(n, 2);
    call energy(n);
  }
  print meshn;
}
)",
                      "one dominant routine (hydro); constants through "
                      "globals and gcp; no return-jump-function effect; "
                      "the in-loop calls make the no-MOD ablation "
                      "destructive; literal < intra"});

  //===------------------------------------------------------------------===//
  // snasa7: the seven NASA kernels. Deep pass-through chains move the
  // driver's constants through three call levels; literal sees almost
  // none of it.
  //===------------------------------------------------------------------===//
  Programs.push_back({"snasa7", R"(
// snasa7: kernel collection; one shared driver constant set flows down a
// three-deep call chain into each kernel.
global sig[128], buf[128], out[128];

proc fftpass(n, stride, w) {
  var i, t;
  do i = 0, n - stride - 1 {
    t = sig[i] + sig[i + stride] * w;
    buf[i] = t;
  }
}

proc fftstage(n, w) {
  call fftpass(n, 1, w);
  call fftpass(n, 2, w);
  call fftpass(n, 4, w);
}

proc fft(n, w) {
  call fftstage(n, w);
  call fftstage(n, w + 1);
}

proc cholcol(n, base) {
  var i, d;
  d = buf[base % 128] + 1;
  if (d == 0) {
    d = 1;
  }
  do i = 0, n - 1 {
    out[i] = buf[i] / d;
  }
}

proc cholesky(n) {
  call cholcol(n, 0);
  call cholcol(n, 3);
}

proc btrix(n, bw) {
  var i;
  do i = bw, n - 1 {
    out[i] = out[i] + out[i - bw];
  }
}

proc vpenta(n, passes) {
  var p;
  do p = 1, passes {
    call btrix(n, 1);
    call btrix(n, 2);
  }
}

proc emit2(n) {
  var i, s;
  s = 0;
  do i = 0, n - 1 {
    s = s + out[i];
  }
  print s;
}

proc kernels(n, w, passes) {
  call fft(n, w);
  call cholesky(n);
  call vpenta(n, passes);
  call emit2(n);
}

proc main() {
  var i, n;
  n = 32;
  do i = 0, 127 {
    sig[i] = i % 9;
    buf[i] = 0;
    out[i] = i % 4;
  }
  call kernels(n, 3, 2);
  call kernels(n, 5, 2);
}
)",
                      "three-deep pass-through chains (kernels -> fft -> "
                      "fftstage -> fftpass); literal far below everything "
                      "else"});

  //===------------------------------------------------------------------===//
  // spec77: spectral weather model. Global constants plus chains, with a
  // second complete-propagation pattern (a never-taken restart path whose
  // call clobbers the timestep).
  //===------------------------------------------------------------------===//
  Programs.push_back({"spec77", R"(
// spec77: spectral transform climate step; physics constants in globals,
// a restart path that never executes guards a clobbering reload.
global nlat, nlon, dt, restart, rotrate;
global field2[144], spect[144], tend[144];

proc reload() {
  var w;
  read w;
  dt = w % 5 + 1;
  rotrate = w % 3;
}

proc transform(n, m) {
  var i, j, acc;
  do i = 0, n - 1 {
    acc = 0;
    do j = 0, m - 1 {
      acc = acc + field2[i * m + j];
    }
    spect[i] = acc;
  }
}

proc dynamics(n, m) {
  var i, f;
  f = rotrate * dt;
  do i = 0, n * m - 1 {
    tend[i] = spect[i % 144] * f / 8;
  }
}

proc physics(n, m, heatrate) {
  var i;
  do i = 0, n * m - 1 {
    tend[i] = tend[i] + heatrate;
  }
}

proc advance2(n, m) {
  var i;
  do i = 0, n * m - 1 {
    field2[i] = field2[i] + tend[i] * dt / 4;
  }
}

proc spectra(n) {
  var i, s;
  s = 0;
  do i = 0, n - 1 {
    s = s + spect[i];
  }
  print s;
}

proc main() {
  var step, nsteps;
  nlat = 8;
  nlon = 12;
  dt = 2;
  rotrate = 3;
  restart = 0;
  nsteps = 3;
  if (restart == 1) {
    call reload();
  }
  do step = 1, nsteps {
    call transform(nlat, nlon);
    call dynamics(nlat, nlon);
    call physics(nlat, nlon, 4);
    call advance2(nlat, nlon);
  }
  call spectra(nlat);
  print dt + rotrate;
}
)",
                      "constant globals; the guarded reload() is the "
                      "complete-propagation pattern (dt/rotrate recovered "
                      "after DCE); literal < intra"});

  //===------------------------------------------------------------------===//
  // trfd: two-electron integral transformation; small and regular, all
  // classes equal.
  //===------------------------------------------------------------------===//
  Programs.push_back({"trfd", R"(
// trfd: small integral transformation; a handful of literal-driven
// routines.
global ints[128], half[128];

proc phase1(n, scale) {
  var i;
  do i = 0, n - 1 {
    half[i] = ints[i] * scale;
  }
}

proc phase2(n, shift) {
  var i;
  do i = 0, n - 1 {
    half[i] = half[i] + shift;
  }
}

proc total(n) {
  var i, s;
  s = 0;
  do i = 0, n - 1 {
    s = s + half[i];
  }
  print s;
}

proc main() {
  var i, m;
  m = 40;
  do i = 0, 127 {
    ints[i] = i % 6;
  }
  call phase1(40, 3);
  call phase2(40, 9);
  call total(40);
  print m;
}
)",
                      "small; literal actuals only; all classes equal, "
                      "intraprocedural baseline one reference behind"});

  return Programs;
}
