//===- workload/ServiceWorkload.cpp ---------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "workload/ServiceWorkload.h"

#include "workload/Programs.h"

using namespace ipcp;

// The same xorshift mix the program generator uses; seeded identically,
// a log is a pure function of its config. Draws happen in a fixed order
// (and the session draw only when SessionCount > 1), so the historical
// single-session byte stream is preserved exactly.
uint64_t ServiceLogStream::rngNext() {
  RngState ^= RngState << 13;
  RngState ^= RngState >> 7;
  RngState ^= RngState << 17;
  return RngState;
}

unsigned ServiceLogStream::rngBelow(unsigned N) {
  return unsigned(rngNext() % N);
}

bool ServiceLogStream::rngPercent(unsigned Chance) {
  return rngBelow(100) < Chance;
}

ServiceLogStream::ServiceLogStream(ServiceLogConfig C)
    : Config(std::move(C)) {
  if (Config.Suites.empty())
    for (const SuiteProgram &P : benchmarkSuite())
      Programs.push_back(P.Name);
  else
    Programs = Config.Suites;
  RngState = Config.Seed ? Config.Seed : 0x9e3779b97f4a7c15ull;
  ProgIndex = rngBelow(unsigned(Programs.size()));
  KindIndex = rngBelow(4);
}

/// One analyze request object (not yet wrapped in a batch).
JsonValue ServiceLogStream::makeAnalyze(unsigned Id) {
  static const char *const Kinds[] = {"literal", "intra", "pass-through",
                                      "polynomial"};
  JsonValue Req = JsonValue::object();
  Req.set("op", "analyze");
  Req.set("id", "r" + std::to_string(Id));
  Req.set("suite", Programs[ProgIndex]);
  if (!Config.Session.empty()) {
    if (Config.SessionCount <= 1)
      Req.set("session", Config.Session);
    else
      Req.set("session", Config.Session + "-" +
                             std::to_string(rngBelow(Config.SessionCount)));
  }
  JsonValue Options = JsonValue::object();
  Options.set("forward_jf", Kinds[KindIndex % 4]);
  Req.set("options", std::move(Options));
  Req.set("scrub_timings", true);
  return Req;
}

bool ServiceLogStream::next(std::string &LineOut) {
  if (Emitted < Config.Requests) {
    // Repeating the previous (program, options) pair inside one session
    // is what makes the request warm; otherwise pick fresh axes.
    if (Emitted && !rngPercent(Config.RepeatChance)) {
      ProgIndex = rngBelow(unsigned(Programs.size()));
      KindIndex = rngBelow(4);
    }
    unsigned Left = Config.Requests - Emitted;
    if (Left >= 2 && rngPercent(Config.BatchChance)) {
      unsigned Size = 2 + rngBelow(Left < 4 ? Left - 1 : 3);
      JsonValue Batch = JsonValue::object();
      Batch.set("op", "analyze-batch");
      Batch.set("id", "b" + std::to_string(Emitted));
      JsonValue Items = JsonValue::array();
      for (unsigned I = 0; I != Size; ++I) {
        Items.push(makeAnalyze(Emitted + I));
        if (!rngPercent(Config.RepeatChance)) {
          ProgIndex = rngBelow(unsigned(Programs.size()));
          KindIndex = rngBelow(4);
        }
      }
      Batch.set("requests", std::move(Items));
      LineOut = Batch.dump();
      Emitted += Size;
      return true;
    }
    LineOut = makeAnalyze(Emitted).dump();
    ++Emitted;
    return true;
  }

  if (Config.EndWithStats && !StatsEmitted) {
    StatsEmitted = true;
    JsonValue Stats = JsonValue::object();
    Stats.set("op", "stats");
    Stats.set("id", "stats");
    LineOut = Stats.dump();
    return true;
  }
  if (Config.EndWithShutdown && !ShutdownEmitted) {
    ShutdownEmitted = true;
    JsonValue Bye = JsonValue::object();
    Bye.set("op", "shutdown");
    Bye.set("id", "bye");
    LineOut = Bye.dump();
    return true;
  }
  return false;
}

std::vector<std::string>
ipcp::generateServiceLog(const ServiceLogConfig &Config) {
  ServiceLogStream Stream(Config);
  std::vector<std::string> Lines;
  std::string Line;
  while (Stream.next(Line))
    Lines.push_back(Line);
  return Lines;
}
