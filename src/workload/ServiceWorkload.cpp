//===- workload/ServiceWorkload.cpp ---------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "workload/ServiceWorkload.h"

#include "support/Json.h"
#include "workload/Programs.h"

using namespace ipcp;

namespace {

/// The same xorshift mix the program generator uses; seeded identically,
/// a log is a pure function of its config.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  unsigned below(unsigned N) { return unsigned(next() % N); }
  bool percent(unsigned Chance) { return below(100) < Chance; }
};

/// One analyze request object (not yet wrapped in a batch).
JsonValue makeAnalyze(const ServiceLogConfig &Config, unsigned Id,
                      const std::string &Suite, unsigned KindIndex) {
  static const char *const Kinds[] = {"literal", "intra", "pass-through",
                                      "polynomial"};
  JsonValue Req = JsonValue::object();
  Req.set("op", "analyze");
  Req.set("id", "r" + std::to_string(Id));
  Req.set("suite", Suite);
  if (!Config.Session.empty())
    Req.set("session", Config.Session);
  JsonValue Options = JsonValue::object();
  Options.set("forward_jf", Kinds[KindIndex % 4]);
  Req.set("options", std::move(Options));
  Req.set("scrub_timings", true);
  return Req;
}

} // namespace

std::vector<std::string>
ipcp::generateServiceLog(const ServiceLogConfig &Config) {
  const std::vector<SuiteProgram> &Suite = benchmarkSuite();
  Rng R(Config.Seed);
  std::vector<std::string> Lines;

  unsigned Emitted = 0;
  unsigned ProgIndex = R.below(unsigned(Suite.size()));
  unsigned KindIndex = R.below(4);
  while (Emitted < Config.Requests) {
    // Repeating the previous (program, options) pair inside one session
    // is what makes the request warm; otherwise pick fresh axes.
    if (Emitted && !R.percent(Config.RepeatChance)) {
      ProgIndex = R.below(unsigned(Suite.size()));
      KindIndex = R.below(4);
    }
    unsigned Left = Config.Requests - Emitted;
    if (Left >= 2 && R.percent(Config.BatchChance)) {
      unsigned Size = 2 + R.below(Left < 4 ? Left - 1 : 3);
      JsonValue Batch = JsonValue::object();
      Batch.set("op", "analyze-batch");
      Batch.set("id", "b" + std::to_string(Emitted));
      JsonValue Items = JsonValue::array();
      for (unsigned I = 0; I != Size; ++I) {
        Items.push(makeAnalyze(Config, Emitted + I,
                               Suite[ProgIndex].Name, KindIndex));
        if (!R.percent(Config.RepeatChance)) {
          ProgIndex = R.below(unsigned(Suite.size()));
          KindIndex = R.below(4);
        }
      }
      Batch.set("requests", std::move(Items));
      Lines.push_back(Batch.dump());
      Emitted += Size;
      continue;
    }
    Lines.push_back(
        makeAnalyze(Config, Emitted, Suite[ProgIndex].Name, KindIndex)
            .dump());
    ++Emitted;
  }

  if (Config.EndWithStats) {
    JsonValue Stats = JsonValue::object();
    Stats.set("op", "stats");
    Stats.set("id", "stats");
    Lines.push_back(Stats.dump());
  }
  if (Config.EndWithShutdown) {
    JsonValue Bye = JsonValue::object();
    Bye.set("op", "shutdown");
    Bye.set("id", "bye");
    Lines.push_back(Bye.dump());
  }
  return Lines;
}
