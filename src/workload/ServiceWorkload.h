//===- workload/ServiceWorkload.h - Service request-log generator -*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of `ipcp-service-v1` request logs (docs/SERVICE.md)
/// for replaying against the analysis daemon: the CI service-smoke job
/// boots ipcp_serverd, feeds it a generated log, and diffs every
/// embedded report against a one-shot ipcp_driver run of the same
/// program; bench_service replays logs to measure cold, warm, and
/// batched throughput. Same config -> same lines, so a replay is a
/// deterministic workload, not a flaky one.
///
/// Logs are built from the benchmark suite (workload/Programs): every
/// request names a suite program, asks for a scrubbed-timings report,
/// and cycles through the forward jump-function classes so the replay
/// exercises distinct cache fingerprints, warm session reuse, and batch
/// fan-out.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOAD_SERVICEWORKLOAD_H
#define IPCP_WORKLOAD_SERVICEWORKLOAD_H

#include "support/Json.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ipcp {

/// Shape of one generated request log.
struct ServiceLogConfig {
  uint64_t Seed = 1;
  /// Analyze requests to emit (batch items each count as one).
  unsigned Requests = 24;
  /// Session key prefix; requests reusing a (session, program, options)
  /// triple run warm. Empty disables sessions (every request cold).
  std::string Session = "replay";
  /// Distinct sessions: 1 uses the prefix verbatim (and the exact
  /// historical request bytes); above 1 each analyze request draws a
  /// session "<prefix>-<i>", i in [0, SessionCount) — the knob that
  /// spreads a load run across many shard-routable sessions.
  unsigned SessionCount = 1;
  /// Restrict generation to these suite program names (empty = the whole
  /// benchmark suite). Smaller programs make million-request replays
  /// cheap enough to be a latency benchmark rather than an endurance
  /// run.
  std::vector<std::string> Suites;
  /// Percent (0..100) of requests that repeat the previous program in
  /// the same session — the warm-hit knob.
  unsigned RepeatChance = 50;
  /// Percent (0..100) of requests folded into analyze-batch groups.
  unsigned BatchChance = 30;
  /// Append a "stats" barrier request at the end of the log.
  bool EndWithStats = true;
  /// Append a "shutdown" request after everything else, so a replay
  /// terminates the daemon cleanly.
  bool EndWithShutdown = true;
};

/// Streaming form of the generator: one request line per next() call,
/// without materializing the whole log — ipcp_loadgen replays millions
/// of requests through this at a few hundred bytes of state. Identical
/// config produces an identical line sequence, and for SessionCount == 1
/// with no Suites restriction the bytes match generateServiceLog's
/// historical output exactly.
class ServiceLogStream {
public:
  explicit ServiceLogStream(ServiceLogConfig Config);

  /// Produces the next request line (no trailing newline). Returns
  /// false when the log is exhausted (after the optional stats and
  /// shutdown trailer requests).
  bool next(std::string &LineOut);

  /// Analyze requests this stream will emit in total (batch items each
  /// count as one; the stats/shutdown trailers do not).
  unsigned totalAnalyzeRequests() const { return Config.Requests; }

private:
  uint64_t rngNext();
  unsigned rngBelow(unsigned N);
  bool rngPercent(unsigned Chance);
  JsonValue makeAnalyze(unsigned Id);

  ServiceLogConfig Config;
  std::vector<std::string> Programs;
  uint64_t RngState;
  unsigned Emitted = 0;
  unsigned ProgIndex = 0;
  unsigned KindIndex = 0;
  bool StatsEmitted = false;
  bool ShutdownEmitted = false;
};

/// Produces one request per line (no trailing newline per element).
/// Every analyze request carries "scrub_timings": true and an "id" of
/// the form "r<n>", so replays are byte-diffable. Materialized wrapper
/// around ServiceLogStream for small logs.
std::vector<std::string> generateServiceLog(const ServiceLogConfig &Config);

} // namespace ipcp

#endif // IPCP_WORKLOAD_SERVICEWORKLOAD_H
