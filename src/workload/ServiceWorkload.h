//===- workload/ServiceWorkload.h - Service request-log generator -*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of `ipcp-service-v1` request logs (docs/SERVICE.md)
/// for replaying against the analysis daemon: the CI service-smoke job
/// boots ipcp_serverd, feeds it a generated log, and diffs every
/// embedded report against a one-shot ipcp_driver run of the same
/// program; bench_service replays logs to measure cold, warm, and
/// batched throughput. Same config -> same lines, so a replay is a
/// deterministic workload, not a flaky one.
///
/// Logs are built from the benchmark suite (workload/Programs): every
/// request names a suite program, asks for a scrubbed-timings report,
/// and cycles through the forward jump-function classes so the replay
/// exercises distinct cache fingerprints, warm session reuse, and batch
/// fan-out.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOAD_SERVICEWORKLOAD_H
#define IPCP_WORKLOAD_SERVICEWORKLOAD_H

#include <cstdint>
#include <string>
#include <vector>

namespace ipcp {

/// Shape of one generated request log.
struct ServiceLogConfig {
  uint64_t Seed = 1;
  /// Analyze requests to emit (batch items each count as one).
  unsigned Requests = 24;
  /// Session key prefix; requests reusing a (session, program, options)
  /// triple run warm. Empty disables sessions (every request cold).
  std::string Session = "replay";
  /// Percent (0..100) of requests that repeat the previous program in
  /// the same session — the warm-hit knob.
  unsigned RepeatChance = 50;
  /// Percent (0..100) of requests folded into analyze-batch groups.
  unsigned BatchChance = 30;
  /// Append a "stats" barrier request at the end of the log.
  bool EndWithStats = true;
  /// Append a "shutdown" request after everything else, so a replay
  /// terminates the daemon cleanly.
  bool EndWithShutdown = true;
};

/// Produces one request per line (no trailing newline per element).
/// Every analyze request carries "scrub_timings": true and an "id" of
/// the form "r<n>", so replays are byte-diffable.
std::vector<std::string> generateServiceLog(const ServiceLogConfig &Config);

} // namespace ipcp

#endif // IPCP_WORKLOAD_SERVICEWORKLOAD_H
