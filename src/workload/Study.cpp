//===- workload/Study.cpp -------------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "workload/Study.h"

#include "core/SuiteRunner.h"
#include "support/Json.h"

#include <algorithm>
#include <cstdio>

using namespace ipcp;

unsigned ipcp::runCell(const SuiteProgram &Prog, const IPCPOptions &Opts) {
  std::unique_ptr<Module> M = loadSuiteModule(Prog);
  return runIPCP(*M, Opts).TotalConstantRefs;
}

namespace {

/// Fills Rows[I] = RowFn(Suite[I]) for every program, through \p Runner
/// when one is supplied.
template <typename Row, typename RowFn>
std::vector<Row> computeRows(const std::vector<SuiteProgram> &Suite,
                             SuiteRunner *Runner, const RowFn &Fn) {
  std::vector<Row> Rows(Suite.size());
  auto Fill = [&](size_t I) { Rows[I] = Fn(Suite[I]); };
  if (Runner) {
    Runner->run(Suite.size(), Fill);
  } else {
    for (size_t I = 0; I != Suite.size(); ++I)
      Fill(I);
  }
  return Rows;
}

Table1Row computeTable1Row(const SuiteProgram &Prog) {
  Table1Row Row;
  Row.Name = Prog.Name;
  Row.Lines = countCodeLines(Prog.Source);

  // Per-procedure line counts, from the source text ("proc " starts a
  // procedure chunk).
  std::vector<unsigned> PerProc;
  size_t Pos = 0;
  unsigned Current = 0;
  bool InProc = false;
  while (Pos < Prog.Source.size()) {
    size_t End = Prog.Source.find('\n', Pos);
    if (End == std::string::npos)
      End = Prog.Source.size();
    std::string_view Line(Prog.Source.data() + Pos, End - Pos);
    size_t First = Line.find_first_not_of(" \t\r");
    bool Code = First != std::string_view::npos &&
                Line.substr(First, 2) != "//";
    if (Code && Line.substr(First, 5) == "proc ") {
      if (InProc)
        PerProc.push_back(Current);
      InProc = true;
      Current = 0;
    }
    if (Code && InProc)
      ++Current;
    Pos = End + 1;
  }
  if (InProc)
    PerProc.push_back(Current);

  Row.Procs = PerProc.size();
  if (!PerProc.empty()) {
    unsigned Total = 0;
    for (unsigned N : PerProc)
      Total += N;
    Row.MeanLinesPerProc = Total / PerProc.size();
    std::vector<unsigned> Sorted = PerProc;
    std::sort(Sorted.begin(), Sorted.end());
    Row.MedianLinesPerProc = Sorted[Sorted.size() / 2];
  }

  std::unique_ptr<Module> M = loadSuiteModule(Prog);
  Row.Globals = M->globals().size();
  for (const std::unique_ptr<Procedure> &P : M->procedures())
    Row.CallSites += P->callSites().size();
  return Row;
}

Table2Row computeTable2Row(const SuiteProgram &Prog) {
  Table2Row Row;
  Row.Name = Prog.Name;

  auto Cell = [&](JumpFunctionKind Kind, bool UseRet) {
    IPCPOptions Opts;
    Opts.ForwardKind = Kind;
    Opts.UseReturnJumpFunctions = UseRet;
    return runCell(Prog, Opts);
  };

  Row.Polynomial = Cell(JumpFunctionKind::Polynomial, true);
  Row.PassThrough = Cell(JumpFunctionKind::PassThrough, true);
  Row.Intraprocedural = Cell(JumpFunctionKind::IntraproceduralConstant, true);
  Row.Literal = Cell(JumpFunctionKind::Literal, true);
  Row.PolynomialNoRet = Cell(JumpFunctionKind::Polynomial, false);
  Row.PassThroughNoRet = Cell(JumpFunctionKind::PassThrough, false);
  return Row;
}

Table3Row computeTable3Row(const SuiteProgram &Prog) {
  Table3Row Row;
  Row.Name = Prog.Name;

  IPCPOptions NoMod;
  NoMod.UseModInformation = false;
  Row.PolynomialWithoutMod = runCell(Prog, NoMod);

  Row.PolynomialWithMod = runCell(Prog, IPCPOptions());

  std::unique_ptr<Module> M = loadSuiteModule(Prog);
  Row.CompletePropagation =
      runCompletePropagation(*M, IPCPOptions()).TotalConstantRefs;

  IPCPOptions Intra;
  Intra.IntraproceduralOnly = true;
  Row.IntraproceduralOnly = runCell(Prog, Intra);
  return Row;
}

} // namespace

std::vector<Table1Row>
ipcp::computeTable1(const std::vector<SuiteProgram> &Suite,
                    SuiteRunner *Runner) {
  return computeRows<Table1Row>(Suite, Runner, computeTable1Row);
}

std::vector<Table2Row>
ipcp::computeTable2(const std::vector<SuiteProgram> &Suite,
                    SuiteRunner *Runner) {
  return computeRows<Table2Row>(Suite, Runner, computeTable2Row);
}

std::vector<Table3Row>
ipcp::computeTable3(const std::vector<SuiteProgram> &Suite,
                    SuiteRunner *Runner) {
  return computeRows<Table3Row>(Suite, Runner, computeTable3Row);
}

namespace {

std::string pad(const std::string &Text, size_t Width) {
  std::string Out = Text;
  while (Out.size() < Width)
    Out += ' ';
  return Out;
}

std::string num(unsigned Value, size_t Width) {
  std::string Text = std::to_string(Value);
  std::string Out;
  while (Out.size() + Text.size() < Width)
    Out += ' ';
  return Out + Text;
}

} // namespace

std::string ipcp::formatTable1(const std::vector<Table1Row> &Rows) {
  std::string Out =
      "Table 1: Characteristics of program test suite\n"
      "program      lines  procs  mean l/p  median l/p  call sites  "
      "globals\n";
  for (const Table1Row &R : Rows) {
    Out += pad(R.Name, 12) + num(R.Lines, 6) + num(R.Procs, 7) +
           num(R.MeanLinesPerProc, 10) + num(R.MedianLinesPerProc, 12) +
           num(R.CallSites, 12) + num(R.Globals, 9) + "\n";
  }
  return Out;
}

std::string ipcp::formatTable2(const std::vector<Table2Row> &Rows) {
  std::string Out =
      "Table 2: Constants found through use of jump functions\n"
      "                 -- using return JFs --------------   -- no return "
      "JFs --\n"
      "program      polynomial  pass-thru  intra  literal   polynomial  "
      "pass-thru\n";
  for (const Table2Row &R : Rows) {
    Out += pad(R.Name, 12) + num(R.Polynomial, 11) + num(R.PassThrough, 11) +
           num(R.Intraprocedural, 7) + num(R.Literal, 9) +
           num(R.PolynomialNoRet, 13) + num(R.PassThroughNoRet, 11) + "\n";
  }
  return Out;
}

JsonValue ipcp::table1ToJson(const std::vector<Table1Row> &Rows) {
  JsonValue Arr = JsonValue::array();
  for (const Table1Row &R : Rows) {
    JsonValue Obj = JsonValue::object();
    Obj.set("name", R.Name);
    Obj.set("lines", R.Lines);
    Obj.set("procedures", R.Procs);
    Obj.set("mean_lines_per_proc", R.MeanLinesPerProc);
    Obj.set("median_lines_per_proc", R.MedianLinesPerProc);
    Obj.set("call_sites", R.CallSites);
    Obj.set("globals", R.Globals);
    Arr.push(std::move(Obj));
  }
  return Arr;
}

JsonValue ipcp::table2ToJson(const std::vector<Table2Row> &Rows) {
  JsonValue Arr = JsonValue::array();
  for (const Table2Row &R : Rows) {
    JsonValue Obj = JsonValue::object();
    Obj.set("name", R.Name);
    Obj.set("polynomial", R.Polynomial);
    Obj.set("pass_through", R.PassThrough);
    Obj.set("intraprocedural", R.Intraprocedural);
    Obj.set("literal", R.Literal);
    Obj.set("polynomial_no_return_jf", R.PolynomialNoRet);
    Obj.set("pass_through_no_return_jf", R.PassThroughNoRet);
    Arr.push(std::move(Obj));
  }
  return Arr;
}

JsonValue ipcp::table3ToJson(const std::vector<Table3Row> &Rows) {
  JsonValue Arr = JsonValue::array();
  for (const Table3Row &R : Rows) {
    JsonValue Obj = JsonValue::object();
    Obj.set("name", R.Name);
    Obj.set("polynomial_without_mod", R.PolynomialWithoutMod);
    Obj.set("polynomial_with_mod", R.PolynomialWithMod);
    Obj.set("complete_propagation", R.CompletePropagation);
    Obj.set("intraprocedural_only", R.IntraproceduralOnly);
    Arr.push(std::move(Obj));
  }
  return Arr;
}

std::string ipcp::formatTable3(const std::vector<Table3Row> &Rows) {
  std::string Out =
      "Table 3: Most precise jump function vs other propagation "
      "techniques\n"
      "program      poly w/o MOD  poly w/ MOD  complete  intraprocedural\n";
  for (const Table3Row &R : Rows) {
    Out += pad(R.Name, 12) + num(R.PolynomialWithoutMod, 13) +
           num(R.PolynomialWithMod, 13) + num(R.CompletePropagation, 10) +
           num(R.IntraproceduralOnly, 17) + "\n";
  }
  return Out;
}
