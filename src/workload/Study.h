//===- workload/Study.h - The paper's tables --------------------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the evaluation tables over the benchmark suite:
///
///  - Table 1: program characteristics (lines, procedures, lines per
///    procedure);
///  - Table 2: constants found through use of jump functions — the four
///    forward classes with return jump functions, plus polynomial and
///    pass-through without them;
///  - Table 3: comparison of the most precise jump function with other
///    propagation techniques — polynomial without MOD, with MOD, complete
///    propagation, and purely intraprocedural propagation.
///
/// Each cell is the substituted-constant count (variable references
/// proven constant; see Pipeline.h). Formatting helpers render the same
/// row layout as the paper.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOAD_STUDY_H
#define IPCP_WORKLOAD_STUDY_H

#include "core/Pipeline.h"
#include "workload/Programs.h"

#include <string>
#include <vector>

namespace ipcp {

class SuiteRunner;

/// Table 1: characteristics of the program test suite.
struct Table1Row {
  std::string Name;
  unsigned Lines = 0;
  unsigned Procs = 0;
  unsigned MeanLinesPerProc = 0;
  unsigned MedianLinesPerProc = 0;
  unsigned CallSites = 0;
  unsigned Globals = 0;
};

/// Table 2: constants found through use of jump functions.
struct Table2Row {
  std::string Name;
  // With return jump functions.
  unsigned Polynomial = 0;
  unsigned PassThrough = 0;
  unsigned Intraprocedural = 0;
  unsigned Literal = 0;
  // Without return jump functions.
  unsigned PolynomialNoRet = 0;
  unsigned PassThroughNoRet = 0;
};

/// Table 3: the most precise jump function vs other techniques.
struct Table3Row {
  std::string Name;
  unsigned PolynomialWithoutMod = 0;
  unsigned PolynomialWithMod = 0;
  unsigned CompletePropagation = 0;
  unsigned IntraproceduralOnly = 0;
};

/// Each table computes its rows independently per program; pass a
/// SuiteRunner to spread the rows across its worker threads (rows land in
/// suite order either way — see SuiteRunner.h for the determinism story).
/// A null runner computes sequentially on the calling thread.
std::vector<Table1Row> computeTable1(const std::vector<SuiteProgram> &Suite,
                                     SuiteRunner *Runner = nullptr);
std::vector<Table2Row> computeTable2(const std::vector<SuiteProgram> &Suite,
                                     SuiteRunner *Runner = nullptr);
std::vector<Table3Row> computeTable3(const std::vector<SuiteProgram> &Suite,
                                     SuiteRunner *Runner = nullptr);

std::string formatTable1(const std::vector<Table1Row> &Rows);
std::string formatTable2(const std::vector<Table2Row> &Rows);
std::string formatTable3(const std::vector<Table3Row> &Rows);

class JsonValue;

/// JSON arrays with one object per row, field names matching the struct
/// members; consumed by suitecheck --report-json and the bench harnesses.
JsonValue table1ToJson(const std::vector<Table1Row> &Rows);
JsonValue table2ToJson(const std::vector<Table2Row> &Rows);
JsonValue table3ToJson(const std::vector<Table3Row> &Rows);

/// Runs one configuration over one program and returns the substituted-
/// constant count (one table cell).
unsigned runCell(const SuiteProgram &Prog, const IPCPOptions &Opts);

} // namespace ipcp

#endif // IPCP_WORKLOAD_STUDY_H
