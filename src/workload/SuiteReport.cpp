//===- workload/SuiteReport.cpp -------------------------------------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "workload/SuiteReport.h"

#include "core/Report.h"
#include "core/SuiteRunner.h"
#include "core/SummaryCache.h"
#include "ir/Verifier.h"
#include "support/Trace.h"
#include "workload/Oracle.h"

#include <optional>

using namespace ipcp;

SuiteStudyResult ipcp::runSuiteStudy(SuiteRunner &Runner, bool BuildReports,
                                     const std::string &CacheDir,
                                     PropagationEngine Engine) {
  const std::vector<SuiteProgram> &Suite = benchmarkSuite();
  size_t N = Suite.size();

  // Per-program slots; each task writes only its own index, and the
  // aggregation below walks them in suite order.
  std::vector<std::string> Messages(N);
  std::vector<StatisticSet> Stats(N);
  std::vector<JsonValue> Entries(N);
  std::vector<int> Failures(N, 0);
  IPCPOptions Opts;
  Opts.Engine = Engine;

  Runner.run(N, [&](size_t I) {
    const SuiteProgram &Prog = Suite[I];
    ScopedTraceSpan ProgSpan("program", Prog.Name);
    auto M = loadSuiteModule(Prog);
    for (const std::string &E : verifyModule(*M, VerifyMode::PreSSA)) {
      Messages[I] += Prog.Name + ": verify: " + E + "\n";
      ++Failures[I];
    }
    // Each program gets its own cache object (and file): the tasks run
    // concurrently and must not share mutable cache state.
    std::optional<SummaryCache> Cache;
    IPCPOptions ProgOpts = Opts;
    if (!CacheDir.empty()) {
      Cache.emplace(CacheDir);
      Cache->load(Prog.Name, ProgOpts);
      ProgOpts.Cache = &*Cache;
    }
    IPCPResult Res = runIPCP(*M, ProgOpts);
    if (Cache)
      Cache->save(Prog.Name, ProgOpts);
    OracleReport Rep = checkSoundness(*M, Res);
    bool Ok = Rep.Sound && Rep.ExecStatus == ExecutionResult::Status::Ok;
    if (!Ok) {
      Messages[I] += Prog.Name + ": " + Rep.str() + " (exec status " +
                     std::to_string(int(Rep.ExecStatus)) + ")\n";
      ++Failures[I];
    }
    Stats[I] = Res.Stats;
    if (BuildReports) {
      AnalysisReport Report;
      Report.SourceName = Prog.Name;
      Report.M = M.get();
      Report.Opts = &Opts;
      Report.Single = &Res;
      JsonValue Entry = buildAnalysisReport(Report);
      Entry.set("sound", Ok);
      Entries[I] = std::move(Entry);
    }
  });

  SuiteStudyResult R;
  R.Messages = std::move(Messages);
  for (size_t I = 0; I != N; ++I) {
    R.Failures += Failures[I];
    R.Counters.merge(Stats[I]);
    if (BuildReports)
      R.Programs.push(std::move(Entries[I]));
  }

  R.T1 = computeTable1(Suite, &Runner);
  R.T2 = computeTable2(Suite, &Runner);
  R.T3 = computeTable3(Suite, &Runner);
  return R;
}

JsonValue ipcp::buildSuiteReport(const SuiteStudyResult &R,
                                 const Trace *TraceData) {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", "ipcp-suite-report-v1");
  Doc.set("failures", R.Failures);
  Doc.set("programs", R.Programs);
  Doc.set("table1", table1ToJson(R.T1));
  Doc.set("table2", table2ToJson(R.T2));
  Doc.set("table3", table3ToJson(R.T3));
  Doc.set("counters", R.Counters.toJson());
  if (TraceData)
    Doc.set("trace", TraceData->toJson());
  return Doc;
}
