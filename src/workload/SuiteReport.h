//===- workload/SuiteReport.h - Whole-suite study + report ------*- C++ -*-===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-benchmark-suite study behind `suitecheck` and the
/// determinism tests: verify, analyze, and soundness-check every program,
/// merge their counters, compute the three paper tables, and assemble the
/// "ipcp-suite-report-v1" JSON document.
///
/// All per-program work runs through a SuiteRunner, so `--jobs=8`
/// produces byte-identical results to a sequential run (timing counters
/// aside): diagnostics, counters, report entries, and table rows are all
/// collected per-program into suite-order slots and aggregated in that
/// order afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef IPCP_WORKLOAD_SUITEREPORT_H
#define IPCP_WORKLOAD_SUITEREPORT_H

#include "support/Json.h"
#include "support/Statistics.h"
#include "workload/Study.h"

#include <string>
#include <vector>

namespace ipcp {

class SuiteRunner;
class Trace;

/// Outcome of one whole-suite study run.
struct SuiteStudyResult {
  int Failures = 0;

  /// One diagnostic block per program (suite order, empty when clean);
  /// formatted exactly as suitecheck has always printed them.
  std::vector<std::string> Messages;

  /// Analysis counters merged over all programs, in suite order.
  StatisticSet Counters;

  /// One "ipcp-report-v1" entry per program (with a "sound" flag), suite
  /// order; stays an empty array unless requested.
  JsonValue Programs = JsonValue::array();

  std::vector<Table1Row> T1;
  std::vector<Table2Row> T2;
  std::vector<Table3Row> T3;
};

/// Runs the study over the full benchmark suite through \p Runner. With
/// \p BuildReports, also builds the per-program report entries (they cost
/// a per-program JSON tree, so suitecheck only asks when --report-json is
/// given). A non-empty \p CacheDir analyzes each program through a
/// persistent summary cache rooted there (one file per program; see
/// docs/INCREMENTAL.md) — table computations always run cold. \p Engine
/// selects the propagation engine for the per-program analyses (the
/// contexts engine runs cache-less; docs/CONTEXTS.md); the paper tables
/// keep their own option sets either way.
SuiteStudyResult
runSuiteStudy(SuiteRunner &Runner, bool BuildReports,
              const std::string &CacheDir = "",
              PropagationEngine Engine = PropagationEngine::Jump);

/// Assembles the "ipcp-suite-report-v1" document: schema, failures,
/// programs, the three tables, merged counters, and (when \p TraceData is
/// non-null) the trace JSON.
JsonValue buildSuiteReport(const SuiteStudyResult &R,
                           const Trace *TraceData = nullptr);

} // namespace ipcp

#endif // IPCP_WORKLOAD_SUITEREPORT_H
