//===- tests/AliasCheckTests.cpp - no-alias rule checker tests ------------===//
//
// Part of the ipcp project.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "analysis/AliasCheck.h"
#include "workload/Generator.h"
#include "workload/Programs.h"

#include <gtest/gtest.h>

using namespace ipcp;
using namespace ipcp::test;

namespace {

std::vector<Diagnostic> check(const std::string &Source) {
  auto M = lowerOk(Source);
  return checkAliasHazards(*M);
}

TEST(AliasCheck, CleanProgramHasNoWarnings) {
  EXPECT_TRUE(check("global g;\n"
                    "proc f(a, b) { a = b + g; }\n"
                    "proc main() { var x, y; call f(x, y); }")
                  .empty());
}

TEST(AliasCheck, DuplicateModifiedActualWarns) {
  std::vector<Diagnostic> Warnings =
      check("proc two(a, b) { a = 1; }\n"
            "proc main() { var v; call two(v, v); }");
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].Message.find("passed twice"), std::string::npos);
}

TEST(AliasCheck, DuplicateReadOnlyActualIsFine) {
  EXPECT_TRUE(check("proc two(a, b) { print a + b; }\n"
                    "proc main() { var v; call two(v, v); }")
                  .empty())
      << "aliasing is harmless when neither formal is assigned";
}

TEST(AliasCheck, DuplicateDetectionUsesTransitiveMod) {
  std::vector<Diagnostic> Warnings =
      check("proc sink(x) { x = 9; }\n"
            "proc two(a, b) { call sink(b); }\n"
            "proc main() { var v; call two(v, v); }");
  ASSERT_EQ(Warnings.size(), 1u) << "b is modified through sink";
}

TEST(AliasCheck, GlobalPassedToTouchingCalleeWarns) {
  std::vector<Diagnostic> Warnings =
      check("global g;\n"
            "proc f(a) { a = 1; print g; }\n"
            "proc main() { call f(g); }");
  ASSERT_EQ(Warnings.size(), 1u);
  EXPECT_NE(Warnings[0].Message.find("passed by reference"),
            std::string::npos);
}

TEST(AliasCheck, GlobalModifiedDirectlyWarnsEvenIfFormalIsReadOnly) {
  std::vector<Diagnostic> Warnings =
      check("global g;\n"
            "proc f(a) { g = 2; print a; }\n"
            "proc main() { call f(g); }");
  EXPECT_EQ(Warnings.size(), 1u);
}

TEST(AliasCheck, GlobalPassedToObliviousCalleeIsFine) {
  EXPECT_TRUE(check("global g;\n"
                    "proc f(a) { a = a + 1; }\n"
                    "proc main() { call f(g); }")
                  .empty())
      << "the callee never names g directly: binding is unambiguous";
}

TEST(AliasCheck, TransitiveGlobalAccessWarns) {
  std::vector<Diagnostic> Warnings =
      check("global g;\n"
            "proc leaf() { print g; }\n"
            "proc f(a) { a = 1; call leaf(); }\n"
            "proc main() { call f(g); }");
  EXPECT_EQ(Warnings.size(), 1u) << "g is reached through leaf";
}

TEST(AliasCheck, SuiteProgramsAreClean) {
  for (const SuiteProgram &Prog : benchmarkSuite()) {
    auto M = loadSuiteModule(Prog);
    EXPECT_TRUE(checkAliasHazards(*M).empty()) << Prog.Name;
  }
}

class GeneratedAliasFree : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedAliasFree, GeneratorNeverCreatesHazards) {
  GeneratorConfig Config;
  Config.Seed = GetParam();
  Config.AllowRecursion = (GetParam() % 2) == 0;
  auto M = lowerOk(generateProgram(Config));
  EXPECT_TRUE(checkAliasHazards(*M).empty()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedAliasFree,
                         ::testing::Range<uint64_t>(400, 415));

} // namespace
